// Package mmis is a multimedia information system storage simulator
// and layout library implementing staggered striping (Berson,
// Ghandeharizadeh, Muntz, Ju — "Staggered Striping in Multimedia
// Information Systems", SIGMOD 1994).
//
// Continuous-media objects (video, audio) need more bandwidth than a
// single disk provides, so each object is declustered: subobject s is
// split into M = ceil(B_Display/B_Disk) fragments placed on disks
//
//	disk(s, i) = (first + s·k + i) mod D
//
// where k is the system-wide stride.  During each fixed time interval
// a display occupies M disks and then shifts k to the right, so any
// mix of media types shares one farm with no cluster-boundary waste.
// Simple striping (k = M) and virtual data replication (k = D, the
// [GS93] baseline) are special cases.
//
// The package exposes three layers:
//
//   - Layout planning: Layout, Placement, Store — pure arithmetic for
//     placing objects and checking balance (§3.2 of the paper), plus
//     the virtual-disk machinery for time-fragmented delivery and
//     dynamic coalescing (Algorithms 1 and 2).
//
//   - Analytic models: fragment-size/latency/bandwidth tradeoffs,
//     Equation (1) memory sizing, stride analysis (§3.1, §3.2.2).
//
//   - Simulation: interval-quantized throughput engines for staggered
//     striping and the virtual-data-replication baseline, an
//     event-level disk model for hiccup validation, and the
//     experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// # Quickstart
//
//	layout, _ := mmis.NewLayout(12, 1) // 12 disks, stride 1
//	store, _ := mmis.NewStore(layout, 3000)
//	pl, _ := store.Place(0 /* object id */, 4 /* M */, 3000 /* subobjects */)
//	fmt.Println(pl.Disk(7, 2)) // disk of fragment 2 of subobject 7
//
//	cfg := mmis.Table3Config(64, 20, 1) // 64 stations, skewed access
//	eng, _ := mmis.NewStripedSimulation(cfg)
//	res := eng.Run()
//	fmt.Printf("%.1f displays/hour\n", res.Throughput())
//
// See the examples directory for runnable programs and EXPERIMENTS.md
// for the paper-versus-measured record.
package mmis
