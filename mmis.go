package mmis

import (
	"fmt"
	"io"

	"github.com/mmsim/staggered/internal/analytic"
	"github.com/mmsim/staggered/internal/buffer"
	"github.com/mmsim/staggered/internal/cluster"
	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/diskmodel"
	"github.com/mmsim/staggered/internal/experiment"
	"github.com/mmsim/staggered/internal/media"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/playback"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/vdisk"
	"github.com/mmsim/staggered/internal/workload"
)

// Layout planning (the paper's §3 data-placement discipline).
type (
	// Layout is a disk farm's striping configuration: D disks, stride K.
	Layout = core.Layout
	// Placement records where one object lives on the farm.
	Placement = core.Placement
	// Store allocates per-disk storage for staggered-striped objects.
	Store = core.Store
	// VDRStore allocates cluster-granular storage for the virtual data
	// replication baseline.
	VDRStore = core.VDRStore
	// NamedPlacement pairs a placement with a display name, for the
	// Grid renderings of the paper's layout figures.
	NamedPlacement = core.NamedPlacement
)

// NewLayout returns a staggered-striping layout of d disks with
// stride k (1 ≤ k ≤ d).
func NewLayout(d, k int) (Layout, error) { return core.NewLayout(d, k) }

// SimpleStriping returns the k = M special case (§3.1).
func SimpleStriping(d, m int) (Layout, error) { return core.SimpleStriping(d, m) }

// VirtualReplication returns the k = D special case — each object
// pinned to one cluster, the [GS93] baseline.
func VirtualReplication(d int) (Layout, error) { return core.VirtualReplication(d) }

// NewStore returns a storage allocator over the layout with the given
// per-disk capacity in fragments.
func NewStore(l Layout, capacityFragments int) (*Store, error) {
	return core.NewStore(l, capacityFragments)
}

// NewVDRStore returns the baseline's cluster-granular allocator.
func NewVDRStore(d, m, capacityFragments int) (*VDRStore, error) {
	return core.NewVDRStore(d, m, capacityFragments)
}

// NewPlacement validates a placement of an object with degree m and n
// subobjects whose first fragment lives on disk first.
func NewPlacement(l Layout, first, m, n int) (Placement, error) {
	return core.NewPlacement(l, first, m, n)
}

// Grid returns the fragment map of the placements in the presentation
// of the paper's Figures 1, 4, and 5; RenderGrid formats it.
func Grid(d, rows int, objs []NamedPlacement) ([][]string, error) {
	return core.Grid(d, rows, objs)
}

// RenderGrid formats a Grid as an aligned text table.
func RenderGrid(g [][]string) string { return core.RenderGrid(g) }

// Virtual disks and the delivery algorithms of §3.2.1.
type (
	// Assignment maps a display's fragment streams to virtual disks.
	Assignment = vdisk.Assignment
	// Delivery executes Algorithm 1 (time-fragmented delivery) with
	// Algorithm 2 (dynamic coalescing) available via Coalesce.
	Delivery = vdisk.Delivery
)

// ChooseVirtualDisks selects virtual disks from the free set for an
// object starting at physical disk first, minimizing buffering.
func ChooseVirtualDisks(d, k, first, m int, free []int) (Assignment, bool) {
	return vdisk.ChooseVirtualDisks(d, k, first, m, free)
}

// NewDelivery prepares the hiccup-free delivery of an n-subobject
// object under the assignment.
func NewDelivery(a Assignment, n int, trace bool) (*Delivery, error) {
	return vdisk.NewDelivery(a, n, trace)
}

// Media types and the object catalog.
type (
	// MediaType is a media type with a constant bandwidth requirement.
	MediaType = media.Type
	// Object is a multimedia object in the database.
	Object = media.Object
	// Catalog is the object database.
	Catalog = media.Catalog
)

// Media types named in the paper (§1 and §4).
var (
	NTSC     = media.NTSC
	CCIR601  = media.CCIR601
	HDTV     = media.HDTV
	CDAudio  = media.CDAudio
	SimVideo = media.SimVideo
)

// NewCatalog returns an empty object catalog.
func NewCatalog() *Catalog { return media.NewCatalog() }

// Disk and tertiary device models.
type (
	// DiskSpec describes a disk drive (geometry, seek curve, rates).
	DiskSpec = diskmodel.Spec
	// TertiarySpec describes a tertiary storage device.
	TertiarySpec = tertiary.Spec
	// TapeLayout selects how objects are recorded on tertiary store.
	TapeLayout = tertiary.TapeLayout
)

// Drives and devices from the paper.
var (
	// SabreDisk is the IMPRIMIS Sabre 1.2 GB drive of §3.1.
	SabreDisk = diskmodel.Sabre
	// SimulationDisk is the 4.5 GB drive of Table 3.
	SimulationDisk = diskmodel.Simulation45GB
	// SimulationTertiary is the 40 mbps device of Table 3.
	SimulationTertiary = tertiary.Table3
)

// Tape layouts (§3.2.4).
const (
	TapeSequential  = tertiary.Sequential
	TapeDiskMatched = tertiary.DiskMatched
)

// Simulation.
type (
	// SimulationConfig parametrizes one throughput-simulation run.
	SimulationConfig = sched.Config
	// Simulation is the generic interval engine: the shared mechanism
	// core bound to one registered technique.
	Simulation = sched.Engine
	// SimulationTechnique describes one registered technique (CLI
	// key, display name, configuration rules).
	SimulationTechnique = sched.TechniqueInfo
	// StripedSimulation is the staggered/simple striping engine.
	StripedSimulation = sched.Striped
	// VDRSimulation is the virtual data replication baseline engine.
	VDRSimulation = sched.VDR
	// Result carries a run's statistics (throughput, latency, ...).
	Result = metrics.Run
)

// Table3Config returns the paper's §4.1 simulation configuration for
// the given station count, geometric access mean, and seed.
func Table3Config(stations int, distMean float64, seed uint64) SimulationConfig {
	return sched.Table3Config(stations, distMean, seed)
}

// NewStripedSimulation builds a staggered-striping simulation.
func NewStripedSimulation(cfg SimulationConfig) (*StripedSimulation, error) {
	return sched.NewStriped(cfg)
}

// NewVDRSimulation builds the virtual-data-replication baseline.
func NewVDRSimulation(cfg SimulationConfig) (*VDRSimulation, error) {
	return sched.NewVDR(cfg)
}

// NewSimulation builds a simulation of cfg running the technique with
// the given registry key ("striped", "staggered", or "vdr"; see
// SimulationTechniques).  cfg is used verbatim — in particular,
// cfg.K is the staggered stride.  Use the kept NewStripedSimulation /
// NewVDRSimulation constructors when a concrete engine type is
// wanted.
func NewSimulation(cfg SimulationConfig, technique string) (*Simulation, error) {
	ti, ok := sched.TechniqueByKey(technique)
	if !ok {
		return nil, fmt.Errorf("mmis: unknown technique %q (have %v)", technique, sched.TechniqueKeys())
	}
	return ti.New(cfg)
}

// SimulationTechniques returns the registered techniques in
// presentation order.
func SimulationTechniques() []SimulationTechnique {
	return sched.Techniques()
}

// Cluster simulation (DESIGN.md §13): N engines behind one clock.
type (
	// ClusterConfig parametrizes a shared-clock multi-server run: the
	// fleet size, technique, dispatch policy, and the per-server base
	// configuration.
	ClusterConfig = cluster.Config
	// ClusterSim advances N server engines in global earliest-time
	// order, routing a cluster-wide Poisson arrival stream through a
	// pluggable dispatch policy.
	ClusterSim = cluster.Sim
	// ClusterResult carries the merged aggregate plus per-server runs
	// and routing counters.
	ClusterResult = cluster.Result
	// DispatchPolicy routes cluster arrivals to member servers.
	DispatchPolicy = cluster.Dispatch
)

// NewClusterSimulation builds a shared-clock cluster simulation.  A
// 1-server cluster reproduces the single engine's Result
// byte-for-byte.
func NewClusterSimulation(cfg ClusterConfig) (*ClusterSim, error) {
	return cluster.New(cfg)
}

// DispatchPolicies returns the registered dispatch policy keys
// ("roundrobin", "leastloaded", "popularity").
func DispatchPolicies() []string { return cluster.Policies() }

// Experiments (the paper's evaluation).
type (
	// ExperimentScale selects full (Table 3) or quick fidelity.
	ExperimentScale = experiment.Scale
	// FigurePoint is one x-position of a Figure 8 graph.
	FigurePoint = experiment.Point
)

// Experiment scales.
const (
	FullScale  = experiment.Full
	QuickScale = experiment.Quick
)

// PaperMeans are the three access distributions of §4 (10, 20, 43.5).
var PaperMeans = workload.PaperMeans

// PaperStations is the station sweep of Figure 8 (1..256).
var PaperStations = workload.PaperStations

// RunFigure8 runs one Figure 8 graph: both techniques across the
// station sweep for one access distribution.
func RunFigure8(scale ExperimentScale, mean float64, stations []int, seed uint64) ([]FigurePoint, error) {
	return experiment.Figure8(scale, mean, stations, seed)
}

// RenderFigure8 formats a graph's points as a text table.
func RenderFigure8(mean float64, points []FigurePoint) string {
	return experiment.Figure8Render(mean, points)
}

// RunPaperEvaluation runs all three Figure 8 graphs.
func RunPaperEvaluation(scale ExperimentScale, stations []int, seed uint64) (map[float64][]FigurePoint, error) {
	return experiment.RunAll(scale, stations, seed)
}

// RenderTable4 formats the Table 4 improvement matrix from the
// evaluation's points.
func RenderTable4(byMean map[float64][]FigurePoint) string {
	return experiment.Table4(byMean).String()
}

// Analytic capacity planning (§3.1, §3.2.2, §3.2.3).

// EffectiveDiskBandwidth returns B_disk for the given fragment size
// on the given drive (§3.1's formula).
func EffectiveDiskBandwidth(spec DiskSpec, fragmentBytes float64) float64 {
	return spec.EffectiveBandwidth(fragmentBytes)
}

// DegreeOfDeclustering returns M = ceil(bDisplay / bDisk).
func DegreeOfDeclustering(t MediaType, bDisk float64) int { return t.Degree(bDisk) }

// MinimumBufferBytes is Equation (1): per-disk memory masking the
// head-switch delay.
func MinimumBufferBytes(bDisk, tSwitch, tSector float64) float64 {
	return buffer.MinimumBytes(bDisk, tSwitch, tSector)
}

// UniqueDisksUsed returns how many distinct disks an object touches
// under a given stride (§3.2.2).
func UniqueDisksUsed(d, k, m, n int) int { return analytic.UniqueDisksUsed(d, k, m, n) }

// DataSkewFree reports whether gcd(D, k) = 1, the §3.2.2 balance
// guarantee.
func DataSkewFree(d, k int) bool { return analytic.DataSkewFree(d, k) }

// Playback (§3.2.5): rewind, fast-forward, and fast-forward with scan.

// PlaybackSession is one viewer's interactive playback over an object
// and its fast-forward replica.
type PlaybackSession = playback.Session

// PlaybackMode is the state of a playback session.
type PlaybackMode = playback.Mode

// Playback modes.
const (
	PlaybackPlaying  = playback.Playing
	PlaybackScanning = playback.Scanning
	PlaybackWaiting  = playback.Waiting
	PlaybackDone     = playback.Done
)

// DefaultScanRatio is the paper's VHS-style example: every sixteenth
// frame.
const DefaultScanRatio = playback.DefaultScanRatio

// NewPlaybackSession returns a session over a normal-speed object and
// its fast-forward replica placement.
func NewPlaybackSession(normal, replica Placement, scanRatio int) (*PlaybackSession, error) {
	return playback.NewSession(normal, replica, scanRatio)
}

// FFReplicaSubobjects returns the length of the fast-forward replica
// for an n-subobject object.
func FFReplicaSubobjects(n, ratio int) int { return playback.ReplicaSubobjects(n, ratio) }

// FFReplicaOverhead returns the storage overhead fraction of keeping
// fast-forward replicas (~1/ratio).
func FFReplicaOverhead(ratio int) float64 { return playback.ReplicaOverheadFraction(ratio) }

// Configuration advice (§3.1, §3.2.2 guidance as code).

// LayoutAdvice is a recommended stride with the paper's reasoning.
type LayoutAdvice = core.Advice

// RecommendStride picks the stride the paper's analysis prefers for a
// farm of d disks serving media with the given degrees.
func RecommendStride(d int, degrees []int) (LayoutAdvice, error) {
	return core.RecommendStride(d, degrees)
}

// RecommendFragmentCylinders returns the largest fragment size whose
// worst-case startup latency fits the budget (§3.1 tradeoff).
func RecommendFragmentCylinders(spec DiskSpec, clusters int, latencyBudgetSeconds float64) (int, bool) {
	return core.RecommendFragmentCylinders(spec, clusters, latencyBudgetSeconds)
}

// Availability analysis (extension): the failure-isolation cost of
// striping.

// BlastRadius returns how many objects lose data when one disk fails
// under the given layout.
func BlastRadius(d, k, m, n, count int) int { return analytic.BlastRadius(d, k, m, n, count) }

// SurvivingBandwidthFraction returns the fraction of objects still
// playable after the given number of disk failures.
func SurvivingBandwidthFraction(d, k, m, n, failures int) float64 {
	return analytic.SurvivingBandwidthFraction(d, k, m, n, failures)
}

// PinnedLayoutSavings returns the disk-bandwidth saving of clustering
// an object's subobjects on adjacent cylinders, possible only with
// k = D (§3.2.2's "less than 10%").
func PinnedLayoutSavings(spec DiskSpec, fragmentBytes float64) float64 {
	return spec.PinnedLayoutSavings(fragmentBytes)
}

// Workload traces.

// WorkloadTrace is a recorded per-station reference string that can
// drive experiments in place of the synthetic distribution.
type WorkloadTrace = workload.Trace

// ParseWorkloadTrace reads the one-line-per-station text format.
func ParseWorkloadTrace(r io.Reader, objects int) (*WorkloadTrace, error) {
	return workload.ParseTrace(r, objects)
}
