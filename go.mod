module github.com/mmsim/staggered

go 1.22
