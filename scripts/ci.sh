#!/bin/sh
# CI gate: vet, build, race-test, and short-benchmark the repo.
# Run from anywhere; operates on the repository containing it.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -short -race (quick suites + chaos harness under the race detector)"
go test -short -race ./...

echo "== go test (full suites: goldens, E18, fault integration)"
go test ./...

echo "== short benchmarks (interval engines)"
go test -bench 'BenchmarkFigure8a$|BenchmarkTable4$' -benchmem -benchtime 3x -run '^$' .

echo "== kernel calendar microbenchmarks (short mode)"
go test -bench 'BenchmarkCalendar' -benchmem -benchtime 100000x -run '^$' ./internal/sim

echo "== golden dumps (52-config sweep + staggered strides, byte-identical)"
go test -run 'TestGoldenSweep$|TestGoldenStaggered$|TestStaggeredKMMatchesSimpleGolden$' ./internal/sched

echo "== sharded engine under the race detector (workers=4, 100x trajectory)"
# GOMAXPROCS floor of 2: on a single-core CI box the pool would gate
# itself off (pool.concurrent false) and the race detector would never
# see the parallel drains actually interleave.
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$ncpu" -ge 2 ]; then
	go run -race ./cmd/sweep -scale 100x -workers 4 -csv
else
	GOMAXPROCS=2 go run -race ./cmd/sweep -scale 100x -workers 4 -csv
fi

echo "== cache-enabled quick sweep under the race detector (memory tier + open Zipf arrivals)"
go run -race ./cmd/sweep -scale quick -technique striped -stations 64 -dist 20 -zipf 0.7 -arrivals 6000 -cachemb 256 -batchwindow 8 -csv

echo "== 2-server cluster quick sweep per dispatch policy, under the race detector"
for policy in roundrobin leastloaded popularity; do
	echo "-- dispatch: $policy"
	go run -race ./cmd/sweep -servers 1,2 -dispatch "$policy" -seed 1 -csv
done

echo "== 4-server kill-one failover run per dispatch policy, under the race detector (DESIGN.md §14)"
for policy in roundrobin leastloaded popularity; do
	echo "-- dispatch: $policy"
	go run -race ./cmd/ssim -scale quick -servers 4 -dispatch "$policy" -zipf 1.1 -arrivals 6000 \
		-faults 'server:1@2100-2700' -healbudget 2 -samples 150 -seed 1 >/dev/null
done

echo "== quick sweep per registered technique"
for tkey in $(go run ./cmd/sweep -list-techniques | awk '{print $1}'); do
	echo "-- technique: $tkey"
	go run ./cmd/sweep -scale quick -technique "$tkey" -stations 1,8 -dist 20 -csv
done
echo "-- technique: staggered (explicit stride k=1)"
go run ./cmd/sweep -scale quick -technique staggered -k 1 -stations 1,8 -dist 20 -csv

echo "== perf-regression report + gate (>20% ns/op over BENCH_8 reference fails)"
# bench refuses the worker curve on a single-CPU host unless told the
# caveat is acceptable; CI wants the curve recorded either way, with
# env.single_core marking reports whose curve cannot show speedup.
if [ "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" -ge 2 ]; then
	go run ./cmd/bench -out BENCH_9.json -maxregress 0.20
else
	go run ./cmd/bench -out BENCH_9.json -maxregress 0.20 -forcecurve
fi

echo "CI OK"
