#!/bin/sh
# CI gate: vet, build, race-test, and short-benchmark the repo.
# Run from anywhere; operates on the repository containing it.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== short benchmarks (interval engines)"
go test -bench 'BenchmarkFigure8a$|BenchmarkTable4$' -benchmem -benchtime 3x -run '^$' .

echo "== perf-regression report"
go run ./cmd/bench -out BENCH_1.json

echo "CI OK"
