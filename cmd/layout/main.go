// Command layout renders the paper's layout and schedule figures as
// text tables.
//
// Usage:
//
//	layout -fig 1|3|4|5|6|7 [-rows N]
//	layout -all
//
// Figures: 1 simple striping (9 disks, M=3); 3 rotating cluster
// schedule; 4 staggered striping (8 disks, k=1); 5 mixed media
// (12 disks, M=2/3/4); 6 time-fragmented delivery with coalescing;
// 7 low-bandwidth disk sharing.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/vdisk"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to render (1, 3, 4, 5, 6, or 7)")
	rows := flag.Int("rows", 0, "rows (subobjects or intervals) to render; 0 = figure default")
	all := flag.Bool("all", false, "render every figure")
	flag.Parse()

	figures := []int{1, 3, 4, 5, 6, 7}
	if !*all {
		if *fig == 0 {
			flag.Usage()
			os.Exit(2)
		}
		figures = []int{*fig}
	}
	for _, f := range figures {
		s, err := render(f, *rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "layout: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("=== Figure %d ===\n%s\n", f, s)
	}
}

func render(fig, rows int) (string, error) {
	def := func(d int) int {
		if rows > 0 {
			return rows
		}
		return d
	}
	switch fig {
	case 1:
		return core.Figure1(def(6))
	case 3:
		return sched.Figure3(def(6))
	case 4:
		return core.Figure4(def(8))
	case 5:
		return core.Figure5(def(13))
	case 6:
		return vdisk.Figure6(def(8))
	case 7:
		return sched.Figure7(3, def(3))
	default:
		return "", fmt.Errorf("no renderer for figure %d (figures 2 and 8 are benchmarks: see bench_test.go and cmd/sweep)", fig)
	}
}
