// Command bench is the performance-regression harness for the
// interval engines: it runs the simulation-heavy benchmarks through
// testing.Benchmark and writes a machine-readable report (default
// BENCH_1.json) with ns/op, B/op, and allocs/op next to the recorded
// pre-overhaul baseline, so a hot-path regression shows up as a
// speedup ratio sliding toward 1.  scripts/ci.sh runs it on every
// change.
//
// Usage:
//
//	bench                 # write BENCH_1.json in the current directory
//	bench -out report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"github.com/mmsim/staggered/internal/experiment"
)

// baseline records the pre-overhaul numbers of the engines'
// scan-everything hot paths (commit "growth seed", -benchtime 5x,
// GOMAXPROCS=1, Intel Xeon 2.10GHz) — the denominator of the speedup
// column.
var baseline = map[string]Measurement{
	"BenchmarkFigure8a": {NsPerOp: 37718189, BytesPerOp: 19064489, AllocsPerOp: 284294},
	"BenchmarkFigure8b": {NsPerOp: 29827336, BytesPerOp: 13335126, AllocsPerOp: 125745},
	"BenchmarkFigure8c": {NsPerOp: 25207092, BytesPerOp: 12471476, AllocsPerOp: 89857},
	"BenchmarkTable4":   {NsPerOp: 72270958, BytesPerOp: 35492416, AllocsPerOp: 411666},
}

// Measurement is one benchmark's cost per operation.
type Measurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Entry is one benchmark's report row.
type Entry struct {
	Name     string       `json:"name"`
	Iters    int          `json:"iterations"`
	Current  Measurement  `json:"current"`
	Baseline *Measurement `json:"baseline,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op; AllocRatio
	// is baseline allocs/op divided by current allocs/op.
	Speedup    float64 `json:"speedup,omitempty"`
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Report is the BENCH_1.json document.
type Report struct {
	Note    string  `json:"note"`
	Results []Entry `json:"results"`
}

func benchFigure8(mean float64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.Figure8(experiment.Quick, mean, []int{1, 8, 32, 64}, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAll(experiment.Quick, []int{16, 64}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "BENCH_1.json", "report file")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkFigure8a", benchFigure8(10)},
		{"BenchmarkFigure8b", benchFigure8(20)},
		{"BenchmarkFigure8c", benchFigure8(43.5)},
		{"BenchmarkTable4", benchTable4},
	}

	report := Report{
		Note: "interval-engine regression harness; baseline = pre-overhaul scan-everything hot paths",
	}
	for _, bm := range benches {
		res := testing.Benchmark(bm.fn)
		entry := Entry{
			Name:  bm.name,
			Iters: res.N,
			Current: Measurement{
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
			},
		}
		if base, ok := baseline[bm.name]; ok {
			b := base
			entry.Baseline = &b
			if entry.Current.NsPerOp > 0 {
				entry.Speedup = float64(b.NsPerOp) / float64(entry.Current.NsPerOp)
			}
			if entry.Current.AllocsPerOp > 0 {
				entry.AllocRatio = float64(b.AllocsPerOp) / float64(entry.Current.AllocsPerOp)
			}
		}
		report.Results = append(report.Results, entry)
		fmt.Printf("%-18s %d iters  %12d ns/op  %10d B/op  %8d allocs/op  %.2fx\n",
			bm.name, res.N, entry.Current.NsPerOp, entry.Current.BytesPerOp,
			entry.Current.AllocsPerOp, entry.Speedup)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *out)
	return 0
}
