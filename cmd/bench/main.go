// Command bench is the performance-regression harness: it runs the
// simulation-heavy engine benchmarks and the kernel calendar
// microbenchmarks through testing.Benchmark, runs the scale-mode
// sweep trajectory (to 10000x: 500,000 disks, 200,000 stations) plus
// a worker-count curve at the largest factor, runs the E19 cache-tier
// sweep (displays/hour, startup latency, and hit rate per cache
// budget × skew × batch window cell), and writes a machine-readable
// report (default BENCH_9.json) with ns/op, B/op, and allocs/op next
// to the recorded baselines.  With -maxregress it exits nonzero when
// any recorded bench regresses past the threshold against its
// reference, so scripts/ci.sh fails on hot-path regressions instead
// of logging them.  Requesting the worker curve on a single-CPU host
// is an error (the wall clocks would measure scheduler interleaving,
// not speedup) unless -forcecurve records it with the env.single_core
// caveat.
//
// Usage:
//
//	bench                     # write BENCH_9.json in the current directory
//	bench -out report.json
//	bench -maxregress 0.20    # fail on >20% ns/op regression vs reference
//	bench -workers 1,2,4,8    # worker curve measured at the largest factor
//	bench -forcecurve         # record the curve even on one CPU
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/mmsim/staggered/internal/experiment"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/sim"
)

// baseline records the pre-overhaul numbers of the engines'
// scan-everything hot paths (commit "growth seed", -benchtime 5x,
// GOMAXPROCS=1, Intel Xeon 2.10GHz) — the denominator of the speedup
// column.
var baseline = map[string]Measurement{
	"BenchmarkFigure8a": {NsPerOp: 37718189, BytesPerOp: 19064489, AllocsPerOp: 284294},
	"BenchmarkFigure8b": {NsPerOp: 29827336, BytesPerOp: 13335126, AllocsPerOp: 125745},
	"BenchmarkFigure8c": {NsPerOp: 25207092, BytesPerOp: 12471476, AllocsPerOp: 89857},
	"BenchmarkTable4":   {NsPerOp: 72270958, BytesPerOp: 35492416, AllocsPerOp: 411666},
}

// reference is the regression gate: the engine, scale, and cluster
// benches use the numbers the previous PR's harness recorded in
// BENCH_8.json on the CI machine; the nanosecond-scale calendar
// benches keep the upper end of their recorded range (DESIGN.md §8:
// 60–110 / 20–35 ns/op depending on the VM's state), because
// single-core clock drift alone exceeds 20% at that scale.
// -maxregress compares current ns/op against these — for this PR the
// gate proves the failover instrumentation (dead-member checks in the
// dispatch policies and the server-event drain in the cluster loop)
// did not slow the fault-free hot paths the goldens pin.
// BenchmarkFailover4 has no reference yet; its first recorded numbers
// land in BENCH_9.json and gate the next revision.
var reference = map[string]Measurement{
	"BenchmarkFigure8a":         {NsPerOp: 7673606, BytesPerOp: 445425, AllocsPerOp: 4936},
	"BenchmarkFigure8b":         {NsPerOp: 6024232, BytesPerOp: 400920, AllocsPerOp: 4838},
	"BenchmarkFigure8c":         {NsPerOp: 5477784, BytesPerOp: 377846, AllocsPerOp: 4844},
	"BenchmarkTable4":           {NsPerOp: 13714706, BytesPerOp: 740948, AllocsPerOp: 8896},
	"BenchmarkFaultRecovery":    {NsPerOp: 936801, BytesPerOp: 94379, AllocsPerOp: 1320},
	"BenchmarkStaggeredK1":      {NsPerOp: 20783499, BytesPerOp: 4295901, AllocsPerOp: 105539},
	"BenchmarkCachedFigure8":    {NsPerOp: 8055628, BytesPerOp: 128325, AllocsPerOp: 1442},
	"BenchmarkCluster4":         {NsPerOp: 9176202, BytesPerOp: 267946, AllocsPerOp: 2361},
	"BenchmarkCalendarSchedule": {NsPerOp: 110, BytesPerOp: 0, AllocsPerOp: 0},
	"BenchmarkCalendarCancel":   {NsPerOp: 34, BytesPerOp: 0, AllocsPerOp: 0},
	"BenchmarkScaleSweep":       {NsPerOp: 3007115, BytesPerOp: 226528, AllocsPerOp: 1214},
}

// The scale trajectory carries its own gate: ns/display at the gate
// factor as BENCH_8.json recorded it.  The -maxregress gate enforces
// that the failover plumbing cannot regress it.
const (
	scaleGateFactor = 1000
	scaleGateRefNs  = 2172.6
)

// Measurement is one benchmark's cost per operation.
type Measurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Entry is one benchmark's report row.
type Entry struct {
	Name     string       `json:"name"`
	Iters    int          `json:"iterations"`
	Current  Measurement  `json:"current"`
	Baseline *Measurement `json:"baseline,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op; AllocRatio
	// is baseline allocs/op divided by current allocs/op.
	Speedup    float64 `json:"speedup,omitempty"`
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Env records the machine the report was produced on: without it the
// worker-curve numbers are uninterpretable (a single-core box cannot
// show multi-worker speedup no matter how good the sharding is).
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SingleCore flags reports produced on a one-CPU machine, where
	// the worker curve cannot show speedup and nanosecond benches see
	// scheduler steal time (see the stderr warning bench prints).
	SingleCore bool `json:"single_core,omitempty"`
	// Workers is the worker-count list the curve below was measured
	// with.
	Workers []int `json:"worker_curve,omitempty"`
}

// Report is the BENCH_9.json document.
type Report struct {
	Note    string                  `json:"note"`
	Env     Env                     `json:"env"`
	Results []Entry                 `json:"results"`
	Scale   []experiment.ScalePoint `json:"scale_sweep,omitempty"`
	// Cache is the E19 memory-tier sweep: displays/hour, startup
	// latency, and cache-hit rate per budget × skew × window cell.
	Cache []experiment.E19Point `json:"cache_sweep,omitempty"`
	// WorkerCurve re-runs the largest scale factor at each worker
	// count: same simulation (identical displays), different
	// wall-clock.  Speedup is only expected when GOMAXPROCS > 1.
	WorkerCurve []experiment.ScalePoint `json:"worker_curve,omitempty"`
}

func benchFigure8(mean float64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.Figure8(experiment.Quick, mean, []int{1, 8, 32, 64}, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAll(experiment.Quick, []int{16, 64}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCalendarSchedule mirrors internal/sim's BenchmarkCalendarSchedule:
// one O(1) wheel insertion per op, drain amortized over 1024 events.
func benchCalendarSchedule(b *testing.B) {
	k := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(sim.Time(i&1023)*1e-4, fn)
		if i&1023 == 1023 {
			k.Run(sim.Infinity)
		}
	}
	k.Run(sim.Infinity)
}

// benchCalendarCancel mirrors internal/sim's BenchmarkCalendarCancel:
// a schedule-then-cancel cycle, both ends O(1) slab hits.
func benchCalendarCancel(b *testing.B) {
	k := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := k.AfterTimer(sim.Time(i&255)*1e-3, fn)
		k.Cancel(tm)
	}
}

// benchCachedFigure8 runs one cache-enabled E19 cell per op: the
// quick geometry under an open Zipf(0.7) stream with a 256 MiB prefix
// cache and an 8-interval batch window — the memory-tier hot path
// (admission, followers, open arrivals) the disk-only benches above
// never enter.
func benchCachedFigure8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.E19Run(0.7, 256, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScaleSweep runs one 10x scale point per op.
func benchScaleSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunScalePoint(10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFaultRecovery drives the degraded-mode paths of both engines:
// the paper pair at one load point with a disk failing and repairing
// mid-measurement plus a slow-disk window — the fault-path cost the
// fault-free gate above cannot see.
func benchFaultRecovery(b *testing.B) {
	opts := &experiment.Options{
		Faults: fault.NewPlan().
			FailDiskUntil(7, 900, 1500).
			SlowDisk(3, 1800, 2400),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure8TechniquesOpts(experiment.Quick, 20, []int{16}, 1, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCluster4 runs one 4-server leastloaded cluster point per op —
// the shared-clock loop, dispatch, arrival injection, and the final
// Merge, end to end (DESIGN.md §13).
func benchCluster4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunE20Point(4, "leastloaded", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFailover4 runs one E21 failover point per op — a 4-server
// leastloaded cluster that loses a member mid-window, including the
// kill drain, re-admission, replica healing, and the recovery-curve
// sampler (DESIGN.md §14).
func benchFailover4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunE21Point("leastloaded", 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStaggeredK1 sweeps the first-class staggered technique (k=1,
// Algorithms 1+2) through the registry-built generic engine — the
// same path `sweep -technique staggered` runs.
func benchStaggeredK1(b *testing.B) {
	specs := []experiment.TechSpec{{Key: experiment.TechStaggered, Stride: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure8Techniques(experiment.Quick, 20, []int{8, 32}, 1, specs); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "BENCH_9.json", "report file")
	maxRegress := flag.Float64("maxregress", 0, "fail when any recorded bench's ns/op exceeds its reference by more than this fraction (0 = report only)")
	scaleFactors := flag.String("scalefactors", "1,2,5,10,20,50,100,200,500,1000,2000,5000,10000", "comma-separated scale-sweep factors; empty = skip the sweep")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the curve at the largest scale factor; empty = skip the curve")
	forceCurve := flag.Bool("forcecurve", false, "measure the worker curve even on a single-CPU host (the report's env.single_core records the caveat); without it, requesting a curve on one CPU is an error")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkFigure8a", benchFigure8(10)},
		{"BenchmarkFigure8b", benchFigure8(20)},
		{"BenchmarkFigure8c", benchFigure8(43.5)},
		{"BenchmarkTable4", benchTable4},
		{"BenchmarkFaultRecovery", benchFaultRecovery},
		{"BenchmarkStaggeredK1", benchStaggeredK1},
		{"BenchmarkCachedFigure8", benchCachedFigure8},
		{"BenchmarkCluster4", benchCluster4},
		{"BenchmarkFailover4", benchFailover4},
		{"BenchmarkCalendarSchedule", benchCalendarSchedule},
		{"BenchmarkCalendarCancel", benchCalendarCancel},
		{"BenchmarkScaleSweep", benchScaleSweep},
	}

	report := Report{
		Note: "engine + kernel-calendar regression harness; baseline = pre-overhaul scan-everything hot paths, reference = previous PR's recorded numbers (regression gate)",
		Env: Env{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			SingleCore: runtime.NumCPU() == 1,
		},
	}
	if report.Env.SingleCore {
		fmt.Fprintln(os.Stderr, "bench: WARNING: single-core machine — nanosecond benches include scheduler steal time; treat ns/op comparisons across machines with care")
	}
	factors, err := parseFactors(*scaleFactors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	workerCounts, err := parseFactors(*workersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	// A one-CPU host cannot run pool workers concurrently, so a curve
	// measured there compares scheduler interleavings, not speedups —
	// recording it silently would poison cross-report comparisons.
	// Fail loudly up front, before the benches burn minutes, unless the
	// caller opted into the caveated record.
	if len(workerCounts) > 0 && report.Env.SingleCore && !*forceCurve {
		fmt.Fprintln(os.Stderr, "bench: ERROR: worker curve requested on a single-CPU host; its wall clocks cannot show parallel speedup. Pass -workers '' to skip the curve, or -forcecurve to record it anyway (env.single_core flags the caveat).")
		return 2
	}
	failed := false
	for _, bm := range benches {
		res := testing.Benchmark(bm.fn)
		// The gate must not fire on scheduler noise: the CI VM is a
		// single core with multi-millisecond steal-time spikes.  A real
		// regression reproduces; noise does not — so when a measurement
		// lands past the limit, re-measure (up to twice) and keep the
		// best before declaring a regression.
		if ref, ok := reference[bm.name]; ok && *maxRegress > 0 {
			limit := float64(ref.NsPerOp) * (1 + *maxRegress)
			for retry := 0; retry < 2 && float64(res.NsPerOp()) > limit; retry++ {
				if again := testing.Benchmark(bm.fn); again.NsPerOp() < res.NsPerOp() {
					res = again
				}
			}
		}
		entry := Entry{
			Name:  bm.name,
			Iters: res.N,
			Current: Measurement{
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
			},
		}
		if base, ok := baseline[bm.name]; ok {
			b := base
			entry.Baseline = &b
			if entry.Current.NsPerOp > 0 {
				entry.Speedup = float64(b.NsPerOp) / float64(entry.Current.NsPerOp)
			}
			if entry.Current.AllocsPerOp > 0 {
				entry.AllocRatio = float64(b.AllocsPerOp) / float64(entry.Current.AllocsPerOp)
			}
		}
		report.Results = append(report.Results, entry)
		status := ""
		if ref, ok := reference[bm.name]; ok && *maxRegress > 0 {
			limit := float64(ref.NsPerOp) * (1 + *maxRegress)
			if float64(entry.Current.NsPerOp) > limit {
				failed = true
				status = fmt.Sprintf("  REGRESSION (ref %d ns/op, limit %.0f)", ref.NsPerOp, limit)
			}
		}
		fmt.Printf("%-26s %9d iters  %12d ns/op  %10d B/op  %8d allocs/op%s\n",
			bm.name, res.N, entry.Current.NsPerOp, entry.Current.BytesPerOp,
			entry.Current.AllocsPerOp, status)
	}

	if len(factors) > 0 {
		points, err := experiment.ScaleSweep(factors, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		report.Scale = points
		for _, p := range points {
			fmt.Printf("scale %4dx  D=%-6d stations=%-6d  %8.3fs wall  %10.0f intervals/s  %8.0f ns/display\n",
				p.Factor, p.D, p.Stations, p.WallSeconds, p.IntervalsSec, p.NsPerDisplay)
		}
		// Gate the trajectory at the reference factor.  Like the bench
		// gate above, a measurement past the limit re-measures (up to
		// twice, keeping the best) before declaring a regression, so a
		// steal-time spike on the shared CI VM cannot fail the build.
		if *maxRegress > 0 {
			for i := range points {
				if points[i].Factor != scaleGateFactor {
					continue
				}
				limit := scaleGateRefNs * (1 + *maxRegress)
				for retry := 0; retry < 2 && points[i].NsPerDisplay > limit; retry++ {
					again, err := experiment.RunScalePoint(scaleGateFactor, 1)
					if err != nil {
						fmt.Fprintf(os.Stderr, "bench: %v\n", err)
						return 1
					}
					if again.NsPerDisplay < points[i].NsPerDisplay {
						points[i] = again
					}
				}
				if points[i].NsPerDisplay > limit {
					failed = true
					fmt.Printf("scale %4dx  REGRESSION: %.0f ns/display (ref %.0f, limit %.0f)\n",
						scaleGateFactor, points[i].NsPerDisplay, scaleGateRefNs, limit)
				}
			}
		}
		// Worker curve: the largest factor re-run at each worker
		// count, sequentially so every point's pool owns the machine.
		// The displays column must not move — only the wall clock may.
		if len(workerCounts) > 0 {
			report.Env.Workers = workerCounts
			maxf := factors[0]
			for _, f := range factors {
				if f > maxf {
					maxf = f
				}
			}
			for _, w := range workerCounts {
				p, err := experiment.RunScalePointOpts(maxf, 1, experiment.ScaleOptions{Workers: w})
				if err != nil {
					fmt.Fprintf(os.Stderr, "bench: %v\n", err)
					return 1
				}
				report.WorkerCurve = append(report.WorkerCurve, p)
				fmt.Printf("curve %4dx  workers=%-2d shards=%-3d displays=%-7d  %8.3fs wall  %8.0f ns/display\n",
					p.Factor, w, p.Shards, p.Displays, p.WallSeconds, p.NsPerDisplay)
			}
		}
	}

	// E19 cache-tier sweep: records the displays/hour, startup-latency,
	// and hit-rate columns per budget × skew × window cell, so the
	// report pins the memory tier's throughput claim next to the
	// disk-only baselines it beats.
	cachePoints, err := experiment.E19(1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	report.Cache = cachePoints
	for _, p := range cachePoints {
		fmt.Printf("cache skew=%.1f mb=%-5d window=%-3d  %8.1f displays/hour  %7.1fs startup  hit %.3f\n",
			p.Skew, p.BudgetMB, p.WindowIntervals, p.DisplaysPerHour, p.StartupMeanSeconds, p.HitRate)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *out)
	if failed {
		fmt.Fprintln(os.Stderr, "bench: ns/op regression past -maxregress threshold")
		return 1
	}
	return 0
}

func parseFactors(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := s[start:i]
			start = i + 1
			v := 0
			for _, c := range part {
				if c < '0' || c > '9' {
					return nil, fmt.Errorf("bad scale factor %q", part)
				}
				v = v*10 + int(c-'0')
			}
			if v <= 0 {
				return nil, fmt.Errorf("bad scale factor %q", part)
			}
			out = append(out, v)
		}
	}
	return out, nil
}
