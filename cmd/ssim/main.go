// Command ssim runs one multimedia-server simulation and reports its
// statistics: throughput in displays per hour, admission latency,
// device utilization, and storage state.
//
// Usage:
//
//	ssim -technique striped -stations 64 -dist 20
//	ssim -technique vdr -stations 256 -dist 43.5
//	ssim -technique staggered -stride 1 -stations 64
//	ssim -scale quick ...            # reduced farm for fast runs
//	ssim -faults 'fail:7@600-1200'   # inject a fault plan
//	ssim -cachemb 256 -batchwindow 8 # enable the memory tier (DESIGN.md §12)
//	ssim -zipf 0.7 -arrivals 6000    # open Zipf Poisson workload
//	ssim -servers 4 -dispatch popularity -zipf 1.1 -arrivals 16000
//	                                 # shared-clock cluster (DESIGN.md §13)
//	ssim -servers 4 -arrivals 6000 -faults 'server:1@2000-3000' -healbudget 2
//	                                 # kill+restart a member, heal replicas (DESIGN.md §14)
//
// A run whose materializations starve at the Place retry cap exits
// nonzero with the typed starvation diagnosis on stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/cluster"
	"github.com/mmsim/staggered/internal/experiment"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/profiling"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/workload"
)

func main() {
	os.Exit(run())
}

// run holds the program body so deferred cleanup (the profile
// writers) executes before the process exits.
func run() (code int) {
	technique := flag.String("technique", "striped", "technique key from the registry (see -list-techniques)")
	stations := flag.Int("stations", 64, "number of display stations (closed system)")
	dist := flag.Float64("dist", 20, "geometric access-distribution mean (10, 20, 43.5)")
	stride := flag.Int("stride", 0, "stride k for -technique staggered (0 = technique default)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scaleFlag := flag.String("scale", "full", "full (Table 3) or quick")
	warmup := flag.Int("warmup", 0, "warm-up intervals (0 = scale default)")
	measure := flag.Int("measure", 0, "measurement intervals (0 = scale default)")
	trace := flag.Int("trace", 0, "print the first N scheduler events")
	faultsFlag := flag.String("faults", "", "fault plan (e.g. 'fail:7@600; slow:3@100-400; tert@0-200; wear:0-9@mttf=500,mttr=50,until=3000')")
	pressure := flag.Bool("pressure", false, "enable eviction pressure for exact-fit farms (DESIGN.md §10)")
	cacheMB := flag.Int("cachemb", 0, "prefix-cache budget in MiB (0 = no prefix cache; DESIGN.md §12)")
	batchWindow := flag.Int("batchwindow", 0, "multicast batch window in intervals (0 = no batching)")
	cachePolicy := flag.String("cache", "", "cache replacement policy: lru or popularity (default popularity)")
	zipfSkew := flag.Float64("zipf", 0, "Zipf popularity skew theta (0 = geometric -dist catalog)")
	arrivals := flag.Float64("arrivals", 0, "open Poisson arrivals per hour (0 = closed loop)")
	servers := flag.Int("servers", 1, "number of shared-clock servers (>1 requires -arrivals; DESIGN.md §13)")
	dispatch := flag.String("dispatch", "", "cluster dispatch policy: roundrobin, leastloaded, or popularity (default roundrobin)")
	healBudget := flag.Int("healbudget", 0, "replicas the cluster re-creates per healing window after a member kill (0 = no healing; DESIGN.md §14)")
	healWindow := flag.Int("healwindow", 0, "healing-pass cadence in intervals (0 = one display length)")
	replicaDepth := flag.Int("replicadepth", 0, "replica-ladder depth multiplier for the cluster placement (0 or 1 = default ladder)")
	sampleEvery := flag.Int("samples", 0, "sample the cluster recovery curve every N intervals (0 = off)")
	listTech := flag.Bool("list-techniques", false, "list registered techniques and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *listTech {
		printTechniques()
		return 0
	}

	scale := experiment.Full
	if *scaleFlag == "quick" {
		scale = experiment.Quick
	} else if *scaleFlag != "full" {
		fmt.Fprintf(os.Stderr, "ssim: unknown scale %q\n", *scaleFlag)
		return 2
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "ssim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	cfg := experiment.BaseConfig(scale, *stations, *dist, *seed)
	if *warmup > 0 {
		cfg.WarmupIntervals = *warmup
	}
	if *measure > 0 {
		cfg.MeasureIntervals = *measure
	}
	cfg.EvictionPressure = *pressure
	cfg.ZipfSkew = *zipfSkew
	cfg.ArrivalsPerHour = *arrivals
	if *cacheMB > 0 || *batchWindow > 0 {
		cfg.Cache = &cache.Spec{
			BudgetBytes: int64(*cacheMB) << 20,
			BatchWindow: *batchWindow,
			Policy:      *cachePolicy,
		}
	}
	if *faultsFlag != "" {
		plan, err := fault.Parse(*faultsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssim: %v\n", err)
			return 2
		}
		cfg.Faults = plan
	}

	if _, ok := sched.TechniqueByKey(*technique); !ok {
		fmt.Fprintf(os.Stderr, "ssim: unknown technique %q\n", *technique)
		printTechniques()
		return 2
	}

	if *servers > 1 {
		// A mixed -faults plan splits by scope: disk and tertiary events
		// run inside every member, server kills and restarts run in the
		// cluster driver.
		var serverPlan *fault.Plan
		if cfg.Faults != nil {
			member, srv := cfg.Faults.SplitServerScope()
			cfg.Faults = nil
			if !member.Empty() {
				cfg.Faults = member
			}
			if !srv.Empty() {
				serverPlan = srv
			}
		}
		return runCluster(cfg, clusterOpts{
			servers:      *servers,
			technique:    *technique,
			stride:       *stride,
			dispatch:     *dispatch,
			serverPlan:   serverPlan,
			healBudget:   *healBudget,
			healWindow:   *healWindow,
			replicaDepth: *replicaDepth,
			sampleEvery:  *sampleEvery,
		})
	}

	eng, normalized, err := sched.NewEngineFor(*technique, cfg, *stride)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssim: %v\n", err)
		return 1
	}
	installTracer(eng, *trace)
	res, runErr := eng.RunChecked()

	printResult(normalized, res)
	if runErr != nil {
		var sErr *sched.StarvationError
		if errors.As(runErr, &sErr) {
			fmt.Fprintf(os.Stderr, "ssim: %v\n", sErr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "ssim: %v\n", runErr)
		return 1
	}
	return 0
}

// clusterOpts carries the cluster-layer flags into runCluster.
type clusterOpts struct {
	servers      int
	technique    string
	stride       int
	dispatch     string
	serverPlan   *fault.Plan
	healBudget   int
	healWindow   int
	replicaDepth int
	sampleEvery  int
}

// runCluster runs the shared-clock multi-server simulation and prints
// the merged aggregate followed by one row per member (DESIGN.md §13),
// with the failover and healing ledgers when a server plan ran
// (DESIGN.md §14).
func runCluster(base sched.Config, o clusterOpts) int {
	sim, err := cluster.New(cluster.Config{
		Servers:             o.servers,
		Technique:           o.technique,
		Stride:              o.stride,
		Dispatch:            o.dispatch,
		Base:                base,
		ServerPlan:          o.serverPlan,
		HealBudget:          o.healBudget,
		HealWindowIntervals: o.healWindow,
		ReplicaDepth:        o.replicaDepth,
		SampleIntervals:     o.sampleEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssim: %v\n", err)
		return 2
	}
	res, err := sim.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssim: %v\n", err)
		return 1
	}
	fmt.Printf("cluster:              %d servers, %s dispatch\n", o.servers, res.Dispatch)
	printResult(base, res.Aggregate)
	if res.NoHolder > 0 {
		fmt.Printf("no-holder fallbacks:  %d\n", res.NoHolder)
	}
	if res.FailedOver+res.OrphanedRequests+res.LostArrivals > 0 {
		fmt.Printf("failover:             %d re-routed dispatches, %d orphaned requests (%d re-admitted, %d dropped), %d lost arrivals\n",
			res.FailedOver, res.OrphanedRequests, res.ReAdmitted, res.ReAdmitDropped, res.LostArrivals)
	}
	if res.HealedReplicas > 0 {
		fmt.Printf("healing:              %d replicas re-created, %.1f s to redistribute\n",
			res.HealedReplicas, res.RedistributeSeconds)
	}
	fmt.Println()
	for i, r := range res.Servers {
		fmt.Printf("server %-2d             %.2f displays/hour (%d displays, %d routed, %d rejected, disk %.1f%%, tertiary %.1f%%)\n",
			i, r.Throughput(), r.Displays, res.Routed[i], r.OpenRejected, r.DiskBusy*100, r.TertiaryBusy*100)
		if r.OrphanedDisplays > 0 {
			fmt.Printf("                      %d displays orphaned by a kill\n", r.OrphanedDisplays)
		}
	}
	return 0
}

// printTechniques lists the registry, one technique per line.
func printTechniques() {
	for _, ti := range sched.Techniques() {
		fmt.Printf("%-10s %s — %s\n", ti.Key, ti.Display, ti.Summary)
	}
}

// installTracer prints the first n scheduler events.
func installTracer(eng *sched.Engine, n int) {
	if n <= 0 {
		return
	}
	printed := 0
	eng.SetTracer(func(ev sched.Event) {
		if printed < n {
			fmt.Println(ev)
			printed++
		}
	})
}

func printResult(cfg sched.Config, r metrics.Run) {
	fmt.Printf("technique:            %s\n", r.Technique)
	fmt.Printf("farm:                 %d disks, stride %d, %d-disk degree, %d objects\n",
		cfg.D, cfg.K, cfg.M, cfg.Objects)
	fmt.Printf("workload:             %d stations, %s (geometric mean %v)\n",
		r.Stations, workload.MeanLabel(r.DistMean), r.DistMean)
	fmt.Printf("window:               %.0f s warm-up + %.0f s measured\n",
		r.WarmupSeconds, r.MeasureSeconds)
	fmt.Printf("throughput:           %.2f displays/hour (%d displays)\n",
		r.Throughput(), r.Displays)
	fmt.Printf("admission latency:    mean %.1f s, max %.1f s (n=%d)\n",
		r.Latency.Mean(), r.Latency.Max(), r.Latency.N())
	fmt.Printf("disk utilization:     %.1f%%\n", r.DiskBusy*100)
	fmt.Printf("tertiary utilization: %.1f%% (%d materializations)\n",
		r.TertiaryBusy*100, r.Materializa)
	if r.Replications > 0 {
		fmt.Printf("replications:         %d\n", r.Replications)
	}
	if r.Coalescings > 0 {
		fmt.Printf("coalescings:          %d\n", r.Coalescings)
	}
	fmt.Printf("unique residents:     %d\n", r.UniqueResidents)
	fmt.Printf("hiccups:              %d\n", r.Hiccups)
	if r.DegradedHiccups+r.AbortedDisplays+r.RejectedDegraded+r.StarvedMaterializations > 0 {
		fmt.Printf("degraded mode:        %d hiccups, %d aborted displays, %d rejected admissions, %d starved materializations\n",
			r.DegradedHiccups, r.AbortedDisplays, r.RejectedDegraded, r.StarvedMaterializations)
	}
	if r.ServedFromCache+r.BatchedFollowers > 0 {
		fmt.Printf("memory tier:          %d cache-served starts (hit rate %.3f, %.2f GB), %d batched followers\n",
			r.ServedFromCache, r.CacheHitRate(), float64(r.CacheHitBytes)/(1<<30), r.BatchedFollowers)
	}
	if r.OpenRejected > 0 {
		fmt.Printf("open rejections:      %d arrivals dropped (all stations busy)\n", r.OpenRejected)
	}
}
