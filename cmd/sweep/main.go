// Command sweep regenerates the paper's evaluation: the three graphs
// of Figure 8 (throughput against the number of display stations for
// the highly-skewed, skewed, and uniform access distributions) and
// Table 4 (percentage improvement of simple striping over virtual
// data replication).
//
// Usage:
//
//	sweep                         # full Table 3 scale, all figures + Table 4
//	sweep -scale quick            # reduced scale (seconds instead of minutes)
//	sweep -scale 10x              # scale-mode trajectory up to 10x quick geometry
//	sweep -scale 100x             # scale-mode trajectory up to 100x quick geometry
//	sweep -scale 1000x -workers 4 # 1000x trajectory, sharded multi-worker engine
//	sweep -scale 10000x           # 10000x trajectory (500k disks, 200k stations)
//	sweep -dist 20                # one distribution only
//	sweep -stations 16,64,128,256 # restrict the station sweep
//	sweep -csv                    # machine-readable output
//	sweep -technique staggered -k 1  # sweep one registered technique
//	sweep -list-techniques        # show the technique registry
//	sweep -faults 'fail:7@600'    # inject a fault plan into every run
//	sweep -e18                    # availability experiment (EXPERIMENTS.md E18)
//	sweep -e19                    # cache-size sweep (EXPERIMENTS.md E19)
//	sweep -e20                    # cluster scaling sweep (EXPERIMENTS.md E20)
//	sweep -e21                    # server-failover sweep (EXPERIMENTS.md E21)
//	sweep -servers 1,2,4 -dispatch popularity  # custom cluster grid
//	sweep -cachemb 256 -batchwindow 8   # memory tier on every run (DESIGN.md §12)
//	sweep -zipf 0.7 -arrivals 6000      # open Zipf workload instead of the closed loop
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/cluster"
	"github.com/mmsim/staggered/internal/experiment"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/profiling"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/workload"
)

func main() {
	os.Exit(run())
}

// run holds the program body so deferred cleanup (the profile
// writers) executes before the process exits.
func run() (code int) {
	scaleFlag := flag.String("scale", "full", "experiment scale: full (Table 3), quick, or a scale-mode trajectory (10x, 100x, 1000x)")
	dist := flag.Float64("dist", 0, "run a single distribution mean (10, 20, or 43.5); 0 = all")
	stationsFlag := flag.String("stations", "", "comma-separated station counts; empty = paper sweep 1..256")
	seed := flag.Uint64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	techFlag := flag.String("technique", "", "comma-separated technique keys (see -list-techniques); empty = paper pair striped,vdr")
	stride := flag.Int("k", 0, "stride k for the staggered technique (0 = technique default)")
	listTech := flag.Bool("list-techniques", false, "list registered techniques and exit")
	faultsFlag := flag.String("faults", "", "fault plan injected into every run (e.g. 'fail:7@600; slow:3@100-400; tert@0-200; wear:0-9@mttf=500,mttr=50,until=3000')")
	workersFlag := flag.Int("workers", 0, "intra-run worker count for sharded execution (0 or 1 = sequential; results are identical at any count, DESIGN.md §11)")
	pressure := flag.Bool("pressure", false, "enable eviction pressure for exact-fit farms (DESIGN.md §10)")
	e18Flag := flag.Bool("e18", false, "run the E18 availability experiment and exit")
	e19Flag := flag.Bool("e19", false, "run the E19 cache-size sweep and exit")
	e20Flag := flag.Bool("e20", false, "run the E20 cluster-scaling sweep and exit")
	e21Flag := flag.Bool("e21", false, "run the E21 server-failover sweep and exit")
	serversFlag := flag.String("servers", "", "comma-separated fleet sizes for a cluster grid (implies -e20 over those sizes)")
	dispatchFlag := flag.String("dispatch", "", "restrict the cluster grid to one dispatch policy (roundrobin, leastloaded, popularity)")
	cacheMB := flag.Int("cachemb", 0, "prefix-cache RAM budget in MB (0 = no prefix cache; DESIGN.md §12)")
	batchWindow := flag.Int("batchwindow", 0, "multicast batch window in intervals (0 = no batching)")
	cachePolicy := flag.String("cache", "", "cache replacement policy: lru or popularity (default popularity)")
	zipfSkew := flag.Float64("zipf", 0, "Zipf popularity skew theta (0 = paper's geometric distribution)")
	arrivals := flag.Float64("arrivals", 0, "open Poisson arrivals per hour (0 = closed loop)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *e18Flag {
		points, err := experiment.E18(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		fmt.Print(experiment.E18Render(points))
		return 0
	}

	if *e19Flag {
		points, err := experiment.E19(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		fmt.Print(experiment.E19Render(points))
		return 0
	}

	if *e21Flag {
		points, err := experiment.E21(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		if *csv {
			fmt.Print(experiment.E21CSV(points))
		} else {
			fmt.Print(experiment.RenderE21(points))
		}
		return 0
	}

	if *e20Flag || *serversFlag != "" {
		return runClusterGrid(*serversFlag, *dispatchFlag, *seed, *csv)
	}

	if *listTech {
		for _, ti := range sched.Techniques() {
			fmt.Printf("%-10s %s — %s\n", ti.Key, ti.Display, ti.Summary)
		}
		return 0
	}

	specs, err := parseTechniques(*techFlag, *stride)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 2
	}

	var opts *experiment.Options
	cacheOn := *cacheMB > 0 || *batchWindow > 0
	if *faultsFlag != "" || *pressure || *workersFlag > 1 || cacheOn || *zipfSkew > 0 || *arrivals > 0 {
		opts = &experiment.Options{
			EvictionPressure: *pressure,
			Workers:          *workersFlag,
			ZipfSkew:         *zipfSkew,
			ArrivalsPerHour:  *arrivals,
		}
		if cacheOn {
			opts.Cache = &cache.Spec{
				BudgetBytes: int64(*cacheMB) << 20,
				BatchWindow: *batchWindow,
				Policy:      *cachePolicy,
			}
		}
		if *faultsFlag != "" {
			plan, err := fault.Parse(*faultsFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				return 2
			}
			opts.Faults = plan
		}
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	scale := experiment.Full
	switch *scaleFlag {
	case "full":
	case "quick":
		scale = experiment.Quick
	case "10x", "100x", "1000x", "1000", "10000x":
		return runScaleMode(*scaleFlag, *seed, *csv, *workersFlag)
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown scale %q\n", *scaleFlag)
		return 2
	}

	stations, err := parseStations(*stationsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 2
	}

	means := workload.PaperMeans
	if *dist != 0 {
		means = []float64{*dist}
	}

	byMean := map[float64][]experiment.Point{}
	starved := 0
	for _, mean := range means {
		pts, err := experiment.Figure8TechniquesOpts(scale, mean, stations, *seed, specs, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			return 1
		}
		byMean[mean] = pts
		starved += experiment.Starved(pts)
		if *csv {
			if specs == nil {
				fmt.Print(pointsCSV(mean, pts))
			} else {
				fmt.Print(techniquesCSV(mean, pts))
			}
		} else {
			fmt.Println(experiment.Figure8Render(mean, pts))
		}
	}

	// Table 4 compares the paper pair; it only applies to the
	// default sweep.
	if *dist == 0 && specs == nil {
		tbl := experiment.Table4(byMean)
		fmt.Println("Table 4: percentage improvement in throughput (displays per hour)")
		fmt.Println("with simple striping as compared to virtual data replication.")
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	if starved > 0 {
		fmt.Fprintf(os.Stderr,
			"sweep: warning: %d materializations starved at the Place retry cap — throughput for those configurations is not meaningful (raise capacity, add -pressure, or use k >= M; see DESIGN.md §10)\n",
			starved)
	}
	return 0
}

// runClusterGrid runs the E20 cluster-scaling grid: fleet sizes from
// -servers (default 1,2,4,8) crossed with the dispatch policies
// (restricted by -dispatch when given), at quick per-server geometry
// under an open Zipf θ=1.1 workload (EXPERIMENTS.md E20).
func runClusterGrid(serversFlag, dispatchFlag string, seed uint64, csv bool) int {
	servers := experiment.E20Servers
	if serversFlag != "" {
		var err error
		if servers, err = parseStations(serversFlag); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad -servers: %v\n", err)
			return 2
		}
	}
	policies := cluster.Policies()
	if dispatchFlag != "" {
		found := false
		for _, p := range policies {
			if p == dispatchFlag {
				policies, found = []string{p}, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "sweep: unknown dispatch policy %q (have %v)\n", dispatchFlag, cluster.Policies())
			return 2
		}
	}
	points, err := experiment.E20Grid(servers, policies, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 1
	}
	if csv {
		fmt.Print(experiment.E20CSV(points))
	} else {
		fmt.Print(experiment.RenderE20(points))
	}
	return 0
}

// runScaleMode runs the scale-mode trajectory instead of the paper
// figures: quick-geometry configurations grown by successive factors
// up to the requested ceiling, reporting wall-clock cost per point.
// With workers > 1 every point runs on the sharded multi-worker
// engine and the factors execute one at a time so each point's pool
// owns the machine.
func runScaleMode(mode string, seed uint64, csv bool, workers int) int {
	var factors []int
	switch mode {
	case "10x":
		factors = []int{1, 2, 5, 10}
	case "100x":
		factors = []int{1, 2, 5, 10, 20, 50, 100}
	case "10000x":
		factors = []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	default: // 1000x
		factors = []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	}
	points, err := experiment.ScaleSweepOpts(factors, seed, experiment.ScaleOptions{Workers: workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 1
	}
	if csv {
		tbl := &metrics.Table{Header: []string{
			"factor", "disks", "stations", "displays", "wall_seconds", "intervals_per_second", "ns_per_display", "workers", "shards", "heap_alloc_bytes",
		}}
		for _, p := range points {
			tbl.AddRow(
				fmt.Sprintf("%d", p.Factor),
				fmt.Sprintf("%d", p.D),
				fmt.Sprintf("%d", p.Stations),
				fmt.Sprintf("%d", p.Displays),
				fmt.Sprintf("%.4f", p.WallSeconds),
				fmt.Sprintf("%.0f", p.IntervalsSec),
				fmt.Sprintf("%.0f", p.NsPerDisplay),
				fmt.Sprintf("%d", p.Workers),
				fmt.Sprintf("%d", p.Shards),
				fmt.Sprintf("%d", p.HeapAllocBytes),
			)
		}
		fmt.Print(tbl.CSV())
		return 0
	}
	fmt.Printf("Scale-mode trajectory (%s): quick geometry grown by factor", mode)
	if workers > 1 {
		fmt.Printf(" (sharded, %d workers)", workers)
	}
	fmt.Println()
	fmt.Printf("%7s %7s %9s %9s %9s %13s %13s\n", "factor", "disks", "stations", "displays", "wall(s)", "intervals/s", "ns/display")
	for _, p := range points {
		fmt.Printf("%7d %7d %9d %9d %9.4f %13.0f %13.0f\n",
			p.Factor, p.D, p.Stations, p.Displays, p.WallSeconds, p.IntervalsSec, p.NsPerDisplay)
	}
	return 0
}

func parseStations(s string) ([]int, error) {
	if s == "" {
		return nil, nil // experiment.Figure8 defaults to the paper sweep
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad station count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func pointsCSV(mean float64, pts []experiment.Point) string {
	tbl := &metrics.Table{Header: []string{
		"mean", "stations", "striped_per_hour", "vdr_per_hour", "improvement_pct",
		"striped_latency_s", "vdr_latency_s", "vdr_unique_residents",
	}}
	for _, p := range pts {
		striped, vdr := p.Striped(), p.VDR()
		tbl.AddRow(
			fmt.Sprintf("%v", mean),
			fmt.Sprintf("%d", p.Stations),
			fmt.Sprintf("%.2f", striped.Throughput()),
			fmt.Sprintf("%.2f", vdr.Throughput()),
			fmt.Sprintf("%.2f", p.Improvement()),
			fmt.Sprintf("%.2f", striped.Latency.Mean()),
			fmt.Sprintf("%.2f", vdr.Latency.Mean()),
			fmt.Sprintf("%d", vdr.UniqueResidents),
		)
	}
	return tbl.CSV()
}

// techniquesCSV is the long-form CSV for arbitrary technique
// selections: one row per (point, technique).
func techniquesCSV(mean float64, pts []experiment.Point) string {
	tbl := &metrics.Table{Header: []string{
		"mean", "stations", "technique", "name", "per_hour", "latency_s", "unique_residents",
		"requests", "degraded_hiccups", "aborted_displays", "rejected_degraded", "starved_materializations",
		"served_from_cache", "batched_followers", "cache_hit_bytes", "open_rejected",
	}}
	for _, p := range pts {
		for i, label := range p.Techniques {
			r := p.Runs[i]
			tbl.AddRow(
				fmt.Sprintf("%v", mean),
				fmt.Sprintf("%d", p.Stations),
				label,
				r.Technique,
				fmt.Sprintf("%.2f", r.Throughput()),
				fmt.Sprintf("%.2f", r.Latency.Mean()),
				fmt.Sprintf("%d", r.UniqueResidents),
				fmt.Sprintf("%d", r.Requests),
				fmt.Sprintf("%d", r.DegradedHiccups),
				fmt.Sprintf("%d", r.AbortedDisplays),
				fmt.Sprintf("%d", r.RejectedDegraded),
				fmt.Sprintf("%d", r.StarvedMaterializations),
				fmt.Sprintf("%d", r.ServedFromCache),
				fmt.Sprintf("%d", r.BatchedFollowers),
				fmt.Sprintf("%d", r.CacheHitBytes),
				fmt.Sprintf("%d", r.OpenRejected),
			)
		}
	}
	return tbl.CSV()
}

// parseTechniques turns the -technique flag into sweep specs.  An
// empty flag returns nil, selecting the paper's default pair.
func parseTechniques(s string, stride int) ([]experiment.TechSpec, error) {
	if s == "" {
		if stride != 0 {
			return nil, fmt.Errorf("-k requires -technique staggered")
		}
		return nil, nil
	}
	var specs []experiment.TechSpec
	strideUsed := false
	for _, part := range strings.Split(s, ",") {
		key := strings.TrimSpace(part)
		if _, ok := sched.TechniqueByKey(key); !ok {
			return nil, fmt.Errorf("unknown technique %q (have %s)", key, strings.Join(sched.TechniqueKeys(), ", "))
		}
		spec := experiment.TechSpec{Key: key}
		if key == experiment.TechStaggered {
			spec.Stride = stride
			strideUsed = true
		}
		specs = append(specs, spec)
	}
	if stride != 0 && !strideUsed {
		return nil, fmt.Errorf("-k requires -technique staggered")
	}
	return specs, nil
}
