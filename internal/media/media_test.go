package media

import (
	"math"
	"testing"
	"testing/quick"
)

const bDisk20 = 20 * Mbps

func TestDegreeExamples(t *testing.T) {
	cases := []struct {
		display float64 // mbps
		want    int
	}{
		{60, 3},  // §1 example: 60 mbps needs 3 disks at 20 mbps
		{120, 6}, // §3.1: M_Y = 6
		{100, 5}, // Table 3: M = 5
		{40, 2},  // Figure 5: M_Z = 2
		{80, 4},  // Figure 5: M_Y = 4
		{45, 3},  // NTSC rounds up
		{30, 2},  // §3.2.3 example
		{1.4, 1}, // audio still needs one whole disk
	}
	for _, c := range cases {
		typ := Type{Name: "t", Display: c.display * Mbps}
		if got := typ.Degree(bDisk20); got != c.want {
			t.Errorf("Degree(%v mbps) = %d, want %d", c.display, got, c.want)
		}
	}
}

func TestDegreePanicsOnBadDisk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Degree with zero disk bandwidth did not panic")
		}
	}()
	NTSC.Degree(0)
}

func TestPaperMediaTypes(t *testing.T) {
	if NTSC.Display != 45*Mbps || CCIR601.Display != 216*Mbps || HDTV.Display != 800*Mbps {
		t.Fatal("§1 media-type bandwidths drifted from the paper")
	}
	if SimVideo.Degree(bDisk20) != 5 {
		t.Fatal("Table 3 media type must have M = 5")
	}
}

// TestLowBandwidthLogicalDisks reproduces the §3.2.3 examples.
func TestLowBandwidthLogicalDisks(t *testing.T) {
	// "an object that has B_Display = 3/2 B_Disk can be exactly
	// accommodated with no loss due to rounding up"
	obj32 := Type{Name: "3/2", Display: 1.5 * bDisk20}
	if got := obj32.LogicalDegree(bDisk20); got != 3 {
		t.Errorf("3/2·B_Disk object needs %d logical disks, want 3", got)
	}
	// "an object requiring 30 mbps when B_Disk = 20 would waste 25
	// percent of the bandwidth of the two disks used per interval"
	obj30 := Type{Name: "30mbps", Display: 30 * Mbps}
	if got := obj30.WastedBandwidthFraction(bDisk20); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("whole-disk waste = %v, want 0.25", got)
	}
	// Two half-bandwidth objects share one disk exactly.
	half := Type{Name: "half", Display: 10 * Mbps}
	if got := half.LogicalDegree(bDisk20); got != 1 {
		t.Errorf("half-bandwidth object needs %d logical disks, want 1", got)
	}
}

func TestLogicalDegreeNeverWorse(t *testing.T) {
	// Logical (half-disk) allocation never wastes more bandwidth than
	// whole-disk allocation.
	err := quick.Check(func(raw uint16) bool {
		display := float64(raw%4000+1) / 10 * Mbps
		typ := Type{Name: "q", Display: display}
		whole := float64(typ.Degree(bDisk20)) * bDisk20
		logical := float64(typ.LogicalDegree(bDisk20)) * bDisk20 / 2
		return logical <= whole+1e-9 && logical >= display-1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectValidate(t *testing.T) {
	if err := (Object{Name: "x", Type: NTSC, Subobjects: 0}).Validate(); err == nil {
		t.Error("zero subobjects accepted")
	}
	if err := (Object{Name: "x", Type: Type{}, Subobjects: 1}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Object{Name: "x", Type: NTSC, Subobjects: 1}).Validate(); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
}

// TestTable3ObjectGeometry checks the simulation object: 3000
// subobjects, M=5, fragment = 1.512 MB cylinder → 22.68 GB, 1814 s
// display time.
func TestTable3ObjectGeometry(t *testing.T) {
	const fragBytes = 1512000.0
	o := Object{Name: "x", Type: SimVideo, Subobjects: 3000}
	if got := o.Fragments(bDisk20); got != 15000 {
		t.Errorf("fragments = %d, want 15000", got)
	}
	if got := o.SizeBytes(bDisk20, fragBytes); math.Abs(got-22.68e9) > 1e6 {
		t.Errorf("size = %v, want 22.68 GB", got)
	}
	if got := o.DisplaySeconds(bDisk20, fragBytes); math.Abs(got-1814.4) > 0.1 {
		t.Errorf("display time = %v s, want 1814.4", got)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 {
		t.Fatal("new catalog not empty")
	}
	a, err := c.Add(Object{Name: "a", Type: NTSC, Subobjects: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Add(Object{Name: "b", Type: HDTV, Subobjects: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("catalog assigned duplicate IDs")
	}
	got, err := c.Get(a.ID)
	if err != nil || got.Name != "a" {
		t.Fatalf("Get(%v) = %v, %v", a.ID, got, err)
	}
	if _, err := c.Get(ObjectID(99)); err == nil {
		t.Error("out-of-range Get succeeded")
	}
	if _, err := c.Get(ObjectID(-1)); err == nil {
		t.Error("negative Get succeeded")
	}
	if _, err := c.Add(Object{Name: "bad", Type: NTSC, Subobjects: 0}); err == nil {
		t.Error("invalid object added")
	}
	if got := c.MustGet(b.ID); got.Name != "b" {
		t.Error("MustGet returned wrong object")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on empty catalog did not panic")
		}
	}()
	NewCatalog().MustGet(0)
}

func TestUniformDatabase(t *testing.T) {
	c, err := UniformDatabase(2000, 3000, SimVideo)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2000 {
		t.Fatalf("database size = %d, want 2000", c.Len())
	}
	for i, o := range c.All() {
		if int(o.ID) != i {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		if o.Subobjects != 3000 || o.Type != SimVideo {
			t.Fatalf("object %d malformed: %+v", i, o)
		}
	}
}

func BenchmarkDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SimVideo.Degree(bDisk20)
	}
}
