// Package media defines multimedia object types and the database
// catalog: objects, their bandwidth requirements, and the
// subobject/fragment arithmetic of the paper's data model.
//
// An object X is a sequence of n equi-sized subobjects X_0..X_{n-1}.
// Each subobject is declustered into M_X fragments of a system-wide
// fixed size; M_X = ceil(B_Display(X) / B_Disk) is the object's degree
// of declustering (Table 2 of the paper).
package media

import (
	"fmt"
	"math"
)

// Mbps converts megabits/second to bits/second.
const Mbps = 1e6

// Type is a media type with a constant display-bandwidth requirement.
type Type struct {
	Name    string
	Display float64 // B_Display in bits/second
}

// Media types named in §1 of the paper.
var (
	// NTSC is "network-quality" video, about 45 mbps [Has89].
	NTSC = Type{Name: "NTSC", Display: 45 * Mbps}
	// CCIR601 is CCIR Recommendation 601 video at 216 mbps.
	CCIR601 = Type{Name: "CCIR-601", Display: 216 * Mbps}
	// HDTV is high-definition video at approximately 800 mbps.
	HDTV = Type{Name: "HDTV", Display: 800 * Mbps}
	// CDAudio is uncompressed stereo audio, a low-bandwidth type
	// (B_Display < B_Disk) exercising §3.2.3.
	CDAudio = Type{Name: "CD-audio", Display: 1.4 * Mbps}
	// SimVideo is the single media type of the §4 simulation:
	// 100 mbps, M = 5 at 20 mbps disks.
	SimVideo = Type{Name: "sim-video", Display: 100 * Mbps}
)

// Degree returns M_X = ceil(B_Display / B_Disk), the number of disks a
// subobject of this type is declustered across.
func (t Type) Degree(bDisk float64) int {
	if bDisk <= 0 {
		panic("media: non-positive disk bandwidth")
	}
	return int(math.Ceil(t.Display / bDisk))
}

// LogicalDegree returns the number of half-bandwidth logical disks
// (§3.2.3) needed: ceil(B_Display / (B_Disk/2)).  Low-bandwidth and
// non-multiple objects waste less bandwidth under this allocation;
// e.g. B_Display = 3/2·B_Disk occupies exactly 3 logical disks.
func (t Type) LogicalDegree(bDisk float64) int {
	if bDisk <= 0 {
		panic("media: non-positive disk bandwidth")
	}
	return int(math.Ceil(t.Display / (bDisk / 2)))
}

// WastedBandwidthFraction returns the fraction of the allocated whole
// disks' bandwidth that the object cannot use because the allocation
// is an integral number of disks.  §3.2.3: a 30 mbps object on 20 mbps
// disks wastes 25% of two disks.
func (t Type) WastedBandwidthFraction(bDisk float64) float64 {
	m := float64(t.Degree(bDisk))
	return (m*bDisk - t.Display) / (m * bDisk)
}

// ObjectID identifies an object in the catalog.
type ObjectID int

// Object is a multimedia object in the database.
type Object struct {
	ID         ObjectID
	Name       string
	Type       Type
	Subobjects int // number of subobjects (stripes)
}

// Validate reports whether the object is well-formed.
func (o Object) Validate() error {
	if o.Subobjects <= 0 {
		return fmt.Errorf("media: object %q has %d subobjects, need at least 1", o.Name, o.Subobjects)
	}
	if o.Type.Display <= 0 {
		return fmt.Errorf("media: object %q has non-positive display bandwidth", o.Name)
	}
	return nil
}

// Degree returns the object's degree of declustering for the given
// effective disk bandwidth.
func (o Object) Degree(bDisk float64) int { return o.Type.Degree(bDisk) }

// Fragments returns the total number of fragments the object occupies:
// Subobjects × M_X.
func (o Object) Fragments(bDisk float64) int {
	return o.Subobjects * o.Degree(bDisk)
}

// SizeBytes returns the object's total size given the system fragment
// size in bytes.
func (o Object) SizeBytes(bDisk, fragmentBytes float64) float64 {
	return float64(o.Fragments(bDisk)) * fragmentBytes
}

// DisplaySeconds returns the time to display the object: each
// subobject takes one time interval of fragmentBytes·8/B_Disk.
func (o Object) DisplaySeconds(bDisk, fragmentBytes float64) float64 {
	return float64(o.Subobjects) * fragmentBytes * 8 / bDisk
}

// Catalog is the database of objects, indexed by ObjectID.
type Catalog struct {
	objects []Object
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{} }

// Add appends an object and assigns its ID.  The returned Object has
// its ID populated.
func (c *Catalog) Add(o Object) (Object, error) {
	if err := o.Validate(); err != nil {
		return Object{}, err
	}
	o.ID = ObjectID(len(c.objects))
	c.objects = append(c.objects, o)
	return o, nil
}

// Get returns the object with the given ID.
func (c *Catalog) Get(id ObjectID) (Object, error) {
	if int(id) < 0 || int(id) >= len(c.objects) {
		return Object{}, fmt.Errorf("media: no object with id %d", id)
	}
	return c.objects[id], nil
}

// MustGet is Get for ids known to be valid; it panics otherwise.
func (c *Catalog) MustGet(id ObjectID) Object {
	o, err := c.Get(id)
	if err != nil {
		panic(err)
	}
	return o
}

// Len returns the number of objects in the catalog.
func (c *Catalog) Len() int { return len(c.objects) }

// All returns the objects in ID order.  The caller must not mutate the
// returned slice.
func (c *Catalog) All() []Object { return c.objects }

// UniformDatabase builds the §4 database: n identical objects of the
// given type and subobject count, named "obj<i>".
func UniformDatabase(n, subobjects int, typ Type) (*Catalog, error) {
	c := NewCatalog()
	for i := 0; i < n; i++ {
		if _, err := c.Add(Object{
			Name:       fmt.Sprintf("obj%d", i),
			Type:       typ,
			Subobjects: subobjects,
		}); err != nil {
			return nil, err
		}
	}
	return c, nil
}
