package vdisk

import (
	"testing"
	"testing/quick"
)

func TestPhysicalMotion(t *testing.T) {
	// A virtual disk shifts by k each interval, modulo D.
	cases := []struct{ z, t, k, d, want int }{
		{0, 0, 1, 8, 0},
		{6, 1, 1, 8, 7},
		{6, 2, 1, 8, 0}, // the Figure 6 wrap: disk 6 reaches disk 0 at t=2
		{3, 4, 5, 12, 11},
		{3, 100, 5, 12, (3 + 500) % 12},
	}
	for _, c := range cases {
		if got := Physical(c.z, c.t, c.k, c.d); got != c.want {
			t.Errorf("Physical(%d,%d,%d,%d) = %d, want %d", c.z, c.t, c.k, c.d, got, c.want)
		}
	}
}

func TestVirtualAtInvertsPhysical(t *testing.T) {
	err := quick.Check(func(zRaw, tRaw, kRaw, dRaw uint16) bool {
		d := int(dRaw%100) + 1
		k := int(kRaw)%d + 1
		z := int(zRaw) % d
		tt := int(tRaw) % 5000
		return VirtualAt(Physical(z, tt, k, d), tt, k, d) == z
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFirstAlignment(t *testing.T) {
	// Figure 6: virtual disk 6 reaches disk 0 (k=1, D=8) at t=2.
	if got, ok := FirstAlignment(6, 0, 1, 8); !ok || got != 2 {
		t.Errorf("FirstAlignment(6,0,1,8) = %d,%v, want 2,true", got, ok)
	}
	// Already in position.
	if got, ok := FirstAlignment(3, 3, 1, 8); !ok || got != 0 {
		t.Errorf("FirstAlignment(3,3,1,8) = %d,%v, want 0,true", got, ok)
	}
	// Misaligned residue class with gcd(k,D) = 5: virtual disk 0 only
	// visits multiples of 5 on a 10-disk farm with stride 5.
	if _, ok := FirstAlignment(0, 3, 5, 10); ok {
		t.Error("impossible alignment reported as reachable")
	}
	if got, ok := FirstAlignment(0, 5, 5, 10); !ok || got != 1 {
		t.Errorf("FirstAlignment(0,5,5,10) = %d,%v, want 1,true", got, ok)
	}
}

func TestFirstAlignmentAgainstBruteForce(t *testing.T) {
	err := quick.Check(func(zRaw, targetRaw, kRaw, dRaw uint8) bool {
		d := int(dRaw%50) + 1
		k := int(kRaw)%d + 1
		z := int(zRaw) % d
		target := int(targetRaw) % d
		got, ok := FirstAlignment(z, target, k, d)
		// Brute force over one full orbit.
		want, found := -1, false
		for tt := 0; tt < d; tt++ {
			if Physical(z, tt, k, d) == target {
				want, found = tt, true
				break
			}
		}
		if found != ok {
			return false
		}
		return !ok || got == want
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFigure6Assignment reproduces the admission of §3.2.1/Figure 6:
// D=8, k=1, object X with M=2 starting on disk 0; disks 1 and 6 are
// free.  Disk 1 reads fragment X0.1 immediately and buffers it two
// intervals; disk 6 is in position for X0.0 at interval 2, when
// delivery begins.
func TestFigure6Assignment(t *testing.T) {
	a, ok := ChooseVirtualDisks(8, 1, 0, 2, []int{1, 6})
	if !ok {
		t.Fatal("no assignment found")
	}
	if a.Z[0] != 6 || a.Z[1] != 1 {
		t.Fatalf("Z = %v, want [6 1]", a.Z)
	}
	if a.T[0] != 2 || a.T[1] != 0 || a.Tmax != 2 {
		t.Fatalf("T = %v, Tmax = %d; want [2 0], 2", a.T, a.Tmax)
	}
	if a.WOffset(1) != 2 || a.WOffset(0) != 0 {
		t.Fatalf("w_offsets = %d,%d, want 0,2", a.WOffset(0), a.WOffset(1))
	}
	if a.Contiguous() {
		t.Fatal("fragmented assignment reported contiguous")
	}
	if a.MaxBuffers() != 2 {
		t.Fatalf("MaxBuffers = %d, want 2", a.MaxBuffers())
	}
}

func TestContiguousAssignment(t *testing.T) {
	// Disks 4,5,6 in position for an object starting at disk 4.
	a, ok := ChooseVirtualDisks(12, 1, 4, 3, []int{4, 5, 6})
	if !ok {
		t.Fatal("no assignment found")
	}
	if !a.Contiguous() || a.Tmax != 0 || a.MaxBuffers() != 0 {
		t.Fatalf("in-position adjacent disks should be contiguous: %+v", a)
	}
}

func TestNewAssignmentValidation(t *testing.T) {
	if _, err := NewAssignment(8, 1, 0, 2, []int{1}); err == nil {
		t.Error("wrong-length Z accepted")
	}
	if _, err := NewAssignment(8, 1, 9, 2, []int{1, 2}); err == nil {
		t.Error("out-of-range first disk accepted")
	}
	if _, err := NewAssignment(8, 1, 0, 2, []int{1, 1}); err == nil {
		t.Error("duplicate virtual disk accepted")
	}
	if _, err := NewAssignment(8, 1, 0, 2, []int{1, 8}); err == nil {
		t.Error("out-of-range virtual disk accepted")
	}
	// gcd misalignment: with k=5, D=10, a virtual disk on an even
	// residue cannot reach an odd target.
	if _, err := NewAssignment(10, 5, 0, 2, []int{0, 2}); err == nil {
		t.Error("unreachable fragment accepted")
	}
}

func TestChooseVirtualDisksInfeasible(t *testing.T) {
	if _, ok := ChooseVirtualDisks(8, 1, 0, 3, []int{1, 6}); ok {
		t.Error("chose 3 virtual disks from a 2-disk free set")
	}
	// k=5, D=10: free disks all on the even orbit cannot serve
	// fragment 1 (odd residue).
	if _, ok := ChooseVirtualDisks(10, 5, 0, 2, []int{0, 2, 4}); ok {
		t.Error("chose misaligned virtual disks")
	}
}

// TestFigure6DeliveryTimeline replays the full Figure 6 narrative.
func TestFigure6DeliveryTimeline(t *testing.T) {
	a, ok := ChooseVirtualDisks(8, 1, 0, 2, []int{1, 6})
	if !ok {
		t.Fatal("no assignment")
	}
	del, err := NewDelivery(a, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	// Step to interval 5 (execute intervals 0..4).
	for i := 0; i < 5; i++ {
		if err := del.Step(); err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
	}
	// "By the start of time interval 5, fragments X3.1 and X4.1 are
	// already buffered": stream 1 has read 0..4 and delivered 0..2.
	reads := map[[2]int]int{} // {frag, subobject} -> interval
	for _, act := range del.Actions() {
		if act.Read {
			reads[[2]int{act.Frag, act.Subobject}] = act.Interval
		}
	}
	if got := reads[[2]int{1, 0}]; got != 0 {
		t.Errorf("X0.1 read at %d, want 0", got)
	}
	if got := reads[[2]int{1, 1}]; got != 1 {
		t.Errorf("X1.1 read at %d, want 1 (paper: disk 2 reads X1.1 at time 1)", got)
	}
	if got := reads[[2]int{0, 0}]; got != 2 {
		t.Errorf("X0.0 read at %d, want 2", got)
	}

	// "at time interval 5, the 2 intervening disks have completed":
	// coalesce fragment 1 onto virtual disk 7 (adjacent to 6).
	if err := del.Coalesce(1, 7); err != nil {
		t.Fatalf("coalesce: %v", err)
	}
	if _, err := del.Run(); err != nil {
		t.Fatal(err)
	}
	if del.Coalescings() != 1 {
		t.Fatal("coalescing not counted")
	}

	// Rebuild the action index with the full trace.
	outs := map[[2]int]Action{}
	reads = map[[2]int]int{}
	for _, act := range del.Actions() {
		if act.Read {
			reads[[2]int{act.Frag, act.Subobject}] = act.Interval
		} else {
			outs[[2]int{act.Frag, act.Subobject}] = act
		}
	}
	// "During time intervals 5 and 6, fragments X3.1 and X4.1 are
	// delivered from buffers while fragments X3.0 and X4.0 are
	// delivered directly from disk."
	for s := 3; s <= 4; s++ {
		o1 := outs[[2]int{1, s}]
		if o1.Interval != s+2 || !o1.Buffered {
			t.Errorf("X%d.1 delivery = interval %d buffered=%v, want %d from buffer", s, o1.Interval, o1.Buffered, s+2)
		}
		o0 := outs[[2]int{0, s}]
		if o0.Interval != s+2 || o0.Buffered {
			t.Errorf("X%d.0 delivery = interval %d buffered=%v, want %d pipelined", s, o0.Interval, o0.Buffered, s+2)
		}
	}
	// "Starting at time 7, the coalescing has been completed and the 2
	// consecutive disks pipeline the fragments directly from the disk."
	if got := reads[[2]int{1, 5}]; got != 7 {
		t.Errorf("X5.1 read at %d, want 7", got)
	}
	for s := 5; s < 8; s++ {
		for f := 0; f < 2; f++ {
			o := outs[[2]int{f, s}]
			if o.Interval != s+2 || o.Buffered {
				t.Errorf("X%d.%d delivery = interval %d buffered=%v, want %d pipelined",
					s, f, o.Interval, o.Buffered, s+2)
			}
		}
	}
	// After coalescing, fragment 1 is served by virtual disk 7,
	// adjacent to virtual disk 6.
	last := outs[[2]int{1, 7}]
	if last.VDisk != 7 {
		t.Errorf("final X.1 stream on virtual disk %d, want 7", last.VDisk)
	}
}

func TestDeliveryHiccupFreeProperty(t *testing.T) {
	// Property: any feasible assignment delivers all n subobjects
	// without hiccup, finishing exactly at Tmax + n - 1.
	err := quick.Check(func(dRaw, kRaw, mRaw, nRaw, firstRaw, permRaw uint8) bool {
		d := int(dRaw%12) + 2
		k := int(kRaw)%d + 1
		m := int(mRaw)%(d/2+1) + 1
		if m > d {
			m = d
		}
		n := int(nRaw%20) + 1
		first := int(firstRaw) % d
		// Free set: all disks (always feasible when alignment exists).
		free := make([]int, d)
		for i := range free {
			free[i] = (i + int(permRaw)) % d
		}
		a, ok := ChooseVirtualDisks(d, k, first, m, free)
		if !ok {
			return true // infeasible geometry (gcd misalignment)
		}
		del, err := NewDelivery(a, n, false)
		if err != nil {
			return false
		}
		end, err := del.Run()
		return err == nil && end == a.Tmax+n-1
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryBufferBound(t *testing.T) {
	// The peak buffer population never exceeds the assignment's
	// MaxBuffers plus the M fragments in flight during an interval.
	a, ok := ChooseVirtualDisks(16, 1, 0, 4, []int{2, 5, 9, 14})
	if !ok {
		t.Fatal("no assignment")
	}
	del, err := NewDelivery(a, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := del.Run(); err != nil {
		t.Fatal(err)
	}
	if del.MaxBuffered() > a.MaxBuffers()+a.M {
		t.Fatalf("peak buffers %d exceeded bound %d", del.MaxBuffered(), a.MaxBuffers()+a.M)
	}
}

func TestCoalesceRejectsLateDisk(t *testing.T) {
	// A new virtual disk that aligns too late must be rejected, since
	// the backlog cannot cover the quiet period.
	a, err := NewAssignment(8, 1, 0, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	del, err := NewDelivery(a, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := del.Step(); err != nil { // interval 0: reads X0.0/X0.1, delivers X0
		t.Fatal(err)
	}
	// Virtual disk 3 reaches fragment 1's next disk (subobject 1 at
	// disk 2) seven intervals from now — far past delivery time.
	if err := del.Coalesce(1, 3); err == nil {
		t.Fatal("late coalesce accepted")
	}
}

func TestCoalesceValidation(t *testing.T) {
	a, err := NewAssignment(8, 1, 0, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	del, err := NewDelivery(a, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := del.Coalesce(5, 3); err == nil {
		t.Error("out-of-range fragment accepted")
	}
	if err := del.Coalesce(1, 0); err == nil {
		t.Error("coalescing onto an in-use virtual disk accepted")
	}
}

func TestNewDeliveryValidation(t *testing.T) {
	a, err := NewAssignment(8, 1, 0, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDelivery(a, 0, false); err == nil {
		t.Error("zero subobjects accepted")
	}
}

func TestStepAfterDoneErrors(t *testing.T) {
	a, err := NewAssignment(4, 1, 0, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	del, err := NewDelivery(a, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := del.Run(); err != nil {
		t.Fatal(err)
	}
	if err := del.Step(); err == nil {
		t.Error("Step after completion succeeded")
	}
}

// TestDeliveryWithStrideEqualsM exercises simple striping's delivery
// through the same machinery: adjacent in-position disks, stride M.
func TestDeliveryWithStrideEqualsM(t *testing.T) {
	a, ok := ChooseVirtualDisks(9, 3, 0, 3, []int{0, 1, 2})
	if !ok {
		t.Fatal("no assignment")
	}
	if !a.Contiguous() {
		t.Fatal("simple-striping admission should be contiguous")
	}
	del, err := NewDelivery(a, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	end, err := del.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 11 {
		t.Fatalf("display of 12 subobjects ended at interval %d, want 11", end)
	}
}

func BenchmarkDeliveryStep(b *testing.B) {
	a, ok := ChooseVirtualDisks(1000, 5, 0, 5, []int{0, 1, 2, 3, 4})
	if !ok {
		b.Fatal("no assignment")
	}
	del, err := NewDelivery(a, b.N+1, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := del.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChooseVirtualDisks(b *testing.B) {
	free := make([]int, 100)
	for i := range free {
		free[i] = i * 7 % 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ChooseVirtualDisks(1000, 1, 0, 5, free); !ok {
			b.Fatal("infeasible")
		}
	}
}
