package vdisk

import "fmt"

// Action records one disk or network operation performed during an
// interval, for tracing and for the Figure 6 rendering.
type Action struct {
	Interval  int
	Frag      int  // fragment index (stream)
	Subobject int  // subobject number
	VDisk     int  // virtual disk performing the action
	Disk      int  // physical disk position at this interval
	Read      bool // true = disk read, false = network output
	Buffered  bool // for outputs: delivered from buffer rather than pipelined
}

// stream is the per-fragment state of Algorithm 1/2: which virtual
// disk reads this fragment stream, how far it has read, and how many
// fragments sit in its node's buffer.
type stream struct {
	vdisk    int // virtual disk id (physical position at interval 0 of the delivery clock)
	nextRead int // next subobject to read
	buffered int // fragments read but not yet delivered
}

// Delivery executes one display under Algorithm 1, with Algorithm 2's
// dynamic coalescing available via Coalesce.  Intervals are counted
// from the admission instant (interval 0).  The delivery of subobject
// s happens at interval Tmax + s; the display is hiccup-free by
// construction, and Step returns an error if any invariant breaks.
type Delivery struct {
	a        Assignment
	n        int // subobjects
	now      int // current interval (next Step executes this interval)
	deliver  int // interval at which subobject 0 is delivered (= a.Tmax)
	streams  []stream
	maxBuf   int
	done     bool
	trace    bool
	actions  []Action
	coalesce int // count of completed coalescings
}

// NewDelivery prepares the delivery of an n-subobject object under
// the given assignment.  With trace=true every action is recorded
// (used for the Figure 6 rendering and the tests).
func NewDelivery(a Assignment, n int, trace bool) (*Delivery, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vdisk: need at least one subobject, got %d", n)
	}
	d := &Delivery{a: a, n: n, deliver: a.Tmax, trace: trace}
	d.streams = make([]stream, a.M)
	for i := range d.streams {
		d.streams[i] = stream{vdisk: a.Z[i], nextRead: 0}
	}
	return d, nil
}

// Done reports whether the last subobject has been delivered.
func (d *Delivery) Done() bool { return d.done }

// Now returns the next interval to execute.
func (d *Delivery) Now() int { return d.now }

// MaxBuffered returns the peak total buffered fragments observed.
func (d *Delivery) MaxBuffered() int { return d.maxBuf }

// Coalescings returns the number of completed coalesce operations.
func (d *Delivery) Coalescings() int { return d.coalesce }

// Actions returns the recorded trace (nil unless trace was requested).
func (d *Delivery) Actions() []Action { return d.actions }

// EndInterval returns the interval after which the display completes:
// the last subobject is delivered at Tmax + n − 1.
func (d *Delivery) EndInterval() int { return d.deliver + d.n - 1 }

// record appends to the trace when tracing is on.
func (d *Delivery) record(act Action) {
	if d.trace {
		d.actions = append(d.actions, act)
	}
}

// Step executes one interval: every active stream whose virtual disk
// is aligned with its next fragment reads it, and — once the startup
// delay has elapsed — the fragments of the due subobject are delivered
// to the network, each either pipelined directly from its disk read or
// drawn from the node's buffer.
func (d *Delivery) Step() error {
	if d.done {
		return fmt.Errorf("vdisk: Step after completion")
	}
	t := d.now

	// Read phase.
	readThisInterval := make([]bool, d.a.M)
	for i := range d.streams {
		st := &d.streams[i]
		if st.nextRead >= d.n {
			continue
		}
		pos := Physical(st.vdisk, t, d.a.K, d.a.D)
		fragDisk := (d.a.First + st.nextRead*d.a.K + i) % d.a.D
		if pos == fragDisk {
			d.record(Action{Interval: t, Frag: i, Subobject: st.nextRead,
				VDisk: st.vdisk, Disk: pos, Read: true})
			st.nextRead++
			st.buffered++
			readThisInterval[i] = true
		}
	}

	// Deliver phase.
	sw := t - d.deliver
	if sw >= 0 && sw < d.n {
		for i := range d.streams {
			st := &d.streams[i]
			if st.buffered <= 0 {
				return fmt.Errorf("vdisk: hiccup — fragment %d of subobject %d not available at interval %d", i, sw, t)
			}
			st.buffered--
			// The delivery is pipelined straight from the disk only
			// when the fragment delivered is the one read this very
			// interval; otherwise it comes from the node's buffer.
			pipelined := readThisInterval[i] && st.nextRead-1 == sw
			d.record(Action{Interval: t, Frag: i, Subobject: sw,
				VDisk: st.vdisk, Disk: Physical(st.vdisk, t, d.a.K, d.a.D),
				Read: false, Buffered: !pipelined})
		}
		if sw == d.n-1 {
			d.done = true
		}
	}

	// Track the peak buffer population after delivery.
	total := 0
	for i := range d.streams {
		total += d.streams[i].buffered
	}
	if total > d.maxBuf {
		d.maxBuf = total
	}

	d.now++
	return nil
}

// Run steps the delivery to completion and returns the final interval
// executed.
func (d *Delivery) Run() (int, error) {
	guard := d.EndInterval() + d.a.D + 1
	for !d.done {
		if d.now > guard {
			return d.now, fmt.Errorf("vdisk: delivery did not complete by interval %d", guard)
		}
		if err := d.Step(); err != nil {
			return d.now, err
		}
	}
	return d.now - 1, nil
}

// Coalesce moves fragment stream frag onto virtual disk newZ, which
// must currently be free (the caller owns disk bookkeeping).  Per
// Algorithm 2 the old virtual disk stops reading immediately; the
// buffered backlog continues to be delivered, and the new virtual
// disk enters a quiet period until it aligns with the first fragment
// the old disk had not read.  Coalescing is rejected if the new
// virtual disk would align too late to sustain hiccup-free delivery.
func (d *Delivery) Coalesce(frag, newZ int) error {
	if frag < 0 || frag >= d.a.M {
		return fmt.Errorf("vdisk: fragment %d out of range", frag)
	}
	if d.done {
		return fmt.Errorf("vdisk: coalesce after completion")
	}
	st := &d.streams[frag]
	for i := range d.streams {
		if d.streams[i].vdisk == newZ {
			return fmt.Errorf("vdisk: virtual disk %d already serves fragment %d", newZ, i)
		}
	}
	if st.nextRead >= d.n {
		return fmt.Errorf("vdisk: fragment stream %d has finished reading", frag)
	}
	// The new virtual disk must reach the disk of fragment
	// (st.nextRead, frag) no later than that subobject's delivery.
	resume := st.nextRead
	fragDisk := (d.a.First + resume*d.a.K + frag) % d.a.D
	pos := Physical(newZ, d.now, d.a.K, d.a.D)
	dt, ok := FirstAlignment(pos, fragDisk, d.a.K, d.a.D)
	if !ok {
		return fmt.Errorf("vdisk: virtual disk %d can never align with fragment %d", newZ, frag)
	}
	// While waiting dt intervals, reads of this stream stop but
	// deliveries continue: the buffered backlog must cover them.  The
	// stream's backlog covers deliveries of subobjects up to
	// resume−1; delivery of subobject `resume` happens at interval
	// deliver+resume, and the new disk reads it at now+dt.
	if d.now+dt > d.deliver+resume {
		return fmt.Errorf("vdisk: coalescing fragment %d onto virtual disk %d would hiccup (aligns %d intervals late)",
			frag, newZ, d.now+dt-(d.deliver+resume))
	}
	st.vdisk = newZ
	d.coalesce++
	return nil
}
