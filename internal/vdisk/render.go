package vdisk

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTimeline formats a delivery trace as an interval-by-disk
// table in the style of Figure 6: each cell shows the fragment read
// from that physical disk ("rd X3.0") and/or delivered through that
// node ("tx X3.1*", the star marking delivery from buffer).
func RenderTimeline(actions []Action, d int) string {
	if len(actions) == 0 {
		return "(no actions)\n"
	}
	maxT := 0
	for _, a := range actions {
		if a.Interval > maxT {
			maxT = a.Interval
		}
	}
	type cellKey struct{ t, disk int }
	cells := make(map[cellKey][]string)
	for _, a := range actions {
		key := cellKey{a.Interval, a.Disk}
		var s string
		if a.Read {
			s = fmt.Sprintf("rd X%d.%d", a.Subobject, a.Frag)
		} else {
			star := ""
			if a.Buffered {
				star = "*"
			}
			s = fmt.Sprintf("tx X%d.%d%s", a.Subobject, a.Frag, star)
		}
		cells[key] = append(cells[key], s)
	}
	const width = 9
	var b strings.Builder
	b.WriteString("t   ")
	for disk := 0; disk < d; disk++ {
		b.WriteString(fmt.Sprintf("| %-*s", width, fmt.Sprintf("disk %d", disk)))
	}
	b.WriteString("\n")
	for t := 0; t <= maxT; t++ {
		lines := 1
		for disk := 0; disk < d; disk++ {
			if n := len(cells[cellKey{t, disk}]); n > lines {
				lines = n
			}
		}
		for l := 0; l < lines; l++ {
			if l == 0 {
				b.WriteString(fmt.Sprintf("%-4d", t))
			} else {
				b.WriteString("    ")
			}
			for disk := 0; disk < d; disk++ {
				cs := cells[cellKey{t, disk}]
				sort.Strings(cs)
				cell := ""
				if l < len(cs) {
					cell = cs[l]
				}
				b.WriteString(fmt.Sprintf("| %-*s", width, cell))
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("(* = delivered from buffer)\n")
	return b.String()
}

// Figure6 replays the §3.2.1 scenario — D=8, k=1, M=2, X starting on
// disk 0 with only disks 1 and 6 free, coalescing fragment 1 onto
// virtual disk 7 at interval 5 — and renders its timeline.
func Figure6(n int) (string, error) {
	a, ok := ChooseVirtualDisks(8, 1, 0, 2, []int{1, 6})
	if !ok {
		return "", fmt.Errorf("vdisk: figure 6 assignment infeasible")
	}
	del, err := NewDelivery(a, n, true)
	if err != nil {
		return "", err
	}
	for del.Now() < 5 && !del.Done() {
		if err := del.Step(); err != nil {
			return "", err
		}
	}
	if !del.Done() {
		if err := del.Coalesce(1, 7); err != nil {
			return "", err
		}
	}
	if _, err := del.Run(); err != nil {
		return "", err
	}
	return RenderTimeline(del.Actions(), 8), nil
}
