// Package vdisk implements the paper's virtual-disk abstraction
// (§3.2.1) and the two algorithms built on it: time-fragmented
// delivery with buffering (Algorithm 1) and dynamic coalescing of
// fragmented requests (Algorithm 2).
//
// A virtual disk is a position on the farm that shifts by the stride
// k every time interval, so that a virtual disk reading fragment i of
// subobject s in one interval is positioned over fragment i of
// subobject s+1 in the next.  We identify a virtual disk by its
// physical position at the reference interval τ=0; its position at
// interval t is
//
//	physical(z, t) = (z + k·t) mod D
//
// (The paper writes physical disk (i − kt) mod D, naming a virtual
// disk by the position it would have had at t=0 projected with the
// opposite sign; the two conventions describe the same motion.)
//
// When a request's M_X required disks are not simultaneously free but
// M_X non-adjacent virtual disks are, the display can still be
// admitted: early-positioned virtual disks read fragments into
// buffers (w_offset intervals ahead) and the display starts when the
// last stream reaches its first fragment.  Later, when intervening
// disks free up, streams can be coalesced onto closer virtual disks,
// shrinking the buffer requirement (Figure 6).
package vdisk

import "fmt"

// Physical returns the physical disk under virtual disk z at interval
// t (t may be any non-negative integer).
func Physical(z, t, k, d int) int {
	if d <= 0 {
		panic("vdisk: non-positive D")
	}
	return (z + k*t%d + d) % d
}

// VirtualAt returns the virtual disk id (position at interval 0)
// whose physical position at interval t is phys — the inverse of
// Physical in its first argument.
func VirtualAt(phys, t, k, d int) int {
	if d <= 0 {
		panic("vdisk: non-positive D")
	}
	return ((phys-k*t%d)%d + d) % d
}

// FirstAlignment returns the smallest t ≥ 0 at which virtual disk z is
// positioned over physical disk target, and ok=false when no such t
// exists (possible when gcd(k, D) does not divide target−z).
func FirstAlignment(z, target, k, d int) (t int, ok bool) {
	if d <= 0 || k <= 0 {
		panic("vdisk: non-positive D or k")
	}
	need := ((target-z)%d + d) % d
	// Solve k·t ≡ need (mod d) for minimal t ≥ 0.
	g := gcd(k, d)
	if need%g != 0 {
		return 0, false
	}
	// Reduce and invert k/g modulo d/g.
	kk, dd, nn := k/g, d/g, need/g
	inv, ok := modInverse(kk, dd)
	if !ok {
		return 0, false
	}
	return (nn % dd * inv) % dd, true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns a^(-1) mod m via the extended Euclid algorithm.
func modInverse(a, m int) (int, bool) {
	if m == 1 {
		return 0, true
	}
	g, x, _ := extGCD(a%m, m)
	if g != 1 {
		return 0, false
	}
	return (x%m + m) % m, true
}

func extGCD(a, b int) (g, x, y int) {
	if a == 0 {
		return b, 0, 1
	}
	g, x1, y1 := extGCD(b%a, a)
	return g, y1 - (b/a)*x1, x1
}

// Assignment maps each fragment index of one display to a virtual
// disk.  Z[i] is the virtual disk (physical position at the admission
// interval) serving fragment i; T[i] is the number of intervals until
// that virtual disk first reaches fragment i's disk; Tmax = max T[i]
// is the startup delay, after which delivery is continuous.
type Assignment struct {
	D, K  int
	First int // physical disk of the object's fragment (s=0, i=0)
	M     int
	Z     []int
	T     []int
	Tmax  int
}

// NewAssignment validates the virtual-disk choice for an object whose
// subobject 0 starts at physical disk first.
func NewAssignment(d, k, first, m int, z []int) (Assignment, error) {
	if len(z) != m {
		return Assignment{}, fmt.Errorf("vdisk: %d virtual disks for degree %d", len(z), m)
	}
	if first < 0 || first >= d {
		return Assignment{}, fmt.Errorf("vdisk: first disk %d out of range [0, %d)", first, d)
	}
	seen := make(map[int]bool, m)
	a := Assignment{D: d, K: k, First: first, M: m, Z: append([]int(nil), z...), T: make([]int, m)}
	for i, zi := range z {
		if zi < 0 || zi >= d {
			return Assignment{}, fmt.Errorf("vdisk: virtual disk %d out of range [0, %d)", zi, d)
		}
		if seen[zi] {
			return Assignment{}, fmt.Errorf("vdisk: virtual disk %d assigned twice", zi)
		}
		seen[zi] = true
		t, ok := FirstAlignment(zi, (first+i)%d, k, d)
		if !ok {
			return Assignment{}, fmt.Errorf("vdisk: virtual disk %d can never reach fragment %d's disk %d (gcd(%d,%d) misalignment)",
				zi, i, (first+i)%d, k, d)
		}
		a.T[i] = t
		if t > a.Tmax {
			a.Tmax = t
		}
	}
	return a, nil
}

// WOffset returns the number of intervals fragment stream i must
// buffer each fragment before delivery — the w_offset of the paper's
// Algorithm 1 (zero for the last-aligned stream).
func (a Assignment) WOffset(i int) int { return a.Tmax - a.T[i] }

// MaxBuffers returns the peak number of buffered fragments across all
// streams: sum of the per-stream w_offsets.
func (a Assignment) MaxBuffers() int {
	total := 0
	for i := range a.T {
		total += a.WOffset(i)
	}
	return total
}

// Contiguous reports whether the assignment is unfragmented: every
// stream aligned simultaneously (all T equal), i.e. the M virtual
// disks are adjacent and in position.
func (a Assignment) Contiguous() bool {
	for i := range a.T {
		if a.T[i] != a.T[0] {
			return false
		}
	}
	return true
}

// ChooseVirtualDisks picks M distinct virtual disks from the free set
// for an object starting at physical disk first, greedily minimizing
// each stream's alignment delay (and therefore buffering).  The free
// slice lists physical disks that are idle at the admission interval
// and will remain dedicated to this display.  It returns ok=false
// when no feasible choice exists.
func ChooseVirtualDisks(d, k, first, m int, free []int) (Assignment, bool) {
	used := make(map[int]bool, m)
	z := make([]int, m)
	for i := 0; i < m; i++ {
		best, bestT := -1, -1
		for _, f := range free {
			if used[f] {
				continue
			}
			t, ok := FirstAlignment(f, (first+i)%d, k, d)
			if !ok {
				continue
			}
			if best < 0 || t < bestT {
				best, bestT = f, t
			}
		}
		if best < 0 {
			return Assignment{}, false
		}
		used[best] = true
		z[i] = best
	}
	a, err := NewAssignment(d, k, first, m, z)
	if err != nil {
		return Assignment{}, false
	}
	return a, true
}
