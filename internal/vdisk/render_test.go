package vdisk

import (
	"strings"
	"testing"
)

func TestRenderTimelineEmpty(t *testing.T) {
	if got := RenderTimeline(nil, 4); !strings.Contains(got, "no actions") {
		t.Fatalf("empty timeline rendered %q", got)
	}
}

func TestFigure6Rendering(t *testing.T) {
	s, err := Figure6(8)
	if err != nil {
		t.Fatal(err)
	}
	// The narrative's key moments must be visible in the rendering.
	for _, want := range []string{
		"disk 0",
		"rd X0.1",  // disk 1 reads X0.1 at t=0
		"rd X0.0",  // disk 0 read at t=2
		"tx X0.1*", // X0.1 delivered from buffer
		"tx X3.0",  // X3.0 pipelined at t=5
		"tx X4.1*", // X4.1 drained from backlog at t=6
		"rd X5.1",  // the coalesced virtual disk resumes reads
		"delivered from buffer",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 6 rendering missing %q:\n%s", want, s)
		}
	}
	// After coalescing completes (t >= 7), no buffered deliveries.
	lines := strings.Split(s, "\n")
	for _, line := range lines {
		if strings.HasPrefix(line, "7 ") || strings.HasPrefix(line, "8 ") || strings.HasPrefix(line, "9 ") {
			if strings.Contains(line, "*") {
				t.Errorf("buffered delivery after coalescing completed: %q", line)
			}
		}
	}
}

func TestFigure6ShortObject(t *testing.T) {
	// Object finishes before the coalescing point: the scenario must
	// still complete without error.
	if _, err := Figure6(3); err != nil {
		t.Fatalf("short figure-6 run failed: %v", err)
	}
}

func TestRenderTimelineShowsAllIntervals(t *testing.T) {
	a, ok := ChooseVirtualDisks(8, 1, 0, 2, []int{1, 6})
	if !ok {
		t.Fatal("no assignment")
	}
	del, err := NewDelivery(a, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := del.Run(); err != nil {
		t.Fatal(err)
	}
	s := RenderTimeline(del.Actions(), 8)
	// Delivery ends at Tmax+n-1 = 5; every interval row 0..5 present.
	for _, row := range []string{"\n0 ", "\n1 ", "\n2 ", "\n3 ", "\n4 ", "\n5 "} {
		if !strings.Contains(s, row) {
			t.Errorf("timeline missing interval row %q:\n%s", strings.TrimSpace(row), s)
		}
	}
}
