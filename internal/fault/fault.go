// Package fault defines deterministic fault plans for the simulation
// engines: disk failures (one-shot or a seeded MTTF/MTTR repair
// process), transient slow-disk windows, and tertiary-device outages.
//
// A Plan is a pure schedule: building one performs no I/O and draws
// any randomness (the repair process) from a named rng stream at build
// time, so the same plan arguments always compile to the same event
// sequence and a faulted run is exactly as reproducible as a clean
// one.  Plans are immutable once handed to an engine and may be shared
// by concurrent runs; each engine keeps its own cursor.
package fault

import (
	"fmt"
	"sort"

	"github.com/mmsim/staggered/internal/rng"
)

// Kind classifies one fault event.
type Kind int

const (
	// DiskFail takes a disk out of service at Event.At.
	DiskFail Kind = iota
	// DiskRepair returns a failed disk to service.  The model is a
	// transient outage: the disk's contents survive the failure (a
	// controller or path fault, not a media loss).
	DiskRepair
	// SlowStart begins a latency-inflation window on a disk: reads
	// keep completing but every interval they serve a display counts a
	// degraded hiccup.
	SlowStart
	// SlowEnd closes a latency-inflation window.
	SlowEnd
	// TertiaryFail takes the tertiary device offline; an in-flight
	// materialization is abandoned and no new staging starts.
	TertiaryFail
	// TertiaryRepair returns the tertiary device to service.
	TertiaryRepair
	// ServerFail kills a whole cluster member at Event.At: its
	// in-flight displays abort, its queue drains to the survivors, and
	// it stops stepping.  Event.Disk holds the member index.  Server
	// events are cluster-scope: they are rejected by Validate (a member
	// engine cannot execute them) and are split out of a mixed plan by
	// SplitServerScope.
	ServerFail
	// ServerRepair restarts a killed member with cold caches.
	ServerRepair
)

func (k Kind) String() string {
	switch k {
	case DiskFail:
		return "disk-fail"
	case DiskRepair:
		return "disk-repair"
	case SlowStart:
		return "slow-start"
	case SlowEnd:
		return "slow-end"
	case TertiaryFail:
		return "tertiary-fail"
	case TertiaryRepair:
		return "tertiary-repair"
	case ServerFail:
		return "server-fail"
	case ServerRepair:
		return "server-repair"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled state change.
type Event struct {
	At   int // interval at which the change takes effect
	Kind Kind
	Disk int // disk index; -1 for tertiary events
}

// Plan is a buildable schedule of fault events.  The zero value and
// nil are both valid empty plans.
type Plan struct {
	events []Event
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Empty reports whether the plan schedules no events.
func (p *Plan) Empty() bool { return p == nil || len(p.events) == 0 }

// Len returns the number of scheduled events.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.events)
}

// FailDisk schedules a permanent failure of disk at interval at.
func (p *Plan) FailDisk(disk, at int) *Plan {
	p.events = append(p.events, Event{At: at, Kind: DiskFail, Disk: disk})
	return p
}

// FailDiskUntil schedules a failure of disk at interval at with a
// repair at interval repairAt.
func (p *Plan) FailDiskUntil(disk, at, repairAt int) *Plan {
	p.FailDisk(disk, at)
	p.events = append(p.events, Event{At: repairAt, Kind: DiskRepair, Disk: disk})
	return p
}

// SlowDisk schedules a latency-inflation window [at, until) on disk.
func (p *Plan) SlowDisk(disk, at, until int) *Plan {
	p.events = append(p.events,
		Event{At: at, Kind: SlowStart, Disk: disk},
		Event{At: until, Kind: SlowEnd, Disk: disk})
	return p
}

// TertiaryOutage schedules a tertiary-device outage [at, until).
func (p *Plan) TertiaryOutage(at, until int) *Plan {
	p.events = append(p.events,
		Event{At: at, Kind: TertiaryFail, Disk: -1},
		Event{At: until, Kind: TertiaryRepair, Disk: -1})
	return p
}

// FailServer schedules a permanent kill of cluster member at interval
// at.
func (p *Plan) FailServer(member, at int) *Plan {
	p.events = append(p.events, Event{At: at, Kind: ServerFail, Disk: member})
	return p
}

// FailServerUntil schedules a kill of cluster member at interval at
// with a cold restart at interval restartAt.
func (p *Plan) FailServerUntil(member, at, restartAt int) *Plan {
	p.FailServer(member, at)
	p.events = append(p.events, Event{At: restartAt, Kind: ServerRepair, Disk: member})
	return p
}

// ServerWearProcess schedules an alternating kill/restart process on
// each of the given cluster members up to the horizon, exactly as
// WearProcess does for disks but at member granularity, drawn from a
// per-member "fault-server-wear" stream so server wear never perturbs
// a coexisting disk wear process built from the same seed.
func (p *Plan) ServerWearProcess(members []int, mttf, mttr float64, horizon int, seed uint64) *Plan {
	if mttf <= 0 || mttr <= 0 {
		panic("fault: ServerWearProcess means must be positive")
	}
	src := rng.NewSource(seed)
	for _, m := range members {
		s := src.StreamN("fault-server-wear", m)
		t := 0
		for {
			t += atLeastOne(s.Exp(mttf))
			if t >= horizon {
				break
			}
			p.FailServer(m, t)
			t += atLeastOne(s.Exp(mttr))
			if t >= horizon {
				break
			}
			p.events = append(p.events, Event{At: t, Kind: ServerRepair, Disk: m})
		}
	}
	return p
}

// WearProcess schedules an alternating failure/repair process on each
// of the given disks up to the horizon: times to failure and to repair
// are exponentially distributed with means mttf and mttr (in
// intervals), drawn from a per-disk stream of the given seed.  The
// last failure before the horizon may go unrepaired.
func (p *Plan) WearProcess(disks []int, mttf, mttr float64, horizon int, seed uint64) *Plan {
	if mttf <= 0 || mttr <= 0 {
		panic("fault: WearProcess means must be positive")
	}
	src := rng.NewSource(seed)
	for _, d := range disks {
		s := src.StreamN("fault-wear", d)
		t := 0
		for {
			t += atLeastOne(s.Exp(mttf))
			if t >= horizon {
				break
			}
			p.FailDisk(d, t)
			t += atLeastOne(s.Exp(mttr))
			if t >= horizon {
				break
			}
			p.events = append(p.events, Event{At: t, Kind: DiskRepair, Disk: d})
		}
	}
	return p
}

func atLeastOne(x float64) int {
	n := int(x)
	if n < 1 {
		n = 1
	}
	return n
}

// Events returns the schedule sorted by time (insertion order within a
// tick).  The returned slice is a copy; the plan itself is never
// mutated after building, so concurrent engines may share it.
func (p *Plan) Events() []Event {
	if p.Empty() {
		return nil
	}
	out := make([]Event, len(p.events))
	copy(out, p.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks the plan against a farm of d disks.
func (p *Plan) Validate(d int) error {
	if p.Empty() {
		return nil
	}
	for _, ev := range p.events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %v %d at negative interval %d", ev.Kind, ev.Disk, ev.At)
		}
		switch ev.Kind {
		case TertiaryFail, TertiaryRepair:
			if ev.Disk != -1 {
				return fmt.Errorf("fault: tertiary event with disk %d", ev.Disk)
			}
		case ServerFail, ServerRepair:
			return fmt.Errorf("fault: server-scope event %v %d in a member plan (split with SplitServerScope)", ev.Kind, ev.Disk)
		default:
			if ev.Disk < 0 || ev.Disk >= d {
				return fmt.Errorf("fault: disk %d out of range [0, %d)", ev.Disk, d)
			}
		}
	}
	return nil
}

// ValidateServers checks a server-scope plan against a cluster of n
// members: every event must be a server kill or restart of a member in
// [0, n).
func (p *Plan) ValidateServers(n int) error {
	if p.Empty() {
		return nil
	}
	for _, ev := range p.events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %v %d at negative interval %d", ev.Kind, ev.Disk, ev.At)
		}
		switch ev.Kind {
		case ServerFail, ServerRepair:
			if ev.Disk < 0 || ev.Disk >= n {
				return fmt.Errorf("fault: server %d out of range [0, %d)", ev.Disk, n)
			}
		default:
			return fmt.Errorf("fault: %v event in a server plan (split with SplitServerScope)", ev.Kind)
		}
	}
	return nil
}

// SplitServerScope partitions the plan into its member-scope part
// (disk and tertiary events, runnable by every engine) and its
// server-scope part (whole-member kills and restarts, executed by the
// cluster layer).  Insertion order is preserved within each part; the
// receiver is not mutated.  Either part may be empty.
func (p *Plan) SplitServerScope() (member, server *Plan) {
	member, server = NewPlan(), NewPlan()
	if p.Empty() {
		return member, server
	}
	for _, ev := range p.events {
		switch ev.Kind {
		case ServerFail, ServerRepair:
			server.events = append(server.events, ev)
		default:
			member.events = append(member.events, ev)
		}
	}
	return member, server
}
