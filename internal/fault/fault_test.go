package fault

import (
	"reflect"
	"testing"
)

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.Len() != 0 || nilPlan.Events() != nil {
		t.Fatal("nil plan should be empty")
	}
	if err := nilPlan.Validate(10); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
	p := NewPlan()
	if !p.Empty() || p.Len() != 0 {
		t.Fatal("fresh plan should be empty")
	}
	if got, err := Parse("  "); err != nil || !got.Empty() {
		t.Fatalf("blank string should parse to empty plan, got %v, %v", got, err)
	}
}

func TestBuildersAndSort(t *testing.T) {
	p := NewPlan().
		TertiaryOutage(50, 80).
		FailDiskUntil(3, 10, 40).
		SlowDisk(1, 5, 20).
		FailDisk(7, 10)
	want := []Event{
		{At: 5, Kind: SlowStart, Disk: 1},
		{At: 10, Kind: DiskFail, Disk: 3},
		{At: 10, Kind: DiskFail, Disk: 7},
		{At: 20, Kind: SlowEnd, Disk: 1},
		{At: 40, Kind: DiskRepair, Disk: 3},
		{At: 50, Kind: TertiaryFail, Disk: -1},
		{At: 80, Kind: TertiaryRepair, Disk: -1},
	}
	if got := p.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Events() = %v, want %v", got, want)
	}
	if err := p.Validate(8); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := p.Validate(7); err == nil {
		t.Fatal("disk 7 should be out of range for a 7-disk farm")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	p := NewPlan().FailDisk(0, 5).FailDisk(1, 1)
	a := p.Events()
	a[0].Disk = 99
	if b := p.Events(); b[0].Disk != 1 {
		t.Fatalf("Events() must copy; plan mutated to %v", b)
	}
}

func TestWearProcessDeterministic(t *testing.T) {
	build := func() []Event {
		return NewPlan().WearProcess([]int{0, 1, 2}, 50, 10, 1000, 7).Events()
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("wear process over 1000 intervals with MTTF 50 produced no events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("wear process is not deterministic for a fixed seed")
	}
	// Per disk the sequence must alternate fail/repair, strictly
	// increasing in time, inside the horizon.
	perDisk := map[int][]Event{}
	for _, ev := range a {
		perDisk[ev.Disk] = append(perDisk[ev.Disk], ev)
	}
	for d, evs := range perDisk {
		last := -1
		for i, ev := range evs {
			wantKind := DiskFail
			if i%2 == 1 {
				wantKind = DiskRepair
			}
			if ev.Kind != wantKind {
				t.Fatalf("disk %d event %d: kind %v, want %v", d, i, ev.Kind, wantKind)
			}
			if ev.At <= last || ev.At >= 1000 {
				t.Fatalf("disk %d event %d at %d: not strictly increasing inside horizon (prev %d)", d, i, ev.At, last)
			}
			last = ev.At
		}
	}
	if c := NewPlan().WearProcess([]int{0, 1, 2}, 50, 10, 1000, 8).Events(); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical wear schedules")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("fail:3@500; fail:4@100-200; slow:7@200-400; tert@1000-1500")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 100, Kind: DiskFail, Disk: 4},
		{At: 200, Kind: DiskRepair, Disk: 4},
		{At: 200, Kind: SlowStart, Disk: 7},
		{At: 400, Kind: SlowEnd, Disk: 7},
		{At: 500, Kind: DiskFail, Disk: 3},
		{At: 1000, Kind: TertiaryFail, Disk: -1},
		{At: 1500, Kind: TertiaryRepair, Disk: -1},
	}
	if got := p.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Events() = %v, want %v", got, want)
	}

	w, err := Parse("wear:0-2@mttf=50,mttr=10,until=1000,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	direct := NewPlan().WearProcess([]int{0, 1, 2}, 50, 10, 1000, 7)
	if !reflect.DeepEqual(w.Events(), direct.Events()) {
		t.Fatal("parsed wear clause disagrees with direct WearProcess call")
	}

	bad := []string{
		"fail:3",             // missing @AT
		"fail:x@5",           // bad disk
		"fail:3@9-5",         // window end before start
		"slow:2@100",         // slow needs a window
		"tert@100",           // outage needs a window
		"wear:0-2@mttf=50",   // missing mttr/until
		"wear:0-2@mttf=50,mttr=0,until=10", // non-positive mttr
		"frob:1@2",           // unknown clause
		"fail:1@2 extra",     // trailing junk inside the clause
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// TestParseServerClauses pins the server-scope grammar: one-shot
// kills, kill+restart windows, and the member-granularity wear
// process, all mixable with disk clauses in one string.
func TestParseServerClauses(t *testing.T) {
	p, err := Parse("server:1@300; server:2@100-250; fail:3@50")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 50, Kind: DiskFail, Disk: 3},
		{At: 100, Kind: ServerFail, Disk: 2},
		{At: 250, Kind: ServerRepair, Disk: 2},
		{At: 300, Kind: ServerFail, Disk: 1},
	}
	if got := p.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Events() = %v, want %v", got, want)
	}

	w, err := Parse("server:wear:0-2@mttf=50,mttr=10,until=1000,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	direct := NewPlan().ServerWearProcess([]int{0, 1, 2}, 50, 10, 1000, 7)
	if !reflect.DeepEqual(w.Events(), direct.Events()) {
		t.Fatal("parsed server wear clause disagrees with direct ServerWearProcess call")
	}
	// The member process draws from its own stream family: the same
	// parameters must not replay the disk wear schedule.
	disk := NewPlan().WearProcess([]int{0, 1, 2}, 50, 10, 1000, 7)
	same := true
	for i, ev := range w.Events() {
		if dv := disk.Events()[i]; ev.At != dv.At {
			same = false
			break
		}
	}
	if same {
		t.Fatal("server wear replayed the disk wear schedule — streams not split")
	}

	bad := []string{
		"server:1",        // missing @AT
		"server:x@5",      // bad member
		"server:1@9-5",    // restart before kill
		"server:wear:0-2@mttf=50", // missing mttr/until
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// TestServerScopeValidationAndSplit pins the scope fence: a member
// plan rejects server events, a server plan rejects disk events and
// out-of-range members, and SplitServerScope partitions a mixed plan
// cleanly without mutating it.
func TestServerScopeValidationAndSplit(t *testing.T) {
	mixed, err := Parse("fail:3@50; server:1@300-400; tert@100-200")
	if err != nil {
		t.Fatal(err)
	}
	if err := mixed.Validate(10); err == nil {
		t.Error("member-scope Validate accepted a server event")
	}
	if err := mixed.ValidateServers(4); err == nil {
		t.Error("server-scope Validate accepted a disk event")
	}

	member, server := mixed.SplitServerScope()
	if err := member.Validate(10); err != nil {
		t.Errorf("split member plan invalid: %v", err)
	}
	if err := server.ValidateServers(4); err != nil {
		t.Errorf("split server plan invalid: %v", err)
	}
	wantMember := []Event{
		{At: 50, Kind: DiskFail, Disk: 3},
		{At: 100, Kind: TertiaryFail, Disk: -1},
		{At: 200, Kind: TertiaryRepair, Disk: -1},
	}
	wantServer := []Event{
		{At: 300, Kind: ServerFail, Disk: 1},
		{At: 400, Kind: ServerRepair, Disk: 1},
	}
	if got := member.Events(); !reflect.DeepEqual(got, wantMember) {
		t.Errorf("member part = %v, want %v", got, wantMember)
	}
	if got := server.Events(); !reflect.DeepEqual(got, wantServer) {
		t.Errorf("server part = %v, want %v", got, wantServer)
	}
	if mixed.Len() != 5 {
		t.Errorf("split mutated the source plan: %d events left", mixed.Len())
	}

	if err := server.ValidateServers(1); err == nil {
		t.Error("member 1 should be out of range for a 1-member cluster")
	}
	empty, srv := NewPlan().SplitServerScope()
	if !empty.Empty() || !srv.Empty() {
		t.Error("splitting an empty plan should yield two empty plans")
	}
}
