package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles a fault-plan string into a Plan.  The grammar is a
// ';'-separated list of clauses (whitespace around clauses ignored):
//
//	fail:D@AT          one-shot failure of disk D at interval AT
//	fail:D@AT-UNTIL    failure of disk D at AT, repaired at UNTIL
//	slow:D@AT-UNTIL    latency-inflation window [AT, UNTIL) on disk D
//	tert@AT-UNTIL      tertiary-device outage [AT, UNTIL)
//	wear:LO-HI@mttf=F,mttr=R,until=H[,seed=S]
//	                   MTTF/MTTR repair process on disks LO..HI up to
//	                   interval H, drawn from seed S (default 1)
//	server:S@AT        one-shot kill of cluster member S at AT
//	server:S@AT-UNTIL  kill of member S at AT, cold restart at UNTIL
//	server:wear:LO-HI@mttf=F,mttr=R,until=H[,seed=S]
//	                   member-granularity MTTF/MTTR kill/restart process
//
// Example: "fail:3@500; slow:7@200-400; tert@1000-1500; server:1@2000".
// An empty string parses to an empty plan.  Server clauses are
// cluster-scope; callers running a cluster split a mixed plan with
// Plan.SplitServerScope.
func Parse(s string) (*Plan, error) {
	p := NewPlan()
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := parseClause(p, clause); err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

func parseClause(p *Plan, clause string) error {
	switch {
	case strings.HasPrefix(clause, "fail:"):
		disk, at, until, ranged, err := parseDiskAt(clause[len("fail:"):])
		if err != nil {
			return err
		}
		if ranged {
			p.FailDiskUntil(disk, at, until)
		} else {
			p.FailDisk(disk, at)
		}
		return nil
	case strings.HasPrefix(clause, "slow:"):
		disk, at, until, ranged, err := parseDiskAt(clause[len("slow:"):])
		if err != nil {
			return err
		}
		if !ranged {
			return fmt.Errorf("slow window needs AT-UNTIL")
		}
		p.SlowDisk(disk, at, until)
		return nil
	case strings.HasPrefix(clause, "tert@"):
		at, until, ranged, err := parseSpan(clause[len("tert@"):])
		if err != nil {
			return err
		}
		if !ranged {
			return fmt.Errorf("tertiary outage needs AT-UNTIL")
		}
		p.TertiaryOutage(at, until)
		return nil
	case strings.HasPrefix(clause, "wear:"):
		return parseWear(p, clause[len("wear:"):], false)
	case strings.HasPrefix(clause, "server:wear:"):
		return parseWear(p, clause[len("server:wear:"):], true)
	case strings.HasPrefix(clause, "server:"):
		member, at, until, ranged, err := parseDiskAt(clause[len("server:"):])
		if err != nil {
			return err
		}
		if ranged {
			p.FailServerUntil(member, at, until)
		} else {
			p.FailServer(member, at)
		}
		return nil
	default:
		return fmt.Errorf("unknown clause kind")
	}
}

// parseDiskAt parses "D@AT" or "D@AT-UNTIL".
func parseDiskAt(s string) (disk, at, until int, ranged bool, err error) {
	disk = -1
	i := strings.IndexByte(s, '@')
	if i < 0 {
		err = fmt.Errorf("missing '@'")
		return
	}
	disk, err = strconv.Atoi(s[:i])
	if err != nil {
		err = fmt.Errorf("bad disk %q", s[:i])
		return
	}
	at, until, ranged, err = parseSpan(s[i+1:])
	return
}

// parseSpan parses "AT" or "AT-UNTIL".
func parseSpan(s string) (at, until int, ranged bool, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		ranged = true
		if until, err = strconv.Atoi(s[i+1:]); err != nil {
			err = fmt.Errorf("bad interval %q", s[i+1:])
			return
		}
		s = s[:i]
	}
	if at, err = strconv.Atoi(s); err != nil {
		err = fmt.Errorf("bad interval %q", s)
		return
	}
	if ranged && until <= at {
		err = fmt.Errorf("window end %d not after start %d", until, at)
	}
	return
}

// parseWear parses "LO-HI@mttf=F,mttr=R,until=H[,seed=S]"; server
// selects the member-granularity process over the disk one.
func parseWear(p *Plan, s string, server bool) error {
	i := strings.IndexByte(s, '@')
	if i < 0 {
		return fmt.Errorf("missing '@'")
	}
	lo, hi, ranged, err := parseSpan(s[:i])
	if err != nil {
		return err
	}
	if !ranged {
		hi = lo
	}
	var (
		mttf, mttr float64
		horizon    int
		seed       uint64 = 1
	)
	for _, kv := range strings.Split(s[i+1:], ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return fmt.Errorf("bad parameter %q", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "mttf":
			mttf, err = strconv.ParseFloat(val, 64)
		case "mttr":
			mttr, err = strconv.ParseFloat(val, 64)
		case "until":
			horizon, err = strconv.Atoi(val)
		case "seed":
			seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return fmt.Errorf("unknown parameter %q", key)
		}
		if err != nil {
			return fmt.Errorf("bad %s %q", key, val)
		}
	}
	if mttf <= 0 || mttr <= 0 || horizon <= 0 {
		return fmt.Errorf("wear needs mttf>0, mttr>0, until>0")
	}
	disks := make([]int, 0, hi-lo+1)
	for d := lo; d <= hi; d++ {
		disks = append(disks, d)
	}
	if server {
		p.ServerWearProcess(disks, mttf, mttr, horizon, seed)
	} else {
		p.WearProcess(disks, mttf, mttr, horizon, seed)
	}
	return nil
}
