// Package analytic provides the closed-form models of the paper:
// §3.1's fragment-size/latency/bandwidth tradeoffs, Equation (1)'s
// memory requirement, and §3.2.2's stride analysis.  These are the
// formulas the simulator is calibrated against, exposed for capacity
// planning without running a simulation.
package analytic

import (
	"fmt"
	"math"

	"github.com/mmsim/staggered/internal/diskmodel"
)

// FragmentTradeoff is one row of the §3.1 tradeoff: as fragments grow,
// effective bandwidth improves (good) but the worst-case display
// startup latency grows (bad).
type FragmentTradeoff struct {
	Cylinders          int
	FragmentBytes      float64
	ServiceTimeSeconds float64 // S(C_i)
	EffectiveBandwidth float64 // bits/second
	WastedFraction     float64
	WorstLatencySecs   float64 // (R-1)·S(C_i)
}

// FragmentSweep evaluates the tradeoff for fragment sizes of 1..max
// cylinders on a farm with the given number of clusters R.
func FragmentSweep(spec diskmodel.Spec, clusters, maxCylinders int) ([]FragmentTradeoff, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if clusters < 1 || maxCylinders < 1 {
		return nil, fmt.Errorf("analytic: need at least one cluster and one cylinder")
	}
	rows := make([]FragmentTradeoff, 0, maxCylinders)
	for c := 1; c <= maxCylinders; c++ {
		bytes := float64(c) * spec.CylinderBytes
		st := spec.ServiceTime(bytes)
		rows = append(rows, FragmentTradeoff{
			Cylinders:          c,
			FragmentBytes:      bytes,
			ServiceTimeSeconds: st,
			EffectiveBandwidth: spec.EffectiveBandwidthExact(bytes),
			WastedFraction:     spec.WastedFraction(bytes),
			WorstLatencySecs:   float64(clusters-1) * st,
		})
	}
	return rows, nil
}

// WorstCaseStartupLatency returns the §3.1 bound: with R clusters and
// R−1 active requests, a new request waits at most (R−1)·S(C_i).
func WorstCaseStartupLatency(serviceTime float64, clusters int) float64 {
	if clusters < 1 {
		panic("analytic: need at least one cluster")
	}
	return float64(clusters-1) * serviceTime
}

// MinimumMemoryBytes is Equation (1): the per-disk memory needed to
// mask the switch delay, B_disk·(T_switch + T_sector), in bytes.
func MinimumMemoryBytes(bDisk, tSwitch, tSector float64) float64 {
	return bDisk * (tSwitch + tSector) / 8
}

// UniqueDisksUsed returns how many distinct disks a staggered-striped
// object touches: the §3.2.2 size/stride analysis.  n is the number
// of subobjects, m the degree of declustering, k the stride, d the
// farm size.  For an object long enough to wrap (n·k ≥ d, with
// gcd(d,k) | span) every disk is used.
func UniqueDisksUsed(d, k, m, n int) int {
	if d <= 0 || k <= 0 || m <= 0 || n <= 0 {
		panic("analytic: non-positive argument")
	}
	used := make([]bool, d)
	count := 0
	for s := 0; s < n; s++ {
		for i := 0; i < m; i++ {
			disk := (s*k + i) % d
			if !used[disk] {
				used[disk] = true
				count++
				if count == d {
					return d
				}
			}
		}
	}
	return count
}

// MaxCollisionDelay contrasts the two extreme strides of §3.2.2: the
// worst-case delay a second request suffers when its object's first
// fragments share disks with an in-progress display.
//
// With k < D the display moves off any given disk after one interval,
// so the wait is one service time; with k = D the display pins its
// M disks for the whole display, so the wait is the full display time.
func MaxCollisionDelay(k, d, n int, serviceTime float64) float64 {
	if k >= d {
		return float64(n) * serviceTime
	}
	return serviceTime
}

// DataSkewFree reports whether the (D, k) combination guarantees
// balanced storage for arbitrarily long objects (§3.2.2): gcd(D,k)=1.
func DataSkewFree(d, k int) bool {
	return gcd(d, k) == 1
}

// SubobjectSizeConstraint returns the §3.2.2 placement rule: to
// prevent data skew, the number of subobjects of every object should
// be a multiple of D/gcd(D,k) (the start-disk orbit length).
func SubobjectSizeConstraint(d, k int) int {
	return d / gcd(d, k)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// DisksForBandwidth returns M = ceil(bDisplay/bDisk) (§1) and the
// bandwidth wasted by integral allocation, plus the §3.2.3 logical
// (half-disk) allocation and its waste.
func DisksForBandwidth(bDisplay, bDisk float64) (whole int, wholeWaste float64, logical int, logicalWaste float64) {
	if bDisplay <= 0 || bDisk <= 0 {
		panic("analytic: non-positive bandwidth")
	}
	whole = int(math.Ceil(bDisplay/bDisk - 1e-12))
	wholeWaste = (float64(whole)*bDisk - bDisplay) / (float64(whole) * bDisk)
	logical = int(math.Ceil(bDisplay/(bDisk/2) - 1e-12))
	logicalWaste = (float64(logical)*bDisk/2 - bDisplay) / (float64(logical) * bDisk / 2)
	return whole, wholeWaste, logical, logicalWaste
}

// FarmObjectCapacity returns how many equal objects of n subobjects
// with degree m fit on d disks of capacityFragments cylinders each.
func FarmObjectCapacity(d, capacityFragments, m, n int) int {
	if d <= 0 || capacityFragments <= 0 || m <= 0 || n <= 0 {
		panic("analytic: non-positive argument")
	}
	return d * capacityFragments / (m * n)
}

// AggregateBandwidth returns the §5 observation: a farm of d disks
// delivers about d×B_disk bits per second ("In a system of 100 disks,
// aggregate bandwidth is approximately 1 gigabit per second").
func AggregateBandwidth(d int, bDisk float64) float64 {
	return float64(d) * bDisk
}
