package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// TestBlastRadiusExtremes: with k=D an object is pinned to M disks,
// so a single failure hits only M/D of the database; with k=M on the
// Table 3 farm every object touches every disk, so one failure hits
// everything.
func TestBlastRadiusExtremes(t *testing.T) {
	const d, m, n, count = 1000, 5, 3000, 200
	pinned := BlastRadius(d, d, m, n, count)
	if pinned > count*m/ /* footprint */ d+1 {
		t.Errorf("k=D blast radius = %d objects, want ~%d", pinned, count*m/d+1)
	}
	striped := BlastRadius(d, m, m, n, count)
	if striped != count {
		t.Errorf("k=M blast radius = %d objects, want all %d", striped, count)
	}
	if pinned >= striped {
		t.Error("pinning must shrink the blast radius")
	}
}

func TestBlastRadiusBounds(t *testing.T) {
	err := quick.Check(func(dRaw, kRaw, mRaw, nRaw, cRaw uint8) bool {
		d := int(dRaw%50) + 1
		k := int(kRaw)%d + 1
		m := int(mRaw)%d + 1
		n := int(nRaw%40) + 1
		count := int(cRaw % 100)
		b := BlastRadius(d, k, m, n, count)
		return b >= 0 && b <= count
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSurvivingBandwidthFraction(t *testing.T) {
	// No failures: everything survives.
	if got := SurvivingBandwidthFraction(1000, 5, 5, 3000, 0); got != 1 {
		t.Fatalf("zero failures survival = %v", got)
	}
	// Full-footprint objects (k=M, Table 3): any failure kills all.
	if got := SurvivingBandwidthFraction(1000, 5, 5, 3000, 1); got != 0 {
		t.Fatalf("k=M one-failure survival = %v, want 0", got)
	}
	// Pinned objects (k=D): one failure kills M/D of the database.
	got := SurvivingBandwidthFraction(1000, 1000, 5, 3000, 1)
	want := 1 - 5.0/1000
	if got < want-0.001 || got > want+0.001 {
		t.Fatalf("k=D one-failure survival = %v, want ~%v", got, want)
	}
}

func TestSurvivingBandwidthMonotone(t *testing.T) {
	prev := 1.1
	for f := 0; f <= 10; f++ {
		got := SurvivingBandwidthFraction(100, 100, 4, 500, f)
		if got > prev {
			t.Fatalf("survival not monotone at %d failures", f)
		}
		prev = got
	}
}

func TestAvailabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range failures did not panic")
		}
	}()
	SurvivingBandwidthFraction(10, 1, 1, 1, 11)
}

// bruteFootprint enumerates an object's stride orbit directly — the
// definition UniqueDisksUsed implements — so the exact-agreement
// properties below have an independent oracle.
func bruteFootprint(d, k, m, n int) int {
	used := map[int]bool{}
	for s := 0; s < n; s++ {
		for i := 0; i < m; i++ {
			used[(s*k+i)%d] = true
		}
	}
	return len(used)
}

// TestBlastRadiusBruteForce sweeps every small geometry and checks
// BlastRadius against the brute-force footprint: exactly the ceiling
// of count·footprint/D, capped at count.
func TestBlastRadiusBruteForce(t *testing.T) {
	for d := 2; d <= 12; d++ {
		for k := 1; k <= d; k++ {
			for m := 1; m <= d; m++ {
				for _, n := range []int{1, 2, 5, 9} {
					fp := bruteFootprint(d, k, m, n)
					if got := UniqueDisksUsed(d, k, m, n); got != fp {
						t.Fatalf("UniqueDisksUsed(%d,%d,%d,%d) = %d, brute force says %d", d, k, m, n, got, fp)
					}
					for _, count := range []int{0, 1, 7, 40} {
						want := count * fp / d
						if count*fp%d != 0 {
							want++
						}
						if want > count {
							want = count
						}
						if got := BlastRadius(d, k, m, n, count); got != want {
							t.Fatalf("BlastRadius(%d,%d,%d,%d,%d) = %d, brute force says %d",
								d, k, m, n, count, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSurvivingBandwidthHypergeometric checks the surviving fraction
// against the exact probability that a footprint-sized draw avoids
// every failed disk, for every failure count of every small geometry.
func TestSurvivingBandwidthHypergeometric(t *testing.T) {
	for d := 2; d <= 10; d++ {
		for k := 1; k <= d; k++ {
			for m := 1; m <= d; m++ {
				for _, n := range []int{1, 3, 7} {
					fp := bruteFootprint(d, k, m, n)
					prev := 1.0
					for f := 0; f <= d; f++ {
						got := SurvivingBandwidthFraction(d, k, m, n, f)
						want := 1.0
						for i := 0; i < f; i++ {
							want *= math.Max(0, float64(d-fp-i)) / float64(d-i)
						}
						if math.Abs(got-want) > 1e-12 {
							t.Fatalf("SurvivingBandwidthFraction(%d,%d,%d,%d,%d) = %g, want %g",
								d, k, m, n, f, got, want)
						}
						if got < -1e-12 || got > 1+1e-12 {
							t.Fatalf("fraction %g out of [0,1]", got)
						}
						if got > prev+1e-12 {
							t.Fatalf("surviving fraction rose with failures: f=%d %g -> %g", f, prev, got)
						}
						prev = got
					}
				}
			}
		}
	}
}

// TestFootprintStrideOrdering pins the availability tradeoff E18
// measures.  The footprint is NOT monotone in the raw stride — gcd(k,
// D) folds some orbits onto themselves — but the three strides the
// system compares are ordered: footprint(k=D) = M ≤ footprint(k=1) ≤
// footprint(k=M).
func TestFootprintStrideOrdering(t *testing.T) {
	for d := 2; d <= 40; d++ {
		for m := 1; m <= d; m++ {
			for _, n := range []int{2, 5, 30} {
				fpD := UniqueDisksUsed(d, d, m, n)
				fp1 := UniqueDisksUsed(d, 1, m, n)
				fpM := UniqueDisksUsed(d, m, m, n)
				if fpD != m {
					t.Fatalf("d=%d m=%d n=%d: footprint(k=D) = %d, want exactly M=%d", d, m, n, fpD, m)
				}
				if fpD > fp1 || fp1 > fpM {
					t.Fatalf("d=%d m=%d n=%d: ordering broken: k=D %d, k=1 %d, k=M %d",
						d, m, n, fpD, fp1, fpM)
				}
			}
		}
	}
	// And the non-monotonicity is real, not a vacuous caveat: on the
	// quick geometry k=25 (gcd 25 with D=50, wider than M=5) folds the
	// orbit onto 10 disks while the smaller stride k=2 touches all 50.
	if a, b := UniqueDisksUsed(50, 25, 5, 30), UniqueDisksUsed(50, 2, 5, 30); !(a < b) {
		t.Fatalf("expected footprint(k=25)=%d < footprint(k=2)=%d on D=50", a, b)
	}
}
