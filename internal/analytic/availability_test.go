package analytic

import (
	"testing"
	"testing/quick"
)

// TestBlastRadiusExtremes: with k=D an object is pinned to M disks,
// so a single failure hits only M/D of the database; with k=M on the
// Table 3 farm every object touches every disk, so one failure hits
// everything.
func TestBlastRadiusExtremes(t *testing.T) {
	const d, m, n, count = 1000, 5, 3000, 200
	pinned := BlastRadius(d, d, m, n, count)
	if pinned > count*m/ /* footprint */ d+1 {
		t.Errorf("k=D blast radius = %d objects, want ~%d", pinned, count*m/d+1)
	}
	striped := BlastRadius(d, m, m, n, count)
	if striped != count {
		t.Errorf("k=M blast radius = %d objects, want all %d", striped, count)
	}
	if pinned >= striped {
		t.Error("pinning must shrink the blast radius")
	}
}

func TestBlastRadiusBounds(t *testing.T) {
	err := quick.Check(func(dRaw, kRaw, mRaw, nRaw, cRaw uint8) bool {
		d := int(dRaw%50) + 1
		k := int(kRaw)%d + 1
		m := int(mRaw)%d + 1
		n := int(nRaw%40) + 1
		count := int(cRaw % 100)
		b := BlastRadius(d, k, m, n, count)
		return b >= 0 && b <= count
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSurvivingBandwidthFraction(t *testing.T) {
	// No failures: everything survives.
	if got := SurvivingBandwidthFraction(1000, 5, 5, 3000, 0); got != 1 {
		t.Fatalf("zero failures survival = %v", got)
	}
	// Full-footprint objects (k=M, Table 3): any failure kills all.
	if got := SurvivingBandwidthFraction(1000, 5, 5, 3000, 1); got != 0 {
		t.Fatalf("k=M one-failure survival = %v, want 0", got)
	}
	// Pinned objects (k=D): one failure kills M/D of the database.
	got := SurvivingBandwidthFraction(1000, 1000, 5, 3000, 1)
	want := 1 - 5.0/1000
	if got < want-0.001 || got > want+0.001 {
		t.Fatalf("k=D one-failure survival = %v, want ~%v", got, want)
	}
}

func TestSurvivingBandwidthMonotone(t *testing.T) {
	prev := 1.1
	for f := 0; f <= 10; f++ {
		got := SurvivingBandwidthFraction(100, 100, 4, 500, f)
		if got > prev {
			t.Fatalf("survival not monotone at %d failures", f)
		}
		prev = got
	}
}

func TestAvailabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range failures did not panic")
		}
	}()
	SurvivingBandwidthFraction(10, 1, 1, 1, 11)
}
