package analytic

import "fmt"

// Availability analysis — an extension beyond the paper.  Staggered
// striping trades failure isolation for load balance: with stride
// k = D an object lives on M disks, so one disk failure damages only
// the objects stored there; with small strides a long object touches
// every disk, so one failure damages every object.  This is the
// classic declustering availability tradeoff; the functions below
// quantify it for the paper's layouts so a deployment can weigh it
// against Table 4's throughput gains.

// BlastRadius returns how many of the database's objects lose at
// least one fragment when a single disk fails, for objects of n
// subobjects and degree m placed with stride k on d disks, assuming
// objects start on every residue of the k-grid (the allocator's
// ring packing).  count is the number of objects in the database.
func BlastRadius(d, k, m, n, count int) int {
	if d <= 0 || k <= 0 || m <= 0 || n <= 0 || count < 0 {
		panic("analytic: non-positive argument")
	}
	// An object is hit iff the failed disk is among its UniqueDisksUsed
	// footprint.  With starts spread uniformly, the expected number of
	// hit objects is count × footprint/D, capped at count.
	footprint := UniqueDisksUsed(d, k, m, n)
	hit := count * footprint / d
	if count*footprint%d != 0 {
		hit++
	}
	if hit > count {
		hit = count
	}
	return hit
}

// SurvivingBandwidthFraction returns the fraction of displays that can
// still be admitted after f disk failures under stride k: a display
// needs all M disks of each subobject, so any object whose footprint
// includes a failed disk is unplayable without redundancy.
func SurvivingBandwidthFraction(d, k, m, n, failures int) float64 {
	if failures < 0 || failures > d {
		panic(fmt.Sprintf("analytic: failures %d out of [0, %d]", failures, d))
	}
	if failures == 0 {
		return 1
	}
	footprint := UniqueDisksUsed(d, k, m, n)
	// Probability a random object avoids all failed disks ≈
	// C(d-footprint, failures) / C(d, failures); compute iteratively.
	p := 1.0
	for i := 0; i < failures; i++ {
		num := float64(d - footprint - i)
		den := float64(d - i)
		if num <= 0 {
			return 0
		}
		p *= num / den
	}
	return p
}
