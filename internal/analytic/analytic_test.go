package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mmsim/staggered/internal/diskmodel"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestSection31Numbers reproduces the §3.1 worked example end to end
// through the analytic API.
func TestSection31Numbers(t *testing.T) {
	rows, err := FragmentSweep(diskmodel.Sabre, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	one, two := rows[0], rows[1]
	if !approx(one.ServiceTimeSeconds, 0.30183, 1e-4) {
		t.Errorf("S(C_i) 1 cyl = %v, want 0.30183", one.ServiceTimeSeconds)
	}
	if !approx(one.WastedFraction, 0.172, 0.001) {
		t.Errorf("wasted 1 cyl = %v, want 0.172", one.WastedFraction)
	}
	if !approx(two.ServiceTimeSeconds, 0.55583, 1e-4) {
		t.Errorf("S(C_i) 2 cyl = %v, want 0.55583", two.ServiceTimeSeconds)
	}
	if !approx(two.WastedFraction, 0.10, 0.005) {
		t.Errorf("wasted 2 cyl = %v, want ~0.10", two.WastedFraction)
	}
	// "worst case transfer initiation delay would be about 9 seconds
	// ... and 16 seconds" (90 disks, 30 clusters).
	if !approx(one.WorstLatencySecs, 9, 0.3) {
		t.Errorf("worst latency 1 cyl = %v, want ~9", one.WorstLatencySecs)
	}
	if !approx(two.WorstLatencySecs, 16, 0.2) {
		t.Errorf("worst latency 2 cyl = %v, want ~16", two.WorstLatencySecs)
	}
}

func TestFragmentSweepMonotone(t *testing.T) {
	rows, err := FragmentSweep(diskmodel.Sabre, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].EffectiveBandwidth <= rows[i-1].EffectiveBandwidth {
			t.Error("effective bandwidth must increase with fragment size")
		}
		if rows[i].WorstLatencySecs <= rows[i-1].WorstLatencySecs {
			t.Error("worst latency must increase with fragment size")
		}
		if rows[i].WastedFraction >= rows[i-1].WastedFraction {
			t.Error("wasted fraction must decrease with fragment size")
		}
	}
}

func TestFragmentSweepValidation(t *testing.T) {
	if _, err := FragmentSweep(diskmodel.Sabre, 0, 2); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := FragmentSweep(diskmodel.Spec{}, 10, 2); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestWorstCaseStartupLatency(t *testing.T) {
	if got := WorstCaseStartupLatency(0.30183, 30); !approx(got, 8.753, 0.001) {
		t.Errorf("latency = %v", got)
	}
	if got := WorstCaseStartupLatency(1, 1); got != 0 {
		t.Errorf("single-cluster latency = %v, want 0", got)
	}
}

func TestMinimumMemoryBytes(t *testing.T) {
	// Equation (1) with Table 3 values and a 10 ms sector time.
	got := MinimumMemoryBytes(20e6, 0.05183, 0.01)
	if !approx(got, 154575, 1) {
		t.Errorf("memory = %v bytes", got)
	}
}

// TestSection322Example reproduces: D=100, object of 100 cylinders
// (M=4, 25 subobjects): k=1 spreads over 28 disks, k=M over all 100.
func TestSection322Example(t *testing.T) {
	if got := UniqueDisksUsed(100, 1, 4, 25); got != 28 {
		t.Errorf("k=1 disks = %d, want 28", got)
	}
	if got := UniqueDisksUsed(100, 4, 4, 25); got != 100 {
		t.Errorf("k=4 disks = %d, want 100", got)
	}
	// k=D pins the object to M disks.
	if got := UniqueDisksUsed(100, 100, 4, 500); got != 4 {
		t.Errorf("k=D disks = %d, want 4", got)
	}
}

func TestUniqueDisksUsedBounds(t *testing.T) {
	err := quick.Check(func(dRaw, kRaw, mRaw, nRaw uint8) bool {
		d := int(dRaw%50) + 1
		k := int(kRaw)%d + 1
		m := int(mRaw)%d + 1
		n := int(nRaw%60) + 1
		u := UniqueDisksUsed(d, k, m, n)
		return u >= m && u <= d && u <= n*m
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollisionDelayExtremes reproduces the §3.2.2 k=1 vs k=D story:
// "with k=1, Y observes a delay equivalent to S(C_i) ... with k=D, Y
// observes a delay equivalent to the display time of X".
func TestCollisionDelayExtremes(t *testing.T) {
	const st = 0.6048
	quick1 := MaxCollisionDelay(1, 10, 3000, st)
	if !approx(quick1, st, 1e-12) {
		t.Errorf("k=1 delay = %v, want one service time", quick1)
	}
	slow := MaxCollisionDelay(10, 10, 3000, st)
	if !approx(slow, 3000*st, 1e-6) {
		t.Errorf("k=D delay = %v, want full display time (~1814 s)", slow)
	}
	if slow/quick1 < 1000 {
		t.Error("k=D delay should dwarf k=1 delay")
	}
}

func TestDataSkewRules(t *testing.T) {
	if !DataSkewFree(1000, 1) || !DataSkewFree(1000, 7) {
		t.Error("coprime strides must be skew-free")
	}
	if DataSkewFree(1000, 5) {
		t.Error("gcd 5 reported skew-free")
	}
	if got := SubobjectSizeConstraint(1000, 5); got != 200 {
		t.Errorf("orbit = %d, want 200", got)
	}
	if got := SubobjectSizeConstraint(10, 3); got != 10 {
		t.Errorf("coprime orbit = %d, want D", got)
	}
}

// TestDisksForBandwidth reproduces the §3.2.3 numbers: a 30 mbps
// object wastes 25% of two whole disks but 0% of three logical disks;
// 3/2·B_Disk fits logical disks exactly.
func TestDisksForBandwidth(t *testing.T) {
	whole, wWaste, logical, lWaste := DisksForBandwidth(30e6, 20e6)
	if whole != 2 || !approx(wWaste, 0.25, 1e-9) {
		t.Errorf("whole = %d waste %v, want 2 / 0.25", whole, wWaste)
	}
	if logical != 3 || !approx(lWaste, 0, 1e-9) {
		t.Errorf("logical = %d waste %v, want 3 / 0", logical, lWaste)
	}
	// §1 example: 60 mbps at 20 mbps disks needs 3.
	if m, _, _, _ := DisksForBandwidth(60e6, 20e6); m != 3 {
		t.Errorf("M(60) = %d, want 3", m)
	}
}

func TestLogicalNeverWastesMore(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		display := (float64(raw%3000) + 1) / 10 * 1e6
		_, wWaste, _, lWaste := DisksForBandwidth(display, 20e6)
		return lWaste <= wWaste+1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFarmObjectCapacity reproduces Table 3's derived capacity: the
// 1000-disk farm holds exactly 200 objects, one tenth of the database
// ("the size of the database is approximately ten times the available
// disk storage capacity").
func TestFarmObjectCapacity(t *testing.T) {
	if got := FarmObjectCapacity(1000, 3000, 5, 3000); got != 200 {
		t.Errorf("capacity = %d objects, want 200", got)
	}
}

// TestAggregateBandwidth reproduces §5: "In a system of 100 disks,
// aggregate bandwidth is approximately 1 gigabit per second."
func TestAggregateBandwidth(t *testing.T) {
	if got := AggregateBandwidth(100, 20e6); !approx(got, 2e9, 1.1e9) {
		// 100 × 20 mbps = 2 gbps raw; the paper's ~1 gbps figure
		// reflects usable post-overhead bandwidth — both within 2×.
		t.Errorf("aggregate = %v", got)
	}
	if got := AggregateBandwidth(100, 10e6); got != 1e9 {
		t.Errorf("aggregate = %v, want 1e9", got)
	}
}

func BenchmarkFragmentSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FragmentSweep(diskmodel.Sabre, 30, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniqueDisksUsed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = UniqueDisksUsed(1000, 5, 5, 3000)
	}
}
