package metrics

import (
	"math"
	"testing"
)

// TestTallyMergeMatchesSequentialAdds pins the Tally merge contract:
// merging two tallies is observation-exact — identical to Adding every
// observation to one tally.
func TestTallyMergeMatchesSequentialAdds(t *testing.T) {
	a := []float64{0.5, 3, 12, 0.25}
	b := []float64{7, 0.125, 42}

	var split, whole Tally
	for _, x := range a {
		split.Add(x)
		whole.Add(x)
	}
	var other Tally
	for _, x := range b {
		other.Add(x)
		whole.Add(x)
	}
	split.Merge(other)

	if split.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", split.N(), whole.N())
	}
	if split.Min() != whole.Min() || split.Max() != whole.Max() {
		t.Errorf("merged extrema = [%v, %v], want [%v, %v]",
			split.Min(), split.Max(), whole.Min(), whole.Max())
	}
	if split.Mean() != whole.Mean() {
		t.Errorf("merged mean = %v, want %v", split.Mean(), whole.Mean())
	}
	if math.Abs(split.StdDev()-whole.StdDev()) > 1e-12 {
		t.Errorf("merged stddev = %v, want %v", split.StdDev(), whole.StdDev())
	}
}

// TestTallyMergeEmpty pins both degenerate cases: merging an empty
// tally is a no-op, and merging into an empty tally copies.
func TestTallyMergeEmpty(t *testing.T) {
	var full Tally
	full.Add(2)
	full.Add(4)

	var empty Tally
	before := full
	full.Merge(empty)
	if full != before {
		t.Errorf("merging an empty tally changed %+v to %+v", before, full)
	}

	var target Tally
	target.Merge(full)
	if target != full {
		t.Errorf("merging into an empty tally = %+v, want %+v", target, full)
	}
}

// TestRunMergeCounters pins that every event counter adds, including
// the station population and the 64-bit byte counter.
func TestRunMergeCounters(t *testing.T) {
	a := Run{
		Technique: "simple striping", Stations: 8, DistMean: 20,
		WarmupSeconds: 100, MeasureSeconds: 600,
		Displays: 10, Materializa: 3, Replications: 1, Hiccups: 2, Coalescings: 4,
		UniqueResidents: 20, Requests: 15, DegradedHiccups: 5, AbortedDisplays: 1,
		RejectedDegraded: 2, StarvedMaterializations: 1,
		ServedFromCache: 6, BatchedFollowers: 3, CacheHitBytes: 1 << 32, OpenRejected: 7,
	}
	b := Run{
		Technique: "simple striping", Stations: 8, DistMean: 20,
		WarmupSeconds: 100, MeasureSeconds: 600,
		Displays: 5, Materializa: 2, Replications: 3, Hiccups: 1, Coalescings: 6,
		UniqueResidents: 19, Requests: 9, DegradedHiccups: 1, AbortedDisplays: 2,
		RejectedDegraded: 1, StarvedMaterializations: 4,
		ServedFromCache: 2, BatchedFollowers: 1, CacheHitBytes: 1 << 32, OpenRejected: 3,
	}
	a.Merge(b)

	if a.Stations != 16 {
		t.Errorf("Stations = %d, want 16", a.Stations)
	}
	want := Run{
		Displays: 15, Materializa: 5, Replications: 4, Hiccups: 3, Coalescings: 10,
		UniqueResidents: 39, Requests: 24, DegradedHiccups: 6, AbortedDisplays: 3,
		RejectedDegraded: 3, StarvedMaterializations: 5,
		ServedFromCache: 8, BatchedFollowers: 4, OpenRejected: 10,
	}
	checks := []struct {
		name      string
		got, want int
	}{
		{"Displays", a.Displays, want.Displays},
		{"Materializa", a.Materializa, want.Materializa},
		{"Replications", a.Replications, want.Replications},
		{"Hiccups", a.Hiccups, want.Hiccups},
		{"Coalescings", a.Coalescings, want.Coalescings},
		{"UniqueResidents", a.UniqueResidents, want.UniqueResidents},
		{"Requests", a.Requests, want.Requests},
		{"DegradedHiccups", a.DegradedHiccups, want.DegradedHiccups},
		{"AbortedDisplays", a.AbortedDisplays, want.AbortedDisplays},
		{"RejectedDegraded", a.RejectedDegraded, want.RejectedDegraded},
		{"StarvedMaterializations", a.StarvedMaterializations, want.StarvedMaterializations},
		{"ServedFromCache", a.ServedFromCache, want.ServedFromCache},
		{"BatchedFollowers", a.BatchedFollowers, want.BatchedFollowers},
		{"OpenRejected", a.OpenRejected, want.OpenRejected},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if a.CacheHitBytes != 1<<33 {
		t.Errorf("CacheHitBytes = %d, want %d", a.CacheHitBytes, int64(1)<<33)
	}
	if a.Technique != "simple striping" {
		t.Errorf("Technique = %q, want unchanged", a.Technique)
	}
	if a.DistMean != 20 {
		t.Errorf("DistMean = %v, want unchanged 20", a.DistMean)
	}
}

// TestRunMergeRatiosAndWindows pins the ratio-field semantics: busy
// fractions combine as MeasureSeconds-weighted averages, and the
// window lengths take the maximum (shared-clock runs overlap), so
// Throughput sums across a same-window merge.
func TestRunMergeRatiosAndWindows(t *testing.T) {
	a := Run{MeasureSeconds: 600, TertiaryBusy: 0.9, DiskBusy: 0.5, Displays: 100}
	b := Run{MeasureSeconds: 300, TertiaryBusy: 0.3, DiskBusy: 0.2, Displays: 50}
	a.Merge(b)

	if want := (0.9*600 + 0.3*300) / 900; math.Abs(a.TertiaryBusy-want) > 1e-15 {
		t.Errorf("TertiaryBusy = %v, want %v", a.TertiaryBusy, want)
	}
	if want := (0.5*600 + 0.2*300) / 900; math.Abs(a.DiskBusy-want) > 1e-15 {
		t.Errorf("DiskBusy = %v, want %v", a.DiskBusy, want)
	}
	if a.MeasureSeconds != 600 {
		t.Errorf("MeasureSeconds = %v, want max 600", a.MeasureSeconds)
	}

	// Equal windows: the aggregate throughput is the sum of parts.
	x := Run{MeasureSeconds: 3600, Displays: 100}
	y := Run{MeasureSeconds: 3600, Displays: 40}
	sum := x.Throughput() + y.Throughput()
	x.Merge(y)
	if got := x.Throughput(); math.Abs(got-sum) > 1e-9 {
		t.Errorf("merged throughput = %v, want %v", got, sum)
	}
}

// TestRunMergePartialWindow pins the dead-member weighting contract
// (DESIGN.md §14): a member killed mid-window reports only the
// MeasureSeconds it was alive for, and Merge weights its busy ratios
// by that partial window — a quarter-window member contributes a
// quarter of the weight, so the merged ratio is the true time average
// instead of an unweighted mean skewed toward a member that wasn't
// there.  The orphaned-display counter adds like every other event
// count.
func TestRunMergePartialWindow(t *testing.T) {
	alive := Run{
		MeasureSeconds: 600, DiskBusy: 0.6, TertiaryBusy: 0.4,
		Displays: 120,
	}
	dead := Run{
		MeasureSeconds: 150, DiskBusy: 0.8, TertiaryBusy: 1.0,
		Displays: 20, AbortedDisplays: 5, OrphanedDisplays: 5,
	}
	alive.Merge(dead)

	if want := (0.6*600 + 0.8*150) / 750; math.Abs(alive.DiskBusy-want) > 1e-15 {
		t.Errorf("DiskBusy = %v, want time-weighted %v (unweighted mean would be 0.7)", alive.DiskBusy, want)
	}
	if want := (0.4*600 + 1.0*150) / 750; math.Abs(alive.TertiaryBusy-want) > 1e-15 {
		t.Errorf("TertiaryBusy = %v, want time-weighted %v", alive.TertiaryBusy, want)
	}
	// The merged window is the shared-clock span, not the sum: the dead
	// member's 150 live seconds overlap the survivor's 600.
	if alive.MeasureSeconds != 600 {
		t.Errorf("MeasureSeconds = %v, want max 600", alive.MeasureSeconds)
	}
	if alive.Displays != 140 || alive.AbortedDisplays != 5 || alive.OrphanedDisplays != 5 {
		t.Errorf("event counters = %d/%d/%d, want 140/5/5",
			alive.Displays, alive.AbortedDisplays, alive.OrphanedDisplays)
	}
}

// TestRunMergeMixedTechniques pins the degradation rules for the
// identity fields.
func TestRunMergeMixedTechniques(t *testing.T) {
	a := Run{Technique: "simple striping", DistMean: 20}
	a.Merge(Run{Technique: "virtual data replication", DistMean: 10})
	if a.Technique != "mixed" {
		t.Errorf("Technique = %q, want mixed", a.Technique)
	}
	if a.DistMean != 0 {
		t.Errorf("DistMean = %v, want 0 on disagreement", a.DistMean)
	}

	var empty Run
	empty.Merge(Run{Technique: "simple striping"})
	if empty.Technique != "simple striping" {
		t.Errorf("Technique = %q, want adopted from first merge", empty.Technique)
	}
}

// TestRunMergeLatency pins that the latency tally merges
// observation-exactly through Run.Merge.
func TestRunMergeLatency(t *testing.T) {
	var a, b, whole Run
	for _, x := range []float64{1, 2, 3} {
		a.Latency.Add(x)
		whole.Latency.Add(x)
	}
	for _, x := range []float64{10, 20} {
		b.Latency.Add(x)
		whole.Latency.Add(x)
	}
	a.Merge(b)
	if a.Latency != whole.Latency {
		t.Errorf("merged latency tally = %+v, want %+v", a.Latency, whole.Latency)
	}
}

// TestHistogramMerge pins bucket-wise addition and the bounds-equality
// requirement of the latency histogram merge.
func TestHistogramMerge(t *testing.T) {
	h1 := LatencyHistogram()
	h2 := LatencyHistogram()
	whole := LatencyHistogram()
	for _, x := range []float64{0.5, 1, 4, 2000} {
		h1.Add(x)
		whole.Add(x)
	}
	for _, x := range []float64{0.1, 100, 5000} {
		h2.Add(x)
		whole.Add(x)
	}
	if err := h1.Merge(h2); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if h1.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", h1.N(), whole.N())
	}
	if h1.Mean() != whole.Mean() {
		t.Errorf("merged mean = %v, want %v", h1.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 1} {
		if got, want := h1.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("merged q%.2f = %v, want %v", q, got, want)
		}
	}

	other, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Merge(other); err == nil {
		t.Error("merging differently shaped histograms did not fail")
	}
}
