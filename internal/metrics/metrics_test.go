package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTallyBasics(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.StdDev() != 0 || ta.N() != 0 {
		t.Fatal("empty tally not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		ta.Add(x)
	}
	if ta.N() != 8 {
		t.Fatalf("n = %d", ta.N())
	}
	if math.Abs(ta.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", ta.Mean())
	}
	// Sample std dev of this classic set is sqrt(32/7).
	if math.Abs(ta.StdDev()-math.Sqrt(32.0/7)) > 1e-9 {
		t.Fatalf("stddev = %v", ta.StdDev())
	}
	if ta.Min() != 2 || ta.Max() != 9 {
		t.Fatalf("min/max = %v/%v", ta.Min(), ta.Max())
	}
}

func TestTallyProperties(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		var ta Tally
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
			ta.Add(x)
		}
		if len(xs) == 0 {
			return true
		}
		return ta.Min() <= ta.Mean()+1e-9*math.Abs(ta.Mean())+1e-9 &&
			ta.Mean() <= ta.Max()+1e-9*math.Abs(ta.Max())+1e-9 &&
			ta.StdDev() >= 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	if w.Mean(10) != 0 {
		t.Fatal("empty time-weighted mean not zero")
	}
	w.Set(0, 1) // value 1 on [0,2)
	w.Set(2, 3) // value 3 on [2,4)
	if got := w.Mean(4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if w.Max() != 3 {
		t.Fatalf("max = %v, want 3", w.Max())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	w.Set(4, 2)
}

func TestRunThroughput(t *testing.T) {
	r := Run{Displays: 100, MeasureSeconds: 3600}
	if got := r.Throughput(); got != 100 {
		t.Fatalf("throughput = %v, want 100/hr", got)
	}
	r.MeasureSeconds = 1800
	if got := r.Throughput(); got != 200 {
		t.Fatalf("throughput = %v, want 200/hr", got)
	}
	if (Run{}).Throughput() != 0 {
		t.Fatal("zero-window throughput not zero")
	}
}

// TestImprovementTable4Form checks the Table 4 quantity: simple
// striping at 2.26× virtual replication is a 126% improvement.
func TestImprovementTable4Form(t *testing.T) {
	a := Run{Displays: 226, MeasureSeconds: 3600}
	b := Run{Displays: 100, MeasureSeconds: 3600}
	if got := Improvement(a, b); math.Abs(got-126) > 1e-9 {
		t.Fatalf("improvement = %v%%, want 126%%", got)
	}
	if !math.IsInf(Improvement(a, Run{MeasureSeconds: 3600}), 1) {
		t.Fatal("improvement over zero baseline should be +Inf")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"# Display Stations", "10", "20", "43.5"}}
	tbl.AddRow("16", "5.10%", "2.15%", "114.75%")
	tbl.AddRow("256", "126.10%", "602.49%", "413.10%")
	s := tbl.String()
	for _, want := range []string{"# Display Stations", "5.10%", "602.49%", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tbl.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"x", "y"}}
	tbl.AddRow("1", `va"l,ue`)
	csv := tbl.CSV()
	if !strings.Contains(csv, "x,y\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("csv quoting wrong: %q", csv)
	}
}

func TestRenderFigure(t *testing.T) {
	fig := RenderFigure("Figure 8.a", "stations", []Series{
		{Name: "striping", Points: map[int]float64{1: 1.9, 16: 30.5, 256: 390}},
		{Name: "replication", Points: map[int]float64{1: 1.9, 16: 29.0}},
	})
	if !strings.Contains(fig, "Figure 8.a") || !strings.Contains(fig, "striping") {
		t.Fatalf("figure missing labels:\n%s", fig)
	}
	// Missing point renders as "-".
	if !strings.Contains(fig, "-") {
		t.Fatalf("missing point not rendered:\n%s", fig)
	}
	// x values must appear in ascending order.
	i1 := strings.Index(fig, "\n1 ")
	i16 := strings.Index(fig, "\n16 ")
	i256 := strings.Index(fig, "\n256 ")
	if !(i1 < i16 && i16 < i256) {
		t.Fatalf("x values out of order:\n%s", fig)
	}
}
