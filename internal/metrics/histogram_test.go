package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing bounds accepted")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 5, 50, 500} {
		h.Add(x)
	}
	if h.N() != 5 {
		t.Fatalf("n = %d", h.N())
	}
	// 0.5 and 1 in bucket 0; 5 in bucket 1; 50 in bucket 2; 500 overflow.
	want := []int64{2, 1, 1, 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.counts, want)
		}
	}
	if math.Abs(h.Mean()-(0.5+1+5+50+500)/5) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(0.5) // all in the first bucket
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("median bound = %v, want 1", got)
	}
	h.Add(100) // one overflow
	if got := h.Quantile(1.0); !math.IsInf(got, 1) {
		t.Fatalf("max bound = %v, want +Inf", got)
	}
	if (&Histogram{}).total != 0 {
		t.Fatal("zero value not empty")
	}
}

func TestHistogramQuantilePanics(t *testing.T) {
	h := LatencyHistogram()
	for _, q := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("quantile %v did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
}

// Property: the q-quantile bound is monotone in q and every
// observation is ≤ the 1.0-quantile bound.
func TestHistogramQuantileMonotone(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := LatencyHistogram()
		for _, r := range raw {
			h.Add(float64(r) / 10)
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			b := h.Quantile(q)
			if b < prev {
				return false
			}
			prev = b
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := LatencyHistogram()
	for i := 0; i < 50; i++ {
		h.Add(1.0)
	}
	h.Add(2000)
	s := h.String()
	if !strings.Contains(s, "<= 2") || !strings.Contains(s, "> 1814") {
		t.Fatalf("rendering missing labels:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Fatalf("rendering missing bars:\n%s", s)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := LatencyHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}
