// Package metrics collects the statistics the paper reports:
// throughput in displays per hour (Figure 8, Table 4), display startup
// latency, device utilization, and hiccup counts, with warm-up
// exclusion and simple table rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tally accumulates scalar observations.
type Tally struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	if t.n == 0 || x < t.min {
		t.min = x
	}
	if t.n == 0 || x > t.max {
		t.max = x
	}
	t.n++
	t.sum += x
	t.sumSq += x * x
}

// Merge folds another tally's observations into t, as if every
// observation recorded in o had been Added to t: counts, sums, and
// sums of squares add, the extrema combine.  Order-independent up to
// float summation order.
func (t *Tally) Merge(o Tally) {
	if o.n == 0 {
		return
	}
	if t.n == 0 {
		*t = o
		return
	}
	if o.min < t.min {
		t.min = o.min
	}
	if o.max > t.max {
		t.max = o.max
	}
	t.n += o.n
	t.sum += o.sum
	t.sumSq += o.sumSq
}

// N returns the observation count.
func (t *Tally) N() int { return t.n }

// Mean returns the sample mean (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest observation (0 when empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 when empty).
func (t *Tally) Max() float64 { return t.max }

// StdDev returns the sample standard deviation (0 for n < 2).
func (t *Tally) StdDev() float64 {
	if t.n < 2 {
		return 0
	}
	mean := t.Mean()
	v := (t.sumSq - float64(t.n)*mean*mean) / float64(t.n-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// TimeWeighted accumulates a step function of time, e.g. the number of
// busy disks, yielding its time average.
type TimeWeighted struct {
	lastT    float64
	lastV    float64
	area     float64
	started  bool
	startT   float64
	maxValue float64
}

// Set records that the value changed to v at time t (t must not
// decrease).
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.started = true
		w.startT = t
	} else {
		if t < w.lastT {
			panic(fmt.Sprintf("metrics: time went backwards: %v < %v", t, w.lastT))
		}
		w.area += w.lastV * (t - w.lastT)
	}
	w.lastT, w.lastV = t, v
	if v > w.maxValue {
		w.maxValue = v
	}
}

// Mean returns the time-average value through time t.
func (w *TimeWeighted) Mean(t float64) float64 {
	if !w.started || t <= w.startT {
		return 0
	}
	area := w.area + w.lastV*(t-w.lastT)
	return area / (t - w.startT)
}

// Max returns the largest value recorded.
func (w *TimeWeighted) Max() float64 { return w.maxValue }

// Run holds the end-to-end statistics of one simulation run.
type Run struct {
	Technique string
	Stations  int
	DistMean  float64

	WarmupSeconds  float64
	MeasureSeconds float64

	Displays        int // completed displays in the measurement window
	Materializa     int // completed materializations in the window
	Replications    int // completed replications (VDR only)
	Hiccups         int // delivery continuity violations (must be 0)
	Coalescings     int // Algorithm 2 invocations
	TertiaryBusy    float64
	DiskBusy        float64 // mean busy disks (fraction of D)
	UniqueResidents int     // distinct objects on disk at end

	// Degraded-mode counters (zero on a fault-free run).
	Requests                int // station requests arriving in the window
	DegradedHiccups         int // intervals a display rode out a failed/slow disk
	AbortedDisplays         int // displays killed mid-delivery by a fault
	OrphanedDisplays        int // of AbortedDisplays: killed by a whole-server fault
	RejectedDegraded        int // admissions refused because the object is unplayable
	StarvedMaterializations int // materializations abandoned after the Place retry cap

	// Cache-tier counters (zero when the memory tier is disabled).
	ServedFromCache  int   // displays whose start was served from the pinned prefix
	BatchedFollowers int   // displays that shared another display's disk streams
	CacheHitBytes    int64 // prefix bytes served from RAM instead of disk
	OpenRejected     int   // open-system arrivals refused for want of a station

	Latency Tally // admission latency of displays started in the window
}

// Merge folds another run's statistics into r — the aggregation the
// cluster layer and the experiment harness use to report N servers (or
// N runs over the same window) as one Run.  Semantics per field class:
//
//   - Event counters (Displays, Materializa, …, OpenRejected) and the
//     station population add.
//   - Utilization ratios (TertiaryBusy, DiskBusy) combine as averages
//     weighted by each run's MeasureSeconds, so merging a long window
//     with a short one does not overweight the short one's fraction.
//   - The window lengths themselves take the maximum: runs merged
//     under a shared clock overlap rather than concatenate, which
//     keeps Throughput() = aggregate displays over the common window.
//   - The latency tally merges observation-exactly (Tally.Merge).
//   - Technique and DistMean stick when equal and degrade to
//     "mixed" / 0 when the merged runs disagree.
func (r *Run) Merge(o Run) {
	switch {
	case r.Technique == "":
		r.Technique = o.Technique
	case o.Technique != "" && o.Technique != r.Technique:
		r.Technique = "mixed"
	}
	if o.DistMean != r.DistMean {
		r.DistMean = 0
	}
	r.Stations += o.Stations

	wr, wo := r.MeasureSeconds, o.MeasureSeconds
	if wr+wo > 0 {
		r.TertiaryBusy = (r.TertiaryBusy*wr + o.TertiaryBusy*wo) / (wr + wo)
		r.DiskBusy = (r.DiskBusy*wr + o.DiskBusy*wo) / (wr + wo)
	}
	if o.WarmupSeconds > r.WarmupSeconds {
		r.WarmupSeconds = o.WarmupSeconds
	}
	if o.MeasureSeconds > r.MeasureSeconds {
		r.MeasureSeconds = o.MeasureSeconds
	}

	r.Displays += o.Displays
	r.Materializa += o.Materializa
	r.Replications += o.Replications
	r.Hiccups += o.Hiccups
	r.Coalescings += o.Coalescings
	r.UniqueResidents += o.UniqueResidents

	r.Requests += o.Requests
	r.DegradedHiccups += o.DegradedHiccups
	r.AbortedDisplays += o.AbortedDisplays
	r.OrphanedDisplays += o.OrphanedDisplays
	r.RejectedDegraded += o.RejectedDegraded
	r.StarvedMaterializations += o.StarvedMaterializations

	r.ServedFromCache += o.ServedFromCache
	r.BatchedFollowers += o.BatchedFollowers
	r.CacheHitBytes += o.CacheHitBytes
	r.OpenRejected += o.OpenRejected

	r.Latency.Merge(o.Latency)
}

// CacheHitRate returns the fraction of window requests whose startup
// was served from the prefix cache.
func (r Run) CacheHitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.ServedFromCache) / float64(r.Requests)
}

// Throughput returns displays per hour over the measurement window.
func (r Run) Throughput() float64 {
	if r.MeasureSeconds <= 0 {
		return 0
	}
	return float64(r.Displays) * 3600 / r.MeasureSeconds
}

// Improvement returns the percentage improvement of a over b in
// throughput, the quantity of Table 4.
func Improvement(a, b Run) float64 {
	tb := b.Throughput()
	if tb == 0 {
		return math.Inf(1)
	}
	return (a.Throughput() - tb) / tb * 100
}

// Table renders rows of labelled values as an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 && len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row width %d != header width %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named curve of a figure: y values indexed by x.
type Series struct {
	Name   string
	Points map[int]float64
}

// RenderFigure renders one or more series sharing integer x values as
// an aligned table, x ascending — the textual equivalent of one graph
// of Figure 8.
func RenderFigure(title, xLabel string, series []Series) string {
	xs := map[int]bool{}
	for _, s := range series {
		for x := range s.Points {
			xs[x] = true
		}
	}
	sorted := make([]int, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)

	tbl := &Table{Header: append([]string{xLabel}, names(series)...)}
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range series {
			if y, ok := s.Points[x]; ok {
				row = append(row, fmt.Sprintf("%.1f", y))
			} else {
				row = append(row, "-")
			}
		}
		tbl.AddRow(row...)
	}
	return title + "\n" + tbl.String()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
