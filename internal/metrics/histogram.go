package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates observations into fixed buckets and answers
// approximate quantile queries.  Buckets are defined by their upper
// bounds; values above the last bound land in an overflow bucket.
type Histogram struct {
	bounds []float64
	counts []int64
	total  int64
	sum    float64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not increasing at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}, nil
}

// LatencyHistogram returns buckets suitable for display-startup
// latencies on the Table 3 farm: sub-second through one display time.
func LatencyHistogram() *Histogram {
	h, err := NewHistogram([]float64{0.7, 2, 5, 10, 30, 60, 120, 300, 600, 1814})
	if err != nil {
		panic(err)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.total++
	h.sum += x
}

// Merge folds another histogram's observations into h.  The two must
// share the same bucket bounds (merging differently shaped histograms
// has no meaningful bucket-wise result).
func (h *Histogram) Merge(o *Histogram) error {
	if len(o.bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d bounds", len(o.bounds), len(h.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("metrics: merging histograms with different bounds at %d: %g vs %g", i, b, o.bounds[i])
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	return nil
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the exact mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper bound of the bucket containing it, or +Inf when it falls in
// the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of (0, 1]", q))
	}
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	var run int64
	for i, c := range h.counts {
		run += c
		if run >= target {
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// String renders a compact one-line-per-bucket view with counts and a
// proportional bar.
func (h *Histogram) String() string {
	var b strings.Builder
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	label := func(i int) string {
		if i == 0 {
			return fmt.Sprintf("<= %g", h.bounds[0])
		}
		if i == len(h.bounds) {
			return fmt.Sprintf(" > %g", h.bounds[len(h.bounds)-1])
		}
		return fmt.Sprintf("<= %g", h.bounds[i])
	}
	for i, c := range h.counts {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(c*40/max))
		}
		fmt.Fprintf(&b, "%10s %8d %s\n", label(i), c, bar)
	}
	return b.String()
}
