package sim

import (
	"testing"
)

func TestQueueFIFOValues(t *testing.T) {
	k := New()
	q := k.NewQueue("jobs")
	var got []int
	k.Spawn("producer", func(p *Process) {
		for i := 0; i < 5; i++ {
			q.Put(i)
			p.Hold(1)
		}
	})
	k.Spawn("consumer", func(p *Process) {
		for i := 0; i < 5; i++ {
			got = append(got, p.Get(q).(int))
		}
	})
	k.Run(Infinity)
	for i, v := range got {
		if v != i {
			t.Fatalf("values out of order: %v", got)
		}
	}
	if q.Puts() != 5 || q.Gets() != 5 || q.Len() != 0 {
		t.Fatalf("stats wrong: puts=%d gets=%d len=%d", q.Puts(), q.Gets(), q.Len())
	}
}

func TestQueueBlocksWhenEmpty(t *testing.T) {
	k := New()
	q := k.NewQueue("jobs")
	var gotAt Time
	k.Spawn("consumer", func(p *Process) {
		_ = p.Get(q)
		gotAt = p.Now()
	})
	k.Spawn("producer", func(p *Process) {
		p.Hold(7)
		q.Put("late")
	})
	k.Run(Infinity)
	if gotAt != 7 {
		t.Fatalf("consumer resumed at %v, want 7", gotAt)
	}
}

func TestQueueMeanWait(t *testing.T) {
	k := New()
	q := k.NewQueue("jobs")
	k.Spawn("producer", func(p *Process) {
		q.Put(1) // waits 4
		q.Put(2) // waits 4 + consumer spacing
	})
	k.Spawn("consumer", func(p *Process) {
		p.Hold(4)
		_ = p.Get(q)
		p.Hold(2)
		_ = p.Get(q)
	})
	k.Run(Infinity)
	if got := q.MeanWait(); got != 5 { // (4 + 6) / 2
		t.Fatalf("mean wait = %v, want 5", got)
	}
	if q.Peak() != 2 {
		t.Fatalf("peak = %d, want 2", q.Peak())
	}
}

func TestQueueTryGet(t *testing.T) {
	k := New()
	q := k.NewQueue("jobs")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(42)
	v, ok := q.TryGet()
	if !ok || v.(int) != 42 {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	k := New()
	q := k.NewQueue("jobs")
	served := make([]int, 3)
	for c := 0; c < 3; c++ {
		c := c
		k.Spawn("consumer", func(p *Process) {
			for {
				_ = p.Get(q)
				served[c]++
				p.Hold(1)
			}
		})
	}
	k.Spawn("producer", func(p *Process) {
		for i := 0; i < 9; i++ {
			q.Put(i)
			p.Hold(0.5)
		}
	})
	k.Run(100)
	total := served[0] + served[1] + served[2]
	if total != 9 {
		t.Fatalf("consumed %d of 9", total)
	}
}

func TestMailboxRendezvous(t *testing.T) {
	k := New()
	m := k.NewMailbox("box")
	var sendDone, recvDone Time
	var got any
	k.Spawn("sender", func(p *Process) {
		p.Send(m, "hello")
		sendDone = p.Now()
	})
	k.Spawn("receiver", func(p *Process) {
		p.Hold(5)
		got = p.Receive(m)
		recvDone = p.Now()
	})
	k.Run(Infinity)
	if got != "hello" {
		t.Fatalf("received %v", got)
	}
	// The sender blocks until the rendezvous at t=5.
	if sendDone != 5 || recvDone != 5 {
		t.Fatalf("rendezvous times: send %v recv %v, want 5/5", sendDone, recvDone)
	}
}

func TestMailboxReceiverFirst(t *testing.T) {
	k := New()
	m := k.NewMailbox("box")
	var got any
	k.Spawn("receiver", func(p *Process) {
		got = p.Receive(m)
	})
	k.Spawn("sender", func(p *Process) {
		p.Hold(3)
		p.Send(m, 99)
	})
	k.Run(Infinity)
	if got != 99 {
		t.Fatalf("received %v", got)
	}
}

func TestMailboxConcurrentSendPanics(t *testing.T) {
	k := New()
	m := k.NewMailbox("box")
	k.Spawn("a", func(p *Process) { p.Send(m, 1) })
	k.Spawn("b", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("second Send did not panic")
			}
			// Unblock the test: receive a's message.
		}()
		p.Send(m, 2)
	})
	k.Spawn("receiver", func(p *Process) {
		p.Hold(1)
		_ = p.Receive(m)
	})
	k.Run(Infinity)
}

func TestQuiesced(t *testing.T) {
	k := New()
	q := k.NewQueue("jobs")
	k.Spawn("consumer", func(p *Process) {
		for {
			_ = p.Get(q)
		}
	})
	k.Run(Infinity)
	if !k.Quiesced() {
		t.Fatal("blocked-forever consumer not reported as quiesced")
	}
	k2 := New()
	k2.Spawn("worker", func(p *Process) { p.Hold(1) })
	k2.Run(Infinity)
	if k2.Quiesced() {
		t.Fatal("completed model reported quiesced")
	}
}
