package sim

import (
	"strconv"
	"testing"
)

// tickTime converts a wheel tick to the simulated time that maps back
// onto it; ticks well below 2^52 are exact in float64.
func tickTime(tick uint64) Time {
	return Time(float64(tick) / float64(uint64(1)<<tickShift))
}

// TestWheelSameTickFIFOAcrossLevels pins that events at the same
// simulated time fire in schedule order even when they entered the
// wheel at different levels: one scheduled from far away (high level,
// cascaded down), one scheduled late from nearby (level 0 directly).
func TestWheelSameTickFIFOAcrossLevels(t *testing.T) {
	k := New()
	target := tickTime(1 << 14) // level-2 distance from time zero
	var order []int
	k.At(target, func() { order = append(order, 1) }) // placed at a high level
	k.At(target/2, func() {
		// Halfway there: target is now a lower-level distance away.
		k.At(target, func() { order = append(order, 2) })
	})
	k.At(target, func() { order = append(order, 3) }) // also high level
	k.Run(Infinity)
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("same-time events fired as %v, want [1 3 2] (schedule order)", order)
	}
}

// TestWheelCascadeAtLevelBoundaries schedules events straddling every
// level boundary (tick 64^l ± 1) and checks they fire in time order —
// the cascade path must hand events down the hierarchy exactly once
// per level without reordering or losing them.
func TestWheelCascadeAtLevelBoundaries(t *testing.T) {
	k := New()
	var ticks []uint64
	for l := 1; l < levelCount; l++ {
		b := uint64(1) << (uint(l) * levelBits)
		ticks = append(ticks, b-1, b, b+1)
	}
	var got []Time
	// Schedule in reverse so drain order cannot be an artifact of
	// schedule order.
	for i := len(ticks) - 1; i >= 0; i-- {
		at := tickTime(ticks[i])
		k.At(at, func() { got = append(got, k.Now()) })
	}
	k.Run(Infinity)
	if len(got) != len(ticks) {
		t.Fatalf("fired %d events, want %d", len(got), len(ticks))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("cascade reordered events: time %v fired after %v", got[i], got[i-1])
		}
	}
	for i, at := range got {
		if want := tickTime(ticks[i]); at != want {
			t.Fatalf("event %d fired at %v, want %v", i, at, want)
		}
	}
}

// TestWheelScheduleAtNow pins the schedule-at-now path: an event that
// schedules more work at the current instant must see it run at the
// same simulated time, after all previously scheduled same-time work,
// and before anything later.
func TestWheelScheduleAtNow(t *testing.T) {
	k := New()
	var order []string
	k.At(5, func() {
		order = append(order, "a")
		k.After(0, func() { order = append(order, "chain") })
		k.At(k.Now(), func() { order = append(order, "at-now") })
	})
	k.At(5, func() { order = append(order, "b") })
	k.At(6, func() { order = append(order, "later") })
	end := k.Run(Infinity)
	want := []string{"a", "b", "chain", "at-now", "later"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
	if end != 6 {
		t.Fatalf("final time %v, want 6", end)
	}
}

// TestWheelCancelRescheduleSlabReuse pins the slab lifecycle: a
// cancelled event's record is recycled by the next schedule, and the
// stale Timer handle — though it now points at a live slot — is dead,
// because the generation counter advanced.
func TestWheelCancelRescheduleSlabReuse(t *testing.T) {
	k := New()
	old := k.AtTimer(10, func() { t.Fatal("cancelled event fired") })
	if !k.Cancel(old) {
		t.Fatal("cancel of live timer failed")
	}
	slab := len(k.cal.nodes)
	ran := false
	fresh := k.AtTimer(20, func() { ran = true })
	if len(k.cal.nodes) != slab {
		t.Fatalf("schedule after cancel grew the slab to %d nodes, want %d (free-list reuse)", len(k.cal.nodes), slab)
	}
	if fresh.ref != old.ref {
		t.Fatalf("fresh timer uses slab ref %d, want recycled ref %d", fresh.ref, old.ref)
	}
	if fresh.gen == old.gen {
		t.Fatal("recycled slot kept its generation; stale handles would stay live")
	}
	if k.Cancel(old) {
		t.Fatal("stale handle cancelled the recycled slot's new event")
	}
	if k.Reschedule(old, 30) {
		t.Fatal("stale handle rescheduled the recycled slot's new event")
	}
	if !k.Reschedule(fresh, 5) {
		t.Fatal("reschedule of live recycled timer failed")
	}
	k.Run(Infinity)
	if !ran {
		t.Fatal("rescheduled event never fired")
	}
	if k.Now() != 5 {
		t.Fatalf("clock at %v, want 5 (the rescheduled time)", k.Now())
	}
}

// TestHorizonBoundary pins Run's boundary semantics: events exactly
// at the horizon fire before Run returns; strictly later events wait.
func TestHorizonBoundary(t *testing.T) {
	k := New()
	var ran []string
	k.At(10, func() { ran = append(ran, "at-horizon") })
	k.At(10.0000001, func() { ran = append(ran, "past-horizon") })
	if end := k.Run(10); end != 10 {
		t.Fatalf("Run(10) returned %v, want 10", end)
	}
	if len(ran) != 1 || ran[0] != "at-horizon" {
		t.Fatalf("events run by horizon 10: %v, want only the one exactly at 10", ran)
	}
	k.Run(Infinity)
	if len(ran) != 2 {
		t.Fatalf("later event did not survive the horizon cut: %v", ran)
	}
}

// TestStepAfterStop pins that Step honours a prior Stop exactly once,
// matching Run's contract of clearing the flag before executing.
func TestStepAfterStop(t *testing.T) {
	k := New()
	ran := 0
	k.At(1, func() { ran++ })
	k.Stop()
	if k.Step() {
		t.Fatal("Step after Stop executed an event; it must consume the stop")
	}
	if ran != 0 {
		t.Fatal("stopped Step ran the event")
	}
	if !k.Step() {
		t.Fatal("second Step found no event; Stop was not reset")
	}
	if ran != 1 {
		t.Fatalf("event ran %d times, want 1", ran)
	}
}

// TestRequestTimeout covers all three RequestTimeout outcomes: an
// idle facility acquires immediately, a queued waiter times out when
// the holder outlasts its patience, and a patient waiter acquires on
// release with the deadline cancelled in O(1).
func TestRequestTimeout(t *testing.T) {
	k := New()
	f := k.NewFacility("disk", 1)
	var events []string
	k.Spawn("holder", func(p *Process) {
		if !p.RequestTimeout(f, 0) {
			t.Error("idle facility refused an immediate request")
		}
		p.Hold(10)
		p.Release(f)
	})
	k.Spawn("impatient", func(p *Process) {
		if p.RequestTimeout(f, 5) {
			t.Error("impatient waiter acquired a facility held past its deadline")
		}
		events = append(events, "timeout@"+strconv.Itoa(int(p.Now())))
	})
	k.Spawn("patient", func(p *Process) {
		if !p.RequestTimeout(f, 100) {
			t.Error("patient waiter timed out despite release before its deadline")
		}
		events = append(events, "acquired@"+strconv.Itoa(int(p.Now())))
		p.Release(f)
	})
	k.Run(Infinity)
	if len(events) != 2 || events[0] != "timeout@5" || events[1] != "acquired@10" {
		t.Fatalf("events %v, want [timeout@5 acquired@10]", events)
	}
	if f.QueueLen() != 0 {
		t.Fatalf("queue still holds %d waiters", f.QueueLen())
	}
	if got := f.Acquired(); got != 2 {
		t.Fatalf("acquisitions %d, want 2 (timeout must not count)", got)
	}
}

// TestRequestTimeoutReleaseRace pins the simultaneous release/timeout
// instant: Release dequeues the waiter before its wakeup runs, so a
// deadline firing at the very same time finds the queue empty and the
// waiter acquires.  The tie is deterministic — handover wins.
func TestRequestTimeoutReleaseRace(t *testing.T) {
	k := New()
	f := k.NewFacility("disk", 1)
	acquired := false
	k.Spawn("holder", func(p *Process) {
		p.Request(f)
		p.Hold(5)
		p.Release(f)
	})
	k.Spawn("waiter", func(p *Process) {
		acquired = p.RequestTimeout(f, 5) // deadline == release instant
		if acquired {
			p.Release(f)
		}
	})
	k.Run(Infinity)
	if !acquired {
		t.Fatal("waiter timed out at the release instant; handover must win the tie")
	}
}

// TestScheduleSteadyStateAllocs pins the zero-alloc property the slab
// exists for: once the free list is primed, a schedule/fire cycle and
// a schedule/cancel cycle allocate nothing.  The heap calendar paid
// at least two allocations per event here (the record and the
// closure), so this also locks in the ≥5x improvement.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	k := New()
	fn := func() {}
	for i := 0; i < 64; i++ { // prime the slab and the pending buffer
		k.After(Time(i), fn)
	}
	k.Run(Infinity)
	if got := testing.AllocsPerRun(100, func() {
		k.After(1, fn)
		k.Run(Infinity)
	}); got != 0 {
		t.Errorf("schedule+fire allocates %v/op in steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		tm := k.AfterTimer(1, fn)
		k.Cancel(tm)
	}); got != 0 {
		t.Errorf("schedule+cancel allocates %v/op in steady state, want 0", got)
	}
}

// BenchmarkCalendarSchedule measures the schedule-heavy steady state:
// one O(1) wheel insertion per op with the drain amortized across a
// 1024-event window.  The heap calendar paid O(log n) sift plus two
// allocations here.
func BenchmarkCalendarSchedule(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Time(i&1023)*1e-4, fn)
		if i&1023 == 1023 {
			k.Run(Infinity)
		}
	}
	k.Run(Infinity)
}

// BenchmarkCalendarCancel measures the schedule-then-cancel cycle the
// process layer's timeouts produce: both ends are O(1) slab hits, and
// the record recycles through the free list without garbage.
func BenchmarkCalendarCancel(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := k.AfterTimer(Time(i&255)*1e-3, fn)
		k.Cancel(tm)
	}
}
