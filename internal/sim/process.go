package sim

import "fmt"

// Process is a CSIM-style simulation process: model code that runs on
// its own goroutine but is scheduled hand-over-hand by the kernel so
// that exactly one process (or the kernel) executes at any moment.
//
// A process interacts with simulated time only through its methods:
// Hold advances the clock, Wait blocks on a Signal, Request/Release
// use a Facility.  Returning from the process function terminates it.
type Process struct {
	k      *Kernel
	name   string
	resume chan struct{} // kernel -> process: you may run
	yield  chan struct{} // process -> kernel: I am done for now
	done   bool

	// runfn is the process's persistent wakeup closure: every Hold,
	// Signal fire, facility handover, and queue wakeup schedules this
	// one function, so blocking and unblocking a process allocates
	// nothing after Spawn.
	runfn func()
}

// Spawn creates a process named name running fn and schedules it to
// start at the current simulated time.
func (k *Kernel) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.runfn = p.run
	k.processes++
	go func() {
		<-p.resume // wait for first activation
		fn(p)
		p.done = true
		k.processes--
		p.yield <- struct{}{}
	}()
	k.After(0, p.runfn)
	return p
}

// run transfers control from the kernel to the process and waits for
// it to yield back.  It must only be called from kernel context.
func (p *Process) run() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// pause transfers control from the process back to the kernel.  It
// must only be called from process context, and returns when the
// kernel reactivates the process.
func (p *Process) pause() {
	p.yield <- struct{}{}
	<-p.resume
}

// Name returns the process name, for tracing.
func (p *Process) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.k.Now() }

// Kernel returns the kernel this process runs on.
func (p *Process) Kernel() *Kernel { return p.k }

// Hold suspends the process for dt of simulated time (CSIM's hold()).
func (p *Process) Hold(dt Time) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: process %q holding negative time %v", p.name, dt))
	}
	p.k.After(dt, p.runfn)
	p.pause()
}

// Signal is a condition that processes can Wait on.  Fire wakes all
// waiters; FireOne wakes the longest-waiting single waiter.  Signals
// carry no payload; guard data lives in the model.
type Signal struct {
	k       *Kernel
	name    string
	waiters []*Process
}

// NewSignal creates a named signal on kernel k.
func (k *Kernel) NewSignal(name string) *Signal {
	return &Signal{k: k, name: name}
}

// Wait blocks the calling process until the signal fires.
func (p *Process) Wait(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.k.blocked++
	p.pause()
}

// Fire wakes every waiting process, in FIFO order, at the current time.
func (s *Signal) Fire() {
	waiters := s.waiters
	s.waiters = nil
	s.k.blocked -= len(waiters)
	for _, w := range waiters {
		s.k.After(0, w.runfn)
	}
}

// FireOne wakes the longest-waiting process, if any.  It reports
// whether a process was woken.
func (s *Signal) FireOne() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.k.blocked--
	s.k.After(0, w.runfn)
	return true
}

// Waiting returns the number of processes blocked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Facility is a CSIM-style server with a FIFO queue: a resource that
// serves a fixed number of concurrent users (servers).  Disks and the
// tertiary device are facilities in the micro-level model.
type Facility struct {
	k        *Kernel
	name     string
	servers  int
	inUse    int
	queue    []*Process
	busyTime Time // accumulated busy server-seconds, for utilization
	lastAt   Time
	acquired int // total successful acquisitions
}

// NewFacility creates a facility with the given number of servers.
func (k *Kernel) NewFacility(name string, servers int) *Facility {
	if servers <= 0 {
		panic(fmt.Sprintf("sim: facility %q must have at least one server", name))
	}
	return &Facility{k: k, name: name, servers: servers}
}

func (f *Facility) account() {
	f.busyTime += Time(f.inUse) * (f.k.Now() - f.lastAt)
	f.lastAt = f.k.Now()
}

// Request acquires one server of the facility, blocking the calling
// process in FIFO order while all servers are busy.
func (p *Process) Request(f *Facility) {
	if f.inUse < f.servers && len(f.queue) == 0 {
		f.account()
		f.inUse++
		f.acquired++
		return
	}
	f.queue = append(f.queue, p)
	p.k.blocked++
	p.pause()
	// The releasing process accounted and incremented on our behalf.
}

// RequestTimeout acquires one server like Request, but gives up after
// dt of simulated time in the queue (CSIM's timed reserve).  It
// reports whether a server was acquired; on false the process holds
// nothing and was removed from the queue.  The deadline is a single
// Timer cancelled in O(1) on the normal handover path — no tombstone
// closure outlives the call.
func (p *Process) RequestTimeout(f *Facility, dt Time) bool {
	if dt < 0 {
		panic(fmt.Sprintf("sim: process %q requesting %q with negative timeout %v", p.name, f.name, dt))
	}
	if f.inUse < f.servers && len(f.queue) == 0 {
		f.account()
		f.inUse++
		f.acquired++
		return true
	}
	f.queue = append(f.queue, p)
	p.k.blocked++
	acquired := true
	tm := p.k.AfterTimer(dt, func() {
		// Release dequeues the waiter before scheduling its wakeup, so
		// if p is no longer queued the handover already happened in
		// this same instant and the timeout must stand down.
		for i, q := range f.queue {
			if q == p {
				f.queue = append(f.queue[:i], f.queue[i+1:]...)
				p.k.blocked--
				acquired = false
				p.run()
				return
			}
		}
	})
	p.pause()
	p.k.Cancel(tm)
	return acquired
}

// Release returns one server to the facility, waking the head of the
// queue if any.
func (p *Process) Release(f *Facility) {
	if f.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle facility %q", f.name))
	}
	f.account()
	f.inUse--
	if len(f.queue) > 0 {
		w := f.queue[0]
		f.queue = f.queue[1:]
		f.inUse++
		f.acquired++
		p.k.blocked--
		p.k.After(0, w.runfn)
	}
}

// Use acquires the facility, holds for dt, and releases it — the CSIM
// use() convenience.
func (p *Process) Use(f *Facility, dt Time) {
	p.Request(f)
	p.Hold(dt)
	p.Release(f)
}

// Utilization returns the mean fraction of servers busy since the
// start of the simulation.
func (f *Facility) Utilization() float64 {
	f.account()
	if f.k.Now() == 0 {
		return 0
	}
	return float64(f.busyTime) / (float64(f.k.Now()) * float64(f.servers))
}

// QueueLen returns the number of processes waiting for a server.
func (f *Facility) QueueLen() int { return len(f.queue) }

// Acquired returns the number of successful acquisitions so far.
func (f *Facility) Acquired() int { return f.acquired }

// Name returns the facility name.
func (f *Facility) Name() string { return f.name }
