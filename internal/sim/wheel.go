package sim

import (
	"math"
	"math/bits"
)

// The event calendar is a hierarchical timing wheel in the
// Varghese–Lauck style: eight levels of 64 slots over 2^-20-second
// ticks, so schedule and cancel are O(1) and an event cascades at
// most eight times between being scheduled and firing.  Event records
// live in a slab and are recycled through a free list — steady-state
// scheduling allocates nothing — and every record is addressable by a
// Timer handle with a generation counter, so Cancel and Reschedule
// are O(1) slab lookups instead of tombstone closures.
//
// Simulated time is a float64, so a tick can hold events at distinct
// times as well as FIFO chains at the same time.  The wheel therefore
// drains one tick into a pending run-queue sorted by (time, sequence)
// — exactly the order the binary-heap calendar produced, which the
// differential tests in calendar_oracle_test.go pin over randomized
// schedules.

const (
	levelBits  = 6
	slotCount  = 1 << levelBits // 64
	slotMask   = slotCount - 1
	levelCount = 8  // 64^8 ticks of range, ~8.9 simulated years
	tickShift  = 20 // tick = 2^-20 s ≈ 0.95 µs

	// maxDelta is the span the wheel covers from an aligned clock;
	// events farther out wait on the overflow list until the clock
	// comes within range.
	maxDelta = uint64(1) << (levelBits * levelCount)
)

const nilIdx = int32(-1)

// Node positions: level<<8|slot for wheel residents, or a sentinel.
const (
	posFree     = 0xFFFF
	posOverflow = 0xFFFE
	posPending  = 0xFFFD
)

// timerNode is one slab-allocated event record.
type timerNode struct {
	at   Time
	tick uint64
	seq  uint64 // global FIFO tie-break; 0 when free
	fn   func()
	next int32 // intrusive doubly-linked bucket list / free list
	prev int32
	gen  uint32 // bumped on free, invalidating outstanding Timers
	pos  uint16
}

// Timer is a cancelable handle to a scheduled event.  The zero Timer
// is invalid; Cancel and Reschedule on it report false.
type Timer struct {
	ref int32 // slab index + 1, so the zero Timer matches no node
	gen uint32
}

type timerWheel struct {
	nodes []timerNode
	free  int32 // free-list head

	slots [levelCount][slotCount]int32
	occ   [levelCount]uint64 // per-level slot occupancy bitmaps

	overflow    int32  // events beyond maxDelta, unordered
	overflowMin uint64 // lower bound on overflow ticks (may be stale-low)

	curTick uint64
	seq     uint64
	count   int // live scheduled events

	// pending is the drained current tick in execution order;
	// pendIdx is the cursor of the next event to run.
	pending []int32
	pendIdx int
}

func (w *timerWheel) init() {
	w.free = nilIdx
	w.overflow = nilIdx
	w.overflowMin = math.MaxUint64
	for l := range w.slots {
		for s := range w.slots[l] {
			w.slots[l][s] = nilIdx
		}
	}
}

// tickOf maps a simulated time to a wheel tick, clamped to the
// current tick (sub-resolution ordering is restored by the pending
// sort) and saturated for far-future times such as Infinity.
func (w *timerWheel) tickOf(t Time) uint64 {
	f := float64(t) * float64(uint64(1)<<tickShift)
	if f >= float64(uint64(1)<<63) {
		return math.MaxUint64
	}
	tick := uint64(f)
	if tick < w.curTick {
		tick = w.curTick
	}
	return tick
}

func (w *timerWheel) alloc() int32 {
	if w.free != nilIdx {
		idx := w.free
		w.free = w.nodes[idx].next
		return idx
	}
	w.nodes = append(w.nodes, timerNode{})
	return int32(len(w.nodes) - 1)
}

func (w *timerWheel) freeNode(idx int32) {
	n := &w.nodes[idx]
	n.gen++
	n.fn = nil
	n.seq = 0
	n.pos = posFree
	n.next = w.free
	w.free = idx
}

// schedule inserts an event and returns its handle.
func (w *timerWheel) schedule(at Time, fn func()) Timer {
	idx := w.alloc()
	n := &w.nodes[idx]
	w.seq++
	n.at, n.tick, n.seq, n.fn = at, w.tickOf(at), w.seq, fn
	w.count++
	w.place(idx)
	return Timer{ref: idx + 1, gen: n.gen}
}

// place links node idx into the wheel, the overflow list, or — when
// its tick is the one currently draining — the pending run-queue in
// (time, seq) order.
//
// The level is the smallest one whose unit distance from the clock
// fits a single rotation: (tick>>shift) - (curTick>>shift) < 64.
// Choosing by raw delta magnitude instead is subtly wrong when the
// clock sits mid-unit: an event one full rotation ahead can land in
// the slot the clock currently occupies, and cascading it re-places
// it into the same slot forever.  The unit-distance rule guarantees
// every slot holds only current-rotation events, so findNext's
// candidate ticks are exact and every cascade makes progress.
func (w *timerWheel) place(idx int32) {
	n := &w.nodes[idx]
	tick := n.tick
	if tick <= w.curTick && w.pendIdx < len(w.pending) {
		w.insertPending(idx)
		return
	}
	level := 0
	for level < levelCount && (tick>>(uint(level)*levelBits))-(w.curTick>>(uint(level)*levelBits)) >= slotCount {
		level++
	}
	if level == levelCount {
		// No rotation window reaches it from here: park in overflow
		// until the clock comes close enough.
		n.pos = posOverflow
		n.prev = nilIdx
		n.next = w.overflow
		if w.overflow != nilIdx {
			w.nodes[w.overflow].prev = idx
		}
		w.overflow = idx
		if tick < w.overflowMin {
			w.overflowMin = tick
		}
		return
	}
	slot := int((tick >> (uint(level) * levelBits)) & slotMask)
	n.pos = uint16(level)<<8 | uint16(slot)
	n.prev = nilIdx
	n.next = w.slots[level][slot]
	if n.next != nilIdx {
		w.nodes[n.next].prev = idx
	}
	w.slots[level][slot] = idx
	w.occ[level] |= 1 << uint(slot)
}

// insertPending splices a node into the live run-queue at its (time,
// seq) position.  Everything before the cursor has already executed
// and is never revisited, and At() forbids scheduling in the past, so
// the insertion point is always at or after the cursor.
func (w *timerWheel) insertPending(idx int32) {
	n := &w.nodes[idx]
	n.pos = posPending
	lo, hi := w.pendIdx, len(w.pending)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := &w.nodes[w.pending[mid]]
		if m.at < n.at || (m.at == n.at && m.seq < n.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.pending = append(w.pending, 0)
	copy(w.pending[lo+1:], w.pending[lo:])
	w.pending[lo] = idx
}

// unlink removes node idx from whichever structure holds it.  The
// node stays allocated; the caller frees or re-places it.
func (w *timerWheel) unlink(idx int32) {
	n := &w.nodes[idx]
	switch n.pos {
	case posFree:
		panic("sim: unlink of free timer node")
	case posPending:
		for i := w.pendIdx; i < len(w.pending); i++ {
			if w.pending[i] == idx {
				w.pending = append(w.pending[:i], w.pending[i+1:]...)
				break
			}
		}
	case posOverflow:
		if n.prev != nilIdx {
			w.nodes[n.prev].next = n.next
		} else {
			w.overflow = n.next
		}
		if n.next != nilIdx {
			w.nodes[n.next].prev = n.prev
		}
	default:
		level, slot := int(n.pos>>8), int(n.pos&0xFF)
		if n.prev != nilIdx {
			w.nodes[n.prev].next = n.next
		} else {
			w.slots[level][slot] = n.next
		}
		if n.next != nilIdx {
			w.nodes[n.next].prev = n.prev
		}
		if w.slots[level][slot] == nilIdx {
			w.occ[level] &^= 1 << uint(slot)
		}
	}
}

// cancel removes the event tm refers to; it reports false when the
// event already fired, was already cancelled, or tm is the zero Timer.
func (w *timerWheel) cancel(tm Timer) bool {
	idx := tm.ref - 1
	if idx < 0 || int(idx) >= len(w.nodes) {
		return false
	}
	if n := &w.nodes[idx]; n.gen != tm.gen || n.pos == posFree {
		return false
	}
	w.unlink(idx)
	w.freeNode(idx)
	w.count--
	return true
}

// reschedule moves the event tm refers to to a new time, keeping the
// handle valid.  It reports false when the event is no longer live.
func (w *timerWheel) reschedule(tm Timer, at Time) bool {
	idx := tm.ref - 1
	if idx < 0 || int(idx) >= len(w.nodes) {
		return false
	}
	n := &w.nodes[idx]
	if n.gen != tm.gen || n.pos == posFree {
		return false
	}
	w.unlink(idx)
	w.seq++
	n.at, n.tick, n.seq = at, w.tickOf(at), w.seq
	w.place(idx)
	return true
}

func (w *timerWheel) wheelEmpty() bool {
	for _, b := range w.occ {
		if b != 0 {
			return false
		}
	}
	return true
}

// peek returns the slab index of the next event to fire without
// consuming it, advancing the wheel (cascades, overflow pull-in,
// tick drains) as needed.
func (w *timerWheel) peek() (int32, bool) {
	for {
		if w.pendIdx < len(w.pending) {
			return w.pending[w.pendIdx], true
		}
		w.pending = w.pending[:0]
		w.pendIdx = 0
		if w.count == 0 {
			return 0, false
		}
		if w.overflow != nilIdx {
			if w.wheelEmpty() && w.overflowMin > w.curTick {
				// Nothing nearer exists: jump the clock straight to
				// the earliest overflow event so it becomes placeable.
				w.curTick = w.overflowMin
			}
			const topShift = uint((levelCount - 1) * levelBits)
			if (w.overflowMin>>topShift)-(w.curTick>>topShift) < slotCount {
				// The earliest overflow event now fits a top-level
				// rotation window, so redistribution is guaranteed to
				// move at least it into the wheel.
				w.redistributeOverflow()
			}
		}
		dueTick, level, slot, found := w.findNext()
		if !found {
			panic("sim: calendar lost events")
		}
		w.curTick = dueTick
		if level > 0 {
			w.cascade(level, slot)
			continue
		}
		w.drainSlot(slot)
	}
}

// take consumes the event peek returned, freeing its record.
func (w *timerWheel) take() (Time, func()) {
	idx := w.pending[w.pendIdx]
	w.pendIdx++
	n := &w.nodes[idx]
	at, fn := n.at, n.fn
	w.freeNode(idx)
	w.count--
	return at, fn
}

// findNext locates the earliest occupied slot across all levels.  The
// returned tick is a lower bound on the events in that slot (exact at
// level 0 unless the slot holds only later-rotation placements, which
// the drain re-places).  Ties prefer the lowest level so draining
// beats cascading.
func (w *timerWheel) findNext() (tick uint64, level, slot int, found bool) {
	best := uint64(math.MaxUint64)
	bestLevel, bestSlot := -1, 0
	for l := 0; l < levelCount; l++ {
		b := w.occ[l]
		if b == 0 {
			continue
		}
		shift := uint(l) * levelBits
		cur := w.curTick >> shift // whole wheel-l units
		curSlot := int(cur & slotMask)
		var unit uint64
		var s int
		if m := b & (^uint64(0) << uint(curSlot)); m != 0 {
			s = bits.TrailingZeros64(m)
			unit = (cur &^ slotMask) + uint64(s)
		} else {
			// Only wrapped (next-rotation) slots remain at this level.
			s = bits.TrailingZeros64(b)
			unit = (cur &^ slotMask) + slotCount + uint64(s)
		}
		cand := unit << shift
		if cand < w.curTick {
			cand = w.curTick // the slot's range straddles the clock
		}
		if cand < best {
			best, bestLevel, bestSlot = cand, l, s
		}
	}
	if bestLevel < 0 {
		return 0, 0, 0, false
	}
	return best, bestLevel, bestSlot, true
}

// cascade redistributes one higher-level slot down the hierarchy now
// that the clock has reached its range.
func (w *timerWheel) cascade(level, slot int) {
	idx := w.slots[level][slot]
	w.slots[level][slot] = nilIdx
	w.occ[level] &^= 1 << uint(slot)
	for idx != nilIdx {
		next := w.nodes[idx].next
		w.place(idx)
		idx = next
	}
}

// drainSlot moves the current tick's events from a level-0 slot into
// the pending run-queue in (time, seq) order.  The unit-distance
// placement rule means a level-0 slot holds exactly one tick value,
// but later-tick residents are still re-placed, never fired, as a
// defensive invariant.
func (w *timerWheel) drainSlot(slot int) {
	idx := w.slots[0][slot]
	w.slots[0][slot] = nilIdx
	w.occ[0] &^= 1 << uint(slot)
	relink := nilIdx
	for idx != nilIdx {
		next := w.nodes[idx].next
		n := &w.nodes[idx]
		if n.tick <= w.curTick {
			n.pos = posPending
			w.pending = append(w.pending, idx)
		} else {
			n.next = relink
			relink = idx
		}
		idx = next
	}
	for relink != nilIdx {
		next := w.nodes[relink].next
		w.place(relink)
		relink = next
	}
	// Buckets are LIFO-linked; reversing restores near-sorted seq
	// order, so the insertion sort below is effectively linear.
	p := w.pending
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	for i := 1; i < len(p); i++ {
		v := p[i]
		n := &w.nodes[v]
		j := i
		for j > 0 {
			m := &w.nodes[p[j-1]]
			if m.at < n.at || (m.at == n.at && m.seq < n.seq) {
				break
			}
			p[j] = p[j-1]
			j--
		}
		p[j] = v
	}
}

// redistributeOverflow re-places every overflow event; place moves
// the ones now within wheel range into the hierarchy and parks the
// rest back in overflow, recomputing the overflow minimum.
func (w *timerWheel) redistributeOverflow() {
	idx := w.overflow
	w.overflow = nilIdx
	w.overflowMin = math.MaxUint64
	for idx != nilIdx {
		next := w.nodes[idx].next
		w.place(idx)
		idx = next
	}
}
