// Package sim is a process-oriented discrete-event simulation kernel,
// a pure-Go substitute for the CSIM library [Sch85] used by the paper.
//
// The kernel has two layers:
//
//   - An event calendar (a hierarchical timing wheel keyed on
//     simulated time, with FIFO tie-breaking) driving arbitrary
//     callbacks.  Scheduling and cancellation are O(1): event records
//     are slab-allocated and recycled through a free list, and Timer
//     handles address them directly, so schedule-heavy models pay no
//     heap churn.  This is the whole kernel for event-style models
//     such as the interval-quantized scheduler used by the throughput
//     experiments.
//
//   - A process layer in the CSIM style: a Process is a goroutine that
//     can Hold (advance simulated time), Wait on a Signal, or acquire a
//     Facility.  The kernel guarantees that exactly one process runs at
//     a time and that the simulated clock is globally consistent, so
//     models behave deterministically.
//
// The kernel is single-threaded from the model's point of view; the
// goroutines used by the process layer are strictly hand-over-hand
// scheduled and never run concurrently.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time float64

// Infinity is a time later than any event.
const Infinity = Time(math.MaxFloat64)

// Kernel is a discrete-event simulation instance.  A Kernel is not safe
// for concurrent use; all model code runs on the kernel's schedule.
type Kernel struct {
	now     Time
	cal     timerWheel
	stopped bool

	// process layer bookkeeping
	running   *Process // process currently executing, nil when in kernel
	processes int      // live process count, for deadlock detection
	blocked   int      // processes blocked on signals/facilities
}

// New returns an empty kernel at time zero.
func New() *Kernel {
	k := &Kernel{}
	k.cal.init()
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute simulated time t.  Scheduling in
// the past panics: it is always a model bug.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.cal.schedule(t, fn)
}

// After schedules fn to run dt seconds from now.
func (k *Kernel) After(dt Time, fn func()) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", dt))
	}
	k.cal.schedule(k.now+dt, fn)
}

// AtTimer schedules fn at absolute time t and returns a handle for
// O(1) Cancel or Reschedule.
func (k *Kernel) AtTimer(t Time, fn func()) Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	return k.cal.schedule(t, fn)
}

// AfterTimer schedules fn dt seconds from now and returns its handle.
func (k *Kernel) AfterTimer(dt Time, fn func()) Timer {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", dt))
	}
	return k.cal.schedule(k.now+dt, fn)
}

// Cancel removes a scheduled event in O(1).  It reports false when
// the event already fired, was already cancelled, or tm is the zero
// Timer — cancelling a dead timer is not an error, so callers can
// cancel unconditionally instead of tracking liveness themselves.
func (k *Kernel) Cancel(tm Timer) bool { return k.cal.cancel(tm) }

// Reschedule moves a live timer to absolute time t in O(1), reusing
// its event record; the handle remains valid.  It reports false when
// the timer already fired or was cancelled (the event is NOT
// re-armed — use AtTimer for that).
func (k *Kernel) Reschedule(tm Timer, t Time) bool {
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, k.now))
	}
	return k.cal.reschedule(tm, t)
}

// Stop halts the simulation after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the calendar empties, Stop is called, or
// the clock would pass horizon.  Events scheduled exactly at horizon
// fire before Run returns (TestHorizonBoundary pins this); only
// strictly later events are left for a future Run.  It returns the
// final simulated time.  Processes still blocked on signals,
// facilities, or queues when the calendar empties simply never resume
// — the simulation has quiesced, which is how CSIM models also end;
// Quiesced reports that state.
func (k *Kernel) Run(horizon Time) Time {
	k.stopped = false
	for !k.stopped {
		idx, ok := k.cal.peek()
		if !ok {
			break
		}
		if k.cal.nodes[idx].at > horizon {
			k.now = horizon
			return k.now
		}
		at, fn := k.cal.take()
		k.now = at
		fn()
	}
	return k.now
}

// Quiesced reports whether live processes remain but all of them are
// blocked with an empty calendar — nothing can ever run again.  In a
// model with self-sustaining processes this usually indicates a bug;
// in producer/consumer models it is the normal end state.
func (k *Kernel) Quiesced() bool {
	return k.processes > 0 && k.processes == k.blocked && k.cal.count == 0
}

// Step executes exactly one event if one exists, returning false when
// the calendar is empty.  A prior Stop() consumes the first Step —
// it returns false once and resets the stop, matching Run's contract
// of clearing the flag before executing anything.
func (k *Kernel) Step() bool {
	if k.stopped {
		k.stopped = false
		return false
	}
	_, ok := k.cal.peek()
	if !ok {
		return false
	}
	at, fn := k.cal.take()
	k.now = at
	fn()
	return true
}

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return k.cal.count }
