// Package sim is a process-oriented discrete-event simulation kernel,
// a pure-Go substitute for the CSIM library [Sch85] used by the paper.
//
// The kernel has two layers:
//
//   - An event calendar (binary heap keyed on simulated time, with FIFO
//     tie-breaking) driving arbitrary callbacks.  This is the whole
//     kernel for event-style models such as the interval-quantized
//     scheduler used by the throughput experiments.
//
//   - A process layer in the CSIM style: a Process is a goroutine that
//     can Hold (advance simulated time), Wait on a Signal, or acquire a
//     Facility.  The kernel guarantees that exactly one process runs at
//     a time and that the simulated clock is globally consistent, so
//     models behave deterministically.
//
// The kernel is single-threaded from the model's point of view; the
// goroutines used by the process layer are strictly hand-over-hand
// scheduled and never run concurrently.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time float64

// Infinity is a time later than any event.
const Infinity = Time(math.MaxFloat64)

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation instance.  A Kernel is not safe
// for concurrent use; all model code runs on the kernel's schedule.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool

	// process layer bookkeeping
	running   *Process // process currently executing, nil when in kernel
	processes int      // live process count, for deadlock detection
	blocked   int      // processes blocked on signals/facilities
}

// New returns an empty kernel at time zero.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute simulated time t.  Scheduling in
// the past panics: it is always a model bug.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run dt seconds from now.
func (k *Kernel) After(dt Time, fn func()) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", dt))
	}
	k.At(k.now+dt, fn)
}

// Stop halts the simulation after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the calendar empties, Stop is called, or
// the clock passes horizon.  It returns the final simulated time.
// Processes still blocked on signals, facilities, or queues when the
// calendar empties simply never resume — the simulation has quiesced,
// which is how CSIM models also end; Quiesced reports that state.
func (k *Kernel) Run(horizon Time) Time {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		e := k.queue[0]
		if e.at > horizon {
			k.now = horizon
			return k.now
		}
		heap.Pop(&k.queue)
		k.now = e.at
		e.fn()
	}
	return k.now
}

// Quiesced reports whether live processes remain but all of them are
// blocked with an empty calendar — nothing can ever run again.  In a
// model with self-sustaining processes this usually indicates a bug;
// in producer/consumer models it is the normal end state.
func (k *Kernel) Quiesced() bool {
	return k.processes > 0 && k.processes == k.blocked && len(k.queue) == 0
}

// Step executes exactly one event if one exists, returning false when
// the calendar is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*event)
	k.now = e.at
	e.fn()
	return true
}

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.queue) }
