package sim

import (
	"math/rand"
	"testing"
)

// TestTickWheelMatchesMapBuckets drives the wheel and the structure
// it replaces — interval-keyed map buckets — with identical random
// traffic and requires identical drain contents AND order at every
// tick.  Engine results are bit-identical exactly when this holds.
func TestTickWheelMatchesMapBuckets(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		w := NewTickWheel[int]()
		oracle := map[int][]int{}
		horizon := 1 + rng.Intn(3000)
		var buf []int
		id := 0
		for now := 0; now < horizon; now++ {
			buf = w.Due(now, buf[:0])
			want := oracle[now]
			delete(oracle, now)
			if len(buf) != len(want) {
				t.Fatalf("trial %d tick %d: wheel drained %d, map %d", trial, now, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("trial %d tick %d: drain order diverged at %d: wheel %v map %v", trial, now, i, buf, want)
				}
			}
			for n := rng.Intn(4); n > 0; n-- {
				var delay int
				switch rng.Intn(4) {
				case 0:
					delay = 1 // next tick
				case 1:
					delay = 1 + rng.Intn(64) // level-0/1 boundary traffic
				case 2:
					delay = 1 + rng.Intn(64*64+2) // level-2 crossings
				default:
					delay = 1 + rng.Intn(100000) // deep levels
				}
				at := now + delay
				w.Add(at, id)
				oracle[at] = append(oracle[at], id)
				id++
			}
		}
		pending := 0
		for _, b := range oracle {
			pending += len(b)
		}
		if w.Len() != pending {
			t.Fatalf("trial %d: wheel reports %d pending, map %d", trial, w.Len(), pending)
		}
	}
}

// TestTickWheelOverflow exercises the beyond-top-level backstop: an
// entry farther out than every rotation window parks in overflow and
// is pulled into the hierarchy at the next top-level boundary
// crossing.  Stepping the ~10^10 ticks to drain it honestly is not
// feasible in a unit test, so this starts an empty wheel just below a
// boundary — a legal state, since placement is always relative to the
// current tick.
func TestTickWheelOverflow(t *testing.T) {
	const boundary = 1 << (twLevels * levelBits) // next top-level unit
	w := NewTickWheel[string]()
	w.cur = boundary - 3
	far := boundary + 7 // outside the clock's top-level unit
	w.Add(far, "far")
	if len(w.overflow) != 1 {
		t.Fatalf("far entry not parked in overflow (len %d)", len(w.overflow))
	}
	var buf []string
	var drained []int
	for tick := boundary - 2; tick <= far; tick++ {
		if buf = w.Due(tick, buf[:0]); len(buf) != 0 {
			drained = append(drained, tick)
		}
	}
	if len(w.overflow) != 0 {
		t.Fatal("boundary crossing did not redistribute the overflow entry")
	}
	if len(drained) != 1 || drained[0] != far {
		t.Fatalf("drains at ticks %v, want exactly [%d]", drained, far)
	}
	if w.Len() != 0 {
		t.Fatalf("wheel still reports %d entries", w.Len())
	}
}

// TestTickWheelSteadyStateAllocs pins the zero-alloc drain loop the
// engines rely on: bounded-delay traffic through a primed wheel with
// a reused buffer allocates nothing per tick.
func TestTickWheelSteadyStateAllocs(t *testing.T) {
	w := NewTickWheel[int]()
	var buf []int
	now := 0
	for ; now < 4096; now++ { // prime slot backings across two rotations
		buf = w.Due(now, buf[:0])
		w.Add(now+1+(now%60), now)
	}
	if got := testing.AllocsPerRun(1000, func() {
		buf = w.Due(now, buf[:0])
		w.Add(now+1+(now%60), now)
		now++
	}); got != 0 {
		t.Errorf("steady-state tick allocates %v/op, want 0", got)
	}
}
