package sim

import "fmt"

// Queue is a CSIM-style passive FIFO with waiting-time statistics:
// producers Put items, consumers Get them, blocking while the queue is
// empty.  Unlike a Facility it carries data, and unlike a Signal every
// item wakes exactly one consumer.
type Queue struct {
	k       *Kernel
	name    string
	items   []queued
	waiters []*Process
	// statistics
	puts, gets int
	waitTime   Time // accumulated item residence time
	peak       int
}

type queued struct {
	value any
	at    Time
}

// NewQueue creates a named queue on kernel k.
func (k *Kernel) NewQueue(name string) *Queue {
	return &Queue{k: k, name: name}
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Puts and Gets return the operation counts.
func (q *Queue) Puts() int { return q.puts }
func (q *Queue) Gets() int { return q.gets }

// Peak returns the largest queue length observed.
func (q *Queue) Peak() int { return q.peak }

// MeanWait returns the average item residence time.
func (q *Queue) MeanWait() Time {
	if q.gets == 0 {
		return 0
	}
	return q.waitTime / Time(q.gets)
}

// Put enqueues v, waking one blocked consumer if any.  Put never
// blocks (the queue is unbounded) and may be called from kernel or
// process context.
func (q *Queue) Put(v any) {
	q.items = append(q.items, queued{value: v, at: q.k.Now()})
	q.puts++
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.blocked--
		q.k.After(0, w.runfn)
	}
}

// Get dequeues the oldest item, blocking the calling process while the
// queue is empty.  Consumers are served FIFO.
func (p *Process) Get(q *Queue) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.k.blocked++
		p.pause()
	}
	it := q.items[0]
	q.items = q.items[1:]
	q.gets++
	q.waitTime += p.k.Now() - it.at
	// If items remain and other consumers wait, let the next one run.
	if len(q.items) > 0 && len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		p.k.blocked--
		p.k.After(0, w.runfn)
	}
	return it.value
}

// TryGet dequeues without blocking; ok is false when empty.
func (q *Queue) TryGet() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	q.gets++
	q.waitTime += q.k.Now() - it.at
	return it.value, true
}

// Mailbox is a one-slot rendezvous between processes: Send blocks
// until a receiver takes the message; Receive blocks until a sender
// arrives — CSIM's synchronous message passing.
type Mailbox struct {
	k        *Kernel
	name     string
	value    any
	occupied bool
	sender   *Process
	rcvrs    []*Process
}

// NewMailbox creates a named mailbox on kernel k.
func (k *Kernel) NewMailbox(name string) *Mailbox {
	return &Mailbox{k: k, name: name}
}

// Send places v in the mailbox and blocks until a receiver consumes
// it.  Only one sender may be in the mailbox at a time; a second
// concurrent Send panics (it is always a model bug in a rendezvous).
func (p *Process) Send(m *Mailbox, v any) {
	if m.occupied {
		panic(fmt.Sprintf("sim: concurrent Send on mailbox %q", m.name))
	}
	m.value = v
	m.occupied = true
	m.sender = p
	if len(m.rcvrs) > 0 {
		w := m.rcvrs[0]
		m.rcvrs = m.rcvrs[1:]
		p.k.blocked--
		p.k.After(0, w.runfn)
	}
	p.k.blocked++
	p.pause() // resumed by the receiver
}

// Receive blocks until a message is available, consumes it, and
// unblocks the sender.
func (p *Process) Receive(m *Mailbox) any {
	for !m.occupied {
		m.rcvrs = append(m.rcvrs, p)
		p.k.blocked++
		p.pause()
	}
	v := m.value
	m.value = nil
	m.occupied = false
	s := m.sender
	m.sender = nil
	p.k.blocked--
	p.k.After(0, s.runfn)
	return v
}
