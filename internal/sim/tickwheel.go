package sim

// TickWheel is a hierarchical calendar for models quantized to
// integer ticks, such as the interval-stepped display engines: the
// clock advances exactly one tick per Due call, Add is O(1), and a
// payload cascades down the hierarchy at most once per level before
// it drains.  It replaces interval-keyed maps (map[int][]P) whose
// hashing and per-bucket reallocation dominate at large scale; slot
// backings here are reused across rotations, so steady-state traffic
// allocates nothing.
//
// Payloads drain in exactly Add order per tick — the order a
// map-bucket append produced — which keeps engine results
// bit-identical.  That relies on strict placement: an entry lives at
// level l only while it shares the clock's level-(l+1) unit, so it
// sinks exactly when the clock enters each enclosing window.  Every
// cascade therefore runs before any later Add could target a lower
// level, and relative order is preserved all the way down.
type TickWheel[P any] struct {
	cur   int // last tick passed to Due; -1 before the first
	slots [twLevels][slotCount][]tickEntry[P]
	// overflow holds entries beyond the top level's span; it is
	// re-placed when the clock crosses into a new top-level unit.
	overflow []tickEntry[P]
	count    int
}

// twLevels × 6 bits covers 64^6 ≈ 6.9e10 ticks of span — far past
// any configured run length — with the overflow slice as the
// correctness backstop.
const twLevels = 6

type tickEntry[P any] struct {
	tick int
	v    P
}

// NewTickWheel returns a wheel positioned before tick zero, so the
// first Due call must be Due(0, ...).
func NewTickWheel[P any]() *TickWheel[P] {
	return &TickWheel[P]{cur: -1}
}

// Len returns the number of undrained payloads.
func (w *TickWheel[P]) Len() int { return w.count }

// Add schedules v for tick at, which must be after the last drained
// tick — the engines only ever schedule strictly into the future.
func (w *TickWheel[P]) Add(at int, v P) {
	if at <= w.cur {
		panic("sim: TickWheel.Add at or before the current tick")
	}
	w.count++
	w.place(tickEntry[P]{tick: at, v: v})
}

func (w *TickWheel[P]) place(e tickEntry[P]) {
	cur := w.cur
	if cur < 0 {
		cur = 0
	}
	for level := 0; level < twLevels; level++ {
		above := uint(level+1) * levelBits
		if e.tick>>above == cur>>above {
			slot := (e.tick >> (uint(level) * levelBits)) & slotMask
			w.slots[level][slot] = append(w.slots[level][slot], e)
			return
		}
	}
	w.overflow = append(w.overflow, e)
}

// Due advances the wheel to tick — which must be exactly cur+1 — and
// appends that tick's payloads to buf in Add order.  Passing a reused
// buffer (buf[:0]) makes the steady state allocation-free.
func (w *TickWheel[P]) Due(tick int, buf []P) []P {
	if tick != w.cur+1 {
		panic("sim: TickWheel.Due must advance one tick at a time")
	}
	w.cur = tick
	// An empty wheel needs no slot maintenance: place computes an
	// entry's level from the clock at Add time, so boundaries crossed
	// while nothing was resident never leave stale residents behind.
	if w.count == 0 {
		return buf
	}
	// Every level-1-and-up unit boundary is a multiple of the slot
	// count, so off-multiple ticks skip straight to the level-0 drain.
	if tick&slotMask == 0 {
		w.cascade(tick)
	}
	s := &w.slots[0][tick&slotMask]
	for _, e := range *s {
		buf = append(buf, e.v)
	}
	w.count -= len(*s)
	clear(*s)
	*s = (*s)[:0]
	return buf
}

// Reset empties the wheel and repositions the clock so the next Due
// call must be Due(cur+1).  The failover path uses it to jump a
// revived engine's wheels across the dead window: every pending
// payload belonged to the killed run and has already been drained or
// aborted, so dropping them wholesale is exactly the semantics a cold
// restart wants.
func (w *TickWheel[P]) Reset(cur int) {
	if w.count > 0 || w.overflow != nil {
		for level := range w.slots {
			for slot := range w.slots[level] {
				s := w.slots[level][slot]
				clear(s)
				w.slots[level][slot] = s[:0]
			}
		}
		clear(w.overflow)
		w.overflow = w.overflow[:0]
		w.count = 0
	}
	w.cur = cur
}

// cascade redistributes residents of every unit the clock enters at
// tick.  Entering a new unit at a level redistributes that unit's
// residents downward; highest level first so an entry sinks one level
// per boundary it crosses, preserving relative order.
func (w *TickWheel[P]) cascade(tick int) {
	if tick&(1<<(twLevels*levelBits)-1) == 0 && len(w.overflow) > 0 {
		pend := w.overflow
		w.overflow = nil
		for _, e := range pend {
			w.place(e)
		}
	}
	for level := twLevels - 1; level >= 1; level-- {
		shift := uint(level) * levelBits
		if tick&(1<<shift-1) != 0 {
			continue
		}
		slot := (tick >> shift) & slotMask
		pend := w.slots[level][slot]
		w.slots[level][slot] = nil
		for _, e := range pend {
			w.place(e)
		}
		// A redistributed entry never lands back in this slot — it
		// now shares the clock's unit at this level, sinking it at
		// least one level down — so the backing is recyclable.
		clear(pend)
		w.slots[level][slot] = pend[:0]
	}
}
