package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(3, func() { order = append(order, 3) })
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	k.Run(Infinity)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run(Infinity)
	if !sort.IntsAreSorted(order) {
		t.Fatal("same-time events did not run in scheduling order")
	}
}

func TestClockAdvances(t *testing.T) {
	k := New()
	var at1, at2 Time
	k.At(1.5, func() { at1 = k.Now() })
	k.After(4.25, func() { at2 = k.Now() })
	end := k.Run(Infinity)
	if at1 != 1.5 || at2 != 4.25 {
		t.Fatalf("event times wrong: %v %v", at1, at2)
	}
	if end != 4.25 {
		t.Fatalf("final time = %v, want 4.25", end)
	}
}

func TestHorizon(t *testing.T) {
	k := New()
	ran := false
	k.At(10, func() { ran = true })
	end := k.Run(5)
	if ran {
		t.Fatal("event past horizon executed")
	}
	if end != 5 {
		t.Fatalf("Run stopped at %v, want horizon 5", end)
	}
	// Resuming past the horizon executes it.
	k.Run(Infinity)
	if !ran {
		t.Fatal("event not executed after horizon extended")
	}
}

func TestStop(t *testing.T) {
	k := New()
	count := 0
	k.At(1, func() { count++; k.Stop() })
	k.At(2, func() { count++ })
	k.Run(Infinity)
	if count != 1 {
		t.Fatalf("Stop did not halt the run: %d events ran", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(1, func() {})
	})
	k.Run(Infinity)
}

func TestNegativeDelayPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestStep(t *testing.T) {
	k := New()
	n := 0
	k.At(1, func() { n++ })
	k.At(2, func() { n++ })
	if !k.Step() || n != 1 {
		t.Fatal("first Step failed")
	}
	if !k.Step() || n != 2 {
		t.Fatal("second Step failed")
	}
	if k.Step() {
		t.Fatal("Step on empty calendar returned true")
	}
}

func TestProcessHold(t *testing.T) {
	k := New()
	var trace []Time
	k.Spawn("holder", func(p *Process) {
		trace = append(trace, p.Now())
		p.Hold(2.5)
		trace = append(trace, p.Now())
		p.Hold(1.5)
		trace = append(trace, p.Now())
	})
	k.Run(Infinity)
	want := []Time{0, 2.5, 4}
	if len(trace) != 3 {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcessInterleaving(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Process) {
		p.Hold(1)
		order = append(order, "a1")
		p.Hold(2)
		order = append(order, "a3")
	})
	k.Spawn("b", func(p *Process) {
		p.Hold(2)
		order = append(order, "b2")
	})
	k.Run(Infinity)
	want := []string{"a1", "b2", "a3"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalFireAll(t *testing.T) {
	k := New()
	s := k.NewSignal("cond")
	woken := 0
	for i := 0; i < 5; i++ {
		k.Spawn("waiter", func(p *Process) {
			p.Wait(s)
			woken++
		})
	}
	k.Spawn("firer", func(p *Process) {
		p.Hold(10)
		s.Fire()
	})
	k.Run(Infinity)
	if woken != 5 {
		t.Fatalf("Fire woke %d of 5 waiters", woken)
	}
}

func TestSignalFireOneFIFO(t *testing.T) {
	k := New()
	s := k.NewSignal("cond")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("waiter", func(p *Process) {
			p.Hold(Time(i) * 0.001) // stagger arrival order
			p.Wait(s)
			order = append(order, i)
		})
	}
	k.Spawn("firer", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Hold(1)
			if !s.FireOne() {
				t.Error("FireOne found no waiter")
			}
		}
	})
	k.Run(Infinity)
	for i := range order {
		if order[i] != i {
			t.Fatalf("FireOne order = %v, want FIFO", order)
		}
	}
}

func TestFireOneEmpty(t *testing.T) {
	k := New()
	s := k.NewSignal("cond")
	if s.FireOne() {
		t.Fatal("FireOne on empty signal returned true")
	}
}

func TestFacilityMutualExclusion(t *testing.T) {
	k := New()
	f := k.NewFacility("disk", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 10; i++ {
		k.Spawn("user", func(p *Process) {
			p.Request(f)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Hold(1)
			inside--
			p.Release(f)
		})
	}
	end := k.Run(Infinity)
	if maxInside != 1 {
		t.Fatalf("facility with 1 server admitted %d concurrently", maxInside)
	}
	if end != 10 {
		t.Fatalf("10 serialized unit holds ended at %v, want 10", end)
	}
}

func TestFacilityMultiServer(t *testing.T) {
	k := New()
	f := k.NewFacility("array", 3)
	for i := 0; i < 9; i++ {
		k.Spawn("user", func(p *Process) { p.Use(f, 1) })
	}
	end := k.Run(Infinity)
	if end != 3 {
		t.Fatalf("9 unit jobs on 3 servers ended at %v, want 3", end)
	}
	if got := f.Acquired(); got != 9 {
		t.Fatalf("Acquired = %d, want 9", got)
	}
}

func TestFacilityFIFO(t *testing.T) {
	k := New()
	f := k.NewFacility("disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("user", func(p *Process) {
			p.Hold(Time(i) * 0.001)
			p.Request(f)
			order = append(order, i)
			p.Hold(1)
			p.Release(f)
		})
	}
	k.Run(Infinity)
	for i := range order {
		if order[i] != i {
			t.Fatalf("facility service order = %v, want FIFO", order)
		}
	}
}

func TestFacilityUtilization(t *testing.T) {
	k := New()
	f := k.NewFacility("disk", 1)
	k.Spawn("user", func(p *Process) {
		p.Use(f, 3)
		p.Hold(1) // idle tail
	})
	k.Run(Infinity)
	if u := f.Utilization(); math.Abs(u-0.75) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	k := New()
	f := k.NewFacility("disk", 1)
	k.Spawn("bad", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("releasing idle facility did not panic")
			}
		}()
		p.Release(f)
	})
	k.Run(Infinity)
}

func TestZeroServerFacilityPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("zero-server facility did not panic")
		}
	}()
	k.NewFacility("bad", 0)
}

// TestProcessesDeterministic checks that an entire mixed process/event
// model replays identically: determinism is load-bearing for the
// experiment harness.
func TestProcessesDeterministic(t *testing.T) {
	run := func() []Time {
		k := New()
		f := k.NewFacility("disk", 2)
		var trace []Time
		for i := 0; i < 6; i++ {
			i := i
			k.Spawn("u", func(p *Process) {
				p.Hold(Time(i % 3))
				p.Request(f)
				trace = append(trace, p.Now())
				p.Hold(1.5)
				p.Release(f)
			})
		}
		k.Run(Infinity)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replays differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of job durations on a single-server facility,
// the completion time equals the sum of the durations.
func TestFacilityWorkConservation(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		k := New()
		f := k.NewFacility("disk", 1)
		var sum Time
		for _, r := range raw {
			d := Time(r) / 16
			sum += d
			k.Spawn("job", func(p *Process) { p.Use(f, d) })
		}
		end := k.Run(Infinity)
		return math.Abs(float64(end-sum)) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventCalendar(b *testing.B) {
	k := New()
	var pump func()
	n := 0
	pump = func() {
		n++
		if n < b.N {
			k.After(1, pump)
		}
	}
	k.After(1, pump)
	b.ResetTimer()
	k.Run(Infinity)
}

func BenchmarkProcessSwitch(b *testing.B) {
	k := New()
	k.Spawn("holder", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	k.Run(Infinity)
}
