package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// heapCalendar is the pre-wheel binary-heap event calendar, verbatim,
// kept as the differential oracle: for any schedule the wheel must
// drain events in exactly the order the heap drained them.

type oracleEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
}

type oracleHeap []*oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(*oracleEvent)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type heapCalendar struct {
	q   oracleHeap
	seq uint64
}

func (c *heapCalendar) schedule(at Time, id int) *oracleEvent {
	c.seq++
	e := &oracleEvent{at: at, seq: c.seq, id: id}
	heap.Push(&c.q, e)
	return e
}

// reschedule mirrors the wheel's Reschedule: the event keeps its
// identity but takes a fresh sequence number.
func (c *heapCalendar) reschedule(e *oracleEvent, at Time) {
	c.seq++
	e.at, e.seq = at, c.seq
	heap.Init(&c.q)
}

func (c *heapCalendar) drain() []int {
	var order []int
	for c.q.Len() > 0 {
		e := heap.Pop(&c.q).(*oracleEvent)
		if !e.cancelled {
			order = append(order, e.id)
		}
	}
	return order
}

// TestWheelMatchesHeapRandom is the differential test of the
// acceptance criteria: randomized schedules — bursty times, far
// jumps, same-time FIFO chains, cancels, and reschedules — must drain
// from the wheel in exactly the heap's order.
func TestWheelMatchesHeapRandom(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		k := New()
		oracle := &heapCalendar{}

		var got []int
		n := 5 + rng.Intn(120)
		timers := make([]Timer, n)
		events := make([]*oracleEvent, n)
		now := Time(0)
		for i := 0; i < n; i++ {
			var at Time
			switch rng.Intn(5) {
			case 0: // same-time cluster
				at = now
			case 1: // sub-tick spacing (below wheel resolution)
				at = now + Time(rng.Float64())*1e-8
			case 2: // near future, same level-0 window
				at = now + Time(rng.Float64())*1e-3
			case 3: // mid future, forces level 1-3 placement
				at = now + Time(rng.Float64())*1000
			default: // far future, high levels / overflow behaviour
				at = now + Time(rng.Float64())*3e6
			}
			id := i
			timers[i] = k.AtTimer(at, func() { got = append(got, id) })
			events[i] = oracle.schedule(at, id)
		}
		// Cancel a random subset and reschedule another, identically
		// on both calendars.
		for i := 0; i < n/4; i++ {
			v := rng.Intn(n)
			if events[v].cancelled {
				continue
			}
			if rng.Intn(2) == 0 {
				events[v].cancelled = true
				if !k.Cancel(timers[v]) {
					t.Fatalf("trial %d: cancel of live timer %d failed", trial, v)
				}
			} else {
				at := now + Time(rng.Float64())*1e5
				oracle.reschedule(events[v], at)
				if !k.Reschedule(timers[v], at) {
					t.Fatalf("trial %d: reschedule of live timer %d failed", trial, v)
				}
			}
		}
		k.Run(Infinity)
		want := oracle.drain()
		if len(got) != len(want) {
			t.Fatalf("trial %d: wheel fired %d events, heap %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: drain order diverged at %d: wheel %v, heap %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestWheelMatchesHeapCascadingSchedules drives both calendars with
// events that schedule more events while running — the process-layer
// pattern (Hold chains, After(0) wakeups) — and compares execution
// order end to end.  As long as both calendars fire in the same
// order, both runs draw the same random delays at the same points, so
// any divergence is a calendar-ordering bug.
func TestWheelMatchesHeapCascadingSchedules(t *testing.T) {
	run := func(trial int, schedule func(at Time, fn func()), now func() Time, runAll func()) []int {
		var got []int
		rng := rand.New(rand.NewSource(int64(trial)))
		var spawn func(depth, id int) func()
		spawn = func(depth, id int) func() {
			return func() {
				got = append(got, id)
				if depth < 3 {
					kids := rng.Intn(3)
					for c := 0; c < kids; c++ {
						var dt Time
						switch rng.Intn(3) {
						case 0:
							dt = 0
						case 1:
							dt = Time(rng.Float64()) * 1e-7
						default:
							dt = Time(rng.Float64()) * 500
						}
						schedule(now()+dt, spawn(depth+1, id*10+c+1))
					}
				}
			}
		}
		for i := 0; i < 10; i++ {
			schedule(Time(rng.Float64())*100, spawn(0, i+1))
		}
		runAll()
		return got
	}

	for trial := 0; trial < 50; trial++ {
		k := New()
		gotWheel := run(trial,
			func(at Time, fn func()) { k.At(at, fn) },
			k.Now,
			func() { k.Run(Infinity) })

		// Oracle: a tiny heap-driven event loop with identical
		// semantics.
		h := &heapCalendar{}
		fns := map[uint64]func(){}
		var hNow Time
		gotHeap := run(trial,
			func(at Time, fn func()) { fns[h.schedule(at, 0).seq] = fn },
			func() Time { return hNow },
			func() {
				for h.q.Len() > 0 {
					e := heap.Pop(&h.q).(*oracleEvent)
					hNow = e.at
					fns[e.seq]()
				}
			})

		if len(gotWheel) != len(gotHeap) {
			t.Fatalf("trial %d: wheel ran %d events, heap %d", trial, len(gotWheel), len(gotHeap))
		}
		for i := range gotHeap {
			if gotWheel[i] != gotHeap[i] {
				t.Fatalf("trial %d: cascade order diverged at %d: wheel %v heap %v", trial, i, gotWheel[i], gotHeap[i])
			}
		}
	}
}
