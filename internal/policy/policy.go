// Package policy implements the simulation's storage-management
// policies: the paper's least-frequently-accessed replacement (§4.1)
// and a load-triggered dynamic replication rule standing in for the
// Minimum Response Time (MRT) state-transition diagram of [GS93] used
// by the virtual-data-replication baseline.
//
// The MRT diagram itself is not reproduced in the paper; DESIGN.md §5
// documents the substitution.  The rule implemented here replicates a
// resident object when its waiting demand exceeds what its current
// replicas can absorb within one display time — the cost of making a
// disk-to-disk copy.
package policy

import (
	"fmt"
	"math"
)

// LFU tracks object access frequencies and selects replacement
// victims.  The paper: "it implements a replacement policy that
// removes the least frequently accessed object" (§4.1).  Object ids
// are small non-negative integers, so the table is a dense slice:
// Touch and Count are array indexing on the engines' hot paths.
type LFU struct {
	counts []int64
}

// NewLFU returns an empty frequency table.
func NewLFU() *LFU {
	return &LFU{}
}

// grow extends the table to cover id with amortized (capacity-
// doubling) growth so out-of-order first touches stay O(n).
func (l *LFU) grow(id int) {
	if id < len(l.counts) {
		return
	}
	if id < cap(l.counts) {
		l.counts = l.counts[:id+1]
		return
	}
	n := cap(l.counts) * 2
	if n < id+1 {
		n = id + 1
	}
	if n < 64 {
		n = 64
	}
	next := make([]int64, id+1, n)
	copy(next, l.counts)
	l.counts = next
}

// Touch records one access to object id.
func (l *LFU) Touch(id int) {
	l.grow(id)
	l.counts[id]++
}

// Count returns the accesses recorded for id.
func (l *LFU) Count(id int) int64 {
	if id < 0 || id >= len(l.counts) {
		return 0
	}
	return l.counts[id]
}

// Victim returns the candidate with the lowest access count; ok is
// false when candidates is empty.  Ties break toward the LARGEST id:
// ids are assigned in materialization order, so among equally-cold
// objects the youngest resident goes first, which protects objects
// that simply have not been referenced yet this run.
func (l *LFU) Victim(candidates []int) (victim int, ok bool) {
	best, bestCount := -1, int64(math.MaxInt64)
	for _, id := range candidates {
		c := l.Count(id)
		if c < bestCount || (c == bestCount && id > best) {
			best, bestCount = id, c
		}
	}
	return best, best >= 0
}

// Colder reports whether a is strictly less frequently accessed than
// b.
func (l *LFU) Colder(a, b int) bool { return l.Count(a) < l.Count(b) }

// Replication is the demand-proportional replication rule for the VDR
// baseline.  An object's target replica count follows its long-run
// share of the reference stream:
//
//	target(X) = ceil(Theta × share(X) × concurrency)
//
// where concurrency is the number of displays the farm can sustain
// (min(stations, clusters)) and Theta adds headroom.  A copy starts
// only while at least one display is actually waiting for the object
// and the replica count (including copies in flight) is below target.
// Bounding by a long-run target rather than the instantaneous queue
// is what keeps the baseline from replication storms: with zero think
// time the queue refills the moment a copy starts, and an unbounded
// trigger would convert the whole farm into copy traffic.
type Replication struct {
	Theta float64
}

// DefaultReplication provisions each object's replicas at three
// times its mean concurrent demand.  Demand peaks of a Poisson-like
// arrival stream routinely reach 2–3× the mean, so this is the
// smallest headroom at which waiting for a busy replica becomes rare
// — the operating point a minimum-response-time policy converges to
// when disk space is not the binding constraint.
func DefaultReplication() Replication { return Replication{Theta: 3} }

// Validate reports whether the policy is usable.
func (r Replication) Validate() error {
	if r.Theta <= 0 {
		return fmt.Errorf("policy: replication theta must be positive, got %v", r.Theta)
	}
	return nil
}

// Target returns the desired replica count for an object with the
// given reference share under the given sustainable concurrency.
// Resident objects always warrant one replica.
func (r Replication) Target(share float64, concurrency int) int {
	if share < 0 || share > 1 {
		panic(fmt.Sprintf("policy: share %v out of [0,1]", share))
	}
	// The small epsilon keeps exact products (e.g. 1.5×0.1×200 = 30)
	// from ceiling up on floating-point noise.
	t := int(math.Ceil(r.Theta*share*float64(concurrency) - 1e-9))
	if t < 1 {
		t = 1
	}
	return t
}

// ShouldReplicate reports whether object X should gain a replica now:
// it is resident, a display is waiting on it, and its replica count
// (including in-flight copies) is below target.
func (r Replication) ShouldReplicate(waiters, replicas, target int) bool {
	if replicas <= 0 {
		return false // not resident: materialization, not replication
	}
	return waiters >= 1 && replicas < target
}
