package policy

import (
	"testing"
	"testing/quick"
)

func TestLFUVictim(t *testing.T) {
	l := NewLFU()
	for i := 0; i < 5; i++ {
		l.Touch(1)
	}
	for i := 0; i < 3; i++ {
		l.Touch(2)
	}
	l.Touch(3)

	v, ok := l.Victim([]int{1, 2, 3})
	if !ok || v != 3 {
		t.Fatalf("victim = %d,%v, want 3 (least frequent)", v, ok)
	}
	// Never-touched object loses to touched ones.
	v, ok = l.Victim([]int{1, 99})
	if !ok || v != 99 {
		t.Fatalf("victim = %d,%v, want untouched 99", v, ok)
	}
	if _, ok := l.Victim(nil); ok {
		t.Fatal("victim of empty candidate set")
	}
}

func TestLFUVictimTieBreak(t *testing.T) {
	l := NewLFU()
	l.Touch(7)
	l.Touch(4)
	// Equal counts: the larger (younger) id goes first.
	v, ok := l.Victim([]int{7, 4})
	if !ok || v != 7 {
		t.Fatalf("tie broke to %d, want youngest id 7", v)
	}
}

func TestLFUCounts(t *testing.T) {
	l := NewLFU()
	if l.Count(9) != 0 {
		t.Fatal("fresh count not zero")
	}
	l.Touch(9)
	l.Touch(9)
	if l.Count(9) != 2 {
		t.Fatal("count wrong")
	}
	if !l.Colder(5, 9) || l.Colder(9, 5) {
		t.Fatal("Colder comparison wrong")
	}
}

// Property: the victim always has the minimum count among candidates.
func TestLFUVictimIsMinimum(t *testing.T) {
	err := quick.Check(func(touches []uint8, cands []uint8) bool {
		if len(cands) == 0 {
			return true
		}
		l := NewLFU()
		for _, id := range touches {
			l.Touch(int(id % 16))
		}
		candidates := make([]int, 0, len(cands))
		seen := map[int]bool{}
		for _, c := range cands {
			id := int(c % 16)
			if !seen[id] {
				seen[id] = true
				candidates = append(candidates, id)
			}
		}
		v, ok := l.Victim(candidates)
		if !ok {
			return false
		}
		for _, id := range candidates {
			if l.Count(id) < l.Count(v) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicationValidate(t *testing.T) {
	if err := DefaultReplication().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Replication{Theta: 0}).Validate(); err == nil {
		t.Fatal("zero theta accepted")
	}
}

func TestReplicationTarget(t *testing.T) {
	r := DefaultReplication() // theta = 3
	cases := []struct {
		share       float64
		concurrency int
		want        int
	}{
		{0.10, 16, 5}, // hot object, 16 stations
		{0.05, 16, 3},
		{0.001, 200, 1},
		{0, 200, 1}, // resident objects keep one replica
		{0.5, 2, 3}, // ceil(3*0.5*2)
		{1.0, 16, 48},
	}
	for _, c := range cases {
		if got := r.Target(c.share, c.concurrency); got != c.want {
			t.Errorf("Target(%v, %d) = %d, want %d", c.share, c.concurrency, got, c.want)
		}
	}
}

func TestReplicationTargetPanicsOnBadShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("share > 1 did not panic")
		}
	}()
	DefaultReplication().Target(1.5, 10)
}

func TestShouldReplicate(t *testing.T) {
	r := DefaultReplication()
	cases := []struct {
		waiters, replicas, target int
		want                      bool
	}{
		{0, 1, 5, false}, // nobody waiting
		{1, 1, 5, true},
		{1, 5, 5, false}, // at target
		{1, 6, 5, false}, // above target
		{3, 0, 5, false}, // not resident: materialization path instead
	}
	for _, c := range cases {
		if got := r.ShouldReplicate(c.waiters, c.replicas, c.target); got != c.want {
			t.Errorf("ShouldReplicate(%d,%d,%d) = %v, want %v",
				c.waiters, c.replicas, c.target, got, c.want)
		}
	}
}

func TestShouldReplicateBounded(t *testing.T) {
	// Replica counts can never be driven past the target: the
	// anti-storm property.
	r := DefaultReplication()
	err := quick.Check(func(w, rep, tgt uint8) bool {
		waiters, replicas, target := int(w%64), int(rep%16)+1, int(tgt%16)+1
		if replicas >= target && r.ShouldReplicate(waiters, replicas, target) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTargetMonotoneInShare(t *testing.T) {
	r := Replication{Theta: 1.5}
	err := quick.Check(func(a, b uint8) bool {
		s1, s2 := float64(a)/255, float64(b)/255
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return r.Target(s1, 100) <= r.Target(s2, 100)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
