package sched

import "fmt"

// Display names reported in Result.Technique.  These are the single
// source of technique naming: golden dumps, sweep output, and figure
// legends all trace back here.
const (
	// SimpleStripingName labels the striping technique at its k = M
	// special case (each subobject on M adjacent disks, no stagger).
	SimpleStripingName = "simple striping"
	// StaggeredStripingName labels the striping technique at any
	// other stride; the reported name carries the stride, see
	// StripingTechniqueName.
	StaggeredStripingName = "staggered striping"
	// VDRName labels the virtual-data-replication baseline of [GS93].
	VDRName = "virtual data replication"
)

// StripingTechniqueName returns the display name the striping family
// reports for a configuration: SimpleStripingName when the stride
// equals the declustering degree, the stride-qualified
// StaggeredStripingName otherwise.
func StripingTechniqueName(cfg Config) string {
	if cfg.K == cfg.M {
		return SimpleStripingName
	}
	return fmt.Sprintf("%s (k=%d)", StaggeredStripingName, cfg.K)
}

// TechniqueInfo describes one registered technique: its CLI key, its
// display name, and how to configure and build an engine for it.
type TechniqueInfo struct {
	// Key is the stable CLI identifier (-technique flag value).
	Key string
	// Display is the technique's display-name constant.  For the
	// staggered technique the reported Result.Technique additionally
	// carries the stride.
	Display string
	// Summary is a one-line description for -list-techniques.
	Summary string

	configure func(cfg Config, stride int) (Config, error)
	factory   func() Technique
}

// Configure normalizes cfg for this technique, applying the CLI-level
// stride argument (0 means "technique default").  It is what the
// command-line tools use; library callers that have already set
// Config.K can build with New directly.
func (ti TechniqueInfo) Configure(cfg Config, stride int) (Config, error) {
	return ti.configure(cfg, stride)
}

// New builds an engine running this technique on cfg, verbatim.
func (ti TechniqueInfo) New(cfg Config) (*Engine, error) {
	return NewEngine(cfg, ti.factory())
}

// techniques is the registry, in presentation order.
var techniques = []TechniqueInfo{
	{
		Key:     "striped",
		Display: SimpleStripingName,
		Summary: "simple striping: stride k = M, contiguous admission only",
		configure: func(cfg Config, stride int) (Config, error) {
			if stride != 0 && stride != cfg.M {
				return cfg, fmt.Errorf("sched: technique striped requires stride k = M (%d), got %d", cfg.M, stride)
			}
			cfg.K = cfg.M
			return cfg, nil
		},
		factory: func() Technique { return &stripedTech{} },
	},
	{
		Key:     "staggered",
		Display: StaggeredStripingName,
		Summary: "staggered striping: configurable stride k with Algorithms 1 and 2 (default k = 1)",
		configure: func(cfg Config, stride int) (Config, error) {
			if stride == 0 {
				stride = 1
			}
			if stride < 1 || stride > cfg.D {
				return cfg, fmt.Errorf("sched: staggered stride k must be in [1, D=%d], got %d", cfg.D, stride)
			}
			cfg.K = stride
			cfg.Fragmented = true
			cfg.Coalescing = true
			return cfg, nil
		},
		factory: func() Technique { return &stripedTech{} },
	},
	{
		Key:     "vdr",
		Display: VDRName,
		Summary: "virtual data replication baseline: cluster-resident objects, dynamic replication (k = D special case)",
		configure: func(cfg Config, stride int) (Config, error) {
			if stride != 0 {
				return cfg, fmt.Errorf("sched: technique vdr has no stride parameter, got k=%d", stride)
			}
			return cfg, nil
		},
		factory: func() Technique { return &vdrTech{} },
	},
}

// Techniques returns the registered techniques in presentation order.
// The returned slice is a copy; callers may not mutate the registry.
func Techniques() []TechniqueInfo {
	out := make([]TechniqueInfo, len(techniques))
	copy(out, techniques)
	return out
}

// TechniqueKeys returns the registered CLI keys in presentation
// order.
func TechniqueKeys() []string {
	keys := make([]string, len(techniques))
	for i, ti := range techniques {
		keys[i] = ti.Key
	}
	return keys
}

// TechniqueByKey looks a technique up by CLI key.
func TechniqueByKey(key string) (TechniqueInfo, bool) {
	for _, ti := range techniques {
		if ti.Key == key {
			return ti, true
		}
	}
	return TechniqueInfo{}, false
}

// NewEngineFor configures and builds an engine for the technique with
// the given CLI key, applying the stride argument (0 = technique
// default).  It returns the engine together with the normalized
// configuration it runs.
func NewEngineFor(key string, cfg Config, stride int) (*Engine, Config, error) {
	ti, ok := TechniqueByKey(key)
	if !ok {
		return nil, cfg, fmt.Errorf("sched: unknown technique %q (have %v)", key, TechniqueKeys())
	}
	normalized, err := ti.Configure(cfg, stride)
	if err != nil {
		return nil, cfg, err
	}
	e, err := ti.New(normalized)
	if err != nil {
		return nil, normalized, err
	}
	return e, normalized, nil
}
