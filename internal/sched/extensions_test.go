package sched

import "testing"

// TestThinkTimeReducesLoad: with a think time comparable to the
// display time, a closed system of N stations offers roughly half the
// load, so completed displays must drop accordingly.
func TestThinkTimeReducesLoad(t *testing.T) {
	// Six stations on a ten-cluster farm: load-limited, not
	// capacity-limited, so the think time shows up directly.
	base := smallConfig(6, 5)
	e0, err := NewStriped(base)
	if err != nil {
		t.Fatal(err)
	}
	r0 := e0.Run()

	withThink := base
	// Think mean = one display time.
	withThink.ThinkMeanSeconds = float64(base.Subobjects) * base.IntervalSeconds()
	e1, err := NewStriped(withThink)
	if err != nil {
		t.Fatal(err)
	}
	r1 := e1.Run()

	if r1.Hiccups != 0 {
		t.Fatalf("hiccups with think time: %d", r1.Hiccups)
	}
	ratio := float64(r1.Displays) / float64(r0.Displays)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("think-time throughput ratio = %v (displays %d vs %d), want ~0.5",
			ratio, r1.Displays, r0.Displays)
	}
}

func TestThinkTimeDeterministic(t *testing.T) {
	cfg := smallConfig(8, 10)
	cfg.ThinkMeanSeconds = 10
	run := func() Result {
		e, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	a, b := run(), run()
	if a.Displays != b.Displays {
		t.Fatal("think-time runs not reproducible")
	}
}

func TestNegativeThinkRejected(t *testing.T) {
	cfg := smallConfig(8, 10)
	cfg.ThinkMeanSeconds = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative think time accepted")
	}
}

// TestStrictFCFSCostsThroughput: head-of-line blocking can only lose
// throughput relative to the scan policy, and under a miss-heavy
// workload (cold object at the head stalls everything behind it) it
// must lose noticeably.
func TestStrictFCFSCostsThroughput(t *testing.T) {
	base := smallConfig(16, 40) // near-uniform: misses occur
	base.MeasureIntervals = 6000
	scan, err := NewStriped(base)
	if err != nil {
		t.Fatal(err)
	}
	rScan := scan.Run()

	strictCfg := base
	strictCfg.FCFSStrict = true
	strict, err := NewStriped(strictCfg)
	if err != nil {
		t.Fatal(err)
	}
	rStrict := strict.Run()

	if rStrict.Hiccups != 0 {
		t.Fatalf("hiccups under strict FCFS: %d", rStrict.Hiccups)
	}
	if rStrict.Displays > rScan.Displays {
		t.Fatalf("strict FCFS (%d) outperformed scanning (%d)", rStrict.Displays, rScan.Displays)
	}
	if float64(rStrict.Displays) > 0.9*float64(rScan.Displays) {
		t.Fatalf("strict FCFS (%d) lost under 10%% vs scanning (%d); head-of-line blocking should bite on misses",
			rStrict.Displays, rScan.Displays)
	}
}

// TestStrictFCFSNoStarvation: under strict FCFS the oldest request is
// always served first, so the maximum admission latency cannot exceed
// the scan policy's by orders of magnitude on a hit-only workload.
func TestStrictFCFSFairOnHits(t *testing.T) {
	base := smallConfig(16, 3) // extremely hot: everything resident
	strictCfg := base
	strictCfg.FCFSStrict = true
	strict, err := NewStriped(strictCfg)
	if err != nil {
		t.Fatal(err)
	}
	r := strict.Run()
	if r.Displays == 0 {
		t.Fatal("no displays under strict FCFS")
	}
	if r.Hiccups != 0 {
		t.Fatalf("hiccups: %d", r.Hiccups)
	}
}

// TestVDRDiskToDiskCopy exercises the charitable replication variant:
// replicas copied cluster-to-cluster at display bandwidth instead of
// staged through the tertiary device.
func TestVDRDiskToDiskCopy(t *testing.T) {
	cfg := smallConfig(32, 2.000001) // extreme skew forces replication
	cfg.DiskToDiskCopy = true
	e, err := NewVDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Hiccups != 0 {
		t.Fatalf("hiccups: %d", res.Hiccups)
	}
	if res.Replications == 0 {
		t.Fatal("no disk-to-disk replications under extreme skew")
	}
	// Copies must never exceed the farm's copy cap (clusters/16,
	// min 1) concurrently; with 10 clusters that is 1 at a time, so
	// the replication count is bounded by window/displaytime + 1.
	maxCopies := cfg.MeasureIntervals/cfg.Subobjects + 1
	if res.Replications > maxCopies {
		t.Fatalf("replications = %d exceed the single-copy bound %d", res.Replications, maxCopies)
	}
}

// TestVDRDiskToDiskVsTertiary: freeing replication from the tertiary
// queue must not hurt — the charitable variant's throughput is at
// least (approximately) the faithful variant's under hot contention.
func TestVDRDiskToDiskVsTertiary(t *testing.T) {
	base := smallConfig(32, 2.000001)
	tert, err := NewVDR(base)
	if err != nil {
		t.Fatal(err)
	}
	rTert := tert.Run()

	d2d := base
	d2d.DiskToDiskCopy = true
	eng, err := NewVDR(d2d)
	if err != nil {
		t.Fatal(err)
	}
	rD2D := eng.Run()

	if float64(rD2D.Displays) < 0.9*float64(rTert.Displays) {
		t.Fatalf("disk-to-disk copies (%d displays) markedly worse than tertiary staging (%d)",
			rD2D.Displays, rTert.Displays)
	}
}
