package sched

import (
	"reflect"
	"sort"
	"testing"

	"github.com/mmsim/staggered/internal/rng"
)

// TestSortReleases pins the bucket re-sort finishDue relies on:
// coalescing reschedules stream releases out of admission order, and
// hiccup accounting must match a full in-order scan, so a drained
// bucket is restored to (admission sequence, stream index) order
// before applying.  The reference is the definitionally-correct
// sort.SliceStable over the same key.
func TestSortReleases(t *testing.T) {
	s := rng.NewSource(99).Stream("sortReleases")
	for trial := 0; trial < 200; trial++ {
		// A handful of display slots with distinct admission sequences.
		// Slot indexes deliberately do NOT follow sequence order — slots
		// recycle in real runs, so the sort must key on dSeq, not slot.
		slots := 1 + s.Intn(8)
		dSeq := make([]int32, slots)
		perm := s.Perm(slots)
		for i, p := range perm {
			dSeq[i] = int32(p * 3)
		}
		n := s.Intn(20)
		refs := make([]streamRef, n)
		for i := range refs {
			refs[i] = streamRef{slot: int32(s.Intn(slots)), i: int32(s.Intn(5))}
		}
		want := make([]streamRef, n)
		copy(want, refs)
		sort.SliceStable(want, func(a, b int) bool {
			if dSeq[want[a].slot] != dSeq[want[b].slot] {
				return dSeq[want[a].slot] < dSeq[want[b].slot]
			}
			return want[a].i < want[b].i
		})
		sortReleases(refs, dSeq)
		if !reflect.DeepEqual(refs, want) {
			t.Fatalf("trial %d: sortReleases diverged from reference\n got: %v\nwant: %v\ndSeq: %v",
				trial, refs, want, dSeq)
		}
	}
}

// TestCoalescedRescheduleOrder forces the out-of-order case end to
// end: a staggered configuration with Algorithms 1+2 enabled admits
// fragmented displays and coalesces their early streams, appending
// rescheduled releases behind younger displays' entries in the same
// bucket.  The run must actually exercise that path (coalescings > 0)
// and the re-sorted drain must keep release accounting clean — a
// mis-ordered or double-applied release shows up as a phantom hiccup.
// The sharded drain merges per-shard buckets back into the same global
// order, so the sharded Result must match byte for byte.
func TestCoalescedRescheduleOrder(t *testing.T) {
	cfg := smallConfig(48, 20)
	cfg.Fragmented = true
	cfg.Coalescing = true
	cfg.Seed = 3
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if e.coalescings == 0 {
		t.Fatal("config never coalesced a stream; the out-of-order path was not exercised")
	}
	if res.Hiccups != 0 {
		t.Errorf("coalesced releases produced %d phantom hiccups", res.Hiccups)
	}
	sharded := cfg
	sharded.Shards = 4
	sharded.Workers = 2
	es, err := NewStriped(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got := es.Run(); !reflect.DeepEqual(res, got) {
		t.Errorf("sharded drain diverged over rescheduled releases:\n  sequential: %+v\n  sharded:    %+v", res, got)
	}
}
