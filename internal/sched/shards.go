package sched

import (
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
	"github.com/mmsim/staggered/internal/workload"
)

// shardSet partitions the stations into contiguous blocks, each with
// its own wake-up wheel, think-time stream, and per-interval issue
// buffer, so the station-side work of an interval (wheel drain +
// reference draws) can run on the worker pool with no shared writes.
// Everything a shard produces is merged into the engine sequentially
// in ascending shard order, which — together with shard-local RNG
// streams split off the run seed — makes results byte-identical at any
// worker count (DESIGN.md §11).
type shardSet struct {
	n      int
	bounds []int // shard s owns stations [bounds[s], bounds[s+1])

	wheels  []*sim.TickWheel[int] // per-shard wake-up wheels
	think   []rng.Stream          // per-shard think-time streams, NewStream(seed, shard)
	wakeBuf [][]int               // per-shard reused Due drain buffers
	pend    [][]workload.Request  // per-shard issued references, drained by the merge

	shardOf []int32 // station -> owning shard
}

// newShardSet splits stations into shards blocks as evenly as
// possible (the first stations%shards blocks get one extra station).
// shards is clamped to stations so every shard is non-empty.
func newShardSet(seed uint64, stations, shards int) *shardSet {
	if shards > stations {
		shards = stations
	}
	ss := &shardSet{
		n:       shards,
		bounds:  make([]int, shards+1),
		wheels:  make([]*sim.TickWheel[int], shards),
		think:   make([]rng.Stream, shards),
		wakeBuf: make([][]int, shards),
		pend:    make([][]workload.Request, shards),
		shardOf: make([]int32, stations),
	}
	q, r := stations/shards, stations%shards
	at := 0
	for s := 0; s < shards; s++ {
		ss.bounds[s] = at
		at += q
		if s < r {
			at++
		}
		ss.wheels[s] = sim.NewTickWheel[int]()
		ss.think[s] = *rng.NewStream(seed, uint64(s))
	}
	ss.bounds[shards] = at
	for s := 0; s < shards; s++ {
		for st := ss.bounds[s]; st < ss.bounds[s+1]; st++ {
			ss.shardOf[st] = int32(s)
		}
	}
	return ss
}

// drain advances shard s's wheel to tick and issues the next reference
// of every woken station into the shard's pend buffer.  It touches
// only shard-local state plus the woken stations' busy flags and
// generator streams — each owned by exactly this shard — so drains of
// distinct shards are race-free.
func (ss *shardSet) drain(s, tick int, stn *workload.Stations, t float64) {
	ss.wakeBuf[s] = ss.wheels[s].Due(tick, ss.wakeBuf[s][:0])
	ss.pend[s] = ss.pend[s][:0]
	for _, st := range ss.wakeBuf[s] {
		ss.pend[s] = append(ss.pend[s], stn.IssueSharded(st, t))
	}
}
