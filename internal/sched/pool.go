package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"github.com/mmsim/staggered/internal/profiling"
)

// workerPool is a bounded pool of persistent goroutines for the
// intra-interval parallel phases (shard drains, admission pre-pass
// chunks).  The engines call run millions of times per sweep, so the
// pool keeps its goroutines parked on a channel instead of spawning
// per interval, and run hands out work through a shared atomic cursor
// so uneven chunks self-balance.
//
// The pool carries no results: tasks write only shard- or chunk-local
// state, and the caller merges sequentially after run returns.  That
// is the determinism contract of DESIGN.md §11 — parallelism decides
// only *when* shard-local values are computed, never their content or
// merge order.
type workerPool struct {
	tasks chan poolTask
	wg    sync.WaitGroup // goroutine lifetime, for close
	// concurrent records whether the pool's goroutines can actually run
	// simultaneously (GOMAXPROCS > 1 at creation).  Optional pre-passes
	// that only trade sequential work for parallel work consult it: on
	// a single-proc run they cannot pay for themselves and skip — a
	// performance gate only, never a correctness one (results are
	// worker-count independent either way).
	concurrent bool
}

type poolTask struct {
	fn   func(i int)
	next *atomic.Int64
	n    int
	done *sync.WaitGroup
}

// newWorkerPool starts workers persistent goroutines.  workers must be
// at least 1; a 1-worker pool is legal but callers should prefer
// running inline.
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask), concurrent: runtime.GOMAXPROCS(0) > 1}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			if profiling.PhaseLabelsEnabled() {
				// Tag the worker so -cpuprofile samples taken inside a
				// parallel phase separate from the interval goroutine's;
				// the phase label itself is inherited per task via the
				// caller's labeled() wrapper when one is active.
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
					pprof.Labels("pool", "worker")))
			}
			for t := range p.tasks {
				for {
					i := int(t.next.Add(1)) - 1
					if i >= t.n {
						break
					}
					t.fn(i)
				}
				t.done.Done()
			}
		}()
	}
	return p
}

// run invokes fn(i) for every i in [0, n), distributing indices over
// the pool's workers, and returns when all calls have completed.  The
// calling goroutine also works, so a pool of W workers applies W+1
// goroutines and run never deadlocks on a saturated pool.
func (p *workerPool) run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var next atomic.Int64
	var done sync.WaitGroup
	t := poolTask{fn: fn, next: &next, n: n, done: &done}
	// Enlist at most n-1 pool workers; the caller claims indices too.
	// The Add must precede the send: a worker may finish and Done
	// before the send statement returns.
	enlisted := 0
	for enlisted < n-1 {
		done.Add(1)
		select {
		case p.tasks <- t:
			enlisted++
			continue
		default:
			done.Done()
		}
		break
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	done.Wait()
}

// close retires the pool's goroutines.  run must not be called after
// close.
func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
}
