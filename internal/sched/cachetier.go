package sched

import (
	"math"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
)

// This file is the engine half of the memory tier (DESIGN.md §12): the
// hooks that route requests through the prefix cache and the
// multicast/batching registries, follower display lifecycle, and the
// open Poisson arrival process that the cache experiments drive the
// engine with.  Every function here runs on the interval goroutine —
// requests only reach the cache through the sequential record/admit
// paths, so sharded execution stays worker-count invariant for free.

// followerRef identifies one scheduled follower completion on the
// follower wheel; gen stales entries whose follower was detached.
type followerRef struct {
	station int32
	gen     int32
}

// bindCache allocates the tier and the follower bookkeeping.
func (e *Engine) bindCache() {
	cfg := &e.cfg
	prefix := cfg.Cache.PrefixSubobjects
	if prefix == 0 {
		prefix = cache.DefaultPrefixSubobjects
	}
	if prefix > cfg.Subobjects {
		prefix = cfg.Subobjects
	}
	bytesOf := func(id int) int64 {
		return int64(float64(prefix) * float64(cfg.Degree(id)) * cfg.FragmentBytes)
	}
	e.cache = cache.NewTier(cfg.Cache, cfg.Objects, prefix, bytesOf, float64(cfg.Subobjects))
	e.followerWheel = sim.NewTickWheel[followerRef]()
	e.followerGen = make([]int32, cfg.Stations)
	e.followerActive = make([]bool, cfg.Stations)
	e.followerObj = make([]int32, cfg.Stations)
	e.batchAnchor = make([]int32, cfg.Objects)
}

// tryCacheServe intercepts a newly drawn reference before it joins the
// disk queue.  Every reference warms the cache (admission may pin the
// prefix); with batching on, the request then either attaches to the
// object's in-flight leader stream as a follower — the resident prefix
// covers the gap it trails by, so playback starts now and no disk
// bandwidth is consumed — or, if a request for the same object is
// still queued within the batch window, waits as pending and boards
// the leader's stream at admission.  Reports whether the request was
// absorbed by the tier.
func (e *Engine) tryCacheServe(req request) bool {
	e.cache.Reference(req.object, e.now)
	window := e.cfg.Cache.BatchWindow
	if window <= 0 {
		return false
	}
	if _, ok := e.cache.AttachGap(req.object, e.now, window); ok {
		e.servedCache++
		e.cacheHitBytes += e.cache.Bytes(req.object)
		e.startFollower(req.station, req.object, e.now+e.cfg.Subobjects, 0)
		return true
	}
	if e.pinned[req.object] > 0 && e.now-int(e.batchAnchor[req.object]) <= window {
		e.cache.AddPending(req.object, int32(req.station), int32(req.arrived))
		e.pendingFollowers++
		return true
	}
	return false
}

// startFollower begins a batched follower display on station st: it
// shares the leader's disk streams, so it only exists as a completion
// on the follower wheel and a share-list entry for detach-on-abort.
func (e *Engine) startFollower(st, obj, endAt, latIntervals int) {
	e.followerGen[st]++
	e.followerActive[st] = true
	e.followerObj[st] = int32(obj)
	e.activeFollowers++
	e.followerWheel.Add(endAt, followerRef{station: int32(st), gen: e.followerGen[st]})
	e.cache.AddFollower(obj, int32(st))
	e.batchedFollowers++
	e.admittedTotal++
	e.admitted = append(e.admitted, float64(latIntervals)*e.cfg.IntervalSeconds())
	e.emit(EvAdmit, obj, st, "follower")
}

// noteAdmit records one admission: latency, the cache-hit discount,
// the leader registration, and the boarding of pending batched
// followers.  The techniques call it where they used to append to the
// admitted tally; with the cache disabled it compiles down to exactly
// that.
func (e *Engine) noteAdmit(r request, tmax int) {
	e.admittedTotal++
	wait := e.now - r.arrived
	if e.cache == nil {
		e.admitted = append(e.admitted, float64(wait)*e.cfg.IntervalSeconds())
		return
	}
	res := e.cache.Resident(r.object)
	lat := wait
	if res {
		// The pinned prefix plays while the disk streams start: up to
		// PrefixLen intervals of queueing are invisible to the viewer.
		e.servedCache++
		e.cacheHitBytes += e.cache.Bytes(r.object)
		if lat -= e.cache.PrefixLen(); lat < 0 {
			lat = 0
		}
	}
	e.admitted = append(e.admitted, float64(lat)*e.cfg.IntervalSeconds())
	end := e.now + tmax + e.cfg.Subobjects
	e.cache.SetLeader(r.object, int32(r.station), e.now, end, tmax)
	if e.cfg.Cache.BatchWindow <= 0 {
		return
	}
	e.pendingBuf = e.cache.TakePending(r.object, e.pendingBuf[:0])
	for _, p := range e.pendingBuf {
		e.pendingFollowers--
		plat := e.now - int(p.Arrived)
		if res {
			e.servedCache++
			e.cacheHitBytes += e.cache.Bytes(r.object)
			if plat -= e.cache.PrefixLen(); plat < 0 {
				plat = 0
			}
		}
		e.startFollower(int(p.Station), r.object, end, plat)
	}
}

// finishFollowers completes follower displays due this interval.  The
// wheel advances exactly one tick per interval, so step drains it
// unconditionally whenever the tier is on; entries whose generation is
// stale (the follower was detached by a leader abort) are skipped.
func (e *Engine) finishFollowers() {
	e.followerBuf = e.followerWheel.Due(e.now, e.followerBuf[:0])
	for _, fr := range e.followerBuf {
		st := fr.station
		if !e.followerActive[st] || e.followerGen[st] != fr.gen {
			continue
		}
		e.followerActive[st] = false
		e.activeFollowers--
		obj := int(e.followerObj[st])
		e.cache.RemoveFollower(obj, st)
		e.completed++
		e.completedTotal++
		e.stn.Complete(int(st))
		e.emit(EvComplete, obj, int(st), "follower")
		e.reissue(int(st))
	}
}

// detachFollowers ends the followers sharing station s's stream when
// that leader display is aborted: without the leader's disk streams
// there is nothing multicasting the tail, so the followers abort too
// and their stations rejoin the loop.
func (e *Engine) detachFollowers(s, object int) {
	buf, ok := e.cache.DetachIfLeader(object, int32(s), e.now, e.detachBuf[:0])
	e.detachBuf = buf
	if !ok {
		return
	}
	for _, st := range buf {
		if !e.followerActive[st] {
			continue
		}
		e.followerGen[st]++ // stales the wheel entry
		e.followerActive[st] = false
		e.activeFollowers--
		e.aborted++
		e.abortedTotal++
		e.stn.Complete(int(st))
		e.emit(EvAbort, object, int(st), "follower")
		e.reissue(int(st))
	}
}

// rejectPending refuses the batched followers of an object whose last
// queued leader request was just rejected: nobody is left to board.
func (e *Engine) rejectPending(object int) {
	e.pendingBuf = e.cache.TakePending(object, e.pendingBuf[:0])
	for _, p := range e.pendingBuf {
		e.pendingFollowers--
		e.rejectedDeg++
		e.stn.Complete(int(p.Station))
		e.emit(EvReject, object, int(p.Station), "follower")
		e.reissue(int(p.Station))
	}
}

// cacheStagingAborted detaches the batched followers of an object
// whose tertiary staging was abandoned mid-flight (fault kill or Place
// starvation): the leader request they were waiting on may not admit
// for a long time, if ever, so they requeue as ordinary requests
// instead of sitting in the batch.  Safe at every abandonment site —
// they all precede the admission scan within the interval.  No-op when
// the tier is off.
func (e *Engine) cacheStagingAborted(object int) {
	if e.cache == nil || object < 0 {
		return
	}
	e.pendingBuf = e.cache.TakePending(object, e.pendingBuf[:0])
	for _, p := range e.pendingBuf {
		e.pendingFollowers--
		if e.pinned[object] == 0 {
			e.batchAnchor[object] = p.Arrived
		}
		req := request{station: int(p.Station), object: object, arrived: int(p.Arrived)}
		// Already counted in requests at original arrival — this is the
		// queueing tail of record, not a new reference.
		e.queue = append(e.queue, req)
		e.pinned[object]++
		e.lfu.Touch(object)
		e.emit(EvRequest, object, req.station, "follower detached")
		e.tech.onEnqueue(req)
	}
}

// openArrivals drives the engine as an open system: a Poisson stream
// of requests at ArrivalsPerHour, each occupying an idle station for
// its display.  Arrivals that find every station busy are rejected —
// the open-system analogue of queueing delay in the closed loop.
type openArrivals struct {
	stream  rng.Stream
	idle    []int   // LIFO pool of idle stations
	nextAt  float64 // seconds of the next arrival
	meanGap float64 // mean seconds between arrivals

	rejected      int // window counter
	rejectedTotal int
}

func newOpenArrivals(cfg Config) *openArrivals {
	o := &openArrivals{}
	// LIFO init in reverse so station 0 serves the first arrival.
	o.idle = make([]int, cfg.Stations)
	for i := range o.idle {
		o.idle[i] = cfg.Stations - 1 - i
	}
	if cfg.ExternalArrivals {
		// A cluster driver injects arrivals (Engine.InjectArrival);
		// the engine's own stream never fires.
		o.nextAt = math.Inf(1)
		return o
	}
	o.meanGap = 3600 / cfg.ArrivalsPerHour
	o.stream = *rng.NewSource(cfg.Seed).Stream("arrivals")
	o.nextAt = o.stream.Exp(o.meanGap)
	return o
}

// drawArrivals admits every arrival due within the current interval.
func (e *Engine) drawArrivals() {
	o := e.open
	limit := float64(e.now+1) * e.cfg.IntervalSeconds()
	for o.nextAt < limit {
		if n := len(o.idle); n > 0 {
			s := o.idle[n-1]
			o.idle = o.idle[:n-1]
			e.enqueue(s)
		} else {
			o.rejected++
			o.rejectedTotal++
		}
		o.nextAt += o.stream.Exp(o.meanGap)
	}
}
