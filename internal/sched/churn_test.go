package sched

import (
	"testing"

	"github.com/mmsim/staggered/internal/cache"
)

// churnConfig is a farm big enough to hold the whole catalog (no
// materialization noise) with the prefix cache sized for the Zipf hot
// head, so the cache hit rate isolates the tier's reaction to
// popularity churn.
func churnConfig(seed uint64) Config {
	cfg := smallConfig(32, 5)
	cfg.CapacityFragments = 120 // 40 slots: every object stays resident
	cfg.ZipfSkew = 1.1
	cfg.Seed = seed
	cfg.WarmupIntervals = 400
	cfg.MeasureIntervals = 3200
	cfg.PlaceRetryLimit = DefaultPlaceRetryLimit
	cfg.Cache = &cache.Spec{BudgetBytes: 256 << 20}
	return cfg
}

// TestZipfFlipReconverges drives the popularity-churn scenario
// through the steppable primitives: a mid-measurement FlipHalf moves
// the Zipf hot head onto previously cold objects, the pinned-prefix
// hit rate collapses in the window after the flip, and the
// popularity-decay cache re-converges — the hit rate recovers to near
// its pre-flip level within a bounded number of windows.
func TestZipfFlipReconverges(t *testing.T) {
	const window = 400
	cfg := churnConfig(3)
	cfg.ZipfFlipInterval = cfg.WarmupIntervals + 2*window // flip as window 2 opens

	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Prime()
	for e.Now() < cfg.WarmupIntervals {
		e.StepOne()
	}

	var rates []float64
	for e.HasPendingWork() {
		e.ResetWindow()
		for i := 0; i < window && e.HasPendingWork(); i++ {
			e.StepOne()
		}
		snap := e.Snapshot()
		if snap.Requests == 0 {
			t.Fatal("window saw no requests")
		}
		rates = append(rates, snap.CacheHitRate())
	}
	if len(rates) != 8 {
		t.Fatalf("got %d windows, want 8", len(rates))
	}

	preFlip := rates[1]
	postFlip := rates[2]
	if preFlip < 0.3 {
		t.Fatalf("pre-flip hit rate %.3f too low for the test to mean anything (windows %v)", preFlip, rates)
	}
	if postFlip > preFlip-0.05 {
		t.Errorf("flip did not bite: hit rate %.3f before, %.3f after (windows %v)", preFlip, postFlip, rates)
	}
	// Bounded re-convergence: within three windows of the flip the
	// decayed cache must be back to ≥90% of the pre-flip hit rate.
	recovered := false
	for _, r := range rates[3:6] {
		if r >= preFlip*0.9 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Errorf("hit rate did not re-converge within 3 windows of the flip: pre-flip %.3f, windows %v", preFlip, rates)
	}
}

// TestRunCheckedAlreadyRun pins the double-Run contract: RunChecked
// on an engine that has already run (or was primed and stepped)
// returns ErrAlreadyRun instead of panicking, and Prime is idempotent
// — priming twice must not double-seed the stations.
func TestRunCheckedAlreadyRun(t *testing.T) {
	cfg := smallConfig(4, 10)
	cfg.WarmupIntervals, cfg.MeasureIntervals = 10, 50

	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunChecked(); err != ErrAlreadyRun {
		t.Fatalf("second RunChecked returned %v, want ErrAlreadyRun", err)
	}

	// Prime idempotence: a double-primed engine steps identically to a
	// Run (seeding stations twice would panic the workload layer).
	a, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Prime()
	a.Prime()
	for a.Now() < cfg.WarmupIntervals {
		a.StepOne()
	}
	a.ResetWindow()
	for a.HasPendingWork() {
		a.StepOne()
	}
	got := a.Snapshot()
	a.Close()
	if _, err := a.RunChecked(); err != ErrAlreadyRun {
		t.Fatalf("RunChecked after stepping returned %v, want ErrAlreadyRun", err)
	}

	b, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := b.Run(); got != want {
		t.Fatalf("primitive-driven run diverged from Run():\n got %+v\nwant %+v", got, want)
	}
}

// TestZipfFlipOffIsByteIdentical pins that the churn option is inert
// when disabled: ZipfFlipInterval = 0 must not change a Result in any
// byte (the golden configurations all run with it off).
func TestZipfFlipOffIsByteIdentical(t *testing.T) {
	cfg := churnConfig(9)
	cfg.MeasureIntervals = 800

	run := func(cfg Config) Result {
		e, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	base := run(cfg)
	flipped := cfg
	flipped.ZipfFlipInterval = cfg.WarmupIntervals + 400
	if run(cfg) != base {
		t.Fatal("re-run with identical config diverged — determinism broke")
	}
	if run(flipped) == base {
		t.Fatal("mid-measurement flip had no effect at all — the hook is dead")
	}
}
