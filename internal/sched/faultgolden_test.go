package sched

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/mmsim/staggered/internal/fault"
)

// TestEmptyFaultPlanGolden proves the fault path costs nothing when
// disabled: with an EMPTY (but non-nil) fault plan attached to every
// configuration, both golden dumps must stay byte-identical to their
// pinned files, and every degraded-mode counter must be zero.  This
// is the contract that lets every pre-fault result in the repo stand.
func TestEmptyFaultPlanGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are not short")
	}
	withEmptyPlan := func(cfg *Config) { cfg.Faults = fault.NewPlan() }

	got := goldenDumpWith(t, withEmptyPlan)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_sweep.txt"))
	if err != nil {
		t.Fatalf("missing golden dump: %v", err)
	}
	if got != string(want) {
		t.Error("52-config dump with an empty fault plan differs from golden")
	}

	got = staggeredGoldenDump(t, withEmptyPlan)
	want, err = os.ReadFile(filepath.Join("testdata", "golden_staggered.txt"))
	if err != nil {
		t.Fatalf("missing staggered golden dump: %v", err)
	}
	if got != string(want) {
		t.Error("staggered dump with an empty fault plan differs from golden")
	}
}

// TestEmptyFaultPlanCountersZero asserts a fault-free run reports
// zeroed degraded-mode counters — the half of the no-cost contract the
// legacy golden projection cannot see.
func TestEmptyFaultPlanCountersZero(t *testing.T) {
	cfg := smallConfig(8, 20)
	cfg.Faults = fault.NewPlan()
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunChecked()
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedHiccups != 0 || res.AbortedDisplays != 0 ||
		res.RejectedDegraded != 0 || res.StarvedMaterializations != 0 {
		t.Errorf("fault-free run has nonzero degraded counters: %+v", res)
	}
	if res.Requests <= 0 {
		t.Errorf("Requests = %d, want positive workload traffic", res.Requests)
	}
}
