package sched

// This file is the engine's server-failover surface (DESIGN.md §14):
// Kill drains a whole member — in-flight displays become typed aborts,
// queued and batched requests are orphaned for the cluster to re-admit
// on survivors — and Revive rejoins it with cold RAM but warm disks,
// jumping the engine's clocks across the dead window.  Only the
// cluster driver calls these; a single-server run never does, and all
// failover state then stays zero (the pinned goldens cover that).

// KillReport summarizes what a Kill drained.
type KillReport struct {
	// Aborted counts the displays (leaders and batched followers) that
	// were killed mid-delivery.  Their viewers are lost — the cluster
	// counts them as orphaned aborts, not re-admissions.
	Aborted int
	// Orphans lists the object of every request that was admitted but
	// not yet in delivery — disk-queue entries and batched pending
	// followers — in drain order.  These viewers never started watching,
	// so the cluster re-dispatches each to a surviving member.
	Orphans []int
}

// Kill takes the member down at its current interval: every in-flight
// display aborts through the fault path, the request queue and the
// batch registries drain into the report's orphan list, the tertiary
// device drops its work, and the engine stops reporting pending work
// until Revive.  Requires an open-workload engine (ExternalArrivals or
// ArrivalsPerHour): in the closed loop an aborted station reissues
// immediately and the drain below could never terminate.
func (e *Engine) Kill() KillReport {
	if e.dead {
		panic("sched: Kill on a dead engine")
	}
	if e.open == nil {
		panic("sched: Kill on a closed-loop engine")
	}
	var rep KillReport
	before := e.abortedTotal
	// Displays first: the staging abort inside killActive re-queues its
	// batched followers, and the queue drain below must see them.
	e.tech.killActive()
	// Followers whose leader already completed (or was superseded) have
	// no leader abort to detach them — end them directly.
	for st := range e.followerActive {
		if !e.followerActive[st] {
			continue
		}
		e.followerGen[st]++ // stales the wheel entry
		e.followerActive[st] = false
		e.activeFollowers--
		e.aborted++
		e.abortedTotal++
		e.stn.Complete(st)
		e.emit(EvAbort, int(e.followerObj[st]), st, "follower")
		e.reissue(st)
	}
	rep.Aborted = e.abortedTotal - before
	e.orphaned += rep.Aborted
	// Queued requests never started: their stations free up here and
	// their objects go to the cluster for re-admission, FIFO.
	for _, r := range e.queue {
		e.pinned[r.object]--
		e.stn.Complete(r.station)
		e.emit(EvReject, r.object, r.station, "orphaned")
		e.reissue(r.station)
		rep.Orphans = append(rep.Orphans, r.object)
	}
	e.queue = e.queue[:0]
	// Batched pending requests waiting on a queued leader drain the
	// same way, ascending object order.
	if e.cache != nil {
		for _, obj := range e.cache.PendingObjects(nil) {
			e.pendingBuf = e.cache.TakePending(obj, e.pendingBuf[:0])
			for _, p := range e.pendingBuf {
				e.pendingFollowers--
				e.stn.Complete(int(p.Station))
				e.emit(EvReject, obj, int(p.Station), "orphaned")
				e.reissue(int(p.Station))
				rep.Orphans = append(rep.Orphans, obj)
			}
		}
	}
	e.tman.Reset()
	e.dead, e.diedAt = true, e.now
	return rep
}

// Revive restarts the member at interval `at` (the cluster's current
// interval, at or after the kill): the clock jumps across the dead
// window, every per-interval wheel resets so the next Due lands on
// `at`, the RAM tier flushes cold, and the technique reconciles its
// own clocks.  Disk contents survive — the transient-fault model disk
// repairs use — so the member serves its pre-kill catalog, just with
// a cold cache and empty queues.
func (e *Engine) Revive(at int) {
	if !e.dead {
		panic("sched: Revive on a live engine")
	}
	if at < e.now {
		panic("sched: Revive before the kill interval")
	}
	e.deadMeasured += e.deadSpan(e.diedAt, at)
	e.now = at
	if e.shards == nil {
		e.wakeups.Reset(at - 1)
	} else if e.cfg.ThinkMeanSeconds > 0 {
		for _, w := range e.shards.wheels {
			w.Reset(at - 1)
		}
	}
	if e.cache != nil {
		e.followerWheel.Reset(at - 1)
		e.cache.Flush()
	}
	e.tech.onRevive()
	e.dead = false
}

// deadSpan returns how many measured intervals the window [from, to)
// covers — the portion of a dead span that Snapshot's utilization
// normalization must not divide by.
func (e *Engine) deadSpan(from, to int) int {
	lo := e.cfg.WarmupIntervals
	hi := lo + e.cfg.MeasureIntervals
	if from < lo {
		from = lo
	}
	if to > hi {
		to = hi
	}
	if to <= from {
		return 0
	}
	return to - from
}

// Dead reports whether the member is currently killed.
func (e *Engine) Dead() bool { return e.dead }

// CompletedDisplays returns the lifetime completed-display count
// (warm-up included) — the cluster's recovery-curve sample.
func (e *Engine) CompletedDisplays() int { return e.completedTotal }

// AdoptObject places a full copy of the object on this member as part
// of the cluster's replica-healing pass (no tertiary time is consumed;
// the healing budget is the bandwidth model).  It reports whether a
// copy was actually placed.
func (e *Engine) AdoptObject(id int) bool {
	if e.dead || id < 0 || id >= e.cfg.Objects {
		return false
	}
	return e.tech.adoptObject(id)
}
