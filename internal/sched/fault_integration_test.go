package sched

import (
	"errors"
	"strings"
	"testing"

	"github.com/mmsim/staggered/internal/fault"
)

// TestDiskFailureDegradesStriped pins the striped degraded path: a
// mid-run disk failure must produce degraded hiccups, aborts, or
// degraded rejections — and with k = M = 5 on D = 50 the blast radius
// is a strict subset of the catalog, so some displays must still
// complete.
func TestDiskFailureDegradesStriped(t *testing.T) {
	cfg := smallConfig(16, 10)
	cfg.PlaceRetryLimit = DefaultPlaceRetryLimit
	cfg.Faults = fault.NewPlan().FailDisk(7, cfg.WarmupIntervals+100)
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.DegradedHiccups+res.AbortedDisplays+res.RejectedDegraded == 0 {
		t.Errorf("disk failure left no degraded trace: %+v", res)
	}
	if res.RejectedDegraded == 0 {
		t.Errorf("no admissions rejected while objects on disk 7 were unplayable: %+v", res)
	}
	if res.Displays == 0 {
		t.Errorf("single-disk failure killed all throughput: %+v", res)
	}
}

// TestDiskRepairRestoresService pins repair: failing a disk and
// repairing it shortly after must strictly outperform (in rejections)
// leaving it dead for the rest of the run.
func TestDiskRepairRestoresService(t *testing.T) {
	base := smallConfig(16, 10)
	base.PlaceRetryLimit = DefaultPlaceRetryLimit
	at := base.WarmupIntervals + 100

	dead := base
	dead.Faults = fault.NewPlan().FailDisk(7, at)
	repaired := base
	repaired.Faults = fault.NewPlan().FailDiskUntil(7, at, at+200)

	run := func(cfg Config) Result {
		e, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	rd, rr := run(dead), run(repaired)
	if rr.RejectedDegraded >= rd.RejectedDegraded && rd.RejectedDegraded > 0 {
		t.Errorf("repair did not reduce rejections: dead %d, repaired %d",
			rd.RejectedDegraded, rr.RejectedDegraded)
	}
	if rr.Displays < rd.Displays {
		t.Errorf("repaired run completed fewer displays (%d) than dead run (%d)", rr.Displays, rd.Displays)
	}
}

// TestSlowDiskInflatesHiccupsOnly pins the slow-disk semantics: a
// latency window produces degraded hiccups but neither aborts nor
// rejections (the data is still there).
func TestSlowDiskInflatesHiccupsOnly(t *testing.T) {
	cfg := smallConfig(16, 10)
	at := cfg.WarmupIntervals + 100
	cfg.Faults = fault.NewPlan().SlowDisk(3, at, at+500)
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.DegradedHiccups == 0 {
		t.Errorf("slow disk produced no degraded hiccups: %+v", res)
	}
	if res.AbortedDisplays != 0 || res.RejectedDegraded != 0 {
		t.Errorf("slow disk aborted or rejected displays: %+v", res)
	}
}

// TestVDRClusterFailure pins the VDR degraded path: failing one disk
// fails its whole cluster, so displays on it abort or degrade while
// other clusters keep serving.
func TestVDRClusterFailure(t *testing.T) {
	cfg := smallConfig(16, 10)
	cfg.Faults = fault.NewPlan().FailDisk(2, cfg.WarmupIntervals+50)
	e, err := NewVDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.DegradedHiccups+res.AbortedDisplays+res.RejectedDegraded == 0 {
		t.Errorf("cluster failure left no degraded trace: %+v", res)
	}
	if res.Displays == 0 {
		t.Errorf("one failed cluster of %d killed all throughput: %+v", cfg.D/cfg.M, res)
	}
}

// TestTertiaryOutageStallsStaging pins the tertiary outage: during
// the outage no materialization can run, so the tertiary-busy
// fraction drops versus the fault-free run.
func TestTertiaryOutageStallsStaging(t *testing.T) {
	base := smallConfig(32, 43.5) // near-uniform: heavy miss traffic
	out := base
	out.Faults = fault.NewPlan().TertiaryOutage(base.WarmupIntervals, base.WarmupIntervals+base.MeasureIntervals/2)

	run := func(cfg Config) Result {
		e, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	clean, outage := run(base), run(out)
	if clean.TertiaryBusy == 0 {
		t.Skip("workload produced no staging traffic; outage unobservable")
	}
	if outage.TertiaryBusy >= clean.TertiaryBusy {
		t.Errorf("half-run tertiary outage did not reduce device busy: clean %.4f, outage %.4f",
			clean.TertiaryBusy, outage.TertiaryBusy)
	}
}

// TestStarvationSurfacesTypedError pins the livelock fix: the k = 1
// exact-fit configuration that silently delivered zero displays for
// three PRs (DESIGN.md §9) must now fail loudly through RunChecked
// when a retry cap is set.
func TestStarvationSurfacesTypedError(t *testing.T) {
	cfg := smallConfig(8, 20)
	cfg.K = 1
	cfg.Fragmented = true
	cfg.Coalescing = true
	cfg.PlaceRetryLimit = DefaultPlaceRetryLimit
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := e.RunChecked()
	if runErr == nil {
		t.Fatalf("k=1 exact-fit run reported no starvation (res %+v)", res)
	}
	var sErr *StarvationError
	if !errors.As(runErr, &sErr) {
		t.Fatalf("RunChecked error is %T, want *StarvationError", runErr)
	}
	if sErr.Starved <= 0 || sErr.K != 1 {
		t.Errorf("starvation error fields off: %+v", sErr)
	}
	if !strings.Contains(sErr.Error(), "starved") {
		t.Errorf("error text %q does not mention starvation", sErr.Error())
	}
	if res.StarvedMaterializations == 0 && sErr.Starved > 0 && cfg.WarmupIntervals == 0 {
		t.Errorf("window counter missed the starvations: %+v", res)
	}
}

// TestLegacyRetryForeverPreserved pins backward compatibility: with
// the zero-value PlaceRetryLimit the same k = 1 run still livelocks
// silently (the golden files depend on it), and RunChecked reports no
// error.
func TestLegacyRetryForeverPreserved(t *testing.T) {
	cfg := smallConfig(8, 20)
	cfg.K = 1
	cfg.Fragmented = true
	cfg.Coalescing = true
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := e.RunChecked()
	if runErr != nil {
		t.Fatalf("legacy unlimited-retry run errored: %v", runErr)
	}
	if res.StarvedMaterializations != 0 {
		t.Errorf("legacy run counted starvations: %+v", res)
	}
}

// TestEvictionPressureRescuesExactFit pins the fallback: under
// eviction pressure the k = 1 exact-fit farm defragments instead of
// starving every staging, so strictly fewer stagings starve than with
// the bare retry cap.
func TestEvictionPressureRescuesExactFit(t *testing.T) {
	run := func(pressure bool) (Result, int) {
		cfg := smallConfig(8, 20)
		cfg.K = 1
		cfg.Fragmented = true
		cfg.Coalescing = true
		cfg.PlaceRetryLimit = DefaultPlaceRetryLimit
		cfg.EvictionPressure = pressure
		e, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := e.RunChecked()
		return res, e.starvedTotal
	}
	bare, bareStarved := run(false)
	pressured, pressuredStarved := run(true)
	if pressuredStarved >= bareStarved {
		t.Errorf("eviction pressure did not reduce starvation: bare %d, pressured %d",
			bareStarved, pressuredStarved)
	}
	if pressured.Displays+pressured.Materializa <= bare.Displays+bare.Materializa {
		t.Errorf("eviction pressure did not recover useful work: bare %+v, pressured %+v",
			bare, pressured)
	}
}

// TestFaultTraceEvents pins that the tracer sees fault transitions
// and the degraded-path events.
func TestFaultTraceEvents(t *testing.T) {
	cfg := smallConfig(16, 10)
	at := cfg.WarmupIntervals + 100
	cfg.Faults = fault.NewPlan().FailDiskUntil(7, at, at+300)
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	e.SetTracer(func(ev Event) { kinds[ev.Kind]++ })
	e.Run()
	if kinds[EvFault] != 2 {
		t.Errorf("saw %d fault events, want 2 (fail + repair)", kinds[EvFault])
	}
	if kinds[EvReject] == 0 && kinds[EvAbort] == 0 {
		t.Errorf("no degraded-path trace events fired: %v", kinds)
	}
}
