package sched

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Golden pin for the first-class staggered technique: strides the
// registry path (Configure + generic Engine) cannot reach through the
// kept NewStriped constructor.  Regenerate with:
//
//	go test ./internal/sched -run TestGoldenStaggered -update-golden-staggered

var updateGoldenStaggered = flag.Bool("update-golden-staggered", false,
	"rewrite testdata/golden_staggered.txt from the current engine")

// staggeredGoldenConfigs enumerates the pinned staggered runs: both
// small strides across a low- and a high-load point of two
// distributions on the quick geometry.
func staggeredGoldenConfigs() []struct {
	name   string
	cfg    Config
	stride int
} {
	var out []struct {
		name   string
		cfg    Config
		stride int
	}
	for _, k := range []int{1, 2} {
		for _, mean := range []float64{10, 20} {
			for _, st := range []int{8, 32} {
				cfg := smallConfig(st, mean)
				out = append(out, struct {
					name   string
					cfg    Config
					stride int
				}{fmt.Sprintf("staggered-k%d-mean%v-st%d", k, mean, st), cfg, k})
			}
		}
	}
	return out
}

// staggeredGoldenDump renders the staggered dump, optionally mutating
// each configuration first (see TestEmptyFaultPlanGolden).
func staggeredGoldenDump(t *testing.T, mutate func(*Config)) string {
	t.Helper()
	var b strings.Builder
	for _, gc := range staggeredGoldenConfigs() {
		if mutate != nil {
			mutate(&gc.cfg)
		}
		e, _, err := NewEngineFor("staggered", gc.cfg, gc.stride)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		fmt.Fprintf(&b, "%s: %+v\n", gc.name, legacyView(e.Run()))
	}
	return b.String()
}

func TestGoldenStaggered(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered golden sweep is not short")
	}
	got := staggeredGoldenDump(t, nil)
	path := filepath.Join("testdata", "golden_staggered.txt")
	if *updateGoldenStaggered {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden dump (run with -update-golden-staggered): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := range wantLines {
		if i >= len(gotLines) || gotLines[i] != wantLines[i] {
			t.Fatalf("result drift at line %d:\n  golden:  %s\n  current: %s", i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatal("result dump differs from golden (extra lines)")
}

// TestStaggeredDeterministic pins run-to-run reproducibility of the
// registry-built staggered engine at a stride the pre-registry tests
// never exercised.
func TestStaggeredDeterministic(t *testing.T) {
	cfg := smallConfig(32, 20)
	first, _, err := NewEngineFor("staggered", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := NewEngineFor("staggered", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := first.Run(), second.Run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n  first:  %+v\n  second: %+v", a, b)
	}
}

// readGoldenLines parses testdata/golden_sweep.txt into name -> line.
func readGoldenLines(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_sweep.txt"))
	if err != nil {
		t.Fatalf("missing golden dump: %v", err)
	}
	lines := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		name, _, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		lines[name] = line
	}
	return lines
}

// TestStaggeredKMMatchesSimpleGolden pins the k = M degeneration: the
// staggered technique built through the registry's generic path must
// reproduce the simple-striping golden output byte for byte when the
// stride equals the declustering degree.  (TechniqueInfo.New is used
// directly — Configure would turn Algorithms 1 and 2 on, which the
// golden configurations run without.)
func TestStaggeredKMMatchesSimpleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden crosscheck is not short")
	}
	golden := readGoldenLines(t)
	ti, ok := TechniqueByKey("staggered")
	if !ok {
		t.Fatal("staggered technique not registered")
	}
	for _, mean := range []float64{10, 20, 43.5} {
		for _, st := range []int{1, 32} {
			cfg := smallConfig(st, mean)
			cfg.K = cfg.M
			name := fmt.Sprintf("mean%v-st%d-seed1-striped", mean, st)
			want, found := golden[name]
			if !found {
				t.Fatalf("golden dump has no line %q", name)
			}
			e, err := ti.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%s: %+v", name, legacyView(e.Run()))
			if got != want {
				t.Errorf("k=M does not degenerate to simple striping:\n  golden:  %s\n  generic: %s", want, got)
			}
		}
	}
}

// TestRegistryNamesMatchGolden asserts the registry's display-name
// constants are the names the golden dumps record — technique naming
// has exactly one source of truth.
func TestRegistryNamesMatchGolden(t *testing.T) {
	seen := map[string]bool{}
	for name, line := range readGoldenLines(t) {
		_, rest, ok := strings.Cut(line, "{Technique:")
		if !ok {
			t.Fatalf("golden line %q has no Technique field", name)
		}
		tech, _, ok := strings.Cut(rest, " Stations:")
		if !ok {
			t.Fatalf("golden line %q has no Stations field", name)
		}
		seen[tech] = true
	}
	want := map[string]bool{
		SimpleStripingName: true,
		VDRName:            true,
		fmt.Sprintf("%s (k=1)", StaggeredStripingName): true,
	}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("golden technique names %v do not match registry constants %v", seen, want)
	}
	// The same names must come out of the registry's metadata.
	displays := map[string]bool{}
	for _, ti := range Techniques() {
		displays[ti.Display] = true
	}
	for _, d := range []string{SimpleStripingName, StaggeredStripingName, VDRName} {
		if !displays[d] {
			t.Errorf("registry is missing display name %q", d)
		}
	}
}

// TestTechniqueRegistry pins the registry's keys, lookup, and
// Configure normalization rules.
func TestTechniqueRegistry(t *testing.T) {
	if got, want := TechniqueKeys(), []string{"striped", "staggered", "vdr"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("technique keys = %v, want %v", got, want)
	}
	if _, ok := TechniqueByKey("nope"); ok {
		t.Error("unknown key resolved")
	}
	cfg := smallConfig(8, 20)

	st, _ := TechniqueByKey("striped")
	if _, err := st.Configure(cfg, 3); err == nil {
		t.Error("striped accepted a stride other than M")
	}
	norm, err := st.Configure(cfg, 0)
	if err != nil || norm.K != cfg.M {
		t.Errorf("striped Configure: K=%d err=%v, want K=M=%d", norm.K, err, cfg.M)
	}

	sg, _ := TechniqueByKey("staggered")
	norm, err = sg.Configure(cfg, 0)
	if err != nil || norm.K != 1 || !norm.Fragmented || !norm.Coalescing {
		t.Errorf("staggered Configure default: %+v err=%v, want K=1 with Algorithms 1+2", norm, err)
	}
	if _, err := sg.Configure(cfg, cfg.D+1); err == nil {
		t.Error("staggered accepted stride beyond D")
	}

	vd, _ := TechniqueByKey("vdr")
	if _, err := vd.Configure(cfg, 2); err == nil {
		t.Error("vdr accepted a stride")
	}
	if _, _, err := NewEngineFor("nope", cfg, 0); err == nil {
		t.Error("NewEngineFor accepted an unknown key")
	}
	e, norm, err := NewEngineFor("staggered", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if norm.K != 2 {
		t.Errorf("normalized K = %d, want 2", norm.K)
	}
	if got, want := e.TechniqueName(), fmt.Sprintf("%s (k=2)", StaggeredStripingName); got != want {
		t.Errorf("TechniqueName() = %q, want %q", got, want)
	}
}
