package sched

import (
	"errors"
	"fmt"
)

// ErrAlreadyRun is returned by RunChecked when the engine has already
// been run (or primed and stepped): an Engine is single-use, and a
// cluster driver retrying a member must build a fresh one instead.
var ErrAlreadyRun = errors.New("sched: engine already run")

// StarvationError reports that materializations were abandoned at the
// Place retry cap (Config.PlaceRetryLimit): the farm could not fit
// the objects the workload demanded, typically because a k < M stride
// fragments an exact-fit farm (DESIGN.md §9).  Returned by
// Engine.RunChecked so zero-display sweeps fail loudly; the run's
// Result remains valid.
type StarvationError struct {
	Technique string
	K, M      int
	Starved   int // materializations abandoned over the whole run
	Displays  int // displays completed in the measurement window
}

func (e *StarvationError) Error() string {
	return fmt.Sprintf("sched: %s (M=%d): %d materializations starved at the Place retry cap (%d displays completed); the farm cannot fit the working set — raise capacity, enable EvictionPressure, or use k >= M",
		e.Technique, e.M, e.Starved, e.Displays)
}
