package sched

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The calendar layer under the engines (event rings, tick wheels,
// wakeup buckets) must never change the simulated outcome.  This test
// pins the results of 52 configurations byte-for-byte: the dump was
// generated with the pre-wheel engines (map-keyed buckets over the
// binary-heap era kernel) and every later calendar swap has to
// reproduce it exactly.
//
// Regenerate with:  go test ./internal/sched -run TestGoldenSweep -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_sweep.txt from the current engines")

// goldenConfigs enumerates the 52 pinned configurations: both engines
// across the three paper distributions and a station sweep (48 runs),
// plus the variants with nontrivial calendar traffic — staggered
// striping with Algorithms 1+2, think time with strict FCFS, and VDR
// disk-to-disk copies.
func goldenConfigs() []struct {
	name    string
	cfg     Config
	striped bool
} {
	var out []struct {
		name    string
		cfg     Config
		striped bool
	}
	add := func(name string, cfg Config, striped bool) {
		out = append(out, struct {
			name    string
			cfg     Config
			striped bool
		}{name, cfg, striped})
	}
	for _, mean := range []float64{10, 20, 43.5} {
		for _, st := range []int{1, 8, 32, 64} {
			for _, seed := range []uint64{1, 2} {
				cfg := smallConfig(st, mean)
				cfg.Seed = seed
				name := fmt.Sprintf("mean%v-st%d-seed%d", mean, st, seed)
				add(name+"-striped", cfg, true)
				add(name+"-vdr", cfg, false)
			}
		}
	}
	staggered := smallConfig(48, 20)
	staggered.K = 1
	staggered.Fragmented = true
	staggered.Coalescing = true
	staggered.Seed = 3
	add("staggered-alg12", staggered, true)

	think := smallConfig(32, 10)
	think.ThinkMeanSeconds = 30
	think.FCFSStrict = true
	think.Seed = 4
	add("think-fcfs-striped", think, true)
	add("think-vdr", think, false)

	d2d := smallConfig(64, 10)
	d2d.DiskToDiskCopy = true
	d2d.Seed = 5
	add("d2d-vdr", d2d, false)
	return out
}

func goldenDump(t *testing.T) string {
	return goldenDumpWith(t, nil)
}

// goldenDumpWith renders the 52-config dump, optionally mutating each
// configuration first — the hook TestEmptyFaultPlanGolden uses to
// prove an empty fault plan changes nothing.
func goldenDumpWith(t *testing.T, mutate func(*Config)) string {
	t.Helper()
	var b strings.Builder
	for _, gc := range goldenConfigs() {
		if mutate != nil {
			mutate(&gc.cfg)
		}
		var (
			res Result
			err error
		)
		if gc.striped {
			var e *Striped
			if e, err = NewStriped(gc.cfg); err == nil {
				res = e.Run()
			}
		} else {
			var e *VDR
			if e, err = NewVDR(gc.cfg); err == nil {
				res = e.Run()
			}
		}
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		fmt.Fprintf(&b, "%s: %+v\n", gc.name, legacyView(res))
	}
	return b.String()
}

func TestGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("52-configuration sweep is not short")
	}
	cfgs := goldenConfigs()
	if len(cfgs) != 52 {
		t.Fatalf("golden sweep has %d configurations, want 52", len(cfgs))
	}
	path := filepath.Join("testdata", "golden_sweep.txt")
	got := goldenDump(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden dump (run with -update-golden): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := range wantLines {
		if i >= len(gotLines) || gotLines[i] != wantLines[i] {
			t.Fatalf("result drift at line %d:\n  golden:  %s\n  current: %s", i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatal("result dump differs from golden (extra lines)")
}
