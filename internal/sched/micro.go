package sched

import (
	"fmt"

	"github.com/mmsim/staggered/internal/diskmodel"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
)

// MicroConfig drives the event-level (CSIM-style) validation model:
// one display of N subobjects over M disks, with every seek,
// rotational latency, and media transfer simulated individually.  It
// exists to justify the interval quantization used by the throughput
// engines: the worst-case interval S(C_i) must cover every actual
// I/O, which the paper's §3.1 protocol assumes.
type MicroConfig struct {
	Disk          diskmodel.Spec
	FragmentBytes float64
	M             int // disks read in parallel
	N             int // subobjects (intervals)
	Seed          uint64

	// IntervalSeconds overrides the interval length; 0 uses the
	// worst-case service time S(C_i).  Setting it below the worst
	// case demonstrates hiccups.
	IntervalSeconds float64
}

// MicroResult reports the event-level run.
type MicroResult struct {
	IntervalSeconds float64
	Hiccups         int     // intervals whose I/O overran the interval
	MeanReadSeconds float64 // mean per-disk read time (reposition+transfer)
	MaxReadSeconds  float64
	DiskUtilization float64 // busy fraction of the M disks
}

// RunMicro executes the event-level model.
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	if err := cfg.Disk.Validate(); err != nil {
		return MicroResult{}, err
	}
	if cfg.M <= 0 || cfg.N <= 0 || cfg.FragmentBytes <= 0 {
		return MicroResult{}, fmt.Errorf("sched: micro model needs positive M, N, fragment")
	}
	interval := cfg.IntervalSeconds
	if interval == 0 {
		interval = cfg.Disk.ServiceTime(cfg.FragmentBytes)
	}

	k := sim.New()
	src := rng.NewSource(cfg.Seed)
	var (
		hiccups   int
		readSum   float64
		readMax   float64
		reads     int
		busy      float64
		fragCyls  = cfg.Disk.CylinderCrossings(cfg.FragmentBytes) + 1
		transfer  = cfg.Disk.TransferTime(cfg.FragmentBytes)
		crossSeek = float64(cfg.Disk.CylinderCrossings(cfg.FragmentBytes)) * cfg.Disk.SeekMin
	)
	for m := 0; m < cfg.M; m++ {
		stream := src.StreamN("disk", m)
		pos := stream.Intn(cfg.Disk.Cylinders)
		k.Spawn(fmt.Sprintf("disk-%d", m), func(p *sim.Process) {
			for s := 0; s < cfg.N; s++ {
				// The head repositions to the fragment's cylinder.  In
				// the macro model consecutive fragments of an object
				// sit on consecutive cylinders, but between displays
				// the disk serves other requests, so each interval
				// begins with a random-distance seek (the paper's
				// T_switch budget covers the worst case).
				target := stream.Intn(cfg.Disk.Cylinders - fragCyls)
				dist := target - pos
				if dist < 0 {
					dist = -dist
				}
				pos = target + fragCyls - 1
				seek := cfg.Disk.SeekTime(dist)
				latency := stream.Uniform(0, cfg.Disk.LatencyMax)
				io := seek + latency + crossSeek + transfer
				p.Hold(sim.Time(io))
				readSum += io
				reads++
				if io > readMax {
					readMax = io
				}
				busy += io
				if io > interval+1e-12 {
					hiccups++
				}
				// Wait out the rest of the interval (synchronized
				// activation at interval boundaries).
				next := sim.Time(float64(s+1) * interval)
				if next > p.Now() {
					p.Hold(next - p.Now())
				}
			}
		})
	}
	k.Run(sim.Infinity)
	total := float64(cfg.N) * interval * float64(cfg.M)
	res := MicroResult{
		IntervalSeconds: interval,
		Hiccups:         hiccups,
		MeanReadSeconds: readSum / float64(reads),
		MaxReadSeconds:  readMax,
		DiskUtilization: busy / total,
	}
	return res, nil
}
