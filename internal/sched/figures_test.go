package sched

import (
	"strconv"
	"strings"
	"testing"
)

// TestFigure3Schedule reproduces the exact cell pattern of Figure 3:
// three displays rotating over three clusters, with X finishing after
// two more subobjects and its slot becoming a rotating idle hole.
func TestFigure3Schedule(t *testing.T) {
	rows, err := ScheduleTable(3, 6, []ScheduledDisplay{
		{Name: "Z", IndexLabel: "k", StartCluster: 0},
		{Name: "X", IndexLabel: "i", StartCluster: 1, Remaining: 2},
		{Name: "Y", IndexLabel: "j", StartCluster: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"read Z(k+1)", "read X(i+1)", "read Y(j+1)"},
		{"read Y(j+2)", "read Z(k+2)", "read X(i+2)"},
		{"idle", "read Y(j+3)", "read Z(k+3)"},
		{"read Z(k+4)", "idle", "read Y(j+4)"},
		{"read Y(j+5)", "read Z(k+5)", "idle"},
		{"idle", "read Y(j+6)", "read Z(k+6)"},
	}
	for ti, row := range want {
		for c, cell := range row {
			if rows[ti][c] != cell {
				t.Errorf("interval %d cluster %d = %q, want %q", ti+1, c, rows[ti][c], cell)
			}
		}
	}
}

func TestScheduleTableValidation(t *testing.T) {
	if _, err := ScheduleTable(0, 5, nil); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := ScheduleTable(3, 0, nil); err == nil {
		t.Error("zero intervals accepted")
	}
	if _, err := ScheduleTable(3, 5, []ScheduledDisplay{{Name: "A", StartCluster: 3}}); err == nil {
		t.Error("out-of-range start cluster accepted")
	}
	// Two displays on the same phase collide.
	if _, err := ScheduleTable(3, 5, []ScheduledDisplay{
		{Name: "A", StartCluster: 1},
		{Name: "B", StartCluster: 1},
	}); err == nil {
		t.Error("double-booked cluster not detected")
	}
}

func TestFigure3Rendering(t *testing.T) {
	s, err := Figure3(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CLUSTER 0", "read Z(k+1)", "read X(i+2)", "idle"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 3 missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "read X(i+3)") {
		t.Error("X displayed past its final subobject")
	}
}

// TestFigure7Timeline reproduces the Figure 7 cell sequence: interval
// 1 on disk 0 reads X0 and Y0, transmitting X0a, then X0b and Y0a;
// interval 2 on disk 1 additionally transmits the buffered Y0b.
func TestFigure7Timeline(t *testing.T) {
	acts, pool, err := LowBandwidthPair(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Balanced() {
		t.Fatal("buffer accounting unbalanced")
	}
	// The scheme needs only one buffered half-subobject at a time.
	if pool.Peak() != 1 {
		t.Fatalf("peak buffers = %d, want 1 half-subobject", pool.Peak())
	}
	find := func(interval, half int) HalfAction {
		for _, a := range acts {
			if a.Interval == interval && a.Half == half {
				return a
			}
		}
		t.Fatalf("no action at interval %d half %d", interval, half)
		return HalfAction{}
	}
	a := find(0, 0)
	if a.Read != "X0" || a.Disk != 0 || len(a.Xmit) != 1 || a.Xmit[0] != "X0a" {
		t.Errorf("interval 1 first half = %+v", a)
	}
	b := find(0, 1)
	if b.Read != "Y0" || b.Xmit[0] != "X0b" || b.Xmit[1] != "Y0a" {
		t.Errorf("interval 1 second half = %+v", b)
	}
	c := find(1, 0)
	if c.Disk != 1 || c.Read != "X1" {
		t.Errorf("interval 2 must move to disk 1: %+v", c)
	}
	// Y0b is transmitted during interval 2's first half, from buffer.
	foundY0b := false
	for _, x := range c.Xmit {
		if x == "Y0b" {
			foundY0b = true
		}
	}
	if !foundY0b {
		t.Errorf("Y0b not drained in interval 2: %+v", c)
	}
}

// TestLowBandwidthContinuity checks that every half-subobject of both
// objects is transmitted exactly once, in order — hiccup-free delivery
// at half disk bandwidth.
func TestLowBandwidthContinuity(t *testing.T) {
	const n = 12
	acts, _, err := LowBandwidthPair(4, n)
	if err != nil {
		t.Fatal(err)
	}
	var xmits []string
	for _, a := range acts {
		xmits = append(xmits, a.Xmit...)
	}
	seen := map[string]int{}
	for _, x := range xmits {
		seen[x]++
	}
	for i := 0; i < n; i++ {
		for _, suffix := range []string{"a", "b"} {
			for _, obj := range []string{"X", "Y"} {
				key := obj + strconv.Itoa(i) + suffix
				if seen[key] != 1 {
					t.Errorf("half-subobject %s transmitted %d times", key, seen[key])
				}
			}
		}
	}
	// X halves must appear in order.
	last := -1
	for _, x := range xmits {
		if strings.HasPrefix(x, "X") && strings.HasSuffix(x, "a") {
			i, err := strconv.Atoi(x[1 : len(x)-1])
			if err != nil {
				t.Fatalf("bad xmit label %q", x)
			}
			if i <= last {
				t.Fatalf("X halves out of order: %v", xmits)
			}
			last = i
		}
	}
}

func TestLowBandwidthValidation(t *testing.T) {
	if _, _, err := LowBandwidthPair(0, 5); err == nil {
		t.Error("zero disks accepted")
	}
	if _, _, err := LowBandwidthPair(3, 0); err == nil {
		t.Error("zero subobjects accepted")
	}
}

func TestFigure7Rendering(t *testing.T) {
	s, err := Figure7(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Disk 0", "Read X0", "Xmit X0a", "Xmit X0b", "Xmit Y0a", "Xmit Y0b", "Read Y2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 7 missing %q:\n%s", want, s)
		}
	}
}

func BenchmarkLowBandwidthPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := LowBandwidthPair(8, 64); err != nil {
			b.Fatal(err)
		}
	}
}
