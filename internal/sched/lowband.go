package sched

import (
	"fmt"
	"strings"

	"github.com/mmsim/staggered/internal/buffer"
)

// HalfAction is one half-interval of activity on a disk in the
// low-bandwidth sharing scheme of §3.2.3 (Figure 7).
type HalfAction struct {
	Interval int
	Half     int // 0 = first half, 1 = second half
	Disk     int
	Read     string   // subobject read during this half ("" = none)
	Xmit     []string // half-subobjects transmitted, e.g. "X0a", "Y0b"
}

// LowBandwidthPair simulates the delivery of two objects X and Y,
// each with B_Display = ½·B_Disk, sharing single disks per interval
// with stride 1 on d disks for n subobjects (§3.2.3): during the
// first half of each interval the disk reads X_i while transmitting
// X_ia; during the second half it reads Y_i while transmitting X_ib
// (from buffer) and Y_ia; Y_ib is buffered into the next interval.
// The returned pool reports the extra buffering the scheme costs.
//
// Each disk is effectively split into two half-bandwidth logical
// disks; an object needing 3/2·B_Disk would occupy exactly three such
// logical disks with no rounding waste.
func LowBandwidthPair(d, n int) ([]HalfAction, *buffer.Pool, error) {
	if d <= 0 || n <= 0 {
		return nil, nil, fmt.Errorf("sched: low-bandwidth pair needs positive d and n")
	}
	pool, err := buffer.NewPool(0, 1)
	if err != nil {
		return nil, nil, err
	}
	var acts []HalfAction
	// pending names the half-subobject buffered across the interval
	// boundary (Y(i-1)b at the start of interval i).
	pending := ""
	for t := 0; t < n; t++ {
		disk := t % d
		first := HalfAction{Interval: t, Half: 0, Disk: disk,
			Read: fmt.Sprintf("X%d", t),
			Xmit: []string{fmt.Sprintf("X%da", t)}}
		if pending != "" {
			// Y(t-1)b from buffer, released mid-interval.
			first.Xmit = append(first.Xmit, pending)
			pool.Release(1)
			pending = ""
		}
		acts = append(acts, first)
		// X t b is buffered for the second half.
		if !pool.Acquire(1) {
			return nil, nil, fmt.Errorf("sched: buffer exhausted at interval %d", t)
		}
		second := HalfAction{Interval: t, Half: 1, Disk: disk,
			Read: fmt.Sprintf("Y%d", t),
			Xmit: []string{fmt.Sprintf("X%db", t), fmt.Sprintf("Y%da", t)}}
		pool.Release(1) // X t b leaves the buffer as it transmits
		acts = append(acts, second)
		// Y t b is buffered across to the next interval.
		if !pool.Acquire(1) {
			return nil, nil, fmt.Errorf("sched: buffer exhausted at interval %d", t)
		}
		pending = fmt.Sprintf("Y%db", t)
	}
	// Drain the final buffered half.
	if pending != "" {
		acts = append(acts, HalfAction{Interval: n, Half: 0, Disk: n % d,
			Xmit: []string{pending}})
		pool.Release(1)
	}
	return acts, pool, nil
}

// Figure7 renders the §3.2.3 table: one column per disk, one row per
// time interval, each cell listing the reads and transmissions of the
// two half-intervals, matching the paper's Figure 7.
func Figure7(d, intervals int) (string, error) {
	acts, pool, err := LowBandwidthPair(d, intervals)
	if err != nil {
		return "", err
	}
	if !pool.Balanced() {
		return "", fmt.Errorf("sched: figure 7 buffer accounting unbalanced")
	}
	// cell[t][disk] collects lines.
	cells := make([][][]string, intervals+1)
	for t := range cells {
		cells[t] = make([][]string, d)
	}
	for _, a := range acts {
		if a.Interval > intervals {
			continue
		}
		lines := cells[a.Interval][a.Disk]
		if a.Read != "" {
			lines = append(lines, "Read "+a.Read)
		}
		for _, x := range a.Xmit {
			lines = append(lines, "Xmit "+x)
		}
		cells[a.Interval][a.Disk] = lines
	}
	const width = 12
	var b strings.Builder
	b.WriteString("Time")
	for disk := 0; disk < d; disk++ {
		b.WriteString(fmt.Sprintf(" | %-*s", width, fmt.Sprintf("Disk %d", disk)))
	}
	b.WriteByte('\n')
	for t := 0; t < intervals; t++ {
		maxLines := 1
		for _, lines := range cells[t] {
			if len(lines) > maxLines {
				maxLines = len(lines)
			}
		}
		for l := 0; l < maxLines; l++ {
			if l == 0 {
				b.WriteString(fmt.Sprintf("%4d", t+1))
			} else {
				b.WriteString("    ")
			}
			for disk := 0; disk < d; disk++ {
				cell := ""
				if l < len(cells[t][disk]) {
					cell = cells[t][disk][l]
				}
				b.WriteString(fmt.Sprintf(" | %-*s", width, cell))
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
