package sched

import (
	"math"
	"testing"
)

// TestDESValidationAgreesWithIntervalEngine is the model cross-check:
// the process-oriented CSIM-style implementation and the interval-
// quantized engine must agree on throughput across loads and
// distributions.  Small differences are allowed (they may order
// same-interval events differently), large ones mean one of the two
// models is wrong.
func TestDESValidationAgreesWithIntervalEngine(t *testing.T) {
	for _, tc := range []struct {
		stations int
		mean     float64
	}{
		{1, 5},
		{8, 5},
		{16, 10},
		{32, 10},
	} {
		cfg := smallConfig(tc.stations, tc.mean)
		ie, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ri := ie.Run()
		des, err := RunDESValidation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Displays == 0 && des == 0 {
			continue
		}
		diff := math.Abs(float64(des-ri.Displays)) / float64(ri.Displays)
		if diff > 0.05 {
			t.Errorf("stations=%d mean=%v: interval engine %d displays, DES model %d (%.1f%% apart)",
				tc.stations, tc.mean, ri.Displays, des, diff*100)
		}
	}
}

// TestDESValidationAgreesWithGenericEngine repeats the model
// cross-check against the registry-built generic engine: the
// mechanism/policy split must not perturb the agreement with the
// process-oriented model.
func TestDESValidationAgreesWithGenericEngine(t *testing.T) {
	for _, tc := range []struct {
		stations int
		mean     float64
	}{
		{1, 5},
		{8, 5},
		{16, 10},
		{32, 10},
	} {
		cfg := smallConfig(tc.stations, tc.mean)
		ie, _, err := NewEngineFor("striped", cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		ri := ie.Run()
		des, err := RunDESValidation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Displays == 0 && des == 0 {
			continue
		}
		diff := math.Abs(float64(des-ri.Displays)) / float64(ri.Displays)
		if diff > 0.05 {
			t.Errorf("stations=%d mean=%v: generic engine %d displays, DES model %d (%.1f%% apart)",
				tc.stations, tc.mean, ri.Displays, des, diff*100)
		}
	}
}

func TestDESValidationRejectsUnsupported(t *testing.T) {
	cfg := smallConfig(4, 5)
	cfg.Fragmented = true
	if _, err := RunDESValidation(cfg); err == nil {
		t.Error("fragmented admission accepted")
	}
	cfg = smallConfig(4, 5)
	cfg.ThinkMeanSeconds = 1
	if _, err := RunDESValidation(cfg); err == nil {
		t.Error("think time accepted")
	}
	cfg = smallConfig(4, 5)
	cfg.Stations = 0
	if _, err := RunDESValidation(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDESValidationDeterministic(t *testing.T) {
	cfg := smallConfig(8, 10)
	a, err := RunDESValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDESValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("DES validation model not deterministic: %d vs %d", a, b)
	}
}
