package sched

import (
	"reflect"
	"testing"
)

// The engines' hot paths keep incremental state (busy counters, event
// buckets, scratch buffers, object pools) instead of rescanning the
// world each interval.  These tests pin the contract that none of
// that bookkeeping leaks across runs: the same seed must reproduce
// the exact same Result, field for field.

// determinismConfigs covers the code paths with nontrivial
// incremental state: plain striping, staggered striping with
// Algorithm 1+2 (release rescheduling on coalescing moves), closed
// loops with think time and strict FCFS (wakeup buckets), and the VDR
// baseline with and without disk-to-disk copies (cluster job
// buckets, copy counters).
func determinismConfigs() map[string]Config {
	staggered := smallConfig(48, 20)
	staggered.K = 1
	staggered.Fragmented = true
	staggered.Coalescing = true
	staggered.Seed = 3

	think := smallConfig(32, 10)
	think.ThinkMeanSeconds = 30
	think.FCFSStrict = true
	think.Seed = 4

	d2d := smallConfig(64, 10)
	d2d.DiskToDiskCopy = true
	d2d.Seed = 5

	return map[string]Config{
		"plain":     smallConfig(64, 43.5),
		"staggered": staggered,
		"think":     think,
		"d2d":       d2d,
	}
}

func TestStripedDeterministic(t *testing.T) {
	for name, cfg := range determinismConfigs() {
		t.Run(name, func(t *testing.T) {
			first, err := NewStriped(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := NewStriped(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a, b := first.Run(), second.Run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed, different results:\n  first:  %+v\n  second: %+v", a, b)
			}
		})
	}
}

func TestVDRDeterministic(t *testing.T) {
	for name, cfg := range determinismConfigs() {
		t.Run(name, func(t *testing.T) {
			first, err := NewVDR(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := NewVDR(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a, b := first.Run(), second.Run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed, different results:\n  first:  %+v\n  second: %+v", a, b)
			}
		})
	}
}
