package sched

import "fmt"

// EventKind classifies scheduler trace events.
type EventKind int

const (
	// EvRequest is a station issuing a reference.
	EvRequest EventKind = iota
	// EvAdmit is a display starting.
	EvAdmit
	// EvComplete is a display delivering its last subobject.
	EvComplete
	// EvEvict is an object leaving the disk farm.
	EvEvict
	// EvMatStart is a materialization beginning to write.
	EvMatStart
	// EvMatEnd is a materialization completing.
	EvMatEnd
	// EvCoalesce is an Algorithm-2 stream move.
	EvCoalesce
	// EvFault is an effective fault-plan transition (Object carries the
	// disk index, Station the fault.Kind, Detail its name).
	EvFault
	// EvAbort is a display killed mid-delivery by a fault.
	EvAbort
	// EvReject is an admission refused because the object's layout
	// touches a failed disk.
	EvReject
	// EvStarve is a materialization abandoned at the Place retry cap.
	EvStarve
)

func (k EventKind) String() string {
	switch k {
	case EvRequest:
		return "request"
	case EvAdmit:
		return "admit"
	case EvComplete:
		return "complete"
	case EvEvict:
		return "evict"
	case EvMatStart:
		return "mat-start"
	case EvMatEnd:
		return "mat-end"
	case EvCoalesce:
		return "coalesce"
	case EvFault:
		return "fault"
	case EvAbort:
		return "abort"
	case EvReject:
		return "reject"
	case EvStarve:
		return "starve"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduler occurrence, for debugging and for driving
// external visualizations.
type Event struct {
	Interval int
	Kind     EventKind
	Object   int
	Station  int // -1 when not applicable
	Detail   string
}

// String renders the event compactly.
func (e Event) String() string {
	if e.Station >= 0 {
		return fmt.Sprintf("[%6d] %-9s obj=%d station=%d %s", e.Interval, e.Kind, e.Object, e.Station, e.Detail)
	}
	return fmt.Sprintf("[%6d] %-9s obj=%d %s", e.Interval, e.Kind, e.Object, e.Detail)
}

// Tracer receives scheduler events as they happen.
type Tracer func(Event)

// SetTracer installs a tracer on the engine.  It must be called
// before Run; a nil tracer disables tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// emit sends an event to the tracer when one is installed.
func (e *Engine) emit(kind EventKind, object, station int, detail string) {
	if e.tracer == nil {
		return
	}
	e.tracer(Event{Interval: e.now, Kind: kind, Object: object, Station: station, Detail: detail})
}
