package sched

import (
	"fmt"
	"testing"

	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/tertiary"
)

// chaosScenarios is how many randomized fault scenarios the chaos
// harness runs.  The acceptance floor is 200; a few more cost little.
const chaosScenarios = 240

// chaosConfig is a tiny farm that still exercises every subsystem:
// materialization pressure (farm fits ~15 of 20 objects), mixed
// strides, and both engines.  Warm-up is zero so the window counters
// equal the lifetime counters the invariants reason about.
func chaosConfig(stations int, mean float64, seed uint64) Config {
	return Config{
		D:                 20,
		K:                 4,
		CapacityFragments: 30,
		Objects:           20,
		Subobjects:        10,
		M:                 4,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          mean,
		Seed:              seed,
		WarmupIntervals:   0,
		MeasureIntervals:  400,
		PlaceRetryLimit:   8,
	}
}

// chaosPlan draws a random but deterministic fault plan: a mix of
// one-shot and repaired disk failures, slow windows, tertiary
// outages, and occasionally a wear process, all inside the run.
func chaosPlan(s *rng.Stream, d, horizon int) *fault.Plan {
	p := fault.NewPlan()
	for i, n := 0, 1+s.Intn(4); i < n; i++ {
		at := s.Intn(horizon)
		switch s.Intn(5) {
		case 0:
			p.FailDisk(s.Intn(d), at)
		case 1:
			p.FailDiskUntil(s.Intn(d), at, at+1+s.Intn(horizon/2))
		case 2:
			p.SlowDisk(s.Intn(d), at, at+1+s.Intn(horizon/2))
		case 3:
			p.TertiaryOutage(at, at+1+s.Intn(horizon/2))
		case 4:
			lo := s.Intn(d)
			hi := lo + s.Intn(d-lo)
			disks := make([]int, 0, hi-lo+1)
			for f := lo; f <= hi; f++ {
				disks = append(disks, f)
			}
			p.WearProcess(disks, 20+s.Uniform(0, 60), 5+s.Uniform(0, 20), horizon, s.Uint64())
		}
	}
	return p
}

// TestChaos runs hundreds of seeded fault scenarios across all
// techniques and asserts the structural invariants a degraded run
// must keep: no negative counters, closed-loop station conservation
// (every station is queued or in delivery at quiescence), and display
// conservation (admitted = completed + aborted + active).  It runs in
// -short mode on purpose — scripts/ci.sh puts it under -race.
func TestChaos(t *testing.T) {
	techniques := []struct {
		key    string
		stride int
	}{
		{"striped", 0},
		{"staggered", 1},
		{"staggered", 2},
		{"staggered", 4},
		{"vdr", 0},
	}
	means := []float64{5, 10, 15}
	for i := 0; i < chaosScenarios; i++ {
		i := i
		tc := techniques[i%len(techniques)]
		name := fmt.Sprintf("%03d-%s-k%d", i, tc.key, tc.stride)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s := rng.NewSource(uint64(1000 + i)).Stream("chaos")
			cfg := chaosConfig(2+s.Intn(10), means[s.Intn(len(means))], uint64(1+i))
			cfg.EvictionPressure = s.Intn(2) == 1
			cfg.Faults = chaosPlan(s, cfg.D, cfg.MeasureIntervals)
			e, _, err := NewEngineFor(tc.key, cfg, tc.stride)
			if err != nil {
				t.Fatal(err)
			}
			res, runErr := e.RunChecked()
			if runErr != nil {
				// Starvation is a legitimate outcome on a tiny farm
				// under fire — the error just has to be the typed one.
				if _, ok := runErr.(*StarvationError); !ok {
					t.Fatalf("RunChecked: %v", runErr)
				}
			}

			for _, c := range []struct {
				name  string
				value int
			}{
				{"Displays", res.Displays},
				{"Materializa", res.Materializa},
				{"Replications", res.Replications},
				{"Hiccups", res.Hiccups},
				{"Coalescings", res.Coalescings},
				{"UniqueResidents", res.UniqueResidents},
				{"Requests", res.Requests},
				{"DegradedHiccups", res.DegradedHiccups},
				{"AbortedDisplays", res.AbortedDisplays},
				{"RejectedDegraded", res.RejectedDegraded},
				{"StarvedMaterializations", res.StarvedMaterializations},
				{"Latency.N", res.Latency.N()},
			} {
				if c.value < 0 {
					t.Errorf("negative counter %s = %d", c.name, c.value)
				}
			}

			// Display conservation over the whole run.
			active := e.tech.activeDisplays()
			if e.admittedTotal != e.completedTotal+e.abortedTotal+active {
				t.Errorf("display conservation violated: admitted %d != completed %d + aborted %d + active %d",
					e.admittedTotal, e.completedTotal, e.abortedTotal, active)
			}
			// Zero warm-up makes window counters lifetime counters.
			if res.Displays != e.completedTotal || res.AbortedDisplays != e.abortedTotal {
				t.Errorf("window/lifetime drift: Displays %d vs %d, Aborted %d vs %d",
					res.Displays, e.completedTotal, res.AbortedDisplays, e.abortedTotal)
			}

			// Closed-loop station conservation: with zero think time
			// every station is either queued or in delivery; none leak.
			if out := e.stn.Outstanding(); out != cfg.Stations {
				t.Errorf("stuck stations: %d outstanding of %d", out, cfg.Stations)
			}
			if got := len(e.queue) + active; got != cfg.Stations {
				t.Errorf("station accounting: queue %d + active %d != stations %d",
					len(e.queue), active, cfg.Stations)
			}

			// The fault masks must return to the plan's terminal state:
			// counts never drift negative.
			if e.downCount < 0 || e.slowCount < 0 {
				t.Errorf("mask drift: downCount %d, slowCount %d", e.downCount, e.slowCount)
			}
		})
	}
}

// TestChaosDeterministic pins that a faulted run is exactly as
// reproducible as a clean one.
func TestChaosDeterministic(t *testing.T) {
	build := func() Result {
		s := rng.NewSource(424242).Stream("chaos")
		cfg := chaosConfig(8, 10, 7)
		cfg.Faults = chaosPlan(s, cfg.D, cfg.MeasureIntervals)
		e, _, err := NewEngineFor("staggered", cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := e.RunChecked()
		return res
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("same seed, different faulted results:\n  first:  %+v\n  second: %+v", a, b)
	}
}
