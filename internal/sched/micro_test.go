package sched

import (
	"testing"

	"github.com/mmsim/staggered/internal/diskmodel"
)

// TestMicroHiccupFreeAtWorstCaseInterval validates the quantization
// the macro engines rely on: with the interval set to the worst-case
// service time S(C_i), every simulated I/O — random seeks, rotational
// latency, transfer — finishes inside its interval.
func TestMicroHiccupFreeAtWorstCaseInterval(t *testing.T) {
	for _, spec := range []diskmodel.Spec{diskmodel.Sabre, diskmodel.Simulation45GB} {
		res, err := RunMicro(MicroConfig{
			Disk:          spec,
			FragmentBytes: spec.CylinderBytes,
			M:             5,
			N:             2000,
			Seed:          7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Hiccups != 0 {
			t.Errorf("%s: %d hiccups at worst-case interval", spec.Name, res.Hiccups)
		}
		if res.MaxReadSeconds > res.IntervalSeconds {
			t.Errorf("%s: max read %v exceeded interval %v", spec.Name, res.MaxReadSeconds, res.IntervalSeconds)
		}
		// Average I/O is strictly less than the worst case (the slack
		// the paper's future work wants to reclaim with buffering).
		if res.MeanReadSeconds >= res.IntervalSeconds {
			t.Errorf("%s: mean read %v not below interval %v", spec.Name, res.MeanReadSeconds, res.IntervalSeconds)
		}
		if res.DiskUtilization <= 0 || res.DiskUtilization > 1 {
			t.Errorf("%s: utilization %v out of range", spec.Name, res.DiskUtilization)
		}
	}
}

// TestMicroHiccupsWithShortInterval shows the inverse: an interval
// sized for the mean rather than the worst case misses deadlines.
func TestMicroHiccupsWithShortInterval(t *testing.T) {
	spec := diskmodel.Sabre
	res, err := RunMicro(MicroConfig{
		Disk:          spec,
		FragmentBytes: spec.CylinderBytes,
		M:             3,
		N:             2000,
		Seed:          7,
		// Mean-case interval: average seek + average latency + transfer.
		IntervalSeconds: spec.SeekAvg + spec.LatencyAvg + spec.TransferTime(spec.CylinderBytes),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hiccups == 0 {
		t.Fatal("mean-case interval produced no hiccups; the worst-case budget would be pointless")
	}
	// But most intervals still make it: the distribution is right-tailed.
	if res.Hiccups > 2000*3/2 {
		t.Fatalf("too many hiccups (%d) — seek model suspect", res.Hiccups)
	}
}

func TestMicroDeterminism(t *testing.T) {
	run := func() MicroResult {
		res, err := RunMicro(MicroConfig{
			Disk: diskmodel.Sabre, FragmentBytes: diskmodel.Sabre.CylinderBytes,
			M: 4, N: 500, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("micro model not deterministic: %+v vs %+v", a, b)
	}
}

func TestMicroValidation(t *testing.T) {
	if _, err := RunMicro(MicroConfig{Disk: diskmodel.Sabre, FragmentBytes: 0, M: 1, N: 1}); err == nil {
		t.Error("zero fragment accepted")
	}
	if _, err := RunMicro(MicroConfig{Disk: diskmodel.Sabre, FragmentBytes: 1, M: 0, N: 1}); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := RunMicro(MicroConfig{Disk: diskmodel.Spec{}, FragmentBytes: 1, M: 1, N: 1}); err == nil {
		t.Error("invalid disk spec accepted")
	}
}

// TestMicroEffectiveBandwidth cross-checks the closed-form effective
// bandwidth of §3.1 against the event-level simulation: delivered
// bits over elapsed time must land between the worst-case formula and
// the peak rate.
func TestMicroEffectiveBandwidth(t *testing.T) {
	spec := diskmodel.Simulation45GB
	res, err := RunMicro(MicroConfig{
		Disk: spec, FragmentBytes: spec.CylinderBytes, M: 1, N: 5000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	measured := spec.CylinderBytes * 8 / res.IntervalSeconds
	worst := spec.EffectiveBandwidthExact(spec.CylinderBytes)
	if measured < worst*0.999 || measured > spec.TransferRate {
		t.Fatalf("per-interval bandwidth %v outside [%v, %v]", measured, worst, spec.TransferRate)
	}
}

func BenchmarkMicroInterval(b *testing.B) {
	spec := diskmodel.Sabre
	if _, err := RunMicro(MicroConfig{
		Disk: spec, FragmentBytes: spec.CylinderBytes, M: 5, N: b.N + 1, Seed: 1,
	}); err != nil {
		b.Fatal(err)
	}
}
