package sched

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"

	"github.com/mmsim/staggered/internal/rng"
)

// TestMain forces at least two procs: the admission pre-pass gates
// itself off on single-proc runs (it cannot pay for itself without
// real concurrency), and CI may run on a single-core box — without
// this the -race suites would never execute the annotated path.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	os.Exit(m.Run())
}

// These tests pin the DESIGN.md §11 determinism contract of sharded
// execution: (1) with zero think time a sharded run is
// decision-identical to the sequential path at any worker count, and
// (2) with think time (where shard-local streams replace the
// sequential per-station streams) the Result is byte-identical across
// worker counts — parallelism decides when shard-local values are
// computed, never what they are.  ci.sh runs the package under -race,
// which makes these tests also the no-data-races proof of the shard
// drains and the admission pre-pass.

// shardedConfigs are zero-think configurations spanning the three
// techniques' hot paths: plain striping, staggered striping with
// Algorithms 1+2, and the VDR baseline.
func shardedConfigs() map[string]struct {
	key    string
	stride int
	cfg    Config
} {
	staggered := smallConfig(48, 20)
	staggered.Fragmented = true
	staggered.Coalescing = true
	staggered.Seed = 3

	return map[string]struct {
		key    string
		stride int
		cfg    Config
	}{
		"striped":   {"striped", 0, smallConfig(64, 43.5)},
		"staggered": {"staggered", 1, staggered},
		"vdr":       {"vdr", 0, smallConfig(32, 10)},
	}
}

// TestShardedMatchesSequential asserts that with zero think time the
// sharded, multi-worker engine produces the exact Result of the
// default sequential path — the property that lets scale configs turn
// sharding on without forking the golden dumps.
func TestShardedMatchesSequential(t *testing.T) {
	for name, tc := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			seq, _, err := NewEngineFor(tc.key, tc.cfg, tc.stride)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.Shards = 4
			cfg.Workers = 2
			shd, _, err := NewEngineFor(tc.key, cfg, tc.stride)
			if err != nil {
				t.Fatal(err)
			}
			a, b := seq.Run(), shd.Run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("sharded result diverged from sequential:\n  sequential: %+v\n  sharded:    %+v", a, b)
			}
		})
	}
}

// TestWorkerInvariance asserts byte-identical Results for workers
// ∈ {1, 2, 8} at the same seed and shard count, across all three
// techniques, with think time engaged so the per-shard wheels and
// streams actually carry traffic.  Workers=1 runs everything inline
// (no pool, no admission pre-pass), so equality across the set also
// proves the annotated admission path decision-equivalent to the
// inline one.
func TestWorkerInvariance(t *testing.T) {
	for name, tc := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			var results []Result
			for _, workers := range []int{1, 2, 8} {
				cfg := tc.cfg
				cfg.ThinkMeanSeconds = 30
				cfg.Shards = 4
				cfg.Workers = workers
				e, _, err := NewEngineFor(tc.key, cfg, tc.stride)
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, e.Run())
			}
			for i := 1; i < len(results); i++ {
				if !reflect.DeepEqual(results[0], results[i]) {
					t.Errorf("worker count changed the result:\n  workers=1: %+v\n  workers=%d: %+v",
						results[0], []int{1, 2, 8}[i], results[i])
				}
			}
		})
	}
}

// TestWorkerInvarianceFaulted repeats the invariance check under an
// active fault plan: fault-active intervals bypass the admission
// pre-pass, and that bypass must itself be worker-count independent.
func TestWorkerInvarianceFaulted(t *testing.T) {
	var results []Result
	for _, workers := range []int{1, 2, 8} {
		cfg := chaosConfig(8, 10, 77)
		cfg.ThinkMeanSeconds = 10
		cfg.Shards = 3
		cfg.Workers = workers
		s := rng.NewSource(4242).Stream("chaos")
		cfg.Faults = chaosPlan(s, cfg.D, cfg.MeasureIntervals)
		e, _, err := NewEngineFor("staggered", cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, runErr := e.RunChecked()
		if runErr != nil {
			if _, ok := runErr.(*StarvationError); !ok {
				t.Fatalf("RunChecked: %v", runErr)
			}
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("worker count changed the faulted result:\n  workers=1: %+v\n  other:     %+v",
				results[0], results[i])
		}
	}
}

// TestShardedChaos reruns a slice of the chaos harness with sharding
// and workers enabled: the structural invariants of a degraded run
// (display and station conservation, no negative counters) must
// survive the parallel drain and merge.
func TestShardedChaos(t *testing.T) {
	techniques := []struct {
		key    string
		stride int
	}{
		{"striped", 0},
		{"staggered", 2},
		{"vdr", 0},
	}
	means := []float64{5, 10, 15}
	for i := 0; i < 81; i++ {
		i := i
		tc := techniques[i%len(techniques)]
		t.Run(fmt.Sprintf("%03d-%s-k%d", i, tc.key, tc.stride), func(t *testing.T) {
			t.Parallel()
			s := rng.NewSource(uint64(7000 + i)).Stream("chaos")
			cfg := chaosConfig(2+s.Intn(10), means[s.Intn(len(means))], uint64(1+i))
			cfg.EvictionPressure = s.Intn(2) == 1
			cfg.Faults = chaosPlan(s, cfg.D, cfg.MeasureIntervals)
			cfg.ThinkMeanSeconds = float64(s.Intn(2)) * 10 // half zero-think, half closed-loop
			cfg.Shards = 3
			cfg.Workers = 2
			e, _, err := NewEngineFor(tc.key, cfg, tc.stride)
			if err != nil {
				t.Fatal(err)
			}
			_, runErr := e.RunChecked()
			if runErr != nil {
				if _, ok := runErr.(*StarvationError); !ok {
					t.Fatalf("RunChecked: %v", runErr)
				}
			}
			active := e.tech.activeDisplays()
			if e.admittedTotal != e.completedTotal+e.abortedTotal+active {
				t.Errorf("display conservation violated: admitted %d != completed %d + aborted %d + active %d",
					e.admittedTotal, e.completedTotal, e.abortedTotal, active)
			}
			if e.downCount < 0 || e.slowCount < 0 {
				t.Errorf("mask drift: downCount %d, slowCount %d", e.downCount, e.slowCount)
			}
			if cfg.ThinkMeanSeconds == 0 {
				// Zero think: every station is queued or in delivery.
				if got := len(e.queue) + active; got != cfg.Stations {
					t.Errorf("station accounting: queue %d + active %d != stations %d",
						len(e.queue), active, cfg.Stations)
				}
			}
		})
	}
}
