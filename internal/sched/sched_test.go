package sched

import (
	"math"
	"testing"

	"github.com/mmsim/staggered/internal/tertiary"
)

// smallConfig is a scaled-down Table 3: 50 disks in 10 clusters of 5,
// 40 objects of 30 subobjects, 20 of which fit on disk.
func smallConfig(stations int, mean float64) Config {
	return Config{
		D:                 50,
		K:                 5,
		CapacityFragments: 60,
		Objects:           40,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          mean,
		Seed:              1,
		WarmupIntervals:   600,
		MeasureIntervals:  3000,
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig(4, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.D = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.K = c.D + 1 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.CapacityFragments = 0 },
		func(c *Config) { c.Objects = 0 },
		func(c *Config) { c.Subobjects = 0 },
		func(c *Config) { c.BDisk = 0 },
		func(c *Config) { c.FragmentBytes = 0 },
		func(c *Config) { c.Stations = 0 },
		func(c *Config) { c.DistMean = 1 },
		func(c *Config) { c.MeasureIntervals = 0 },
		func(c *Config) { c.WarmupIntervals = -1 },
		func(c *Config) { c.Tertiary.Bandwidth = 0 },
	}
	for i, mutate := range bad {
		c := smallConfig(4, 10)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestTable3ConfigNumbers checks the derived quantities of the paper
// configuration: 0.6048 s intervals, 1814 s displays, 4536 s
// materializations, and a 200-object farm.
func TestTable3ConfigNumbers(t *testing.T) {
	c := Table3Config(16, 20, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if iv := c.IntervalSeconds(); math.Abs(iv-0.6048) > 1e-9 {
		t.Errorf("interval = %v, want 0.6048", iv)
	}
	if c.DisplayIntervals() != 3000 {
		t.Errorf("display intervals = %d, want 3000", c.DisplayIntervals())
	}
	if got := float64(c.DisplayIntervals()) * c.IntervalSeconds(); math.Abs(got-1814.4) > 0.01 {
		t.Errorf("display time = %v s, want 1814.4", got)
	}
	if got := c.MaterializeIntervals(); math.Abs(float64(got)*c.IntervalSeconds()-4536) > 1 {
		t.Errorf("materialization = %v s, want ~4536", float64(got)*c.IntervalSeconds())
	}
	if got := c.DefaultPreload(); got != 200 {
		t.Errorf("farm capacity = %d objects, want 200", got)
	}
}

func TestStripedSingleStation(t *testing.T) {
	cfg := smallConfig(1, 5)
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Hiccups != 0 {
		t.Fatalf("hiccups = %d, want 0", res.Hiccups)
	}
	// One station cycling hot 30-interval displays with near-zero
	// admission latency completes ~MeasureIntervals/30 displays.
	want := float64(cfg.MeasureIntervals) / float64(cfg.Subobjects)
	if float64(res.Displays) < 0.7*want || float64(res.Displays) > 1.05*want {
		t.Fatalf("displays = %d, want ~%v", res.Displays, want)
	}
	if res.Latency.Mean() < 0 {
		t.Fatal("negative latency")
	}
	if res.Technique != "simple striping" {
		t.Fatalf("technique = %q", res.Technique)
	}
}

func TestStripedDeterminism(t *testing.T) {
	run := func() Result {
		e, err := NewStriped(smallConfig(8, 10))
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	a, b := run(), run()
	if a.Displays != b.Displays || a.Materializa != b.Materializa ||
		a.Latency.Mean() != b.Latency.Mean() || a.DiskBusy != b.DiskBusy {
		t.Fatalf("replays diverged: %+v vs %+v", a, b)
	}
}

func TestVDRDeterminism(t *testing.T) {
	run := func() Result {
		e, err := NewVDR(smallConfig(8, 10))
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	a, b := run(), run()
	if a.Displays != b.Displays || a.Replications != b.Replications ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("replays diverged: %+v vs %+v", a, b)
	}
}

func TestStripedCapacityBound(t *testing.T) {
	// Throughput can never exceed the farm's structural limit:
	// (D/M) concurrent displays of Subobjects intervals each.
	cfg := smallConfig(64, 10)
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Hiccups != 0 {
		t.Fatalf("hiccups = %d", res.Hiccups)
	}
	maxDisplays := float64(cfg.D/cfg.M) * float64(cfg.MeasureIntervals) / float64(cfg.Subobjects)
	if float64(res.Displays) > maxDisplays*1.01 {
		t.Fatalf("displays = %d exceeds structural bound %v", res.Displays, maxDisplays)
	}
	if res.DiskBusy < 0 || res.DiskBusy > 1 {
		t.Fatalf("disk busy fraction = %v", res.DiskBusy)
	}
}

func TestVDRCapacityBound(t *testing.T) {
	cfg := smallConfig(64, 10)
	e, err := NewVDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Hiccups != 0 {
		t.Fatalf("hiccups = %d", res.Hiccups)
	}
	maxDisplays := float64(cfg.D/cfg.M) * float64(cfg.MeasureIntervals) / float64(cfg.Subobjects)
	if float64(res.Displays) > maxDisplays*1.01 {
		t.Fatalf("displays = %d exceeds structural bound %v", res.Displays, maxDisplays)
	}
}

// TestStripedBeatsVDRUnderLoad is the paper's central claim (§4.2) at
// test scale: under high load with a skewed distribution, simple
// striping outperforms virtual data replication.
func TestStripedBeatsVDRUnderLoad(t *testing.T) {
	cfg := smallConfig(32, 5)
	st, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := NewVDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, rv := st.Run(), vd.Run()
	if rs.Hiccups != 0 || rv.Hiccups != 0 {
		t.Fatalf("hiccups: striped %d, vdr %d", rs.Hiccups, rv.Hiccups)
	}
	if rs.Displays <= rv.Displays {
		t.Fatalf("striping (%d displays) did not beat VDR (%d displays)", rs.Displays, rv.Displays)
	}
}

// TestLowLoadParity reproduces §4.2: "For a low number of display
// stations (one or two), both techniques provide approximately the
// same throughput."
func TestLowLoadParity(t *testing.T) {
	cfg := smallConfig(1, 5)
	st, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := NewVDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, rv := st.Run(), vd.Run()
	ratio := rs.Throughput() / rv.Throughput()
	if ratio < 0.85 || ratio > 1.2 {
		t.Fatalf("single-station throughput ratio = %v, want ~1 (striped %v, vdr %v)",
			ratio, rs.Throughput(), rv.Throughput())
	}
}

func TestStripedThroughputScalesWithLoad(t *testing.T) {
	prev := -1.0
	for _, n := range []int{1, 4, 8} {
		e, err := NewStriped(smallConfig(n, 5))
		if err != nil {
			t.Fatal(err)
		}
		res := e.Run()
		tp := res.Throughput()
		if tp < prev*0.95 {
			t.Fatalf("throughput fell from %v to %v when stations grew to %d", prev, tp, n)
		}
		prev = tp
	}
}

func TestVDRReplicatesHotObjects(t *testing.T) {
	// Extremely skewed load on many stations forces replication.
	cfg := smallConfig(32, 2.000001)
	e, err := NewVDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Replications == 0 {
		t.Fatal("no replications under extreme skew")
	}
	// Replication reduces the number of unique resident objects below
	// the farm's object capacity — the §4.2 observation.
	if res.UniqueResidents >= cfg.DefaultPreload() {
		t.Fatalf("unique residents = %d, want < %d after replication",
			res.UniqueResidents, cfg.DefaultPreload())
	}
}

func TestStripedMaterializesMisses(t *testing.T) {
	// A near-uniform distribution over 40 objects with only 20 disk
	// slots must trigger materializations.
	cfg := smallConfig(8, 40)
	cfg.MeasureIntervals = 6000
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Materializa == 0 {
		t.Fatal("no materializations despite cold objects")
	}
	if res.TertiaryBusy <= 0 || res.TertiaryBusy > 1 {
		t.Fatalf("tertiary busy = %v", res.TertiaryBusy)
	}
}

func TestStripedRunTwicePanics(t *testing.T) {
	e, err := NewStriped(smallConfig(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	e.Run()
}

func TestVDRRejectsBadGeometry(t *testing.T) {
	cfg := smallConfig(4, 10)
	cfg.D = 52 // not divisible by M=5
	if _, err := NewVDR(cfg); err == nil {
		t.Fatal("non-divisible geometry accepted")
	}
}

// TestStaggeredStride1 runs the engine with k=1 and fragmented
// admission — the general staggered configuration of §3.2.
func TestStaggeredStride1(t *testing.T) {
	cfg := smallConfig(16, 10)
	cfg.K = 1
	cfg.Fragmented = true
	cfg.Coalescing = true
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Hiccups != 0 {
		t.Fatalf("hiccups = %d, want 0", res.Hiccups)
	}
	if res.Displays == 0 {
		t.Fatal("no displays completed under staggered striping")
	}
	if res.Technique != "staggered striping (k=1)" {
		t.Fatalf("technique = %q", res.Technique)
	}
}

func BenchmarkStripedInterval(b *testing.B) {
	cfg := smallConfig(32, 10)
	cfg.WarmupIntervals = 0
	cfg.MeasureIntervals = 1
	e, err := NewStriped(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < cfg.Stations; s++ {
		e.enqueue(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

func BenchmarkVDRInterval(b *testing.B) {
	cfg := smallConfig(32, 10)
	e, err := NewVDR(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < cfg.Stations; s++ {
		e.enqueue(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}
