package sched

import (
	"fmt"
	"slices"
	"sort"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/sim"
)

// clusterJob describes what a busy cluster is doing.  One byte: the
// job table is walked by the degraded scan and activeDisplays, and at
// 10k clusters a dense byte array keeps it in a few cache lines.
type clusterJob int8

const (
	jobIdle clusterJob = iota
	jobDisplay
	jobCopySource
	jobCopyTarget
	jobMaterialize
)

// vdrTech is the virtual data replication baseline of [GS93] as a
// Technique: D/M physical clusters, each object declustered over the
// disks of a single cluster, dynamic replication of hot objects (the
// MRT substitute of package policy), and LFU replacement at cluster
// granularity.  A cluster serves one display at a time.
//
// Per-interval work is event-driven: job completions live in
// interval-keyed buckets, the busy-cluster count and per-object
// copies-in-flight are maintained incrementally, so an interval costs
// O(events that fire), not O(clusters + queue).
type vdrTech struct {
	eng   *Engine
	cfg   Config
	store *core.VDRStore
	repl  policy.Replication

	// Cluster state, struct-of-arrays with compact element types (the
	// interval and id spaces fit int32 by the Config validation
	// ranges), so the per-interval walks touch a quarter of the memory
	// the word-sized slices did.
	clusters  int
	job       []clusterJob
	busyUntil []int32 // interval at which the cluster frees (exclusive)
	jobObject []int32 // object the cluster is working on
	station   []int32 // station of a display job

	busyClusters int                 // clusters with a non-idle job
	displayJobs  int                 // clusters currently running a display
	endings      *sim.TickWheel[int] // interval -> clusters whose job ends
	endBuf       []int               // reused Due drain buffer

	// Sharded endings partitioning (DESIGN.md §11), nil when the engine
	// runs unsharded.  Cluster c's completions live on the wheel of
	// shard c·nshards/clusters — a contiguous, monotone mapping — so
	// the drain-and-sort half runs on the worker pool with no shared
	// writes, and applying shards in ascending order reproduces the
	// unsharded ascending-cluster order exactly.  All revalidation
	// (stale entries, duplicate same-interval entries) stays in the
	// sequential apply loop.
	endShards []*sim.TickWheel[int]
	endBufs   [][]int
	copyTargets  []int               // object -> in-flight disk-to-disk copies
	totalCopies  int                 // total in-flight disk-to-disk copies

	objScratch  []int // eviction-plan candidate scratch
	dropScratch []int // eviction-plan drop scratch
	dropBest    []int // best drop set found by victimCluster

	// Degraded-mode state, allocated only when a fault plan is set so
	// the fault-free hot path keeps its nil checks free.
	clusterBad  []int     // cluster -> down disks in it
	clusterSlow []int     // cluster -> slow disks in it
	jobDegraded []int     // cluster -> consecutive degraded display intervals
	rejectBuf   []request // unservable admissions, refused after the queue swap

	totalRefs int64 // references issued, for popularity shares

	// Replication stagings wait in their own low-priority queue:
	// misses (real users waiting for a cold object) always reach the
	// tertiary device first.
	replQueue  []int
	replQueued []bool

	// Tertiary state.
	matObject   int
	matStarted  bool
	matCluster  int
	matFromTman bool // current staging came from the miss queue
}

// VDR is the virtual-data-replication baseline engine, a thin wrapper
// over the generic Engine bound to the VDR technique, kept as a named
// type for compatibility.
type VDR struct{ *Engine }

// NewVDR builds the baseline engine from the configuration (the
// stride field is ignored; every object is pinned to one cluster,
// which is the k = D special case).
func NewVDR(cfg Config) (*VDR, error) {
	e, err := NewEngine(cfg, &vdrTech{})
	if err != nil {
		return nil, err
	}
	return &VDR{e}, nil
}

// bind allocates the VDR technique's state and warm-starts the farm.
func (t *vdrTech) bind(e *Engine) error {
	cfg := e.cfg
	if cfg.D%cfg.M != 0 {
		return fmt.Errorf("sched: VDR needs D (%d) divisible by M (%d)", cfg.D, cfg.M)
	}
	store, err := core.NewVDRStore(cfg.D, cfg.M, cfg.CapacityFragments)
	if err != nil {
		return err
	}
	repl := policy.Replication{Theta: cfg.ReplicationTheta}
	if cfg.ReplicationTheta == 0 {
		repl = policy.DefaultReplication()
	}
	if err := repl.Validate(); err != nil {
		return err
	}
	t.eng = e
	t.cfg = cfg
	t.store = store
	t.repl = repl
	t.clusters = cfg.D / cfg.M
	t.endings = sim.NewTickWheel[int]()
	if e.shards != nil {
		t.endShards = make([]*sim.TickWheel[int], e.shards.n)
		for s := range t.endShards {
			t.endShards[s] = sim.NewTickWheel[int]()
		}
		t.endBufs = make([][]int, e.shards.n)
	}
	t.copyTargets = make([]int, cfg.Objects)
	t.replQueued = make([]bool, cfg.Objects)
	t.matObject = -1
	t.job = make([]clusterJob, t.clusters)
	t.busyUntil = make([]int32, t.clusters)
	t.jobObject = make([]int32, t.clusters)
	t.station = make([]int32, t.clusters)
	if e.faultEvents != nil {
		t.clusterBad = make([]int, t.clusters)
		t.clusterSlow = make([]int, t.clusters)
		t.jobDegraded = make([]int, t.clusters)
	}
	for c := range t.jobObject {
		t.jobObject[c] = -1
	}
	// Warm-start the farm at the replication policy's steady state:
	// replicas proportional to popularity (building a replica set
	// through the 40 mbps tertiary takes days of simulated time, so
	// starting cold would measure the transient, not the policy).
	// Objects are loaded in popularity order, each up to its target
	// replica count, but always preferring a first copy of the next
	// object over a surplus copy of a hotter one once targets allow.
	concurrency := cfg.Stations
	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.Objects
	}
	// Candidate replicas in decreasing marginal value p(id)/copy#,
	// capped at each object's target; placing greedily by marginal
	// value yields the allocation a minimum-response-time policy
	// converges to.
	type cand struct {
		id    int
		copy  int
		value float64
	}
	var cands []cand
	addCand := func(id int) {
		p := e.gen.Popularity(id)
		want := repl.Target(p, concurrency)
		for j := 1; j <= want; j++ {
			cands = append(cands, cand{id: id, copy: j, value: p / float64(j)})
		}
	}
	if cfg.PreloadObjects != nil {
		// Cluster-assigned shard of the catalog: warm-start only the
		// objects this server replicates.
		for _, id := range cfg.PreloadObjects {
			addCand(id)
		}
	} else {
		for id := 0; id < preload && id < cfg.Objects; id++ {
			addCand(id)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value > cands[j].value
		}
		if cands[i].id != cands[j].id {
			return cands[i].id < cands[j].id
		}
		return cands[i].copy < cands[j].copy
	})
	for _, cd := range cands {
		c, ok := store.FindFreeCluster(cd.id, cfg.Subobjects)
		if !ok {
			continue
		}
		if err := store.PlaceReplica(cd.id, c, cfg.Subobjects); err != nil {
			return fmt.Errorf("sched: VDR preload failed: %w", err)
		}
	}
	return nil
}

func (t *vdrTech) name() string { return VDRName }

func (t *vdrTech) onEnqueue(request) { t.totalRefs++ }

// interval runs one interval of VDR policy: cluster job endings,
// tertiary progress, then the admission scan; it returns the busy
// disk count (busy clusters × M) for the utilization integral.
func (t *vdrTech) interval() int {
	if t.eng.phaseLabels {
		return t.intervalLabeled()
	}
	if t.eng.faultActive() {
		t.degradedScan()
	}
	t.finishDue()
	t.stepTertiary()
	t.admit()
	return t.busyClusters * t.cfg.M
}

// intervalLabeled is interval with each phase wrapped in a pprof
// label, taken only while a CPU profile is being collected.
func (t *vdrTech) intervalLabeled() int {
	if t.eng.faultActive() {
		t.degradedScan()
	}
	labeled("finishDue", t.finishDue)
	labeled("tertiary", t.stepTertiary)
	labeled("admit", t.admit)
	return t.busyClusters * t.cfg.M
}

// activeDisplays returns the display-job count, maintained
// incrementally by setJob/clearJob instead of walking all clusters.
func (t *vdrTech) activeDisplays() int { return t.displayJobs }

// onFault maintains the per-cluster fault tallies.  A repaired
// cluster's degraded streak resets; a tertiary outage abandons the
// staging in flight.
func (t *vdrTech) onFault(ev fault.Event) {
	switch ev.Kind {
	case fault.DiskFail:
		t.clusterBad[ev.Disk/t.cfg.M]++
	case fault.DiskRepair:
		c := ev.Disk / t.cfg.M
		t.clusterBad[c]--
		if t.clusterBad[c] == 0 {
			t.jobDegraded[c] = 0
		}
	case fault.SlowStart:
		t.clusterSlow[ev.Disk/t.cfg.M]++
	case fault.SlowEnd:
		t.clusterSlow[ev.Disk/t.cfg.M]--
	case fault.TertiaryFail:
		if t.matObject >= 0 {
			t.abortStaging()
		}
	}
}

// degradedScan visits each faulted cluster once per interval while any
// fault is active: a display on a cluster with a down disk rides out
// up to the hiccup limit of consecutive degraded intervals before
// aborting (a slow disk only inflates the degraded-hiccup count);
// copies and materializations touching a down disk are abandoned
// immediately — their product would be unreadable anyway.  The scan
// maps the engine's sorted faulted-disk active set to clusters: a
// cluster's disks [c·M, (c+1)·M) are contiguous, so duplicates are
// consecutive and the visit order is ascending cluster — the same
// order the old all-clusters walk used — at O(faulted disks), not
// O(clusters).
func (t *vdrTech) degradedScan() {
	e := t.eng
	lastC := -1
	for _, f := range e.faultedDisks {
		c := int(f) / t.cfg.M
		if c == lastC {
			continue
		}
		lastC = c
		bad, slow := t.clusterBad[c] > 0, t.clusterSlow[c] > 0
		if !bad && !slow || t.job[c] == jobIdle {
			continue
		}
		switch t.job[c] {
		case jobDisplay:
			e.degHiccups++
			if bad {
				t.jobDegraded[c]++
				if t.jobDegraded[c] > e.hiccupLimit {
					t.abortDisplay(c)
				}
			}
		case jobCopySource, jobCopyTarget:
			if bad {
				t.abortCopy(c)
			}
		case jobMaterialize:
			if bad {
				t.abortStaging()
			}
		}
	}
}

// abortDisplay kills the display on cluster c; its ending-wheel entry
// goes stale (finishDue revalidates against jobIdle).
func (t *vdrTech) abortDisplay(c int) {
	station, object := int(t.station[c]), int(t.jobObject[c])
	t.clearJob(c)
	t.eng.countAbort(station, object)
}

// abortCopy abandons a disk-to-disk copy from either end, releasing
// the partner cluster too (copy pairs share object and end interval).
func (t *vdrTech) abortCopy(c int) {
	obj, until := t.jobObject[c], t.busyUntil[c]
	other := jobCopySource
	if t.job[c] == jobCopySource {
		other = jobCopyTarget
	}
	t.clearJob(c)
	for p := 0; p < t.clusters; p++ {
		if t.job[p] == other && t.jobObject[p] == obj && t.busyUntil[p] == until {
			t.clearJob(p)
			return
		}
	}
}

// abortStaging abandons the pending or in-flight materialization; a
// miss staging returns its device slot so stations re-request the
// object, a replication staging is simply dropped (the replication
// trigger re-fires if still warranted).
func (t *vdrTech) abortStaging() {
	if t.matFromTman {
		// A miss staging has batched followers waiting on the queued
		// leader request; detach them before the object is dropped.
		t.eng.cacheStagingAborted(t.matObject)
	}
	if t.matStarted {
		t.clearJob(t.matCluster)
	}
	if t.matFromTman {
		t.eng.tman.Abort()
	}
	t.matObject = -1
	t.matStarted = false
}

// killActive implements the whole-server kill (DESIGN.md §14): the
// staging aborts first (a miss staging re-queues its batched
// followers, and the engine drains the queue right after), then every
// busy cluster's job aborts through the same typed paths the disk
// faults use.  abortCopy clears both ends of a pair, so the second end
// is seen idle when the walk reaches it.  The replication queue is
// dropped outright — the trigger re-fires after restart if still
// warranted.
func (t *vdrTech) killActive() {
	if t.matObject >= 0 {
		t.abortStaging()
	}
	for c := 0; c < t.clusters; c++ {
		switch t.job[c] {
		case jobDisplay:
			t.abortDisplay(c)
		case jobCopySource, jobCopyTarget:
			t.abortCopy(c)
		case jobMaterialize:
			t.clearJob(c) // defensive: abortStaging above cleared it
		}
	}
	t.replQueue = t.replQueue[:0]
	clear(t.replQueued)
}

// onRevive jumps the ending wheels across the dead window: every
// cluster is idle after killActive, so no scheduled ending survives,
// and the wheels just need their cursors moved so the next Due call —
// which asserts single-interval advancement — lands on now.
func (t *vdrTech) onRevive() {
	at := t.eng.now
	t.endings.Reset(at - 1)
	for _, w := range t.endShards {
		w.Reset(at - 1)
	}
}

// adoptObject places one replica of id for the replica-healing pass
// without consuming tertiary time — the cluster layer's per-window
// budget is the bandwidth model.  victimCluster already refuses
// clusters holding id, so healing an object this server still has a
// copy of grows its replica set, which is the point.
func (t *vdrTech) adoptObject(id int) bool {
	if id == t.matObject || t.eng.tman.Pending(id) || t.replQueued[id] {
		return false
	}
	c, drop, _, ok := t.victimCluster(id)
	if !ok {
		return false
	}
	if !t.executePlan(c, drop) {
		return false
	}
	if err := t.store.PlaceReplica(id, c, t.cfg.Subobjects); err != nil {
		t.eng.hiccups++
		return false
	}
	t.eng.replications++
	return true
}

// anyLiveReplica reports whether some replica of id sits on a cluster
// with no down disk.
func (t *vdrTech) anyLiveReplica(id int) bool {
	for _, c := range t.store.Replicas(id) {
		if t.clusterBad[c] == 0 {
			return true
		}
	}
	return false
}

func (t *vdrTech) uniqueResidents() int { return t.store.UniqueResident() }

func (t *vdrTech) holdsObject(id int) bool { return len(t.store.Replicas(id)) > 0 }

// setJob starts a job on cluster c until the given interval,
// maintaining the busy count, the copy-in-flight counters, and the
// completion bucket.
func (t *vdrTech) setJob(c int, job clusterJob, object, until int) {
	t.job[c] = job
	t.jobObject[c] = int32(object)
	t.busyUntil[c] = int32(until)
	t.busyClusters++
	if t.jobDegraded != nil {
		t.jobDegraded[c] = 0
	}
	if t.endShards != nil {
		t.endShards[t.clusterShard(c)].Add(until, c)
	} else {
		t.endings.Add(until, c)
	}
	switch job {
	case jobDisplay:
		t.displayJobs++
	case jobCopyTarget:
		t.copyTargets[object]++
		t.totalCopies++
	}
}

// clusterShard maps cluster c to its owning shard: a contiguous,
// monotone partition, so concatenating per-shard ascending cluster
// lists in shard order yields a globally ascending cluster list.
func (t *vdrTech) clusterShard(c int) int {
	return c * t.eng.shards.n / t.clusters
}

// clearJob returns cluster c to idle.
func (t *vdrTech) clearJob(c int) {
	switch t.job[c] {
	case jobDisplay:
		t.displayJobs--
	case jobCopyTarget:
		t.copyTargets[t.jobObject[c]]--
		t.totalCopies--
	}
	t.job[c] = jobIdle
	t.jobObject[c] = -1
	t.busyClusters--
}

// applyEnding settles one due cluster ending, revalidating against the
// cluster's live state first: an entry is stale when a fault aborted
// the job or a new job was set with a later deadline, and a cluster
// aborted and re-occupied within one interval can appear twice in one
// bucket (the first visit clears the job, the second skips on idle).
func (t *vdrTech) applyEnding(c int, reissue []int) []int {
	e := t.eng
	if t.job[c] == jobIdle || e.now < int(t.busyUntil[c]) {
		return reissue
	}
	switch t.job[c] {
	case jobDisplay:
		e.completed++
		e.completedTotal++
		e.stn.Complete(int(t.station[c]))
		reissue = append(reissue, int(t.station[c]))
	case jobCopyTarget:
		if err := t.store.PlaceReplica(int(t.jobObject[c]), c, t.cfg.Subobjects); err != nil {
			e.hiccups++
		} else {
			e.replications++
		}
	case jobCopySource:
		// Released together with the target; nothing to record.
	case jobMaterialize:
		wasResident := t.store.Resident(t.matObject)
		if err := t.store.PlaceReplica(t.matObject, c, t.cfg.Subobjects); err != nil {
			e.hiccups++
		} else if wasResident {
			e.replications++
		}
		if t.matFromTman {
			if _, err := e.tman.Finish(); err != nil {
				e.hiccups++
			}
		}
		e.materialized++
		t.matObject = -1
		t.matStarted = false
	}
	t.clearJob(c)
	return reissue
}

// finishDue completes the cluster jobs ending now — a bucket lookup,
// not a scan of all clusters.  Clusters are processed in ascending
// index order, matching a full scan.  Sharded engines keep the wheel
// partitioned by owning shard and take the parallel drain below.
func (t *vdrTech) finishDue() {
	if t.endShards != nil {
		t.finishDueSharded()
		return
	}
	e := t.eng
	t.endBuf = t.endings.Due(e.now, t.endBuf[:0])
	ending := t.endBuf
	if len(ending) == 0 {
		return
	}
	sort.Ints(ending)
	reissue := e.reissueBuf[:0]
	for _, c := range ending {
		reissue = t.applyEnding(c, reissue)
	}
	for _, s := range reissue {
		e.reissue(s)
	}
	e.reissueBuf = reissue[:0]
}

// finishDueSharded drains the per-shard ending wheels: the drain-and-
// sort half runs on the worker pool (the wheels are disjoint and the
// drain writes only its shard's buffer), then the apply half walks the
// shards in ascending order on the interval goroutine.  Shard buckets
// hold ascending cluster indexes after their sort and the shard map is
// contiguous and monotone, so the concatenation equals the globally
// sorted order the unsharded drain produces — Results are
// byte-identical at any worker count, including worker count one.
// All revalidation stays in applyEnding, exactly as unsharded.
func (t *vdrTech) finishDueSharded() {
	e := t.eng
	nsh := e.shards.n
	drain := func(s int) {
		t.endBufs[s] = t.endShards[s].Due(e.now, t.endBufs[s][:0])
		sort.Ints(t.endBufs[s])
	}
	if e.pool != nil && e.pool.concurrent {
		e.parallel(nsh, drain)
	} else {
		for s := 0; s < nsh; s++ {
			drain(s)
		}
	}
	reissue := e.reissueBuf[:0]
	for s := 0; s < nsh; s++ {
		for _, c := range t.endBufs[s] {
			reissue = t.applyEnding(c, reissue)
		}
	}
	for _, s := range reissue {
		e.reissue(s)
	}
	e.reissueBuf = reissue[:0]
}

// stepTertiary stages non-resident objects through the tertiary
// device into an evicted cluster.
func (t *vdrTech) stepTertiary() {
	e := t.eng
	if t.matStarted {
		e.tertBusy++
		return // completion handled by finishDue
	}
	if e.tertDown {
		return // device offline: no new staging starts
	}
	if t.matObject < 0 {
		if id, ok := e.tman.StartNext(); ok {
			t.matObject = id
			t.matFromTman = true
		} else if len(t.replQueue) > 0 {
			id := t.replQueue[0]
			t.replQueue = t.replQueue[1:]
			t.replQueued[id] = false
			t.matObject = id
			t.matFromTman = false
		} else {
			return
		}
	}
	c, drop, _, ok := t.victimCluster(t.matObject)
	if !ok {
		return // no evictable idle cluster; retry next interval
	}
	if !t.executePlan(c, drop) {
		return
	}
	t.setJob(c, jobMaterialize, t.matObject, e.now+t.cfg.MaterializeIntervals())
	t.matStarted = true
	t.matCluster = c
	e.tertBusy++
}

// replicaEvictable reports whether the replica of id on an idle
// cluster may be dropped: it is not the last copy of an object that
// queued displays are waiting for.
func (t *vdrTech) replicaEvictable(id int) bool {
	return len(t.store.Replicas(id)) > 1 || t.eng.pinned[id] == 0
}

// marginalValue estimates the cost of losing one replica of id: its
// access frequency divided by its replica count (including copies in
// flight).  Losing one of many replicas of a hot object costs less
// than losing the only replica of a lukewarm one.
func (t *vdrTech) marginalValue(id int) float64 {
	reps := len(t.store.Replicas(id)) + t.copiesInFlight(id)
	if reps < 1 {
		reps = 1
	}
	return float64(t.eng.lfu.Count(id)) / float64(reps)
}

// evictionPlan computes the cheapest set of replicas to drop from
// cluster c so that `need` cylinders become free: evictable replicas
// in increasing marginal-value order, stopping as soon as enough
// space exists.  loss is the largest marginal value dropped.  The
// drop set is appended to buf (sliced to zero length first).
func (t *vdrTech) evictionPlan(c, need, forObject int, buf []int) (drop []int, loss float64, ok bool) {
	if t.job[c] != jobIdle {
		return nil, 0, false
	}
	if t.clusterBad != nil && t.clusterBad[c] > 0 {
		return nil, 0, false // never stage or copy into a broken cluster
	}
	if forObject >= 0 && t.store.HasReplicaOn(forObject, c) {
		return nil, 0, false // a replica of the object must not overwrite itself
	}
	free := t.store.ClusterFree(c)
	if free >= need {
		return nil, 0, true
	}
	// ObjectsOn is kept sorted by id; copy into scratch so the
	// marginal-value sort below cannot disturb the store's index.
	// The comparator is a strict total order (ids are unique), so any
	// sorting algorithm yields the same permutation.
	objs := append(t.objScratch[:0], t.store.ObjectsOn(c)...)
	t.objScratch = objs[:0]
	slices.SortFunc(objs, func(a, b int) int {
		va, vb := t.marginalValue(a), t.marginalValue(b)
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		// Equal marginal value (typically both zero): evict the
		// youngest id first, protecting not-yet-referenced residents.
		case a > b:
			return -1
		default:
			return 1
		}
	})
	drop = buf[:0]
	for _, id := range objs {
		if !t.replicaEvictable(id) {
			continue
		}
		drop = append(drop, id)
		free += t.cfg.Subobjects
		if v := t.marginalValue(id); v > loss {
			loss = v
		}
		if free >= need {
			return drop, loss, true
		}
	}
	return nil, 0, false
}

// victimCluster picks the cheapest cluster that can hold a new
// replica of size Subobjects, returning its eviction plan and loss.
// The returned drop slice is valid until the next victimCluster call.
func (t *vdrTech) victimCluster(forObject int) (cluster int, drop []int, loss float64, ok bool) {
	best := -1
	var bestDrop []int
	bestLoss := 0.0
	cur := t.dropScratch
	spare := t.dropBest
	for c := 0; c < t.clusters; c++ {
		d, l, planOK := t.evictionPlan(c, t.cfg.Subobjects, forObject, cur)
		if !planOK {
			continue
		}
		if best < 0 || l < bestLoss {
			best, bestLoss = c, l
			if d != nil {
				// Keep d's backing out of the scratch rotation until a
				// better plan replaces it.
				cur, spare = spare, cur
			}
			bestDrop = d
		}
	}
	t.dropScratch, t.dropBest = cur, spare
	if best < 0 {
		return 0, nil, 0, false
	}
	return best, bestDrop, bestLoss, true
}

// executePlan evicts the planned replicas from cluster c.
func (t *vdrTech) executePlan(c int, drop []int) bool {
	for _, id := range drop {
		if err := t.store.EvictReplica(id, c, t.cfg.Subobjects); err != nil {
			t.eng.hiccups++
			return false
		}
	}
	return true
}

// admit scans the queue in arrival order: requests for resident
// objects start on an idle replica cluster; hot contended objects
// trigger replication; non-resident objects go to the tertiary
// manager.
func (t *vdrTech) admit() {
	e := t.eng
	kept := e.queue[:0]
	for _, r := range e.queue {
		if !t.store.Resident(r.object) {
			if t.matObject != r.object {
				e.tman.Request(r.object)
			}
			kept = append(kept, r)
			continue
		}
		if e.downCount > 0 && !t.anyLiveReplica(r.object) {
			// Every replica sits behind a down disk: refuse rather than
			// queue forever.  Deferred past the queue swap — kept
			// aliases the queue's backing array, and the rejection path
			// reissues the station into the NEW queue.
			t.rejectBuf = append(t.rejectBuf, r)
			continue
		}
		// Replication takes priority over admission for a contended
		// object: otherwise a permanently-busy sole replica could
		// never be copied (the idle interval would always be consumed
		// by the next waiting display).
		if !e.tman.Pending(r.object) && t.maybeReplicate(r.object) {
			kept = append(kept, r)
			continue
		}
		if c, ok := t.idleReplica(r.object); ok {
			t.startDisplay(r, c)
			continue
		}
		kept = append(kept, r)
	}
	e.queue = kept
	if len(t.rejectBuf) > 0 {
		for _, r := range t.rejectBuf {
			e.countReject(r)
		}
		t.rejectBuf = t.rejectBuf[:0]
	}
}

// idleReplica returns the lowest-indexed idle cluster holding a
// replica of id (the store keeps replica lists sorted).  Clusters
// with a down disk never start new displays.
func (t *vdrTech) idleReplica(id int) (int, bool) {
	for _, c := range t.store.Replicas(id) {
		if t.job[c] != jobIdle {
			continue
		}
		if t.clusterBad != nil && t.clusterBad[c] > 0 {
			continue
		}
		return c, true
	}
	return 0, false
}

// copiesInFlight returns the number of replicas of id currently being
// created, by disk-to-disk copy or by a pending/in-flight tertiary
// staging of an already-resident object.  Disk-to-disk copies are
// counted incrementally (copyTargets), not by scanning clusters.
func (t *vdrTech) copiesInFlight(id int) int {
	n := t.copyTargets[id]
	if t.store.Resident(id) && (t.eng.tman.Pending(id) || t.replQueued[id] || t.matObject == id) {
		n++
	}
	return n
}

// startDisplay occupies cluster c for one display of r.object.
func (t *vdrTech) startDisplay(r request, c int) {
	e := t.eng
	t.setJob(c, jobDisplay, r.object, e.now+t.cfg.Subobjects)
	t.station[c] = int32(r.station)
	e.pinned[r.object]--
	e.noteAdmit(r, 0)
}

// maybeReplicate creates an additional replica of a contended object
// when the policy's benefit test passes.  In the faithful [GS93]
// architecture the replica is staged through the tertiary device —
// it joins the same FCFS queue as misses, which is precisely why
// replication cannot keep up under heavy load.  With
// Config.DiskToDiskCopy the replica is instead copied cluster-to-
// cluster at display bandwidth (a charitable ablation).  It reports
// whether the admission scan should keep the request queued because
// an exclusive disk-to-disk copy was just started.
func (t *vdrTech) maybeReplicate(obj int) bool {
	e := t.eng
	replicas := len(t.store.Replicas(obj)) + t.copiesInFlight(obj)
	share := 0.0
	if t.totalRefs > 0 {
		share = float64(e.lfu.Count(obj)) / float64(t.totalRefs)
	}
	target := t.repl.Target(share, t.cfg.Stations)
	if !t.repl.ShouldReplicate(int(e.pinned[obj]), replicas, target) {
		return false
	}
	if !t.cfg.DiskToDiskCopy {
		// The replica is staged through the tertiary device behind
		// all miss materializations; the victim is chosen when the
		// staging starts.  The device itself is the brake on
		// replication volume — exactly the [GS93] architecture's
		// limit.
		if !t.replQueued[obj] && !e.tman.Pending(obj) && t.matObject != obj {
			t.replQueued[obj] = true
			t.replQueue = append(t.replQueue, obj)
		}
		return false // replication is asynchronous; keep admitting
	}
	// Cost/benefit with hysteresis: the marginal value of the new
	// replica must clearly exceed what the cheapest victim cluster
	// gives up, or replication would churn replicas back and forth.
	_, _, loss, ok := t.victimCluster(obj)
	if !ok {
		return false
	}
	gain := float64(e.lfu.Count(obj)) / float64(replicas+1)
	if gain <= 1.2*loss {
		return false
	}
	return t.diskToDiskCopy(obj, replicas)
}

// diskToDiskCopy starts a cluster-to-cluster copy of obj, used only
// by the DiskToDiskCopy ablation.
func (t *vdrTech) diskToDiskCopy(obj, replicas int) bool {
	// Bound the copy traffic: a small fixed share of the farm may be
	// copying at any instant, so replication can never starve
	// displays (the storms an unbounded trigger produces under zero
	// think time swamp the farm with 2-cluster copy jobs).
	maxCopies := t.clusters / 16
	if maxCopies < 1 {
		maxCopies = 1
	}
	if t.totalCopies >= maxCopies {
		return false
	}
	src, ok := t.idleReplica(obj)
	if !ok {
		return false
	}
	dst, drop, _, ok := t.victimCluster(obj)
	if !ok || dst == src {
		return false
	}
	if !t.executePlan(dst, drop) {
		return false
	}
	t.setJob(src, jobCopySource, obj, t.eng.now+t.cfg.Subobjects)
	t.setJob(dst, jobCopyTarget, obj, t.eng.now+t.cfg.Subobjects)
	return true
}
