package sched

import (
	"fmt"
	"slices"
	"sort"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

// clusterJob describes what a busy cluster is doing.
type clusterJob int

const (
	jobIdle clusterJob = iota
	jobDisplay
	jobCopySource
	jobCopyTarget
	jobMaterialize
)

// VDR simulates the virtual data replication baseline of [GS93]:
// D/M physical clusters, each object declustered over the disks of a
// single cluster, dynamic replication of hot objects (the MRT
// substitute of package policy), and LFU replacement at cluster
// granularity.  A cluster serves one display at a time.
//
// Per-interval work is event-driven: job completions live in
// interval-keyed buckets, the busy-cluster count and per-object
// copies-in-flight are maintained incrementally, so an interval costs
// O(events that fire), not O(clusters + queue).
type VDR struct {
	cfg   Config
	store *core.VDRStore
	lfu   *policy.LFU
	repl  policy.Replication
	tman  *tertiary.Manager
	gen   *workload.Generator
	stn   *workload.Stations
	think []*rng.Stream // per-station think-time streams

	clusters  int
	job       []clusterJob
	busyUntil []int // interval at which the cluster frees (exclusive)
	jobObject []int // object the cluster is working on
	station   []int // station of a display job

	busyClusters int                 // clusters with a non-idle job
	endings      *sim.TickWheel[int] // interval -> clusters whose job ends
	endBuf       []int               // reused Due drain buffer
	copyTargets  []int               // object -> in-flight disk-to-disk copies
	totalCopies  int                 // total in-flight disk-to-disk copies

	objScratch  []int // eviction-plan candidate scratch
	dropScratch []int // eviction-plan drop scratch
	dropBest    []int // best drop set found by victimCluster
	reissueBuf  []int // stations to reissue after completions

	queue     []request
	waiters   []int               // object -> queued request count (also pins)
	totalRefs int64               // references issued, for popularity shares
	wakeups   *sim.TickWheel[int] // interval -> stations whose think time ends
	wakeupBuf []int               // reused Due drain buffer

	// Replication stagings wait in their own low-priority queue:
	// misses (real users waiting for a cold object) always reach the
	// tertiary device first.
	replQueue  []int
	replQueued []bool

	// Tertiary state.
	matObject   int
	matStarted  bool
	matCluster  int
	matFromTman bool // current staging came from the miss queue

	now int

	completed    int
	materialized int
	replications int
	hiccups      int
	admitted     []float64
	busyArea     float64
	tertBusy     int
}

// NewVDR builds the baseline engine from the configuration (the
// stride field is ignored; every object is pinned to one cluster,
// which is the k = D special case).
func NewVDR(cfg Config) (*VDR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.D%cfg.M != 0 {
		return nil, fmt.Errorf("sched: VDR needs D (%d) divisible by M (%d)", cfg.D, cfg.M)
	}
	store, err := core.NewVDRStore(cfg.D, cfg.M, cfg.CapacityFragments)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(rng.NewSource(cfg.Seed), cfg.Objects, cfg.DistMean, cfg.Stations)
	if err != nil {
		return nil, err
	}
	repl := policy.Replication{Theta: cfg.ReplicationTheta}
	if cfg.ReplicationTheta == 0 {
		repl = policy.DefaultReplication()
	}
	if err := repl.Validate(); err != nil {
		return nil, err
	}
	e := &VDR{
		cfg:         cfg,
		store:       store,
		lfu:         policy.NewLFU(),
		repl:        repl,
		tman:        tertiary.NewManager(),
		gen:         gen,
		stn:         workload.NewStations(gen),
		clusters:    cfg.D / cfg.M,
		endings:     sim.NewTickWheel[int](),
		copyTargets: make([]int, cfg.Objects),
		waiters:     make([]int, cfg.Objects),
		replQueued:  make([]bool, cfg.Objects),
		wakeups:     sim.NewTickWheel[int](),
		matObject:   -1,
	}
	if cfg.ThinkMeanSeconds > 0 {
		src := rng.NewSource(cfg.Seed)
		e.think = make([]*rng.Stream, cfg.Stations)
		for i := range e.think {
			e.think[i] = src.StreamN("think", i)
		}
	}
	e.job = make([]clusterJob, e.clusters)
	e.busyUntil = make([]int, e.clusters)
	e.jobObject = make([]int, e.clusters)
	e.station = make([]int, e.clusters)
	for c := range e.jobObject {
		e.jobObject[c] = -1
	}
	// Warm-start the farm at the replication policy's steady state:
	// replicas proportional to popularity (building a replica set
	// through the 40 mbps tertiary takes days of simulated time, so
	// starting cold would measure the transient, not the policy).
	// Objects are loaded in popularity order, each up to its target
	// replica count, but always preferring a first copy of the next
	// object over a surplus copy of a hotter one once targets allow.
	concurrency := cfg.Stations
	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.Objects
	}
	// Candidate replicas in decreasing marginal value p(id)/copy#,
	// capped at each object's target; placing greedily by marginal
	// value yields the allocation a minimum-response-time policy
	// converges to.
	type cand struct {
		id    int
		copy  int
		value float64
	}
	var cands []cand
	for id := 0; id < preload && id < cfg.Objects; id++ {
		p := gen.Popularity(id)
		want := repl.Target(p, concurrency)
		for j := 1; j <= want; j++ {
			cands = append(cands, cand{id: id, copy: j, value: p / float64(j)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value > cands[j].value
		}
		if cands[i].id != cands[j].id {
			return cands[i].id < cands[j].id
		}
		return cands[i].copy < cands[j].copy
	})
	for _, cd := range cands {
		c, ok := store.FindFreeCluster(cd.id, cfg.Subobjects)
		if !ok {
			continue
		}
		if err := store.PlaceReplica(cd.id, c, cfg.Subobjects); err != nil {
			return nil, fmt.Errorf("sched: VDR preload failed: %w", err)
		}
	}
	return e, nil
}

// enqueue issues a new reference for station s.
func (e *VDR) enqueue(s int) {
	r := e.stn.Issue(s, float64(e.now)*e.cfg.IntervalSeconds())
	e.queue = append(e.queue, request{station: r.Station, object: r.Object, arrived: e.now})
	e.waiters[r.Object]++
	e.lfu.Touch(r.Object)
	e.totalRefs++
}

// setJob starts a job on cluster c until the given interval,
// maintaining the busy count, the copy-in-flight counters, and the
// completion bucket.
func (e *VDR) setJob(c int, job clusterJob, object, until int) {
	e.job[c] = job
	e.jobObject[c] = object
	e.busyUntil[c] = until
	e.busyClusters++
	e.endings.Add(until, c)
	if job == jobCopyTarget {
		e.copyTargets[object]++
		e.totalCopies++
	}
}

// clearJob returns cluster c to idle.
func (e *VDR) clearJob(c int) {
	if e.job[c] == jobCopyTarget {
		e.copyTargets[e.jobObject[c]]--
		e.totalCopies--
	}
	e.job[c] = jobIdle
	e.jobObject[c] = -1
	e.busyClusters--
}

// step advances one interval.
func (e *VDR) step() {
	e.wakeupBuf = e.wakeups.Due(e.now, e.wakeupBuf[:0])
	for _, st := range e.wakeupBuf {
		e.enqueue(st)
	}
	e.finishClusters()
	e.stepTertiary()
	e.admit()
	e.busyArea += float64(e.busyClusters * e.cfg.M)
	e.now++
}

// finishClusters completes the cluster jobs ending now — a bucket
// lookup, not a scan of all clusters.  Clusters are processed in
// ascending index order, matching a full scan.
func (e *VDR) finishClusters() {
	e.endBuf = e.endings.Due(e.now, e.endBuf[:0])
	ending := e.endBuf
	if len(ending) == 0 {
		return
	}
	sort.Ints(ending)
	reissue := e.reissueBuf[:0]
	for _, c := range ending {
		if e.job[c] == jobIdle || e.now < e.busyUntil[c] {
			continue
		}
		switch e.job[c] {
		case jobDisplay:
			e.completed++
			e.stn.Complete(e.station[c])
			reissue = append(reissue, e.station[c])
		case jobCopyTarget:
			if err := e.store.PlaceReplica(e.jobObject[c], c, e.cfg.Subobjects); err != nil {
				e.hiccups++
			} else {
				e.replications++
			}
		case jobCopySource:
			// Released together with the target; nothing to record.
		case jobMaterialize:
			wasResident := e.store.Resident(e.matObject)
			if err := e.store.PlaceReplica(e.matObject, c, e.cfg.Subobjects); err != nil {
				e.hiccups++
			} else if wasResident {
				e.replications++
			}
			if e.matFromTman {
				if _, err := e.tman.Finish(); err != nil {
					e.hiccups++
				}
			}
			e.materialized++
			e.matObject = -1
			e.matStarted = false
		}
		e.clearJob(c)
	}
	for _, s := range reissue {
		e.reissue(s)
	}
	e.reissueBuf = reissue[:0]
}

// reissue starts station s's next request, after its think time when
// one is configured.
func (e *VDR) reissue(s int) {
	if e.cfg.ThinkMeanSeconds <= 0 {
		e.enqueue(s)
		return
	}
	secs := e.think[s].Exp(e.cfg.ThinkMeanSeconds)
	delay := int(secs / e.cfg.IntervalSeconds())
	if delay < 1 {
		delay = 1
	}
	e.wakeups.Add(e.now+delay, s)
}

// stepTertiary stages non-resident objects through the tertiary
// device into an evicted cluster.
func (e *VDR) stepTertiary() {
	if e.matStarted {
		e.tertBusy++
		return // completion handled by finishClusters
	}
	if e.matObject < 0 {
		if id, ok := e.tman.StartNext(); ok {
			e.matObject = id
			e.matFromTman = true
		} else if len(e.replQueue) > 0 {
			id := e.replQueue[0]
			e.replQueue = e.replQueue[1:]
			e.replQueued[id] = false
			e.matObject = id
			e.matFromTman = false
		} else {
			return
		}
	}
	c, drop, _, ok := e.victimCluster(e.matObject)
	if !ok {
		return // no evictable idle cluster; retry next interval
	}
	if !e.executePlan(c, drop) {
		return
	}
	e.setJob(c, jobMaterialize, e.matObject, e.now+e.cfg.MaterializeIntervals())
	e.matStarted = true
	e.matCluster = c
	e.tertBusy++
}

// replicaEvictable reports whether the replica of id on an idle
// cluster may be dropped: it is not the last copy of an object that
// queued displays are waiting for.
func (e *VDR) replicaEvictable(id int) bool {
	return len(e.store.Replicas(id)) > 1 || e.waiters[id] == 0
}

// marginalValue estimates the cost of losing one replica of id: its
// access frequency divided by its replica count (including copies in
// flight).  Losing one of many replicas of a hot object costs less
// than losing the only replica of a lukewarm one.
func (e *VDR) marginalValue(id int) float64 {
	reps := len(e.store.Replicas(id)) + e.copiesInFlight(id)
	if reps < 1 {
		reps = 1
	}
	return float64(e.lfu.Count(id)) / float64(reps)
}

// evictionPlan computes the cheapest set of replicas to drop from
// cluster c so that `need` cylinders become free: evictable replicas
// in increasing marginal-value order, stopping as soon as enough
// space exists.  loss is the largest marginal value dropped.  The
// drop set is appended to buf (sliced to zero length first).
func (e *VDR) evictionPlan(c, need, forObject int, buf []int) (drop []int, loss float64, ok bool) {
	if e.job[c] != jobIdle {
		return nil, 0, false
	}
	if forObject >= 0 && e.store.HasReplicaOn(forObject, c) {
		return nil, 0, false // a replica of the object must not overwrite itself
	}
	free := e.store.ClusterFree(c)
	if free >= need {
		return nil, 0, true
	}
	// ObjectsOn is kept sorted by id; copy into scratch so the
	// marginal-value sort below cannot disturb the store's index.
	// The comparator is a strict total order (ids are unique), so any
	// sorting algorithm yields the same permutation.
	objs := append(e.objScratch[:0], e.store.ObjectsOn(c)...)
	e.objScratch = objs[:0]
	slices.SortFunc(objs, func(a, b int) int {
		va, vb := e.marginalValue(a), e.marginalValue(b)
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		// Equal marginal value (typically both zero): evict the
		// youngest id first, protecting not-yet-referenced residents.
		case a > b:
			return -1
		default:
			return 1
		}
	})
	drop = buf[:0]
	for _, id := range objs {
		if !e.replicaEvictable(id) {
			continue
		}
		drop = append(drop, id)
		free += e.cfg.Subobjects
		if v := e.marginalValue(id); v > loss {
			loss = v
		}
		if free >= need {
			return drop, loss, true
		}
	}
	return nil, 0, false
}

// victimCluster picks the cheapest cluster that can hold a new
// replica of size Subobjects, returning its eviction plan and loss.
// The returned drop slice is valid until the next victimCluster call.
func (e *VDR) victimCluster(forObject int) (cluster int, drop []int, loss float64, ok bool) {
	best := -1
	var bestDrop []int
	bestLoss := 0.0
	cur := e.dropScratch
	spare := e.dropBest
	for c := 0; c < e.clusters; c++ {
		d, l, planOK := e.evictionPlan(c, e.cfg.Subobjects, forObject, cur)
		if !planOK {
			continue
		}
		if best < 0 || l < bestLoss {
			best, bestLoss = c, l
			if d != nil {
				// Keep d's backing out of the scratch rotation until a
				// better plan replaces it.
				cur, spare = spare, cur
			}
			bestDrop = d
		}
	}
	e.dropScratch, e.dropBest = cur, spare
	if best < 0 {
		return 0, nil, 0, false
	}
	return best, bestDrop, bestLoss, true
}

// executePlan evicts the planned replicas from cluster c.
func (e *VDR) executePlan(c int, drop []int) bool {
	for _, id := range drop {
		if err := e.store.EvictReplica(id, c, e.cfg.Subobjects); err != nil {
			e.hiccups++
			return false
		}
	}
	return true
}

// admit scans the queue in arrival order: requests for resident
// objects start on an idle replica cluster; hot contended objects
// trigger replication; non-resident objects go to the tertiary
// manager.
func (e *VDR) admit() {
	kept := e.queue[:0]
	for _, r := range e.queue {
		if !e.store.Resident(r.object) {
			if e.matObject != r.object {
				e.tman.Request(r.object)
			}
			kept = append(kept, r)
			continue
		}
		// Replication takes priority over admission for a contended
		// object: otherwise a permanently-busy sole replica could
		// never be copied (the idle interval would always be consumed
		// by the next waiting display).
		if !e.tman.Pending(r.object) && e.maybeReplicate(r.object) {
			kept = append(kept, r)
			continue
		}
		if c, ok := e.idleReplica(r.object); ok {
			e.startDisplay(r, c)
			continue
		}
		kept = append(kept, r)
	}
	e.queue = kept
}

// idleReplica returns the lowest-indexed idle cluster holding a
// replica of id (the store keeps replica lists sorted).
func (e *VDR) idleReplica(id int) (int, bool) {
	for _, c := range e.store.Replicas(id) {
		if e.job[c] == jobIdle {
			return c, true
		}
	}
	return 0, false
}

// copiesInFlight returns the number of replicas of id currently being
// created, by disk-to-disk copy or by a pending/in-flight tertiary
// staging of an already-resident object.  Disk-to-disk copies are
// counted incrementally (copyTargets), not by scanning clusters.
func (e *VDR) copiesInFlight(id int) int {
	n := e.copyTargets[id]
	if e.store.Resident(id) && (e.tman.Pending(id) || e.replQueued[id] || e.matObject == id) {
		n++
	}
	return n
}

// startDisplay occupies cluster c for one display of r.object.
func (e *VDR) startDisplay(r request, c int) {
	e.setJob(c, jobDisplay, r.object, e.now+e.cfg.Subobjects)
	e.station[c] = r.station
	e.waiters[r.object]--
	e.admitted = append(e.admitted, float64(e.now-r.arrived)*e.cfg.IntervalSeconds())
}

// maybeReplicate creates an additional replica of a contended object
// when the policy's benefit test passes.  In the faithful [GS93]
// architecture the replica is staged through the tertiary device —
// it joins the same FCFS queue as misses, which is precisely why
// replication cannot keep up under heavy load.  With
// Config.DiskToDiskCopy the replica is instead copied cluster-to-
// cluster at display bandwidth (a charitable ablation).  It reports
// whether the admission scan should keep the request queued because
// an exclusive disk-to-disk copy was just started.
func (e *VDR) maybeReplicate(obj int) bool {
	replicas := len(e.store.Replicas(obj)) + e.copiesInFlight(obj)
	share := 0.0
	if e.totalRefs > 0 {
		share = float64(e.lfu.Count(obj)) / float64(e.totalRefs)
	}
	target := e.repl.Target(share, e.cfg.Stations)
	if !e.repl.ShouldReplicate(e.waiters[obj], replicas, target) {
		return false
	}
	if !e.cfg.DiskToDiskCopy {
		// The replica is staged through the tertiary device behind
		// all miss materializations; the victim is chosen when the
		// staging starts.  The device itself is the brake on
		// replication volume — exactly the [GS93] architecture's
		// limit.
		if !e.replQueued[obj] && !e.tman.Pending(obj) && e.matObject != obj {
			e.replQueued[obj] = true
			e.replQueue = append(e.replQueue, obj)
		}
		return false // replication is asynchronous; keep admitting
	}
	// Cost/benefit with hysteresis: the marginal value of the new
	// replica must clearly exceed what the cheapest victim cluster
	// gives up, or replication would churn replicas back and forth.
	_, _, loss, ok := e.victimCluster(obj)
	if !ok {
		return false
	}
	gain := float64(e.lfu.Count(obj)) / float64(replicas+1)
	if gain <= 1.2*loss {
		return false
	}
	return e.diskToDiskCopy(obj, replicas)
}

// diskToDiskCopy starts a cluster-to-cluster copy of obj, used only
// by the DiskToDiskCopy ablation.
func (e *VDR) diskToDiskCopy(obj, replicas int) bool {
	// Bound the copy traffic: a small fixed share of the farm may be
	// copying at any instant, so replication can never starve
	// displays (the storms an unbounded trigger produces under zero
	// think time swamp the farm with 2-cluster copy jobs).
	maxCopies := e.clusters / 16
	if maxCopies < 1 {
		maxCopies = 1
	}
	if e.totalCopies >= maxCopies {
		return false
	}
	src, ok := e.idleReplica(obj)
	if !ok {
		return false
	}
	dst, drop, _, ok := e.victimCluster(obj)
	if !ok || dst == src {
		return false
	}
	if !e.executePlan(dst, drop) {
		return false
	}
	e.setJob(src, jobCopySource, obj, e.now+e.cfg.Subobjects)
	e.setJob(dst, jobCopyTarget, obj, e.now+e.cfg.Subobjects)
	return true
}

// Run executes warm-up and measurement and returns the statistics.
func (e *VDR) Run() Result {
	if e.now != 0 {
		panic("sched: Run called twice")
	}
	for s := 0; s < e.cfg.Stations; s++ {
		e.enqueue(s)
	}
	for e.now < e.cfg.WarmupIntervals {
		e.step()
	}
	e.completed, e.materialized, e.replications = 0, 0, 0
	e.admitted = e.admitted[:0]
	e.busyArea, e.tertBusy = 0, 0

	end := e.cfg.WarmupIntervals + e.cfg.MeasureIntervals
	for e.now < end {
		e.step()
	}

	res := Result{
		Technique:       "virtual data replication",
		Stations:        e.cfg.Stations,
		DistMean:        e.cfg.DistMean,
		WarmupSeconds:   float64(e.cfg.WarmupIntervals) * e.cfg.IntervalSeconds(),
		MeasureSeconds:  float64(e.cfg.MeasureIntervals) * e.cfg.IntervalSeconds(),
		Displays:        e.completed,
		Materializa:     e.materialized,
		Replications:    e.replications,
		Hiccups:         e.hiccups,
		TertiaryBusy:    float64(e.tertBusy) / float64(e.cfg.MeasureIntervals),
		DiskBusy:        e.busyArea / (float64(e.cfg.MeasureIntervals) * float64(e.cfg.D)),
		UniqueResidents: e.store.UniqueResident(),
	}
	for _, l := range e.admitted {
		res.Latency.Add(l)
	}
	return res
}
