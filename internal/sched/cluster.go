package sched

// This file is the engine's cluster-facing surface (DESIGN.md §13):
// an exported handle on the worker pool so N engines behind one clock
// share one pool instead of oversubscribing the machine with N, the
// load and residency probes the dispatch policies read, and the
// arrival injection point for externally dispatched requests.

// Pool is a shareable worker pool for the engines' intra-interval
// parallel phases.  A cluster driver creates one Pool sized for the
// machine and attaches it to every member engine (Engine.AttachPool);
// because the driver steps engines sequentially and a pool run is
// synchronous, the members never contend for it.
type Pool struct {
	p *workerPool
}

// NewPool creates a pool applying the given total worker parallelism
// (the stepping goroutine participates in every run, so workers-1
// goroutines are spawned — the same accounting as Config.Workers).
// workers <= 1 returns an empty Pool that AttachPool ignores.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return &Pool{}
	}
	return &Pool{p: newWorkerPool(workers - 1)}
}

// Close retires the pool's goroutines.  No engine may step after its
// shared pool closes.
func (p *Pool) Close() {
	if p != nil && p.p != nil {
		p.p.close()
		p.p = nil
	}
}

// ActiveDisplays returns the number of displays currently in delivery,
// including batched followers — the leastloaded dispatch signal.
func (e *Engine) ActiveDisplays() int {
	return e.tech.activeDisplays() + e.activeFollowers
}

// QueuedRequests returns the number of admitted references still
// waiting in the disk queue.
func (e *Engine) QueuedRequests() int { return len(e.queue) }

// IdleStations returns how many stations an open-workload engine has
// free; a closed-loop engine (every station always cycling) reports 0.
func (e *Engine) IdleStations() int {
	if e.open == nil {
		return 0
	}
	return len(e.open.idle)
}

// HoldsObject reports whether the object is playable here right now —
// fully materialized on disk, or its prefix pinned in the cache tier —
// the popularity dispatch's residency probe.
func (e *Engine) HoldsObject(id int) bool {
	if id < 0 || id >= e.cfg.Objects {
		return false
	}
	if e.cache != nil && e.cache.Resident(id) {
		return true
	}
	return e.tech.holdsObject(id)
}

// InjectArrival admits one externally dispatched request for the
// object: the entry point a cluster driver routes its shared Poisson
// arrival stream through (Config.ExternalArrivals).  The request
// occupies an idle station; with every station busy the arrival is
// refused and counted in OpenRejected.  Must be called between
// intervals on the stepping goroutine; the request is enqueued at the
// engine's current interval.
func (e *Engine) InjectArrival(object int) bool {
	if e.open == nil {
		panic("sched: InjectArrival on an engine without ExternalArrivals")
	}
	if e.dead {
		panic("sched: InjectArrival on a dead engine")
	}
	if object < 0 || object >= e.cfg.Objects {
		panic("sched: InjectArrival object out of range")
	}
	n := len(e.open.idle)
	if n == 0 {
		e.open.rejected++
		e.open.rejectedTotal++
		return false
	}
	s := e.open.idle[n-1]
	e.open.idle = e.open.idle[:n-1]
	r := e.stn.IssueObject(s, object, float64(e.now)*e.cfg.IntervalSeconds())
	e.record(request{station: r.Station, object: r.Object, arrived: e.now})
	return true
}
