package sched

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/fault"
)

// cacheSpec is the canonical enabled tier for these tests: a budget
// that holds a handful of quick-geometry prefixes (one prefix is
// 4·5·1512000 ≈ 30 MB) plus a batching window.
func cacheSpec() *cache.Spec {
	return &cache.Spec{BudgetBytes: 256 << 20, BatchWindow: 8}
}

// TestCacheDisabledGolden proves the memory tier costs nothing when
// disabled: with a zero-valued (but non-nil) cache spec attached to
// every configuration, both golden dumps must stay byte-identical to
// their pinned files — the same no-cost contract the fault layer pins
// with TestEmptyFaultPlanGolden.
func TestCacheDisabledGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are not short")
	}
	withDisabledCache := func(cfg *Config) { cfg.Cache = &cache.Spec{} }

	got := goldenDumpWith(t, withDisabledCache)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_sweep.txt"))
	if err != nil {
		t.Fatalf("missing golden dump: %v", err)
	}
	if got != string(want) {
		t.Error("52-config dump with a disabled cache spec differs from golden")
	}

	got = staggeredGoldenDump(t, withDisabledCache)
	want, err = os.ReadFile(filepath.Join("testdata", "golden_staggered.txt"))
	if err != nil {
		t.Fatalf("missing staggered golden dump: %v", err)
	}
	if got != string(want) {
		t.Error("staggered dump with a disabled cache spec differs from golden")
	}
}

// TestCacheDisabledCountersZero asserts a cache-disabled run reports
// zeroed cache counters — the half of the contract the legacy golden
// projection cannot see.
func TestCacheDisabledCountersZero(t *testing.T) {
	cfg := smallConfig(8, 20)
	cfg.Cache = &cache.Spec{}
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunChecked()
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedFromCache != 0 || res.BatchedFollowers != 0 ||
		res.CacheHitBytes != 0 || res.OpenRejected != 0 {
		t.Errorf("cache-disabled run has nonzero cache counters: %+v", res)
	}
}

// TestCacheWorkerInvariance mirrors TestWorkerInvariance with the
// memory tier on: all cache work happens on the sequential interval
// goroutine (record, admit, follower wheel), so Results must stay
// byte-identical for workers ∈ {1, 2, 8} across all three techniques.
func TestCacheWorkerInvariance(t *testing.T) {
	for name, tc := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			var results []Result
			for _, workers := range []int{1, 2, 8} {
				cfg := tc.cfg
				cfg.ThinkMeanSeconds = 30
				cfg.Shards = 4
				cfg.Workers = workers
				cfg.Cache = cacheSpec()
				e, _, err := NewEngineFor(tc.key, cfg, tc.stride)
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, e.Run())
			}
			for i := 1; i < len(results); i++ {
				if !reflect.DeepEqual(results[0], results[i]) {
					t.Errorf("worker count changed the cached result:\n  workers=1: %+v\n  workers=%d: %+v",
						results[0], []int{1, 2, 8}[i], results[i])
				}
			}
		})
	}
}

// TestCacheOpenArrivalsWorkerInvariance repeats the invariance check
// for the open-system workload the cache experiments use (Poisson
// arrivals + Zipf popularity), where the idle-station pool and the
// arrival stream are additional state that must not see worker count.
func TestCacheOpenArrivalsWorkerInvariance(t *testing.T) {
	var results []Result
	for _, workers := range []int{1, 2, 8} {
		cfg := smallConfig(64, 20)
		cfg.ZipfSkew = 0.7
		cfg.ArrivalsPerHour = 6000
		cfg.Shards = 4
		cfg.Workers = workers
		cfg.Cache = cacheSpec()
		e, err := NewStriped(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, e.Run())
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("worker count changed the open-arrivals result:\n  workers=1: %+v\n  workers=%d: %+v",
				results[0], []int{1, 2, 8}[i], results[i])
		}
	}
	if results[0].BatchedFollowers == 0 {
		t.Error("open Zipf workload produced no batched followers; the invariance check exercised nothing")
	}
}

// checkCacheConservation asserts the closed-loop station accounting
// with the tier on: every station is queued, in a display, in a
// follower display, or batched pending — and lifetime admissions
// balance completions, aborts, and in-flight work.
func checkCacheConservation(t *testing.T, e *Engine) {
	t.Helper()
	active := e.tech.activeDisplays()
	if got := e.admittedTotal; got != e.completedTotal+e.abortedTotal+active+e.activeFollowers {
		t.Errorf("admission conservation violated: admitted %d != completed %d + aborted %d + active %d + followers %d",
			got, e.completedTotal, e.abortedTotal, active, e.activeFollowers)
	}
	if e.cfg.ThinkMeanSeconds == 0 && e.open == nil {
		total := len(e.queue) + active + e.activeFollowers + e.pendingFollowers
		if total != e.cfg.Stations {
			t.Errorf("station conservation violated: queue %d + active %d + followers %d + pending %d != stations %d",
				len(e.queue), active, e.activeFollowers, e.pendingFollowers, e.cfg.Stations)
		}
	}
	if e.pendingFollowers < 0 || e.activeFollowers < 0 {
		t.Errorf("negative follower accounting: active %d pending %d", e.activeFollowers, e.pendingFollowers)
	}
}

// TestCacheConservation runs the cached Zipf closed loop on all three
// techniques and checks the accounting identities at the end.
func TestCacheConservation(t *testing.T) {
	for name, tc := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.ZipfSkew = 1.1
			cfg.Cache = cacheSpec()
			e, _, err := NewEngineFor(tc.key, cfg, tc.stride)
			if err != nil {
				t.Fatal(err)
			}
			res := e.Run()
			checkCacheConservation(t, e)
			// Staggered k=1 fragmented admissions can carry a startup
			// Tmax beyond the prefix, and saturation keeps hot objects
			// continuously queued (the batch anchor never refreshes),
			// so only the fast-admitting techniques are guaranteed to
			// form batches here.
			if name != "staggered" && res.BatchedFollowers == 0 {
				t.Error("Zipf(1.1) closed loop produced no batched followers")
			}
			if res.ServedFromCache == 0 {
				t.Error("Zipf(1.1) closed loop produced no cache-served startups")
			}
		})
	}
}

// TestCacheStagingAbortDetachesFollowers is the PR 4 interaction fix:
// a tertiary outage abandons staging mid-flight, and any followers
// batched behind the staging object's queued request must be requeued
// as ordinary requests instead of waiting forever — conservation must
// hold through the outage, and the stations must all stay accounted.
func TestCacheStagingAbortDetachesFollowers(t *testing.T) {
	plan := fault.NewPlan().TertiaryOutage(650, 2200)
	for _, key := range []string{"striped", "vdr"} {
		t.Run(key, func(t *testing.T) {
			cfg := smallConfig(48, 10) // skewed: misses batch up behind staging
			cfg.ZipfSkew = 1.1
			cfg.Cache = cacheSpec()
			cfg.Faults = plan
			e, _, err := NewEngineFor(key, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
			checkCacheConservation(t, e)
			if e.stn.Outstanding() != cfg.Stations {
				t.Errorf("outstanding stations %d != %d after outage run", e.stn.Outstanding(), cfg.Stations)
			}
		})
	}
}

// TestCacheBeatsDisabled is the headline property at unit scale: on a
// hot-head Zipf workload, the tier must complete more displays than
// the identical disk-only run — followers ride existing streams
// instead of burning bandwidth.
func TestCacheBeatsDisabled(t *testing.T) {
	base := smallConfig(64, 20)
	base.ZipfSkew = 1.1

	disk, err := NewStriped(base)
	if err != nil {
		t.Fatal(err)
	}
	diskRes := disk.Run()

	cached := base
	cached.Cache = cacheSpec()
	eng, err := NewStriped(cached)
	if err != nil {
		t.Fatal(err)
	}
	cachedRes := eng.Run()

	if cachedRes.Displays <= diskRes.Displays {
		t.Errorf("cache did not beat disk-only: %d vs %d displays", cachedRes.Displays, diskRes.Displays)
	}
	if cachedRes.CacheHitBytes == 0 {
		t.Error("no bytes served from RAM")
	}
	if rate := cachedRes.CacheHitRate(); rate <= 0 || rate > 1 {
		t.Errorf("cache hit rate %v out of range", rate)
	}
}

// TestOpenArrivalsDiskOnly pins the open-system workload without the
// tier: arrivals must balance stations and rejections, and the zero
// cache counters prove open mode alone doesn't touch the tier path.
func TestOpenArrivalsDiskOnly(t *testing.T) {
	cfg := smallConfig(16, 20)
	cfg.ArrivalsPerHour = 20000 // deliberately overdriven: must reject
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.OpenRejected == 0 {
		t.Error("overdriven open system rejected nothing")
	}
	if res.Displays == 0 {
		t.Error("open system completed nothing")
	}
	if res.ServedFromCache != 0 || res.BatchedFollowers != 0 {
		t.Errorf("open mode without a cache spec touched the tier: %+v", res)
	}
}

// TestOpenArrivalsThinkTimeExclusive pins the config contract.
func TestOpenArrivalsThinkTimeExclusive(t *testing.T) {
	cfg := smallConfig(8, 20)
	cfg.ArrivalsPerHour = 100
	cfg.ThinkMeanSeconds = 30
	if err := cfg.Validate(); err == nil {
		t.Fatal("open arrivals + think time must not validate")
	}
}
