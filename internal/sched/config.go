// Package sched implements the Centralized Scheduler of the paper's
// simulation model (§4.1) — the Object Manager, Disk Manager, and
// Tertiary Manager — for both striping techniques and for the virtual
// data replication baseline, together with the schedule renderings of
// Figures 3 and 7.
//
// Following the paper, time is quantized into fixed intervals
// (S(C_i), the service time of a cluster per activation); within an
// interval a display occupies M_X disks and then shifts k disks to
// the right.  The engines below advance interval by interval:
// completions first, then tertiary progress, then admissions — the
// same event order CSIM's process scheduling yields for this model.
package sched

import (
	"fmt"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/tertiary"
)

// Config parametrizes one simulation run.  The zero value is not
// runnable; use Table3Config for the paper's configuration.
type Config struct {
	// Farm geometry.
	D                 int // disks
	K                 int // stride
	CapacityFragments int // cylinders per disk

	// Database: Objects identical objects of Subobjects subobjects,
	// each declustered across M disks (single media type, Table 3).
	Objects    int
	Subobjects int
	M          int

	// Degrees optionally gives each object its own degree of
	// declustering (mixed media types, §3.2); when nil every object
	// uses M.  Only the striped engine supports mixed degrees.
	Degrees []int

	// Data rates: the effective per-disk bandwidth and the fixed
	// fragment size, which together set the time interval
	// T = FragmentBytes·8 / BDisk.
	BDisk         float64 // bits/second
	FragmentBytes float64

	// Tertiary device.
	Tertiary   tertiary.Spec
	TapeLayout tertiary.TapeLayout

	// Workload.
	Stations int
	DistMean float64
	Seed     uint64

	// Measurement.
	WarmupIntervals  int
	MeasureIntervals int

	// PreloadTop pre-places the most popular objects up to the farm's
	// capacity; 0 derives the count from the capacity.
	PreloadTop int

	// Fragmented enables Algorithm-1 admission on non-adjacent virtual
	// disks; Coalescing additionally enables Algorithm 2.  MaxStartup
	// bounds the admission Tmax in intervals (0 = twice the degree).
	Fragmented bool
	Coalescing bool
	MaxStartup int

	// ReplicationTheta tunes the VDR baseline's replication trigger
	// (see policy.Replication); 0 selects the default.
	ReplicationTheta float64

	// ThinkMeanSeconds adds an exponentially distributed think time
	// between a station's display completion and its next request, in
	// both engines.  The paper uses zero think time "in order to
	// stress the system"; non-zero values are an extension for
	// sensitivity studies.
	ThinkMeanSeconds float64

	// FCFSStrict makes admission stop at the first queued request that
	// cannot start (head-of-line blocking) instead of scanning the
	// whole queue.  The paper's §5 leaves scheduling fairness to
	// future work; this option quantifies the cost of the strictest
	// policy.  Striped engine only.
	FCFSStrict bool

	// DiskToDiskCopy lets the VDR baseline create replicas by copying
	// cluster-to-cluster at display bandwidth instead of staging them
	// through the tertiary device.  [GS93]'s architecture materializes
	// replicas from tertiary store (the default here); the disk-to-disk
	// variant is offered as a more charitable ablation.
	DiskToDiskCopy bool

	// Faults is an optional deterministic fault plan injected through
	// the engine's interval loop (DESIGN.md §10).  Nil or empty means a
	// fault-free run and provably costs nothing on the hot path.
	Faults *fault.Plan

	// PlaceRetryLimit caps how many times a materialization retries
	// core.Store.Place before it is abandoned and counted as starved
	// (with exponential backoff between attempts).  0 preserves the
	// legacy retry-forever behavior, which can livelock a k < M
	// exact-fit farm (DESIGN.md §9); DefaultPlaceRetryLimit is the
	// recommended cap and what the experiment configs use.
	PlaceRetryLimit int

	// EvictionPressure lets a materialization that is about to exhaust
	// its Place retries evict replaceable cold residents beyond the
	// strict byte need, defragmenting an exact-fit farm instead of
	// starving.  Only meaningful with PlaceRetryLimit > 0.
	EvictionPressure bool

	// FaultHiccupLimit is how many consecutive degraded intervals a
	// display rides out (hiccup-and-resync) before it is aborted.
	// 0 selects the default of 2; negative aborts immediately.
	FaultHiccupLimit int

	// Cache configures the optional memory tier (DESIGN.md §12): a
	// popularity-aware prefix cache plus multicast stream sharing.
	// Nil or zero-valued disables it, and the disk-only path pays a
	// single nil check per hook — the golden dumps are pinned
	// byte-identical with the tier compiled in but disabled.
	Cache *cache.Spec

	// ZipfSkew, when positive, replaces the paper's truncated-geometric
	// object popularity with Zipf(theta): P(i) ∝ 1/(i+1)^theta over the
	// object catalog.  The cache experiments use it to model a hot head
	// hit by millions of users.  DistMean is ignored for draws (but
	// still validated/reported) when set.
	ZipfSkew float64

	// ArrivalsPerHour, when positive, switches the workload from the
	// paper's closed system to an open one: requests arrive in a
	// Poisson stream at this rate and each occupies an idle station for
	// its display; arrivals finding no idle station are counted as
	// OpenRejected.  Mutually exclusive with ThinkMeanSeconds.
	ArrivalsPerHour float64

	// ExternalArrivals runs the engine as an open system whose
	// arrivals are injected by an outside driver (Engine.InjectArrival)
	// instead of drawn from the engine's own Poisson stream: the
	// cluster layer owns one shared arrival process and dispatches each
	// request to a member engine.  Mutually exclusive with
	// ArrivalsPerHour and ThinkMeanSeconds.
	ExternalArrivals bool

	// PreloadObjects, when non-nil, pre-places exactly these objects
	// (best-effort, in slice order) instead of the PreloadTop most
	// popular — how the cluster layer spreads replicas across member
	// servers by Zipf rank at build time.
	PreloadObjects []int

	// ZipfFlipInterval, when positive, rotates the object-popularity
	// mapping by half the catalog at that absolute interval
	// (workload.Generator.FlipHalf): the hot head of the Zipf
	// distribution moves to previously cold objects mid-run, the
	// popularity-churn scenario the cache tier and the cluster's
	// popularity dispatch must re-converge under.  0 (the golden
	// configuration) never flips.
	ZipfFlipInterval int

	// Shards partitions the stations into this many contiguous blocks,
	// each with its own wake-up wheel, think-time stream (split via
	// rng.NewStream(seed, shard)), and admission scratch, so the
	// station-side work of an interval can run shard-parallel and merge
	// in fixed shard order (DESIGN.md §11).  0 or 1 keeps the single
	// sequential path that the golden dumps pin; the effective count is
	// clamped to Stations.
	Shards int

	// Workers bounds the goroutines that process shards (and the
	// striped engine's admission pre-pass) inside one interval.  0 or 1
	// runs everything inline on the calling goroutine.  Results are
	// byte-identical at any worker count for a fixed (Seed, Shards):
	// all cross-shard state is merged sequentially in shard order.
	Workers int
}

// DefaultPlaceRetryLimit is the materialization retry cap the
// experiment layer opts into (Config zero value keeps the legacy
// unlimited retries so pinned golden runs are untouched).
const DefaultPlaceRetryLimit = 32

// Table3Config returns the paper's §4.1 simulation configuration:
// 1000 disks at 20 mbps, stride 5, 2000 objects of 3000 subobjects at
// 100 mbps (M = 5), fragment = one 1.512 MB cylinder (interval
// 0.6048 s), one 40 mbps tertiary device.
func Table3Config(stations int, distMean float64, seed uint64) Config {
	return Config{
		D:                 1000,
		K:                 5,
		CapacityFragments: 3000,
		Objects:           2000,
		Subobjects:        3000,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          1,
		DistMean:          20,
		Seed:              seed,
		WarmupIntervals:   20000,
		MeasureIntervals:  60000,
	}.withWorkload(stations, distMean)
}

func (c Config) withWorkload(stations int, distMean float64) Config {
	c.Stations = stations
	c.DistMean = distMean
	return c
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.D <= 0:
		return fmt.Errorf("sched: D must be positive")
	case c.K < 1 || c.K > c.D:
		return fmt.Errorf("sched: stride %d out of range [1, %d]", c.K, c.D)
	case c.M < 1 || c.M > c.D:
		return fmt.Errorf("sched: M %d out of range [1, %d]", c.M, c.D)
	case c.CapacityFragments <= 0:
		return fmt.Errorf("sched: capacity must be positive")
	case c.Objects <= 0 || c.Subobjects <= 0:
		return fmt.Errorf("sched: database must be non-empty")
	case c.BDisk <= 0:
		return fmt.Errorf("sched: disk bandwidth must be positive")
	case c.FragmentBytes <= 0:
		return fmt.Errorf("sched: fragment size must be positive")
	case c.Stations <= 0:
		return fmt.Errorf("sched: need at least one station")
	case c.DistMean <= 1:
		return fmt.Errorf("sched: distribution mean must exceed 1")
	case c.MeasureIntervals <= 0:
		return fmt.Errorf("sched: measurement window must be positive")
	case c.WarmupIntervals < 0:
		return fmt.Errorf("sched: warmup must be non-negative")
	case c.ThinkMeanSeconds < 0:
		return fmt.Errorf("sched: think time must be non-negative")
	case c.PlaceRetryLimit < 0:
		return fmt.Errorf("sched: place retry limit must be non-negative")
	case c.Shards < 0:
		return fmt.Errorf("sched: shard count must be non-negative")
	case c.Workers < 0:
		return fmt.Errorf("sched: worker count must be non-negative")
	case c.ZipfSkew < 0:
		return fmt.Errorf("sched: zipf skew must be non-negative")
	case c.ArrivalsPerHour < 0:
		return fmt.Errorf("sched: arrival rate must be non-negative")
	case c.ArrivalsPerHour > 0 && c.ThinkMeanSeconds > 0:
		return fmt.Errorf("sched: open arrivals and think time are mutually exclusive")
	case c.ExternalArrivals && c.ArrivalsPerHour > 0:
		return fmt.Errorf("sched: external arrivals and an own Poisson stream are mutually exclusive")
	case c.ExternalArrivals && c.ThinkMeanSeconds > 0:
		return fmt.Errorf("sched: external arrivals and think time are mutually exclusive")
	case c.ZipfFlipInterval < 0:
		return fmt.Errorf("sched: zipf flip interval must be non-negative")
	}
	for _, id := range c.PreloadObjects {
		if id < 0 || id >= c.Objects {
			return fmt.Errorf("sched: preload object %d out of range [0, %d)", id, c.Objects)
		}
	}
	if err := c.Faults.Validate(c.D); err != nil {
		return err
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.Degrees != nil {
		if len(c.Degrees) != c.Objects {
			return fmt.Errorf("sched: %d degrees for %d objects", len(c.Degrees), c.Objects)
		}
		for i, m := range c.Degrees {
			if m < 1 || m > c.D {
				return fmt.Errorf("sched: degree %d of object %d out of range [1, %d]", m, i, c.D)
			}
		}
	}
	return c.Tertiary.Validate()
}

// IntervalSeconds returns the duration of one time interval:
// FragmentBytes·8 / BDisk (0.6048 s for Table 3).
func (c Config) IntervalSeconds() float64 {
	return c.FragmentBytes * 8 / c.BDisk
}

// Degree returns the degree of declustering of object id.
func (c Config) Degree(id int) int {
	if c.Degrees != nil {
		return c.Degrees[id]
	}
	return c.M
}

// ObjectBits returns the size of one database object in bits:
// Subobjects × M fragments.
func (c Config) ObjectBits() float64 {
	return c.FragmentBytes * 8 * float64(c.M) * float64(c.Subobjects)
}

// objectBitsOf returns the size of object id in bits.
func (c Config) objectBitsOf(id int) float64 {
	return c.FragmentBytes * 8 * float64(c.Degree(id)) * float64(c.Subobjects)
}

// DisplayIntervals returns the display length of one object: one
// interval per subobject.
func (c Config) DisplayIntervals() int { return c.Subobjects }

// MaterializeIntervals returns the number of time intervals one
// materialization of a default-degree object occupies the tertiary
// device.
func (c Config) MaterializeIntervals() int {
	return c.materializeIntervalsFor(c.ObjectBits())
}

// MaterializeIntervalsOf returns the staging time of object id.
func (c Config) MaterializeIntervalsOf(id int) int {
	return c.materializeIntervalsFor(c.objectBitsOf(id))
}

func (c Config) materializeIntervalsFor(bits float64) int {
	secs := c.Tertiary.MaterializeSeconds(bits, c.TapeLayout, c.IntervalSeconds())
	iv := c.IntervalSeconds()
	n := int(secs / iv)
	if float64(n)*iv < secs {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultPreload returns how many of the most popular objects fit on
// the farm: floor(D·capacity / (M·N)).
func (c Config) DefaultPreload() int {
	perObject := c.M * c.Subobjects
	n := c.D * c.CapacityFragments / perObject
	if n > c.Objects {
		n = c.Objects
	}
	return n
}

// faultHiccupLimitOrDefault resolves the configured hiccup tolerance:
// 0 means the default of 2 consecutive degraded intervals, negative
// means abort on the first one.
func (c Config) faultHiccupLimitOrDefault() int {
	switch {
	case c.FaultHiccupLimit > 0:
		return c.FaultHiccupLimit
	case c.FaultHiccupLimit < 0:
		return 0
	default:
		return 2
	}
}

// Result is the outcome of one run.
type Result = metrics.Run
