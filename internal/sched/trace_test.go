package sched

import (
	"strings"
	"testing"
)

func TestTraceEventsBalance(t *testing.T) {
	cfg := smallConfig(8, 10)
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	var lastInterval int
	e.SetTracer(func(ev Event) {
		counts[ev.Kind]++
		if ev.Interval < lastInterval {
			t.Errorf("trace time went backwards: %d after %d", ev.Interval, lastInterval)
		}
		lastInterval = ev.Interval
	})
	res := e.Run()

	// Every admission eventually completes or is still active; within
	// the whole run admits >= completes and requests >= admits.
	if counts[EvAdmit] < counts[EvComplete] {
		t.Errorf("admits (%d) < completes (%d)", counts[EvAdmit], counts[EvComplete])
	}
	if counts[EvRequest] < counts[EvAdmit] {
		t.Errorf("requests (%d) < admits (%d)", counts[EvRequest], counts[EvAdmit])
	}
	// Materialization starts and ends pair up to within one in flight.
	if d := counts[EvMatStart] - counts[EvMatEnd]; d < 0 || d > 1 {
		t.Errorf("mat starts %d vs ends %d", counts[EvMatStart], counts[EvMatEnd])
	}
	// The run's own counters agree with the trace.  The trace covers
	// warm-up too, so it can only exceed the window counters.
	if counts[EvComplete] < res.Displays {
		t.Errorf("trace completes %d < window displays %d", counts[EvComplete], res.Displays)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	cfg := smallConfig(2, 10)
	cfg.WarmupIntervals, cfg.MeasureIntervals = 10, 50
	e, err := NewStriped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No tracer installed: Run must not panic on emit.
	_ = e.Run()
}

func TestEventString(t *testing.T) {
	e := Event{Interval: 42, Kind: EvAdmit, Object: 7, Station: 3, Detail: "first=0 tmax=0"}
	s := e.String()
	for _, want := range []string{"42", "admit", "obj=7", "station=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string missing %q: %s", want, s)
		}
	}
	noStation := Event{Interval: 1, Kind: EvEvict, Object: 9, Station: -1}
	if strings.Contains(noStation.String(), "station") {
		t.Error("station rendered for station-less event")
	}
	for k := EvRequest; k <= EvCoalesce; k++ {
		if strings.Contains(k.String(), "EventKind") {
			t.Errorf("kind %d missing a name", int(k))
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
