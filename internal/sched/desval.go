package sched

import (
	"fmt"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/vdisk"
	"github.com/mmsim/staggered/internal/workload"
)

// desval is a second, independently structured implementation of the
// striped throughput model: a CSIM-style process-oriented simulation
// on the sim kernel, with one process per display station plus a
// scheduler and a tertiary process — the architecture the paper's own
// CSIM program would have used.  It exists purely to cross-validate
// the interval-quantized Striped engine: both implementations must
// agree on throughput to within a small tolerance (they may order
// same-interval events differently).
//
// Scope: the Figure 8 configuration — contiguous admission (k = M),
// single media type, zero think time.
type desval struct {
	cfg    Config
	k      *sim.Kernel
	layout core.Layout
	store  *core.Store
	lfu    *policy.LFU
	tman   *tertiary.Manager
	gen    *workload.Generator

	vbusy []int32

	queue  []desreq
	pinned map[int]int
	active map[int]int // object -> display count
	ready  map[int]bool

	staging    int // object being staged, -1 when idle
	stageVids  []int
	stageBegun bool

	intervalOf func() int // current interval number

	// window statistics
	measuring bool
	completed int
	mats      int
	hiccups   int
}

type desreq struct {
	station int
	object  int
	done    *sim.Signal
}

// RunDESValidation runs the process-oriented model and returns the
// displays completed during the measurement window.
func RunDESValidation(cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if cfg.Fragmented || cfg.Coalescing || cfg.Degrees != nil || cfg.ThinkMeanSeconds != 0 || !cfg.Faults.Empty() {
		return 0, fmt.Errorf("sched: DES validation model supports the base Figure 8 configuration only")
	}
	layout, err := core.NewLayout(cfg.D, cfg.K)
	if err != nil {
		return 0, err
	}
	store, err := core.NewStore(layout, cfg.CapacityFragments)
	if err != nil {
		return 0, err
	}
	gen, err := workload.NewGenerator(rng.NewSource(cfg.Seed), cfg.Objects, cfg.DistMean, cfg.Stations)
	if err != nil {
		return 0, err
	}
	k := sim.New()
	iv := cfg.IntervalSeconds()
	e := &desval{
		cfg:    cfg,
		k:      k,
		layout: layout,
		store:  store,
		lfu:    policy.NewLFU(),
		tman:   tertiary.NewManager(),
		gen:    gen,
		vbusy:  make([]int32, cfg.D),
		pinned: make(map[int]int),
		active: make(map[int]int),
		ready:  make(map[int]bool),
		intervalOf: func() int {
			return int(float64(k.Now())/iv + 0.5)
		},
	}
	for i := range e.vbusy {
		e.vbusy[i] = freeSlot
	}
	e.staging = -1

	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.DefaultPreload()
	}
	for _, id := range gen.TopObjects(preload) {
		if _, err := e.store.Place(id, cfg.M, cfg.Subobjects); err != nil {
			break
		}
		e.ready[id] = true
	}

	// One process per display station: draw, submit, wait, repeat.
	for s := 0; s < cfg.Stations; s++ {
		s := s
		k.Spawn(fmt.Sprintf("station-%d", s), func(p *sim.Process) {
			for {
				obj := e.gen.Draw(s)
				e.lfu.Touch(obj)
				done := e.k.NewSignal(fmt.Sprintf("done-%d", s))
				e.queue = append(e.queue, desreq{station: s, object: obj, done: done})
				e.pinned[obj]++
				p.Wait(done) // fires after the display's last subobject
				if e.measuring {
					e.completed++
				}
			}
		})
	}

	// The centralized scheduler: at every interval boundary, first
	// advance the tertiary pipeline (the interval engine's ordering),
	// then admit waiting displays.
	k.Spawn("scheduler", func(p *sim.Process) {
		for {
			e.stepTertiary(iv)
			e.admit()
			p.Hold(sim.Time(iv))
		}
	})

	warmEnd := sim.Time(iv) * sim.Time(cfg.WarmupIntervals)
	k.At(warmEnd, func() { e.measuring = true })
	horizon := sim.Time(iv) * sim.Time(cfg.WarmupIntervals+cfg.MeasureIntervals)
	k.Run(horizon)
	if e.hiccups != 0 {
		return e.completed, fmt.Errorf("sched: DES validation model recorded %d hiccups", e.hiccups)
	}
	return e.completed, nil
}

// stepTertiary starts the next staging when the device is idle and a
// request can secure space and write disks; the staging's completion
// is a scheduled event.
func (e *desval) stepTertiary(iv float64) {
	if e.stageBegun {
		return // completion event pending
	}
	if e.staging < 0 {
		id, ok := e.tman.StartNext()
		if !ok {
			return
		}
		e.staging = id
	}
	id := e.staging
	if !e.stageReady(id) {
		return // retry next interval
	}
	vids := e.stageClaim(id)
	e.stageBegun = true
	e.k.After(sim.Time(iv)*sim.Time(e.cfg.MaterializeIntervals()), func() {
		for _, v := range vids {
			e.vbusy[v] = freeSlot
		}
		e.ready[id] = true
		if _, err := e.tman.Finish(); err != nil {
			e.hiccups++
		}
		if e.measuring {
			e.mats++
		}
		e.staging = -1
		e.stageBegun = false
	})
}

// stageReady reports whether object id has space on the farm (evicting
// cold objects as needed).
func (e *desval) stageReady(id int) bool {
	if e.store.Resident(id) {
		return e.stageDisksFree(id)
	}
	need := e.cfg.M * e.cfg.Subobjects
	for e.store.FreeFragments() < need {
		var candidates []int
		for _, rid := range e.store.ResidentIDs() {
			if e.ready[rid] && e.active[rid] == 0 && e.pinned[rid] == 0 && !e.tman.Pending(rid) && rid != e.staging {
				candidates = append(candidates, rid)
			}
		}
		victim, ok := e.lfu.Victim(candidates)
		if !ok {
			return false
		}
		delete(e.ready, victim)
		if err := e.store.Evict(victim); err != nil {
			e.hiccups++
			return false
		}
	}
	if _, err := e.store.Place(id, e.cfg.M, e.cfg.Subobjects); err != nil {
		return false
	}
	return e.stageDisksFree(id)
}

func (e *desval) stageDisksFree(id int) bool {
	p, ok := e.store.Placement(id)
	if !ok {
		return false
	}
	w := e.cfg.Tertiary.DisksOccupied(e.cfg.BDisk)
	if w > e.cfg.M {
		w = e.cfg.M
	}
	t := e.intervalOf()
	for j := 0; j < w; j++ {
		v := vdisk.VirtualAt((p.First+j)%e.cfg.D, t, e.cfg.K, e.cfg.D)
		if e.vbusy[v] != freeSlot {
			return false
		}
	}
	return true
}

func (e *desval) stageClaim(id int) []int {
	p, _ := e.store.Placement(id)
	w := e.cfg.Tertiary.DisksOccupied(e.cfg.BDisk)
	if w > e.cfg.M {
		w = e.cfg.M
	}
	t := e.intervalOf()
	vids := make([]int, w)
	for j := 0; j < w; j++ {
		v := vdisk.VirtualAt((p.First+j)%e.cfg.D, t, e.cfg.K, e.cfg.D)
		e.vbusy[v] = matOwner
		vids[j] = v
	}
	return vids
}

// admit scans the request queue in arrival order, starting every
// display whose disks are free at the current interval.
func (e *desval) admit() {
	t := e.intervalOf()
	iv := e.cfg.IntervalSeconds()
	kept := e.queue[:0]
	for _, r := range e.queue {
		if !e.ready[r.object] {
			e.tman.Request(r.object)
			kept = append(kept, r)
			continue
		}
		pl, ok := e.store.Placement(r.object)
		if !ok {
			delete(e.ready, r.object)
			e.tman.Request(r.object)
			kept = append(kept, r)
			continue
		}
		vids := make([]int, e.cfg.M)
		free := true
		for j := 0; j < e.cfg.M; j++ {
			v := vdisk.VirtualAt((pl.First+j)%e.cfg.D, t, e.cfg.K, e.cfg.D)
			if e.vbusy[v] != freeSlot {
				free = false
				break
			}
			vids[j] = v
		}
		if !free {
			kept = append(kept, r)
			continue
		}
		// Start the display: claim virtual disks, schedule their
		// release and the station's completion.
		r := r
		for _, v := range vids {
			e.vbusy[v] = int32(r.station) // owner tag; only used for assertions
		}
		e.active[r.object]++
		e.pinned[r.object]--
		if e.pinned[r.object] == 0 {
			delete(e.pinned, r.object)
		}
		dur := sim.Time(iv) * sim.Time(e.cfg.Subobjects)
		obj := r.object
		e.k.After(dur, func() {
			for _, v := range vids {
				e.vbusy[v] = freeSlot
			}
			e.active[obj]--
			if e.active[obj] == 0 {
				delete(e.active, obj)
			}
			r.done.Fire()
		})
	}
	e.queue = kept
}
