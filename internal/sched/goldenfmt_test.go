package sched

import "github.com/mmsim/staggered/internal/metrics"

// legacyResult mirrors the Result field set the golden dumps were
// recorded with (before the degraded-mode counters were added), in
// the exact declaration order, so %+v of a projection reproduces the
// pinned lines byte for byte.  On a fault-free run the projected
// fields carry everything the run produced — the new counters are all
// zero by construction (asserted by TestEmptyFaultPlanGolden), except
// Requests, which existed implicitly as workload traffic and was
// never dumped.
type legacyResult struct {
	Technique string
	Stations  int
	DistMean  float64

	WarmupSeconds  float64
	MeasureSeconds float64

	Displays        int
	Materializa     int
	Replications    int
	Hiccups         int
	Coalescings     int
	TertiaryBusy    float64
	DiskBusy        float64
	UniqueResidents int

	Latency metrics.Tally
}

// legacyView projects a Result onto the pinned golden field set.
func legacyView(r Result) legacyResult {
	return legacyResult{
		Technique:       r.Technique,
		Stations:        r.Stations,
		DistMean:        r.DistMean,
		WarmupSeconds:   r.WarmupSeconds,
		MeasureSeconds:  r.MeasureSeconds,
		Displays:        r.Displays,
		Materializa:     r.Materializa,
		Replications:    r.Replications,
		Hiccups:         r.Hiccups,
		Coalescings:     r.Coalescings,
		TertiaryBusy:    r.TertiaryBusy,
		DiskBusy:        r.DiskBusy,
		UniqueResidents: r.UniqueResidents,
		Latency:         r.Latency,
	}
}
