package sched

import (
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

// request is one station's pending object reference.
type request struct {
	station int
	object  int
	arrived int // interval
}

// Technique is the policy half of an interval engine: everything that
// differs between the striping family (virtual-disk-granular claims,
// staggered placement probes, LFU whole-object eviction) and the
// virtual-data-replication baseline (cluster-granular claims, dynamic
// replication, marginal-value replica eviction).  The Engine owns the
// mechanism — workload wake-ups, the request queue, think-time
// reissue, window counters, and Result assembly — and calls the
// technique at the four points of an interval where policy decides
// what happens.
//
// Implementations live in this package and are exposed through the
// technique registry (see registry.go); they hold their own stores,
// occupancy tables, and event buckets, and reach shared state through
// the Engine they are bound to.
type Technique interface {
	// name returns the display name reported in Result.Technique.
	name() string
	// bind wires the technique to its engine: validate geometry,
	// allocate stores and event buckets, and preload the farm.
	bind(e *Engine) error
	// onEnqueue observes a newly queued reference, after the engine
	// has recorded it (queue, pin count, LFU touch, trace event).
	onEnqueue(req request)
	// interval runs one interval of policy work in the engine's fixed
	// phase order — claim endings due now, one tick of tertiary
	// materialization, the admission scan, and any end-of-interval
	// work (Algorithm 2 coalescing) — and returns the number of disks
	// occupied during the interval, the integrand of the farm-busy
	// statistic.  It is a single dispatch per interval so the phases
	// stay statically-dispatched (and inlinable) inside the
	// implementation: the engines run millions of intervals per
	// sweep.
	interval() int
	// uniqueResidents counts the distinct objects on disk, for the
	// end-of-run Result.
	uniqueResidents() int
}

// Engine is the shared mechanism of the interval engines: the
// interval loop, the station wake-up wheel, the admission queue, the
// window counters, and Result assembly, parameterized by a Technique
// that supplies placement, claim granularity, materialization
// footprint, and replacement policy.  All per-interval work is
// event-driven (see the technique implementations); an interval in
// which nothing happens costs O(1).
type Engine struct {
	cfg  Config
	tech Technique

	lfu   *policy.LFU
	tman  *tertiary.Manager
	gen   *workload.Generator
	stn   *workload.Stations
	think []*rng.Stream // per-station think-time streams

	queue        []request
	queueScratch []request
	pinned       []int               // object -> queued request count
	wakeups      *sim.TickWheel[int] // interval -> stations whose think time ends
	wakeupBuf    []int               // reused Due drain buffer
	reissueBuf   []int               // stations to reissue after completions

	now    int
	tracer Tracer

	// Counters (window handling in Run).
	completed    int
	materialized int
	coalescings  int
	replications int
	hiccups      int
	admitted     []float64 // admission latencies in seconds
	busyArea     float64   // disk-busy integral in disk·intervals
	tertBusy     int       // tertiary-busy intervals
}

// NewEngine builds an engine running the given technique.  Most
// callers should go through the registry (NewEngineFor) or the kept
// NewStriped/NewVDR constructors instead.
func NewEngine(cfg Config, tech Technique) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(rng.NewSource(cfg.Seed), cfg.Objects, cfg.DistMean, cfg.Stations)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		tech:    tech,
		lfu:     policy.NewLFU(),
		tman:    tertiary.NewManager(),
		gen:     gen,
		stn:     workload.NewStations(gen),
		pinned:  make([]int, cfg.Objects),
		wakeups: sim.NewTickWheel[int](),
	}
	if cfg.ThinkMeanSeconds > 0 {
		src := rng.NewSource(cfg.Seed)
		e.think = make([]*rng.Stream, cfg.Stations)
		for i := range e.think {
			e.think[i] = src.StreamN("think", i)
		}
	}
	if err := tech.bind(e); err != nil {
		return nil, err
	}
	return e, nil
}

// Config returns the configuration the engine runs.
func (e *Engine) Config() Config { return e.cfg }

// TechniqueName returns the display name of the engine's technique.
func (e *Engine) TechniqueName() string { return e.tech.name() }

// enqueue issues a new reference for station s.
func (e *Engine) enqueue(s int) {
	r := e.stn.Issue(s, float64(e.now)*e.cfg.IntervalSeconds())
	req := request{station: r.Station, object: r.Object, arrived: e.now}
	e.queue = append(e.queue, req)
	e.pinned[req.object]++
	e.lfu.Touch(req.object)
	e.emit(EvRequest, req.object, req.station, "")
	e.tech.onEnqueue(req)
}

// reissue starts station s's next request, after its think time when
// one is configured.
func (e *Engine) reissue(s int) {
	if e.cfg.ThinkMeanSeconds <= 0 {
		e.enqueue(s)
		return
	}
	secs := e.think[s].Exp(e.cfg.ThinkMeanSeconds)
	delay := int(secs / e.cfg.IntervalSeconds())
	if delay < 1 {
		delay = 1
	}
	e.wakeups.Add(e.now+delay, s)
}

// step advances the simulation by one interval: wake-ups, then the
// technique's policy work (claim endings, tertiary progress,
// admissions, end-of-interval work), then the busy integral — the
// same event order CSIM's process scheduling yields for this model.
func (e *Engine) step() {
	e.wakeupBuf = e.wakeups.Due(e.now, e.wakeupBuf[:0])
	for _, st := range e.wakeupBuf {
		e.enqueue(st)
	}
	e.busyArea += float64(e.tech.interval())
	e.now++
}

// Run executes warm-up and measurement and returns the statistics.
func (e *Engine) Run() Result {
	if e.now != 0 {
		panic("sched: Run called twice")
	}
	for s := 0; s < e.cfg.Stations; s++ {
		e.enqueue(s)
	}
	for e.now < e.cfg.WarmupIntervals {
		e.step()
	}
	// Reset window counters.
	e.completed, e.materialized, e.coalescings, e.replications = 0, 0, 0, 0
	e.admitted = e.admitted[:0]
	e.busyArea, e.tertBusy = 0, 0

	end := e.cfg.WarmupIntervals + e.cfg.MeasureIntervals
	for e.now < end {
		e.step()
	}

	res := Result{
		Technique:       e.tech.name(),
		Stations:        e.cfg.Stations,
		DistMean:        e.cfg.DistMean,
		WarmupSeconds:   float64(e.cfg.WarmupIntervals) * e.cfg.IntervalSeconds(),
		MeasureSeconds:  float64(e.cfg.MeasureIntervals) * e.cfg.IntervalSeconds(),
		Displays:        e.completed,
		Materializa:     e.materialized,
		Replications:    e.replications,
		Hiccups:         e.hiccups,
		Coalescings:     e.coalescings,
		TertiaryBusy:    float64(e.tertBusy) / float64(e.cfg.MeasureIntervals),
		DiskBusy:        e.busyArea / (float64(e.cfg.MeasureIntervals) * float64(e.cfg.D)),
		UniqueResidents: e.tech.uniqueResidents(),
	}
	for _, l := range e.admitted {
		res.Latency.Add(l)
	}
	return res
}
