package sched

import (
	"context"
	"runtime/pprof"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/profiling"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

// request is one station's pending object reference.
type request struct {
	station int
	object  int
	arrived int // interval
}

// Technique is the policy half of an interval engine: everything that
// differs between the striping family (virtual-disk-granular claims,
// staggered placement probes, LFU whole-object eviction) and the
// virtual-data-replication baseline (cluster-granular claims, dynamic
// replication, marginal-value replica eviction).  The Engine owns the
// mechanism — workload wake-ups, the request queue, think-time
// reissue, window counters, and Result assembly — and calls the
// technique at the four points of an interval where policy decides
// what happens.
//
// Implementations live in this package and are exposed through the
// technique registry (see registry.go); they hold their own stores,
// occupancy tables, and event buckets, and reach shared state through
// the Engine they are bound to.
type Technique interface {
	// name returns the display name reported in Result.Technique.
	name() string
	// bind wires the technique to its engine: validate geometry,
	// allocate stores and event buckets, and preload the farm.
	bind(e *Engine) error
	// onEnqueue observes a newly queued reference, after the engine
	// has recorded it (queue, pin count, LFU touch, trace event).
	onEnqueue(req request)
	// onFault observes one effective fault transition, after the
	// engine has updated its masks: reconcile technique state — abort
	// or degrade in-flight work touching the faulted component.  The
	// engine dedups the plan, so a DiskFail only arrives for an up
	// disk, a DiskRepair only for a down one, and so on.
	onFault(ev fault.Event)
	// activeDisplays counts the displays currently in delivery, for
	// the chaos harness's conservation invariant
	// (admitted = completed + aborted + active).
	activeDisplays() int
	// interval runs one interval of policy work in the engine's fixed
	// phase order — claim endings due now, one tick of tertiary
	// materialization, the admission scan, and any end-of-interval
	// work (Algorithm 2 coalescing) — and returns the number of disks
	// occupied during the interval, the integrand of the farm-busy
	// statistic.  It is a single dispatch per interval so the phases
	// stay statically-dispatched (and inlinable) inside the
	// implementation: the engines run millions of intervals per
	// sweep.
	interval() int
	// uniqueResidents counts the distinct objects on disk, for the
	// end-of-run Result.
	uniqueResidents() int
	// holdsObject reports whether the object is playable from disk
	// right now — resident and fully materialized — for the cluster
	// layer's popularity dispatch (route to a replica holder).
	holdsObject(id int) bool
	// killActive aborts every in-flight policy job — displays, copies,
	// the staging pipeline — and resets queue-derived technique state
	// (the engine drains its request queue immediately after, so pin
	// counts are about to go to zero).  Part of Engine.Kill.
	killActive()
	// onRevive reconciles technique clocks with a restarted engine:
	// e.now has already jumped past the dead window, so any
	// per-interval TickWheel the technique drives must Reset to
	// e.now-1.  Disk contents survive the outage (the transient-fault
	// model DiskRepair uses), so stores stay as they were.
	onRevive()
	// adoptObject places a full copy of the object on this member as
	// part of the cluster's replica-healing pass, without consuming the
	// tertiary device (the healing budget is the bandwidth model).  It
	// reports whether the copy was actually placed.
	adoptObject(id int) bool
}

// Engine is the shared mechanism of the interval engines: the
// interval loop, the station wake-up wheel, the admission queue, the
// window counters, and Result assembly, parameterized by a Technique
// that supplies placement, claim granularity, materialization
// footprint, and replacement policy.  All per-interval work is
// event-driven (see the technique implementations); an interval in
// which nothing happens costs O(1).
type Engine struct {
	cfg  Config
	tech Technique

	lfu   *policy.LFU
	tman  *tertiary.Manager
	gen   *workload.Generator
	stn   *workload.Stations
	think []rng.Stream // per-station think-time streams (dense, sequential path)

	// Sharded execution (nil on the default sequential path).
	shards  *shardSet
	pool    *workerPool // live between Prime and Close when Workers > 1
	ownPool bool        // pool created by Prime (vs attached by a cluster driver)
	primed  bool        // Prime has run: stations seeded, pool live

	queue      []request
	pinned     []int32             // object -> queued request count
	wakeups    *sim.TickWheel[int] // interval -> stations whose think time ends
	wakeupBuf  []int               // reused Due drain buffer
	reissueBuf []int               // stations to reissue after completions

	now    int
	tracer Tracer

	// phaseLabels is latched at construction when a CPU profile is
	// being collected; the interval loop branches to pprof-labeled
	// phase wrappers only then, so the unprofiled hot path pays one
	// bool check and zero allocations.
	phaseLabels bool

	// Cache tier (DESIGN.md §12).  All of this stays nil/zero when
	// Config.Cache is disabled, so the disk-only path pays one nil
	// check per hook and the golden dumps are untouched.
	cache            *cache.Tier
	followerWheel    *sim.TickWheel[followerRef] // follower display completions
	followerBuf      []followerRef               // reused Due drain buffer
	followerGen      []int32                     // station -> generation, stales wheel entries
	followerActive   []bool                      // station -> follower display in flight
	followerObj      []int32                     // station -> object the follower views
	activeFollowers  int
	pendingFollowers int
	batchAnchor      []int32 // object -> arrival interval anchoring the open batch
	detachBuf        []int32
	pendingBuf       []cache.Pending

	// Open Poisson arrivals (nil = the paper's closed loop).
	open *openArrivals

	// Fault state.  All slices stay nil on a fault-free run (empty
	// plan) so the hot path pays a single nil check per interval.
	faultEvents  []fault.Event // sorted plan, nil when empty
	faultCursor  int
	diskDown     []bool
	downCount    int
	diskSlow     []bool
	slowCount    int
	faultedDisks []int32 // sorted disks currently down or slow: the active set of the degraded scans
	tertDown    bool
	maskEpoch   int // bumped on every effective disk up/down flip
	hiccupLimit int // consecutive degraded intervals before abort

	// Counters (window handling in Run).
	completed    int
	materialized int
	coalescings  int
	replications int
	hiccups      int
	admitted     []float64 // admission latencies in seconds
	busyArea     float64   // disk-busy integral in disk·intervals
	tertBusy     int       // tertiary-busy intervals

	// Degraded-mode window counters.
	requests    int
	degHiccups  int
	aborted     int
	orphaned    int // of aborted: drained by a whole-server Kill
	rejectedDeg int
	starved     int

	// Server-failover state (DESIGN.md §14).  All zero on a run that is
	// never killed, and Snapshot's normalization then reduces to the
	// pinned golden formulas exactly.
	dead         bool
	diedAt       int // interval Kill took effect
	deadMeasured int // measured intervals lost to completed dead spans

	// Cache-tier window counters.
	servedCache      int
	batchedFollowers int
	cacheHitBytes    int64

	// Lifetime counters (never window-reset): the chaos harness's
	// conservation invariant and RunChecked's starvation check must see
	// warm-up activity too.
	admittedTotal  int
	completedTotal int
	abortedTotal   int
	starvedTotal   int
}

// NewEngine builds an engine running the given technique.  Most
// callers should go through the registry (NewEngineFor) or the kept
// NewStriped/NewVDR constructors instead.
func NewEngine(cfg Config, tech Technique) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var gen *workload.Generator
	var err error
	if cfg.ZipfSkew > 0 {
		var dist *rng.Discrete
		if dist, err = rng.Zipf(cfg.Objects, cfg.ZipfSkew); err == nil {
			gen, err = workload.NewGeneratorDist(rng.NewSource(cfg.Seed), dist, cfg.Stations)
		}
	} else {
		gen, err = workload.NewGenerator(rng.NewSource(cfg.Seed), cfg.Objects, cfg.DistMean, cfg.Stations)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		tech:        tech,
		lfu:         policy.NewLFU(),
		tman:        tertiary.NewManager(),
		gen:         gen,
		stn:         workload.NewStations(gen),
		pinned:      make([]int32, cfg.Objects),
		wakeups:     sim.NewTickWheel[int](),
		phaseLabels: profiling.PhaseLabelsEnabled(),
	}
	if cfg.Shards > 1 {
		e.shards = newShardSet(cfg.Seed, cfg.Stations, cfg.Shards)
	}
	if cfg.ThinkMeanSeconds > 0 && e.shards == nil {
		src := rng.NewSource(cfg.Seed)
		e.think = make([]rng.Stream, cfg.Stations)
		for i := range e.think {
			e.think[i] = *src.StreamN("think", i)
		}
	}
	if !cfg.Faults.Empty() {
		e.faultEvents = cfg.Faults.Events()
		e.diskDown = make([]bool, cfg.D)
		e.diskSlow = make([]bool, cfg.D)
		e.hiccupLimit = cfg.faultHiccupLimitOrDefault()
	}
	if cfg.Cache.Enabled() {
		e.bindCache()
	}
	if cfg.ArrivalsPerHour > 0 || cfg.ExternalArrivals {
		e.open = newOpenArrivals(cfg)
	}
	if err := tech.bind(e); err != nil {
		return nil, err
	}
	return e, nil
}

// parallel runs fn(i) for every i in [0, n) — on the worker pool when
// one is active, inline otherwise.  fn must only write state owned by
// index i.  Techniques use it for read-only pre-passes (the striped
// admission annotations, DESIGN.md §11) that fill per-index buffers a
// sequential consumer then re-validates.
func (e *Engine) parallel(n int, fn func(i int)) {
	if e.pool != nil {
		e.pool.run(n, fn)
		return
	}
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// labeled runs fn under a pprof "phase" label so -cpuprofile output
// attributes interval time to admit/finishDue/merge/cache instead of
// one flat run frame.  Callers must branch on Engine.phaseLabels
// first: the label machinery allocates, so the unprofiled hot path
// never enters here.
func labeled(name string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) { fn() })
}

// workers returns the effective intra-run worker count.
func (e *Engine) workers() int {
	if e.cfg.Workers > 1 {
		return e.cfg.Workers
	}
	return 1
}

// Config returns the configuration the engine runs.
func (e *Engine) Config() Config { return e.cfg }

// TechniqueName returns the display name of the engine's technique.
func (e *Engine) TechniqueName() string { return e.tech.name() }

// enqueue issues a new reference for station s.
func (e *Engine) enqueue(s int) {
	r := e.stn.Issue(s, float64(e.now)*e.cfg.IntervalSeconds())
	e.record(request{station: r.Station, object: r.Object, arrived: e.now})
}

// record admits a drawn reference into the engine: queue, pin count,
// LFU touch, trace event, technique notification.  It is the merge
// step of the sharded drain and the tail of the sequential enqueue,
// and always runs on the interval goroutine.
func (e *Engine) record(req request) {
	e.requests++
	if e.cache != nil {
		if e.tryCacheServe(req) {
			return
		}
		if e.batchAnchor != nil && e.pinned[req.object] == 0 {
			e.batchAnchor[req.object] = int32(req.arrived)
		}
	}
	e.queue = append(e.queue, req)
	e.pinned[req.object]++
	e.lfu.Touch(req.object)
	e.emit(EvRequest, req.object, req.station, "")
	e.tech.onEnqueue(req)
}

// reissue starts station s's next request, after its think time when
// one is configured.  In sharded mode the think draw comes from the
// owning shard's stream and the wake-up lands on that shard's wheel;
// reissue is only ever called from the sequential phases (merge,
// interval), so the draw order per shard stream is deterministic.
func (e *Engine) reissue(s int) {
	if e.open != nil {
		// Open system: the station goes idle and waits for the next
		// Poisson arrival instead of looping back immediately.
		e.open.idle = append(e.open.idle, s)
		return
	}
	if e.cfg.ThinkMeanSeconds <= 0 {
		e.enqueue(s)
		return
	}
	if e.shards != nil {
		sh := e.shards.shardOf[s]
		secs := e.shards.think[sh].Exp(e.cfg.ThinkMeanSeconds)
		delay := int(secs / e.cfg.IntervalSeconds())
		if delay < 1 {
			delay = 1
		}
		e.shards.wheels[sh].Add(e.now+delay, s)
		return
	}
	secs := e.think[s].Exp(e.cfg.ThinkMeanSeconds)
	delay := int(secs / e.cfg.IntervalSeconds())
	if delay < 1 {
		delay = 1
	}
	e.wakeups.Add(e.now+delay, s)
}

// step advances the simulation by one interval: wake-ups, then the
// technique's policy work (claim endings, tertiary progress,
// admissions, end-of-interval work), then the busy integral — the
// same event order CSIM's process scheduling yields for this model.
func (e *Engine) step() {
	if e.cfg.ZipfFlipInterval > 0 && e.now == e.cfg.ZipfFlipInterval {
		// Popularity churn: rotate the catalog's rank→object mapping
		// before this interval draws anything, on the interval
		// goroutine — the shard drains below happen-after.
		e.gen.FlipHalf()
	}
	if e.faultEvents != nil {
		e.applyFaults()
	}
	if e.cache != nil {
		if e.phaseLabels {
			labeled("cache", e.finishFollowers)
		} else {
			e.finishFollowers()
		}
	}
	if e.open != nil {
		e.drawArrivals()
	}
	if e.shards != nil {
		if e.phaseLabels {
			labeled("merge", e.drainShards)
		} else {
			e.drainShards()
		}
	} else {
		e.wakeupBuf = e.wakeups.Due(e.now, e.wakeupBuf[:0])
		for _, st := range e.wakeupBuf {
			e.enqueue(st)
		}
	}
	e.busyArea += float64(e.tech.interval())
	e.now++
}

// drainShards runs the station-side work of the interval
// shard-parallel — advance each shard's wake-up wheel and draw the
// next reference of every woken station — then merges the issued
// references into the engine in ascending shard order.  The drains
// write only shard-local state (wheel, buffers, the woken stations'
// busy flags and generator streams), so any worker interleaving
// produces the same per-shard pend buffers and the sequential merge
// makes the outcome worker-count independent.
func (e *Engine) drainShards() {
	if e.cfg.ThinkMeanSeconds <= 0 {
		// Zero think time: reissue enqueues directly and the wheels
		// never hold anything — skipping the drain keeps sharded
		// zero-think runs decision-identical to the sequential path.
		return
	}
	now := e.now
	t := float64(now) * e.cfg.IntervalSeconds()
	ss := e.shards
	e.parallel(ss.n, func(s int) {
		ss.drain(s, now, e.stn, t)
	})
	issued := 0
	for s := 0; s < ss.n; s++ {
		for _, r := range ss.pend[s] {
			e.record(request{station: r.Station, object: r.Object, arrived: now})
		}
		issued += len(ss.pend[s])
	}
	e.stn.AddIssued(issued)
}

// applyFaults drains plan events due at or before the current
// interval, updating the masks and notifying the technique of each
// effective transition.  Redundant events (failing a dead disk,
// repairing a live one) are absorbed here so techniques only see real
// state flips.
func (e *Engine) applyFaults() {
	for e.faultCursor < len(e.faultEvents) && e.faultEvents[e.faultCursor].At <= e.now {
		ev := e.faultEvents[e.faultCursor]
		e.faultCursor++
		effective := false
		switch ev.Kind {
		case fault.DiskFail:
			if !e.diskDown[ev.Disk] {
				e.diskDown[ev.Disk] = true
				e.downCount++
				e.maskEpoch++
				effective = true
				if !e.diskSlow[ev.Disk] {
					e.addFaulted(ev.Disk)
				}
			}
		case fault.DiskRepair:
			if e.diskDown[ev.Disk] {
				e.diskDown[ev.Disk] = false
				e.downCount--
				e.maskEpoch++
				effective = true
				if !e.diskSlow[ev.Disk] {
					e.removeFaulted(ev.Disk)
				}
			}
		case fault.SlowStart:
			if !e.diskSlow[ev.Disk] {
				e.diskSlow[ev.Disk] = true
				e.slowCount++
				effective = true
				if !e.diskDown[ev.Disk] {
					e.addFaulted(ev.Disk)
				}
			}
		case fault.SlowEnd:
			if e.diskSlow[ev.Disk] {
				e.diskSlow[ev.Disk] = false
				e.slowCount--
				effective = true
				if !e.diskDown[ev.Disk] {
					e.removeFaulted(ev.Disk)
				}
			}
		case fault.TertiaryFail:
			if !e.tertDown {
				e.tertDown = true
				effective = true
			}
		case fault.TertiaryRepair:
			if e.tertDown {
				e.tertDown = false
				effective = true
			}
		}
		if effective {
			e.emit(EvFault, ev.Disk, int(ev.Kind), ev.Kind.String())
			e.tech.onFault(ev)
		}
	}
}

// addFaulted inserts disk d into the sorted active set of faulted
// disks.  Plans hold at most a handful of concurrent faults, so the
// sorted insert is linear; what matters is that the techniques'
// degraded scans iterate the set in ascending disk order — the same
// order a full O(D) walk visits — touching only faulted disks.
func (e *Engine) addFaulted(d int) {
	i := 0
	for i < len(e.faultedDisks) && int(e.faultedDisks[i]) < d {
		i++
	}
	e.faultedDisks = append(e.faultedDisks, 0)
	copy(e.faultedDisks[i+1:], e.faultedDisks[i:])
	e.faultedDisks[i] = int32(d)
}

// removeFaulted deletes disk d from the faulted active set.
func (e *Engine) removeFaulted(d int) {
	for i, f := range e.faultedDisks {
		if int(f) == d {
			e.faultedDisks = append(e.faultedDisks[:i], e.faultedDisks[i+1:]...)
			return
		}
	}
}

// faultActive reports whether any disk is currently failed or slow —
// the gate on the techniques' per-interval degraded scans.
func (e *Engine) faultActive() bool { return e.downCount > 0 || e.slowCount > 0 }

// diskFaulted reports the degraded state of a physical disk: down
// dominates slow.
func (e *Engine) diskFaulted(d int) (down, slow bool) {
	if e.faultEvents == nil {
		return false, false
	}
	return e.diskDown[d], e.diskSlow[d]
}

// countAbort ends station s's display without counting a completion:
// the display was killed by a fault.  The station rejoins the closed
// loop through the usual reissue path.
func (e *Engine) countAbort(s, object int) {
	e.aborted++
	e.abortedTotal++
	e.stn.Complete(s)
	e.emit(EvAbort, object, s, "")
	e.reissue(s)
	if e.cache != nil {
		e.detachFollowers(s, object)
	}
}

// countReject refuses an admission because the object's layout
// touches a failed disk; the station's reference completes unserved
// and the station rejoins the closed loop.
func (e *Engine) countReject(r request) {
	e.pinned[r.object]--
	e.rejectedDeg++
	e.stn.Complete(r.station)
	e.emit(EvReject, r.object, r.station, "")
	e.reissue(r.station)
	if e.cache != nil && e.pinned[r.object] == 0 {
		e.rejectPending(r.object)
	}
}

// countStarved records a materialization abandoned at the Place retry
// cap.
func (e *Engine) countStarved(object int) {
	e.starved++
	e.starvedTotal++
	e.emit(EvStarve, object, -1, "")
	e.cacheStagingAborted(object)
}

// The steppable primitives below decompose Run into the pieces a
// multi-engine driver needs (DESIGN.md §13): Prime seeds the run,
// StepOne advances exactly one interval, ResetWindow starts a
// measurement window, Snapshot assembles a Result from the counters as
// they stand, and Close releases the worker pool.  Run is re-expressed
// on top of them, so the primitives and the classic entry point cannot
// drift apart — the golden dumps pin both.

// Prime readies the engine to step: it brings up the worker pool (when
// Config.Workers > 1 and no shared pool was attached) and seeds the
// closed-loop stations' first references.  Idempotent; StepOne calls
// it, so callers only need it explicitly when they want the setup cost
// paid at a known point.
func (e *Engine) Prime() {
	if e.primed {
		return
	}
	e.primed = true
	if w := e.workers(); w > 1 && e.pool == nil {
		e.pool = newWorkerPool(w - 1) // the interval goroutine works too
		e.ownPool = true
	}
	if e.open == nil {
		for s := 0; s < e.cfg.Stations; s++ {
			e.enqueue(s)
		}
	}
}

// AttachPool shares an external worker pool with the engine, instead
// of the one Prime would create.  Must precede Prime; a nil or empty
// pool is ignored.  Engines sharing one pool must be stepped from a
// single goroutine (the pool's run call is synchronous, so sequential
// stepping never overlaps two engines' parallel phases).
func (e *Engine) AttachPool(p *Pool) {
	if p == nil || p.p == nil || e.primed {
		return
	}
	e.pool = p.p
}

// Close releases the engine's own worker pool, if Prime created one.
// An attached shared pool is left to its owner.  Safe to call twice;
// the engine must not be stepped afterwards.
func (e *Engine) Close() {
	if e.ownPool && e.pool != nil {
		e.pool.close()
		e.ownPool = false
	}
	e.pool = nil
}

// HasPendingWork reports whether the run's horizon (warm-up plus
// measurement) has not been reached yet.  A dead engine has no work:
// it sits still until Revive or the end of the run.
func (e *Engine) HasPendingWork() bool {
	return !e.dead && e.now < e.cfg.WarmupIntervals+e.cfg.MeasureIntervals
}

// NextEventTime returns the simulated time, in seconds, of the next
// interval StepOne would execute — the engine's position on a shared
// cluster clock.
func (e *Engine) NextEventTime() float64 {
	return float64(e.now) * e.cfg.IntervalSeconds()
}

// Now returns the next interval index to execute.
func (e *Engine) Now() int { return e.now }

// StepOne advances the simulation by exactly one interval.
func (e *Engine) StepOne() {
	e.Prime()
	e.step()
}

// ResetWindow zeroes the window counters, opening a measurement
// window at the current interval.  Run calls it at the warm-up
// boundary; windowed callers (churn re-convergence tests, cluster
// drivers) may call it repeatedly to carve a run into segments.
func (e *Engine) ResetWindow() {
	e.completed, e.materialized, e.coalescings, e.replications = 0, 0, 0, 0
	e.admitted = e.admitted[:0]
	e.busyArea, e.tertBusy = 0, 0
	e.requests, e.degHiccups, e.aborted, e.rejectedDeg, e.starved = 0, 0, 0, 0, 0
	e.orphaned = 0
	e.servedCache, e.batchedFollowers, e.cacheHitBytes = 0, 0, 0
	if e.open != nil {
		e.open.rejected = 0
	}
}

// Run executes warm-up and measurement and returns the statistics.
func (e *Engine) Run() Result {
	if e.primed || e.now != 0 {
		panic("sched: Run called twice")
	}
	e.Prime()
	defer e.Close()
	for e.now < e.cfg.WarmupIntervals {
		e.step()
	}
	e.ResetWindow()
	for e.HasPendingWork() {
		e.step()
	}
	return e.Snapshot()
}

// Snapshot assembles a Result from the window counters as they stand.
// The ratio fields normalize by the full measurement window, so a
// Snapshot taken mid-run (or over a shorter ResetWindow segment)
// reports exact counts but pro-rated utilizations.  A member that
// spent part of the window dead (Kill/Revive) normalizes by the
// intervals it was actually alive, so cluster merges — which weight
// busy ratios by MeasureSeconds — do not dilute a survivor's
// utilization with a corpse's zeros; with no dead span the divisor is
// exactly MeasureIntervals, byte-identical to the pinned goldens.
func (e *Engine) Snapshot() Result {
	meas := e.cfg.MeasureIntervals - e.deadMeasured
	if e.dead {
		meas -= e.deadSpan(e.diedAt, e.cfg.WarmupIntervals+e.cfg.MeasureIntervals)
	}
	tertBusy, diskBusy := 0.0, 0.0
	if meas > 0 {
		tertBusy = float64(e.tertBusy) / float64(meas)
		diskBusy = e.busyArea / (float64(meas) * float64(e.cfg.D))
	}
	res := Result{
		Technique:       e.tech.name(),
		Stations:        e.cfg.Stations,
		DistMean:        e.cfg.DistMean,
		WarmupSeconds:   float64(e.cfg.WarmupIntervals) * e.cfg.IntervalSeconds(),
		MeasureSeconds:  float64(meas) * e.cfg.IntervalSeconds(),
		Displays:        e.completed,
		Materializa:     e.materialized,
		Replications:    e.replications,
		Hiccups:         e.hiccups,
		Coalescings:     e.coalescings,
		TertiaryBusy:    tertBusy,
		DiskBusy:        diskBusy,
		UniqueResidents: e.tech.uniqueResidents(),

		Requests:                e.requests,
		DegradedHiccups:         e.degHiccups,
		AbortedDisplays:         e.aborted,
		OrphanedDisplays:        e.orphaned,
		RejectedDegraded:        e.rejectedDeg,
		StarvedMaterializations: e.starved,

		ServedFromCache:  e.servedCache,
		BatchedFollowers: e.batchedFollowers,
		CacheHitBytes:    e.cacheHitBytes,
	}
	if e.open != nil {
		res.OpenRejected = e.open.rejected
	}
	for _, l := range e.admitted {
		res.Latency.Add(l)
	}
	return res
}

// RunChecked is Run with loud failure modes: a second invocation
// returns ErrAlreadyRun instead of panicking (so cluster drivers and
// sweeps cannot crash on the double-Run footgun), and it returns a
// *StarvationError when any materialization (including during
// warm-up) was abandoned at the Place retry cap, so a sweep that
// silently delivered zero displays becomes a typed error instead of a
// zero row.  The Result is valid when the error is nil or a
// StarvationError.
func (e *Engine) RunChecked() (Result, error) {
	if e.primed || e.now != 0 {
		return Result{}, ErrAlreadyRun
	}
	res := e.Run()
	if e.starvedTotal > 0 {
		return res, &StarvationError{
			Technique: e.tech.name(),
			K:         e.cfg.K,
			M:         e.cfg.M,
			Starved:   e.starvedTotal,
			Displays:  res.Displays,
		}
	}
	return res, nil
}
