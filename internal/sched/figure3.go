package sched

import (
	"fmt"
	"strings"
)

// ScheduledDisplay describes one mid-stream display for the Figure 3
// schedule rendering: object Name is on cluster StartCluster at the
// first rendered interval, about to read the subobject labelled
// "Name(<IndexLabel>+1)", with Remaining subobjects left (0 =
// unbounded within the rendered window).
type ScheduledDisplay struct {
	Name         string
	IndexLabel   string
	StartCluster int
	Remaining    int
}

// ScheduleTable reproduces the presentation of Figure 3: rows are
// time intervals 1..intervals, columns are clusters, and each cell is
// "read X(i+1)" or "idle".  Displays advance one cluster per interval
// (simple striping); a display that runs out of subobjects leaves a
// rotating idle hole, which the paper notes would service newly
// arriving requests.
func ScheduleTable(clusters, intervals int, displays []ScheduledDisplay) ([][]string, error) {
	if clusters <= 0 || intervals <= 0 {
		return nil, fmt.Errorf("sched: schedule needs positive dimensions")
	}
	for _, d := range displays {
		if d.StartCluster < 0 || d.StartCluster >= clusters {
			return nil, fmt.Errorf("sched: display %q starts on cluster %d of %d", d.Name, d.StartCluster, clusters)
		}
	}
	rows := make([][]string, intervals)
	for t := 0; t < intervals; t++ {
		row := make([]string, clusters)
		for i := range row {
			row[i] = "idle"
		}
		for _, d := range displays {
			if d.Remaining > 0 && t >= d.Remaining {
				continue // display has completed
			}
			c := (d.StartCluster + t) % clusters
			if row[c] != "idle" {
				return nil, fmt.Errorf("sched: interval %d cluster %d double-booked (%s vs %s)",
					t+1, c, row[c], d.Name)
			}
			row[c] = fmt.Sprintf("read %s(%s+%d)", d.Name, d.IndexLabel, t+1)
		}
		rows[t] = row
	}
	return rows, nil
}

// Figure3 renders the paper's Figure 3: three displays X, Y, Z on a
// 3-cluster farm with X two subobjects from its end.
func Figure3(intervals int) (string, error) {
	rows, err := ScheduleTable(3, intervals, []ScheduledDisplay{
		{Name: "Z", IndexLabel: "k", StartCluster: 0},
		{Name: "X", IndexLabel: "i", StartCluster: 1, Remaining: 2},
		{Name: "Y", IndexLabel: "j", StartCluster: 2},
	})
	if err != nil {
		return "", err
	}
	width := len("read X(i+99)")
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-4s", ""))
	for c := 0; c < 3; c++ {
		b.WriteString(fmt.Sprintf(" %-*s", width, fmt.Sprintf("CLUSTER %d", c)))
	}
	b.WriteByte('\n')
	for t, row := range rows {
		b.WriteString(fmt.Sprintf("%-4d", t+1))
		for _, cell := range row {
			b.WriteString(fmt.Sprintf(" %-*s", width, cell))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
