package sched

import (
	"fmt"
	"math/bits"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/vdisk"
)

// streamRef addresses one fragment stream of a display inside an
// event bucket: the display's arena slot and the stream index.
type streamRef struct {
	slot int32
	i    int32
}

// stripedTech is the striping family's Technique: simple striping
// (k = M) and staggered striping (any k) share it, differing only in
// the configured stride and in whether Algorithms 1 and 2 are
// enabled.  Occupancy is tracked in virtual-disk space: physical disk
// f at interval t corresponds to virtual disk (f − K·t) mod D, and a
// display's streams own fixed virtual disks for the duration of their
// reads, so bookkeeping is O(1) per stream per transition rather than
// per interval.
//
// All per-interval work is event-driven: stream releases and display
// completions live in interval-keyed buckets (like wakeups), the
// farm-busy integral is maintained incrementally at every
// acquire/release site, and only displays that still have a stream to
// coalesce are visited by Algorithm 2.  An interval in which nothing
// happens costs O(1), independent of D, the number of active
// displays, and the queue length.
//
// Display state is a struct-of-arrays arena (DESIGN.md §11): a display
// is an int32 slot into parallel slices (dStation, dObject, …) and a
// fixed-stride stream arena (sVdisk, sT), not a heap object.  At 20k
// stations that removes per-display allocation and pointer chasing
// from the hot path, and lets event buckets and the occupancy table
// hold 4-byte slots instead of 8-byte pointers.  Slots of contiguous
// (tmax = 0) displays are recycled LIFO after completion; fragmented
// and aborted displays keep their slots, exactly as the old pool kept
// their heap objects, because stale ring entries may still address
// them.
type stripedTech struct {
	eng    *Engine
	cfg    Config
	layout core.Layout
	store  *core.Store

	vbusy    []int32  // virtual disk -> owner display slot, matOwner, or freeSlot
	freeBits []uint64 // bitset of free virtual disks, maintained with vbusy
	busy     int      // count of non-free virtual disks, maintained incrementally
	rot      int      // (K·now) mod D, cached once per interval for vdiskOf

	// Display arena.  Slot s's stream i lives at s·stride+i in the
	// stream arena; stride is the maximum degree of declustering.
	dStation []int32
	dObject  []int32
	dFirst   []int32 // disk of the object's fragment (0,0)
	dTau0    []int32 // admission interval
	dTmax    []int32
	dSeq     []int32 // admission sequence, monotone across slot reuse
	dM       []int32 // stream count (the object's degree)
	dDone    []bool  // delivery completed or aborted
	dDeg     []int32 // consecutive degraded intervals
	dDegAt   []int32 // last degraded interval, -2 = never
	sVdisk    []int32 // stream -> serving virtual disk, -1 released
	sT        []int32 // stream -> alignment delay T_i
	stride    int
	minDegree int // smallest degree any object needs; prepare's farm gate

	nextSeq  int32
	active   int     // displays currently in delivery
	byObject []int32 // object -> active display count

	ready []bool // object resident and fully materialized

	// coldQueued counts queued requests whose object is not ready —
	// the sum of pin counts over not-ready objects, maintained at
	// every enqueue and readiness flip.  Together with the farm-full
	// check it gates the admission scan: when it is zero and the farm
	// cannot fit even the smallest object, the whole scan would re-keep
	// every entry unchanged, so admit skips it entirely.
	coldQueued int

	// probeObj memoizes, per object, the interval its contiguous
	// admission probe last ran.  Within one scan disks only get busier,
	// so once an object's contiguous probe has been consumed this
	// interval — whether it admitted a display onto those very disks or
	// was refuted — every later contiguous probe of the same object
	// must fail; only the fragmented fallback can still start it.
	probeObj []int32

	// Degraded-mode state (only exercised when a fault plan is set).
	playEpoch []int32   // object -> maskEpoch its playability was memoized at
	playOK    []bool    // memoized playability under the current mask
	rejectBuf []request // unplayable admissions, refused after the queue swap

	// Event rings: what fires at a given interval, indexed by
	// interval mod the ring length.  Every event is scheduled at most
	// horizon-1 intervals ahead (one display length plus the maximum
	// startup delay), so slots never collide; slice backings are
	// reused after each firing.  Entries may be stale (a coalescing
	// move reschedules a release); consumers re-validate against the
	// display's current state.
	horizon     int
	releases    [][]streamRef // stream releases due, by interval mod horizon
	completions [][]int32     // delivery ends (display slots), by interval mod horizon
	coalescing  []int32       // displays with a stream still to coalesce
	pool        []int32       // recycled contiguous display slots

	// Sharded finishDue partitioning (DESIGN.md §11), nil when the
	// engine runs unsharded.  Release and completion buckets are kept
	// per owning shard (indexed shard·horizon + interval%horizon) so
	// the drain's sort half can run on the worker pool with no shared
	// writes; the apply half merges shards by admission sequence,
	// reproducing the unsharded processing order exactly — Results are
	// byte-identical at any worker count.
	relShards  [][]streamRef
	compShards [][]int32
	dShard     []int32 // display slot -> owning shard (arena column)
	mergeHeads []int   // per-shard merge cursors (scratch)

	// Admission pre-pass annotations (DESIGN.md §11): per queue index,
	// computed worker-parallel by prepare at the top of admit and
	// consulted by the sequential scan that follows.  Annotations are
	// pure reads of state that cannot change between the two (queued
	// objects are pin-protected from eviction; virtual-disk numbering
	// is fixed within an interval); the scan still re-validates every
	// occupancy and readiness check before committing.
	annEpoch int // interval the annotations were computed at, -1 = none
	annLen   int // annotated queue prefix length
	ann      []int8
	annFirst []int32
	annVids  []int32 // qi·stride+j -> virtual disk of contiguous stream j

	// Reusable scratch buffers (hot path, zero steady-state allocs).
	vidScratch  []int
	tsScratch   []int
	zeroTs      []int
	freeScratch []int
	candScratch []int

	// Tertiary state.
	matObject    int // object being staged, -1 when idle
	matStarted   bool
	matRemaining int
	matVdisks    []int
	matRetries   int  // failed Place attempts for the pending staging
	matNextTry   int  // backoff: no Place attempt before this interval
	matPressured bool // the eviction-pressure fallback already fired
}

const (
	freeSlot int32 = -1
	matOwner int32 = -2
)

// Annotation states of the admission pre-pass.
const (
	annNone     int8 = iota // not annotated: inline path
	annNotReady             // object not ready at prepare time
	annOther                // ready but placement probe failed: inline path
	annReady                // ready, placed, contiguous disks free; annFirst/annVids hold the probe
	annBlocked              // ready, placed, but a contiguous disk is busy: only the fragmented fallback can start it
)

// Striped is the striping-family engine (simple striping is the
// special case K = M, staggered striping any other stride).  It is a
// thin wrapper over the generic Engine bound to the striped
// technique, kept as a named type for compatibility.
type Striped struct{ *Engine }

// NewStriped builds a striped engine from the configuration.
func NewStriped(cfg Config) (*Striped, error) {
	e, err := NewEngine(cfg, &stripedTech{})
	if err != nil {
		return nil, err
	}
	return &Striped{e}, nil
}

// bind allocates the striped technique's state and preloads the farm.
func (t *stripedTech) bind(e *Engine) error {
	cfg := e.cfg
	layout, err := core.NewLayout(cfg.D, cfg.K)
	if err != nil {
		return err
	}
	st, err := core.NewStore(layout, cfg.CapacityFragments)
	if err != nil {
		return err
	}
	maxDegree, minDegree := cfg.M, cfg.M
	for id := 0; id < cfg.Objects; id++ {
		m := cfg.Degree(id)
		if m > maxDegree {
			maxDegree = m
		}
		if m < minDegree {
			minDegree = m
		}
	}
	// Every release and completion is scheduled at most one display
	// length plus the maximum startup delay ahead, so a ring of that
	// horizon never sees two intervals share a slot.
	maxStartup := cfg.MaxStartup
	if maxStartup == 0 {
		maxStartup = 2 * maxDegree
	}
	horizon := cfg.Subobjects + maxStartup + 2
	t.eng = e
	t.cfg = cfg
	t.layout = layout
	t.store = st
	t.vbusy = make([]int32, cfg.D)
	t.freeBits = make([]uint64, (cfg.D+63)/64)
	for i := range t.freeBits {
		t.freeBits[i] = ^uint64(0)
	}
	if r := cfg.D & 63; r != 0 {
		t.freeBits[len(t.freeBits)-1] = 1<<uint(r) - 1
	}
	t.byObject = make([]int32, cfg.Objects)
	t.ready = make([]bool, cfg.Objects)
	t.probeObj = make([]int32, cfg.Objects)
	t.playEpoch = make([]int32, cfg.Objects)
	t.playOK = make([]bool, cfg.Objects)
	for i := range t.playEpoch {
		t.probeObj[i] = -1
		t.playEpoch[i] = -1
	}
	t.horizon = horizon
	t.releases = make([][]streamRef, horizon)
	t.completions = make([][]int32, horizon)
	if e.shards != nil {
		t.relShards = make([][]streamRef, e.shards.n*horizon)
		t.compShards = make([][]int32, e.shards.n*horizon)
		t.mergeHeads = make([]int, e.shards.n)
	}
	t.stride = maxDegree
	t.minDegree = minDegree
	t.vidScratch = make([]int, maxDegree)
	t.tsScratch = make([]int, maxDegree)
	t.zeroTs = make([]int, maxDegree)
	t.matObject = -1
	t.annEpoch = -1
	for i := range t.vbusy {
		t.vbusy[i] = freeSlot
	}
	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.DefaultPreload()
	}
	// Best-effort fill: with strides whose footprints have ramps
	// (k < M and short objects) the farm cannot always be packed to
	// the last fragment, so preloading stops at the first object that
	// no longer fits — exactly what on-demand materialization would
	// have produced.  Objects arrive in popularity (non-ascending id)
	// order; Reserve keeps the store tables from reallocating per id.
	// A cluster driver overrides the set outright (PreloadObjects) to
	// spread replicas across member servers by Zipf rank.
	t.store.Reserve(cfg.Objects)
	ids := cfg.PreloadObjects
	if ids == nil {
		ids = e.gen.TopObjects(preload)
	}
	for _, id := range ids {
		if _, err := t.store.Place(id, cfg.Degree(id), cfg.Subobjects); err != nil {
			break
		}
		t.ready[id] = true
	}
	return nil
}

func (t *stripedTech) name() string { return StripingTechniqueName(t.cfg) }

func (t *stripedTech) onEnqueue(r request) {
	if !t.ready[r.object] {
		t.coldQueued++
	}
}

// setReady flips an object's readiness and keeps coldQueued — the
// admission scan's materialization-wait gate — in sync with the
// object's pin count (the number of its queued requests).
func (t *stripedTech) setReady(obj int, ready bool) {
	if t.ready[obj] == ready {
		return
	}
	if ready {
		t.coldQueued -= int(t.eng.pinned[obj])
	} else {
		t.coldQueued += int(t.eng.pinned[obj])
	}
	t.ready[obj] = ready
}

// interval runs one interval of striping policy: claim endings,
// tertiary progress, admissions, then Algorithm 2 coalescing when
// enabled; it returns the busy-disk count for the utilization
// integral.
func (t *stripedTech) interval() int {
	e := t.eng
	t.rot = (t.cfg.K * e.now) % t.cfg.D
	if e.phaseLabels {
		return t.intervalLabeled()
	}
	if e.faultActive() {
		t.degradedScan()
	}
	t.finishDue()
	t.stepTertiary()
	t.admit()
	if t.cfg.Coalescing {
		t.coalesce()
	}
	return t.busy
}

// intervalLabeled is interval with each phase wrapped in a pprof
// label, taken only while a CPU profile is being collected.
func (t *stripedTech) intervalLabeled() int {
	if t.eng.faultActive() {
		t.degradedScan()
	}
	labeled("finishDue", t.finishDue)
	labeled("tertiary", t.stepTertiary)
	labeled("admit", t.admit)
	if t.cfg.Coalescing {
		labeled("coalesce", t.coalesce)
	}
	return t.busy
}

func (t *stripedTech) activeDisplays() int { return t.active }

// onFault reconciles technique state with an effective fault
// transition.  Disk up/down flips need no immediate work here: the
// per-interval degradedScan handles in-flight displays, and the
// admission playability memo is keyed by the engine's mask epoch, so
// it self-invalidates.  A tertiary outage abandons staging work.
func (t *stripedTech) onFault(ev fault.Event) {
	switch ev.Kind {
	case fault.TertiaryFail:
		if t.matObject >= 0 {
			t.abortStaging()
		}
	}
}

// degradedScan visits every faulted physical disk once per interval
// and degrades whatever is reading or writing it right now: displays
// ride out up to the hiccup limit of consecutive degraded intervals
// on a DOWN disk before aborting (a slow disk only inflates the
// hiccup count), and a materialization writing to a down disk is
// abandoned.  The scan iterates the engine's sorted faulted-disk
// active set — ascending disk order, the same order the old full
// walk visited — so its cost is O(faulted disks), not O(D).
func (t *stripedTech) degradedScan() {
	e := t.eng
	for _, f32 := range e.faultedDisks {
		f := int(f32)
		down, _ := e.diskFaulted(f)
		v := t.vdiskOf(f)
		owner := t.vbusy[v]
		if owner == freeSlot {
			continue
		}
		if owner == matOwner {
			if down {
				t.abortStaging()
			}
			continue
		}
		d := owner
		if t.dDone[d] {
			continue
		}
		if int(t.dDegAt[d]) == e.now {
			continue // two faulted streams in one interval count once
		}
		if int(t.dDegAt[d]) != e.now-1 {
			t.dDeg[d] = 0 // the previous degraded run ended; resync
		}
		t.dDegAt[d] = int32(e.now)
		t.dDeg[d]++
		e.degHiccups++
		if down && int(t.dDeg[d]) > e.hiccupLimit {
			t.abortDisplay(d)
		}
	}
}

// abortDisplay kills an in-flight display: all stream claims release
// immediately, pending ring entries go stale (consumers revalidate),
// and the station rejoins the closed loop through the abort path.
// The slot is never pooled — stale refs may still address it.
func (t *stripedTech) abortDisplay(d int32) {
	base := int(d) * t.stride
	for i := 0; i < int(t.dM[d]); i++ {
		if v := t.sVdisk[base+i]; v >= 0 {
			t.setVBusy(int(v), freeSlot)
			t.sVdisk[base+i] = -1
		}
	}
	t.dDone[d] = true
	t.active--
	t.byObject[t.dObject[d]]--
	t.eng.countAbort(int(t.dStation[d]), int(t.dObject[d]))
}

// killActive implements the whole-server kill (DESIGN.md §14): the
// staging aborts first (its batched followers re-queue, and the engine
// drains the queue right after), then every in-flight display aborts
// through the same typed path a disk fault uses.  Pooled slots have
// dDone set, so the arena walk naturally skips them.  After the walk
// every virtual disk is free and no queued request pins anything, so
// the coldQueued gate resets to zero.
func (t *stripedTech) killActive() {
	if t.matObject >= 0 {
		t.abortStaging()
	}
	for d := int32(0); d < int32(len(t.dDone)); d++ {
		if !t.dDone[d] {
			t.abortDisplay(d)
		}
	}
	t.coalescing = t.coalescing[:0]
	t.coldQueued = 0
	t.annEpoch = -1
}

// onRevive needs no ring surgery: every event scheduled before the
// kill is stale in a self-validating way (aborted streams have
// sVdisk −1 and aborted displays have dDone set, and both consumers
// revalidate), so entries left in skipped slots are dropped the next
// time their slot comes around.  The probe memo compares for interval
// equality, so pre-kill values cannot false-hit either.
func (t *stripedTech) onRevive() {
	t.annEpoch = -1
}

// adoptObject places a copy of id for the replica-healing pass without
// consuming tertiary time — the cluster layer's per-window budget is
// the bandwidth model.  It declines objects already held, being
// staged, or pending on the device.
func (t *stripedTech) adoptObject(id int) bool {
	if t.ready[id] || t.store.Resident(id) || id == t.matObject || t.eng.tman.Pending(id) {
		return false
	}
	if !t.tryPlace(id) {
		return false
	}
	t.setReady(id, true)
	t.eng.emit(EvMatEnd, id, -1, "healed")
	return true
}

// abortStaging abandons the pending or in-flight materialization: the
// write claims release, a partially written object is evicted rather
// than published, and the device request is dropped (stations still
// wanting the object re-request it on their next admission scan).
func (t *stripedTech) abortStaging() {
	t.eng.cacheStagingAborted(t.matObject)
	for _, v := range t.matVdisks {
		t.setVBusy(v, freeSlot)
	}
	t.matVdisks = t.matVdisks[:0]
	if t.matStarted && t.store.Resident(t.matObject) {
		t.setReady(t.matObject, false)
		t.eng.emit(EvEvict, t.matObject, -1, "staging aborted")
		_ = t.store.Evict(t.matObject)
	}
	t.matObject = -1
	t.matStarted = false
	t.matRetries, t.matNextTry, t.matPressured = 0, 0, false
	t.eng.tman.Abort()
}

// playable reports whether an object's resident layout avoids every
// down disk for the full duration of a display.  Memoized per mask
// epoch: the answer only changes when a disk fails or is repaired, or
// when the object is re-placed (which resets its memo slot).
func (t *stripedTech) playable(obj int) bool {
	e := t.eng
	if e.faultEvents == nil || e.downCount == 0 {
		return true
	}
	if t.playEpoch[obj] == int32(e.maskEpoch) {
		return t.playOK[obj]
	}
	ok := true
	if p, resident := t.store.Placement(obj); resident {
		ok = !t.footprintHitsDown(p.First, t.cfg.Degree(obj))
	}
	t.playEpoch[obj] = int32(e.maskEpoch)
	t.playOK[obj] = ok
	return ok
}

// footprintHitsDown reports whether the stride orbit of a placement —
// the physical disks its M-disk read window visits over a display —
// includes a down disk.  The orbit repeats after D/gcd(K, D) steps,
// so the walk is bounded by that cycle.
func (t *stripedTech) footprintHitsDown(first, m int) bool {
	e := t.eng
	d := t.cfg.D
	cycle := d / gcd(t.cfg.K, d)
	if n := t.cfg.Subobjects; n < cycle {
		cycle = n
	}
	for step := 0; step < cycle; step++ {
		base := first + t.cfg.K*step
		for j := 0; j < m; j++ {
			if e.diskDown[(base+j)%d] {
				return true
			}
		}
	}
	return false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (t *stripedTech) uniqueResidents() int { return t.store.ResidentCount() }

func (t *stripedTech) holdsObject(id int) bool { return t.ready[id] }

// vdiskOf maps physical disk f at the current interval to its global
// virtual disk, (f − K·now) mod D.  The rotation (K·now) mod D is
// cached once per interval, so the map is a subtraction and one
// conditional wrap instead of a full modulo chain.
func (t *stripedTech) vdiskOf(f int) int {
	v := f - t.rot
	if v < 0 {
		v += t.cfg.D
	}
	return v
}

// physicalOf is the inverse map: virtual disk v to the physical disk
// serving it this interval.
func (t *stripedTech) physicalOf(v int) int {
	f := v + t.rot
	if f >= t.cfg.D {
		f -= t.cfg.D
	}
	return f
}

// setVBusy transfers ownership of virtual disk v and maintains the
// farm-busy counter and the free bitset — the incremental replacement
// for the per-interval O(D) occupancy scan.  The owner is a display
// slot (or matOwner / freeSlot), so the degraded scan can walk from a
// faulted physical disk straight to the display it hurts.
func (t *stripedTech) setVBusy(v int, owner int32) {
	if (t.vbusy[v] == freeSlot) != (owner == freeSlot) {
		if owner == freeSlot {
			t.busy--
			t.freeBits[v>>6] |= 1 << uint(v&63)
		} else {
			t.busy++
			t.freeBits[v>>6] &^= 1 << uint(v&63)
		}
	}
	t.vbusy[v] = owner
}

// allocSlot returns a display slot: a recycled contiguous slot when
// one is pooled, a fresh arena extension otherwise.
func (t *stripedTech) allocSlot() int32 {
	if k := len(t.pool); k > 0 {
		s := t.pool[k-1]
		t.pool = t.pool[:k-1]
		return s
	}
	t.dStation = append(t.dStation, 0)
	t.dObject = append(t.dObject, 0)
	t.dFirst = append(t.dFirst, 0)
	t.dTau0 = append(t.dTau0, 0)
	t.dTmax = append(t.dTmax, 0)
	t.dSeq = append(t.dSeq, 0)
	t.dM = append(t.dM, 0)
	t.dDone = append(t.dDone, false)
	t.dDeg = append(t.dDeg, 0)
	t.dDegAt = append(t.dDegAt, -2)
	t.dShard = append(t.dShard, 0)
	for i := 0; i < t.stride; i++ {
		t.sVdisk = append(t.sVdisk, -1)
		t.sT = append(t.sT, 0)
	}
	return int32(len(t.dStation) - 1)
}

// sortReleases restores (display, stream) admission order in one
// release bucket.  Coalescing reschedules releases out of admission
// order; hiccup accounting must match a full in-order scan, so the
// bucket is re-sorted before applying.  Insertion sort: buckets are
// tiny and already sorted unless a coalescing fired.  Keyed by the
// admission sequence, not the slot — slots recycle.
func sortReleases(refs []streamRef, dSeq []int32) {
	for a := 1; a < len(refs); a++ {
		for b := a; b > 0 && (dSeq[refs[b].slot] < dSeq[refs[b-1].slot] ||
			(dSeq[refs[b].slot] == dSeq[refs[b-1].slot] && refs[b].i < refs[b-1].i)); b-- {
			refs[b], refs[b-1] = refs[b-1], refs[b]
		}
	}
}

// applyRelease frees the disk of one due stream release, revalidating
// against the display's current state (entries go stale when a
// coalescing move rescheduled the stream or a fault aborted the
// display).
func (t *stripedTech) applyRelease(ref streamRef) {
	e := t.eng
	d := ref.slot
	si := int(d)*t.stride + int(ref.i)
	v := t.sVdisk[si]
	if v < 0 || e.now != int(t.dTau0[d])+int(t.sT[si])+t.cfg.Subobjects {
		return // stale: already released or rescheduled
	}
	if t.vbusy[v] != d {
		e.hiccups++
	}
	t.setVBusy(int(v), freeSlot)
	t.sVdisk[si] = -1 // released
}

// applyCompletion settles one due display completion, appending the
// station to reissue; aborted displays were settled by the abort path.
func (t *stripedTech) applyCompletion(d int32, reissue []int) []int {
	e := t.eng
	if t.dDone[d] {
		return reissue // aborted by a fault; the abort path settled it
	}
	t.dDone[d] = true
	t.active--
	e.completed++
	e.completedTotal++
	e.emit(EvComplete, int(t.dObject[d]), int(t.dStation[d]), "")
	t.byObject[t.dObject[d]]--
	e.stn.Complete(int(t.dStation[d]))
	reissue = append(reissue, int(t.dStation[d]))
	// Contiguous displays are unreachable once completed (all
	// release refs fired earlier this interval or before, and
	// they never join the coalescing list) — recycle the slot.
	if t.dTmax[d] == 0 {
		t.pool = append(t.pool, d)
	}
	return reissue
}

// finishDue releases stream disks whose reads end this interval and
// completes displays whose delivery has ended; completed stations
// immediately reissue (zero think time).  Both are bucket lookups:
// only the streams and displays that actually fire now are touched.
// Sharded engines keep the buckets partitioned by owning shard and
// take the parallel drain below.
func (t *stripedTech) finishDue() {
	if t.relShards != nil {
		t.finishDueSharded()
		return
	}
	e := t.eng
	slot := e.now % t.horizon
	if refs := t.releases[slot]; len(refs) > 0 {
		t.releases[slot] = refs[:0]
		sortReleases(refs, t.dSeq)
		for _, ref := range refs {
			t.applyRelease(ref)
		}
	}
	if ds := t.completions[slot]; len(ds) > 0 {
		t.completions[slot] = ds[:0]
		reissue := e.reissueBuf[:0]
		for _, d := range ds {
			reissue = t.applyCompletion(d, reissue)
		}
		for _, s := range reissue {
			e.reissue(s)
		}
		e.reissueBuf = reissue[:0]
	}
}

// finishDueSharded drains the per-shard release/completion buckets:
// the sort half runs on the worker pool (shard buckets are disjoint
// and sorting reads only the frozen dSeq column), then the apply half
// k-way-merges the shards by admission sequence on the interval
// goroutine.  The merged order equals the global (dSeq, stream) order
// the unsharded drain produces, so Results are byte-identical at any
// worker count — including worker count one.
func (t *stripedTech) finishDueSharded() {
	e := t.eng
	nsh := e.shards.n
	slot := e.now % t.horizon
	work := 0
	for s := 0; s < nsh; s++ {
		work += len(t.relShards[s*t.horizon+slot])
	}
	// Sort each shard's release bucket by admission sequence.  The
	// parallel path self-gates: it only pays when the pool's workers
	// can actually run concurrently and the buckets hold enough refs.
	if work > 0 {
		sortShard := func(s int) {
			sortReleases(t.relShards[s*t.horizon+slot], t.dSeq)
		}
		if e.pool != nil && e.pool.concurrent && work >= 64 {
			e.parallel(nsh, sortShard)
		} else {
			for s := 0; s < nsh; s++ {
				sortShard(s)
			}
		}
		// Merge-apply in global (dSeq, stream) order.
		heads := t.mergeHeads
		for s := range heads {
			heads[s] = 0
		}
		for {
			best := -1
			var bref streamRef
			for s := 0; s < nsh; s++ {
				b := t.relShards[s*t.horizon+slot]
				if heads[s] >= len(b) {
					continue
				}
				ref := b[heads[s]]
				if best < 0 || t.dSeq[ref.slot] < t.dSeq[bref.slot] ||
					(t.dSeq[ref.slot] == t.dSeq[bref.slot] && ref.i < bref.i) {
					best, bref = s, ref
				}
			}
			if best < 0 {
				break
			}
			heads[best]++
			t.applyRelease(bref)
		}
		for s := 0; s < nsh; s++ {
			t.relShards[s*t.horizon+slot] = t.relShards[s*t.horizon+slot][:0]
		}
	}
	// Completions: per-shard buckets are appended in admission order,
	// so each is already ascending in dSeq — merge directly.
	anyComp := false
	for s := 0; s < nsh; s++ {
		if len(t.compShards[s*t.horizon+slot]) > 0 {
			anyComp = true
			break
		}
	}
	if anyComp {
		heads := t.mergeHeads
		for s := range heads {
			heads[s] = 0
		}
		reissue := e.reissueBuf[:0]
		for {
			best := -1
			var bd int32
			for s := 0; s < nsh; s++ {
				b := t.compShards[s*t.horizon+slot]
				if heads[s] >= len(b) {
					continue
				}
				d := b[heads[s]]
				if best < 0 || t.dSeq[d] < t.dSeq[bd] {
					best, bd = s, d
				}
			}
			if best < 0 {
				break
			}
			heads[best]++
			reissue = t.applyCompletion(bd, reissue)
		}
		for s := 0; s < nsh; s++ {
			t.compShards[s*t.horizon+slot] = t.compShards[s*t.horizon+slot][:0]
		}
		for _, s := range reissue {
			e.reissue(s)
		}
		e.reissueBuf = reissue[:0]
	}
}

// stepTertiary advances the materialization pipeline.
func (t *stripedTech) stepTertiary() {
	e := t.eng
	if t.matObject >= 0 && t.matStarted {
		e.tertBusy++
		t.matRemaining--
		if t.matRemaining == 0 {
			t.finishMaterialization()
		}
		return
	}
	if e.tertDown {
		return // device offline: no new staging starts
	}
	if t.matObject < 0 {
		id, ok := e.tman.StartNext()
		if !ok {
			return
		}
		t.matObject = id
		t.matRetries, t.matNextTry, t.matPressured = 0, 0, false
	}
	// Stage the pending object: secure space, then disks.
	obj := t.matObject
	if !t.store.Resident(obj) {
		if e.now < t.matNextTry {
			return // backing off after a failed Place
		}
		if !t.tryPlace(obj) {
			t.placeFailed(obj)
			return
		}
		t.matRetries, t.matNextTry = 0, 0
	}
	p, _ := t.store.Placement(obj)
	w := t.cfg.Tertiary.DisksOccupied(t.cfg.BDisk)
	if w > t.cfg.Degree(obj) {
		w = t.cfg.Degree(obj)
	}
	vids := t.vidScratch[:w]
	for j := 0; j < w; j++ {
		v := t.vdiskOf((p.First + j) % t.cfg.D)
		if t.vbusy[v] != freeSlot {
			return // write disks busy; retry next interval
		}
		vids[j] = v
	}
	for _, v := range vids {
		t.setVBusy(v, matOwner)
	}
	t.matVdisks = append(t.matVdisks[:0], vids...)
	t.matStarted = true
	t.matRemaining = t.cfg.MaterializeIntervalsOf(obj)
	if e.tracer != nil {
		e.emit(EvMatStart, obj, -1, fmt.Sprintf("%d intervals", t.matRemaining+1))
	}
	e.tertBusy++ // the starting interval counts as busy
	t.matRemaining--
	if t.matRemaining == 0 {
		t.finishMaterialization()
	}
}

// tryPlace secures space (evicting cold residents as needed) and a
// contiguous start for obj — the legacy staging step, factored out so
// the bounded-retry path can reuse it after eviction pressure.
func (t *stripedTech) tryPlace(obj int) bool {
	if !t.makeRoom(obj) {
		return false
	}
	if _, err := t.store.Place(obj, t.cfg.Degree(obj), t.cfg.Subobjects); err != nil {
		return false
	}
	t.playEpoch[obj] = -1 // re-placed: the playability memo is stale
	return true
}

// placeFailed handles one failed Place attempt.  With the legacy
// unlimited-retry configuration (PlaceRetryLimit 0) it just leaves
// the staging pending for the next interval — the DESIGN.md §9
// livelock.  With a cap it backs off exponentially, fires the
// one-shot eviction-pressure fallback at the limit when enabled, and
// finally abandons the staging as starved so the run fails loudly
// instead of delivering a silent zero-display sweep.
func (t *stripedTech) placeFailed(obj int) {
	e := t.eng
	limit := t.cfg.PlaceRetryLimit
	if limit == 0 {
		return // retry next interval, forever
	}
	t.matRetries++
	if t.matRetries >= limit {
		if t.cfg.EvictionPressure && !t.matPressured {
			// Last resort before starving: evict every replaceable
			// resident, trading catalog variety for a defragmented
			// farm, and try once more.
			t.matPressured = true
			t.pressureEvict()
			if t.tryPlace(obj) {
				t.matRetries, t.matNextTry = 0, 0
				return
			}
		}
		e.countStarved(obj)
		t.matObject = -1
		t.matRetries, t.matNextTry, t.matPressured = 0, 0, false
		e.tman.Abort()
		return
	}
	// Exponential backoff, capped at 16 intervals: the farm only
	// changes when displays end or evictions fire, so hammering Place
	// every interval buys nothing.
	shift := t.matRetries
	if shift > 4 {
		shift = 4
	}
	t.matNextTry = e.now + 1<<shift
}

// pressureEvict evicts every currently replaceable resident — beyond
// the strict byte need makeRoom stops at — so a fragmented exact-fit
// farm gets one defragmented chance before a staging starves.
func (t *stripedTech) pressureEvict() {
	e := t.eng
	victims := append(t.candScratch[:0], t.store.ResidentIDs()...)
	for _, id := range victims {
		if !t.evictable(id) {
			continue
		}
		t.setReady(id, false)
		e.emit(EvEvict, id, -1, "pressure")
		if err := t.store.Evict(id); err != nil {
			e.hiccups++
		}
	}
	t.candScratch = victims[:0]
}

// finishMaterialization publishes the staged object and frees the
// write disks and the device.
func (t *stripedTech) finishMaterialization() {
	e := t.eng
	e.emit(EvMatEnd, t.matObject, -1, "")
	t.setReady(t.matObject, true)
	for _, v := range t.matVdisks {
		t.setVBusy(v, freeSlot)
	}
	t.matVdisks = t.matVdisks[:0]
	t.matObject = -1
	t.matStarted = false
	if _, err := e.tman.Finish(); err != nil {
		e.hiccups++
	}
	e.materialized++
}

// makeRoom evicts least-frequently-accessed evictable objects until
// the farm has space for obj.  It reports whether enough space exists.
// The candidate set is built once per call and shrunk incrementally as
// victims go — nothing that happens inside this loop changes any other
// object's evictability.
func (t *stripedTech) makeRoom(obj int) bool {
	e := t.eng
	need := t.cfg.Degree(obj) * t.cfg.Subobjects
	if t.store.FreeFragments() >= need {
		return true
	}
	candidates := t.candScratch[:0]
	for _, id := range t.store.ResidentIDs() {
		if t.evictable(id) {
			candidates = append(candidates, id)
		}
	}
	defer func() { t.candScratch = candidates[:0] }()
	for t.store.FreeFragments() < need {
		victim, ok := e.lfu.Victim(candidates)
		if !ok {
			return false
		}
		for i, id := range candidates {
			if id == victim {
				candidates = append(candidates[:i], candidates[i+1:]...)
				break
			}
		}
		t.setReady(victim, false)
		e.emit(EvEvict, victim, -1, "")
		if err := t.store.Evict(victim); err != nil {
			e.hiccups++
			return false
		}
	}
	return true
}

// evictable reports whether object id may be replaced: resident,
// fully materialized, not being displayed, and not referenced by a
// queued request.
func (t *stripedTech) evictable(id int) bool {
	return t.ready[id] && t.byObject[id] == 0 && t.eng.pinned[id] == 0 && id != t.matObject
}

// fragmentedAttemptsPerInterval bounds how many queued requests may
// run the (O(free disks × M)) Algorithm-1 search in one interval.
const fragmentedAttemptsPerInterval = 8

// prepare runs the read-only half of the admission scan
// worker-parallel, invoked by admit after stream releases and the
// tertiary step so it sees the interval's final occupancy and
// readiness: per queued request, the ready check, the placement
// lookup, and the virtual-disk numbers of a contiguous admission this
// interval.  admit then only probes occupancy and commits.  The
// annotations cannot go stale between prepare and the scan — a queued
// object is pin-protected from eviction and re-placement, and vdiskOf
// depends only on the interval number.  Two situations skip the
// pre-pass and fall back to the inline scan: fault-active intervals
// (playability would need the sequential memo) and a farm too full to
// admit even the smallest object — the common case in a saturated
// closed system, where annotating a 10k-entry queue nobody can join
// would be pure overhead.
func (t *stripedTech) prepare() {
	e := t.eng
	t.annEpoch = -1
	// The pre-pass trades one sequential admission scan for a parallel
	// annotation pass plus a cheaper scan — a win only when the chunks
	// actually run concurrently.  On a single-proc run (pool.concurrent
	// false) it is pure overhead, so skip it; the inline scan computes
	// the identical decisions.
	if e.pool == nil || !e.pool.concurrent || e.faultActive() || len(e.queue) == 0 {
		return
	}
	free := t.cfg.D - t.busy
	if free < t.minDegree {
		return
	}
	q := e.queue
	n := len(q)
	if cap(t.ann) < n {
		t.ann = make([]int8, n)
		t.annFirst = make([]int32, n)
		t.annVids = make([]int32, n*t.stride)
	}
	t.ann = t.ann[:n]
	t.annFirst = t.annFirst[:n]
	t.annVids = t.annVids[:n*t.stride]
	// Over-chunk relative to the worker count so uneven entries (mixed
	// degrees, cold objects) self-balance on the pool's shared cursor.
	chunks := e.workers() * 4
	if chunks > n {
		chunks = n
	}
	per := (n + chunks - 1) / chunks
	e.parallel(chunks, func(c int) {
		lo := c * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		for qi := lo; qi < hi; qi++ {
			r := q[qi]
			if !t.ready[r.object] {
				t.ann[qi] = annNotReady
				continue
			}
			pFirst, ok := t.store.FirstDisk(r.object)
			if !ok {
				t.ann[qi] = annOther
				continue
			}
			m := t.cfg.Degree(r.object)
			if m > free {
				// More streams than the farm has free at scan start:
				// occupancy only shrinks during the scan, so this entry
				// cannot be admitted — don't compute its disks.
				t.ann[qi] = annOther
				continue
			}
			// Run the contiguous probe here against the frozen occupancy,
			// with the same early break the inline probe uses.  vbusy
			// does not change until the sequential scan commits
			// admissions, and the scan only makes disks busier — so a
			// probe refuted now stays refuted, and annBlocked entries
			// skip the re-probe entirely.
			t.annFirst[qi] = int32(pFirst)
			base := qi * t.stride
			blocked := false
			for j := 0; j < m; j++ {
				v := t.vdiskOf((pFirst + j) % t.cfg.D)
				if t.vbusy[v] != freeSlot {
					blocked = true
					break
				}
				t.annVids[base+j] = int32(v)
			}
			if blocked {
				t.ann[qi] = annBlocked
				continue
			}
			t.ann[qi] = annReady
		}
	})
	t.annEpoch = e.now
	t.annLen = n
}

// admit scans the queue in arrival order and starts every display
// whose disks are free, per §3.1's use of idle time intervals for new
// requests.  Non-resident objects are routed to the tertiary manager.
// With FCFSStrict the scan stops at the first request that cannot
// start (head-of-line blocking).  A request whose object needs more
// disks than the whole farm has free is skipped without probing.
// When prepare annotated the queue this interval, annotated entries
// take the pre-computed fast path; entries past the annotated prefix
// (enqueued by this interval's completions) and entries whose
// annotation went stale run the original inline logic.
func (t *stripedTech) admit() {
	e := t.eng
	if len(e.queue) == 0 {
		return
	}
	// Fast path: a saturated closed system spends most intervals with
	// the farm too full to admit even the smallest object.  When no
	// queued request is waiting on a materialization either (so the
	// scan has no tertiary requests to forward) and no fault is active
	// (so no playability rejections are pending), every entry would be
	// re-kept unchanged — skip the whole scan.
	if t.coldQueued == 0 && t.cfg.D-t.busy < t.minDegree && !e.faultActive() {
		return
	}
	t.prepare()
	annotated := t.annEpoch == e.now
	kept := e.queue[:0]
	fragBudget := fragmentedAttemptsPerInterval
	// faultFree is loop-invariant: fault transitions apply before the
	// interval's technique phases, so playability cannot change inside
	// one scan.
	faultFree := !e.faultActive()
	noFrag := !t.cfg.Fragmented
scan:
	for qi, r := range e.queue {
		if annotated && qi < t.annLen {
			switch t.ann[qi] {
			case annNotReady:
				if t.ready[r.object] {
					break // defensive: annotation contradicts live state — go inline
				}
				e.tman.Request(r.object)
				kept = append(kept, r)
				if t.cfg.FCFSStrict {
					kept = append(kept, e.queue[qi+1:]...)
					break scan
				}
				continue
			case annReady:
				// Still ready and still at annFirst: queued objects are
				// pin-protected from eviction, so only the occupancy
				// probes need fresh answers.
				if t.cfg.D-t.busy >= t.cfg.Degree(r.object) && t.tryAdmitAnn(r, qi, &fragBudget) {
					e.pinned[r.object]--
					continue
				}
				kept = append(kept, r)
				if t.cfg.FCFSStrict {
					kept = append(kept, e.queue[qi+1:]...)
					break scan
				}
				continue
			case annBlocked:
				// The contiguous probe was refuted against the frozen
				// occupancy and disks only get busier during the scan,
				// so skip it; the fragmented fallback (which reads the
				// live free set) is the only remaining way in — exactly
				// what the inline probe would have reached.  The
				// refutation also consumes the object's probe memo.
				t.probeObj[r.object] = int32(e.now)
				if t.cfg.D-t.busy >= t.cfg.Degree(r.object) &&
					t.tryFragmented(r, int(t.annFirst[qi]), t.cfg.Degree(r.object), &fragBudget) {
					e.pinned[r.object]--
					continue
				}
				kept = append(kept, r)
				if t.cfg.FCFSStrict {
					kept = append(kept, e.queue[qi+1:]...)
					break scan
				}
				continue
			}
			// annOther: fall through to the inline path.
		}
		if !t.ready[r.object] {
			e.tman.Request(r.object)
			kept = append(kept, r)
			if t.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		// Memo fast path: the object's contiguous probe was already
		// consumed this interval, and the fragmented fallback cannot
		// fire (disabled, or its per-interval budget is spent) — the
		// full path below would deterministically re-keep this entry
		// (no fault is active, so no playability rejection is pending
		// either).  Skip the placement lookup and the probe entirely.
		if faultFree && (noFrag || fragBudget <= 0) && t.probeObj[r.object] == int32(e.now) {
			kept = append(kept, r)
			if t.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		first, ok := t.store.FirstDisk(r.object)
		if !ok { // evicted between materialization and admission
			t.setReady(r.object, false)
			e.tman.Request(r.object)
			kept = append(kept, r)
			if t.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		if !t.playable(r.object) {
			// The layout's stride orbit crosses a down disk: admitting
			// would guarantee hiccups or an abort, so refuse instead.
			// Deferred past the queue swap — kept aliases the queue's
			// backing array, and the rejection path reissues the
			// station, which must append to the NEW queue.
			t.rejectBuf = append(t.rejectBuf, r)
			continue
		}
		if t.cfg.D-t.busy >= t.cfg.Degree(r.object) && t.tryAdmit(r, first, &fragBudget) {
			e.pinned[r.object]--
			continue
		}
		kept = append(kept, r)
		if t.cfg.FCFSStrict {
			kept = append(kept, e.queue[qi+1:]...)
			break
		}
	}
	e.queue = kept
	if len(t.rejectBuf) > 0 {
		for _, r := range t.rejectBuf {
			e.countReject(r)
		}
		t.rejectBuf = t.rejectBuf[:0]
	}
}

// contigConsumed consults and consumes the object's contiguous-probe
// memo for this interval.  A hit means a contiguous probe of obj
// already ran this scan — it either admitted a display onto exactly
// the disks a re-probe would test or was refuted — and since disks
// only get busier within a scan, a re-probe must fail; callers go
// straight to the fragmented fallback.
func (t *stripedTech) contigConsumed(obj int) bool {
	if t.probeObj[obj] == int32(t.eng.now) {
		return true
	}
	t.probeObj[obj] = int32(t.eng.now)
	return false
}

// tryAdmit attempts a contiguous admission, falling back to
// time-fragmented admission (Algorithm 1) for the queue head when
// enabled.
func (t *stripedTech) tryAdmit(r request, first int, fragBudget *int) bool {
	m := t.cfg.Degree(r.object)
	if t.contigConsumed(r.object) {
		return t.tryFragmented(r, first, m, fragBudget)
	}
	// Contiguous: the M disks of subobject 0 must be free right now.
	vids := t.vidScratch[:m]
	okContig := true
	for j := 0; j < m; j++ {
		v := t.vdiskOf((first + j) % t.cfg.D)
		if t.vbusy[v] != freeSlot {
			okContig = false
			break
		}
		vids[j] = v
	}
	if okContig {
		t.start(r, first, vids, t.zeroTs[:m], 0)
		return true
	}
	return t.tryFragmented(r, first, m, fragBudget)
}

// tryAdmitAnn is tryAdmit on a pre-annotated entry: the contiguous
// virtual-disk numbers were computed by prepare, so only the vbusy
// probes run here, in the same order with the same answers the inline
// probe would produce.
func (t *stripedTech) tryAdmitAnn(r request, qi int, fragBudget *int) bool {
	m := t.cfg.Degree(r.object)
	if t.contigConsumed(r.object) {
		return t.tryFragmented(r, int(t.annFirst[qi]), m, fragBudget)
	}
	base := qi * t.stride
	vids := t.vidScratch[:m]
	okContig := true
	for j := 0; j < m; j++ {
		v := int(t.annVids[base+j])
		if t.vbusy[v] != freeSlot {
			okContig = false
			break
		}
		vids[j] = v
	}
	if okContig {
		t.start(r, int(t.annFirst[qi]), vids, t.zeroTs[:m], 0)
		return true
	}
	return t.tryFragmented(r, int(t.annFirst[qi]), m, fragBudget)
}

// tryFragmented runs the Algorithm-1 time-fragmented admission over
// all currently free disks.
func (t *stripedTech) tryFragmented(r request, first, m int, fragBudget *int) bool {
	if !t.cfg.Fragmented || *fragBudget <= 0 {
		return false
	}
	*fragBudget--
	// Build the free-disk list from the free bitset: ascending virtual
	// disk order, the same content and order the old O(D) vbusy walk
	// produced, at a word of occupancy per 64 disks.
	free := t.freeScratch[:0]
	for w, word := range t.freeBits {
		for word != 0 {
			v := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			free = append(free, t.physicalOf(v))
		}
	}
	t.freeScratch = free[:0]
	a, ok := vdisk.ChooseVirtualDisks(t.cfg.D, t.cfg.K, first, m, free)
	if !ok {
		return false
	}
	maxStartup := t.cfg.MaxStartup
	if maxStartup == 0 {
		// Each interval of startup delay costs one buffered fragment
		// per early stream and stretches the disk reservation past the
		// display length, so unbounded Tmax hurts more than queueing a
		// little longer; a few interval-widths of headroom captures
		// nearly all of Algorithm 1's benefit.
		maxStartup = 2 * m
	}
	if a.Tmax > maxStartup {
		return false
	}
	gvids := t.vidScratch[:m]
	ts := t.tsScratch[:m]
	for i, z := range a.Z {
		gvids[i] = t.vdiskOf(z)
		ts[i] = a.T[i]
	}
	t.start(r, first, gvids, ts, a.Tmax)
	return true
}

// start activates a display on the given virtual disks and schedules
// its future events: one release per stream and one completion.
func (t *stripedTech) start(r request, first int, vids, ts []int, tmax int) {
	e := t.eng
	n := t.cfg.Subobjects
	d := t.allocSlot()
	t.dSeq[d] = t.nextSeq
	t.nextSeq++
	t.dStation[d] = int32(r.station)
	t.dObject[d] = int32(r.object)
	t.dFirst[d] = int32(first)
	t.dTau0[d] = int32(e.now)
	t.dTmax[d] = int32(tmax)
	t.dM[d] = int32(len(vids))
	t.dDone[d] = false
	t.dDeg[d] = 0
	t.dDegAt[d] = -2 // never degraded: -2 is adjacent to no interval
	ringOff := 0
	if t.relShards != nil {
		t.dShard[d] = e.shards.shardOf[r.station]
		ringOff = int(t.dShard[d]) * t.horizon
	}
	base := int(d) * t.stride
	for i := range vids {
		if t.vbusy[vids[i]] != freeSlot {
			e.hiccups++
		}
		t.setVBusy(vids[i], d)
		t.sVdisk[base+i] = int32(vids[i])
		t.sT[base+i] = int32(ts[i])
		slot := (e.now + ts[i] + n) % t.horizon
		if t.relShards != nil {
			t.relShards[ringOff+slot] = append(t.relShards[ringOff+slot], streamRef{slot: d, i: int32(i)})
		} else {
			t.releases[slot] = append(t.releases[slot], streamRef{slot: d, i: int32(i)})
		}
	}
	slot := (e.now + tmax + n) % t.horizon // deliveryEnd + 1
	if t.relShards != nil {
		t.compShards[ringOff+slot] = append(t.compShards[ringOff+slot], d)
	} else {
		t.completions[slot] = append(t.completions[slot], d)
	}
	if tmax > 0 {
		t.coalescing = append(t.coalescing, d)
	}
	t.active++
	t.byObject[r.object]++
	e.noteAdmit(r, tmax)
	if e.tracer != nil {
		e.emit(EvAdmit, r.object, r.station, fmt.Sprintf("first=%d tmax=%d", first, tmax))
	}
}

// coalesce applies Algorithm 2: any stream buffering ahead of the
// display (T_i < Tmax) moves to the ideal virtual disk — the one a
// contiguous admission at τ0+Tmax would have used — as soon as it is
// free.  Only displays that still have such a stream are visited; the
// list drops a display once every stream has moved, released, or can
// never move (its ideal disk is the one it already holds).
func (t *stripedTech) coalesce() {
	if len(t.coalescing) == 0 {
		return
	}
	e := t.eng
	n := t.cfg.Subobjects
	kept := t.coalescing[:0]
	for _, d := range t.coalescing {
		if t.dDone[d] {
			continue
		}
		pending := false
		base := int(d) * t.stride
		tau0, tmax := int(t.dTau0[d]), int(t.dTmax[d])
		first := int(t.dFirst[d])
		for i := 0; i < int(t.dM[d]); i++ {
			v := t.sVdisk[base+i]
			if v < 0 || int(t.sT[base+i]) == tmax {
				continue
			}
			// The virtual disk a contiguous admission at τ0+Tmax
			// would have used for fragment i.
			ideal := vdisk.VirtualAt((first+i)%t.cfg.D, tau0+tmax, t.cfg.K, t.cfg.D)
			if ideal == int(v) {
				continue // already on it; will release on its own clock
			}
			if t.vbusy[ideal] != freeSlot {
				pending = true
				continue
			}
			t.setVBusy(int(v), freeSlot)
			t.setVBusy(ideal, d)
			t.sVdisk[base+i] = int32(ideal)
			t.sT[base+i] = int32(tmax)
			slot := (tau0 + tmax + n) % t.horizon
			if t.relShards != nil {
				ringOff := int(t.dShard[d]) * t.horizon
				t.relShards[ringOff+slot] = append(t.relShards[ringOff+slot], streamRef{slot: d, i: int32(i)})
			} else {
				t.releases[slot] = append(t.releases[slot], streamRef{slot: d, i: int32(i)})
			}
			e.coalescings++
			if e.tracer != nil {
				e.emit(EvCoalesce, int(t.dObject[d]), int(t.dStation[d]), fmt.Sprintf("fragment %d", i))
			}
		}
		if pending {
			kept = append(kept, d)
		}
	}
	t.coalescing = kept
}
