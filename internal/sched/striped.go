package sched

import (
	"fmt"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/vdisk"
)

// stream is one fragment stream of an active display: the global
// virtual disk serving it and its alignment delay T_i relative to the
// admission interval.
type stream struct {
	vdisk int
	t     int
}

// display is an active delivery.
type display struct {
	id      int
	station int
	object  int
	first   int // disk of the object's fragment (0,0)
	tau0    int // admission interval
	tmax    int
	done    bool // delivery completed or aborted
	streams []stream

	// Degraded-mode state: how many consecutive intervals a fault has
	// touched this display, and the last such interval.
	degraded   int
	degradedAt int
}

// deliveryEnd returns the interval during which the last subobject is
// delivered.
func (d *display) deliveryEnd(n int) int { return d.tau0 + d.tmax + n - 1 }

// streamRef addresses one stream of a display inside an event bucket.
type streamRef struct {
	d *display
	i int
}

// stripedTech is the striping family's Technique: simple striping
// (k = M) and staggered striping (any k) share it, differing only in
// the configured stride and in whether Algorithms 1 and 2 are
// enabled.  Occupancy is tracked in virtual-disk space: physical disk
// f at interval t corresponds to virtual disk (f − K·t) mod D, and a
// display's streams own fixed virtual disks for the duration of their
// reads, so bookkeeping is O(1) per stream per transition rather than
// per interval.
//
// All per-interval work is event-driven: stream releases and display
// completions live in interval-keyed buckets (like wakeups), the
// farm-busy integral is maintained incrementally at every
// acquire/release site, and only displays that still have a stream to
// coalesce are visited by Algorithm 2.  An interval in which nothing
// happens costs O(1), independent of D, the number of active
// displays, and the queue length.
type stripedTech struct {
	eng    *Engine
	cfg    Config
	layout core.Layout
	store  *core.Store

	vbusy []int      // virtual disk -> owner display id, matOwner, or freeSlot
	vdisp []*display // virtual disk -> owning display (nil for free/matOwner)
	busy  int        // count of non-free virtual disks, maintained incrementally

	nextID   int
	active   int   // displays currently in delivery
	byObject []int // object -> active display count

	ready []bool // object resident and fully materialized

	// Degraded-mode state (only exercised when a fault plan is set).
	playEpoch []int     // object -> maskEpoch its playability was memoized at
	playOK    []bool    // memoized playability under the current mask
	rejectBuf []request // unplayable admissions, refused after the queue swap

	// Event rings: what fires at a given interval, indexed by
	// interval mod the ring length.  Every event is scheduled at most
	// horizon-1 intervals ahead (one display length plus the maximum
	// startup delay), so slots never collide; slice backings are
	// reused after each firing.  Entries may be stale (a coalescing
	// move reschedules a release); consumers re-validate against the
	// display's current state.
	horizon     int
	releases    [][]streamRef // stream releases due, by interval mod horizon
	completions [][]*display  // delivery ends, by interval mod horizon
	coalescing  []*display    // displays with a stream still to coalesce
	pool        []*display    // recycled contiguous displays

	// Reusable scratch buffers (hot path, zero steady-state allocs).
	vidScratch  []int
	tsScratch   []int
	zeroTs      []int
	freeScratch []int
	candScratch []int

	// Tertiary state.
	matObject    int // object being staged, -1 when idle
	matStarted   bool
	matRemaining int
	matVdisks    []int
	matRetries   int  // failed Place attempts for the pending staging
	matNextTry   int  // backoff: no Place attempt before this interval
	matPressured bool // the eviction-pressure fallback already fired
}

const (
	freeSlot = -1
	matOwner = -2
)

// Striped is the striping-family engine (simple striping is the
// special case K = M, staggered striping any other stride).  It is a
// thin wrapper over the generic Engine bound to the striped
// technique, kept as a named type for compatibility.
type Striped struct{ *Engine }

// NewStriped builds a striped engine from the configuration.
func NewStriped(cfg Config) (*Striped, error) {
	e, err := NewEngine(cfg, &stripedTech{})
	if err != nil {
		return nil, err
	}
	return &Striped{e}, nil
}

// bind allocates the striped technique's state and preloads the farm.
func (t *stripedTech) bind(e *Engine) error {
	cfg := e.cfg
	layout, err := core.NewLayout(cfg.D, cfg.K)
	if err != nil {
		return err
	}
	st, err := core.NewStore(layout, cfg.CapacityFragments)
	if err != nil {
		return err
	}
	maxDegree := cfg.M
	for id := 0; id < cfg.Objects; id++ {
		if m := cfg.Degree(id); m > maxDegree {
			maxDegree = m
		}
	}
	// Every release and completion is scheduled at most one display
	// length plus the maximum startup delay ahead, so a ring of that
	// horizon never sees two intervals share a slot.
	maxStartup := cfg.MaxStartup
	if maxStartup == 0 {
		maxStartup = 2 * maxDegree
	}
	horizon := cfg.Subobjects + maxStartup + 2
	t.eng = e
	t.cfg = cfg
	t.layout = layout
	t.store = st
	t.vbusy = make([]int, cfg.D)
	t.vdisp = make([]*display, cfg.D)
	t.byObject = make([]int, cfg.Objects)
	t.ready = make([]bool, cfg.Objects)
	t.playEpoch = make([]int, cfg.Objects)
	t.playOK = make([]bool, cfg.Objects)
	for i := range t.playEpoch {
		t.playEpoch[i] = -1
	}
	t.horizon = horizon
	t.releases = make([][]streamRef, horizon)
	t.completions = make([][]*display, horizon)
	t.vidScratch = make([]int, maxDegree)
	t.tsScratch = make([]int, maxDegree)
	t.zeroTs = make([]int, maxDegree)
	t.matObject = -1
	for i := range t.vbusy {
		t.vbusy[i] = freeSlot
	}
	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.DefaultPreload()
	}
	// Best-effort fill: with strides whose footprints have ramps
	// (k < M and short objects) the farm cannot always be packed to
	// the last fragment, so preloading stops at the first object that
	// no longer fits — exactly what on-demand materialization would
	// have produced.
	for _, id := range e.gen.TopObjects(preload) {
		if _, err := t.store.Place(id, cfg.Degree(id), cfg.Subobjects); err != nil {
			break
		}
		t.ready[id] = true
	}
	return nil
}

func (t *stripedTech) name() string { return StripingTechniqueName(t.cfg) }

func (t *stripedTech) onEnqueue(request) {}

// interval runs one interval of striping policy: claim endings,
// tertiary progress, admissions, then Algorithm 2 coalescing when
// enabled; it returns the busy-disk count for the utilization
// integral.
func (t *stripedTech) interval() int {
	if t.eng.faultActive() {
		t.degradedScan()
	}
	t.finishDue()
	t.stepTertiary()
	t.admit()
	if t.cfg.Coalescing {
		t.coalesce()
	}
	return t.busy
}

func (t *stripedTech) activeDisplays() int { return t.active }

// onFault reconciles technique state with an effective fault
// transition.  Disk up/down flips need no immediate work here: the
// per-interval degradedScan handles in-flight displays, and the
// admission playability memo is keyed by the engine's mask epoch, so
// it self-invalidates.  A tertiary outage abandons staging work.
func (t *stripedTech) onFault(ev fault.Event) {
	switch ev.Kind {
	case fault.TertiaryFail:
		if t.matObject >= 0 {
			t.abortStaging()
		}
	}
}

// degradedScan visits every faulted physical disk once per interval
// and degrades whatever is reading or writing it right now: displays
// ride out up to the hiccup limit of consecutive degraded intervals
// on a DOWN disk before aborting (a slow disk only inflates the
// hiccup count), and a materialization writing to a down disk is
// abandoned.  The scan is gated on faultActive, so a fault-free run
// never pays for it.
func (t *stripedTech) degradedScan() {
	e := t.eng
	for f := 0; f < t.cfg.D; f++ {
		down, slow := e.diskFaulted(f)
		if !down && !slow {
			continue
		}
		v := t.vdiskOf(f)
		owner := t.vbusy[v]
		if owner == freeSlot {
			continue
		}
		if owner == matOwner {
			if down {
				t.abortStaging()
			}
			continue
		}
		d := t.vdisp[v]
		if d == nil || d.done {
			continue
		}
		if d.degradedAt == e.now {
			continue // two faulted streams in one interval count once
		}
		if d.degradedAt != e.now-1 {
			d.degraded = 0 // the previous degraded run ended; resync
		}
		d.degradedAt = e.now
		d.degraded++
		e.degHiccups++
		if down && d.degraded > e.hiccupLimit {
			t.abortDisplay(d)
		}
	}
}

// abortDisplay kills an in-flight display: all stream claims release
// immediately, pending ring entries go stale (consumers revalidate),
// and the station rejoins the closed loop through the abort path.
// The display is never pooled — stale refs may still address it.
func (t *stripedTech) abortDisplay(d *display) {
	for i := range d.streams {
		s := &d.streams[i]
		if s.vdisk >= 0 {
			t.setVBusy(s.vdisk, freeSlot, nil)
			s.vdisk = -1
		}
	}
	d.done = true
	t.active--
	t.byObject[d.object]--
	t.eng.countAbort(d.station, d.object)
}

// abortStaging abandons the pending or in-flight materialization: the
// write claims release, a partially written object is evicted rather
// than published, and the device request is dropped (stations still
// wanting the object re-request it on their next admission scan).
func (t *stripedTech) abortStaging() {
	for _, v := range t.matVdisks {
		t.setVBusy(v, freeSlot, nil)
	}
	t.matVdisks = t.matVdisks[:0]
	if t.matStarted && t.store.Resident(t.matObject) {
		t.eng.emit(EvEvict, t.matObject, -1, "staging aborted")
		_ = t.store.Evict(t.matObject)
	}
	t.matObject = -1
	t.matStarted = false
	t.matRetries, t.matNextTry, t.matPressured = 0, 0, false
	t.eng.tman.Abort()
}

// playable reports whether an object's resident layout avoids every
// down disk for the full duration of a display.  Memoized per mask
// epoch: the answer only changes when a disk fails or is repaired, or
// when the object is re-placed (which resets its memo slot).
func (t *stripedTech) playable(obj int) bool {
	e := t.eng
	if e.faultEvents == nil || e.downCount == 0 {
		return true
	}
	if t.playEpoch[obj] == e.maskEpoch {
		return t.playOK[obj]
	}
	ok := true
	if p, resident := t.store.Placement(obj); resident {
		ok = !t.footprintHitsDown(p.First, t.cfg.Degree(obj))
	}
	t.playEpoch[obj] = e.maskEpoch
	t.playOK[obj] = ok
	return ok
}

// footprintHitsDown reports whether the stride orbit of a placement —
// the physical disks its M-disk read window visits over a display —
// includes a down disk.  The orbit repeats after D/gcd(K, D) steps,
// so the walk is bounded by that cycle.
func (t *stripedTech) footprintHitsDown(first, m int) bool {
	e := t.eng
	d := t.cfg.D
	cycle := d / gcd(t.cfg.K, d)
	if n := t.cfg.Subobjects; n < cycle {
		cycle = n
	}
	for step := 0; step < cycle; step++ {
		base := first + t.cfg.K*step
		for j := 0; j < m; j++ {
			if e.diskDown[(base+j)%d] {
				return true
			}
		}
	}
	return false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (t *stripedTech) uniqueResidents() int { return t.store.ResidentCount() }

// vdiskOf maps physical disk f at the current interval to its global
// virtual disk.
func (t *stripedTech) vdiskOf(f int) int {
	return vdisk.VirtualAt(f, t.eng.now, t.cfg.K, t.cfg.D)
}

// setVBusy transfers ownership of virtual disk v and maintains the
// farm-busy counter — the incremental replacement for the per-interval
// O(D) occupancy scan.  d is the owning display (nil for free or
// materialization claims), kept in a parallel table so the degraded
// scan can walk from a faulted physical disk to the display it hurts.
func (t *stripedTech) setVBusy(v, owner int, d *display) {
	if (t.vbusy[v] == freeSlot) != (owner == freeSlot) {
		if owner == freeSlot {
			t.busy--
		} else {
			t.busy++
		}
	}
	t.vbusy[v] = owner
	t.vdisp[v] = d
}

// finishDue releases stream disks whose reads end this interval and
// completes displays whose delivery has ended; completed stations
// immediately reissue (zero think time).  Both are bucket lookups:
// only the streams and displays that actually fire now are touched.
func (t *stripedTech) finishDue() {
	e := t.eng
	n := t.cfg.Subobjects
	slot := e.now % t.horizon
	if refs := t.releases[slot]; len(refs) > 0 {
		t.releases[slot] = refs[:0]
		// Coalescing reschedules releases out of admission order;
		// restore (display, stream) order so hiccup accounting matches
		// a full in-order scan.  Insertion sort: buckets are tiny and
		// already sorted unless a coalescing fired.
		for a := 1; a < len(refs); a++ {
			for b := a; b > 0 && (refs[b].d.id < refs[b-1].d.id ||
				(refs[b].d.id == refs[b-1].d.id && refs[b].i < refs[b-1].i)); b-- {
				refs[b], refs[b-1] = refs[b-1], refs[b]
			}
		}
		for _, ref := range refs {
			d := ref.d
			s := &d.streams[ref.i]
			if s.vdisk < 0 || e.now != d.tau0+s.t+n {
				continue // stale: already released or rescheduled
			}
			if t.vbusy[s.vdisk] != d.id {
				e.hiccups++
			}
			t.setVBusy(s.vdisk, freeSlot, nil)
			s.vdisk = -1 // released
		}
	}
	if ds := t.completions[slot]; len(ds) > 0 {
		t.completions[slot] = ds[:0]
		reissue := e.reissueBuf[:0]
		for _, d := range ds {
			if d.done {
				continue // aborted by a fault; the abort path settled it
			}
			d.done = true
			t.active--
			e.completed++
			e.completedTotal++
			e.emit(EvComplete, d.object, d.station, "")
			t.byObject[d.object]--
			e.stn.Complete(d.station)
			reissue = append(reissue, d.station)
			// Contiguous displays are unreachable once completed (all
			// release refs fired earlier this interval or before, and
			// they never join the coalescing list) — recycle them.
			if d.tmax == 0 {
				t.pool = append(t.pool, d)
			}
		}
		for _, s := range reissue {
			e.reissue(s)
		}
		e.reissueBuf = reissue[:0]
	}
}

// stepTertiary advances the materialization pipeline.
func (t *stripedTech) stepTertiary() {
	e := t.eng
	if t.matObject >= 0 && t.matStarted {
		e.tertBusy++
		t.matRemaining--
		if t.matRemaining == 0 {
			t.finishMaterialization()
		}
		return
	}
	if e.tertDown {
		return // device offline: no new staging starts
	}
	if t.matObject < 0 {
		id, ok := e.tman.StartNext()
		if !ok {
			return
		}
		t.matObject = id
		t.matRetries, t.matNextTry, t.matPressured = 0, 0, false
	}
	// Stage the pending object: secure space, then disks.
	obj := t.matObject
	if !t.store.Resident(obj) {
		if e.now < t.matNextTry {
			return // backing off after a failed Place
		}
		if !t.tryPlace(obj) {
			t.placeFailed(obj)
			return
		}
		t.matRetries, t.matNextTry = 0, 0
	}
	p, _ := t.store.Placement(obj)
	w := t.cfg.Tertiary.DisksOccupied(t.cfg.BDisk)
	if w > t.cfg.Degree(obj) {
		w = t.cfg.Degree(obj)
	}
	vids := t.vidScratch[:w]
	for j := 0; j < w; j++ {
		v := t.vdiskOf((p.First + j) % t.cfg.D)
		if t.vbusy[v] != freeSlot {
			return // write disks busy; retry next interval
		}
		vids[j] = v
	}
	for _, v := range vids {
		t.setVBusy(v, matOwner, nil)
	}
	t.matVdisks = append(t.matVdisks[:0], vids...)
	t.matStarted = true
	t.matRemaining = t.cfg.MaterializeIntervalsOf(obj)
	if e.tracer != nil {
		e.emit(EvMatStart, obj, -1, fmt.Sprintf("%d intervals", t.matRemaining+1))
	}
	e.tertBusy++ // the starting interval counts as busy
	t.matRemaining--
	if t.matRemaining == 0 {
		t.finishMaterialization()
	}
}

// tryPlace secures space (evicting cold residents as needed) and a
// contiguous start for obj — the legacy staging step, factored out so
// the bounded-retry path can reuse it after eviction pressure.
func (t *stripedTech) tryPlace(obj int) bool {
	if !t.makeRoom(obj) {
		return false
	}
	if _, err := t.store.Place(obj, t.cfg.Degree(obj), t.cfg.Subobjects); err != nil {
		return false
	}
	t.playEpoch[obj] = -1 // re-placed: the playability memo is stale
	return true
}

// placeFailed handles one failed Place attempt.  With the legacy
// unlimited-retry configuration (PlaceRetryLimit 0) it just leaves
// the staging pending for the next interval — the DESIGN.md §9
// livelock.  With a cap it backs off exponentially, fires the
// one-shot eviction-pressure fallback at the limit when enabled, and
// finally abandons the staging as starved so the run fails loudly
// instead of delivering a silent zero-display sweep.
func (t *stripedTech) placeFailed(obj int) {
	e := t.eng
	limit := t.cfg.PlaceRetryLimit
	if limit == 0 {
		return // retry next interval, forever
	}
	t.matRetries++
	if t.matRetries >= limit {
		if t.cfg.EvictionPressure && !t.matPressured {
			// Last resort before starving: evict every replaceable
			// resident, trading catalog variety for a defragmented
			// farm, and try once more.
			t.matPressured = true
			t.pressureEvict()
			if t.tryPlace(obj) {
				t.matRetries, t.matNextTry = 0, 0
				return
			}
		}
		e.countStarved(obj)
		t.matObject = -1
		t.matRetries, t.matNextTry, t.matPressured = 0, 0, false
		e.tman.Abort()
		return
	}
	// Exponential backoff, capped at 16 intervals: the farm only
	// changes when displays end or evictions fire, so hammering Place
	// every interval buys nothing.
	shift := t.matRetries
	if shift > 4 {
		shift = 4
	}
	t.matNextTry = e.now + 1<<shift
}

// pressureEvict evicts every currently replaceable resident — beyond
// the strict byte need makeRoom stops at — so a fragmented exact-fit
// farm gets one defragmented chance before a staging starves.
func (t *stripedTech) pressureEvict() {
	e := t.eng
	victims := append(t.candScratch[:0], t.store.ResidentIDs()...)
	for _, id := range victims {
		if !t.evictable(id) {
			continue
		}
		t.ready[id] = false
		e.emit(EvEvict, id, -1, "pressure")
		if err := t.store.Evict(id); err != nil {
			e.hiccups++
		}
	}
	t.candScratch = victims[:0]
}

// finishMaterialization publishes the staged object and frees the
// write disks and the device.
func (t *stripedTech) finishMaterialization() {
	e := t.eng
	e.emit(EvMatEnd, t.matObject, -1, "")
	t.ready[t.matObject] = true
	for _, v := range t.matVdisks {
		t.setVBusy(v, freeSlot, nil)
	}
	t.matVdisks = t.matVdisks[:0]
	t.matObject = -1
	t.matStarted = false
	if _, err := e.tman.Finish(); err != nil {
		e.hiccups++
	}
	e.materialized++
}

// makeRoom evicts least-frequently-accessed evictable objects until
// the farm has space for obj.  It reports whether enough space exists.
// The candidate set is built once per call and shrunk incrementally as
// victims go — nothing that happens inside this loop changes any other
// object's evictability.
func (t *stripedTech) makeRoom(obj int) bool {
	e := t.eng
	need := t.cfg.Degree(obj) * t.cfg.Subobjects
	if t.store.FreeFragments() >= need {
		return true
	}
	candidates := t.candScratch[:0]
	for _, id := range t.store.ResidentIDs() {
		if t.evictable(id) {
			candidates = append(candidates, id)
		}
	}
	defer func() { t.candScratch = candidates[:0] }()
	for t.store.FreeFragments() < need {
		victim, ok := e.lfu.Victim(candidates)
		if !ok {
			return false
		}
		for i, id := range candidates {
			if id == victim {
				candidates = append(candidates[:i], candidates[i+1:]...)
				break
			}
		}
		t.ready[victim] = false
		e.emit(EvEvict, victim, -1, "")
		if err := t.store.Evict(victim); err != nil {
			e.hiccups++
			return false
		}
	}
	return true
}

// evictable reports whether object id may be replaced: resident,
// fully materialized, not being displayed, and not referenced by a
// queued request.
func (t *stripedTech) evictable(id int) bool {
	return t.ready[id] && t.byObject[id] == 0 && t.eng.pinned[id] == 0 && id != t.matObject
}

// fragmentedAttemptsPerInterval bounds how many queued requests may
// run the (O(free disks × M)) Algorithm-1 search in one interval.
const fragmentedAttemptsPerInterval = 8

// admit scans the queue in arrival order and starts every display
// whose disks are free, per §3.1's use of idle time intervals for new
// requests.  Non-resident objects are routed to the tertiary manager.
// With FCFSStrict the scan stops at the first request that cannot
// start (head-of-line blocking).  A request whose object needs more
// disks than the whole farm has free is skipped without probing.
func (t *stripedTech) admit() {
	e := t.eng
	if len(e.queue) == 0 {
		return
	}
	kept := e.queueScratch[:0]
	fragBudget := fragmentedAttemptsPerInterval
	for qi, r := range e.queue {
		if !t.ready[r.object] {
			e.tman.Request(r.object)
			kept = append(kept, r)
			if t.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		p, ok := t.store.Placement(r.object)
		if !ok { // evicted between materialization and admission
			t.ready[r.object] = false
			e.tman.Request(r.object)
			kept = append(kept, r)
			if t.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		if !t.playable(r.object) {
			// The layout's stride orbit crosses a down disk: admitting
			// would guarantee hiccups or an abort, so refuse instead.
			// Deferred past the queue swap — kept aliases the queue's
			// backing array, and the rejection path reissues the
			// station, which must append to the NEW queue.
			t.rejectBuf = append(t.rejectBuf, r)
			continue
		}
		if t.cfg.D-t.busy >= t.cfg.Degree(r.object) && t.tryAdmit(r, p, &fragBudget) {
			e.pinned[r.object]--
			continue
		}
		kept = append(kept, r)
		if t.cfg.FCFSStrict {
			kept = append(kept, e.queue[qi+1:]...)
			break
		}
	}
	e.queueScratch = e.queue[:0]
	e.queue = kept
	if len(t.rejectBuf) > 0 {
		for _, r := range t.rejectBuf {
			e.countReject(r)
		}
		t.rejectBuf = t.rejectBuf[:0]
	}
}

// tryAdmit attempts a contiguous admission, falling back to
// time-fragmented admission (Algorithm 1) for the queue head when
// enabled.
func (t *stripedTech) tryAdmit(r request, p core.Placement, fragBudget *int) bool {
	m := t.cfg.Degree(r.object)
	// Contiguous: the M disks of subobject 0 must be free right now.
	vids := t.vidScratch[:m]
	okContig := true
	for j := 0; j < m; j++ {
		v := t.vdiskOf((p.First + j) % t.cfg.D)
		if t.vbusy[v] != freeSlot {
			okContig = false
			break
		}
		vids[j] = v
	}
	if okContig {
		t.start(r, p, vids, t.zeroTs[:m], 0)
		return true
	}
	if !t.cfg.Fragmented || *fragBudget <= 0 {
		return false
	}
	*fragBudget--
	// Time-fragmented admission over all currently free disks.
	free := t.freeScratch[:0]
	for v, o := range t.vbusy {
		if o == freeSlot {
			free = append(free, vdisk.Physical(v, t.eng.now, t.cfg.K, t.cfg.D))
		}
	}
	t.freeScratch = free[:0]
	a, ok := vdisk.ChooseVirtualDisks(t.cfg.D, t.cfg.K, p.First, m, free)
	if !ok {
		return false
	}
	maxStartup := t.cfg.MaxStartup
	if maxStartup == 0 {
		// Each interval of startup delay costs one buffered fragment
		// per early stream and stretches the disk reservation past the
		// display length, so unbounded Tmax hurts more than queueing a
		// little longer; a few interval-widths of headroom captures
		// nearly all of Algorithm 1's benefit.
		maxStartup = 2 * m
	}
	if a.Tmax > maxStartup {
		return false
	}
	gvids := t.vidScratch[:m]
	ts := t.tsScratch[:m]
	for i, z := range a.Z {
		gvids[i] = t.vdiskOf(z)
		ts[i] = a.T[i]
	}
	t.start(r, p, gvids, ts, a.Tmax)
	return true
}

// start activates a display on the given virtual disks and schedules
// its future events: one release per stream and one completion.
func (t *stripedTech) start(r request, p core.Placement, vids, ts []int, tmax int) {
	e := t.eng
	n := t.cfg.Subobjects
	var d *display
	if k := len(t.pool); k > 0 {
		d = t.pool[k-1]
		t.pool = t.pool[:k-1]
	} else {
		d = new(display)
	}
	streams := d.streams
	if cap(streams) < len(vids) {
		streams = make([]stream, len(vids))
	} else {
		streams = streams[:len(vids)]
	}
	*d = display{
		id:         t.nextID,
		station:    r.station,
		object:     r.object,
		first:      p.First,
		tau0:       e.now,
		tmax:       tmax,
		streams:    streams,
		degradedAt: -2, // never degraded: -2 is adjacent to no interval
	}
	t.nextID++
	for i := range vids {
		if t.vbusy[vids[i]] != freeSlot {
			e.hiccups++
		}
		t.setVBusy(vids[i], d.id, d)
		d.streams[i] = stream{vdisk: vids[i], t: ts[i]}
		slot := (d.tau0 + ts[i] + n) % t.horizon
		t.releases[slot] = append(t.releases[slot], streamRef{d: d, i: i})
	}
	slot := (d.deliveryEnd(n) + 1) % t.horizon
	t.completions[slot] = append(t.completions[slot], d)
	if tmax > 0 {
		t.coalescing = append(t.coalescing, d)
	}
	t.active++
	t.byObject[r.object]++
	e.admittedTotal++
	e.admitted = append(e.admitted, float64(e.now-r.arrived)*t.cfg.IntervalSeconds())
	if e.tracer != nil {
		e.emit(EvAdmit, r.object, r.station, fmt.Sprintf("first=%d tmax=%d", d.first, d.tmax))
	}
}

// coalesce applies Algorithm 2: any stream buffering ahead of the
// display (T_i < Tmax) moves to the ideal virtual disk — the one a
// contiguous admission at τ0+Tmax would have used — as soon as it is
// free.  Only displays that still have such a stream are visited; the
// list drops a display once every stream has moved, released, or can
// never move (its ideal disk is the one it already holds).
func (t *stripedTech) coalesce() {
	if len(t.coalescing) == 0 {
		return
	}
	e := t.eng
	n := t.cfg.Subobjects
	kept := t.coalescing[:0]
	for _, d := range t.coalescing {
		if d.done {
			continue
		}
		pending := false
		for i := range d.streams {
			s := &d.streams[i]
			if s.vdisk < 0 || s.t == d.tmax {
				continue
			}
			// The virtual disk a contiguous admission at τ0+Tmax
			// would have used for fragment i.
			ideal := vdisk.VirtualAt((d.first+i)%t.cfg.D, d.tau0+d.tmax, t.cfg.K, t.cfg.D)
			if ideal == s.vdisk {
				continue // already on it; will release on its own clock
			}
			if t.vbusy[ideal] != freeSlot {
				pending = true
				continue
			}
			t.setVBusy(s.vdisk, freeSlot, nil)
			t.setVBusy(ideal, d.id, d)
			s.vdisk = ideal
			s.t = d.tmax
			slot := (d.tau0 + d.tmax + n) % t.horizon
			t.releases[slot] = append(t.releases[slot], streamRef{d: d, i: i})
			e.coalescings++
			if e.tracer != nil {
				e.emit(EvCoalesce, d.object, d.station, fmt.Sprintf("fragment %d", i))
			}
		}
		if pending {
			kept = append(kept, d)
		}
	}
	t.coalescing = kept
}
