package sched

import (
	"fmt"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/vdisk"
	"github.com/mmsim/staggered/internal/workload"
)

// request is one station's pending object reference.
type request struct {
	station int
	object  int
	arrived int // interval
}

// stream is one fragment stream of an active display: the global
// virtual disk serving it and its alignment delay T_i relative to the
// admission interval.
type stream struct {
	vdisk int
	t     int
}

// display is an active delivery.
type display struct {
	id      int
	station int
	object  int
	first   int // disk of the object's fragment (0,0)
	tau0    int // admission interval
	tmax    int
	streams []stream
}

// deliveryEnd returns the interval during which the last subobject is
// delivered.
func (d *display) deliveryEnd(n int) int { return d.tau0 + d.tmax + n - 1 }

// Striped simulates a staggered-striped disk farm (simple striping is
// the special case K = M).  Occupancy is tracked in virtual-disk
// space: physical disk f at interval t corresponds to virtual disk
// (f − K·t) mod D, and a display's streams own fixed virtual disks
// for the duration of their reads, so bookkeeping is O(1) per stream
// per transition rather than per interval.
type Striped struct {
	cfg    Config
	layout core.Layout
	store  *core.Store
	lfu    *policy.LFU
	tman   *tertiary.Manager
	gen    *workload.Generator
	stn    *workload.Stations
	think  []*rng.Stream // per-station think-time streams

	vbusy []int // virtual disk -> owner display id, matOwner, or freeSlot

	displays []*display
	nextID   int
	byObject map[int]int // object -> active display count

	queue   []request
	pinned  map[int]int   // object -> queued request count
	wakeups map[int][]int // interval -> stations whose think time ends

	ready map[int]bool // object resident and fully materialized

	// Tertiary state.
	matObject    int // object being staged, -1 when idle
	matStarted   bool
	matRemaining int
	matVdisks    []int

	now    int
	tracer Tracer

	// Counters (window handling in Run).
	completed    int
	materialized int
	coalescings  int
	hiccups      int
	admitted     []float64 // admission latencies in seconds
	busyArea     float64   // disk-busy integral in virtual-disk·intervals
	tertBusy     int       // busy intervals
}

const (
	freeSlot = -1
	matOwner = -2
)

// NewStriped builds a striped engine from the configuration.
func NewStriped(cfg Config) (*Striped, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := core.NewLayout(cfg.D, cfg.K)
	if err != nil {
		return nil, err
	}
	st, err := core.NewStore(layout, cfg.CapacityFragments)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(rng.NewSource(cfg.Seed), cfg.Objects, cfg.DistMean, cfg.Stations)
	if err != nil {
		return nil, err
	}
	e := &Striped{
		cfg:       cfg,
		layout:    layout,
		store:     st,
		lfu:       policy.NewLFU(),
		tman:      tertiary.NewManager(),
		gen:       gen,
		stn:       workload.NewStations(gen),
		vbusy:     make([]int, cfg.D),
		byObject:  make(map[int]int),
		pinned:    make(map[int]int),
		wakeups:   make(map[int][]int),
		ready:     make(map[int]bool),
		matObject: -1,
	}
	if cfg.ThinkMeanSeconds > 0 {
		src := rng.NewSource(cfg.Seed)
		e.think = make([]*rng.Stream, cfg.Stations)
		for i := range e.think {
			e.think[i] = src.StreamN("think", i)
		}
	}
	for i := range e.vbusy {
		e.vbusy[i] = freeSlot
	}
	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.DefaultPreload()
	}
	// Best-effort fill: with strides whose footprints have ramps
	// (k < M and short objects) the farm cannot always be packed to
	// the last fragment, so preloading stops at the first object that
	// no longer fits — exactly what on-demand materialization would
	// have produced.
	for _, id := range gen.TopObjects(preload) {
		if _, err := e.store.Place(id, cfg.Degree(id), cfg.Subobjects); err != nil {
			break
		}
		e.ready[id] = true
	}
	return e, nil
}

// vdiskOf maps physical disk f at the current interval to its global
// virtual disk.
func (e *Striped) vdiskOf(f int) int {
	return vdisk.VirtualAt(f, e.now, e.cfg.K, e.cfg.D)
}

// enqueue issues a new reference for station s.
func (e *Striped) enqueue(s int) {
	r := e.stn.Issue(s, float64(e.now)*e.cfg.IntervalSeconds())
	req := request{station: r.Station, object: r.Object, arrived: e.now}
	e.queue = append(e.queue, req)
	e.pinned[req.object]++
	e.lfu.Touch(req.object)
	e.emit(EvRequest, req.object, req.station, "")
}

// step advances the simulation by one interval.
func (e *Striped) step() {
	if stations := e.wakeups[e.now]; stations != nil {
		for _, st := range stations {
			e.enqueue(st)
		}
		delete(e.wakeups, e.now)
	}
	e.finishDisplays()
	e.stepTertiary()
	e.admit()
	if e.cfg.Coalescing {
		e.coalesce()
	}
	busy := 0
	for _, o := range e.vbusy {
		if o != freeSlot {
			busy++
		}
	}
	e.busyArea += float64(busy)
	e.now++
}

// finishDisplays releases stream disks whose reads have ended and
// completes displays whose delivery has ended; completed stations
// immediately reissue (zero think time).
func (e *Striped) finishDisplays() {
	n := e.cfg.Subobjects
	kept := e.displays[:0]
	var reissue []int
	for _, d := range e.displays {
		for i := range d.streams {
			s := &d.streams[i]
			if s.vdisk >= 0 && e.now == d.tau0+s.t+n {
				if e.vbusy[s.vdisk] != d.id {
					e.hiccups++
				}
				e.vbusy[s.vdisk] = freeSlot
				s.vdisk = -1 // released
			}
		}
		if e.now == d.deliveryEnd(n)+1 {
			e.completed++
			e.emit(EvComplete, d.object, d.station, "")
			e.byObject[d.object]--
			if e.byObject[d.object] == 0 {
				delete(e.byObject, d.object)
			}
			e.stn.Complete(d.station)
			reissue = append(reissue, d.station)
			continue
		}
		kept = append(kept, d)
	}
	e.displays = kept
	for _, s := range reissue {
		e.reissue(s)
	}
}

// reissue starts station s's next request, after its think time when
// one is configured.
func (e *Striped) reissue(s int) {
	if e.cfg.ThinkMeanSeconds <= 0 {
		e.enqueue(s)
		return
	}
	secs := e.think[s].Exp(e.cfg.ThinkMeanSeconds)
	delay := int(secs / e.cfg.IntervalSeconds())
	if delay < 1 {
		delay = 1
	}
	at := e.now + delay
	e.wakeups[at] = append(e.wakeups[at], s)
}

// stepTertiary advances the materialization pipeline.
func (e *Striped) stepTertiary() {
	if e.matObject >= 0 && e.matStarted {
		e.tertBusy++
		e.matRemaining--
		if e.matRemaining == 0 {
			e.finishMaterialization()
		}
		return
	}
	if e.matObject < 0 {
		id, ok := e.tman.StartNext()
		if !ok {
			return
		}
		e.matObject = id
	}
	// Stage the pending object: secure space, then disks.
	obj := e.matObject
	if !e.store.Resident(obj) {
		if !e.makeRoom(obj) {
			return // retry next interval
		}
		if _, err := e.store.Place(obj, e.cfg.Degree(obj), e.cfg.Subobjects); err != nil {
			return // still no contiguous start; retry
		}
	}
	p, _ := e.store.Placement(obj)
	w := e.cfg.Tertiary.DisksOccupied(e.cfg.BDisk)
	if w > e.cfg.Degree(obj) {
		w = e.cfg.Degree(obj)
	}
	vids := make([]int, w)
	for j := 0; j < w; j++ {
		v := e.vdiskOf((p.First + j) % e.cfg.D)
		if e.vbusy[v] != freeSlot {
			return // write disks busy; retry next interval
		}
		vids[j] = v
	}
	for _, v := range vids {
		e.vbusy[v] = matOwner
	}
	e.matVdisks = vids
	e.matStarted = true
	e.matRemaining = e.cfg.MaterializeIntervalsOf(obj)
	e.emit(EvMatStart, obj, -1, fmt.Sprintf("%d intervals", e.matRemaining+1))
	e.tertBusy++ // the starting interval counts as busy
	e.matRemaining--
	if e.matRemaining == 0 {
		e.finishMaterialization()
	}
}

// finishMaterialization publishes the staged object and frees the
// write disks and the device.
func (e *Striped) finishMaterialization() {
	e.emit(EvMatEnd, e.matObject, -1, "")
	e.ready[e.matObject] = true
	for _, v := range e.matVdisks {
		e.vbusy[v] = freeSlot
	}
	e.matVdisks = nil
	e.matObject = -1
	e.matStarted = false
	if _, err := e.tman.Finish(); err != nil {
		e.hiccups++
	}
	e.materialized++
}

// makeRoom evicts least-frequently-accessed evictable objects until
// the farm has space for obj.  It reports whether enough space exists.
func (e *Striped) makeRoom(obj int) bool {
	need := e.cfg.Degree(obj) * e.cfg.Subobjects
	for e.store.FreeFragments() < need {
		candidates := make([]int, 0, e.store.ResidentCount())
		for _, id := range e.store.ResidentIDs() {
			if e.evictable(id) {
				candidates = append(candidates, id)
			}
		}
		victim, ok := e.lfu.Victim(candidates)
		if !ok {
			return false
		}
		delete(e.ready, victim)
		e.emit(EvEvict, victim, -1, "")
		if err := e.store.Evict(victim); err != nil {
			e.hiccups++
			return false
		}
	}
	return true
}

// evictable reports whether object id may be replaced: resident,
// fully materialized, not being displayed, and not referenced by a
// queued request.
func (e *Striped) evictable(id int) bool {
	return e.ready[id] && e.byObject[id] == 0 && e.pinned[id] == 0 && id != e.matObject
}

// fragmentedAttemptsPerInterval bounds how many queued requests may
// run the (O(free disks × M)) Algorithm-1 search in one interval.
const fragmentedAttemptsPerInterval = 8

// admit scans the queue in arrival order and starts every display
// whose disks are free, per §3.1's use of idle time intervals for new
// requests.  Non-resident objects are routed to the tertiary manager.
// With FCFSStrict the scan stops at the first request that cannot
// start (head-of-line blocking).
func (e *Striped) admit() {
	kept := make([]request, 0, len(e.queue))
	fragBudget := fragmentedAttemptsPerInterval
	for qi, r := range e.queue {
		if !e.ready[r.object] {
			e.tman.Request(r.object)
			kept = append(kept, r)
			if e.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		p, ok := e.store.Placement(r.object)
		if !ok { // evicted between materialization and admission
			delete(e.ready, r.object)
			e.tman.Request(r.object)
			kept = append(kept, r)
			if e.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		if e.tryAdmit(r, p, &fragBudget) {
			e.pinned[r.object]--
			if e.pinned[r.object] == 0 {
				delete(e.pinned, r.object)
			}
			continue
		}
		kept = append(kept, r)
		if e.cfg.FCFSStrict {
			kept = append(kept, e.queue[qi+1:]...)
			break
		}
	}
	e.queue = kept
}

// tryAdmit attempts a contiguous admission, falling back to
// time-fragmented admission (Algorithm 1) for the queue head when
// enabled.
func (e *Striped) tryAdmit(r request, p core.Placement, fragBudget *int) bool {
	m := e.cfg.Degree(r.object)
	// Contiguous: the M disks of subobject 0 must be free right now.
	vids := make([]int, m)
	okContig := true
	for j := 0; j < m; j++ {
		v := e.vdiskOf((p.First + j) % e.cfg.D)
		if e.vbusy[v] != freeSlot {
			okContig = false
			break
		}
		vids[j] = v
	}
	if okContig {
		e.start(r, p, vids, make([]int, m), 0)
		return true
	}
	if !e.cfg.Fragmented || *fragBudget <= 0 {
		return false
	}
	*fragBudget--
	// Time-fragmented admission over all currently free disks.
	free := make([]int, 0, 64)
	for v, o := range e.vbusy {
		if o == freeSlot {
			free = append(free, vdisk.Physical(v, e.now, e.cfg.K, e.cfg.D))
		}
	}
	a, ok := vdisk.ChooseVirtualDisks(e.cfg.D, e.cfg.K, p.First, m, free)
	if !ok {
		return false
	}
	maxStartup := e.cfg.MaxStartup
	if maxStartup == 0 {
		// Each interval of startup delay costs one buffered fragment
		// per early stream and stretches the disk reservation past the
		// display length, so unbounded Tmax hurts more than queueing a
		// little longer; a few interval-widths of headroom captures
		// nearly all of Algorithm 1's benefit.
		maxStartup = 2 * m
	}
	if a.Tmax > maxStartup {
		return false
	}
	gvids := make([]int, m)
	ts := make([]int, m)
	for i, z := range a.Z {
		gvids[i] = e.vdiskOf(z)
		ts[i] = a.T[i]
	}
	e.start(r, p, gvids, ts, a.Tmax)
	return true
}

// start activates a display on the given virtual disks.
func (e *Striped) start(r request, p core.Placement, vids, ts []int, tmax int) {
	d := &display{
		id:      e.nextID,
		station: r.station,
		object:  r.object,
		first:   p.First,
		tau0:    e.now,
		tmax:    tmax,
		streams: make([]stream, len(vids)),
	}
	e.nextID++
	for i := range vids {
		if e.vbusy[vids[i]] != freeSlot {
			e.hiccups++
		}
		e.vbusy[vids[i]] = d.id
		d.streams[i] = stream{vdisk: vids[i], t: ts[i]}
	}
	e.displays = append(e.displays, d)
	e.byObject[r.object]++
	e.admitted = append(e.admitted, float64(e.now-r.arrived)*e.cfg.IntervalSeconds())
	e.emit(EvAdmit, r.object, r.station, fmt.Sprintf("first=%d tmax=%d", d.first, d.tmax))
}

// coalesce applies Algorithm 2: any stream buffering ahead of the
// display (T_i < Tmax) moves to the ideal virtual disk — the one a
// contiguous admission at τ0+Tmax would have used — as soon as it is
// free.
func (e *Striped) coalesce() {
	for _, d := range e.displays {
		if d.tmax == 0 {
			continue
		}
		for i := range d.streams {
			s := &d.streams[i]
			if s.vdisk < 0 || s.t == d.tmax {
				continue
			}
			// The virtual disk a contiguous admission at τ0+Tmax
			// would have used for fragment i.
			ideal := vdisk.VirtualAt((d.first+i)%e.cfg.D, d.tau0+d.tmax, e.cfg.K, e.cfg.D)
			if ideal == s.vdisk || e.vbusy[ideal] != freeSlot {
				continue
			}
			e.vbusy[s.vdisk] = freeSlot
			e.vbusy[ideal] = d.id
			s.vdisk = ideal
			s.t = d.tmax
			e.coalescings++
			e.emit(EvCoalesce, d.object, d.station, fmt.Sprintf("fragment %d", i))
		}
	}
}

// Run executes warm-up and measurement and returns the statistics.
func (e *Striped) Run() Result {
	if e.now != 0 {
		panic("sched: Run called twice")
	}
	for s := 0; s < e.cfg.Stations; s++ {
		e.enqueue(s)
	}
	for e.now < e.cfg.WarmupIntervals {
		e.step()
	}
	// Reset window counters.
	e.completed, e.materialized, e.coalescings = 0, 0, 0
	e.admitted = e.admitted[:0]
	e.busyArea, e.tertBusy = 0, 0

	end := e.cfg.WarmupIntervals + e.cfg.MeasureIntervals
	for e.now < end {
		e.step()
	}

	res := Result{
		Technique:       e.techniqueName(),
		Stations:        e.cfg.Stations,
		DistMean:        e.cfg.DistMean,
		WarmupSeconds:   float64(e.cfg.WarmupIntervals) * e.cfg.IntervalSeconds(),
		MeasureSeconds:  float64(e.cfg.MeasureIntervals) * e.cfg.IntervalSeconds(),
		Displays:        e.completed,
		Materializa:     e.materialized,
		Hiccups:         e.hiccups,
		Coalescings:     e.coalescings,
		TertiaryBusy:    float64(e.tertBusy) / float64(e.cfg.MeasureIntervals),
		DiskBusy:        e.busyArea / (float64(e.cfg.MeasureIntervals) * float64(e.cfg.D)),
		UniqueResidents: e.store.ResidentCount(),
	}
	for _, l := range e.admitted {
		res.Latency.Add(l)
	}
	return res
}

func (e *Striped) techniqueName() string {
	if e.cfg.K == e.cfg.M {
		return "simple striping"
	}
	return fmt.Sprintf("staggered striping (k=%d)", e.cfg.K)
}
