package sched

import (
	"fmt"

	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/policy"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sim"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/vdisk"
	"github.com/mmsim/staggered/internal/workload"
)

// request is one station's pending object reference.
type request struct {
	station int
	object  int
	arrived int // interval
}

// stream is one fragment stream of an active display: the global
// virtual disk serving it and its alignment delay T_i relative to the
// admission interval.
type stream struct {
	vdisk int
	t     int
}

// display is an active delivery.
type display struct {
	id      int
	station int
	object  int
	first   int // disk of the object's fragment (0,0)
	tau0    int // admission interval
	tmax    int
	done    bool // delivery completed
	streams []stream
}

// deliveryEnd returns the interval during which the last subobject is
// delivered.
func (d *display) deliveryEnd(n int) int { return d.tau0 + d.tmax + n - 1 }

// streamRef addresses one stream of a display inside an event bucket.
type streamRef struct {
	d *display
	i int
}

// Striped simulates a staggered-striped disk farm (simple striping is
// the special case K = M).  Occupancy is tracked in virtual-disk
// space: physical disk f at interval t corresponds to virtual disk
// (f − K·t) mod D, and a display's streams own fixed virtual disks
// for the duration of their reads, so bookkeeping is O(1) per stream
// per transition rather than per interval.
//
// All per-interval work is event-driven: stream releases and display
// completions live in interval-keyed buckets (like wakeups), the
// farm-busy integral is maintained incrementally at every
// acquire/release site, and only displays that still have a stream to
// coalesce are visited by Algorithm 2.  An interval in which nothing
// happens costs O(1), independent of D, the number of active
// displays, and the queue length.
type Striped struct {
	cfg    Config
	layout core.Layout
	store  *core.Store
	lfu    *policy.LFU
	tman   *tertiary.Manager
	gen    *workload.Generator
	stn    *workload.Stations
	think  []*rng.Stream // per-station think-time streams

	vbusy []int // virtual disk -> owner display id, matOwner, or freeSlot
	busy  int   // count of non-free virtual disks, maintained incrementally

	nextID   int
	byObject []int // object -> active display count

	queue     []request
	pinned    []int               // object -> queued request count
	wakeups   *sim.TickWheel[int] // interval -> stations whose think time ends
	wakeupBuf []int               // reused Due drain buffer

	ready []bool // object resident and fully materialized

	// Event rings: what fires at a given interval, indexed by
	// interval mod the ring length.  Every event is scheduled at most
	// horizon-1 intervals ahead (one display length plus the maximum
	// startup delay), so slots never collide; slice backings are
	// reused after each firing.  Entries may be stale (a coalescing
	// move reschedules a release); consumers re-validate against the
	// display's current state.
	horizon     int
	releases    [][]streamRef // stream releases due, by interval mod horizon
	completions [][]*display  // delivery ends, by interval mod horizon
	coalescing  []*display    // displays with a stream still to coalesce
	pool        []*display    // recycled contiguous displays

	// Reusable scratch buffers (hot path, zero steady-state allocs).
	queueScratch []request
	vidScratch   []int
	tsScratch    []int
	zeroTs       []int
	freeScratch  []int
	candScratch  []int
	reissueBuf   []int

	// Tertiary state.
	matObject    int // object being staged, -1 when idle
	matStarted   bool
	matRemaining int
	matVdisks    []int

	now    int
	tracer Tracer

	// Counters (window handling in Run).
	completed    int
	materialized int
	coalescings  int
	hiccups      int
	admitted     []float64 // admission latencies in seconds
	busyArea     float64   // disk-busy integral in virtual-disk·intervals
	tertBusy     int       // busy intervals
}

const (
	freeSlot = -1
	matOwner = -2
)

// NewStriped builds a striped engine from the configuration.
func NewStriped(cfg Config) (*Striped, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := core.NewLayout(cfg.D, cfg.K)
	if err != nil {
		return nil, err
	}
	st, err := core.NewStore(layout, cfg.CapacityFragments)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(rng.NewSource(cfg.Seed), cfg.Objects, cfg.DistMean, cfg.Stations)
	if err != nil {
		return nil, err
	}
	maxDegree := cfg.M
	for id := 0; id < cfg.Objects; id++ {
		if m := cfg.Degree(id); m > maxDegree {
			maxDegree = m
		}
	}
	// Every release and completion is scheduled at most one display
	// length plus the maximum startup delay ahead, so a ring of that
	// horizon never sees two intervals share a slot.
	maxStartup := cfg.MaxStartup
	if maxStartup == 0 {
		maxStartup = 2 * maxDegree
	}
	horizon := cfg.Subobjects + maxStartup + 2
	e := &Striped{
		cfg:         cfg,
		layout:      layout,
		store:       st,
		lfu:         policy.NewLFU(),
		tman:        tertiary.NewManager(),
		gen:         gen,
		stn:         workload.NewStations(gen),
		vbusy:       make([]int, cfg.D),
		byObject:    make([]int, cfg.Objects),
		pinned:      make([]int, cfg.Objects),
		wakeups:     sim.NewTickWheel[int](),
		ready:       make([]bool, cfg.Objects),
		horizon:     horizon,
		releases:    make([][]streamRef, horizon),
		completions: make([][]*display, horizon),
		vidScratch:  make([]int, maxDegree),
		tsScratch:   make([]int, maxDegree),
		zeroTs:      make([]int, maxDegree),
		matObject:   -1,
	}
	if cfg.ThinkMeanSeconds > 0 {
		src := rng.NewSource(cfg.Seed)
		e.think = make([]*rng.Stream, cfg.Stations)
		for i := range e.think {
			e.think[i] = src.StreamN("think", i)
		}
	}
	for i := range e.vbusy {
		e.vbusy[i] = freeSlot
	}
	preload := cfg.PreloadTop
	if preload == 0 {
		preload = cfg.DefaultPreload()
	}
	// Best-effort fill: with strides whose footprints have ramps
	// (k < M and short objects) the farm cannot always be packed to
	// the last fragment, so preloading stops at the first object that
	// no longer fits — exactly what on-demand materialization would
	// have produced.
	for _, id := range gen.TopObjects(preload) {
		if _, err := e.store.Place(id, cfg.Degree(id), cfg.Subobjects); err != nil {
			break
		}
		e.ready[id] = true
	}
	return e, nil
}

// vdiskOf maps physical disk f at the current interval to its global
// virtual disk.
func (e *Striped) vdiskOf(f int) int {
	return vdisk.VirtualAt(f, e.now, e.cfg.K, e.cfg.D)
}

// setVBusy transfers ownership of virtual disk v and maintains the
// farm-busy counter — the incremental replacement for the per-interval
// O(D) occupancy scan.
func (e *Striped) setVBusy(v, owner int) {
	if (e.vbusy[v] == freeSlot) != (owner == freeSlot) {
		if owner == freeSlot {
			e.busy--
		} else {
			e.busy++
		}
	}
	e.vbusy[v] = owner
}

// enqueue issues a new reference for station s.
func (e *Striped) enqueue(s int) {
	r := e.stn.Issue(s, float64(e.now)*e.cfg.IntervalSeconds())
	req := request{station: r.Station, object: r.Object, arrived: e.now}
	e.queue = append(e.queue, req)
	e.pinned[req.object]++
	e.lfu.Touch(req.object)
	e.emit(EvRequest, req.object, req.station, "")
}

// step advances the simulation by one interval.
func (e *Striped) step() {
	e.wakeupBuf = e.wakeups.Due(e.now, e.wakeupBuf[:0])
	for _, st := range e.wakeupBuf {
		e.enqueue(st)
	}
	e.finishDisplays()
	e.stepTertiary()
	e.admit()
	if e.cfg.Coalescing {
		e.coalesce()
	}
	e.busyArea += float64(e.busy)
	e.now++
}

// finishDisplays releases stream disks whose reads end this interval
// and completes displays whose delivery has ended; completed stations
// immediately reissue (zero think time).  Both are bucket lookups:
// only the streams and displays that actually fire now are touched.
func (e *Striped) finishDisplays() {
	n := e.cfg.Subobjects
	slot := e.now % e.horizon
	if refs := e.releases[slot]; len(refs) > 0 {
		e.releases[slot] = refs[:0]
		// Coalescing reschedules releases out of admission order;
		// restore (display, stream) order so hiccup accounting matches
		// a full in-order scan.  Insertion sort: buckets are tiny and
		// already sorted unless a coalescing fired.
		for a := 1; a < len(refs); a++ {
			for b := a; b > 0 && (refs[b].d.id < refs[b-1].d.id ||
				(refs[b].d.id == refs[b-1].d.id && refs[b].i < refs[b-1].i)); b-- {
				refs[b], refs[b-1] = refs[b-1], refs[b]
			}
		}
		for _, ref := range refs {
			d := ref.d
			s := &d.streams[ref.i]
			if s.vdisk < 0 || e.now != d.tau0+s.t+n {
				continue // stale: already released or rescheduled
			}
			if e.vbusy[s.vdisk] != d.id {
				e.hiccups++
			}
			e.setVBusy(s.vdisk, freeSlot)
			s.vdisk = -1 // released
		}
	}
	if ds := e.completions[slot]; len(ds) > 0 {
		e.completions[slot] = ds[:0]
		reissue := e.reissueBuf[:0]
		for _, d := range ds {
			d.done = true
			e.completed++
			e.emit(EvComplete, d.object, d.station, "")
			e.byObject[d.object]--
			e.stn.Complete(d.station)
			reissue = append(reissue, d.station)
			// Contiguous displays are unreachable once completed (all
			// release refs fired earlier this interval or before, and
			// they never join the coalescing list) — recycle them.
			if d.tmax == 0 {
				e.pool = append(e.pool, d)
			}
		}
		for _, s := range reissue {
			e.reissue(s)
		}
		e.reissueBuf = reissue[:0]
	}
}

// reissue starts station s's next request, after its think time when
// one is configured.
func (e *Striped) reissue(s int) {
	if e.cfg.ThinkMeanSeconds <= 0 {
		e.enqueue(s)
		return
	}
	secs := e.think[s].Exp(e.cfg.ThinkMeanSeconds)
	delay := int(secs / e.cfg.IntervalSeconds())
	if delay < 1 {
		delay = 1
	}
	e.wakeups.Add(e.now+delay, s)
}

// stepTertiary advances the materialization pipeline.
func (e *Striped) stepTertiary() {
	if e.matObject >= 0 && e.matStarted {
		e.tertBusy++
		e.matRemaining--
		if e.matRemaining == 0 {
			e.finishMaterialization()
		}
		return
	}
	if e.matObject < 0 {
		id, ok := e.tman.StartNext()
		if !ok {
			return
		}
		e.matObject = id
	}
	// Stage the pending object: secure space, then disks.
	obj := e.matObject
	if !e.store.Resident(obj) {
		if !e.makeRoom(obj) {
			return // retry next interval
		}
		if _, err := e.store.Place(obj, e.cfg.Degree(obj), e.cfg.Subobjects); err != nil {
			return // still no contiguous start; retry
		}
	}
	p, _ := e.store.Placement(obj)
	w := e.cfg.Tertiary.DisksOccupied(e.cfg.BDisk)
	if w > e.cfg.Degree(obj) {
		w = e.cfg.Degree(obj)
	}
	vids := e.vidScratch[:w]
	for j := 0; j < w; j++ {
		v := e.vdiskOf((p.First + j) % e.cfg.D)
		if e.vbusy[v] != freeSlot {
			return // write disks busy; retry next interval
		}
		vids[j] = v
	}
	for _, v := range vids {
		e.setVBusy(v, matOwner)
	}
	e.matVdisks = append(e.matVdisks[:0], vids...)
	e.matStarted = true
	e.matRemaining = e.cfg.MaterializeIntervalsOf(obj)
	if e.tracer != nil {
		e.emit(EvMatStart, obj, -1, fmt.Sprintf("%d intervals", e.matRemaining+1))
	}
	e.tertBusy++ // the starting interval counts as busy
	e.matRemaining--
	if e.matRemaining == 0 {
		e.finishMaterialization()
	}
}

// finishMaterialization publishes the staged object and frees the
// write disks and the device.
func (e *Striped) finishMaterialization() {
	e.emit(EvMatEnd, e.matObject, -1, "")
	e.ready[e.matObject] = true
	for _, v := range e.matVdisks {
		e.setVBusy(v, freeSlot)
	}
	e.matVdisks = e.matVdisks[:0]
	e.matObject = -1
	e.matStarted = false
	if _, err := e.tman.Finish(); err != nil {
		e.hiccups++
	}
	e.materialized++
}

// makeRoom evicts least-frequently-accessed evictable objects until
// the farm has space for obj.  It reports whether enough space exists.
// The candidate set is built once per call and shrunk incrementally as
// victims go — nothing that happens inside this loop changes any other
// object's evictability.
func (e *Striped) makeRoom(obj int) bool {
	need := e.cfg.Degree(obj) * e.cfg.Subobjects
	if e.store.FreeFragments() >= need {
		return true
	}
	candidates := e.candScratch[:0]
	for _, id := range e.store.ResidentIDs() {
		if e.evictable(id) {
			candidates = append(candidates, id)
		}
	}
	defer func() { e.candScratch = candidates[:0] }()
	for e.store.FreeFragments() < need {
		victim, ok := e.lfu.Victim(candidates)
		if !ok {
			return false
		}
		for i, id := range candidates {
			if id == victim {
				candidates = append(candidates[:i], candidates[i+1:]...)
				break
			}
		}
		e.ready[victim] = false
		e.emit(EvEvict, victim, -1, "")
		if err := e.store.Evict(victim); err != nil {
			e.hiccups++
			return false
		}
	}
	return true
}

// evictable reports whether object id may be replaced: resident,
// fully materialized, not being displayed, and not referenced by a
// queued request.
func (e *Striped) evictable(id int) bool {
	return e.ready[id] && e.byObject[id] == 0 && e.pinned[id] == 0 && id != e.matObject
}

// fragmentedAttemptsPerInterval bounds how many queued requests may
// run the (O(free disks × M)) Algorithm-1 search in one interval.
const fragmentedAttemptsPerInterval = 8

// admit scans the queue in arrival order and starts every display
// whose disks are free, per §3.1's use of idle time intervals for new
// requests.  Non-resident objects are routed to the tertiary manager.
// With FCFSStrict the scan stops at the first request that cannot
// start (head-of-line blocking).  A request whose object needs more
// disks than the whole farm has free is skipped without probing.
func (e *Striped) admit() {
	if len(e.queue) == 0 {
		return
	}
	kept := e.queueScratch[:0]
	fragBudget := fragmentedAttemptsPerInterval
	for qi, r := range e.queue {
		if !e.ready[r.object] {
			e.tman.Request(r.object)
			kept = append(kept, r)
			if e.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		p, ok := e.store.Placement(r.object)
		if !ok { // evicted between materialization and admission
			e.ready[r.object] = false
			e.tman.Request(r.object)
			kept = append(kept, r)
			if e.cfg.FCFSStrict {
				kept = append(kept, e.queue[qi+1:]...)
				break
			}
			continue
		}
		if e.cfg.D-e.busy >= e.cfg.Degree(r.object) && e.tryAdmit(r, p, &fragBudget) {
			e.pinned[r.object]--
			continue
		}
		kept = append(kept, r)
		if e.cfg.FCFSStrict {
			kept = append(kept, e.queue[qi+1:]...)
			break
		}
	}
	e.queueScratch = e.queue[:0]
	e.queue = kept
}

// tryAdmit attempts a contiguous admission, falling back to
// time-fragmented admission (Algorithm 1) for the queue head when
// enabled.
func (e *Striped) tryAdmit(r request, p core.Placement, fragBudget *int) bool {
	m := e.cfg.Degree(r.object)
	// Contiguous: the M disks of subobject 0 must be free right now.
	vids := e.vidScratch[:m]
	okContig := true
	for j := 0; j < m; j++ {
		v := e.vdiskOf((p.First + j) % e.cfg.D)
		if e.vbusy[v] != freeSlot {
			okContig = false
			break
		}
		vids[j] = v
	}
	if okContig {
		e.start(r, p, vids, e.zeroTs[:m], 0)
		return true
	}
	if !e.cfg.Fragmented || *fragBudget <= 0 {
		return false
	}
	*fragBudget--
	// Time-fragmented admission over all currently free disks.
	free := e.freeScratch[:0]
	for v, o := range e.vbusy {
		if o == freeSlot {
			free = append(free, vdisk.Physical(v, e.now, e.cfg.K, e.cfg.D))
		}
	}
	e.freeScratch = free[:0]
	a, ok := vdisk.ChooseVirtualDisks(e.cfg.D, e.cfg.K, p.First, m, free)
	if !ok {
		return false
	}
	maxStartup := e.cfg.MaxStartup
	if maxStartup == 0 {
		// Each interval of startup delay costs one buffered fragment
		// per early stream and stretches the disk reservation past the
		// display length, so unbounded Tmax hurts more than queueing a
		// little longer; a few interval-widths of headroom captures
		// nearly all of Algorithm 1's benefit.
		maxStartup = 2 * m
	}
	if a.Tmax > maxStartup {
		return false
	}
	gvids := e.vidScratch[:m]
	ts := e.tsScratch[:m]
	for i, z := range a.Z {
		gvids[i] = e.vdiskOf(z)
		ts[i] = a.T[i]
	}
	e.start(r, p, gvids, ts, a.Tmax)
	return true
}

// start activates a display on the given virtual disks and schedules
// its future events: one release per stream and one completion.
func (e *Striped) start(r request, p core.Placement, vids, ts []int, tmax int) {
	n := e.cfg.Subobjects
	var d *display
	if k := len(e.pool); k > 0 {
		d = e.pool[k-1]
		e.pool = e.pool[:k-1]
	} else {
		d = new(display)
	}
	streams := d.streams
	if cap(streams) < len(vids) {
		streams = make([]stream, len(vids))
	} else {
		streams = streams[:len(vids)]
	}
	*d = display{
		id:      e.nextID,
		station: r.station,
		object:  r.object,
		first:   p.First,
		tau0:    e.now,
		tmax:    tmax,
		streams: streams,
	}
	e.nextID++
	for i := range vids {
		if e.vbusy[vids[i]] != freeSlot {
			e.hiccups++
		}
		e.setVBusy(vids[i], d.id)
		d.streams[i] = stream{vdisk: vids[i], t: ts[i]}
		slot := (d.tau0 + ts[i] + n) % e.horizon
		e.releases[slot] = append(e.releases[slot], streamRef{d: d, i: i})
	}
	slot := (d.deliveryEnd(n) + 1) % e.horizon
	e.completions[slot] = append(e.completions[slot], d)
	if tmax > 0 {
		e.coalescing = append(e.coalescing, d)
	}
	e.byObject[r.object]++
	e.admitted = append(e.admitted, float64(e.now-r.arrived)*e.cfg.IntervalSeconds())
	if e.tracer != nil {
		e.emit(EvAdmit, r.object, r.station, fmt.Sprintf("first=%d tmax=%d", d.first, d.tmax))
	}
}

// coalesce applies Algorithm 2: any stream buffering ahead of the
// display (T_i < Tmax) moves to the ideal virtual disk — the one a
// contiguous admission at τ0+Tmax would have used — as soon as it is
// free.  Only displays that still have such a stream are visited; the
// list drops a display once every stream has moved, released, or can
// never move (its ideal disk is the one it already holds).
func (e *Striped) coalesce() {
	if len(e.coalescing) == 0 {
		return
	}
	n := e.cfg.Subobjects
	kept := e.coalescing[:0]
	for _, d := range e.coalescing {
		if d.done {
			continue
		}
		pending := false
		for i := range d.streams {
			s := &d.streams[i]
			if s.vdisk < 0 || s.t == d.tmax {
				continue
			}
			// The virtual disk a contiguous admission at τ0+Tmax
			// would have used for fragment i.
			ideal := vdisk.VirtualAt((d.first+i)%e.cfg.D, d.tau0+d.tmax, e.cfg.K, e.cfg.D)
			if ideal == s.vdisk {
				continue // already on it; will release on its own clock
			}
			if e.vbusy[ideal] != freeSlot {
				pending = true
				continue
			}
			e.setVBusy(s.vdisk, freeSlot)
			e.setVBusy(ideal, d.id)
			s.vdisk = ideal
			s.t = d.tmax
			slot := (d.tau0 + d.tmax + n) % e.horizon
			e.releases[slot] = append(e.releases[slot], streamRef{d: d, i: i})
			e.coalescings++
			if e.tracer != nil {
				e.emit(EvCoalesce, d.object, d.station, fmt.Sprintf("fragment %d", i))
			}
		}
		if pending {
			kept = append(kept, d)
		}
	}
	e.coalescing = kept
}

// Run executes warm-up and measurement and returns the statistics.
func (e *Striped) Run() Result {
	if e.now != 0 {
		panic("sched: Run called twice")
	}
	for s := 0; s < e.cfg.Stations; s++ {
		e.enqueue(s)
	}
	for e.now < e.cfg.WarmupIntervals {
		e.step()
	}
	// Reset window counters.
	e.completed, e.materialized, e.coalescings = 0, 0, 0
	e.admitted = e.admitted[:0]
	e.busyArea, e.tertBusy = 0, 0

	end := e.cfg.WarmupIntervals + e.cfg.MeasureIntervals
	for e.now < end {
		e.step()
	}

	res := Result{
		Technique:       e.techniqueName(),
		Stations:        e.cfg.Stations,
		DistMean:        e.cfg.DistMean,
		WarmupSeconds:   float64(e.cfg.WarmupIntervals) * e.cfg.IntervalSeconds(),
		MeasureSeconds:  float64(e.cfg.MeasureIntervals) * e.cfg.IntervalSeconds(),
		Displays:        e.completed,
		Materializa:     e.materialized,
		Hiccups:         e.hiccups,
		Coalescings:     e.coalescings,
		TertiaryBusy:    float64(e.tertBusy) / float64(e.cfg.MeasureIntervals),
		DiskBusy:        e.busyArea / (float64(e.cfg.MeasureIntervals) * float64(e.cfg.D)),
		UniqueResidents: e.store.ResidentCount(),
	}
	for _, l := range e.admitted {
		res.Latency.Add(l)
	}
	return res
}

func (e *Striped) techniqueName() string {
	if e.cfg.K == e.cfg.M {
		return "simple striping"
	}
	return fmt.Sprintf("staggered striping (k=%d)", e.cfg.K)
}
