package diskmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}

func TestSabreValidates(t *testing.T) {
	if err := Sabre.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Simulation45GB.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "no-cyl", CylinderBytes: 1, TransferRate: 1},
		{Name: "no-cap", Cylinders: 1, TransferRate: 1},
		{Name: "no-rate", Cylinders: 1, CylinderBytes: 1},
		{Name: "seek-order", Cylinders: 1, CylinderBytes: 1, TransferRate: 1,
			SeekMin: 2, SeekAvg: 1, SeekMax: 3},
		{Name: "lat-order", Cylinders: 1, CylinderBytes: 1, TransferRate: 1,
			LatencyAvg: 2, LatencyMax: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %q accepted", s.Name)
		}
	}
}

// TestSabreSection31Numbers reproduces every worked number in §3.1 of
// the paper for the Sabre drive.
func TestSabreSection31Numbers(t *testing.T) {
	cyl := Sabre.CylinderBytes

	// "the time to read one cylinder is 250 milliseconds"
	if got := Sabre.TransferTime(cyl); !approx(got, 0.250, 0.001) {
		t.Errorf("one-cylinder transfer = %v s, want 0.250", got)
	}
	// "the highest overhead due to seeks and latency is 16.83 + 35 = 51.83 ms"
	if got := Sabre.TSwitch(); !approx(got, 0.05183, 1e-9) {
		t.Errorf("T_switch = %v s, want 0.05183", got)
	}
	// "S(C_i) = 301.83 msec" for one-cylinder fragments
	if got := Sabre.ServiceTime(cyl); !approx(got, 0.30183, 1e-4) {
		t.Errorf("S(C_i) one cylinder = %v s, want 0.30183", got)
	}
	// "on the average, 17.2 percentage of disk bandwidth is wasted"
	if got := Sabre.WastedFraction(cyl); !approx(got, 0.172, 0.001) {
		t.Errorf("wasted fraction one cylinder = %v, want ~0.172", got)
	}
	// "If two consecutive cylinders are transfered, S(C_i) = 555.83"
	if got := Sabre.ServiceTime(2 * cyl); !approx(got, 0.55583, 1e-4) {
		t.Errorf("S(C_i) two cylinders = %v s, want 0.55583", got)
	}
	// "the wasted bandwidth will be only about 10 percent"
	if got := Sabre.WastedFraction(2 * cyl); !approx(got, 0.10, 0.005) {
		t.Errorf("wasted fraction two cylinders = %v, want ~0.10", got)
	}
	// "Its peak transfer rate is 24.19 mbps" and 1.2 GB capacity.
	if got := Sabre.CapacityBytes(); !approx(got, 1.236e9, 1e7) {
		t.Errorf("Sabre capacity = %v bytes, want ~1.236 GB", got)
	}
}

// TestSection31WorstCaseLatency reproduces: "In a typical system of 90
// disks divided into 30 clusters of 3 disks, the worst case transfer
// initiation delay would be about 9 seconds in the case of 1 cylinder
// transfers and 16 seconds in the case of 2 cylinder transfers"
// (worst case latency = (R-1)·S(C_i), §3.1).
func TestSection31WorstCaseLatency(t *testing.T) {
	const clusters = 30
	cyl := Sabre.CylinderBytes
	one := float64(clusters-1) * Sabre.ServiceTime(cyl)
	two := float64(clusters-1) * Sabre.ServiceTime(2*cyl)
	if !approx(one, 9.0, 0.3) {
		t.Errorf("worst-case latency 1-cyl = %v s, want ~9", one)
	}
	if !approx(two, 16.0, 0.2) {
		t.Errorf("worst-case latency 2-cyl = %v s, want ~16", two)
	}
}

// TestSimulationDriveTable3 checks the Table 3 drive: 3000 cylinders
// of 1.512 MB (~4.54 GB) with a 20 mbps effective bandwidth at the
// one-cylinder fragments used in §4.
func TestSimulationDriveTable3(t *testing.T) {
	s := Simulation45GB
	if got := s.CapacityBytes(); !approx(got, 4.536e9, 1e6) {
		t.Errorf("capacity = %v, want 4.536 GB", got)
	}
	eff := s.EffectiveBandwidth(s.CylinderBytes)
	if !approx(eff, 20e6, 0.05e6) {
		t.Errorf("effective bandwidth = %v bps, want ~20 mbps", eff)
	}
	// The display time of a 3000-subobject object at M=5 follows:
	// 3000 intervals of fragment_bits / 20 mbps = 1814 s (§4.1).
	interval := s.CylinderBytes * 8 / 20e6
	display := 3000 * interval
	if !approx(display, 1814.4, 1.0) {
		t.Errorf("object display time = %v s, want ~1814", display)
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	prev := 0.0
	for c := 1; c <= 10; c++ {
		eff := Sabre.EffectiveBandwidth(float64(c) * Sabre.CylinderBytes)
		if eff <= prev {
			t.Fatalf("effective bandwidth not increasing at %d cylinders", c)
		}
		prev = eff
	}
	if prev >= Sabre.TransferRate {
		t.Fatal("effective bandwidth exceeded peak rate")
	}
}

func TestEffectiveBandwidthDiminishingGains(t *testing.T) {
	// §3.1: "the advantages of transfering more than 2 cylinder from
	// each disk drive is marginal because of diminishing gains".
	cyl := Sabre.CylinderBytes
	g12 := Sabre.EffectiveBandwidthExact(2*cyl) - Sabre.EffectiveBandwidthExact(cyl)
	g23 := Sabre.EffectiveBandwidthExact(3*cyl) - Sabre.EffectiveBandwidthExact(2*cyl)
	if g23 >= g12 {
		t.Fatalf("gain 2→3 cylinders (%v) not smaller than 1→2 (%v)", g23, g12)
	}
}

func TestSeekTimeCalibration(t *testing.T) {
	for _, s := range []Spec{Sabre, Simulation45GB} {
		if got := s.SeekTime(0); got != 0 {
			t.Errorf("%s: seek(0) = %v, want 0", s.Name, got)
		}
		if got := s.SeekTime(1); !approx(got, s.SeekMin, 1e-9) {
			t.Errorf("%s: seek(1) = %v, want %v", s.Name, got, s.SeekMin)
		}
		if got := s.SeekTime(s.Cylinders - 1); !approx(got, s.SeekMax, 1e-9) {
			t.Errorf("%s: full-stroke seek = %v, want %v", s.Name, got, s.SeekMax)
		}
		if got := s.MeanSeekTime(); !approx(got, s.SeekAvg, 0.15*s.SeekAvg) {
			t.Errorf("%s: mean seek = %v, want ~%v", s.Name, got, s.SeekAvg)
		}
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		d1, d2 := int(a)%Sabre.Cylinders, int(b)%Sabre.Cylinders
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return Sabre.SeekTime(d1) <= Sabre.SeekTime(d2)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeekTimeBounded(t *testing.T) {
	err := quick.Check(func(a uint16) bool {
		d := int(a) % Sabre.Cylinders
		s := Sabre.SeekTime(d)
		return s >= 0 && s <= Sabre.SeekMax+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCylinderCrossings(t *testing.T) {
	cyl := Sabre.CylinderBytes
	cases := []struct {
		bytes float64
		want  int
	}{
		{cyl / 2, 0}, {cyl, 0}, {cyl + 1, 1}, {2 * cyl, 1}, {3.5 * cyl, 3},
	}
	for _, c := range cases {
		if got := Sabre.CylinderCrossings(c.bytes); got != c.want {
			t.Errorf("crossings(%v bytes) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestServiceTimeComposition(t *testing.T) {
	// Service time should always be at least the pure transfer time
	// plus the worst-case reposition.
	err := quick.Check(func(raw uint32) bool {
		bytes := float64(raw%10000000 + 1)
		st := Sabre.ServiceTime(bytes)
		return st >= Sabre.TransferTime(bytes)+Sabre.TSwitch()-1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeekTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Sabre.SeekTime(i % Sabre.Cylinders)
	}
}

func BenchmarkEffectiveBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Sabre.EffectiveBandwidth(Sabre.CylinderBytes)
	}
}

// TestPinnedLayoutSavings reproduces §3.2.2: clustering subobjects on
// adjacent cylinders (possible only with k = D) saves less than 10%
// of the disk bandwidth at the paper's two-cylinder fragments.
func TestPinnedLayoutSavings(t *testing.T) {
	cyl := Sabre.CylinderBytes
	savings := Sabre.PinnedLayoutSavings(2 * cyl)
	if savings <= 0 {
		t.Fatalf("clustering saves nothing: %v", savings)
	}
	if savings >= 0.10 {
		t.Fatalf("savings = %v, paper says less than 10%%", savings)
	}
	// One-cylinder fragments save more (bigger per-fragment T_switch
	// share) but still a bounded amount.
	s1 := Sabre.PinnedLayoutSavings(cyl)
	if s1 <= savings {
		t.Fatalf("1-cyl savings %v not above 2-cyl %v", s1, savings)
	}
	if s1 >= 0.20 {
		t.Fatalf("1-cyl savings = %v, implausibly large", s1)
	}
}

func TestSequentialServiceTimeBelowRandom(t *testing.T) {
	err := quick.Check(func(raw uint32) bool {
		bytes := float64(raw%5000000 + 1)
		return Sabre.SequentialServiceTime(bytes) < Sabre.ServiceTime(bytes)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
