// Package diskmodel models a magnetic disk drive at the level of
// detail the paper uses: cylinder geometry, a distance-based seek
// curve calibrated to published minimum/average/maximum seek times,
// rotational latency, and the effective-bandwidth formula of §3.1:
//
//	B_disk = tfr × size(fragment) / (size(fragment) + T_switch·tfr)
//
// Two concrete drives from the paper are provided: the IMPRIMIS Sabre
// 1.2 GB drive of §3.1 [Sab90] and the 4.5 GB drive of the §4
// simulation (Table 3).
package diskmodel

import (
	"fmt"
	"math"
)

// Mbit is one megabit (10^6 bits), the paper's bandwidth unit.
const Mbit = 1e6

// MB is one megabyte (10^6 bytes), the paper's capacity unit.
const MB = 1e6

// Spec describes a disk drive.  Times are in seconds, sizes in bytes,
// and rates in bits per second.
type Spec struct {
	Name          string
	Cylinders     int     // number of cylinders
	CylinderBytes float64 // capacity of one cylinder in bytes
	TransferRate  float64 // peak media transfer rate tfr, bits/second

	SeekMin float64 // single-cylinder (minimum) seek time
	SeekAvg float64 // average seek time
	SeekMax float64 // full-stroke (maximum) seek time

	LatencyAvg float64 // average rotational latency
	LatencyMax float64 // maximum rotational latency (one revolution)
}

// Sabre is the IMPRIMIS Sabre 1.2 GB eight-inch drive used for the
// worked examples in §3.1 of the paper.
var Sabre = Spec{
	Name:          "IMPRIMIS Sabre 1.2GB",
	Cylinders:     1635,
	CylinderBytes: 756000,
	TransferRate:  24.19 * Mbit,
	SeekMin:       0.004,
	SeekAvg:       0.015,
	SeekMax:       0.035,
	LatencyAvg:    0.00833,
	LatencyMax:    0.01683,
}

// Simulation45GB is the drive of Table 3: 3000 cylinders of 1.512 MB
// (4.54 GB total) with a 20 mbps effective bandwidth.  Seek and
// latency characteristics match the Sabre figures, which Table 3
// repeats verbatim.  The peak transfer rate is chosen so that the
// effective bandwidth at a one-cylinder fragment equals 20 mbps
// (see EffectiveBandwidth).
var Simulation45GB = Spec{
	Name:          "Simulation 4.5GB",
	Cylinders:     3000,
	CylinderBytes: 1512000,
	TransferRate:  21.875 * Mbit, // yields B_disk = 20 mbps at 1-cylinder fragments
	SeekMin:       0.004,
	SeekAvg:       0.015,
	SeekMax:       0.035,
	LatencyAvg:    0.00833,
	LatencyMax:    0.01683,
}

// Validate reports whether the spec is physically sensible.
func (s Spec) Validate() error {
	switch {
	case s.Cylinders <= 0:
		return fmt.Errorf("diskmodel: %s: cylinders %d must be positive", s.Name, s.Cylinders)
	case s.CylinderBytes <= 0:
		return fmt.Errorf("diskmodel: %s: cylinder capacity must be positive", s.Name)
	case s.TransferRate <= 0:
		return fmt.Errorf("diskmodel: %s: transfer rate must be positive", s.Name)
	case s.SeekMin < 0 || s.SeekAvg < s.SeekMin || s.SeekMax < s.SeekAvg:
		return fmt.Errorf("diskmodel: %s: seek times must satisfy 0 <= min <= avg <= max", s.Name)
	case s.LatencyAvg < 0 || s.LatencyMax < s.LatencyAvg:
		return fmt.Errorf("diskmodel: %s: latency times must satisfy 0 <= avg <= max", s.Name)
	}
	return nil
}

// CapacityBytes returns the total drive capacity in bytes.
func (s Spec) CapacityBytes() float64 {
	return float64(s.Cylinders) * s.CylinderBytes
}

// TSwitch returns the worst-case head repositioning delay of §3.1:
// a maximum seek plus a maximum rotational latency.  The paper's
// Sabre example: 35 + 16.83 = 51.83 ms.
func (s Spec) TSwitch() float64 {
	return s.SeekMax + s.LatencyMax
}

// TransferTime returns the time to transfer the given number of bytes
// at the peak media rate.
func (s Spec) TransferTime(bytes float64) float64 {
	return bytes * 8 / s.TransferRate
}

// CylinderCrossings returns the number of cylinder boundaries a
// contiguous fragment of the given size crosses: each crossing costs a
// minimum (track-to-track) seek.
func (s Spec) CylinderCrossings(fragmentBytes float64) int {
	n := int(math.Ceil(fragmentBytes / s.CylinderBytes))
	if n < 1 {
		n = 1
	}
	return n - 1
}

// ServiceTime returns S(C_i), the service time of a disk (and hence
// of a cluster, since all disks in a cluster work in parallel) per
// activation when reading a fragment of the given size: worst-case
// reposition, transfer, and one track-to-track seek per cylinder
// boundary crossed.  The paper's Sabre examples (§3.1): one cylinder
// gives 51.83 + 250 = 301.83 ms; two cylinders give
// 51.83 + 4 + 500 = 555.83 ms.
func (s Spec) ServiceTime(fragmentBytes float64) float64 {
	crossings := float64(s.CylinderCrossings(fragmentBytes))
	return s.TSwitch() + crossings*s.SeekMin + s.TransferTime(fragmentBytes)
}

// EffectiveBandwidth returns B_disk for the given fragment size, per
// the formula of §3.1:
//
//	B_disk = tfr × size(fragment) / (size(fragment) + T_switch·tfr)
//
// where sizes are measured in bits and tfr in bits/second.
func (s Spec) EffectiveBandwidth(fragmentBytes float64) float64 {
	bits := fragmentBytes * 8
	return s.TransferRate * bits / (bits + s.TSwitch()*s.TransferRate)
}

// EffectiveBandwidthExact returns fragment bits divided by the full
// service time, accounting for cylinder crossings (unlike the paper's
// simplified formula, which ignores them).
func (s Spec) EffectiveBandwidthExact(fragmentBytes float64) float64 {
	return fragmentBytes * 8 / s.ServiceTime(fragmentBytes)
}

// WastedFraction returns the fraction of disk time lost to
// repositioning (initial T_switch plus cylinder crossings) for the
// given fragment size.  The paper's §3.1 example: 17.2% at one
// cylinder, about 10% at two cylinders.
func (s Spec) WastedFraction(fragmentBytes float64) float64 {
	overhead := s.TSwitch() + float64(s.CylinderCrossings(fragmentBytes))*s.SeekMin
	return overhead / s.ServiceTime(fragmentBytes)
}

// SeekTime returns the time to move the head across dist cylinders.
// The model is the standard affine-sqrt curve
//
//	seek(d) = a + b·sqrt(d) + c·d,  d ≥ 1;  seek(0) = 0,
//
// with coefficients calibrated so that seek(1) = SeekMin,
// seek(Cylinders-1) = SeekMax, and the mean over a uniformly random
// pair of cylinders ≈ SeekAvg (the classic d̄ ≈ C/3 approximation).
func (s Spec) SeekTime(dist int) float64 {
	if dist <= 0 {
		return 0
	}
	a, b, c := s.seekCoeffs()
	d := float64(dist)
	return a + b*math.Sqrt(d) + c*d
}

// seekCoeffs solves the three calibration constraints.
func (s Spec) seekCoeffs() (a, b, c float64) {
	n := float64(s.Cylinders - 1)
	if n < 2 {
		return s.SeekMin, 0, 0
	}
	davg := n / 3
	// Solve:
	//   a + b·1        + c·1    = SeekMin
	//   a + b·√davg    + c·davg = SeekAvg
	//   a + b·√n       + c·n    = SeekMax
	x1, x2, x3 := 1.0, math.Sqrt(davg), math.Sqrt(n)
	y1, y2, y3 := 1.0, davg, n
	r1, r2, r3 := s.SeekMin, s.SeekAvg, s.SeekMax
	// Gaussian elimination on the 3x3 system [1 xi yi | ri].
	// Subtract row 1 from rows 2 and 3 to eliminate a.
	u2, v2, w2 := x2-x1, y2-y1, r2-r1
	u3, v3, w3 := x3-x1, y3-y1, r3-r1
	det := u2*v3 - u3*v2
	if math.Abs(det) < 1e-12 {
		// Degenerate geometry; fall back to linear interpolation.
		return s.SeekMin, 0, (s.SeekMax - s.SeekMin) / n
	}
	b = (w2*v3 - w3*v2) / det
	c = (u2*w3 - u3*w2) / det
	a = r1 - b*x1 - c*y1
	return a, b, c
}

// MeanSeekTime returns the expected seek time over a uniformly random
// pair of start/target cylinders, by exact enumeration of the distance
// distribution: P(d) = 2(C-d)/C² for d ≥ 1.
func (s Spec) MeanSeekTime() float64 {
	cyl := float64(s.Cylinders)
	sum := 0.0
	for d := 1; d < s.Cylinders; d++ {
		p := 2 * (cyl - float64(d)) / (cyl * cyl)
		sum += p * s.SeekTime(d)
	}
	return sum
}

// SequentialServiceTime returns the per-fragment service time when an
// object's subobjects are clustered on adjacent cylinders and read in
// display order — the k = D optimization of §3.2.2: after the initial
// positioning, each fragment costs only its track-to-track crossings
// and transfer, not a full T_switch.
func (s Spec) SequentialServiceTime(fragmentBytes float64) float64 {
	crossings := float64(s.CylinderCrossings(fragmentBytes)) + 1 // move onto the next fragment's cylinder
	return crossings*s.SeekMin + s.TransferTime(fragmentBytes)
}

// SequentialWastedFraction returns the bandwidth lost to positioning
// under adjacent-cylinder clustering.
func (s Spec) SequentialWastedFraction(fragmentBytes float64) float64 {
	crossings := float64(s.CylinderCrossings(fragmentBytes)) + 1
	return crossings * s.SeekMin / s.SequentialServiceTime(fragmentBytes)
}

// PinnedLayoutSavings returns how much disk bandwidth the k = D
// layout saves over the staggered layout for the given fragment size:
// the difference between the scattered-fragment waste (a full
// T_switch per fragment) and the clustered waste.  §3.2.2: "saves of
// less than 10% of the disk bandwidth" at two-cylinder fragments —
// and §4 shows the saving is not worth the collision delays.
func (s Spec) PinnedLayoutSavings(fragmentBytes float64) float64 {
	return s.WastedFraction(fragmentBytes) - s.SequentialWastedFraction(fragmentBytes)
}
