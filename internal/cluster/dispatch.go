package cluster

import "fmt"

// Dispatch routes one cluster arrival to a member server.  Policies
// are consulted between intervals on the stepping goroutine and may
// read the members' live load, residency, and liveness probes through
// the Sim.  Every policy skips dead members, counting the re-route in
// Result.FailedOver when the member it would naturally have chosen is
// dead; with every member dead Pick returns -1 and the caller counts
// the arrival lost.  On a cluster with no server fault plan nothing is
// ever dead, the failover branches never fire, and the decisions are
// identical to the pre-failover policies (the golden pins cover this).
type Dispatch interface {
	// Name is the stable CLI key.
	Name() string
	// Pick returns the serving server for an arrival referencing obj,
	// or -1 when no live member exists.
	Pick(obj int, s *Sim) int
}

// Policies returns the registered dispatch policy keys in
// presentation order.
func Policies() []string { return []string{"roundrobin", "leastloaded", "popularity"} }

// newDispatch resolves a policy key ("" = roundrobin).
func newDispatch(key string) (Dispatch, error) {
	switch key {
	case "", "roundrobin":
		return &roundRobin{}, nil
	case "leastloaded":
		return leastLoaded{}, nil
	case "popularity":
		return popularity{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown dispatch policy %q (have %v)", key, Policies())
}

// roundRobin cycles through the servers in order, object-blind — the
// baseline every smarter policy must beat.
type roundRobin struct{ next int }

func (*roundRobin) Name() string { return "roundrobin" }

func (rr *roundRobin) Pick(_ int, s *Sim) int {
	n := len(s.engines)
	i := rr.next
	rr.next = (rr.next + 1) % n
	if !s.dead(i) {
		return i
	}
	// The cursor's natural target is dead: re-route to the next live
	// member in rotation.  The cursor still advances by one, so the
	// rotation resumes where it left off once the member restarts.
	s.failedOver++
	for k := 1; k < n; k++ {
		if j := (i + k) % n; !s.dead(j) {
			return j
		}
	}
	return -1
}

// leastLoaded routes to the server with the fewest displays in
// delivery plus queued references (ties to the lowest index) — the
// classic join-the-shortest-queue heuristic.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "leastloaded" }

func (leastLoaded) Pick(_ int, s *Sim) int {
	bestAll, bestAllLoad := -1, 0
	best, bestLoad := -1, 0
	for i := range s.engines {
		l := s.load(i)
		if bestAll < 0 || l < bestAllLoad {
			bestAll, bestAllLoad = i, l
		}
		if !s.dead(i) && (best < 0 || l < bestLoad) {
			best, bestLoad = i, l
		}
	}
	if best < 0 {
		return -1
	}
	if bestAll != best {
		// The global argmin is a dead member (drained, it reports zero
		// load, so this fires on nearly every dispatch during an
		// outage): FailedOver here reads as availability pressure.
		s.failedOver++
	}
	return best
}

// popularity routes to a server whose placement (or cache tier) holds
// the object — the replica servers chosen by Zipf rank at build time —
// picking the least loaded live holder so hot objects with several
// replicas still balance.  An object no live member holds (evicted,
// past the aggregate capacity, or every holder dead) falls back to the
// least loaded live member and is counted in Result.NoHolder; the
// chosen server materializes it.
type popularity struct{}

func (popularity) Name() string { return "popularity" }

func (popularity) Pick(obj int, s *Sim) int {
	bestAll, bestAllLoad := -1, 0
	best, bestLoad := -1, 0
	for i := range s.engines {
		if !s.holds(i, obj) {
			continue
		}
		l := s.load(i)
		if bestAll < 0 || l < bestAllLoad {
			bestAll, bestAllLoad = i, l
		}
		if !s.dead(i) && (best < 0 || l < bestLoad) {
			best, bestLoad = i, l
		}
	}
	if best >= 0 {
		if bestAll != best {
			s.failedOver++ // the best holder overall is a dead member
		}
		return best
	}
	s.noHolder++
	// No live holder.  The fallback itself must prefer live members —
	// leastLoaded skips dead ones — rather than handing the arrival to
	// a drained corpse that happens to report zero load.
	return leastLoaded{}.Pick(obj, s)
}
