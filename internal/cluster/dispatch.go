package cluster

import "fmt"

// Dispatch routes one cluster arrival to a member server.  Policies
// are consulted between intervals on the stepping goroutine and may
// read the members' live load and residency probes through the Sim.
type Dispatch interface {
	// Name is the stable CLI key.
	Name() string
	// Pick returns the serving server for an arrival referencing obj.
	Pick(obj int, s *Sim) int
}

// Policies returns the registered dispatch policy keys in
// presentation order.
func Policies() []string { return []string{"roundrobin", "leastloaded", "popularity"} }

// newDispatch resolves a policy key ("" = roundrobin).
func newDispatch(key string) (Dispatch, error) {
	switch key {
	case "", "roundrobin":
		return &roundRobin{}, nil
	case "leastloaded":
		return leastLoaded{}, nil
	case "popularity":
		return popularity{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown dispatch policy %q (have %v)", key, Policies())
}

// roundRobin cycles through the servers in order, object-blind — the
// baseline every smarter policy must beat.
type roundRobin struct{ next int }

func (*roundRobin) Name() string { return "roundrobin" }

func (rr *roundRobin) Pick(_ int, s *Sim) int {
	i := rr.next
	rr.next = (rr.next + 1) % len(s.engines)
	return i
}

// leastLoaded routes to the server with the fewest displays in
// delivery plus queued references (ties to the lowest index) — the
// classic join-the-shortest-queue heuristic.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "leastloaded" }

func (leastLoaded) Pick(_ int, s *Sim) int {
	best := 0
	bestLoad := s.load(0)
	for i := 1; i < len(s.engines); i++ {
		if l := s.load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// popularity routes to a server whose placement (or cache tier) holds
// the object — the replica servers chosen by Zipf rank at build time —
// picking the least loaded holder so hot objects with several replicas
// still balance.  An object nobody holds (evicted, or past the
// aggregate capacity) falls back to least loaded overall and is
// counted in Result.NoHolder; the chosen server materializes it.
type popularity struct{}

func (popularity) Name() string { return "popularity" }

func (popularity) Pick(obj int, s *Sim) int {
	best, bestLoad := -1, 0
	for i := range s.engines {
		if !s.holds(i, obj) {
			continue
		}
		if l := s.load(i); best < 0 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best >= 0 {
		return best
	}
	s.noHolder++
	return leastLoaded{}.Pick(obj, s)
}
