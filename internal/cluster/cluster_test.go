package cluster

import (
	"reflect"
	"testing"

	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
)

// quickBase is the experiment layer's quick geometry: a 50-disk farm
// holding half a 40-object catalog, small enough for -race CI.
func quickBase(stations int, seed uint64) sched.Config {
	return sched.Config{
		D:                 50,
		K:                 5,
		CapacityFragments: 60,
		Objects:           40,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          20,
		Seed:              seed,
		WarmupIntervals:   200,
		MeasureIntervals:  1000,
		PlaceRetryLimit:   sched.DefaultPlaceRetryLimit,
	}
}

// TestOneServerMatchesEngineClosed pins the delegation contract: a
// 1-server cluster over the paper's closed workload reproduces the
// single engine's Result byte-for-byte.
func TestOneServerMatchesEngineClosed(t *testing.T) {
	base := quickBase(16, 11)

	e, _, err := sched.NewEngineFor("striped", base, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Run()

	sim, err := New(Config{Servers: 1, Technique: "striped", Base: base})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Aggregate, want) {
		t.Fatalf("1-server cluster diverged from the engine:\ncluster %+v\nengine  %+v", res.Aggregate, want)
	}
	if len(res.Servers) != 1 || !reflect.DeepEqual(res.Servers[0], want) {
		t.Fatalf("per-server result diverged: %+v", res.Servers)
	}
}

// TestOneServerMatchesEngineOpen pins the same contract over an open
// Zipf workload (the engine draws its own Poisson stream when
// delegated to), and for the staggered technique.
func TestOneServerMatchesEngineOpen(t *testing.T) {
	base := quickBase(32, 7)
	base.ZipfSkew = 1.1
	base.ArrivalsPerHour = 3000

	e, _, err := sched.NewEngineFor("staggered", base, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Run()

	sim, err := New(Config{Servers: 1, Technique: "staggered", Stride: 1, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Aggregate, want) {
		t.Fatalf("1-server open cluster diverged from the engine:\ncluster %+v\nengine  %+v", res.Aggregate, want)
	}
}

// multiConfig is the shared 2-server configuration of the invariance
// and determinism tests: open Zipf arrivals split across two members.
func multiConfig(dispatch string, workers int) Config {
	base := quickBase(32, 5)
	base.ZipfSkew = 1.1
	base.ArrivalsPerHour = 5000
	base.Workers = workers
	if workers > 1 {
		base.Shards = 4
	}
	return Config{Servers: 2, Technique: "striped", Dispatch: dispatch, Base: base}
}

// TestWorkerInvariance pins that cluster Results are byte-identical at
// any worker count: the shared pool changes only wall-clock, never the
// science.  CI runs this under -race.
func TestWorkerInvariance(t *testing.T) {
	var ref Result
	for i, workers := range []int{1, 2, 8} {
		sim, err := New(multiConfig("leastloaded", workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			if ref.Aggregate.Displays == 0 {
				t.Fatal("reference cluster run delivered zero displays")
			}
			continue
		}
		if !reflect.DeepEqual(res.Aggregate, ref.Aggregate) || !reflect.DeepEqual(res.Servers, ref.Servers) {
			t.Fatalf("workers=%d diverged from workers=1:\n got %+v\nwant %+v", workers, res.Aggregate, ref.Aggregate)
		}
		if !reflect.DeepEqual(res.Routed, ref.Routed) {
			t.Fatalf("workers=%d routed %v, want %v", workers, res.Routed, ref.Routed)
		}
	}
}

// TestRunTwiceReturnsTypedError pins the double-Run contract at the
// cluster level.
func TestRunTwiceReturnsTypedError(t *testing.T) {
	sim, err := New(multiConfig("roundrobin", 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != sched.ErrAlreadyRun {
		t.Fatalf("second Run returned %v, want sched.ErrAlreadyRun", err)
	}
}

// TestChaosSiblingIsolation is the seeded chaos pass: disk faults on
// server 0 must not perturb server 1's Result in any byte.  Round
// robin routing is object- and load-blind, so both runs deliver the
// identical arrival subsequence to server 1; everything else about
// server 1 (seed split, placement, stepping order) must be fault
// independent.
func TestChaosSiblingIsolation(t *testing.T) {
	run := func(plans []*fault.Plan) Result {
		cfg := multiConfig("roundrobin", 0)
		cfg.ServerFaults = plans
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(nil)

	plan := fault.NewPlan().
		FailDiskUntil(3, 300, 700).
		FailDiskUntil(17, 320, 800)
	faulted := run([]*fault.Plan{plan})

	if faulted.Servers[0].AbortedDisplays == 0 && faulted.Servers[0].DegradedHiccups == 0 &&
		faulted.Servers[0].RejectedDegraded == 0 {
		t.Fatal("fault plan had no visible effect on server 0 — the pass proves nothing")
	}
	if !reflect.DeepEqual(faulted.Servers[1], clean.Servers[1]) {
		t.Fatalf("server 0's faults perturbed server 1:\nfaulted %+v\nclean   %+v",
			faulted.Servers[1], clean.Servers[1])
	}
}

// TestPopularityChurnReconverges pins that the popularity dispatch
// rides out a mid-measurement Zipf flip: the replica ladder still
// holds (nearly) every object somewhere, so routing stays
// residency-directed and the cluster's aggregate throughput stays
// close to the churn-free run instead of collapsing into
// materialization storms.
func TestPopularityChurnReconverges(t *testing.T) {
	run := func(flip bool) Result {
		cfg := multiConfig("popularity", 0)
		cfg.Base.CapacityFragments = 63 // full catalog placed (see TestPopularityRoutesToHolders)
		if flip {
			cfg.Base.ZipfFlipInterval = cfg.Base.WarmupIntervals + cfg.Base.MeasureIntervals/2
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	calm := run(false)
	churned := run(true)

	if churned.Aggregate == calm.Aggregate {
		t.Fatal("cluster-level flip had no effect at all — the hook is dead")
	}
	if churned.NoHolder != 0 {
		t.Errorf("churn broke residency routing: %d no-holder fallbacks", churned.NoHolder)
	}
	calmTP := calm.Aggregate.Throughput()
	churnTP := churned.Aggregate.Throughput()
	if churnTP < 0.85*calmTP {
		t.Errorf("throughput under churn = %.1f/hr, want ≥ 85%% of calm %.1f/hr", churnTP, calmTP)
	}
}

// TestReplicaAssignments pins the build-time placement ladder: the
// hottest object lands on every server, copy counts halve by rank
// band, per-server capacity is respected, and every object has a
// holder while aggregate capacity lasts.
func TestReplicaAssignments(t *testing.T) {
	const objects, n, perServer = 40, 4, 20
	assign := replicaAssignments(objects, n, perServer, 1)

	holders := make([]int, objects)
	for i, ids := range assign {
		if len(ids) > perServer {
			t.Fatalf("server %d assigned %d objects, capacity %d", i, len(ids), perServer)
		}
		for _, id := range ids {
			holders[id]++
		}
	}
	if holders[0] != n {
		t.Errorf("hottest object on %d servers, want all %d", holders[0], n)
	}
	if holders[1] != n/2 || holders[2] != n/2 {
		t.Errorf("band-1 objects on %d/%d servers, want %d", holders[1], holders[2], n/2)
	}
	for id, h := range holders {
		if h == 0 {
			t.Errorf("object %d has no holder despite spare capacity", id)
		}
	}

	if !reflect.DeepEqual(assign, replicaAssignments(objects, n, perServer, 1)) {
		t.Error("replica placement is not deterministic")
	}
}

// TestPopularityRoutesToHolders pins that with every object placed
// somewhere, the popularity policy never needs the no-holder fallback
// and spreads measurement-window arrivals across all members.  The
// farm gets one extra cylinder per disk over the quick geometry: two
// 20-object servers leave no room for the hot object's second copy
// (40 slots, ladder needs 41), and a coldest-object fallback is
// exactly what this test must distinguish from a routing bug.
func TestPopularityRoutesToHolders(t *testing.T) {
	cfg := multiConfig("popularity", 0)
	cfg.Base.CapacityFragments = 63
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NoHolder != 0 {
		t.Errorf("popularity fell back %d times despite full placement", res.NoHolder)
	}
	for i, n := range res.Routed {
		if n == 0 {
			t.Errorf("server %d received no measurement-window arrivals: routed %v", i, res.Routed)
		}
	}
	if res.Aggregate.Displays == 0 {
		t.Fatal("popularity cluster delivered zero displays")
	}
}
