// Package cluster scales the simulation past one server: N
// independent sched.Engine instances — each its own disk farm,
// tertiary device, and station pool — advanced in global
// earliest-time order under a shared clock, fed by one cluster-wide
// Poisson arrival stream that a pluggable Dispatch policy routes to a
// member server (DESIGN.md §13).  The paper sizes a single server (D
// disks bound its bandwidth no matter how clever the striping);
// ROADMAP's millions-of-users north star is this layer's N-fold
// aggregate.
//
// The engines expose steppable primitives (Prime / StepOne /
// ResetWindow / Snapshot) precisely so this driver can interleave
// them; they share one worker pool (sched.Pool) because the driver
// steps them sequentially, and they draw per-instance randomness from
// rng.NewStream(seed, server) splits so adding a server never
// perturbs its siblings' trajectories.
package cluster

import (
	"fmt"
	"math"

	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sched"
)

// Config describes one cluster run.
type Config struct {
	// Servers is the member count.  1 delegates the workload entirely
	// to the single engine (closed loop or own Poisson stream), which
	// reproduces single-engine Results byte-for-byte.
	Servers int

	// Technique and Stride select the engine configuration through the
	// technique registry ("" means striped; stride 0 the technique
	// default).  Every member runs the same technique.
	Technique string
	Stride    int

	// Dispatch is the arrival-routing policy key (see Policies); ""
	// means roundrobin.  Only meaningful with Servers > 1.
	Dispatch string

	// Base is the per-server configuration: farm geometry, station
	// pool, cache tier, and measurement windows all apply to each
	// member individually, while the workload fields describe the
	// cluster as a whole — with Servers > 1, ArrivalsPerHour is the
	// cluster-wide offered load (the shared Poisson stream this
	// driver owns and dispatches), ZipfSkew/DistMean shape the shared
	// object draw, and ZipfFlipInterval flips that shared draw.
	// Base.Seed seeds the cluster streams; member engine i runs under
	// the split seed rng.NewStream(Seed, i+1).
	Base sched.Config

	// ServerFaults optionally gives each member its own fault plan
	// (index = server; shorter slices leave the tail fault-free),
	// overriding Base.Faults for every member — the chaos harness uses
	// it to fail disks on one server and assert the siblings are
	// untouched.
	ServerFaults []*fault.Plan
}

// Result is the outcome of one cluster run.
type Result struct {
	// Aggregate merges every member's Result (metrics.Run.Merge):
	// displays, requests, and latency observations add across the
	// cluster over the common measurement window, so
	// Aggregate.Throughput() is cluster displays per hour.
	Aggregate sched.Result
	// Servers holds each member's own Result, in server order.
	Servers []sched.Result
	// Dispatch is the routing policy that ran.
	Dispatch string
	// Routed counts the measurement-window arrivals dispatched to each
	// server (nil for a delegated 1-server run).
	Routed []int
	// NoHolder counts measurement-window popularity dispatches that
	// found no server holding the object and fell back to least
	// loaded (always 0 for other policies).
	NoHolder int
}

// Sim is one cluster simulation.  Build with New, run once with Run.
type Sim struct {
	cfg      Config
	engines  []*sched.Engine
	pool     *sched.Pool
	dispatch Dispatch
	dt       float64

	// Cluster-owned arrival process (Servers > 1 only).
	arrStream rng.Stream
	objStream rng.Stream
	dist      *rng.Discrete
	remap     []int // popularity-churn rotation, nil until the flip
	nextAt    float64
	meanGap   float64
	flipAt    float64 // seconds; 0 = never
	flipped   bool

	// Dispatch counters (reset at the warm-up boundary).
	routed   []int
	noHolder int

	resetDone []bool
	ran       bool
}

// New validates the configuration and builds the member engines,
// including the build-time replica placement the popularity policy
// routes against.
func New(cfg Config) (*Sim, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", cfg.Servers)
	}
	key := cfg.Technique
	if key == "" {
		key = "striped"
	}
	ti, ok := sched.TechniqueByKey(key)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown technique %q", key)
	}
	base, err := ti.Configure(cfg.Base, cfg.Stride)
	if err != nil {
		return nil, err
	}
	disp, err := newDispatch(cfg.Dispatch)
	if err != nil {
		return nil, err
	}
	if len(cfg.ServerFaults) > cfg.Servers {
		return nil, fmt.Errorf("cluster: %d fault plans for %d servers", len(cfg.ServerFaults), cfg.Servers)
	}

	s := &Sim{cfg: cfg, dispatch: disp, dt: base.IntervalSeconds()}

	if cfg.Servers == 1 {
		// Delegate the whole workload to the single engine — closed
		// loop, own Poisson stream, whatever Base says — so a 1-server
		// cluster is the engine, byte-for-byte.
		if len(cfg.ServerFaults) == 1 {
			base.Faults = cfg.ServerFaults[0]
		}
		e, err := ti.New(base)
		if err != nil {
			return nil, err
		}
		s.engines = []*sched.Engine{e}
		s.resetDone = make([]bool, 1)
		return s, nil
	}

	if base.ArrivalsPerHour <= 0 {
		return nil, fmt.Errorf("cluster: %d servers need an open workload (Base.ArrivalsPerHour > 0)", cfg.Servers)
	}
	if base.ExternalArrivals {
		return nil, fmt.Errorf("cluster: Base.ExternalArrivals is set by the cluster itself")
	}
	if base.PreloadObjects != nil {
		return nil, fmt.Errorf("cluster: Base.PreloadObjects is assigned by the cluster's replica placement")
	}

	// Cluster-owned workload streams.  The object distribution is the
	// same one the engines would draw from; the arrival process is the
	// cluster-wide offered load.
	src := rng.NewSource(base.Seed)
	s.arrStream = *src.Stream("cluster/arrivals")
	s.objStream = *src.Stream("cluster/objects")
	if base.ZipfSkew > 0 {
		s.dist, err = rng.Zipf(base.Objects, base.ZipfSkew)
	} else {
		s.dist, err = rng.TruncatedGeometric(base.Objects, base.DistMean)
	}
	if err != nil {
		return nil, err
	}
	s.meanGap = 3600 / base.ArrivalsPerHour
	s.nextAt = s.arrStream.Exp(s.meanGap)
	if base.ZipfFlipInterval > 0 {
		s.flipAt = float64(base.ZipfFlipInterval) * s.dt
	}

	assignments := replicaAssignments(base.Objects, cfg.Servers, base.DefaultPreload())

	// One worker pool for the whole cluster: the members are stepped
	// sequentially, so N per-engine pools would only oversubscribe the
	// machine.
	s.pool = sched.NewPool(base.Workers)

	s.engines = make([]*sched.Engine, cfg.Servers)
	for i := range s.engines {
		scfg := base
		// Per-instance randomness: a split of the cluster seed, so
		// member trajectories are independent and adding a server
		// never perturbs the existing ones.
		scfg.Seed = rng.NewStream(base.Seed, uint64(i+1)).Uint64()
		scfg.ArrivalsPerHour = 0
		scfg.ExternalArrivals = true
		scfg.ZipfFlipInterval = 0 // the flip applies to the cluster's shared draw
		scfg.PreloadObjects = assignments[i]
		scfg.Faults = base.Faults
		if i < len(cfg.ServerFaults) {
			scfg.Faults = cfg.ServerFaults[i]
		}
		e, err := ti.New(scfg)
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		e.AttachPool(s.pool)
		s.engines[i] = e
	}
	s.routed = make([]int, cfg.Servers)
	s.resetDone = make([]bool, cfg.Servers)
	return s, nil
}

// Servers returns the member count.
func (s *Sim) Servers() int { return len(s.engines) }

// load is the dispatch policies' congestion signal for one member:
// displays in delivery plus references waiting in the disk queue.
func (s *Sim) load(i int) int {
	return s.engines[i].ActiveDisplays() + s.engines[i].QueuedRequests()
}

// holds reports whether member i can play the object without staging.
func (s *Sim) holds(i, obj int) bool { return s.engines[i].HoldsObject(obj) }

// drawObject samples the shared popularity distribution, applying the
// churn rotation once the flip has fired.
func (s *Sim) drawObject() int {
	id := s.dist.Sample(&s.objStream)
	if s.remap != nil {
		id = s.remap[id]
	}
	return id
}

// flip rotates the shared draw by half the catalog — the same
// rotation workload.Generator.FlipHalf applies to a single engine's
// per-station draws.
func (s *Sim) flip() {
	n := s.dist.Len()
	if s.remap == nil {
		s.remap = make([]int, n)
		for i := range s.remap {
			s.remap[i] = i
		}
	}
	for i := range s.remap {
		s.remap[i] = (s.remap[i] + (n+1)/2) % n
	}
}

// deliverArrivals dispatches every cluster arrival strictly before
// limit (seconds) to a member chosen by the policy.
func (s *Sim) deliverArrivals(limit float64) {
	for s.nextAt < limit {
		if s.flipAt > 0 && !s.flipped && s.nextAt >= s.flipAt {
			s.flipped = true
			s.flip()
		}
		obj := s.drawObject()
		target := s.dispatch.Pick(obj, s)
		s.routed[target]++
		s.engines[target].InjectArrival(obj)
		s.nextAt += s.arrStream.Exp(s.meanGap)
	}
}

// Run executes the cluster to its horizon and returns the merged
// statistics.  A second call returns sched.ErrAlreadyRun.
func (s *Sim) Run() (Result, error) {
	if s.ran {
		return Result{}, sched.ErrAlreadyRun
	}
	s.ran = true
	defer func() {
		for _, e := range s.engines {
			e.Close()
		}
		s.pool.Close()
	}()
	for _, e := range s.engines {
		e.Prime()
	}

	// Shared-clock loop: always advance the member whose next interval
	// is globally earliest (ties in ascending server order).  With
	// homogeneous members this degenerates to lockstep rounds; the
	// earliest-time order is what keeps heterogeneous interval lengths
	// correct.
	warm := s.engines[0].Config().WarmupIntervals
	for {
		best := -1
		var bt float64
		for i, e := range s.engines {
			if !e.HasPendingWork() {
				continue
			}
			if t := e.NextEventTime(); best < 0 || t < bt {
				best, bt = i, t
			}
		}
		if best < 0 {
			break
		}
		e := s.engines[best]
		if !s.resetDone[best] && e.Now() >= warm {
			// Warm-up boundary: open this member's measurement window,
			// and the cluster's dispatch window with the first member.
			e.ResetWindow()
			s.resetDone[best] = true
			if best == 0 || !anyTrue(s.resetDone[:best]) {
				for i := range s.routed {
					s.routed[i] = 0
				}
				s.noHolder = 0
			}
		}
		if s.dist != nil {
			// Deliver the arrivals of the interval about to execute
			// before any member steps past it: in a tie round this
			// fires on the first member's turn and is a no-op for the
			// rest (the limit is monotone).
			limit := bt + s.dt
			if end := float64(warm+e.Config().MeasureIntervals) * s.dt; limit > end {
				limit = end
			}
			s.deliverArrivals(limit)
		}
		e.StepOne()
	}

	res := Result{
		Servers:  make([]sched.Result, len(s.engines)),
		Dispatch: s.dispatch.Name(),
		NoHolder: s.noHolder,
	}
	if s.routed != nil {
		res.Routed = append([]int(nil), s.routed...)
	}
	for i, e := range s.engines {
		res.Servers[i] = e.Snapshot()
	}
	res.Aggregate = res.Servers[0]
	for _, r := range res.Servers[1:] {
		res.Aggregate.Merge(r)
	}
	return res, nil
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// replicaAssignments spreads object replicas across n servers by
// popularity rank at build time: the hottest object is resident on
// every server, and each doubling of rank halves the copy count down
// to a floor of one, so every object has a holder while capacity
// lasts (the popularity policy's routing table).  Copies go to the
// least-filled eligible servers (ties to the lowest index), which
// both balances the build-time load and is deterministic.  perServer
// caps each member's resident objects at its farm capacity; objects
// past the aggregate capacity stay unplaced and materialize on
// demand.
func replicaAssignments(objects, n, perServer int) [][]int {
	out := make([][]int, n)
	for i := range out {
		// Non-nil even when empty: a nil PreloadObjects would fall
		// back to the engine's own default preload.
		out[i] = []int{}
	}
	counts := make([]int, n)
	for rank := 0; rank < objects; rank++ {
		copies := n >> bandOf(rank)
		if copies < 1 {
			copies = 1
		}
		taken := make([]bool, n)
		for c := 0; c < copies; c++ {
			best := -1
			for i := 0; i < n; i++ {
				if taken[i] || counts[i] >= perServer {
					continue
				}
				if best < 0 || counts[i] < counts[best] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			taken[best] = true
			counts[best]++
			out[best] = append(out[best], rank)
		}
	}
	return out
}

// bandOf returns floor(log2(rank+1)): rank 0 is band 0, ranks 1-2
// band 1, ranks 3-6 band 2, and so on.
func bandOf(rank int) int {
	return int(math.Ilogb(float64(rank + 1)))
}
