// Package cluster scales the simulation past one server: N
// independent sched.Engine instances — each its own disk farm,
// tertiary device, and station pool — advanced in global
// earliest-time order under a shared clock, fed by one cluster-wide
// Poisson arrival stream that a pluggable Dispatch policy routes to a
// member server (DESIGN.md §13).  The paper sizes a single server (D
// disks bound its bandwidth no matter how clever the striping);
// ROADMAP's millions-of-users north star is this layer's N-fold
// aggregate.
//
// The engines expose steppable primitives (Prime / StepOne /
// ResetWindow / Snapshot) precisely so this driver can interleave
// them; they share one worker pool (sched.Pool) because the driver
// steps them sequentially, and they draw per-instance randomness from
// rng.NewStream(seed, server) splits so adding a server never
// perturbs its siblings' trajectories.
package cluster

import (
	"fmt"
	"math"

	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/rng"
	"github.com/mmsim/staggered/internal/sched"
)

// Config describes one cluster run.
type Config struct {
	// Servers is the member count.  1 delegates the workload entirely
	// to the single engine (closed loop or own Poisson stream), which
	// reproduces single-engine Results byte-for-byte.
	Servers int

	// Technique and Stride select the engine configuration through the
	// technique registry ("" means striped; stride 0 the technique
	// default).  Every member runs the same technique.
	Technique string
	Stride    int

	// Dispatch is the arrival-routing policy key (see Policies); ""
	// means roundrobin.  Only meaningful with Servers > 1.
	Dispatch string

	// Base is the per-server configuration: farm geometry, station
	// pool, cache tier, and measurement windows all apply to each
	// member individually, while the workload fields describe the
	// cluster as a whole — with Servers > 1, ArrivalsPerHour is the
	// cluster-wide offered load (the shared Poisson stream this
	// driver owns and dispatches), ZipfSkew/DistMean shape the shared
	// object draw, and ZipfFlipInterval flips that shared draw.
	// Base.Seed seeds the cluster streams; member engine i runs under
	// the split seed rng.NewStream(Seed, i+1).
	Base sched.Config

	// ServerFaults optionally gives each member its own fault plan
	// (index = server; shorter slices leave the tail fault-free),
	// overriding Base.Faults for every member — the chaos harness uses
	// it to fail disks on one server and assert the siblings are
	// untouched.
	ServerFaults []*fault.Plan

	// ServerPlan optionally schedules whole-member failures
	// (fault.FailServer / FailServerUntil / ServerWearProcess,
	// DESIGN.md §14): a killed member aborts its in-flight displays,
	// its queued requests re-route to survivors through the dispatch
	// policy, and a restart rejoins it with cold RAM but warm disks.
	// Member indexes must be < Servers; requires Servers > 1 (killing
	// the only member leaves nobody to fail over to).
	ServerPlan *fault.Plan

	// HealBudget bounds how many replicas the healing pass re-creates
	// per healing window after a kill (0 disables healing).  Each
	// object the dead member held goes to the least-loaded live
	// non-holder, hottest first.
	HealBudget int

	// HealWindowIntervals is the healing-pass cadence in intervals
	// (0 = one display length, Base.Subobjects).
	HealWindowIntervals int

	// ReplicaDepth scales the build-time replica ladder: depth d gives
	// the rank-r object min(Servers, max(1, Servers·d >> floor(log2(r+1))))
	// copies, so higher depths keep more of the catalog multi-homed —
	// the survivability knob experiment E21 sweeps.  0 or 1 is the
	// default ladder.
	ReplicaDepth int

	// SampleIntervals, when positive, samples the cluster-wide
	// cumulative completed-display count every that many intervals of
	// the shared clock — the recovery curves of experiment E21.
	SampleIntervals int
}

// Sample is one point of the cluster's recovery curve: the cumulative
// completed displays (warm-up included) across all members at a shared-
// clock instant.
type Sample struct {
	Seconds  float64
	Displays int
}

// Result is the outcome of one cluster run.
type Result struct {
	// Aggregate merges every member's Result (metrics.Run.Merge):
	// displays, requests, and latency observations add across the
	// cluster over the common measurement window, so
	// Aggregate.Throughput() is cluster displays per hour.
	Aggregate sched.Result
	// Servers holds each member's own Result, in server order.
	Servers []sched.Result
	// Dispatch is the routing policy that ran.
	Dispatch string
	// Routed counts the measurement-window arrivals dispatched to each
	// server (nil for a delegated 1-server run).
	Routed []int
	// NoHolder counts measurement-window popularity dispatches that
	// found no live server holding the object and fell back to least
	// loaded among live members (always 0 for other policies).
	NoHolder int

	// FailedOver counts measurement-window dispatches whose natural
	// target was dead and that re-routed to a live member.  For
	// leastloaded the natural target is the global load argmin
	// including dead members — a drained dead member reports zero
	// load, so nearly every dispatch during an outage counts here;
	// read it as availability pressure, not as an error count.
	FailedOver int
	// OrphanedRequests counts requests drained from killed members'
	// disk queues and batch registries.  Each one is re-admitted to a
	// survivor or dropped, so OrphanedRequests == ReAdmitted +
	// ReAdmitDropped always (displays killed mid-delivery are counted
	// in the members' OrphanedDisplays instead).
	OrphanedRequests int
	// ReAdmitted counts orphaned requests a survivor accepted.
	ReAdmitted int
	// ReAdmitDropped counts orphaned requests nobody could take
	// (every member dead, or the target had no idle station).
	ReAdmitDropped int
	// LostArrivals counts fresh arrivals that found every member dead.
	LostArrivals int
	// HealedReplicas counts replicas the healing pass re-created on
	// survivors (Config.HealBudget).
	HealedReplicas int
	// RedistributeSeconds is the longest span from a kill to its heal
	// queue draining — the time-to-redistribute of the dead member's
	// catalog (0 when healing is off or never triggered).
	RedistributeSeconds float64
	// Samples is the recovery curve (Config.SampleIntervals).
	Samples []Sample
}

// Sim is one cluster simulation.  Build with New, run once with Run.
type Sim struct {
	cfg      Config
	engines  []*sched.Engine
	pool     *sched.Pool
	dispatch Dispatch
	dt       float64

	// Cluster-owned arrival process (Servers > 1 only).
	arrStream rng.Stream
	objStream rng.Stream
	dist      *rng.Discrete
	remap     []int // popularity-churn rotation, nil until the flip
	nextAt    float64
	meanGap   float64
	flipAt    float64 // seconds; 0 = never
	flipped   bool

	// Dispatch counters (reset at the warm-up boundary).
	routed     []int
	noHolder   int
	failedOver int

	// Server-failover state (DESIGN.md §14).  The conservation
	// counters (orphaned, reAdmitted, reAdmitDropped, healed) are
	// lifetime, never window-reset: the chaos harness asserts
	// orphaned == reAdmitted + reAdmitDropped over the whole run.
	serverEvents    []fault.Event
	serverCursor    int
	assignments     [][]int // build-time replica table, the healing source
	orphaned        int
	reAdmitted      int
	reAdmitDropped  int
	lostArrivals    int
	healed          int
	healQueue       []healEntry
	healBudget      int
	healWindowSecs  float64
	nextHealAt      float64
	healStart       float64 // seconds of the kill that opened the episode
	redistributeSec float64

	// Recovery-curve sampling (Config.SampleIntervals).
	sampleSecs   float64
	nextSampleAt float64
	samples      []Sample

	resetDone []bool
	ran       bool
}

// healEntry is one replica the healing pass still owes the cluster:
// an object the killed member `from` held at its death.
type healEntry struct {
	obj  int
	from int
}

// New validates the configuration and builds the member engines,
// including the build-time replica placement the popularity policy
// routes against.
func New(cfg Config) (*Sim, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", cfg.Servers)
	}
	key := cfg.Technique
	if key == "" {
		key = "striped"
	}
	ti, ok := sched.TechniqueByKey(key)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown technique %q", key)
	}
	base, err := ti.Configure(cfg.Base, cfg.Stride)
	if err != nil {
		return nil, err
	}
	disp, err := newDispatch(cfg.Dispatch)
	if err != nil {
		return nil, err
	}
	if len(cfg.ServerFaults) > cfg.Servers {
		return nil, fmt.Errorf("cluster: %d fault plans for %d servers", len(cfg.ServerFaults), cfg.Servers)
	}
	if cfg.ServerPlan != nil && !cfg.ServerPlan.Empty() {
		if cfg.Servers < 2 {
			return nil, fmt.Errorf("cluster: a server fault plan needs Servers > 1 (nobody to fail over to)")
		}
		if err := cfg.ServerPlan.ValidateServers(cfg.Servers); err != nil {
			return nil, err
		}
	}
	if cfg.HealBudget < 0 {
		return nil, fmt.Errorf("cluster: HealBudget must be non-negative")
	}
	if cfg.HealWindowIntervals < 0 {
		return nil, fmt.Errorf("cluster: HealWindowIntervals must be non-negative")
	}
	if cfg.ReplicaDepth < 0 {
		return nil, fmt.Errorf("cluster: ReplicaDepth must be non-negative")
	}
	if cfg.SampleIntervals < 0 {
		return nil, fmt.Errorf("cluster: SampleIntervals must be non-negative")
	}

	s := &Sim{cfg: cfg, dispatch: disp, dt: base.IntervalSeconds()}

	if cfg.Servers == 1 {
		// Delegate the whole workload to the single engine — closed
		// loop, own Poisson stream, whatever Base says — so a 1-server
		// cluster is the engine, byte-for-byte.
		if len(cfg.ServerFaults) == 1 {
			base.Faults = cfg.ServerFaults[0]
		}
		e, err := ti.New(base)
		if err != nil {
			return nil, err
		}
		s.engines = []*sched.Engine{e}
		s.resetDone = make([]bool, 1)
		return s, nil
	}

	if base.ArrivalsPerHour <= 0 {
		return nil, fmt.Errorf("cluster: %d servers need an open workload (Base.ArrivalsPerHour > 0)", cfg.Servers)
	}
	if base.ExternalArrivals {
		return nil, fmt.Errorf("cluster: Base.ExternalArrivals is set by the cluster itself")
	}
	if base.PreloadObjects != nil {
		return nil, fmt.Errorf("cluster: Base.PreloadObjects is assigned by the cluster's replica placement")
	}

	// Cluster-owned workload streams.  The object distribution is the
	// same one the engines would draw from; the arrival process is the
	// cluster-wide offered load.
	src := rng.NewSource(base.Seed)
	s.arrStream = *src.Stream("cluster/arrivals")
	s.objStream = *src.Stream("cluster/objects")
	if base.ZipfSkew > 0 {
		s.dist, err = rng.Zipf(base.Objects, base.ZipfSkew)
	} else {
		s.dist, err = rng.TruncatedGeometric(base.Objects, base.DistMean)
	}
	if err != nil {
		return nil, err
	}
	s.meanGap = 3600 / base.ArrivalsPerHour
	s.nextAt = s.arrStream.Exp(s.meanGap)
	if base.ZipfFlipInterval > 0 {
		s.flipAt = float64(base.ZipfFlipInterval) * s.dt
	}

	depth := cfg.ReplicaDepth
	if depth == 0 {
		depth = 1
	}
	assignments := replicaAssignments(base.Objects, cfg.Servers, base.DefaultPreload(), depth)
	s.assignments = assignments
	if cfg.ServerPlan != nil {
		s.serverEvents = cfg.ServerPlan.Events()
	}
	s.healBudget = cfg.HealBudget
	hw := cfg.HealWindowIntervals
	if hw == 0 {
		hw = base.Subobjects
	}
	s.healWindowSecs = float64(hw) * s.dt
	s.nextHealAt = s.healWindowSecs
	if cfg.SampleIntervals > 0 {
		s.sampleSecs = float64(cfg.SampleIntervals) * s.dt
		s.nextSampleAt = s.sampleSecs
	}

	// One worker pool for the whole cluster: the members are stepped
	// sequentially, so N per-engine pools would only oversubscribe the
	// machine.
	s.pool = sched.NewPool(base.Workers)

	s.engines = make([]*sched.Engine, cfg.Servers)
	for i := range s.engines {
		scfg := base
		// Per-instance randomness: a split of the cluster seed, so
		// member trajectories are independent and adding a server
		// never perturbs the existing ones.
		scfg.Seed = rng.NewStream(base.Seed, uint64(i+1)).Uint64()
		scfg.ArrivalsPerHour = 0
		scfg.ExternalArrivals = true
		scfg.ZipfFlipInterval = 0 // the flip applies to the cluster's shared draw
		scfg.PreloadObjects = assignments[i]
		scfg.Faults = base.Faults
		if i < len(cfg.ServerFaults) {
			scfg.Faults = cfg.ServerFaults[i]
		}
		e, err := ti.New(scfg)
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		e.AttachPool(s.pool)
		s.engines[i] = e
	}
	s.routed = make([]int, cfg.Servers)
	s.resetDone = make([]bool, cfg.Servers)
	return s, nil
}

// Servers returns the member count.
func (s *Sim) Servers() int { return len(s.engines) }

// load is the dispatch policies' congestion signal for one member:
// displays in delivery plus references waiting in the disk queue.
func (s *Sim) load(i int) int {
	return s.engines[i].ActiveDisplays() + s.engines[i].QueuedRequests()
}

// holds reports whether member i can play the object without staging.
func (s *Sim) holds(i, obj int) bool { return s.engines[i].HoldsObject(obj) }

// dead reports whether member i is currently killed.
func (s *Sim) dead(i int) bool { return s.engines[i].Dead() }

// drawObject samples the shared popularity distribution, applying the
// churn rotation once the flip has fired.
func (s *Sim) drawObject() int {
	id := s.dist.Sample(&s.objStream)
	if s.remap != nil {
		id = s.remap[id]
	}
	return id
}

// flip rotates the shared draw by half the catalog — the same
// rotation workload.Generator.FlipHalf applies to a single engine's
// per-station draws.
func (s *Sim) flip() {
	n := s.dist.Len()
	if s.remap == nil {
		s.remap = make([]int, n)
		for i := range s.remap {
			s.remap[i] = i
		}
	}
	for i := range s.remap {
		s.remap[i] = (s.remap[i] + (n+1)/2) % n
	}
}

// deliverArrivals dispatches every cluster arrival strictly before
// limit (seconds) to a member chosen by the policy.  An arrival that
// finds every member dead is lost and counted.
func (s *Sim) deliverArrivals(limit float64) {
	for s.nextAt < limit {
		if s.flipAt > 0 && !s.flipped && s.nextAt >= s.flipAt {
			s.flipped = true
			s.flip()
		}
		obj := s.drawObject()
		target := s.dispatch.Pick(obj, s)
		if target < 0 {
			s.lostArrivals++
		} else {
			s.routed[target]++
			s.engines[target].InjectArrival(obj)
		}
		s.nextAt += s.arrStream.Exp(s.meanGap)
	}
}

// applyServerEvent executes one server-plan transition.  Redundant
// events (killing a dead member, reviving a live one) are absorbed.
func (s *Sim) applyServerEvent(ev fault.Event) {
	switch ev.Kind {
	case fault.ServerFail:
		s.killServer(ev.Disk)
	case fault.ServerRepair:
		s.reviveServer(ev.Disk, ev.At)
	}
}

// killServer takes member i down: its in-flight displays become typed
// aborts inside Engine.Kill, and every drained request is re-dispatched
// to a survivor right here — the viewer re-queues on another server
// rather than vanishing.  With healing enabled, the member's replica
// assignment joins the heal queue, hottest (lowest rank) first.
func (s *Sim) killServer(i int) {
	e := s.engines[i]
	if e.Dead() {
		return
	}
	killT := e.NextEventTime()
	rep := e.Kill()
	s.orphaned += len(rep.Orphans)
	for _, obj := range rep.Orphans {
		target := s.dispatch.Pick(obj, s)
		if target < 0 {
			s.reAdmitDropped++
			continue
		}
		s.routed[target]++
		if s.engines[target].InjectArrival(obj) {
			s.reAdmitted++
		} else {
			s.reAdmitDropped++
		}
	}
	if s.healBudget > 0 {
		wasEmpty := len(s.healQueue) == 0
		for _, obj := range s.assignments[i] {
			if e.HoldsObject(obj) {
				s.healQueue = append(s.healQueue, healEntry{obj: obj, from: i})
			}
		}
		if wasEmpty && len(s.healQueue) > 0 {
			s.healStart = killT
		}
	}
}

// reviveServer restarts member i at the plan's interval (clamped to
// the member's own clock, which may sit one interval past the kill
// time in a staggered round).  Healing work owed for replicas the
// member brings back with its surviving disks is dropped.
func (s *Sim) reviveServer(i, at int) {
	e := s.engines[i]
	if !e.Dead() {
		return
	}
	if n := e.Now(); at < n {
		at = n
	}
	e.Revive(at)
	if len(s.healQueue) > 0 {
		kept := s.healQueue[:0]
		for _, h := range s.healQueue {
			if h.from != i {
				kept = append(kept, h)
			}
		}
		s.healQueue = kept
		if len(kept) == 0 {
			s.endHealEpisode(float64(at) * s.dt)
		}
	}
}

// healPass re-creates up to HealBudget replicas from the heal queue:
// each goes to the least-loaded live member not already holding the
// object.  An entry nobody can take (every live member holds it, or
// every member is dead) is dropped; an entry the target has no room
// for stays at the head for the next window.
func (s *Sim) healPass(now float64) {
	budget := s.healBudget
	for budget > 0 && len(s.healQueue) > 0 {
		h := s.healQueue[0]
		target, tl := -1, 0
		for j := range s.engines {
			if s.dead(j) || s.holds(j, h.obj) {
				continue
			}
			if l := s.load(j); target < 0 || l < tl {
				target, tl = j, l
			}
		}
		if target < 0 {
			s.healQueue = s.healQueue[1:]
			continue
		}
		if !s.engines[target].AdoptObject(h.obj) {
			break // no room anywhere useful this window; retry next
		}
		s.healed++
		budget--
		s.healQueue = s.healQueue[1:]
	}
	if len(s.healQueue) == 0 {
		s.endHealEpisode(now)
	}
}

// endHealEpisode records the time-to-redistribute of a drained heal
// queue; the Result reports the longest episode.
func (s *Sim) endHealEpisode(now float64) {
	if d := now - s.healStart; d > s.redistributeSec {
		s.redistributeSec = d
	}
	s.healStart = now
}

// takeSample appends one recovery-curve point: the cluster-wide
// cumulative completed-display count at shared-clock time t.
func (s *Sim) takeSample(t float64) {
	sum := 0
	for _, e := range s.engines {
		sum += e.CompletedDisplays()
	}
	s.samples = append(s.samples, Sample{Seconds: t, Displays: sum})
}

// Run executes the cluster to its horizon and returns the merged
// statistics.  A second call returns sched.ErrAlreadyRun.
func (s *Sim) Run() (Result, error) {
	if s.ran {
		return Result{}, sched.ErrAlreadyRun
	}
	s.ran = true
	defer func() {
		for _, e := range s.engines {
			e.Close()
		}
		s.pool.Close()
	}()
	for _, e := range s.engines {
		e.Prime()
	}

	// Shared-clock loop: always advance the member whose next interval
	// is globally earliest (ties in ascending server order).  With
	// homogeneous members this degenerates to lockstep rounds; the
	// earliest-time order is what keeps heterogeneous interval lengths
	// correct.  A dead member reports no pending work and simply drops
	// out of the rounds until its restart event revives it.
	warm := s.engines[0].Config().WarmupIntervals
	pickBest := func() (int, float64) {
		best := -1
		var bt float64
		for i, e := range s.engines {
			if !e.HasPendingWork() {
				continue
			}
			if t := e.NextEventTime(); best < 0 || t < bt {
				best, bt = i, t
			}
		}
		return best, bt
	}
	for {
		best, bt := pickBest()
		// Execute server-plan events due at or before the next step.
		// With every member dead (best < 0) the clock jumps straight to
		// the next event — a pending restart is the only thing that can
		// put work back on the loop.
		for s.serverCursor < len(s.serverEvents) {
			ev := s.serverEvents[s.serverCursor]
			if ev.At >= warm+s.engines[0].Config().MeasureIntervals {
				// Past the run horizon (wear processes outlive short
				// runs): never execute, or post-window state would leak
				// into the Snapshots.
				s.serverCursor++
				continue
			}
			if best >= 0 && float64(ev.At)*s.dt > bt {
				break
			}
			s.serverCursor++
			s.applyServerEvent(ev)
			best, bt = pickBest()
		}
		if best < 0 {
			break
		}
		e := s.engines[best]
		if !s.resetDone[best] && e.Now() >= warm {
			// Warm-up boundary: open this member's measurement window,
			// and the cluster's dispatch window with the first member.
			e.ResetWindow()
			s.resetDone[best] = true
			if best == 0 || !anyTrue(s.resetDone[:best]) {
				for i := range s.routed {
					s.routed[i] = 0
				}
				s.noHolder = 0
				s.failedOver = 0
			}
		}
		if s.sampleSecs > 0 {
			for s.nextSampleAt <= bt {
				s.takeSample(s.nextSampleAt)
				s.nextSampleAt += s.sampleSecs
			}
		}
		if s.healBudget > 0 && bt >= s.nextHealAt {
			if len(s.healQueue) > 0 {
				s.healPass(bt)
			}
			for s.nextHealAt <= bt {
				s.nextHealAt += s.healWindowSecs
			}
		}
		if s.dist != nil {
			// Deliver the arrivals of the interval about to execute
			// before any member steps past it: in a tie round this
			// fires on the first member's turn and is a no-op for the
			// rest (the limit is monotone).
			limit := bt + s.dt
			if end := float64(warm+e.Config().MeasureIntervals) * s.dt; limit > end {
				limit = end
			}
			s.deliverArrivals(limit)
		}
		e.StepOne()
	}

	res := Result{
		Servers:             make([]sched.Result, len(s.engines)),
		Dispatch:            s.dispatch.Name(),
		NoHolder:            s.noHolder,
		FailedOver:          s.failedOver,
		OrphanedRequests:    s.orphaned,
		ReAdmitted:          s.reAdmitted,
		ReAdmitDropped:      s.reAdmitDropped,
		LostArrivals:        s.lostArrivals,
		HealedReplicas:      s.healed,
		RedistributeSeconds: s.redistributeSec,
		Samples:             s.samples,
	}
	if s.routed != nil {
		res.Routed = append([]int(nil), s.routed...)
	}
	for i, e := range s.engines {
		if !s.resetDone[i] {
			// The member never crossed the warm-up boundary alive (it
			// died during warm-up and stayed dead): open an empty window
			// so its warm-up counters don't pollute the aggregate.
			e.ResetWindow()
			s.resetDone[i] = true
		}
		res.Servers[i] = e.Snapshot()
	}
	res.Aggregate = res.Servers[0]
	for _, r := range res.Servers[1:] {
		res.Aggregate.Merge(r)
	}
	return res, nil
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// replicaAssignments spreads object replicas across n servers by
// popularity rank at build time: the hottest object is resident on
// every server, and each doubling of rank halves the copy count down
// to a floor of one, so every object has a holder while capacity
// lasts (the popularity policy's routing table).  depth scales the
// whole ladder (depth 2 doubles every band's copies, capped at n) —
// deeper ladders keep more of the catalog multi-homed, which is what
// survives a member kill.  Copies go to the least-filled eligible
// servers (ties to the lowest index), which both balances the
// build-time load and is deterministic.  perServer caps each member's
// resident objects at its farm capacity; objects past the aggregate
// capacity stay unplaced and materialize on demand.
func replicaAssignments(objects, n, perServer, depth int) [][]int {
	out := make([][]int, n)
	for i := range out {
		// Non-nil even when empty: a nil PreloadObjects would fall
		// back to the engine's own default preload.
		out[i] = []int{}
	}
	counts := make([]int, n)
	for rank := 0; rank < objects; rank++ {
		copies := (n * depth) >> bandOf(rank)
		if copies < 1 {
			copies = 1
		}
		if copies > n {
			copies = n
		}
		taken := make([]bool, n)
		for c := 0; c < copies; c++ {
			best := -1
			for i := 0; i < n; i++ {
				if taken[i] || counts[i] >= perServer {
					continue
				}
				if best < 0 || counts[i] < counts[best] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			taken[best] = true
			counts[best]++
			out[best] = append(out[best], rank)
		}
	}
	return out
}

// bandOf returns floor(log2(rank+1)): rank 0 is band 0, ranks 1-2
// band 1, ranks 3-6 band 2, and so on.
func bandOf(rank int) int {
	return int(math.Ilogb(float64(rank + 1)))
}
