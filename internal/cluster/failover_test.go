package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/mmsim/staggered/internal/fault"
)

// TestDispatchSkipsDeadMembers is the unit pass over the three
// policies' failover branches, against real (primed, never stepped)
// engines: the natural target dying re-routes the pick to a live
// member and counts it, the popularity no-holder fallback prefers live
// members over a drained corpse reporting zero load, and an all-dead
// cluster yields -1.
func TestDispatchSkipsDeadMembers(t *testing.T) {
	sim, err := New(multiConfig("popularity", 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sim.engines {
		e.Prime()
		defer e.Close()
	}

	// An object only member 0 holds: while 0 is alive popularity routes
	// there; once 0 dies the fallback must pick the live member, not the
	// dead holder and not the dead zero-load corpse.
	obj := -1
	for id := 0; id < sim.engines[0].Config().Objects; id++ {
		if sim.holds(0, id) && !sim.holds(1, id) {
			obj = id
			break
		}
	}
	if obj < 0 {
		t.Fatal("no object is held by member 0 alone")
	}

	pop := popularity{}
	if got := pop.Pick(obj, sim); got != 0 {
		t.Fatalf("live holder: Pick = %d, want 0", got)
	}
	if sim.noHolder != 0 || sim.failedOver != 0 {
		t.Fatalf("clean pick counted noHolder %d, failedOver %d", sim.noHolder, sim.failedOver)
	}

	sim.engines[0].Kill()
	if got := pop.Pick(obj, sim); got != 1 {
		t.Fatalf("dead holder: Pick = %d, want live member 1", got)
	}
	if sim.noHolder != 1 {
		t.Fatalf("dead-holder fallback counted noHolder %d, want 1", sim.noHolder)
	}

	rr := &roundRobin{}
	if got := rr.Pick(obj, sim); got != 1 {
		t.Fatalf("roundrobin with member 0 dead: Pick = %d, want 1", got)
	}
	ll := leastLoaded{}
	if got := ll.Pick(obj, sim); got != 1 {
		t.Fatalf("leastloaded with member 0 dead: Pick = %d, want 1", got)
	}
	if sim.failedOver == 0 {
		t.Fatal("no policy counted a failover off the dead member")
	}

	sim.engines[1].Kill()
	for _, d := range []Dispatch{&roundRobin{}, leastLoaded{}, popularity{}} {
		if got := d.Pick(obj, sim); got != -1 {
			t.Fatalf("%s with every member dead: Pick = %d, want -1", d.Name(), got)
		}
	}
}

// chaosFailoverConfig is the harness geometry: zero warm-up so window
// counters equal lifetime counters, open Zipf arrivals across n
// members.
func chaosFailoverConfig(n int, dispatch string, seed uint64) Config {
	base := quickBase(32, seed)
	base.WarmupIntervals = 0
	base.ZipfSkew = 1.1
	base.ArrivalsPerHour = 2500 * float64(n)
	return Config{Servers: n, Technique: "striped", Dispatch: dispatch, Base: base}
}

// TestChaosFailover is the seeded cluster chaos pass with a member
// kill in the mix: N ∈ {2, 4} members, disk faults on member 0, and a
// kill+restart window on the last member, under every dispatch policy.
// The invariants a degraded cluster must keep: every orphaned request
// is re-admitted or counted dropped, no arrival is lost while a live
// member exists, and the dispatch ledger balances — every routed
// arrival was either admitted (Requests) or refused at a full station
// pool (OpenRejected), nothing double-counted, nothing vanished.  CI
// runs this under -race.
func TestChaosFailover(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, dispatch := range Policies() {
			n, dispatch := n, dispatch
			t.Run(fmt.Sprintf("n%d-%s", n, dispatch), func(t *testing.T) {
				t.Parallel()
				cfg := chaosFailoverConfig(n, dispatch, uint64(3+n))
				cfg.ServerFaults = []*fault.Plan{
					fault.NewPlan().FailDiskUntil(3, 200, 500).FailDiskUntil(17, 250, 600),
				}
				cfg.ServerPlan = fault.NewPlan().FailServerUntil(n-1, 300, 650)
				sim, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}

				if res.OrphanedRequests != res.ReAdmitted+res.ReAdmitDropped {
					t.Errorf("orphan conservation violated: %d orphaned != %d readmitted + %d dropped",
						res.OrphanedRequests, res.ReAdmitted, res.ReAdmitDropped)
				}
				if res.LostArrivals != 0 {
					t.Errorf("%d arrivals lost with %d members and one kill", res.LostArrivals, n)
				}
				routed := 0
				for _, r := range res.Routed {
					routed += r
				}
				if got := res.Aggregate.Requests + res.Aggregate.OpenRejected; routed != got {
					t.Errorf("dispatch ledger off: routed %d != admitted %d + rejected %d",
						routed, res.Aggregate.Requests, res.Aggregate.OpenRejected)
				}
				victim := res.Servers[n-1]
				if victim.OrphanedDisplays > victim.AbortedDisplays {
					t.Errorf("victim orphaned %d displays but only aborted %d",
						victim.OrphanedDisplays, victim.AbortedDisplays)
				}
				if res.FailedOver == 0 {
					t.Errorf("%s never failed over during a 350-interval outage", dispatch)
				}
				// The victim was dead 350 of 1000 intervals: its window
				// must shrink accordingly (the Merge weighting input).
				if full := res.Servers[0].MeasureSeconds; victim.MeasureSeconds >= full {
					t.Errorf("victim dead 350 intervals still reports a full window: %v vs %v",
						victim.MeasureSeconds, full)
				}
				if res.Aggregate.Displays == 0 {
					t.Fatal("degraded cluster delivered zero displays")
				}

				// Determinism: a kill+restart run replays byte-for-byte.
				sim2, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res2, err := sim2.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, res2) {
					t.Errorf("same seed, different failover results:\n first %+v\nsecond %+v",
						res.Aggregate, res2.Aggregate)
				}
			})
		}
	}
}

// TestChaosFailoverSiblingIsolation extends the sibling-isolation pass
// into the failover regime: with roundrobin routing, disk faults on
// member 0 plus a kill of member 1 must leave members 2 and 3
// byte-identical to the same run without the disk faults.  Member 1's
// drain and re-admission depend only on its own trajectory, and the
// rotation is load-blind, so the only paths member 0's faults could
// leak through are exactly the isolation bugs this test exists to
// catch.
func TestChaosFailoverSiblingIsolation(t *testing.T) {
	run := func(diskFaults bool) Result {
		cfg := chaosFailoverConfig(4, "roundrobin", 9)
		if diskFaults {
			cfg.ServerFaults = []*fault.Plan{
				fault.NewPlan().FailDiskUntil(3, 150, 500).FailDiskUntil(17, 200, 700),
			}
		}
		cfg.ServerPlan = fault.NewPlan().FailServerUntil(1, 300, 650)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(false)
	faulted := run(true)

	s0 := faulted.Servers[0]
	if s0.AbortedDisplays == 0 && s0.DegradedHiccups == 0 && s0.RejectedDegraded == 0 {
		t.Fatal("disk faults had no visible effect on member 0 — the pass proves nothing")
	}
	for _, i := range []int{2, 3} {
		if !reflect.DeepEqual(faulted.Servers[i], clean.Servers[i]) {
			t.Errorf("member 0's disk faults perturbed member %d across a kill of member 1:\nfaulted %+v\nclean   %+v",
				i, faulted.Servers[i], clean.Servers[i])
		}
	}
}
