package core

import (
	"fmt"
	"strings"
)

// NamedPlacement pairs a placement with the object name used in the
// paper's figures (X, Y, Z, ...).
type NamedPlacement struct {
	Name string
	P    Placement
}

// Grid returns the fragment map of the given placements for subobject
// rows 0..rows-1: grid[s][d] is "<name><s>.<i>" when disk d holds
// fragment i of subobject s, or "" when no listed object stores data
// there in that stripe.  This is exactly the presentation of Figures
// 1, 4, and 5 of the paper.
func Grid(d, rows int, objs []NamedPlacement) ([][]string, error) {
	if d <= 0 || rows <= 0 {
		return nil, fmt.Errorf("core: grid needs positive dimensions, got %d×%d", rows, d)
	}
	g := make([][]string, rows)
	for s := range g {
		g[s] = make([]string, d)
	}
	for _, o := range objs {
		if o.P.Layout.D != d {
			return nil, fmt.Errorf("core: placement of %q is on a %d-disk layout, grid has %d",
				o.Name, o.P.Layout.D, d)
		}
		n := o.P.N
		if n > rows {
			n = rows
		}
		for s := 0; s < n; s++ {
			for i := 0; i < o.P.M; i++ {
				disk := o.P.Disk(s, i)
				cell := fmt.Sprintf("%s%d.%d", o.Name, s, i)
				if g[s][disk] != "" {
					return nil, fmt.Errorf("core: collision at subobject %d disk %d: %s vs %s",
						s, disk, g[s][disk], cell)
				}
				g[s][disk] = cell
			}
		}
	}
	return g, nil
}

// RenderGrid formats a Grid as an aligned text table with a disk
// header row, mirroring the paper's layout figures.
func RenderGrid(g [][]string) string {
	if len(g) == 0 {
		return ""
	}
	d := len(g[0])
	width := 4
	for _, row := range g {
		for _, cell := range row {
			if len(cell) > width {
				width = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-12s", "Disk"))
	for i := 0; i < d; i++ {
		b.WriteString(fmt.Sprintf(" %*d", width, i))
	}
	b.WriteByte('\n')
	for s, row := range g {
		b.WriteString(fmt.Sprintf("%-12s", fmt.Sprintf("Subobject %d", s)))
		for _, cell := range row {
			b.WriteString(fmt.Sprintf(" %*s", width, cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure1 returns the simple-striping layout of Figure 1: object X
// with M_X = 3 on 9 disks (3 clusters), shown for rows subobjects.
func Figure1(rows int) (string, error) {
	l, err := SimpleStriping(9, 3)
	if err != nil {
		return "", err
	}
	p, err := NewPlacement(l, 0, 3, rows)
	if err != nil {
		return "", err
	}
	g, err := Grid(9, rows, []NamedPlacement{{Name: "X", P: p}})
	if err != nil {
		return "", err
	}
	return RenderGrid(g), nil
}

// Figure4 returns the staggered-striping layout of Figure 4: object X
// on 8 disks with stride k = 1, shown for rows subobjects.
func Figure4(rows int) (string, error) {
	l, err := NewLayout(8, 1)
	if err != nil {
		return "", err
	}
	p, err := NewPlacement(l, 0, 4, rows)
	if err != nil {
		return "", err
	}
	g, err := Grid(8, rows, []NamedPlacement{{Name: "X", P: p}})
	if err != nil {
		return "", err
	}
	return RenderGrid(g), nil
}

// Figure5Placements returns the three placements of Figure 5: objects
// Z, X, Y with bandwidth requirements 40, 60, 80 mbps (M = 2, 3, 4) on
// 12 disks with stride 1; Y starts on disk 0, X on disk 4, Z on disk 7.
func Figure5Placements(rows int) ([]NamedPlacement, error) {
	l, err := NewLayout(12, 1)
	if err != nil {
		return nil, err
	}
	mk := func(name string, first, m int) (NamedPlacement, error) {
		p, err := NewPlacement(l, first, m, rows)
		return NamedPlacement{Name: name, P: p}, err
	}
	y, err := mk("Y", 0, 4)
	if err != nil {
		return nil, err
	}
	x, err := mk("X", 4, 3)
	if err != nil {
		return nil, err
	}
	z, err := mk("Z", 7, 2)
	if err != nil {
		return nil, err
	}
	return []NamedPlacement{y, x, z}, nil
}

// Figure5 returns the mixed-media staggered layout of Figure 5.
func Figure5(rows int) (string, error) {
	objs, err := Figure5Placements(rows)
	if err != nil {
		return "", err
	}
	g, err := Grid(12, rows, objs)
	if err != nil {
		return "", err
	}
	return RenderGrid(g), nil
}
