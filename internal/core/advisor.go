package core

import (
	"fmt"

	"github.com/mmsim/staggered/internal/diskmodel"
)

// Advice is a recommended farm configuration with the reasoning the
// paper gives for it.
type Advice struct {
	Stride    int
	Rationale string
}

// RecommendStride encodes §3.2's configuration guidance: for a single
// media type whose degree divides the farm, simple striping (k = M)
// gives the shortest collision waits; for a mix of media types, or
// when D is not a multiple of M, stride 1 is the universal choice —
// it is skew-free for every D (§3.2.2) and lets objects of any degree
// pack without cluster-boundary waste.  k = D (virtual replication)
// is never recommended: its <10% bandwidth saving is dominated by
// display-time-long collision waits (§3.2.2, §4).
func RecommendStride(d int, degrees []int) (Advice, error) {
	if d <= 0 {
		return Advice{}, fmt.Errorf("core: need at least one disk")
	}
	if len(degrees) == 0 {
		return Advice{}, fmt.Errorf("core: need at least one media degree")
	}
	uniform := true
	m := degrees[0]
	for _, deg := range degrees {
		if deg < 1 || deg > d {
			return Advice{}, fmt.Errorf("core: degree %d out of range [1, %d]", deg, d)
		}
		if deg != m {
			uniform = false
		}
	}
	if uniform && d%m == 0 {
		return Advice{
			Stride: m,
			Rationale: fmt.Sprintf(
				"single media type with M=%d dividing D=%d: simple striping (k=M) aligns admissions to physical clusters and minimizes collision waits", m, d),
		}, nil
	}
	return Advice{
		Stride: 1,
		Rationale: fmt.Sprintf(
			"mixed degrees or D=%d not a multiple of M: stride 1 is skew-free for every farm size and packs any degree mix without cluster-boundary waste", d),
	}, nil
}

// RecommendFragmentCylinders returns the largest fragment size (in
// cylinders) whose worst-case startup latency (R−1)·S(C_i) stays
// within the budget, implementing the §3.1 tradeoff.  At least one
// cylinder is always returned, with ok=false when even that misses
// the budget.
func RecommendFragmentCylinders(spec diskmodel.Spec, clusters int, latencyBudgetSeconds float64) (cylinders int, ok bool) {
	if clusters < 1 {
		panic("core: need at least one cluster")
	}
	if latencyBudgetSeconds <= 0 {
		panic("core: need a positive latency budget")
	}
	best, fits := 1, false
	for c := 1; ; c++ {
		worst := float64(clusters-1) * spec.ServiceTime(float64(c)*spec.CylinderBytes)
		if worst > latencyBudgetSeconds {
			break
		}
		best, fits = c, true
		// §3.1: gains beyond two cylinders are marginal; stop probing
		// once the wasted fraction drops below 2%.
		if spec.WastedFraction(float64(c)*spec.CylinderBytes) < 0.02 {
			break
		}
	}
	return best, fits
}
