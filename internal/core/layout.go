// Package core implements the paper's primary contribution: the
// staggered striping placement discipline and its special cases,
// simple striping (stride k = M) and virtual data replication
// (stride k = D).
//
// An object X with degree of declustering M_X is stored so that
// fragment i of subobject s lives on physical disk
//
//	disk(s, i) = (p + s·k + i) mod D
//
// where p is the disk holding X_{0.0} and k is the system-wide stride
// (Table 2, Figures 4 and 5 of the paper).  The package provides the
// placement arithmetic, the storage allocator that tracks per-disk
// capacity, the data-skew analysis of §3.2.2, and text renderings of
// the paper's layout figures.
package core

import (
	"fmt"
)

// Layout describes a disk farm's striping configuration.
type Layout struct {
	D int // number of disk drives in the system
	K int // stride: distance between X_{s.0} and X_{s+1.0}
}

// NewLayout validates and returns a layout.  The stride may range
// from 1 to D (§3.2.2); values outside are rejected rather than
// silently reduced modulo D.
func NewLayout(d, k int) (Layout, error) {
	if d <= 0 {
		return Layout{}, fmt.Errorf("core: system must have at least one disk, got %d", d)
	}
	if k < 1 || k > d {
		return Layout{}, fmt.Errorf("core: stride %d out of range [1, %d]", k, d)
	}
	return Layout{D: d, K: k}, nil
}

// SimpleStriping returns the layout implementing simple striping for
// degree-of-declustering m: stride k = m (§3.2).  D must be a
// multiple of m so that clusters tile the farm.
func SimpleStriping(d, m int) (Layout, error) {
	if m <= 0 || d%m != 0 {
		return Layout{}, fmt.Errorf("core: simple striping needs D (%d) to be a multiple of M (%d)", d, m)
	}
	return NewLayout(d, m)
}

// VirtualReplication returns the layout implementing virtual data
// replication: stride k = D keeps every subobject of an object on the
// same M disks (§3.2, footnote 4).
func VirtualReplication(d int) (Layout, error) {
	return NewLayout(d, d)
}

// Clusters returns R = D/M, the number of physical disk clusters for
// degree m, valid when D is a multiple of m.
func (l Layout) Clusters(m int) int { return l.D / m }

// Disk returns the physical disk holding fragment frag of subobject
// sub for an object whose first fragment is on disk first.
func (l Layout) Disk(first, sub, frag int) int {
	// All quantities may be large; Go's % keeps sign for non-negative
	// operands, which these are.
	return (first + sub*l.K + frag) % l.D
}

// StartDisk returns the disk holding the first fragment of subobject
// sub.
func (l Layout) StartDisk(first, sub int) int { return l.Disk(first, sub, 0) }

// Span returns the m physical disks occupied by subobject sub, in
// fragment order.
func (l Layout) Span(first, sub, m int) []int {
	disks := make([]int, m)
	for i := range disks {
		disks[i] = l.Disk(first, sub, i)
	}
	return disks
}

// Placement records where one object lives on the farm.
type Placement struct {
	Layout Layout
	First  int // disk of X_{0.0}
	M      int // degree of declustering
	N      int // number of subobjects
}

// NewPlacement validates and returns a placement.
func NewPlacement(l Layout, first, m, n int) (Placement, error) {
	switch {
	case first < 0 || first >= l.D:
		return Placement{}, fmt.Errorf("core: first disk %d out of range [0, %d)", first, l.D)
	case m < 1 || m > l.D:
		return Placement{}, fmt.Errorf("core: degree %d out of range [1, %d]", m, l.D)
	case n < 1:
		return Placement{}, fmt.Errorf("core: need at least one subobject, got %d", n)
	}
	return Placement{Layout: l, First: first, M: m, N: n}, nil
}

// Disk returns the physical disk holding fragment frag of subobject
// sub.
func (p Placement) Disk(sub, frag int) int {
	if sub < 0 || sub >= p.N {
		panic(fmt.Sprintf("core: subobject %d out of range [0, %d)", sub, p.N))
	}
	if frag < 0 || frag >= p.M {
		panic(fmt.Sprintf("core: fragment %d out of range [0, %d)", frag, p.M))
	}
	return p.Layout.Disk(p.First, sub, frag)
}

// FragmentsPerDisk returns, for each physical disk, the number of
// fragments of this object stored on it.  This is the object's exact
// storage footprint, used by the allocator and by the skew analysis.
func (p Placement) FragmentsPerDisk() []int {
	counts := make([]int, p.Layout.D)
	// Each subobject contributes one fragment to each of M consecutive
	// disks starting at (First + s·K) mod D.  Accumulate with a
	// difference array over the ring for O(N + D) instead of O(N·M).
	diff := make([]int, p.Layout.D+1)
	for s := 0; s < p.N; s++ {
		start := (p.First + s*p.Layout.K) % p.Layout.D
		end := start + p.M
		if end <= p.Layout.D {
			diff[start]++
			diff[end]--
		} else {
			diff[start]++
			diff[p.Layout.D]--
			diff[0]++
			diff[end-p.Layout.D]--
		}
	}
	run := 0
	for d := 0; d < p.Layout.D; d++ {
		run += diff[d]
		counts[d] = run
	}
	return counts
}

// UniqueDisks returns the number of distinct physical disks that hold
// at least one fragment of the object.  §3.2.2's example: D = 100,
// M_X = 4, k = 1, a 100-cylinder object (25 subobjects) spreads over
// 28 disks.
func (p Placement) UniqueDisks() int {
	n := 0
	for _, c := range p.FragmentsPerDisk() {
		if c > 0 {
			n++
		}
	}
	return n
}

// TotalFragments returns N × M.
func (p Placement) TotalFragments() int { return p.N * p.M }

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// SkewFree reports whether the layout guarantees no data skew for
// arbitrarily large objects: §3.2.2 requires the subobject start disks
// to visit every disk, which holds exactly when gcd(D, k) = 1 — or,
// for clustered placements, when objects are aligned and sized in
// multiples of the GCD.  A stride of 1 always qualifies.
func (l Layout) SkewFree() bool { return gcd(l.D, l.K) == 1 }

// StartDiskOrbit returns the number of distinct disks that can hold a
// subobject's first fragment for a fixed object start: D / gcd(D, k).
// With k = D the orbit is 1 (virtual data replication pins the object
// to one cluster); with gcd = 1 the orbit is all of D.
func (l Layout) StartDiskOrbit() int { return l.D / gcd(l.D, l.K) }

// SkewRatio returns max/min fragments per disk over the disks the
// object touches, a measure of storage imbalance.  1.0 is perfectly
// balanced.
func (p Placement) SkewRatio() float64 {
	min, max := -1, 0
	for _, c := range p.FragmentsPerDisk() {
		if c == 0 {
			continue
		}
		if min < 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min <= 0 {
		return 0
	}
	return float64(max) / float64(min)
}
