package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustLayout(t testing.TB, d, k int) Layout {
	t.Helper()
	l, err := NewLayout(d, k)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustPlacement(t testing.TB, l Layout, first, m, n int) Placement {
	t.Helper()
	p, err := NewPlacement(l, first, m, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(0, 1); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := NewLayout(10, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewLayout(10, 11); err == nil {
		t.Error("k>D accepted")
	}
	if _, err := NewLayout(10, 10); err != nil {
		t.Errorf("k=D rejected: %v", err)
	}
}

func TestSimpleStripingConstructor(t *testing.T) {
	l, err := SimpleStriping(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.K != 3 || l.Clusters(3) != 3 {
		t.Fatalf("simple striping 9/3 gave %+v", l)
	}
	if _, err := SimpleStriping(10, 3); err == nil {
		t.Error("non-divisible D/M accepted")
	}
	if _, err := SimpleStriping(10, 0); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestVirtualReplicationConstructor(t *testing.T) {
	l, err := VirtualReplication(10)
	if err != nil {
		t.Fatal(err)
	}
	if l.K != 10 {
		t.Fatalf("virtual replication stride = %d, want D", l.K)
	}
	if l.StartDiskOrbit() != 1 {
		t.Fatal("k=D must pin all subobjects to one start disk")
	}
}

// TestFigure1Placement checks the simple-striping layout of Figure 1:
// 9 disks, M_X = 3, X_0 on cluster 0 (disks 0–2), X_1 on cluster 1
// (disks 3–5), X_2 on cluster 2 (disks 6–8), X_3 wraps to cluster 0.
func TestFigure1Placement(t *testing.T) {
	l := mustLayout(t, 9, 3)
	p := mustPlacement(t, l, 0, 3, 100)
	cases := []struct{ sub, frag, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2},
		{1, 0, 3}, {1, 1, 4}, {1, 2, 5},
		{2, 0, 6}, {2, 2, 8},
		{3, 0, 0}, // wraps around
	}
	for _, c := range cases {
		if got := p.Disk(c.sub, c.frag); got != c.want {
			t.Errorf("X%d.%d on disk %d, want %d", c.sub, c.frag, got, c.want)
		}
	}
}

// TestFigure5Placement checks the exact cell assignments of Figure 5:
// 12 disks, stride 1, Y (M=4) from disk 0, X (M=3) from disk 4,
// Z (M=2) from disk 7.
func TestFigure5Placement(t *testing.T) {
	objs, err := Figure5Placements(13)
	if err != nil {
		t.Fatal(err)
	}
	y, x, z := objs[0].P, objs[1].P, objs[2].P

	// Row 0 of the figure.
	for i := 0; i < 4; i++ {
		if got := y.Disk(0, i); got != i {
			t.Errorf("Y0.%d on disk %d, want %d", i, got, i)
		}
	}
	for i := 0; i < 3; i++ {
		if got := x.Disk(0, i); got != 4+i {
			t.Errorf("X0.%d on disk %d, want %d", i, got, 4+i)
		}
	}
	for i := 0; i < 2; i++ {
		if got := z.Disk(0, i); got != 7+i {
			t.Errorf("Z0.%d on disk %d, want %d", i, got, 7+i)
		}
	}
	// Wrap-around cells visible in the figure.
	if got := z.Disk(4, 1); got != 0 { // Z4.1 on disk 0
		t.Errorf("Z4.1 on disk %d, want 0", got)
	}
	if got := z.Disk(5, 0); got != 0 { // Z5.0 on disk 0
		t.Errorf("Z5.0 on disk %d, want 0", got)
	}
	if got := x.Disk(8, 0); got != 0 { // X8.0 on disk 0
		t.Errorf("X8.0 on disk %d, want 0", got)
	}
	if got := y.Disk(12, 0); got != 0 { // Y12.0 on disk 0
		t.Errorf("Y12.0 on disk %d, want 0", got)
	}
	if got := y.Disk(9, 3); got != 0 { // Y9.3 on disk 0
		t.Errorf("Y9.3 on disk %d, want 0", got)
	}
}

// TestSection322UniqueDisks reproduces §3.2.2: "assume D=100 and an
// object X consist of 100 cylinders (M_X = 4).  With k = M_X, X is
// spread across all the D disk drives.  However, with k = 1, X is
// spread across 28 disk drives."  100 cylinders at one cylinder per
// fragment and M=4 is 25 subobjects.
func TestSection322UniqueDisks(t *testing.T) {
	const n = 25 // 100 fragments / M=4
	k1 := mustPlacement(t, mustLayout(t, 100, 1), 0, 4, n)
	if got := k1.UniqueDisks(); got != 28 {
		t.Errorf("k=1 unique disks = %d, want 28", got)
	}
	k4 := mustPlacement(t, mustLayout(t, 100, 4), 0, 4, n)
	if got := k4.UniqueDisks(); got != 100 {
		t.Errorf("k=M unique disks = %d, want 100 (all)", got)
	}
}

// TestSection322Extremes checks the k=1 vs k=D discussion: with k=D
// all subobjects land on the same M disks; with k=1 a long object
// visits all D disks.
func TestSection322Extremes(t *testing.T) {
	d := 10
	pD := mustPlacement(t, mustLayout(t, d, d), 0, 4, 500)
	if got := pD.UniqueDisks(); got != 4 {
		t.Errorf("k=D unique disks = %d, want M=4", got)
	}
	p1 := mustPlacement(t, mustLayout(t, d, 1), 0, 4, 500)
	if got := p1.UniqueDisks(); got != d {
		t.Errorf("k=1 unique disks = %d, want D=%d", got, d)
	}
}

func TestSkewFree(t *testing.T) {
	cases := []struct {
		d, k int
		want bool
	}{
		{10, 1, true},   // stride 1 always skew-free
		{10, 3, true},   // relatively prime
		{10, 5, false},  // gcd 5
		{10, 10, false}, // virtual replication maximally skewed
		{1000, 5, false},
		{7, 7, false},
	}
	for _, c := range cases {
		l := mustLayout(t, c.d, c.k)
		if got := l.SkewFree(); got != c.want {
			t.Errorf("SkewFree(D=%d, k=%d) = %v, want %v", c.d, c.k, got, c.want)
		}
	}
}

func TestStartDiskOrbit(t *testing.T) {
	if got := mustLayout(t, 1000, 5).StartDiskOrbit(); got != 200 {
		t.Errorf("orbit(1000,5) = %d, want 200", got)
	}
	if got := mustLayout(t, 10, 3).StartDiskOrbit(); got != 10 {
		t.Errorf("orbit(10,3) = %d, want 10", got)
	}
}

// Property: the difference-array footprint equals brute-force
// counting for arbitrary placements.
func TestFragmentsPerDiskMatchesBruteForce(t *testing.T) {
	err := quick.Check(func(dRaw, kRaw, firstRaw, mRaw, nRaw uint8) bool {
		d := int(dRaw%30) + 1
		k := int(kRaw)%d + 1
		m := int(mRaw)%d + 1
		n := int(nRaw%50) + 1
		first := int(firstRaw) % d
		l := Layout{D: d, K: k}
		p, err := NewPlacement(l, first, m, n)
		if err != nil {
			return false
		}
		want := make([]int, d)
		for s := 0; s < n; s++ {
			for i := 0; i < m; i++ {
				want[p.Disk(s, i)]++
			}
		}
		got := p.FragmentsPerDisk()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: total footprint equals N·M regardless of layout.
func TestFootprintConservation(t *testing.T) {
	err := quick.Check(func(dRaw, kRaw, mRaw, nRaw uint8) bool {
		d := int(dRaw%64) + 1
		k := int(kRaw)%d + 1
		m := int(mRaw)%d + 1
		n := int(nRaw) + 1
		p, err := NewPlacement(Layout{D: d, K: k}, 0, m, n)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range p.FragmentsPerDisk() {
			total += c
		}
		return total == p.TotalFragments()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: gcd(D,k)=1 implies storage balance within one fragment for
// long objects — the §3.2.2 skew guarantee.
func TestCoprimeStrideBalanced(t *testing.T) {
	err := quick.Check(func(dRaw, kRaw uint8) bool {
		d := int(dRaw%40) + 2
		k := int(kRaw)%d + 1
		if gcd(d, k) != 1 {
			return true // only the coprime guarantee is claimed
		}
		// Whole number of orbits: n = 3·D subobjects.
		p, err := NewPlacement(Layout{D: d, K: k}, 1%d, 2, 3*d)
		if err != nil {
			return false
		}
		counts := p.FragmentsPerDisk()
		for _, c := range counts {
			if c != counts[0] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: with k=D (virtual replication) every disk outside the
// cluster holds nothing.
func TestVirtualReplicationFootprint(t *testing.T) {
	p := mustPlacement(t, mustLayout(t, 20, 20), 3, 4, 123)
	counts := p.FragmentsPerDisk()
	for d, c := range counts {
		inCluster := d >= 3 && d < 7
		if inCluster && c != 123 {
			t.Errorf("disk %d holds %d fragments, want 123", d, c)
		}
		if !inCluster && c != 0 {
			t.Errorf("disk %d outside cluster holds %d fragments", d, c)
		}
	}
	if p.SkewRatio() != 1.0 {
		t.Errorf("within-cluster skew = %v, want 1", p.SkewRatio())
	}
}

func TestPlacementValidation(t *testing.T) {
	l := mustLayout(t, 10, 1)
	if _, err := NewPlacement(l, -1, 2, 5); err == nil {
		t.Error("negative first disk accepted")
	}
	if _, err := NewPlacement(l, 10, 2, 5); err == nil {
		t.Error("first disk = D accepted")
	}
	if _, err := NewPlacement(l, 0, 0, 5); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := NewPlacement(l, 0, 11, 5); err == nil {
		t.Error("M>D accepted")
	}
	if _, err := NewPlacement(l, 0, 2, 0); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestDiskPanicsOutOfRange(t *testing.T) {
	p := mustPlacement(t, mustLayout(t, 10, 1), 0, 2, 5)
	for _, fn := range []func(){
		func() { p.Disk(-1, 0) },
		func() { p.Disk(5, 0) },
		func() { p.Disk(0, -1) },
		func() { p.Disk(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range Disk access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSpan(t *testing.T) {
	l := mustLayout(t, 12, 1)
	got := l.Span(10, 1, 4)
	want := []int{11, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Span = %v, want %v", got, want)
		}
	}
}

func TestGridCollisionDetection(t *testing.T) {
	l := mustLayout(t, 6, 1)
	a := mustPlacement(t, l, 0, 3, 2)
	b := mustPlacement(t, l, 2, 3, 2) // overlaps a at subobject 0, disk 2
	if _, err := Grid(6, 2, []NamedPlacement{{"A", a}, {"B", b}}); err == nil {
		t.Fatal("overlapping placements not detected")
	}
}

func TestFigureRenderings(t *testing.T) {
	f1, err := Figure1(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "X0.0") || !strings.Contains(f1, "X3.0") {
		t.Errorf("Figure 1 rendering missing cells:\n%s", f1)
	}
	f4, err := Figure4(8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4, "X7.0") {
		t.Errorf("Figure 4 rendering missing cells:\n%s", f4)
	}
	f5, err := Figure5(13)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"Y0.0", "X0.0", "Z0.0", "Y12.0", "Z5.1"} {
		if !strings.Contains(f5, cell) {
			t.Errorf("Figure 5 rendering missing %s:\n%s", cell, f5)
		}
	}
}

func BenchmarkFragmentsPerDisk(b *testing.B) {
	p := mustPlacement(b, mustLayout(b, 1000, 5), 0, 5, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.FragmentsPerDisk()
	}
}

func BenchmarkDiskMapping(b *testing.B) {
	p := mustPlacement(b, mustLayout(b, 1000, 5), 0, 5, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Disk(i%3000, i%5)
	}
}
