package core

import (
	"fmt"
	"math/bits"
)

// Store is the storage allocator for a staggered-striped disk farm.
// It tracks per-disk occupancy in fragments, chooses start disks for
// newly materialized objects, and releases space on eviction.
// Residency is a dense slice indexed by object id (ids are small
// non-negative integers), so the Resident/Placement probes on the
// schedulers' per-interval admission path are array lookups.
type Store struct {
	layout   Layout
	capacity int // fragments per disk
	used     []int32
	free     int // total free fragments across the farm
	placed   []placedRec // indexed by object id; valid iff resident bit set
	resident []uint64    // bitset, one bit per object id
	ids      int         // logical table length: max id seen + 1
	count    int         // number of placed objects
	cursor   int         // round-robin start hint

	// diff is the reusable difference-array scratch for footprint
	// walks; fits and apply run once per Place probe, so at large D
	// they must not allocate or touch disks outside the footprint.
	diff []int32
}

// placedRec is the packed per-object placement record.  First/M/N are
// bounded by D (at most a few hundred thousand disks at the largest
// sweep factor), so int32 fields shrink the table from 40 to 12 bytes
// per object; the Layout is shared Store-wide and reattached when the
// public Placement is reconstructed.
type placedRec struct {
	first, m, n int32
}

// NewStore returns a Store for the layout with the given per-disk
// capacity in fragments.
func NewStore(l Layout, capacityFragments int) (*Store, error) {
	if capacityFragments <= 0 {
		return nil, fmt.Errorf("core: per-disk capacity %d must be positive", capacityFragments)
	}
	return &Store{
		layout:   l,
		capacity: capacityFragments,
		used:     make([]int32, l.D),
		free:     l.D * capacityFragments,
	}, nil
}

// Reserve pre-sizes the placement and residency tables to hold n
// object ids without reallocating.  Preload loops that place objects
// in popularity (non-ascending id) order should call this once so the
// tables are built in a single allocation.
func (s *Store) Reserve(n int) {
	if n <= len(s.placed) {
		return
	}
	nextP := make([]placedRec, n)
	copy(nextP, s.placed)
	s.placed = nextP
	nextR := make([]uint64, (n+63)/64)
	copy(nextR, s.resident)
	s.resident = nextR
}

// ensure extends the residency index to cover id with amortized
// (capacity-doubling) growth, so out-of-order placement is O(n) total
// rather than quadratic in reallocation traffic.
func (s *Store) ensure(id int) {
	if id < s.ids {
		return
	}
	if id >= len(s.placed) {
		n := len(s.placed) * 2
		if n < id+1 {
			n = id + 1
		}
		if n < 64 {
			n = 64
		}
		nextP := make([]placedRec, n)
		copy(nextP, s.placed)
		s.placed = nextP
		nextR := make([]uint64, (n+63)/64)
		copy(nextR, s.resident)
		s.resident = nextR
	}
	s.ids = id + 1
}

// Layout returns the store's layout.
func (s *Store) Layout() Layout { return s.layout }

// CapacityFragments returns the per-disk capacity.
func (s *Store) CapacityFragments() int { return s.capacity }

// Resident reports whether the object id is placed.
func (s *Store) Resident(id int) bool {
	return id >= 0 && id < s.ids && s.resident[id>>6]&(1<<uint(id&63)) != 0
}

// Placement returns the placement of object id.
func (s *Store) Placement(id int) (Placement, bool) {
	if !s.Resident(id) {
		return Placement{}, false
	}
	r := s.placed[id]
	return Placement{Layout: s.layout, First: int(r.first), M: int(r.m), N: int(r.n)}, true
}

// FirstDisk returns the start disk of object id's placement.  The
// admission scans only need the anchor disk (degree and length come
// from the configuration), so this avoids reconstructing the full
// Placement on the per-request hot path.
func (s *Store) FirstDisk(id int) (int, bool) {
	if !s.Resident(id) {
		return 0, false
	}
	return int(s.placed[id].first), true
}

// ResidentCount returns the number of placed objects.
func (s *Store) ResidentCount() int { return s.count }

// ResidentIDs returns the ids of all placed objects in ascending order.
func (s *Store) ResidentIDs() []int {
	ids := make([]int, 0, s.count)
	for w, word := range s.resident {
		for word != 0 {
			id := w*64 + bits.TrailingZeros64(word)
			if id >= s.ids {
				break
			}
			ids = append(ids, id)
			word &= word - 1
		}
	}
	return ids
}

// Used returns the number of fragments stored on disk d.
func (s *Store) Used(d int) int { return int(s.used[d]) }

// FreeFragments returns the total free fragments across the farm.
func (s *Store) FreeFragments() int { return s.free }

// footprint walks the placement's storage footprint, calling
// fn(disk, fragments) for every disk the object touches, and stops
// early when fn returns false.  Subobject s occupies disks
// (First + s·K .. + M−1) mod D, so the whole footprint lies in a
// window of (N−1)·K + M consecutive ring positions starting at First;
// the walk accumulates a difference array over that window (capped at
// D) in reusable scratch, visiting O(window) disks instead of
// materializing an O(D) per-disk slice the way FragmentsPerDisk does.
func (s *Store) footprint(p Placement, fn func(d, c int) bool) bool {
	d, k := p.Layout.D, p.Layout.K
	w := (p.N-1)*k + p.M
	if w > d {
		w = d
	}
	if cap(s.diff) < w+1 {
		s.diff = make([]int32, w+1)
	}
	diff := s.diff[:w+1]
	for i := range diff {
		diff[i] = 0
	}
	for sub := 0; sub < p.N; sub++ {
		// Window coordinates: subobject sub starts at offset sub·K from
		// First.  When the window spans the whole ring the offsets wrap.
		start := sub * k
		if start >= w {
			start %= d
		}
		end := start + p.M
		if end <= w {
			diff[start]++
			diff[end]--
		} else {
			diff[start]++
			diff[w]--
			diff[0]++
			diff[end-w]--
		}
	}
	run := int32(0)
	for i := 0; i < w; i++ {
		run += diff[i]
		if run > 0 && !fn((p.First+i)%d, int(run)) {
			return false
		}
	}
	return true
}

// fits reports whether the placement's footprint fits in the free
// space of every disk it touches.
func (s *Store) fits(p Placement) bool {
	return s.footprint(p, func(d, c int) bool {
		return int(s.used[d])+c <= s.capacity
	})
}

// apply adds (sign=+1) or removes (sign=-1) the placement's footprint.
func (s *Store) apply(p Placement, sign int) {
	s.footprint(p, func(d, c int) bool {
		s.used[d] += int32(sign * c)
		s.free -= sign * c
		return true
	})
}

// PlaceAt places object id with degree m and n subobjects starting at
// a specific disk.  It fails if the object is already placed or does
// not fit.
func (s *Store) PlaceAt(id, first, m, n int) (Placement, error) {
	if s.Resident(id) {
		return Placement{}, fmt.Errorf("core: object %d already placed", id)
	}
	p, err := NewPlacement(s.layout, first, m, n)
	if err != nil {
		return Placement{}, err
	}
	if !s.fits(p) {
		return Placement{}, fmt.Errorf("core: object %d (%d fragments) does not fit starting at disk %d",
			id, p.TotalFragments(), first)
	}
	s.apply(p, +1)
	s.ensure(id)
	s.placed[id] = placedRec{first: int32(p.First), m: int32(p.M), n: int32(p.N)}
	s.resident[id>>6] |= 1 << uint(id&63)
	s.count++
	return p, nil
}

// Place places object id with degree m and n subobjects, choosing the
// start disk.  The paper assigns subobjects "starting with an
// available cluster"; we use a round-robin cursor advanced by the
// stride so that equal objects tile the farm, falling back to a scan
// of all start positions if the preferred one is full.
func (s *Store) Place(id, m, n int) (Placement, error) {
	if s.Resident(id) {
		return Placement{}, fmt.Errorf("core: object %d already placed", id)
	}
	if n*m > s.FreeFragments() {
		return Placement{}, fmt.Errorf("core: object %d needs %d fragments, only %d free",
			id, n*m, s.FreeFragments())
	}
	// Ring packing: the preferred start is just past the previous
	// object's footprint, keeping starts on the k-grid so that
	// same-geometry objects tile the farm evenly.
	advance := (n-1)*s.layout.K + m
	for try := 0; try < s.layout.D; try++ {
		first := (s.cursor + try*s.layout.K) % s.layout.D
		p, err := s.PlaceAt(id, first, m, n)
		if err == nil {
			s.cursor = (first + advance) % s.layout.D
			return p, nil
		}
	}
	// The k-grid is exhausted; scan every disk.
	for first := 0; first < s.layout.D; first++ {
		p, err := s.PlaceAt(id, first, m, n)
		if err == nil {
			s.cursor = (first + advance) % s.layout.D
			return p, nil
		}
	}
	return Placement{}, fmt.Errorf("core: no start disk can hold object %d (%d fragments)", id, n*m)
}

// Evict removes object id and frees its space.
func (s *Store) Evict(id int) error {
	if !s.Resident(id) {
		return fmt.Errorf("core: object %d not placed", id)
	}
	p, _ := s.Placement(id)
	s.apply(p, -1)
	s.placed[id] = placedRec{}
	s.resident[id>>6] &^= 1 << uint(id&63)
	s.count--
	return nil
}
