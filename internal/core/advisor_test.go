package core

import (
	"strings"
	"testing"

	"github.com/mmsim/staggered/internal/diskmodel"
)

func TestRecommendStrideTable3(t *testing.T) {
	// The paper's own evaluation: one media type, M=5, D=1000 → k=M.
	a, err := RecommendStride(1000, []int{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stride != 5 {
		t.Fatalf("stride = %d, want 5", a.Stride)
	}
	if !strings.Contains(a.Rationale, "simple striping") {
		t.Errorf("rationale: %s", a.Rationale)
	}
}

func TestRecommendStrideMixedMedia(t *testing.T) {
	// The Figure 5 mix: M = 2, 3, 4 → stride 1.
	a, err := RecommendStride(12, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stride != 1 {
		t.Fatalf("stride = %d, want 1", a.Stride)
	}
	// gcd(D, 1) = 1: skew-free by the §3.2.2 rule.
	l, err := NewLayout(12, a.Stride)
	if err != nil {
		t.Fatal(err)
	}
	if !l.SkewFree() {
		t.Error("recommended stride not skew-free")
	}
}

func TestRecommendStrideNonDividing(t *testing.T) {
	// Uniform degree that does not divide D → stride 1.
	a, err := RecommendStride(10, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stride != 1 {
		t.Fatalf("stride = %d, want 1", a.Stride)
	}
}

func TestRecommendStrideValidation(t *testing.T) {
	if _, err := RecommendStride(0, []int{1}); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := RecommendStride(10, nil); err == nil {
		t.Error("empty degrees accepted")
	}
	if _, err := RecommendStride(10, []int{11}); err == nil {
		t.Error("degree > D accepted")
	}
	if _, err := RecommendStride(10, []int{0}); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestRecommendFragmentCylinders(t *testing.T) {
	// §3.1's worked example: 30 clusters on the Sabre drive.  A 10 s
	// budget admits one-cylinder fragments (worst ~8.8 s) but not two
	// (~16 s).
	c, ok := RecommendFragmentCylinders(diskmodel.Sabre, 30, 10)
	if !ok || c != 1 {
		t.Fatalf("got %d,%v, want 1,true", c, ok)
	}
	// A 20 s budget admits two cylinders.
	c, ok = RecommendFragmentCylinders(diskmodel.Sabre, 30, 20)
	if !ok || c != 2 {
		t.Fatalf("got %d,%v, want 2,true", c, ok)
	}
	// An impossible budget still returns one cylinder, flagged.
	c, ok = RecommendFragmentCylinders(diskmodel.Sabre, 30, 0.001)
	if ok || c != 1 {
		t.Fatalf("got %d,%v, want 1,false", c, ok)
	}
	// With a single cluster there is no startup wait: the probe stops
	// at the diminishing-returns point instead.
	c, ok = RecommendFragmentCylinders(diskmodel.Sabre, 1, 10)
	if !ok || c < 2 {
		t.Fatalf("got %d,%v, want >=2,true", c, ok)
	}
}

func TestRecommendFragmentPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RecommendFragmentCylinders(diskmodel.Sabre, 0, 1) },
		func() { RecommendFragmentCylinders(diskmodel.Sabre, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input did not panic")
				}
			}()
			fn()
		}()
	}
}
