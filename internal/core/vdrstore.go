package core

import (
	"fmt"
	"sort"
)

// VDRStore is the storage allocator for the virtual data replication
// baseline [GS93]: the D disks are partitioned into R = D/M physical
// clusters, every object is declustered across the disks of exactly
// one cluster, and hot objects may be replicated onto additional
// clusters.  Within a cluster an object occupies n contiguous
// cylinders on each disk (n = number of subobjects).
type VDRStore struct {
	d         int
	m         int
	clusters  int
	capacity  int   // fragments (cylinders) per disk
	used      []int // per-cluster used cylinders per member disk
	replicas  map[int][]int
	onCluster [][]int // reverse index: cluster -> resident object ids
}

// NewVDRStore returns a VDRStore for d disks grouped into clusters of
// m, each disk holding capacityFragments fragments.
func NewVDRStore(d, m, capacityFragments int) (*VDRStore, error) {
	if m <= 0 || d <= 0 || d%m != 0 {
		return nil, fmt.Errorf("core: VDR needs D (%d) to be a positive multiple of M (%d)", d, m)
	}
	if capacityFragments <= 0 {
		return nil, fmt.Errorf("core: per-disk capacity %d must be positive", capacityFragments)
	}
	return &VDRStore{
		d:         d,
		m:         m,
		clusters:  d / m,
		capacity:  capacityFragments,
		used:      make([]int, d/m),
		replicas:  make(map[int][]int),
		onCluster: make([][]int, d/m),
	}, nil
}

// Clusters returns R, the number of clusters.
func (v *VDRStore) Clusters() int { return v.clusters }

// ClusterDisks returns the member disks of cluster c.
func (v *VDRStore) ClusterDisks(c int) []int {
	disks := make([]int, v.m)
	for i := range disks {
		disks[i] = c*v.m + i
	}
	return disks
}

// Replicas returns the clusters holding copies of object id, in
// placement order.  The caller must not mutate the result.
func (v *VDRStore) Replicas(id int) []int { return v.replicas[id] }

// Resident reports whether at least one replica of id exists.
func (v *VDRStore) Resident(id int) bool { return len(v.replicas[id]) > 0 }

// ResidentIDs returns the ids of all resident objects in ascending
// order.
func (v *VDRStore) ResidentIDs() []int {
	ids := make([]int, 0, len(v.replicas))
	for id, r := range v.replicas {
		if len(r) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// UniqueResident returns the number of distinct resident objects —
// the quantity the paper contrasts with striping: replication reduces
// it.
func (v *VDRStore) UniqueResident() int {
	n := 0
	for _, r := range v.replicas {
		if len(r) > 0 {
			n++
		}
	}
	return n
}

// ClusterFree returns the free cylinders per member disk of cluster c.
func (v *VDRStore) ClusterFree(c int) int { return v.capacity - v.used[c] }

// HasReplicaOn reports whether cluster c holds a replica of id.
func (v *VDRStore) HasReplicaOn(id, c int) bool {
	for _, rc := range v.replicas[id] {
		if rc == c {
			return true
		}
	}
	return false
}

// PlaceReplica stores a replica of object id (n subobjects) on
// cluster c.  Each member disk needs n free cylinders.
func (v *VDRStore) PlaceReplica(id, c, n int) error {
	if c < 0 || c >= v.clusters {
		return fmt.Errorf("core: cluster %d out of range [0, %d)", c, v.clusters)
	}
	if n <= 0 {
		return fmt.Errorf("core: replica needs at least one subobject, got %d", n)
	}
	if v.HasReplicaOn(id, c) {
		return fmt.Errorf("core: object %d already has a replica on cluster %d", id, c)
	}
	if v.used[c]+n > v.capacity {
		return fmt.Errorf("core: cluster %d has %d free cylinders, object %d needs %d",
			c, v.ClusterFree(c), id, n)
	}
	v.used[c] += n
	v.replicas[id] = append(v.replicas[id], c)
	v.onCluster[c] = append(v.onCluster[c], id)
	return nil
}

// ObjectsOn returns the ids of objects with a replica on cluster c,
// in placement order.  The caller must not mutate the result.
func (v *VDRStore) ObjectsOn(c int) []int { return v.onCluster[c] }

// EvictReplica removes the replica of id on cluster c, freeing n
// cylinders per member disk.
func (v *VDRStore) EvictReplica(id, c, n int) error {
	rs := v.replicas[id]
	for i, rc := range rs {
		if rc == c {
			v.replicas[id] = append(rs[:i], rs[i+1:]...)
			if len(v.replicas[id]) == 0 {
				delete(v.replicas, id)
			}
			v.used[c] -= n
			if v.used[c] < 0 {
				return fmt.Errorf("core: cluster %d usage went negative", c)
			}
			for j, oid := range v.onCluster[c] {
				if oid == id {
					v.onCluster[c] = append(v.onCluster[c][:j], v.onCluster[c][j+1:]...)
					break
				}
			}
			return nil
		}
	}
	return fmt.Errorf("core: object %d has no replica on cluster %d", id, c)
}

// FindFreeCluster returns a cluster with at least n free cylinders per
// disk and no replica of id, preferring the emptiest; ok is false when
// none exists.
func (v *VDRStore) FindFreeCluster(id, n int) (cluster int, ok bool) {
	best, bestFree := -1, -1
	for c := 0; c < v.clusters; c++ {
		free := v.ClusterFree(c)
		if free >= n && !v.HasReplicaOn(id, c) && free > bestFree {
			best, bestFree = c, free
		}
	}
	return best, best >= 0
}
