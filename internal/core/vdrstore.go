package core

import (
	"fmt"
	"sort"
)

// VDRStore is the storage allocator for the virtual data replication
// baseline [GS93]: the D disks are partitioned into R = D/M physical
// clusters, every object is declustered across the disks of exactly
// one cluster, and hot objects may be replicated onto additional
// clusters.  Within a cluster an object occupies n contiguous
// cylinders on each disk (n = number of subobjects).
//
// The replica table is a dense slice indexed by object id and both
// index directions (object -> clusters, cluster -> objects) are kept
// sorted ascending, so the scheduler's per-interval probes need
// neither map lookups nor per-call copies.
type VDRStore struct {
	d         int
	m         int
	clusters  int
	capacity  int     // fragments (cylinders) per disk
	used      []int   // per-cluster used cylinders per member disk
	replicas  [][]int // object id -> clusters holding a copy, sorted
	unique    int     // objects with at least one replica
	onCluster [][]int // reverse index: cluster -> resident object ids, sorted
}

// NewVDRStore returns a VDRStore for d disks grouped into clusters of
// m, each disk holding capacityFragments fragments.
func NewVDRStore(d, m, capacityFragments int) (*VDRStore, error) {
	if m <= 0 || d <= 0 || d%m != 0 {
		return nil, fmt.Errorf("core: VDR needs D (%d) to be a positive multiple of M (%d)", d, m)
	}
	if capacityFragments <= 0 {
		return nil, fmt.Errorf("core: per-disk capacity %d must be positive", capacityFragments)
	}
	return &VDRStore{
		d:         d,
		m:         m,
		clusters:  d / m,
		capacity:  capacityFragments,
		used:      make([]int, d/m),
		onCluster: make([][]int, d/m),
	}, nil
}

// grow extends the replica table to cover id with amortized
// (capacity-doubling) growth so out-of-order placement stays O(n).
func (v *VDRStore) grow(id int) {
	if id < len(v.replicas) {
		return
	}
	if id < cap(v.replicas) {
		v.replicas = v.replicas[:id+1]
		return
	}
	n := cap(v.replicas) * 2
	if n < id+1 {
		n = id + 1
	}
	if n < 64 {
		n = 64
	}
	next := make([][]int, id+1, n)
	copy(next, v.replicas)
	v.replicas = next
}

// replicasOf returns the (possibly nil) replica list of id without
// growing the table.
func (v *VDRStore) replicasOf(id int) []int {
	if id < 0 || id >= len(v.replicas) {
		return nil
	}
	return v.replicas[id]
}

// Clusters returns R, the number of clusters.
func (v *VDRStore) Clusters() int { return v.clusters }

// ClusterDisks returns the member disks of cluster c.
func (v *VDRStore) ClusterDisks(c int) []int {
	disks := make([]int, v.m)
	for i := range disks {
		disks[i] = c*v.m + i
	}
	return disks
}

// Replicas returns the clusters holding copies of object id, in
// ascending cluster order.  The caller must not mutate the result.
func (v *VDRStore) Replicas(id int) []int { return v.replicasOf(id) }

// Resident reports whether at least one replica of id exists.
func (v *VDRStore) Resident(id int) bool { return len(v.replicasOf(id)) > 0 }

// ResidentIDs returns the ids of all resident objects in ascending
// order.
func (v *VDRStore) ResidentIDs() []int {
	ids := make([]int, 0, v.unique)
	for id, r := range v.replicas {
		if len(r) > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// UniqueResident returns the number of distinct resident objects —
// the quantity the paper contrasts with striping: replication reduces
// it.
func (v *VDRStore) UniqueResident() int { return v.unique }

// ClusterFree returns the free cylinders per member disk of cluster c.
func (v *VDRStore) ClusterFree(c int) int { return v.capacity - v.used[c] }

// HasReplicaOn reports whether cluster c holds a replica of id.
func (v *VDRStore) HasReplicaOn(id, c int) bool {
	rs := v.replicasOf(id)
	i := sort.SearchInts(rs, c)
	return i < len(rs) && rs[i] == c
}

// insertSorted inserts x into the ascending slice s, keeping order.
func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// removeSorted removes x from the ascending slice s, keeping order.
// It reports whether x was present.
func removeSorted(s []int, x int) ([]int, bool) {
	i := sort.SearchInts(s, x)
	if i >= len(s) || s[i] != x {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

// PlaceReplica stores a replica of object id (n subobjects) on
// cluster c.  Each member disk needs n free cylinders.
func (v *VDRStore) PlaceReplica(id, c, n int) error {
	if c < 0 || c >= v.clusters {
		return fmt.Errorf("core: cluster %d out of range [0, %d)", c, v.clusters)
	}
	if n <= 0 {
		return fmt.Errorf("core: replica needs at least one subobject, got %d", n)
	}
	if v.HasReplicaOn(id, c) {
		return fmt.Errorf("core: object %d already has a replica on cluster %d", id, c)
	}
	if v.used[c]+n > v.capacity {
		return fmt.Errorf("core: cluster %d has %d free cylinders, object %d needs %d",
			c, v.ClusterFree(c), id, n)
	}
	v.used[c] += n
	v.grow(id)
	if len(v.replicas[id]) == 0 {
		v.unique++
	}
	v.replicas[id] = insertSorted(v.replicas[id], c)
	v.onCluster[c] = insertSorted(v.onCluster[c], id)
	return nil
}

// ObjectsOn returns the ids of objects with a replica on cluster c,
// in ascending id order.  The caller must not mutate the result.
func (v *VDRStore) ObjectsOn(c int) []int { return v.onCluster[c] }

// EvictReplica removes the replica of id on cluster c, freeing n
// cylinders per member disk.
func (v *VDRStore) EvictReplica(id, c, n int) error {
	rs, found := removeSorted(v.replicasOf(id), c)
	if !found {
		return fmt.Errorf("core: object %d has no replica on cluster %d", id, c)
	}
	v.replicas[id] = rs
	if len(rs) == 0 {
		v.unique--
	}
	v.used[c] -= n
	if v.used[c] < 0 {
		return fmt.Errorf("core: cluster %d usage went negative", c)
	}
	v.onCluster[c], _ = removeSorted(v.onCluster[c], id)
	return nil
}

// FindFreeCluster returns a cluster with at least n free cylinders per
// disk and no replica of id, preferring the emptiest; ok is false when
// none exists.
func (v *VDRStore) FindFreeCluster(id, n int) (cluster int, ok bool) {
	best, bestFree := -1, -1
	for c := 0; c < v.clusters; c++ {
		free := v.ClusterFree(c)
		if free >= n && !v.HasReplicaOn(id, c) && free > bestFree {
			best, bestFree = c, free
		}
	}
	return best, best >= 0
}
