package core

import (
	"strings"
	"testing"
)

// Golden renderings: the exact text of the paper's layout figures,
// compared with per-line trailing whitespace trimmed.  These lock the
// presentation so a refactor of Grid/RenderGrid cannot silently change
// what cmd/layout prints.

// trimLines removes trailing spaces from every line.
func trimLines(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " ")
	}
	return strings.Join(lines, "\n")
}

const figure1Golden = `Disk            0    1    2    3    4    5    6    7    8
Subobject 0  X0.0 X0.1 X0.2
Subobject 1                 X1.0 X1.1 X1.2
Subobject 2                                X2.0 X2.1 X2.2
Subobject 3  X3.0 X3.1 X3.2
`

func TestFigure1Golden(t *testing.T) {
	got, err := Figure1(4)
	if err != nil {
		t.Fatal(err)
	}
	if trimLines(got) != figure1Golden {
		t.Errorf("Figure 1 drifted.\ngot:\n%s\nwant:\n%s", got, figure1Golden)
	}
}

const figure4Golden = `Disk            0    1    2    3    4    5    6    7
Subobject 0  X0.0 X0.1 X0.2 X0.3
Subobject 1       X1.0 X1.1 X1.2 X1.3
Subobject 2            X2.0 X2.1 X2.2 X2.3
Subobject 3                 X3.0 X3.1 X3.2 X3.3
Subobject 4                      X4.0 X4.1 X4.2 X4.3
Subobject 5  X5.3                     X5.0 X5.1 X5.2
`

func TestFigure4Golden(t *testing.T) {
	got, err := Figure4(6)
	if err != nil {
		t.Fatal(err)
	}
	if trimLines(got) != figure4Golden {
		t.Errorf("Figure 4 drifted.\ngot:\n%s\nwant:\n%s", got, figure4Golden)
	}
}

// TestFigure5FirstRowsGolden locks the first rows of the Figure 5
// grid against the paper's published cells.
func TestFigure5FirstRowsGolden(t *testing.T) {
	got, err := Figure5(5)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(got, "\n")
	wantRows := []string{
		"Subobject 0  Y0.0 Y0.1 Y0.2 Y0.3 X0.0 X0.1 X0.2 Z0.0 Z0.1",
		"Subobject 1       Y1.0 Y1.1 Y1.2 Y1.3 X1.0 X1.1 X1.2 Z1.0 Z1.1",
		"Subobject 4  Z4.1                Y4.0 Y4.1 Y4.2 Y4.3 X4.0 X4.1 X4.2 Z4.0",
	}
	for _, want := range wantRows {
		found := false
		for _, line := range lines {
			if strings.HasPrefix(strings.TrimRight(line, " "), strings.TrimRight(want, " ")) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Figure 5 missing row %q in:\n%s", want, got)
		}
	}
}
