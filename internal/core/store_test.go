package core

import (
	"testing"
	"testing/quick"
)

func mustStore(t testing.TB, l Layout, cap int) *Store {
	t.Helper()
	s, err := NewStore(l, cap)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreValidation(t *testing.T) {
	l := mustLayout(t, 10, 1)
	if _, err := NewStore(l, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestStorePlaceEvictRoundTrip(t *testing.T) {
	s := mustStore(t, mustLayout(t, 10, 1), 100)
	p, err := s.Place(1, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Resident(1) || s.ResidentCount() != 1 {
		t.Fatal("object not resident after Place")
	}
	got, ok := s.Placement(1)
	if !ok || got != p {
		t.Fatal("Placement lookup mismatch")
	}
	free := s.FreeFragments()
	if want := 10*100 - 60; free != want {
		t.Fatalf("free fragments = %d, want %d", free, want)
	}
	if err := s.Evict(1); err != nil {
		t.Fatal(err)
	}
	if s.Resident(1) || s.FreeFragments() != 1000 {
		t.Fatal("eviction did not free space")
	}
	if err := s.Evict(1); err == nil {
		t.Fatal("double evict succeeded")
	}
}

func TestStoreRejectsDuplicate(t *testing.T) {
	s := mustStore(t, mustLayout(t, 10, 1), 100)
	if _, err := s.Place(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(1, 2, 5); err == nil {
		t.Fatal("duplicate placement accepted")
	}
	if _, err := s.PlaceAt(1, 0, 2, 5); err == nil {
		t.Fatal("duplicate PlaceAt accepted")
	}
}

func TestStoreCapacityEnforced(t *testing.T) {
	s := mustStore(t, mustLayout(t, 4, 1), 10)
	// Farm capacity = 40 fragments.  Place a 36-fragment object
	// (9 subobjects × M=4, perfectly balanced: 9 per disk).
	if _, err := s.Place(1, 4, 9); err != nil {
		t.Fatal(err)
	}
	// 4 fragments free (1 per disk); a 2-subobject M=4 object needs 2
	// on some disks.
	if _, err := s.Place(2, 4, 2); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
	// A 1-subobject M=4 object fits exactly.
	if _, err := s.Place(3, 4, 1); err != nil {
		t.Fatalf("exact-fit placement rejected: %v", err)
	}
	if s.FreeFragments() != 0 {
		t.Fatalf("free = %d, want 0", s.FreeFragments())
	}
}

// TestStoreTable3ExactFit reproduces the §4 configuration at reduced
// scale proportions: D=1000, k=5, M=5, capacity 3000 cylinders, and
// 200 objects of 3000 subobjects exactly fill the farm.
func TestStoreTable3ExactFit(t *testing.T) {
	s := mustStore(t, mustLayout(t, 1000, 5), 3000)
	for id := 0; id < 200; id++ {
		if _, err := s.Place(id, 5, 3000); err != nil {
			t.Fatalf("object %d did not fit: %v", id, err)
		}
	}
	if s.FreeFragments() != 0 {
		t.Fatalf("farm not exactly full: %d fragments free", s.FreeFragments())
	}
	if _, err := s.Place(200, 5, 3000); err == nil {
		t.Fatal("201st object accepted into a full farm")
	}
	// Evict one and the next fits again.
	if err := s.Evict(17); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(200, 5, 3000); err != nil {
		t.Fatalf("replacement placement failed: %v", err)
	}
}

func TestStoreResidentIDsSorted(t *testing.T) {
	s := mustStore(t, mustLayout(t, 10, 1), 1000)
	for _, id := range []int{5, 1, 9, 3} {
		if _, err := s.Place(id, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ResidentIDs()
	want := []int{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ResidentIDs = %v, want %v", got, want)
		}
	}
}

// Property: used counters never go negative and free space is
// conserved across arbitrary place/evict sequences.
func TestStoreConservation(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		s, err := NewStore(Layout{D: 8, K: 3}, 50)
		if err != nil {
			return false
		}
		placed := map[int]bool{}
		for _, op := range ops {
			id := int(op % 16)
			if placed[id] {
				if s.Evict(id) != nil {
					return false
				}
				placed[id] = false
			} else {
				if _, err := s.Place(id, int(op%3)+1, int(op%7)+1); err == nil {
					placed[id] = true
				}
			}
			total := 0
			for d := 0; d < 8; d++ {
				u := s.Used(d)
				if u < 0 || u > 50 {
					return false
				}
				total += 50 - u
			}
			if total != s.FreeFragments() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVDRStoreValidation(t *testing.T) {
	if _, err := NewVDRStore(10, 3, 100); err == nil {
		t.Error("non-divisible D/M accepted")
	}
	if _, err := NewVDRStore(10, 5, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestVDRStoreReplicaLifecycle(t *testing.T) {
	v, err := NewVDRStore(20, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Clusters() != 4 {
		t.Fatalf("clusters = %d, want 4", v.Clusters())
	}
	if err := v.PlaceReplica(7, 1, 60); err != nil {
		t.Fatal(err)
	}
	if !v.Resident(7) || !v.HasReplicaOn(7, 1) {
		t.Fatal("replica not recorded")
	}
	if err := v.PlaceReplica(7, 1, 10); err == nil {
		t.Fatal("duplicate replica on same cluster accepted")
	}
	if err := v.PlaceReplica(7, 2, 60); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Replicas(7)); got != 2 {
		t.Fatalf("replica count = %d, want 2", got)
	}
	if v.UniqueResident() != 1 {
		t.Fatal("unique resident count wrong")
	}
	if err := v.EvictReplica(7, 1, 60); err != nil {
		t.Fatal(err)
	}
	if v.HasReplicaOn(7, 1) || !v.Resident(7) {
		t.Fatal("wrong replica evicted")
	}
	if err := v.EvictReplica(7, 3, 60); err == nil {
		t.Fatal("evicting non-existent replica succeeded")
	}
	if err := v.EvictReplica(7, 2, 60); err != nil {
		t.Fatal(err)
	}
	if v.Resident(7) {
		t.Fatal("object still resident after last replica evicted")
	}
}

func TestVDRStoreCapacity(t *testing.T) {
	v, err := NewVDRStore(10, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.PlaceReplica(1, 0, 80); err != nil {
		t.Fatal(err)
	}
	if err := v.PlaceReplica(2, 0, 30); err == nil {
		t.Fatal("over-capacity replica accepted")
	}
	if err := v.PlaceReplica(2, 0, 20); err != nil {
		t.Fatalf("exact-fit replica rejected: %v", err)
	}
	if v.ClusterFree(0) != 0 {
		t.Fatalf("cluster free = %d, want 0", v.ClusterFree(0))
	}
}

func TestVDRStoreFindFreeCluster(t *testing.T) {
	v, err := NewVDRStore(15, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.PlaceReplica(1, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := v.PlaceReplica(2, 1, 50); err != nil {
		t.Fatal(err)
	}
	c, ok := v.FindFreeCluster(3, 80)
	if !ok || c != 2 {
		t.Fatalf("FindFreeCluster = %d,%v, want cluster 2", c, ok)
	}
	// Prefers emptiest: for a 40-cylinder object, cluster 2 (100 free)
	// beats cluster 1 (50 free).
	c, ok = v.FindFreeCluster(3, 40)
	if !ok || c != 2 {
		t.Fatalf("FindFreeCluster(40) = %d,%v, want cluster 2", c, ok)
	}
	// Excludes clusters already holding a replica of the object.
	c, ok = v.FindFreeCluster(2, 40)
	if !ok || c != 2 {
		t.Fatalf("FindFreeCluster must skip existing replica cluster: got %d,%v", c, ok)
	}
	// Nothing fits a 101-cylinder object.
	if _, ok := v.FindFreeCluster(9, 101); ok {
		t.Fatal("impossible fit reported")
	}
}

func TestVDRClusterDisks(t *testing.T) {
	v, err := NewVDRStore(15, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := v.ClusterDisks(2)
	want := []int{10, 11, 12, 13, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ClusterDisks(2) = %v, want %v", got, want)
		}
	}
}

// TestVDRTable3OneObjectPerCluster reproduces §4.1: "at most one
// object can be assigned to a cluster (the storage capacity of the
// cluster is exhausted by one object)".
func TestVDRTable3OneObjectPerCluster(t *testing.T) {
	v, err := NewVDRStore(1000, 5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 200; id++ {
		c, ok := v.FindFreeCluster(id, 3000)
		if !ok {
			t.Fatalf("no cluster for object %d", id)
		}
		if err := v.PlaceReplica(id, c, 3000); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := v.FindFreeCluster(200, 3000); ok {
		t.Fatal("201st object found space in a full farm")
	}
	if v.UniqueResident() != 200 {
		t.Fatalf("unique resident = %d, want 200", v.UniqueResident())
	}
}

func BenchmarkStorePlaceEvict(b *testing.B) {
	s := mustStore(b, mustLayout(b, 1000, 5), 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Place(i, 5, 3000); err != nil {
			// Farm full: evict the oldest id still resident.
			_ = s.Evict(i - 200)
			if _, err := s.Place(i, 5, 3000); err != nil {
				b.Fatal(err)
			}
		}
	}
}
