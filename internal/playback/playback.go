// Package playback implements §3.2.5 of the paper: rewind,
// fast-forward, and fast-forward-with-scan on a staggered-striped
// farm.
//
// Plain rewind and fast-forward (no images shown) reposition the
// display: either the disks currently serving the request rotate
// until they align with the target subobject, or — if the disks
// holding the target are idle — the display restarts there
// immediately.  Fast-forward WITH scan must display data while
// consuming it 16× faster than the layout delivers it, so each object
// carries a small fast-forward replica (roughly every sixteenth
// frame) laid out like any other object; scanning switches the
// display onto the replica and back, possibly paying a transfer
// initiation delay when the replica's disks are busy.
package playback

import (
	"fmt"

	"github.com/mmsim/staggered/internal/core"
)

// Mode is the playback state of a session.
type Mode int

const (
	// Playing displays the normal-speed object.
	Playing Mode = iota
	// Scanning displays the fast-forward replica.
	Scanning
	// Waiting is a repositioning stall (disks not yet aligned); the
	// viewer sees no data but, per the paper, no hiccup either since
	// nothing is being displayed.
	Waiting
	// Done means the display has completed.
	Done
)

func (m Mode) String() string {
	switch m {
	case Playing:
		return "playing"
	case Scanning:
		return "scanning"
	case Waiting:
		return "waiting"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultScanRatio is the paper's VHS-style example: "typical fast
// forward scans of VHS video display approximately every sixteenth
// frame".
const DefaultScanRatio = 16

// ReplicaSubobjects returns the length of the fast-forward replica of
// an n-subobject object at the given scan ratio.
func ReplicaSubobjects(n, ratio int) int {
	if n <= 0 || ratio <= 0 {
		panic("playback: non-positive n or ratio")
	}
	r := n / ratio
	if n%ratio != 0 {
		r++
	}
	if r < 1 {
		r = 1
	}
	return r
}

// ReplicaOverheadFraction returns the extra storage the fast-forward
// replicas cost: about 1/ratio of the database.
func ReplicaOverheadFraction(ratio int) float64 {
	if ratio <= 0 {
		panic("playback: non-positive ratio")
	}
	return 1 / float64(ratio)
}

// FreeFunc reports whether a physical disk is idle this interval; the
// scheduler owning the farm supplies it.
type FreeFunc func(disk int) bool

// Session is one viewer's playback over an object and its
// fast-forward replica.  The session is advanced one time interval at
// a time with Tick; mode changes take effect at the next interval
// boundary, as all scheduling in the paper does.
type Session struct {
	normal  core.Placement
	replica core.Placement
	ratio   int

	mode Mode
	pos  int // next normal-scale subobject to display
	rpos int // next replica subobject while scanning

	// wait bookkeeping
	waitLeft  int  // intervals until rotation alignment
	resumeTo  Mode // mode to enter when the wait ends
	switchLag int  // accumulated transfer-initiation delay intervals
	played    int  // normal subobjects displayed
	scanned   int  // replica subobjects displayed
}

// NewSession validates the object/replica pair and returns a session
// positioned at the start, Playing.
func NewSession(normal, replica core.Placement, ratio int) (*Session, error) {
	if ratio <= 0 {
		return nil, fmt.Errorf("playback: scan ratio must be positive, got %d", ratio)
	}
	if normal.Layout != replica.Layout {
		return nil, fmt.Errorf("playback: object and replica live on different layouts")
	}
	want := ReplicaSubobjects(normal.N, ratio)
	if replica.N < want {
		return nil, fmt.Errorf("playback: replica has %d subobjects, needs at least %d for ratio %d",
			replica.N, want, ratio)
	}
	return &Session{normal: normal, replica: replica, ratio: ratio}, nil
}

// Mode returns the session's current mode.
func (s *Session) Mode() Mode { return s.mode }

// Position returns the next normal-scale subobject to display.
func (s *Session) Position() int {
	if s.mode == Scanning {
		return s.rpos * s.ratio
	}
	return s.pos
}

// SwitchLag returns the total transfer-initiation delay in intervals
// incurred by mode switches and seeks so far.
func (s *Session) SwitchLag() int { return s.switchLag }

// Played and Scanned return the subobjects displayed in each mode.
func (s *Session) Played() int  { return s.played }
func (s *Session) Scanned() int { return s.scanned }

// alignmentWait returns the number of intervals until the disk set
// currently serving position from aligns with position to (both in
// the placement's subobject scale): the paper's "waiting for the set
// of disks servicing the request to advance to the appropriate
// position".  Both the serving set and the data advance k disks per
// interval, so the wait is the subobject distance modulo the start
// disk orbit.
func alignmentWait(p core.Placement, from, to int) int {
	orbit := p.Layout.StartDiskOrbit()
	return ((to-from)%orbit + orbit) % orbit
}

// spanFree reports whether the disks of subobject sub are all idle.
func spanFree(p core.Placement, sub int, free FreeFunc) bool {
	for i := 0; i < p.M; i++ {
		if !free(p.Layout.Disk(p.First, sub, i)) {
			return false
		}
	}
	return true
}

// Seek repositions the session to normal-scale subobject target.  If
// the target's disks are idle the display resumes there at the next
// interval; otherwise the session waits for rotational alignment.
// Seeking backward is rewind, forward is fast-forward without scan —
// the mechanics are identical (§3.2.5).
func (s *Session) Seek(target int, free FreeFunc) error {
	if s.mode == Done {
		return fmt.Errorf("playback: seek after completion")
	}
	if target < 0 || target >= s.normal.N {
		return fmt.Errorf("playback: seek target %d out of range [0, %d)", target, s.normal.N)
	}
	cur := s.Position()
	s.pos = target
	if spanFree(s.normal, target, free) {
		// Idle disks at the target: start immediately next interval.
		s.mode = Playing
		s.waitLeft = 0
		return nil
	}
	s.mode = Waiting
	s.resumeTo = Playing
	s.waitLeft = alignmentWait(s.normal, cur, target)
	if s.waitLeft == 0 {
		s.waitLeft = s.normal.Layout.StartDiskOrbit() // full rotation
	}
	return nil
}

// StartScan switches to fast-forward with scan: the display continues
// from the replica subobject covering the current position.  If the
// replica's disks are busy the switch costs a transfer-initiation
// delay (the paper: "the system may incur a transfer initiation delay
// when switching to the fast forward replica").
func (s *Session) StartScan(free FreeFunc) error {
	if s.mode == Done {
		return fmt.Errorf("playback: scan after completion")
	}
	if s.mode == Scanning {
		return nil
	}
	s.rpos = s.pos / s.ratio
	if s.rpos >= s.replica.N {
		s.rpos = s.replica.N - 1
	}
	if spanFree(s.replica, s.rpos, free) {
		s.mode = Scanning
		s.waitLeft = 0
		return nil
	}
	s.mode = Waiting
	s.resumeTo = Scanning
	s.waitLeft = alignmentWait(s.replica, s.rpos, s.rpos) // full orbit below
	if s.waitLeft == 0 {
		s.waitLeft = 1 // at least one interval to re-arbitrate
	}
	return nil
}

// StopScan returns to normal-speed play at the scan position, again
// possibly paying an initiation delay.  "Exact synchronous delivery
// is not expected when switching between normal speed delivery and
// fast forward scanning."
func (s *Session) StopScan(free FreeFunc) error {
	if s.mode != Scanning && !(s.mode == Waiting && s.resumeTo == Scanning) {
		return fmt.Errorf("playback: not scanning")
	}
	target := s.rpos * s.ratio
	if target >= s.normal.N {
		s.mode = Done
		return nil
	}
	return s.Seek(target, free)
}

// Tick advances one time interval.  It returns the subobject
// displayed this interval in normal scale, or -1 when nothing was
// shown (waiting or done).
func (s *Session) Tick(free FreeFunc) (int, error) {
	switch s.mode {
	case Done:
		return -1, fmt.Errorf("playback: tick after completion")
	case Waiting:
		s.switchLag++
		s.waitLeft--
		if s.waitLeft <= 0 {
			s.mode = s.resumeTo
		}
		return -1, nil
	case Playing:
		shown := s.pos
		s.pos++
		s.played++
		if s.pos >= s.normal.N {
			s.mode = Done
		}
		return shown, nil
	case Scanning:
		shown := s.rpos * s.ratio
		s.rpos++
		s.scanned++
		if s.rpos >= s.replica.N {
			s.mode = Done
		}
		return shown, nil
	default:
		return -1, fmt.Errorf("playback: invalid mode %v", s.mode)
	}
}
