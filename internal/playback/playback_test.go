package playback

import (
	"testing"
	"testing/quick"

	"github.com/mmsim/staggered/internal/core"
)

func allFree(int) bool { return true }
func allBusy(int) bool { return false }

func testPair(t testing.TB, d, k, n, ratio int) (*Session, core.Placement, core.Placement) {
	t.Helper()
	l, err := core.NewLayout(d, k)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := core.NewPlacement(l, 0, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := core.NewPlacement(l, d/2, 3, ReplicaSubobjects(n, ratio))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(normal, replica, ratio)
	if err != nil {
		t.Fatal(err)
	}
	return s, normal, replica
}

func TestReplicaSubobjects(t *testing.T) {
	cases := []struct{ n, ratio, want int }{
		{3000, 16, 188}, // Table 3 object with the VHS ratio
		{16, 16, 1},
		{17, 16, 2},
		{1, 16, 1},
		{100, 10, 10},
	}
	for _, c := range cases {
		if got := ReplicaSubobjects(c.n, c.ratio); got != c.want {
			t.Errorf("ReplicaSubobjects(%d, %d) = %d, want %d", c.n, c.ratio, got, c.want)
		}
	}
}

func TestReplicaOverhead(t *testing.T) {
	if got := ReplicaOverheadFraction(16); got != 1.0/16 {
		t.Fatalf("overhead = %v, want 1/16", got)
	}
}

func TestNewSessionValidation(t *testing.T) {
	l, _ := core.NewLayout(10, 1)
	normal, _ := core.NewPlacement(l, 0, 3, 100)
	shortRep, _ := core.NewPlacement(l, 5, 3, 2) // needs ceil(100/16)=7
	if _, err := NewSession(normal, shortRep, 16); err == nil {
		t.Error("undersized replica accepted")
	}
	rep, _ := core.NewPlacement(l, 5, 3, 7)
	if _, err := NewSession(normal, rep, 0); err == nil {
		t.Error("zero ratio accepted")
	}
	other, _ := core.NewLayout(12, 1)
	repOther, _ := core.NewPlacement(other, 5, 3, 7)
	if _, err := NewSession(normal, repOther, 16); err == nil {
		t.Error("mismatched layouts accepted")
	}
}

func TestNormalPlaythrough(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 32, 16)
	for i := 0; i < 32; i++ {
		shown, err := s.Tick(allFree)
		if err != nil {
			t.Fatal(err)
		}
		if shown != i {
			t.Fatalf("interval %d showed subobject %d", i, shown)
		}
	}
	if s.Mode() != Done || s.Played() != 32 {
		t.Fatalf("mode %v, played %d", s.Mode(), s.Played())
	}
	if _, err := s.Tick(allFree); err == nil {
		t.Fatal("tick after completion succeeded")
	}
}

// TestScanIsRatioTimesFaster checks the §3.2.5 core property: fast
// forward with scan covers the object about ratio× faster, displaying
// roughly every ratio-th frame.
func TestScanIsRatioTimesFaster(t *testing.T) {
	const n, ratio = 160, 16
	s, _, _ := testPair(t, 20, 1, n, ratio)
	if err := s.StartScan(allFree); err != nil {
		t.Fatal(err)
	}
	var shownSubobjects []int
	for s.Mode() != Done {
		shown, err := s.Tick(allFree)
		if err != nil {
			t.Fatal(err)
		}
		if shown >= 0 {
			shownSubobjects = append(shownSubobjects, shown)
		}
	}
	if len(shownSubobjects) != n/ratio {
		t.Fatalf("scan displayed %d subobjects, want %d", len(shownSubobjects), n/ratio)
	}
	for i, sub := range shownSubobjects {
		if sub != i*ratio {
			t.Fatalf("scan frame %d shows subobject %d, want %d", i, sub, i*ratio)
		}
	}
}

func TestScanAndResume(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 320, 16)
	// Play 10 subobjects.
	for i := 0; i < 10; i++ {
		if _, err := s.Tick(allFree); err != nil {
			t.Fatal(err)
		}
	}
	// Scan for 5 replica subobjects (covers 80 normal ones).
	if err := s.StartScan(allFree); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Tick(allFree); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StopScan(allFree); err != nil {
		t.Fatal(err)
	}
	if s.Mode() != Playing {
		t.Fatalf("mode after StopScan = %v", s.Mode())
	}
	shown, err := s.Tick(allFree)
	if err != nil {
		t.Fatal(err)
	}
	// Started scanning at 10 -> replica position 0; five replica
	// frames advance to replica 5 = normal 80.
	if shown != 80 {
		t.Fatalf("resumed at subobject %d, want 80", shown)
	}
	if s.SwitchLag() != 0 {
		t.Fatalf("idle-disk switches cost %d intervals, want 0", s.SwitchLag())
	}
}

// TestSeekOnIdleDisksIsImmediate checks: "if the appropriate number
// of disks that contain the referenced location ... are idle, then
// the system can employ them to service the request immediately."
func TestSeekOnIdleDisksIsImmediate(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 100, 16)
	if err := s.Seek(57, allFree); err != nil {
		t.Fatal(err)
	}
	shown, err := s.Tick(allFree)
	if err != nil {
		t.Fatal(err)
	}
	if shown != 57 {
		t.Fatalf("after idle-disk seek showed %d, want 57", shown)
	}
	if s.SwitchLag() != 0 {
		t.Fatal("idle-disk seek paid a delay")
	}
}

// TestSeekOnBusyDisksWaitsForRotation checks the other §3.2.5 path:
// with the target's disks busy, the session waits for its serving set
// to rotate to the target position, showing nothing but (per the
// paper) incurring no hiccup.
func TestSeekOnBusyDisksWaitsForRotation(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 100, 16)
	// Play to position 10.
	for i := 0; i < 10; i++ {
		if _, err := s.Tick(allFree); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seek(17, allBusy); err != nil {
		t.Fatal(err)
	}
	if s.Mode() != Waiting {
		t.Fatalf("mode = %v, want waiting", s.Mode())
	}
	waits := 0
	for s.Mode() == Waiting {
		shown, err := s.Tick(allBusy)
		if err != nil {
			t.Fatal(err)
		}
		if shown != -1 {
			t.Fatal("displayed data while waiting")
		}
		waits++
	}
	// Rotation distance from 10 to 17 with stride 1 on 20 disks: 7.
	if waits != 7 {
		t.Fatalf("waited %d intervals, want 7", waits)
	}
	shown, err := s.Tick(allFree)
	if err != nil {
		t.Fatal(err)
	}
	if shown != 17 {
		t.Fatalf("resumed at %d, want 17", shown)
	}
	if s.SwitchLag() != 7 {
		t.Fatalf("switch lag = %d, want 7", s.SwitchLag())
	}
}

func TestRewind(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 100, 16)
	for i := 0; i < 50; i++ {
		if _, err := s.Tick(allFree); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seek(0, allFree); err != nil {
		t.Fatal(err)
	}
	shown, err := s.Tick(allFree)
	if err != nil {
		t.Fatal(err)
	}
	if shown != 0 {
		t.Fatalf("rewind resumed at %d, want 0", shown)
	}
}

func TestSeekValidation(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 100, 16)
	if err := s.Seek(-1, allFree); err == nil {
		t.Error("negative seek accepted")
	}
	if err := s.Seek(100, allFree); err == nil {
		t.Error("out-of-range seek accepted")
	}
	if err := s.StopScan(allFree); err == nil {
		t.Error("StopScan while playing accepted")
	}
}

// TestScanBusyReplicaPaysInitiationDelay: switching to a busy replica
// costs a transfer-initiation delay but still succeeds.
func TestScanBusyReplicaPaysInitiationDelay(t *testing.T) {
	s, _, _ := testPair(t, 20, 1, 320, 16)
	if err := s.StartScan(allBusy); err != nil {
		t.Fatal(err)
	}
	if s.Mode() != Waiting {
		t.Fatalf("mode = %v, want waiting", s.Mode())
	}
	for s.Mode() == Waiting {
		if _, err := s.Tick(allBusy); err != nil {
			t.Fatal(err)
		}
	}
	if s.Mode() != Scanning {
		t.Fatalf("mode = %v, want scanning", s.Mode())
	}
	if s.SwitchLag() == 0 {
		t.Fatal("busy replica switch cost nothing")
	}
}

// Property: after an arbitrary finite mix of scan/seek operations the
// session still terminates once left alone, and it never shows an
// out-of-range subobject.
func TestSessionAlwaysTerminates(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		s, normal, _ := testPair(t, 24, 1, 96, 8)
		for step := 0; step < len(ops) && s.Mode() != Done; step++ {
			op := ops[step]
			switch op % 7 {
			case 0:
				_ = s.StartScan(allFree)
			case 1:
				_ = s.StopScan(allFree)
			case 2:
				_ = s.Seek(int(op)%normal.N, allFree)
			}
			shown, err := s.Tick(allFree)
			if err != nil {
				return false
			}
			if shown >= normal.N {
				return false
			}
		}
		// Left alone, the session must finish within the object length
		// plus one orbit of repositioning.
		guard := normal.N + normal.Layout.D + 2
		for s.Mode() != Done && guard > 0 {
			guard--
			shown, err := s.Tick(allFree)
			if err != nil {
				return false
			}
			if shown >= normal.N {
				return false
			}
		}
		return s.Mode() == Done
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSessionTick(b *testing.B) {
	s, _, _ := testPair(b, 1000, 5, b.N+1, 16)
	for i := 0; i < b.N; i++ {
		if _, err := s.Tick(allFree); err != nil {
			b.Fatal(err)
		}
	}
}
