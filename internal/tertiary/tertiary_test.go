package tertiary

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	if err := Table3.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Spec{Name: "bad", Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Spec{Name: "bad", Bandwidth: 1, Reposition: -1}).Validate(); err == nil {
		t.Error("negative reposition accepted")
	}
}

func TestDisksOccupied(t *testing.T) {
	cases := []struct {
		tert, disk float64
		want       int
	}{
		{40e6, 20e6, 2}, // Table 3 / §3.2.4 example
		{40e6, 30e6, 2},
		{40e6, 40e6, 1},
		{40e6, 50e6, 1},
		{10e6, 20e6, 1},
	}
	for _, c := range cases {
		s := Spec{Name: "t", Bandwidth: c.tert}
		if got := s.DisksOccupied(c.disk); got != c.want {
			t.Errorf("DisksOccupied(%v/%v) = %d, want %d", c.tert, c.disk, got, c.want)
		}
	}
}

// TestTable3MaterializationTime checks the headline cost: a Table 3
// object (3000 subobjects × 5 fragments × 1.512 MB = 181,440 mbits)
// takes 4536 s through the 40 mbps device with a matched tape.
func TestTable3MaterializationTime(t *testing.T) {
	objectBits := 3000.0 * 5 * 1512000 * 8
	got := Table3.MaterializeSeconds(objectBits, DiskMatched, 0.6048)
	if math.Abs(got-4536) > 1 {
		t.Fatalf("materialization = %v s, want ~4536", got)
	}
}

// TestSequentialLayoutPenalty checks §3.2.4: with a sequential tape
// the device spends "a major fraction of its time repositioning its
// head (wasteful work) instead of producing data".
func TestSequentialLayoutPenalty(t *testing.T) {
	objectBits := 1000 * 0.6048 * 40e6 // 1000 production bursts
	matched := Table3.MaterializeSeconds(objectBits, DiskMatched, 0.6048)
	seq := Table3.MaterializeSeconds(objectBits, Sequential, 0.6048)
	if seq <= matched {
		t.Fatalf("sequential (%v) not slower than matched (%v)", seq, matched)
	}
	// With a 5 s reposition per 0.6 s burst, almost 90% of the time is
	// repositioning.
	wasted := (seq - matched) / seq
	if wasted < 0.85 {
		t.Fatalf("wasted fraction = %v, want the reposition to dominate", wasted)
	}
}

func TestMaterializeSecondsEdgeCases(t *testing.T) {
	if got := Table3.MaterializeSeconds(0, DiskMatched, 1); got != 0 {
		t.Errorf("zero-size object took %v s", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size did not panic")
			}
		}()
		Table3.MaterializeSeconds(-1, DiskMatched, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero interval with sequential layout did not panic")
			}
		}()
		Table3.MaterializeSeconds(1, Sequential, 0)
	}()
}

func TestTapeOrderSection324Example(t *testing.T) {
	// §3.2.4: fragments stored as X0.0, X0.1, X1.0, X1.1, X2.0, X2.1.
	order, err := TapeOrder(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []FragRef{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	if len(order) != len(want) {
		t.Fatalf("order length = %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestTapeOrderCoversAllFragments(t *testing.T) {
	err := quick.Check(func(mRaw, nRaw, wRaw uint8) bool {
		m := int(mRaw%8) + 1
		n := int(nRaw%30) + 1
		w := int(wRaw%4) + 1
		order, err := TapeOrder(m, n, w)
		if err != nil {
			return false
		}
		if len(order) != m*n {
			return false
		}
		seen := make(map[FragRef]bool, m*n)
		for _, r := range order {
			if r.Sub < 0 || r.Sub >= n || r.Frag < 0 || r.Frag >= m || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTapeOrderValidation(t *testing.T) {
	if _, err := TapeOrder(0, 1, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := TapeOrder(1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TapeOrder(1, 1, 0); err == nil {
		t.Error("w=0 accepted")
	}
}

func TestManagerFCFSAndDedup(t *testing.T) {
	m := NewManager()
	if m.Busy() || m.QueueLen() != 0 {
		t.Fatal("new manager not idle")
	}
	if !m.Request(5) {
		t.Fatal("first request not new")
	}
	if m.Request(5) {
		t.Fatal("duplicate queued request reported new")
	}
	if !m.Request(9) || !m.Request(2) {
		t.Fatal("distinct requests rejected")
	}
	if m.QueueLen() != 3 {
		t.Fatalf("queue length = %d, want 3", m.QueueLen())
	}

	id, ok := m.StartNext()
	if !ok || id != 5 {
		t.Fatalf("StartNext = %d,%v, want 5 (FCFS)", id, ok)
	}
	if !m.Busy() || m.Inflight() != 5 {
		t.Fatal("in-flight state wrong")
	}
	if m.Request(5) {
		t.Fatal("request for in-flight object reported new")
	}
	if !m.Pending(5) || !m.Pending(9) || m.Pending(7) {
		t.Fatal("Pending wrong")
	}
	if _, ok := m.StartNext(); ok {
		t.Fatal("StartNext while busy succeeded")
	}

	done, err := m.Finish()
	if err != nil || done != 5 {
		t.Fatalf("Finish = %d,%v", done, err)
	}
	if m.Served() != 1 {
		t.Fatalf("served = %d, want 1", m.Served())
	}
	if _, err := m.Finish(); err == nil {
		t.Fatal("Finish while idle succeeded")
	}

	id, ok = m.StartNext()
	if !ok || id != 9 {
		t.Fatalf("second StartNext = %d,%v, want 9", id, ok)
	}
	m.Abort()
	if m.Busy() || m.Served() != 1 {
		t.Fatal("Abort did not reset in-flight without counting")
	}
	id, ok = m.StartNext()
	if !ok || id != 2 {
		t.Fatalf("third StartNext = %d,%v, want 2", id, ok)
	}
}

// Property: a request becomes new again once the object has been both
// dequeued and finished.
func TestManagerRequeueAfterFinish(t *testing.T) {
	m := NewManager()
	m.Request(1)
	if id, ok := m.StartNext(); !ok || id != 1 {
		t.Fatal("start failed")
	}
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	if !m.Request(1) {
		t.Fatal("re-request after finish not accepted as new")
	}
}

func BenchmarkManagerCycle(b *testing.B) {
	m := NewManager()
	for i := 0; i < b.N; i++ {
		m.Request(i % 100)
		if _, ok := m.StartNext(); ok {
			if _, err := m.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
