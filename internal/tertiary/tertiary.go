// Package tertiary models the tertiary storage device of the paper's
// architecture: the database lives permanently on tertiary store and
// objects are materialized onto the disk farm on demand (§1, §3.2.4).
//
// The device is sequential with a bandwidth far below an object's
// display bandwidth, so a display cannot be fed from tertiary
// directly.  §3.2.4 analyses the interaction of tape layout with the
// striped disk layout: a sequentially recorded object forces the tape
// head to reposition every time the disk target moves, while a tape
// recorded in disk-delivery order (fragment order) streams without
// repositioning.
package tertiary

import "fmt"

// TapeLayout selects how an object is recorded on tertiary store.
type TapeLayout int

const (
	// Sequential records the object in display order; materializing a
	// striped object then forces a head reposition per production
	// burst (§3.2.4's "layout mismatch").
	Sequential TapeLayout = iota
	// DiskMatched records the object in the order the disk farm
	// consumes it (X0.0, X0.1, X1.0, X1.1, ... for a 2-fragment
	// production cycle), so materialization streams at full bandwidth.
	DiskMatched
)

func (l TapeLayout) String() string {
	switch l {
	case Sequential:
		return "sequential"
	case DiskMatched:
		return "disk-matched"
	default:
		return fmt.Sprintf("TapeLayout(%d)", int(l))
	}
}

// Spec describes a tertiary device.
type Spec struct {
	Name       string
	Bandwidth  float64 // bits/second (Table 3: 40 mbps)
	Reposition float64 // head reposition time in seconds
}

// Table3 is the §4 simulation device: 40 mbps.  The paper gives no
// reposition figure; 5 s is representative of early-90s tape robotics
// and only matters for the Sequential layout ablation.
var Table3 = Spec{Name: "sim-tertiary", Bandwidth: 40e6, Reposition: 5.0}

// Validate reports whether the spec is sensible.
func (s Spec) Validate() error {
	if s.Bandwidth <= 0 {
		return fmt.Errorf("tertiary: %s: bandwidth must be positive", s.Name)
	}
	if s.Reposition < 0 {
		return fmt.Errorf("tertiary: %s: reposition time must be non-negative", s.Name)
	}
	return nil
}

// DisksOccupied returns the number of disk drives the device can feed
// concurrently while materializing: ceil(B_Tertiary / B_Disk).
// Table 3: ceil(40/20) = 2.
func (s Spec) DisksOccupied(bDisk float64) int {
	if bDisk <= 0 {
		panic("tertiary: non-positive disk bandwidth")
	}
	n := int(s.Bandwidth / bDisk)
	if float64(n)*bDisk < s.Bandwidth {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// MaterializeSeconds returns the time to materialize an object of the
// given size under the given tape layout.  intervalSeconds is the
// system time interval; with a Sequential tape each production burst
// of one interval is followed by a head reposition, so the effective
// bandwidth shrinks by interval/(interval+reposition).
func (s Spec) MaterializeSeconds(objectBits float64, layout TapeLayout, intervalSeconds float64) float64 {
	if objectBits < 0 {
		panic("tertiary: negative object size")
	}
	base := objectBits / s.Bandwidth
	switch layout {
	case DiskMatched:
		return base
	case Sequential:
		if intervalSeconds <= 0 {
			panic("tertiary: non-positive interval")
		}
		bursts := base / intervalSeconds
		return base + bursts*s.Reposition
	default:
		panic(fmt.Sprintf("tertiary: unknown layout %d", int(layout)))
	}
}

// FragRef identifies fragment Frag of subobject Sub.
type FragRef struct{ Sub, Frag int }

// TapeOrder returns the disk-matched recording order for an object of
// n subobjects with degree m, produced w fragments per time cycle
// (w = DisksOccupied): subobject-major, fragment-minor.  For m = w = 2
// this is exactly the §3.2.4 example sequence
// X0.0, X0.1, X1.0, X1.1, X2.0, X2.1, ...
func TapeOrder(m, n, w int) ([]FragRef, error) {
	if m <= 0 || n <= 0 || w <= 0 {
		return nil, fmt.Errorf("tertiary: TapeOrder arguments must be positive (m=%d n=%d w=%d)", m, n, w)
	}
	order := make([]FragRef, 0, n*m)
	for s := 0; s < n; s++ {
		for i := 0; i < m; i++ {
			order = append(order, FragRef{Sub: s, Frag: i})
		}
	}
	return order, nil
}

// Manager is the Tertiary Manager of the simulation model (§4.1): a
// FCFS queue of materialization requests with duplicate suppression —
// concurrent requests for the same object join the one in flight.
// The queued set is a dense slice indexed by object id: the
// schedulers re-route every queued cold request each interval, so
// Request/Pending sit on their hot paths.
type Manager struct {
	// The FCFS queue is a head-indexed ring over one backing slice:
	// StartNext advances head instead of re-slicing, and Request
	// compacts the dead prefix before growing, so steady-state
	// traffic recycles one allocation instead of crawling the backing
	// array forward forever.
	queue    []int
	head     int
	queued   []bool
	inflight int // object id being materialized, or -1
	served   int
}

// NewManager returns an idle manager.
func NewManager() *Manager {
	return &Manager{inflight: -1}
}

// isQueued reports whether id is in the queued set.
func (m *Manager) isQueued(id int) bool {
	return id >= 0 && id < len(m.queued) && m.queued[id]
}

// Request enqueues a materialization of object id.  It reports true
// when this call added new work (the object was neither queued nor in
// flight).
func (m *Manager) Request(id int) bool {
	if m.inflight == id || m.isQueued(id) {
		return false
	}
	if id >= len(m.queued) {
		next := make([]bool, id+1)
		copy(next, m.queued)
		m.queued = next
	}
	m.queued[id] = true
	if len(m.queue) == cap(m.queue) && m.head > 0 {
		n := copy(m.queue, m.queue[m.head:])
		m.queue = m.queue[:n]
		m.head = 0
	}
	m.queue = append(m.queue, id)
	return true
}

// Busy reports whether a materialization is in flight.
func (m *Manager) Busy() bool { return m.inflight >= 0 }

// Inflight returns the object being materialized, or -1.
func (m *Manager) Inflight() int { return m.inflight }

// QueueLen returns the number of queued (not yet started) requests.
func (m *Manager) QueueLen() int { return len(m.queue) - m.head }

// StartNext dequeues the oldest request and marks it in flight.  It
// reports ok=false when the queue is empty or a materialization is
// already running.
func (m *Manager) StartNext() (id int, ok bool) {
	if m.inflight >= 0 || m.head == len(m.queue) {
		return -1, false
	}
	id = m.queue[m.head]
	m.head++
	if m.head == len(m.queue) {
		m.queue, m.head = m.queue[:0], 0
	}
	m.queued[id] = false
	m.inflight = id
	return id, true
}

// Finish completes the in-flight materialization.
func (m *Manager) Finish() (id int, err error) {
	if m.inflight < 0 {
		return -1, fmt.Errorf("tertiary: Finish with nothing in flight")
	}
	id = m.inflight
	m.inflight = -1
	m.served++
	return id, nil
}

// Served returns the number of completed materializations.
func (m *Manager) Served() int { return m.served }

// Abort drops the in-flight materialization without counting it.
func (m *Manager) Abort() {
	m.inflight = -1
}

// Reset drops the in-flight materialization and every queued request,
// keeping only the served total — the state a server restart after a
// whole-member kill wants: cold queue, history intact.
func (m *Manager) Reset() {
	m.inflight = -1
	m.queue = m.queue[:0]
	m.head = 0
	clear(m.queued)
}

// Pending reports whether id is queued or in flight.
func (m *Manager) Pending(id int) bool {
	return m.inflight == id || m.isQueued(id)
}
