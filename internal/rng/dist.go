package rng

import (
	"fmt"
	"math"
	"sort"
)

// Discrete draws from an arbitrary finite distribution over 0..n-1 by
// inverse-transform sampling on the cumulative mass function.  Sampling
// is O(log n); construction is O(n).
type Discrete struct {
	cum []float64 // cum[i] = P(X <= i)
	pmf []float64
}

// NewDiscrete builds a Discrete from non-negative weights, which need
// not sum to one (they are normalized).  It returns an error if the
// weights are empty, contain a negative or non-finite entry, or sum to
// zero.
func NewDiscrete(weights []float64) (*Discrete, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: empty weight vector")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("rng: weights sum to zero")
	}
	d := &Discrete{
		cum: make([]float64, len(weights)),
		pmf: make([]float64, len(weights)),
	}
	run := 0.0
	for i, w := range weights {
		run += w / total
		d.cum[i] = run
		d.pmf[i] = w / total
	}
	d.cum[len(d.cum)-1] = 1 // guard against rounding
	return d, nil
}

// Sample draws one index according to the distribution.
func (d *Discrete) Sample(s *Stream) int {
	u := s.Float64()
	return sort.SearchFloat64s(d.cum, u)
}

// P returns the probability mass at index i.
func (d *Discrete) P(i int) float64 { return d.pmf[i] }

// Len returns the size of the support.
func (d *Discrete) Len() int { return len(d.pmf) }

// Mean returns the expected index value.
func (d *Discrete) Mean() float64 {
	m := 0.0
	for i, p := range d.pmf {
		m += float64(i) * p
	}
	return m
}

// TruncatedGeometric builds the paper's object-popularity distribution:
// a geometric distribution with the given mean, truncated to n objects
// and renormalized.  Index 0 is the most popular object.  The paper
// (§4.1) uses means 10, 20, and 43.5 over 2000 objects, reporting that
// these result in approximately 100, 200, and 400 unique objects being
// referenced.
func TruncatedGeometric(n int, mean float64) (*Discrete, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: geometric support size %d must be positive", n)
	}
	if mean <= 1 {
		return nil, fmt.Errorf("rng: geometric mean %v must exceed 1", mean)
	}
	// For an (untruncated) geometric with support {1,2,...} and success
	// probability p, the mean is 1/p, so P(X=i) proportional to (1-p)^(i-1).
	p := 1 / mean
	w := make([]float64, n)
	q := 1 - p
	cur := 1.0
	for i := range w {
		w[i] = cur
		cur *= q
	}
	return NewDiscrete(w)
}

// Zipf builds a Zipf(theta) popularity distribution over n objects,
// offered as an extension beyond the paper's geometric workload.
func Zipf(n int, theta float64) (*Discrete, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: zipf support size %d must be positive", n)
	}
	if theta < 0 {
		return nil, fmt.Errorf("rng: zipf theta %v must be non-negative", theta)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), theta)
	}
	return NewDiscrete(w)
}

// SupportQuantile returns the smallest support size n such that the
// cumulative probability of the first n indices is at least q.
func (d *Discrete) SupportQuantile(q float64) int {
	return sort.SearchFloat64s(d.cum, q) + 1
}

// UniqueCoverage returns the expected number of distinct indices drawn
// in k independent samples: sum_i (1 - (1-p_i)^k).  The paper's
// statement "approximately 100, 200, and 400 unique objects referenced"
// is checked against this quantity in the tests.
func (d *Discrete) UniqueCoverage(k int) float64 {
	u := 0.0
	for _, p := range d.pmf {
		u += 1 - math.Pow(1-p, float64(k))
	}
	return u
}
