package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed/seq diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := NewStream(42, 1)
	b := NewStream(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams on different sequences produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1, 1)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewStream(3, 9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(5, 5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(10) value %d drawn %d times out of 100000, badly skewed", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1, 1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := NewStream(11, 2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3.0", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewStream(seed, 1).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSourceNamedStreamsReproducible(t *testing.T) {
	src := NewSource(99)
	a := src.Stream("disk")
	b := src.Stream("disk")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same-named streams differ")
	}
	c := src.Stream("tertiary")
	d := src.Stream("disk")
	d.Uint64() // skip the draw already taken from a/b
	if c.Uint64() == d.Uint64() {
		t.Fatal("differently-named streams coincide")
	}
}

func TestSourceStreamN(t *testing.T) {
	src := NewSource(7)
	if src.StreamN("station", 1).Uint64() == src.StreamN("station", 2).Uint64() {
		t.Fatal("per-index streams coincide")
	}
}

func TestDiscreteValidation(t *testing.T) {
	if _, err := NewDiscrete(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewDiscrete([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewDiscrete([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
	if _, err := NewDiscrete([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := NewDiscrete([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf weight accepted")
	}
}

func TestDiscreteSamplingMatchesPMF(t *testing.T) {
	d, err := NewDiscrete([]float64{5, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(13, 1)
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[d.Sample(s)]++
	}
	want := []float64{0.5, 0.3, 0.2}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("index %d sampled with freq %v, want ~%v", i, got, want[i])
		}
	}
}

func TestDiscretePMFSumsToOne(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			w[i] = float64(r)
			total += w[i]
		}
		if total == 0 {
			return true
		}
		d, err := NewDiscrete(w)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i < d.Len(); i++ {
			sum += d.P(i)
		}
		return math.Abs(sum-1) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedGeometricValidation(t *testing.T) {
	if _, err := TruncatedGeometric(0, 10); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TruncatedGeometric(10, 1); err == nil {
		t.Error("mean=1 accepted")
	}
}

func TestTruncatedGeometricMonotone(t *testing.T) {
	d, err := TruncatedGeometric(2000, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < d.Len(); i++ {
		if d.P(i) > d.P(i-1) {
			t.Fatalf("geometric pmf not monotone at %d", i)
		}
	}
}

// TestGeometricUniqueObjectCounts checks the paper's §4.1 statement
// that geometric means 10, 20, and 43.5 over 2000 objects reference
// approximately 100, 200, and 400 unique objects respectively.  The
// paper does not state the number of draws; a few thousand requests
// (a long simulation run) gives coverage in the claimed range.
func TestGeometricUniqueObjectCounts(t *testing.T) {
	cases := []struct {
		mean       float64
		wantLo     float64
		wantHi     float64
		paperCount float64
	}{
		{10, 75, 135, 100},
		{20, 150, 260, 200},
		{43.5, 320, 520, 400},
	}
	// A long simulation run issues on the order of half a million
	// requests; the expected unique coverage then matches the paper.
	const draws = 500000
	for _, c := range cases {
		d, err := TruncatedGeometric(2000, c.mean)
		if err != nil {
			t.Fatal(err)
		}
		u := d.UniqueCoverage(draws)
		if u < c.wantLo || u > c.wantHi {
			t.Errorf("mean %v: expected unique coverage ~%v (paper), got %v after %d draws",
				c.mean, c.paperCount, u, draws)
		}
		// The 99.99%-mass support should be in the same range.
		s := float64(d.SupportQuantile(0.9999))
		if s < c.wantLo || s > c.wantHi {
			t.Errorf("mean %v: 99.99%% support = %v, want ~%v", c.mean, s, c.paperCount)
		}
	}
}

func TestZipf(t *testing.T) {
	d, err := Zipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d.P(0) <= d.P(99) {
		t.Fatal("zipf head not heavier than tail")
	}
	if _, err := Zipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Zipf(10, -1); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestDiscreteMean(t *testing.T) {
	d, err := NewDiscrete([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Mean(); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("mean of fair coin over {0,1} = %v, want 0.5", m)
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1, 1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkDiscreteSample(b *testing.B) {
	d, err := TruncatedGeometric(2000, 20)
	if err != nil {
		b.Fatal(err)
	}
	s := NewStream(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(s)
	}
}
