// Package rng provides deterministic, splittable pseudo-random number
// streams and the probability distributions used by the simulator.
//
// The paper's simulation was written in CSIM, which gives every model
// component its own random stream so that changing one component does
// not perturb the arrival pattern seen by another.  We reproduce that
// discipline: a Source is split into independent Streams by name, and
// each Stream is a self-contained PCG-XSH-RR generator.  Everything is
// reproducible from a single root seed.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random number generator based on
// PCG-XSH-RR 64/32 (O'Neill 2014).  It is intentionally tiny: 16 bytes
// of state, no heap allocation per draw, and fully reproducible.
type Stream struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// NewStream returns a Stream seeded with seed on sequence seq.  Two
// streams with different seq values are statistically independent even
// when they share a seed.
func NewStream(seed, seq uint64) *Stream {
	s := &Stream{inc: (seq << 1) | 1}
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

// next advances the generator and returns 32 uniform bits.
func (s *Stream) next() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns 64 uniform random bits.
func (s *Stream) Uint64() uint64 {
	return uint64(s.next())<<32 | uint64(s.next())
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 bits of mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).  It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation on 32 bits when
	// possible, falling back to 64-bit modulo for huge n.
	if n <= math.MaxInt32 {
		bound := uint32(n)
		threshold := -bound % bound
		for {
			r := s.next()
			m := uint64(r) * uint64(bound)
			if uint32(m) >= threshold {
				return int(m >> 32)
			}
		}
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with non-positive mean")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Source derives independent named Streams from a single root seed.
// The name is hashed into the PCG sequence selector, so adding a new
// consumer never perturbs existing consumers.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Stream returns the stream uniquely identified by name.  Calling it
// twice with the same name returns streams that generate identical
// sequences.
func (s *Source) Stream(name string) *Stream {
	h := fnv.New64a()
	// fnv never fails on Write.
	_, _ = h.Write([]byte(name))
	return NewStream(s.seed, h.Sum64())
}

// StreamN returns the stream for a name/index pair, for per-entity
// streams such as one stream per display station.
func (s *Source) StreamN(name string, n int) *Stream {
	return s.Stream(fmt.Sprintf("%s/%d", name, n))
}
