package experiment

import (
	"fmt"
	"time"

	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
)

// Scale-mode sweeps push the harness toward the ROADMAP north star —
// configurations 10x–100x the paper's Table 3 — to measure how
// simulation cost grows with model size now that both the engines
// (PR 1) and the event calendar (this layer) are O(work).

// ScaleConfig returns a configuration factor times the quick
// geometry: factor×50 disks and factor×40 objects with a station
// population of two stations per cluster, which keeps the farm near
// saturation so the calendar carries realistic traffic.  The quick
// base (rather than Table 3) keeps 100x runnable in CI under the race
// detector; offline sweeps pass Table 3 sizes through ScalePoint
// instead.
func ScaleConfig(factor int, seed uint64) sched.Config {
	cfg := sched.Config{
		D:                 50 * factor,
		K:                 5,
		CapacityFragments: 60 * factor,
		Objects:           40 * factor,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          2 * (50 * factor) / 5,
		DistMean:          20,
		Seed:              seed,
		WarmupIntervals:   200,
		MeasureIntervals:  1000,
		PlaceRetryLimit:   sched.DefaultPlaceRetryLimit,
	}
	return cfg
}

// ScalePoint is one scale-sweep measurement: how much wall-clock one
// engine run costs at a given model size.
type ScalePoint struct {
	Factor       int     `json:"factor"`
	D            int     `json:"disks"`
	Stations     int     `json:"stations"`
	Displays     int     `json:"displays"`
	WallSeconds  float64 `json:"wall_seconds"`
	Intervals    int     `json:"intervals"`
	IntervalsSec float64 `json:"intervals_per_second"`
}

// RunScalePoint executes one striped run at the given factor and
// times it.
func RunScalePoint(factor int, seed uint64) (ScalePoint, error) {
	cfg := ScaleConfig(factor, seed)
	e, err := sched.NewStriped(cfg)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %dx: %w", factor, err)
	}
	start := time.Now()
	res := e.Run()
	wall := time.Since(start).Seconds()
	intervals := cfg.WarmupIntervals + cfg.MeasureIntervals
	p := ScalePoint{
		Factor:      factor,
		D:           cfg.D,
		Stations:    cfg.Stations,
		Displays:    res.Displays,
		WallSeconds: wall,
		Intervals:   intervals,
	}
	if wall > 0 {
		p.IntervalsSec = float64(intervals) / wall
	}
	return p, nil
}

// ScaleSweep runs the trajectory of factors in order (sequentially —
// each point should own the machine so wall-clock numbers mean
// something) and returns one point per factor.
func ScaleSweep(factors []int, seed uint64) ([]ScalePoint, error) {
	points := make([]ScalePoint, 0, len(factors))
	for _, f := range factors {
		p, err := RunScalePoint(f, seed)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}
