package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
)

// Scale-mode sweeps push the harness toward the ROADMAP north star —
// configurations 10x–1000x the paper's Table 3 — to measure how
// simulation cost grows with model size now that the engines (PR 1),
// the event calendar (PR 4), and the per-interval station/admission
// work (sharded execution, DESIGN.md §11) are all O(work).

// ScaleConfig returns a configuration factor times the quick
// geometry: factor×50 disks and factor×40 objects with a station
// population of two stations per cluster, which keeps the farm near
// saturation so the calendar carries realistic traffic.  The quick
// base (rather than Table 3) keeps 100x runnable in CI under the race
// detector; offline sweeps pass Table 3 sizes through ScalePoint
// instead.  At factor 1000 this is 50,000 disks and 20,000 stations.
func ScaleConfig(factor int, seed uint64) sched.Config {
	cfg := sched.Config{
		D:                 50 * factor,
		K:                 5,
		CapacityFragments: 60 * factor,
		Objects:           40 * factor,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          2 * (50 * factor) / 5,
		DistMean:          20,
		Seed:              seed,
		WarmupIntervals:   200,
		MeasureIntervals:  1000,
		PlaceRetryLimit:   sched.DefaultPlaceRetryLimit,
	}
	return cfg
}

// ScaleOptions selects how a scale point executes.  The zero value is
// the legacy sequential run.
type ScaleOptions struct {
	// Workers is the intra-run worker count (sched.Config.Workers);
	// 0 or 1 runs the sequential path.
	Workers int
	// Shards is the station shard count (sched.Config.Shards).  Zero
	// with Workers > 1 derives 4×Workers so the parallel phases have
	// work to balance.
	Shards int
}

// shards returns the effective shard count for the options.
func (o ScaleOptions) shards() int {
	if o.Shards == 0 && o.Workers > 1 {
		return 4 * o.Workers
	}
	return o.Shards
}

// ScalePoint is one scale-sweep measurement: how much wall-clock one
// engine run costs at a given model size.
type ScalePoint struct {
	Factor       int     `json:"factor"`
	D            int     `json:"disks"`
	Stations     int     `json:"stations"`
	Displays     int     `json:"displays"`
	WallSeconds  float64 `json:"wall_seconds"`
	Intervals    int     `json:"intervals"`
	IntervalsSec float64 `json:"intervals_per_second"`
	// NsPerDisplay is wall-clock nanoseconds divided by displays
	// completed — the cost-per-unit-of-simulated-work trajectory
	// BENCH_5.json tracks across factors.
	NsPerDisplay float64 `json:"ns_per_display,omitempty"`
	// Workers and Shards record how the point executed (0 = legacy
	// sequential), so a report line is self-describing.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// HeapAllocBytes is the live heap right after the run — the
	// Store/placement-table footprint that dominates at 1000x
	// (ROADMAP item 5), measured before it can be compacted away.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`
}

// RunScalePoint executes one sequential striped run at the given
// factor and times it.
func RunScalePoint(factor int, seed uint64) (ScalePoint, error) {
	return RunScalePointOpts(factor, seed, ScaleOptions{})
}

// RunScalePointOpts executes one striped run at the given factor with
// the sharded-execution options applied and times it.  The Result is
// byte-identical across worker counts (DESIGN.md §11); only the
// wall-clock fields vary.
func RunScalePointOpts(factor int, seed uint64, opts ScaleOptions) (ScalePoint, error) {
	cfg := ScaleConfig(factor, seed)
	cfg.Workers = opts.Workers
	cfg.Shards = opts.shards()
	e, err := sched.NewStriped(cfg)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %dx: %w", factor, err)
	}
	start := time.Now()
	res := e.Run()
	wall := time.Since(start).Seconds()
	// Collect before sampling, and only after the wall clock is taken:
	// without the forced GC, HeapAlloc includes whatever garbage the GC
	// happened not to have swept yet, so the number would measure
	// collector timing instead of the engine's live tables.  The
	// KeepAlive below stops that same GC from also collecting the
	// engine — dead after Run — which would zero the very footprint
	// being measured.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	defer runtime.KeepAlive(e)
	intervals := cfg.WarmupIntervals + cfg.MeasureIntervals
	p := ScalePoint{
		Factor:      factor,
		D:           cfg.D,
		Stations:    cfg.Stations,
		Displays:    res.Displays,
		WallSeconds: wall,
		Intervals:   intervals,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,

		HeapAllocBytes: ms.HeapAlloc,
	}
	if wall > 0 {
		p.IntervalsSec = float64(intervals) / wall
	}
	if res.Displays > 0 {
		p.NsPerDisplay = wall * 1e9 / float64(res.Displays)
	}
	return p, nil
}

// ScaleSweep runs the trajectory of factors with the legacy
// sequential engine and returns one point per factor, in factor
// order.  Points execute concurrently on a GOMAXPROCS-sized pool
// (the same harness runSweep uses): simulation results are
// deterministic regardless, and the per-point wall clocks remain
// comparable because every point still runs on one goroutine.
func ScaleSweep(factors []int, seed uint64) ([]ScalePoint, error) {
	return ScaleSweepOpts(factors, seed, ScaleOptions{})
}

// ScaleSweepOpts runs the trajectory with sharded-execution options.
// When opts.Workers > 1 the factors run one at a time — each point's
// worker pool should own the machine so its wall clock measures the
// parallel speedup, not contention with neighbouring points.
func ScaleSweepOpts(factors []int, seed uint64, opts ScaleOptions) ([]ScalePoint, error) {
	points := make([]ScalePoint, len(factors))
	if opts.Workers > 1 {
		for i, f := range factors {
			p, err := RunScalePointOpts(f, seed, opts)
			if err != nil {
				return nil, err
			}
			points[i] = p
		}
		return points, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(factors) {
		workers = len(factors)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(factors) {
					return
				}
				p, err := RunScalePointOpts(factors[i], seed, opts)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				points[i] = p
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return points, nil
}
