package experiment

import (
	"testing"
)

// TestE21FailoverRecovery runs the full E21 grid and pins the
// acceptance claims of the server-failover layer: a 4-server
// leastloaded cluster that loses one member mid-window recovers to
// ≥ 80% of its pre-kill throughput on the 3 survivors, no display is
// lost without an accounting (every orphaned request is re-admitted or
// counted dropped, and no arrival ever finds the whole cluster dead),
// and deeper replica ladders leave the popularity policy fewer
// holderless objects to fall back on.
func TestE21FailoverRecovery(t *testing.T) {
	points, err := E21(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderE21(points))

	byKey := make(map[string]FailoverPoint, len(points))
	for _, p := range points {
		byKey[p.Policy+string(rune('0'+p.Depth))] = p

		if p.PreKillPerHour <= 0 || p.PostKillPerHour <= 0 {
			t.Errorf("%s×d%d: empty recovery curve (pre %.1f, post %.1f)",
				p.Policy, p.Depth, p.PreKillPerHour, p.PostKillPerHour)
		}
		// Conservation: the kill drained some requests, and every one of
		// them is accounted for.  Three members survive the whole run, so
		// nothing is ever lost outright.
		if p.Orphaned != p.ReAdmitted+p.Dropped {
			t.Errorf("%s×d%d: orphan conservation violated: %d orphaned != %d readmitted + %d dropped",
				p.Policy, p.Depth, p.Orphaned, p.ReAdmitted, p.Dropped)
		}
		if p.Lost != 0 {
			t.Errorf("%s×d%d: %d arrivals lost with 3 live members", p.Policy, p.Depth, p.Lost)
		}
		if p.FailedOver <= 0 {
			t.Errorf("%s×d%d: no dispatch ever failed over off the dead member", p.Policy, p.Depth)
		}
	}

	ll := byKey["leastloaded1"]
	if ll.Recovery < 0.80 {
		t.Errorf("leastloaded recovered to %.2f of pre-kill throughput, want ≥ 0.80", ll.Recovery)
	}
	if d1, d4 := byKey["popularity1"], byKey["popularity4"]; d4.NoHolder >= d1.NoHolder {
		t.Errorf("depth 4 should leave fewer holderless dispatches than depth 1: %d vs %d",
			d4.NoHolder, d1.NoHolder)
	}
}

// TestE21Deterministic pins that a failover run is exactly as
// reproducible as a clean one: same seed, same point, byte-identical
// counters and curve.
func TestE21Deterministic(t *testing.T) {
	a, err := RunE21Point("popularity", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE21Point("popularity", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different failover results:\n  first:  %+v\n  second: %+v", a, b)
	}
}
