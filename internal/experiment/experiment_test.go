package experiment

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

func TestBaseConfigScales(t *testing.T) {
	full := BaseConfig(Full, 64, 20, 1)
	if full.D != 1000 || full.Objects != 2000 {
		t.Fatalf("full scale config wrong: %+v", full)
	}
	quick := BaseConfig(Quick, 64, 20, 1)
	if quick.D != 50 || quick.Objects != 40 {
		t.Fatalf("quick scale config wrong: %+v", quick)
	}
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := quick.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure8Quick(t *testing.T) {
	pts, err := Figure8(Quick, 10, []int{1, 8, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Striped().Hiccups != 0 || p.VDR().Hiccups != 0 {
			t.Fatalf("hiccups at %d stations", p.Stations)
		}
		if p.Striped().Throughput() <= 0 {
			t.Fatalf("no striped throughput at %d stations", p.Stations)
		}
	}
	// The paper's central result at high load.
	last := pts[len(pts)-1]
	if last.Striped().Throughput() <= last.VDR().Throughput() {
		t.Fatalf("striping (%v) did not beat VDR (%v) at 32 stations",
			last.Striped().Throughput(), last.VDR().Throughput())
	}
	// Throughput grows with offered load.
	if pts[1].Striped().Throughput() < pts[0].Striped().Throughput() {
		t.Fatal("striped throughput fell from 1 to 8 stations")
	}
}

func TestFigure8Deterministic(t *testing.T) {
	a, err := Figure8(Quick, 20, []int{8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure8(Quick, 20, []int{8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Striped().Displays != b[0].Striped().Displays || a[0].VDR().Displays != b[0].VDR().Displays {
		t.Fatal("figure 8 runs not reproducible")
	}
}

// TestRunAllParallelismInvariant pins the worker pool's determinism
// contract: the sweep's results must not depend on how many workers
// execute it.  A serial run (GOMAXPROCS=1) and a parallel run must be
// deeply equal, every field of every point.
func TestRunAllParallelismInvariant(t *testing.T) {
	stations := []int{1, 8}
	prev := runtime.GOMAXPROCS(1)
	serial, err := RunAll(Quick, stations, 9)
	runtime.GOMAXPROCS(4)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		t.Fatal(err)
	}
	parallel, perr := RunAll(Quick, stations, 9)
	runtime.GOMAXPROCS(prev)
	if perr != nil {
		t.Fatal(perr)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("sweep depends on worker count:\n  serial:   %+v\n  parallel: %+v", serial, parallel)
	}
}

func TestFigure8RenderAndTable4(t *testing.T) {
	byMean := map[float64][]Point{}
	for _, mean := range workload.PaperMeans {
		pts, err := Figure8(Quick, mean, []int{16, 64}, 1)
		if err != nil {
			t.Fatal(err)
		}
		byMean[mean] = pts
	}
	fig := Figure8Render(10, byMean[10])
	for _, want := range []string{"Figure 8", "highly skewed", "simple striping", "virtual replication"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure missing %q:\n%s", want, fig)
		}
	}
	tbl := Table4(byMean).String()
	for _, want := range []string{"# Display Stations", "10 (highly skewed)", "43.5 (uniform)", "16", "64", "%"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table 4 missing %q:\n%s", want, tbl)
		}
	}
	// Station counts not run render as "-".
	if !strings.Contains(tbl, "-") {
		t.Errorf("missing rows not dashed:\n%s", tbl)
	}
}

func TestStrideAblation(t *testing.T) {
	rows, err := StrideAblation(Quick, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var k1, kD StrideResult
	for _, r := range rows {
		switch r.Stride {
		case 1:
			k1 = r
		case 50:
			kD = r
		}
	}
	// §3.2.2: pinning objects to one cluster (k=D) makes colliding
	// requests wait far longer than the rotating layouts.
	if kD.WorstWaitS <= k1.WorstWaitS {
		t.Errorf("k=D worst wait (%v s) not above k=1 (%v s)", kD.WorstWaitS, k1.WorstWaitS)
	}
	for _, r := range rows {
		if r.Run.Hiccups != 0 {
			t.Errorf("%s: hiccups %d", r.Label, r.Run.Hiccups)
		}
	}
}

func TestFragmentAblation(t *testing.T) {
	rows, err := FragmentAblation(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[3].EffectiveBandwidth <= rows[0].EffectiveBandwidth {
		t.Fatal("bandwidth not improving with fragment size")
	}
	if rows[3].WorstLatencySecs <= rows[0].WorstLatencySecs {
		t.Fatal("latency not growing with fragment size")
	}
}

func TestMixedMediaAblation(t *testing.T) {
	rows, err := MixedMediaAblation(24, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	st, naive := rows[0].Run, rows[1].Run
	if st.Hiccups != 0 || naive.Hiccups != 0 {
		t.Fatalf("hiccups: %d / %d", st.Hiccups, naive.Hiccups)
	}
	// §3.1: sizing clusters for the largest media type sacrifices the
	// bandwidth of unused disks; staggered striping must deliver more
	// displays from the same farm.
	if st.Displays <= naive.Displays {
		t.Fatalf("staggered (%d displays) did not beat naive clustering (%d)",
			st.Displays, naive.Displays)
	}
}

func TestTertiaryLayoutAblation(t *testing.T) {
	rows, err := TertiaryLayoutAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	matched, seq := rows[0], rows[1]
	if matched.Layout != tertiary.DiskMatched || seq.Layout != tertiary.Sequential {
		t.Fatal("row order wrong")
	}
	if seq.MaterializeSeconds <= matched.MaterializeSeconds {
		t.Fatal("sequential tape not slower")
	}
	if seq.WastedTimeFraction < 0.85 {
		t.Fatalf("sequential waste = %v, want repositioning to dominate", seq.WastedTimeFraction)
	}
	if matched.WastedTimeFraction != 0 {
		t.Fatalf("matched tape wasted %v", matched.WastedTimeFraction)
	}
	// The layout choice is visible in end-to-end throughput on a
	// miss-heavy workload.
	if matched.ThroughputDisplays <= seq.ThroughputDisplays {
		t.Fatalf("matched layout (%v/hr) not above sequential (%v/hr)",
			matched.ThroughputDisplays, seq.ThroughputDisplays)
	}
}
