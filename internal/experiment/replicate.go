package experiment

import (
	"fmt"
	"math"

	"github.com/mmsim/staggered/internal/metrics"
)

// ReplicatedPoint aggregates one station count across independent
// seeds: the mean and sample standard deviation of both techniques'
// throughput and of the improvement percentage.
type ReplicatedPoint struct {
	Stations       int
	Seeds          int
	StripedPerHour metrics.Tally
	VDRPerHour     metrics.Tally
	ImprovementPct metrics.Tally
}

// RunReplicated runs one Figure 8 graph across several seeds and
// aggregates per station count, giving confidence intervals the
// single-seed paper numbers lack.
func RunReplicated(scale Scale, mean float64, stations []int, seeds []uint64) ([]ReplicatedPoint, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: need at least one seed")
	}
	var out []ReplicatedPoint
	for si, seed := range seeds {
		pts, err := Figure8(scale, mean, stations, seed)
		if err != nil {
			return nil, err
		}
		if si == 0 {
			out = make([]ReplicatedPoint, len(pts))
			for i, p := range pts {
				out[i].Stations = p.Stations
			}
		}
		for i, p := range pts {
			if out[i].Stations != p.Stations {
				return nil, fmt.Errorf("experiment: station sweep mismatch across seeds")
			}
			out[i].Seeds++
			out[i].StripedPerHour.Add(p.Striped().Throughput())
			out[i].VDRPerHour.Add(p.VDR().Throughput())
			imp := p.Improvement()
			if !math.IsInf(imp, 0) {
				out[i].ImprovementPct.Add(imp)
			}
		}
	}
	return out, nil
}

// RenderReplicated formats the aggregate as a table with mean ± σ.
func RenderReplicated(mean float64, points []ReplicatedPoint) string {
	tbl := &metrics.Table{Header: []string{
		"stations", "striping (mean±σ /hr)", "replication (mean±σ /hr)", "improvement (mean±σ %)",
	}}
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%d", p.Stations),
			fmt.Sprintf("%.1f±%.1f", p.StripedPerHour.Mean(), p.StripedPerHour.StdDev()),
			fmt.Sprintf("%.1f±%.1f", p.VDRPerHour.Mean(), p.VDRPerHour.StdDev()),
			fmt.Sprintf("%.1f±%.1f", p.ImprovementPct.Mean(), p.ImprovementPct.StdDev()),
		)
	}
	return fmt.Sprintf("Figure 8 replicated over %d seeds (geometric mean %v)\n%s",
		points[0].Seeds, mean, tbl.String())
}
