package experiment

import "testing"

// TestScaleSweep100x pins the acceptance bar for the timing-wheel
// calendar: a 100x quick-geometry point — 5000 disks, 4000 objects,
// 2000 stations — completes even under the race detector (this test
// deliberately has no -short skip; scripts/ci.sh runs it with -race).
func TestScaleSweep100x(t *testing.T) {
	p, err := RunScalePoint(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.D != 5000 || p.Stations != 2000 {
		t.Fatalf("100x geometry is D=%d stations=%d, want 5000/2000", p.D, p.Stations)
	}
	if p.Displays == 0 {
		t.Fatal("100x run completed no displays; the model is not exercising the calendar")
	}
	if p.IntervalsSec <= 0 {
		t.Fatalf("nonpositive simulation rate %v", p.IntervalsSec)
	}
	t.Logf("100x: %d displays, %.2fs wall, %.0f intervals/s", p.Displays, p.WallSeconds, p.IntervalsSec)
}

// TestScaleSweepTrajectory checks the multi-factor sweep plumbing at
// small factors: every point runs, in order, with growing geometry.
func TestScaleSweepTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory sweep is not short")
	}
	pts, err := ScaleSweep([]int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, f := range []int{1, 2, 4} {
		if pts[i].Factor != f || pts[i].D != 50*f {
			t.Fatalf("point %d is factor=%d D=%d, want factor=%d D=%d", i, pts[i].Factor, pts[i].D, f, 50*f)
		}
	}
}
