package experiment

import (
	"reflect"
	"testing"
)

// TestScaleSweep100x pins the acceptance bar for the timing-wheel
// calendar: a 100x quick-geometry point — 5000 disks, 4000 objects,
// 2000 stations — completes even under the race detector (this test
// deliberately has no -short skip; scripts/ci.sh runs it with -race).
func TestScaleSweep100x(t *testing.T) {
	p, err := RunScalePoint(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.D != 5000 || p.Stations != 2000 {
		t.Fatalf("100x geometry is D=%d stations=%d, want 5000/2000", p.D, p.Stations)
	}
	if p.Displays == 0 {
		t.Fatal("100x run completed no displays; the model is not exercising the calendar")
	}
	if p.IntervalsSec <= 0 {
		t.Fatalf("nonpositive simulation rate %v", p.IntervalsSec)
	}
	t.Logf("100x: %d displays, %.2fs wall, %.0f intervals/s", p.Displays, p.WallSeconds, p.IntervalsSec)
}

// TestScaleSweepTrajectory checks the multi-factor sweep plumbing at
// small factors: every point runs, in order, with growing geometry.
func TestScaleSweepTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory sweep is not short")
	}
	pts, err := ScaleSweep([]int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, f := range []int{1, 2, 4} {
		if pts[i].Factor != f || pts[i].D != 50*f {
			t.Fatalf("point %d is factor=%d D=%d, want factor=%d D=%d", i, pts[i].Factor, pts[i].D, f, 50*f)
		}
	}
}

// TestScaleSweep1000xGeometry pins the 1000x point's shape without
// paying for the run: 50,000 disks and 20,000 stations, the ROADMAP
// scale ceiling.  The run itself is exercised by cmd/bench (and
// TestScaleSweepWorkers at 10x below).
func TestScaleSweep1000xGeometry(t *testing.T) {
	cfg := ScaleConfig(1000, 1)
	if cfg.D != 50000 || cfg.Stations != 20000 || cfg.Objects != 40000 {
		t.Fatalf("1000x geometry is D=%d stations=%d objects=%d, want 50000/20000/40000",
			cfg.D, cfg.Stations, cfg.Objects)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("1000x config does not validate: %v", err)
	}
}

// TestScaleSweepWorkers runs one 10x point sequentially and once with
// the sharded multi-worker engine: the simulation outcome (displays)
// must be identical — workers change wall-clock, never the science —
// and the execution metadata must be recorded on the point.
func TestScaleSweepWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("worker comparison is not short")
	}
	seq, err := RunScalePoint(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunScalePointOpts(10, 1, ScaleOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Displays != par.Displays {
		t.Fatalf("worker count changed the simulation: sequential %d displays, workers=4 %d displays",
			seq.Displays, par.Displays)
	}
	if par.Workers != 4 || par.Shards != 16 {
		t.Fatalf("point metadata is workers=%d shards=%d, want 4/16 (Shards defaults to 4×Workers)",
			par.Workers, par.Shards)
	}
	if seq.Workers != 0 || seq.Shards != 0 {
		t.Fatalf("sequential point metadata is workers=%d shards=%d, want 0/0", seq.Workers, seq.Shards)
	}
	if seq.NsPerDisplay <= 0 || par.NsPerDisplay <= 0 {
		t.Fatalf("ns/display not recorded: seq %v, par %v", seq.NsPerDisplay, par.NsPerDisplay)
	}
}

// TestScaleSweepParallelMatchesSequential checks the pooled
// multi-factor sweep returns the same simulation results as running
// the points one by one (wall-clock fields aside).
func TestScaleSweepParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep comparison is not short")
	}
	factors := []int{1, 2, 3, 4}
	pooled, err := ScaleSweep(factors, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range factors {
		p, err := RunScalePoint(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, want := pooled[i], p
		got.WallSeconds, want.WallSeconds = 0, 0
		got.IntervalsSec, want.IntervalsSec = 0, 0
		got.NsPerDisplay, want.NsPerDisplay = 0, 0
		got.HeapAllocBytes, want.HeapAllocBytes = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pooled point %d diverged:\n  pooled:     %+v\n  sequential: %+v", i, got, want)
		}
	}
}
