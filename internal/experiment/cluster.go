package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/mmsim/staggered/internal/cluster"
	"github.com/mmsim/staggered/internal/metrics"
)

// E20 measures the cluster layer (DESIGN.md §13): aggregate displays
// per hour as servers scale 1→8 under each dispatch policy, with a
// Zipf θ=1.1 hot head and offered load proportional to the fleet.
// Two claims are on trial: near-linear scaling (each member brings its
// own disks, tertiary, and stations, so leastloaded should deliver
// ~N× the single server) and the policy gap under skew (popularity
// routes every request to a replica holder chosen by Zipf rank at
// build time, so it avoids the materialization storms object-blind
// policies trigger on the cold tail).

// E20Servers is the fleet-size trajectory of the sweep.
var E20Servers = []int{1, 2, 4, 8}

// E20ArrivalsPerServer is the offered load each member adds to the
// cluster-wide Poisson stream: roughly 2× a quick-scale server's
// display ceiling, so every point runs saturated and throughput
// measures capacity, not demand.
const E20ArrivalsPerServer = 4000.0

// E20ZipfTheta is the skew of the shared object draw.
const E20ZipfTheta = 1.1

// ClusterPoint is one E20 measurement: one fleet size under one
// dispatch policy.
type ClusterPoint struct {
	Servers int     `json:"servers"`
	Policy  string  `json:"policy"`
	PerHour float64 `json:"displays_per_hour"`
	// ScaleVsOne is PerHour over the same policy's 1-server PerHour.
	ScaleVsOne float64 `json:"scale_vs_one,omitempty"`
	// Materializations counts tertiary stagings across the fleet in
	// the window — the cost object-blind dispatch pays on the cold
	// tail.
	Materializations int `json:"materializations"`
	// Rejected counts arrivals refused for want of an idle station.
	Rejected int `json:"rejected"`
	// NoHolder counts popularity dispatches that found no holder.
	NoHolder int `json:"no_holder,omitempty"`
}

// E20Config builds the cluster configuration of one E20 point: quick
// per-server geometry, 64 stations per member, and a cluster-wide
// offered load of E20ArrivalsPerServer per member.
func E20Config(servers int, policy string, seed uint64) cluster.Config {
	base := BaseConfig(Quick, 64, 20, seed)
	base.ZipfSkew = E20ZipfTheta
	base.ArrivalsPerHour = E20ArrivalsPerServer * float64(servers)
	return cluster.Config{
		Servers:   servers,
		Technique: "striped",
		Dispatch:  policy,
		Base:      base,
	}
}

// RunE20Point executes one fleet-size × policy measurement.
func RunE20Point(servers int, policy string, seed uint64) (ClusterPoint, error) {
	sim, err := cluster.New(E20Config(servers, policy, seed))
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("e20 %d×%s: %w", servers, policy, err)
	}
	res, err := sim.Run()
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("e20 %d×%s: %w", servers, policy, err)
	}
	return ClusterPoint{
		Servers:          servers,
		Policy:           policy,
		PerHour:          res.Aggregate.Throughput(),
		Materializations: res.Aggregate.Materializa,
		Rejected:         res.Aggregate.OpenRejected,
		NoHolder:         res.NoHolder,
	}, nil
}

// E20 runs the full servers × policy grid.
func E20(seed uint64) ([]ClusterPoint, error) {
	return E20Grid(E20Servers, cluster.Policies(), seed)
}

// E20Grid runs a custom servers × policies grid and fills in each
// point's scaling factor against the same policy's first fleet size.
// Points run concurrently on a GOMAXPROCS pool (the simulations are
// deterministic regardless), returned in (policy, servers) order.
func E20Grid(servers []int, policies []string, seed uint64) ([]ClusterPoint, error) {
	type job struct{ servers, idx int }
	points := make([]ClusterPoint, len(policies)*len(servers))
	jobs := make([]job, 0, len(points))
	for pi := range policies {
		for si := range servers {
			jobs = append(jobs, job{servers: servers[si], idx: pi*len(servers) + si})
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				p, err := RunE20Point(j.servers, policies[j.idx/len(servers)], seed)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				points[j.idx] = p
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for i := range points {
		base := points[i-i%len(servers)] // the policy's smallest-fleet point
		if base.PerHour > 0 {
			points[i].ScaleVsOne = points[i].PerHour / base.PerHour
		}
	}
	return points, nil
}

// RenderE20 formats the grid as the EXPERIMENTS.md E20 table.
func RenderE20(points []ClusterPoint) string {
	return "E20: cluster scaling, displays/hour by fleet size and dispatch policy (Zipf θ=1.1)\n" +
		e20Table(points).String()
}

// E20CSV formats the grid as machine-readable CSV.
func E20CSV(points []ClusterPoint) string { return e20Table(points).CSV() }

func e20Table(points []ClusterPoint) *metrics.Table {
	tbl := &metrics.Table{Header: []string{
		"servers", "policy", "displays_per_hour", "scale_vs_one", "materializations", "rejected", "no_holder",
	}}
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%d", p.Servers),
			p.Policy,
			fmt.Sprintf("%.1f", p.PerHour),
			fmt.Sprintf("%.2fx", p.ScaleVsOne),
			fmt.Sprintf("%d", p.Materializations),
			fmt.Sprintf("%d", p.Rejected),
			fmt.Sprintf("%d", p.NoHolder),
		)
	}
	return tbl
}
