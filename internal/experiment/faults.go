package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/mmsim/staggered/internal/analytic"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
)

// E18 — surviving bandwidth under a single disk failure (DESIGN.md
// §10, EXPERIMENTS.md E18).  The availability analysis predicts that
// after one disk fails, the fraction of admission requests that can
// still be served is (D − footprint)/D where footprint is
// analytic.UniqueDisksUsed: an object is unplayable iff the failed
// disk is in its stride orbit, and every object of the single-media
// database has the same orbit size.  The experiment measures the same
// quantity from the simulator: for each stride it fails every disk
// position in turn, runs the degraded farm, and averages the admitted
// fraction 1 − rejected/requests over the D positions.  Averaging
// over all positions makes the comparison exact for ANY popularity
// distribution — the double count Σ_f Σ_obj p(obj)·[f ∈ orbit(obj)]
// collapses to footprint/D because orbit size is start-invariant.

// E18Strides are the compared strides on the E18 geometry (D = 50,
// M = 5): the paper's extremes k = 1 and k = D plus simple striping
// k = M.
func E18Strides() []int { return []int{1, 5, 50} }

// e18Config is the E18 farm: the quick geometry with triple the disk
// capacity so the whole catalog preloads — rejections then measure
// availability alone, with no staging traffic mixed in.
func e18Config(k int, seed uint64) sched.Config {
	return sched.Config{
		D:                 50,
		K:                 k,
		CapacityFragments: 150,
		Objects:           40,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          16,
		DistMean:          43.5,
		Seed:              seed,
		WarmupIntervals:   0,
		MeasureIntervals:  500,
		PreloadTop:        40,
		PlaceRetryLimit:   sched.DefaultPlaceRetryLimit,
	}
}

// E18Point is one row of the E18 comparison: simulated vs analytic
// surviving admission fraction for one stride under a single disk
// failure.
type E18Point struct {
	K         int     // stride
	Footprint int     // analytic.UniqueDisksUsed(D, K, M, N)
	Analytic  float64 // analytic.SurvivingBandwidthFraction, 1 failure
	Simulated float64 // mean over failure positions of 1 - rejected/requests
}

// E18 runs the availability experiment: for each stride, one degraded
// run per failed-disk position (the failure hits at interval 0 and is
// never repaired), averaged into a simulated surviving fraction.
// Runs execute on a GOMAXPROCS-sized pool; results are deterministic
// per seed.
func E18(seed uint64) ([]E18Point, error) {
	strides := E18Strides()
	points := make([]E18Point, len(strides))
	base := e18Config(1, seed)
	type jobKey struct{ ki, disk int }
	fractions := make([][]float64, len(strides))
	jobs := make(chan jobKey, len(strides)*base.D)
	for i, k := range strides {
		fractions[i] = make([]float64, base.D)
		points[i] = E18Point{
			K:         k,
			Footprint: analytic.UniqueDisksUsed(base.D, k, base.M, base.Subobjects),
			Analytic:  analytic.SurvivingBandwidthFraction(base.D, k, base.M, base.Subobjects, 1),
		}
		for f := 0; f < base.D; f++ {
			jobs <- jobKey{ki: i, disk: f}
		}
	}
	close(jobs)

	workers := runtime.GOMAXPROCS(0)
	if n := cap(jobs); workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := e18Config(strides[j.ki], seed)
				cfg.Faults = fault.NewPlan().FailDisk(j.disk, 0)
				e, _, err := sched.NewEngineFor(TechStaggered, cfg, cfg.K)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("e18 k=%d disk %d: %w", cfg.K, j.disk, err)
					}
					mu.Unlock()
					continue
				}
				res := e.Run()
				surviving := 0.0
				if res.Requests > 0 {
					surviving = 1 - float64(res.RejectedDegraded)/float64(res.Requests)
				}
				// Each job owns one element; no write overlaps.
				fractions[j.ki][j.disk] = surviving
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range points {
		sum := 0.0
		for _, v := range fractions[i] {
			sum += v
		}
		points[i].Simulated = sum / float64(len(fractions[i]))
	}
	return points, nil
}

// E18Render formats the comparison as a text table.
func E18Render(points []E18Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E18: surviving admission fraction after one disk failure (D=50, M=5)\n")
	fmt.Fprintf(&b, "%7s %10s %10s %10s %8s\n", "k", "footprint", "analytic", "simulated", "delta")
	for _, p := range points {
		fmt.Fprintf(&b, "%7d %10d %10.4f %10.4f %8.4f\n",
			p.K, p.Footprint, p.Analytic, p.Simulated, p.Simulated-p.Analytic)
	}
	return b.String()
}
