package experiment

import (
	"testing"
)

// TestE20ClusterScaling runs the full E20 grid and pins the two
// claims the cluster layer exists to demonstrate: aggregate
// displays/hour scales ≥ 3.5x from 1 to 4 servers under leastloaded,
// and under Zipf θ=1.1 the popularity policy beats object-blind
// roundrobin at every multi-server fleet size.
func TestE20ClusterScaling(t *testing.T) {
	points, err := E20(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderE20(points))

	byKey := make(map[string]ClusterPoint, len(points))
	for _, p := range points {
		byKey[key(p.Servers, p.Policy)] = p
		if p.PerHour <= 0 {
			t.Fatalf("%d×%s delivered no throughput", p.Servers, p.Policy)
		}
	}

	ll4 := byKey[key(4, "leastloaded")]
	if ll4.ScaleVsOne < 3.5 {
		t.Errorf("leastloaded scaled %.2fx from 1 to 4 servers, want ≥ 3.5x", ll4.ScaleVsOne)
	}
	for _, n := range E20Servers[1:] {
		rr, pop := byKey[key(n, "roundrobin")], byKey[key(n, "popularity")]
		if pop.PerHour <= rr.PerHour {
			t.Errorf("%d servers: popularity %.1f/hr does not beat roundrobin %.1f/hr",
				n, pop.PerHour, rr.PerHour)
		}
	}
}

func key(servers int, policy string) string {
	return policy + string(rune('0'+servers))
}
