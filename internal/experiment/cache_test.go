package experiment

import "testing"

// TestE19BeatsDiskCeiling pins the tentpole claim: on a Zipf(0.7)
// open workload, at least one cached configuration must deliver more
// displays/hour than the pure-disk baseline — followers ride existing
// streams and prefixes absorb startup, so throughput escapes the D/M
// stream ceiling.
func TestE19BeatsDiskCeiling(t *testing.T) {
	baseline, err := E19Run(0.7, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := E19Run(0.7, 1024, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.DisplaysPerHour <= baseline.DisplaysPerHour {
		t.Errorf("cached %0.1f/hour did not beat disk-only %0.1f/hour",
			cached.DisplaysPerHour, baseline.DisplaysPerHour)
	}
	if cached.HitRate <= 0 {
		t.Error("cached run reports zero hit rate")
	}
	if cached.StartupMeanSeconds >= baseline.StartupMeanSeconds {
		t.Errorf("cached startup %0.1fs not below disk-only %0.1fs",
			cached.StartupMeanSeconds, baseline.StartupMeanSeconds)
	}
	if baseline.ServedFromCache != 0 || baseline.CacheHitBytes != 0 {
		t.Errorf("disk-only baseline touched the cache: %+v", baseline)
	}
}

// TestE19Determinism: same seed, same sweep cell, same row.
func TestE19Determinism(t *testing.T) {
	a, err := E19Run(1.1, 256, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E19Run(1.1, 256, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("E19 cell not deterministic:\n  %+v\n  %+v", a, b)
	}
}
