package experiment

import (
	"strings"
	"testing"
)

func TestRunReplicatedValidation(t *testing.T) {
	if _, err := RunReplicated(Quick, 10, []int{4}, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// TestSeedStability is the robustness check behind the headline
// claim: across independent seeds, simple striping beats virtual data
// replication at high load in every replication, and the spread is
// small relative to the mean.
func TestSeedStability(t *testing.T) {
	pts, err := RunReplicated(Quick, 10, []int{32}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Seeds != 3 {
		t.Fatalf("aggregate shape wrong: %+v", pts)
	}
	p := pts[0]
	if p.ImprovementPct.Min() <= 0 {
		t.Fatalf("a seed saw striping lose: improvements %v..%v",
			p.ImprovementPct.Min(), p.ImprovementPct.Max())
	}
	if cv := p.StripedPerHour.StdDev() / p.StripedPerHour.Mean(); cv > 0.15 {
		t.Fatalf("striping throughput unstable across seeds: cv=%v", cv)
	}
}

func TestRenderReplicated(t *testing.T) {
	pts, err := RunReplicated(Quick, 20, []int{4, 16}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := RenderReplicated(20, pts)
	for _, want := range []string{"2 seeds", "stations", "±"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
