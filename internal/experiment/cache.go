package experiment

import (
	"fmt"
	"strings"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/sched"
)

// E19 — displays/hour and startup latency vs cache size (DESIGN.md
// §12, EXPERIMENTS.md E19).  The pure-disk Figure 8 ceiling of the
// quick geometry is D/M = 10 concurrent displays ≈ 1984 displays/hour
// regardless of workload: every display burns M disk streams.  A
// Zipf-skewed open arrival stream concentrates requests on a hot head,
// so a prefix cache plus multicast batching serves most startups from
// RAM and rides followers on in-flight streams — throughput then
// scales with demand, not disk bandwidth.  The sweep crosses cache
// budget × Zipf skew × batch window; the (budget 0, window 0) rows are
// the disk-only baseline the others must beat.

// E19Skews are the compared Zipf skew parameters: the classic VoD
// value 0.7 and a sharper 1.1 head.
func E19Skews() []float64 { return []float64{0.7, 1.1} }

// E19BudgetsMB is the swept cache budget axis (0 = no prefix cache).
func E19BudgetsMB() []int { return []int{0, 64, 256, 1024} }

// E19Windows is the swept batch window axis in intervals (0 = no
// multicast batching).
func E19Windows() []int { return []int{0, 8, 32} }

// e19ArrivalsPerHour overdrives the quick geometry's ≈1984/hour disk
// ceiling threefold, so the baseline saturates and the cached runs
// have demand to convert.
const e19ArrivalsPerHour = 6000

// E19Point is one cell of the sweep.
type E19Point struct {
	Skew            float64 `json:"zipf_skew"`
	BudgetMB        int     `json:"cache_mb"`
	WindowIntervals int     `json:"batch_window"`

	DisplaysPerHour    float64 `json:"displays_per_hour"`
	StartupMeanSeconds float64 `json:"startup_mean_seconds"`
	HitRate            float64 `json:"cache_hit_rate"`

	Displays         int   `json:"displays"`
	ServedFromCache  int   `json:"served_from_cache"`
	BatchedFollowers int   `json:"batched_followers"`
	CacheHitBytes    int64 `json:"cache_hit_bytes"`
	OpenRejected     int   `json:"open_rejected"`
}

// E19Run executes one cell: the quick geometry driven by an open
// Zipf(skew) Poisson stream, with the memory tier sized by budgetMB
// and window (both 0 = disk-only baseline).  Starvation during the
// overdriven warm-up is tolerated — saturation is the point here, so
// the row reports whatever the farm actually delivered.
func E19Run(skew float64, budgetMB, window int, seed uint64) (E19Point, error) {
	cfg := BaseConfig(Quick, 256, 20, seed)
	cfg.ZipfSkew = skew
	cfg.ArrivalsPerHour = e19ArrivalsPerHour
	cfg.EvictionPressure = true
	if budgetMB > 0 || window > 0 {
		cfg.Cache = &cache.Spec{
			BudgetBytes: int64(budgetMB) << 20,
			BatchWindow: window,
		}
	}
	e, err := sched.NewStriped(cfg)
	if err != nil {
		return E19Point{}, fmt.Errorf("e19 skew=%v mb=%d w=%d: %w", skew, budgetMB, window, err)
	}
	res := e.Run()
	return E19Point{
		Skew:            skew,
		BudgetMB:        budgetMB,
		WindowIntervals: window,

		DisplaysPerHour:    res.Throughput(),
		StartupMeanSeconds: res.Latency.Mean(),
		HitRate:            res.CacheHitRate(),

		Displays:         res.Displays,
		ServedFromCache:  res.ServedFromCache,
		BatchedFollowers: res.BatchedFollowers,
		CacheHitBytes:    res.CacheHitBytes,
		OpenRejected:     res.OpenRejected,
	}, nil
}

// E19 runs the full budget × skew × window sweep sequentially (24
// quick runs; deterministic per seed).
func E19(seed uint64) ([]E19Point, error) {
	var points []E19Point
	for _, skew := range E19Skews() {
		for _, mb := range E19BudgetsMB() {
			for _, w := range E19Windows() {
				p, err := E19Run(skew, mb, w, seed)
				if err != nil {
					return nil, err
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

// E19Render formats the sweep as a text table.
func E19Render(points []E19Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E19: displays/hour and startup latency vs cache size (quick geometry, %d arrivals/hour, disk ceiling ~1984/hour)\n",
		e19ArrivalsPerHour)
	fmt.Fprintf(&b, "%6s %9s %7s %12s %10s %8s %10s %10s %9s\n",
		"skew", "cache_mb", "window", "per_hour", "startup_s", "hitrate", "followers", "cache_gb", "rejected")
	for _, p := range points {
		fmt.Fprintf(&b, "%6.1f %9d %7d %12.1f %10.3f %8.3f %10d %10.2f %9d\n",
			p.Skew, p.BudgetMB, p.WindowIntervals, p.DisplaysPerHour,
			p.StartupMeanSeconds, p.HitRate, p.BatchedFollowers,
			float64(p.CacheHitBytes)/(1<<30), p.OpenRejected)
	}
	return b.String()
}
