package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/mmsim/staggered/internal/cluster"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/sched"
)

// E21 measures server failover (DESIGN.md §14): a 4-server cluster
// loses one member halfway through the measurement window and keeps
// serving.  The recovery curve (Config.SampleIntervals) yields two
// throughput rates — the steady state before the kill and the steady
// state the survivors settle into — and their ratio is the headline:
// with the offered load below the survivors' aggregate ceiling,
// leastloaded recovers ≥ 80% of the 4-member rate on 3 members.  The
// popularity points sweep Config.ReplicaDepth, the survivability knob:
// at depth 1 most of the cold catalog was single-homed on the victim,
// so every reference to it falls back through NoHolder and triggers a
// materialization; deeper ladders keep the catalog multi-homed and the
// replica-healing pass has less to re-create.

// E21Servers is the fleet size; E21Victim is the member the plan kills.
const (
	E21Servers = 4
	E21Victim  = 1
)

// E21ArrivalsPerServer is the offered load each member adds.  Unlike
// E20 this is deliberately below a quick-scale server's display
// ceiling: recovery is only observable when the survivors have the
// headroom to absorb the victim's share.
const E21ArrivalsPerServer = 1500.0

// E21HealBudget is the replica-healing budget per healing window.
const E21HealBudget = 2

// E21SampleIntervals is the recovery-curve sampling cadence.
const E21SampleIntervals = 150

// FailoverPoint is one E21 measurement: one dispatch policy at one
// replica depth, with one member killed mid-window.
type FailoverPoint struct {
	Policy string `json:"policy"`
	Depth  int    `json:"replica_depth"`
	// PreKillPerHour and PostKillPerHour are the cluster throughput
	// rates before the kill and after the survivors settle, from the
	// recovery curve.
	PreKillPerHour  float64 `json:"pre_kill_per_hour"`
	PostKillPerHour float64 `json:"post_kill_per_hour"`
	// Recovery is PostKillPerHour over PreKillPerHour.
	Recovery float64 `json:"recovery"`
	// FailedOver counts dispatches re-routed off the dead member.
	FailedOver int `json:"failed_over"`
	// Orphaned / ReAdmitted / Dropped are the kill-drain conservation
	// counters: Orphaned == ReAdmitted + Dropped always.
	Orphaned   int `json:"orphaned"`
	ReAdmitted int `json:"readmitted"`
	Dropped    int `json:"dropped"`
	// Lost counts fresh arrivals that found every member dead (0 here —
	// three members always survive).
	Lost int `json:"lost"`
	// NoHolder counts popularity fallbacks (no live holder).
	NoHolder int `json:"no_holder,omitempty"`
	// Healed and RedistributeSeconds summarize the healing pass.
	Healed              int     `json:"healed"`
	RedistributeSeconds float64 `json:"redistribute_seconds"`
}

// e21Points is the policy × depth grid: leastloaded as the
// object-blind baseline, popularity across the replica-depth ladder.
var e21Points = []struct {
	policy string
	depth  int
}{
	{"leastloaded", 1},
	{"popularity", 1},
	{"popularity", 2},
	{"popularity", 4},
}

// e21KillAt returns the kill interval: halfway into the measurement
// window.
func e21KillAt(base sched.Config) int {
	return base.WarmupIntervals + base.MeasureIntervals/2
}

// E21Config builds one E21 point: E20's quick per-server geometry and
// Zipf skew, a sub-saturation offered load, a one-shot kill of member
// E21Victim halfway through the window, budgeted replica healing, and
// the recovery-curve sampler.
func E21Config(policy string, depth int, seed uint64) cluster.Config {
	base := BaseConfig(Quick, 64, 20, seed)
	base.ZipfSkew = E20ZipfTheta
	base.ArrivalsPerHour = E21ArrivalsPerServer * E21Servers
	return cluster.Config{
		Servers:         E21Servers,
		Technique:       "striped",
		Dispatch:        policy,
		Base:            base,
		ServerPlan:      fault.NewPlan().FailServer(E21Victim, e21KillAt(base)),
		HealBudget:      E21HealBudget,
		ReplicaDepth:    depth,
		SampleIntervals: E21SampleIntervals,
	}
}

// RunE21Point executes one policy × depth measurement.
func RunE21Point(policy string, depth int, seed uint64) (FailoverPoint, error) {
	cfg := E21Config(policy, depth, seed)
	sim, err := cluster.New(cfg)
	if err != nil {
		return FailoverPoint{}, fmt.Errorf("e21 %s×d%d: %w", policy, depth, err)
	}
	res, err := sim.Run()
	if err != nil {
		return FailoverPoint{}, fmt.Errorf("e21 %s×d%d: %w", policy, depth, err)
	}
	dt := cfg.Base.IntervalSeconds()
	warmS := float64(cfg.Base.WarmupIntervals) * dt
	killS := float64(e21KillAt(cfg.Base)) * dt
	endS := float64(cfg.Base.WarmupIntervals+cfg.Base.MeasureIntervals) * dt
	// Pre-kill rate over the whole live window; post-kill rate over the
	// second half of the outage, past the re-admission transient.
	pre := sampleRate(res.Samples, warmS, killS)
	post := sampleRate(res.Samples, killS+(endS-killS)/2, endS)
	p := FailoverPoint{
		Policy:              policy,
		Depth:               depth,
		PreKillPerHour:      pre * 3600,
		PostKillPerHour:     post * 3600,
		FailedOver:          res.FailedOver,
		Orphaned:            res.OrphanedRequests,
		ReAdmitted:          res.ReAdmitted,
		Dropped:             res.ReAdmitDropped,
		Lost:                res.LostArrivals,
		NoHolder:            res.NoHolder,
		Healed:              res.HealedReplicas,
		RedistributeSeconds: res.RedistributeSeconds,
	}
	if pre > 0 {
		p.Recovery = post / pre
	}
	return p, nil
}

// sampleRate returns the displays-per-second rate a recovery curve
// shows across the sample window [t0, t1] — the cumulative count at
// the last sample in the window minus the count at the first, over the
// elapsed time.
func sampleRate(samples []cluster.Sample, t0, t1 float64) float64 {
	first, last := -1, -1
	for i, s := range samples {
		if s.Seconds < t0 || s.Seconds > t1 {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	if first < 0 || last <= first {
		return 0
	}
	ds := samples[last].Displays - samples[first].Displays
	span := samples[last].Seconds - samples[first].Seconds
	return float64(ds) / span
}

// E21 runs the full policy × depth grid concurrently (the simulations
// are deterministic regardless), in e21Points order.
func E21(seed uint64) ([]FailoverPoint, error) {
	points := make([]FailoverPoint, len(e21Points))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(e21Points) {
		workers = len(e21Points)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(e21Points) {
					return
				}
				pt := e21Points[i]
				p, err := RunE21Point(pt.policy, pt.depth, seed)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				points[i] = p
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return points, nil
}

// RenderE21 formats the grid as the EXPERIMENTS.md E21 table.
func RenderE21(points []FailoverPoint) string {
	return fmt.Sprintf("E21: server failover, %d servers, member %d killed mid-window (Zipf θ=%.1f)\n",
		E21Servers, E21Victim, E20ZipfTheta) + e21Table(points).String()
}

// E21CSV formats the grid as machine-readable CSV.
func E21CSV(points []FailoverPoint) string { return e21Table(points).CSV() }

func e21Table(points []FailoverPoint) *metrics.Table {
	tbl := &metrics.Table{Header: []string{
		"policy", "depth", "pre_kill_per_hour", "post_kill_per_hour", "recovery",
		"failed_over", "orphaned", "readmitted", "dropped", "no_holder", "healed", "redistribute_s",
	}}
	for _, p := range points {
		tbl.AddRow(
			p.Policy,
			fmt.Sprintf("%d", p.Depth),
			fmt.Sprintf("%.1f", p.PreKillPerHour),
			fmt.Sprintf("%.1f", p.PostKillPerHour),
			fmt.Sprintf("%.2f", p.Recovery),
			fmt.Sprintf("%d", p.FailedOver),
			fmt.Sprintf("%d", p.Orphaned),
			fmt.Sprintf("%d", p.ReAdmitted),
			fmt.Sprintf("%d", p.Dropped),
			fmt.Sprintf("%d", p.NoHolder),
			fmt.Sprintf("%d", p.Healed),
			fmt.Sprintf("%.1f", p.RedistributeSeconds),
		)
	}
	return tbl
}
