package experiment

import (
	"math"
	"testing"

	"github.com/mmsim/staggered/internal/sched"
)

// TestE18MatchesAnalytic is the PR's acceptance gate: the simulated
// surviving admission fraction under a single disk failure must land
// within 10 percentage points of analytic.SurvivingBandwidthFraction
// for the stride extremes and simple striping.
func TestE18MatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("E18 runs 150 degraded simulations; not short")
	}
	points, err := E18(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(E18Strides()) {
		t.Fatalf("E18 returned %d points, want %d", len(points), len(E18Strides()))
	}
	want := map[int]float64{1: 0.32, 5: 0, 50: 0.9}
	for _, p := range points {
		if math.Abs(p.Analytic-want[p.K]) > 1e-9 {
			t.Errorf("k=%d analytic fraction %.4f, want %.4f", p.K, p.Analytic, want[p.K])
		}
		if d := math.Abs(p.Simulated - p.Analytic); d > 0.10 {
			t.Errorf("k=%d simulated %.4f vs analytic %.4f: delta %.4f exceeds 0.10",
				p.K, p.Simulated, p.Analytic, d)
		}
	}
	// k = D isolates failures best, k = M worst; the simulation must
	// reproduce the ordering, not just the magnitudes.
	if !(points[2].Simulated > points[0].Simulated && points[0].Simulated > points[1].Simulated) {
		t.Errorf("simulated fractions not ordered k=D > k=1 > k=M: %+v", points)
	}
}

// TestE18ConfigPreloadsCatalog pins the experiment's premise: on the
// E18 farm every object is resident, so rejections measure
// availability with no staging traffic mixed in.
func TestE18ConfigPreloadsCatalog(t *testing.T) {
	cfg := e18Config(5, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.DefaultPreload(); got < cfg.Objects {
		t.Fatalf("farm fits only %d of %d objects; E18 needs the whole catalog resident", got, cfg.Objects)
	}
	e, _, err := sched.NewEngineFor(TechStaggered, cfg, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.UniqueResidents != cfg.Objects {
		t.Errorf("clean run holds %d unique residents, want %d", res.UniqueResidents, cfg.Objects)
	}
	if res.Materializa != 0 {
		t.Errorf("clean run staged %d objects; catalog should be fully preloaded", res.Materializa)
	}
	if res.RejectedDegraded != 0 {
		t.Errorf("clean run rejected %d admissions", res.RejectedDegraded)
	}
}
