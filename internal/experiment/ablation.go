package experiment

import (
	"fmt"

	"github.com/mmsim/staggered/internal/analytic"
	"github.com/mmsim/staggered/internal/diskmodel"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
)

// StrideResult is one row of the §3.2.2 stride ablation.
type StrideResult struct {
	Label      string
	Stride     int
	Run        metrics.Run
	MeanWaitS  float64
	WorstWaitS float64
}

// StrideAblation contrasts the stride extremes of §3.2.2 on the same
// workload: k=1 (staggered, fragmented admission), k=M (simple
// striping), and k=D behaviour via the VDR engine (an object pinned
// to one cluster).  The paper's claim: k=D saves under 10% of disk
// bandwidth but makes a colliding request wait a full display time
// instead of about one service time.
func StrideAblation(scale Scale, stations int, mean float64, seed uint64) ([]StrideResult, error) {
	cfg := BaseConfig(scale, stations, mean, seed)
	// 20% capacity slack: with k=1 an object's footprint has ramps at
	// both ends, so an exact-fit farm cannot be packed fully and the
	// resulting extra misses would contaminate the wait-time
	// comparison the ablation is after.
	cfg.CapacityFragments += cfg.CapacityFragments / 5

	// Every row is built through the technique registry, so the
	// ablation measures exactly what `sweep -technique X` runs.
	rows := []struct {
		label  string
		key    string
		stride int
		report int // the stride column
	}{
		{"staggered k=1", TechStaggered, 1, 1},
		{fmt.Sprintf("simple k=M=%d", cfg.M), TechStriped, 0, cfg.M},
		{"pinned k=D (VDR)", TechVDR, 0, cfg.D},
	}
	var out []StrideResult
	for _, row := range rows {
		e, _, err := sched.NewEngineFor(row.key, cfg, row.stride)
		if err != nil {
			return nil, err
		}
		r := e.Run()
		out = append(out, StrideResult{
			Label: row.label, Stride: row.report, Run: r,
			MeanWaitS: r.Latency.Mean(), WorstWaitS: r.Latency.Max(),
		})
	}
	return out, nil
}

// FragmentAblation is E15: the §3.1 fragment-size tradeoff on the
// simulation drive, via the closed forms validated against the
// event-level model.
func FragmentAblation(maxCylinders int) ([]analytic.FragmentTradeoff, error) {
	return analytic.FragmentSweep(diskmodel.Simulation45GB, 200, maxCylinders)
}

// MixedMediaResult compares staggered striping against naive maximal
// physical clustering for a mixed-bandwidth database (E16).
type MixedMediaResult struct {
	Label string
	Run   metrics.Run
}

// MixedMediaAblation builds the §3.1/§3.2 mixed database — objects of
// 40, 60, and 80 mbps (M = 2, 3, 4 at 20 mbps disks) — and contrasts
// staggered striping (k=1, per-object degrees, fragmented admission)
// with the naive alternative the paper criticises: clusters sized for
// the largest media type, every display occupying M_max disks.
func MixedMediaAblation(stations int, mean float64, seed uint64) ([]MixedMediaResult, error) {
	base := sched.Config{
		D:                 48,
		K:                 1,
		CapacityFragments: 480,
		Objects:           48,
		Subobjects:        120,
		M:                 4,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          mean,
		Seed:              seed,
		WarmupIntervals:   600,
		MeasureIntervals:  3000,
	}
	// A third of the database at each bandwidth.
	degrees := make([]int, base.Objects)
	for i := range degrees {
		degrees[i] = 2 + i%3 // 40, 60, 80 mbps
	}

	staggered := base
	staggered.Degrees = degrees
	staggered.Fragmented = true
	staggered.Coalescing = true
	es, err := sched.NewStriped(staggered)
	if err != nil {
		return nil, err
	}
	rs := es.Run()

	// Naive: every object is treated as the largest media type —
	// clusters of M_max disks, occupying (and storing) M_max
	// fragments per subobject regardless of need.
	naive := base
	naive.K = base.M // physical clusters of M_max
	en, err := sched.NewStriped(naive)
	if err != nil {
		return nil, err
	}
	rn := en.Run()

	return []MixedMediaResult{
		{Label: "staggered striping (k=1, per-object M)", Run: rs},
		{Label: "physical clusters of M_max=4", Run: rn},
	}, nil
}

// TertiaryLayoutResult compares the §3.2.4 tape layouts.
type TertiaryLayoutResult struct {
	Layout              tertiary.TapeLayout
	MaterializeSeconds  float64
	MaterializeIntvls   int
	EffectiveBandwidth  float64 // bits/second delivered by the device
	WastedTimeFraction  float64 // head repositioning share
	ThroughputDisplays  float64 // displays/hour in a miss-heavy run
	TertiaryUtilization float64
}

// TertiaryLayoutAblation quantifies §3.2.4: a disk-matched tape
// streams at the device bandwidth, a sequential tape spends most of
// its time repositioning; in a miss-heavy workload the layout choice
// shows up directly as system throughput.
func TertiaryLayoutAblation(seed uint64) ([]TertiaryLayoutResult, error) {
	var out []TertiaryLayoutResult
	for _, layout := range []tertiary.TapeLayout{tertiary.DiskMatched, tertiary.Sequential} {
		cfg := BaseConfig(Quick, 8, 40, seed) // near-uniform: misses matter
		cfg.TapeLayout = layout
		cfg.MeasureIntervals = 6000
		secs := cfg.Tertiary.MaterializeSeconds(cfg.ObjectBits(), layout, cfg.IntervalSeconds())
		e, err := sched.NewStriped(cfg)
		if err != nil {
			return nil, err
		}
		r := e.Run()
		base := cfg.ObjectBits() / cfg.Tertiary.Bandwidth
		out = append(out, TertiaryLayoutResult{
			Layout:              layout,
			MaterializeSeconds:  secs,
			MaterializeIntvls:   cfg.MaterializeIntervals(),
			EffectiveBandwidth:  cfg.ObjectBits() / secs,
			WastedTimeFraction:  (secs - base) / secs,
			ThroughputDisplays:  r.Throughput(),
			TertiaryUtilization: r.TertiaryBusy,
		})
	}
	return out, nil
}
