// Package experiment reproduces the paper's evaluation (§4): the
// Figure 8 throughput curves, the Table 4 improvement matrix, and the
// ablations DESIGN.md calls out (stride extremes, fragment size,
// mixed media, tertiary tape layout).
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

// Scale selects the experiment fidelity.
type Scale int

const (
	// Full is the paper's Table 3 configuration: 1000 disks, 2000
	// objects, 13.4 simulated hours per run.
	Full Scale = iota
	// Quick is a proportionally reduced configuration for tests and
	// -short benchmarks: 50 disks, 40 objects, same structure.
	Quick
)

// BaseConfig returns the simulation configuration for one run at the
// given scale.
func BaseConfig(scale Scale, stations int, mean float64, seed uint64) sched.Config {
	if scale == Full {
		return sched.Table3Config(stations, mean, seed)
	}
	return sched.Config{
		D:                 50,
		K:                 5,
		CapacityFragments: 60,
		Objects:           40,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          mean,
		Seed:              seed,
		WarmupIntervals:   600,
		MeasureIntervals:  3000,
	}
}

// Point is one x-position of a Figure 8 graph: both techniques at the
// same station count.
type Point struct {
	Stations int
	Striped  metrics.Run
	VDR      metrics.Run
}

// Improvement returns the Table 4 quantity for this point.
func (p Point) Improvement() float64 { return metrics.Improvement(p.Striped, p.VDR) }

// Figure8 runs one graph of Figure 8: simple striping vs virtual data
// replication across the station sweep for one access distribution.
// Runs execute in parallel; results are deterministic per seed.
func Figure8(scale Scale, mean float64, stations []int, seed uint64) ([]Point, error) {
	if len(stations) == 0 {
		stations = workload.PaperStations
	}
	points := make([]Point, len(stations))
	errs := make([]error, len(stations))

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, st := range stations {
		wg.Add(1)
		go func(i, st int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := BaseConfig(scale, st, mean, seed)
			se, err := sched.NewStriped(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			rs := se.Run()
			ve, err := sched.NewVDR(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			rv := ve.Run()
			points[i] = Point{Stations: st, Striped: rs, VDR: rv}
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// Figure8Render formats one graph as text: throughput in displays per
// hour against the number of display stations.
func Figure8Render(mean float64, points []Point) string {
	striping := metrics.Series{Name: "simple striping", Points: map[int]float64{}}
	vdr := metrics.Series{Name: "virtual replication", Points: map[int]float64{}}
	for _, p := range points {
		striping.Points[p.Stations] = p.Striped.Throughput()
		vdr.Points[p.Stations] = p.VDR.Throughput()
	}
	title := fmt.Sprintf("Figure 8 (%s, geometric mean %v): throughput (displays/hour)",
		workload.MeanLabel(mean), mean)
	return metrics.RenderFigure(title, "stations", []metrics.Series{striping, vdr})
}

// Table4 builds the paper's Table 4 from the three Figure 8 graphs:
// percentage improvement in throughput of simple striping over
// virtual data replication at the reported station counts.
func Table4(byMean map[float64][]Point) *metrics.Table {
	rows := []int{16, 64, 128, 256}
	tbl := &metrics.Table{Header: []string{
		"# Display Stations", "10 (highly skewed)", "20 (skewed)", "43.5 (uniform)",
	}}
	for _, st := range rows {
		cells := []string{fmt.Sprintf("%d", st)}
		for _, mean := range workload.PaperMeans {
			cell := "-"
			for _, p := range byMean[mean] {
				if p.Stations == st {
					cell = fmt.Sprintf("%.2f%%", p.Improvement())
				}
			}
			cells = append(cells, cell)
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// RunAll runs the three distributions of Figure 8 and returns the
// per-mean points (the input to both the figure renderings and
// Table 4).
func RunAll(scale Scale, stations []int, seed uint64) (map[float64][]Point, error) {
	out := make(map[float64][]Point, len(workload.PaperMeans))
	for _, mean := range workload.PaperMeans {
		pts, err := Figure8(scale, mean, stations, seed)
		if err != nil {
			return nil, err
		}
		out[mean] = pts
	}
	return out, nil
}
