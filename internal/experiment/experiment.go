// Package experiment reproduces the paper's evaluation (§4): the
// Figure 8 throughput curves, the Table 4 improvement matrix, and the
// ablations DESIGN.md calls out (stride extremes, fragment size,
// mixed media, tertiary tape layout).
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

// Scale selects the experiment fidelity.
type Scale int

const (
	// Full is the paper's Table 3 configuration: 1000 disks, 2000
	// objects, 13.4 simulated hours per run.
	Full Scale = iota
	// Quick is a proportionally reduced configuration for tests and
	// -short benchmarks: 50 disks, 40 objects, same structure.
	Quick
)

// BaseConfig returns the simulation configuration for one run at the
// given scale.
func BaseConfig(scale Scale, stations int, mean float64, seed uint64) sched.Config {
	if scale == Full {
		return sched.Table3Config(stations, mean, seed)
	}
	return sched.Config{
		D:                 50,
		K:                 5,
		CapacityFragments: 60,
		Objects:           40,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          mean,
		Seed:              seed,
		WarmupIntervals:   600,
		MeasureIntervals:  3000,
	}
}

// Point is one x-position of a Figure 8 graph: both techniques at the
// same station count.
type Point struct {
	Stations int
	Striped  metrics.Run
	VDR      metrics.Run
}

// Improvement returns the Table 4 quantity for this point.
func (p Point) Improvement() float64 { return metrics.Improvement(p.Striped, p.VDR) }

// job is one engine run of one sweep point: the unit of work the
// pool schedules.  Splitting the two techniques of a point into
// separate jobs halves the critical path of a sweep — the striped and
// VDR runs of the same station count no longer serialize.
type job struct {
	mean    float64
	idx     int // index into the stations slice
	striped bool
}

// runSweep executes every (mean, station, engine) combination on a
// worker pool sized to GOMAXPROCS and assembles the per-mean point
// slices.  Each job writes its own field of its own point, so workers
// never contend and the result is independent of scheduling order:
// the output is deterministic per seed regardless of parallelism.
func runSweep(scale Scale, means []float64, stations []int, seed uint64) (map[float64][]Point, error) {
	if len(stations) == 0 {
		stations = workload.PaperStations
	}
	byMean := make(map[float64][]Point, len(means))
	jobs := make(chan job, 2*len(means)*len(stations))
	for _, mean := range means {
		pts := make([]Point, len(stations))
		for i, st := range stations {
			pts[i].Stations = st
		}
		byMean[mean] = pts
		for i := range stations {
			jobs <- job{mean: mean, idx: i, striped: true}
			jobs <- job{mean: mean, idx: i, striped: false}
		}
	}
	close(jobs)

	workers := runtime.GOMAXPROCS(0)
	if n := cap(jobs); workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := &byMean[j.mean][j.idx]
				cfg := BaseConfig(scale, p.Stations, j.mean, seed)
				var (
					run sched.Result
					err error
				)
				if j.striped {
					var e *sched.Striped
					if e, err = sched.NewStriped(cfg); err == nil {
						run = e.Run()
					}
				} else {
					var e *sched.VDR
					if e, err = sched.NewVDR(cfg); err == nil {
						run = e.Run()
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				// Striped and VDR of the same point are distinct
				// fields, so the two writes never overlap.
				if j.striped {
					p.Striped = run
				} else {
					p.VDR = run
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return byMean, nil
}

// Figure8 runs one graph of Figure 8: simple striping vs virtual data
// replication across the station sweep for one access distribution.
// Engine runs execute in parallel on a GOMAXPROCS-sized pool; results
// are deterministic per seed.
func Figure8(scale Scale, mean float64, stations []int, seed uint64) ([]Point, error) {
	byMean, err := runSweep(scale, []float64{mean}, stations, seed)
	if err != nil {
		return nil, err
	}
	return byMean[mean], nil
}

// Figure8Render formats one graph as text: throughput in displays per
// hour against the number of display stations.
func Figure8Render(mean float64, points []Point) string {
	striping := metrics.Series{Name: "simple striping", Points: map[int]float64{}}
	vdr := metrics.Series{Name: "virtual replication", Points: map[int]float64{}}
	for _, p := range points {
		striping.Points[p.Stations] = p.Striped.Throughput()
		vdr.Points[p.Stations] = p.VDR.Throughput()
	}
	title := fmt.Sprintf("Figure 8 (%s, geometric mean %v): throughput (displays/hour)",
		workload.MeanLabel(mean), mean)
	return metrics.RenderFigure(title, "stations", []metrics.Series{striping, vdr})
}

// Table4 builds the paper's Table 4 from the three Figure 8 graphs:
// percentage improvement in throughput of simple striping over
// virtual data replication at the reported station counts.
func Table4(byMean map[float64][]Point) *metrics.Table {
	rows := []int{16, 64, 128, 256}
	tbl := &metrics.Table{Header: []string{
		"# Display Stations", "10 (highly skewed)", "20 (skewed)", "43.5 (uniform)",
	}}
	for _, st := range rows {
		cells := []string{fmt.Sprintf("%d", st)}
		for _, mean := range workload.PaperMeans {
			cell := "-"
			for _, p := range byMean[mean] {
				if p.Stations == st {
					cell = fmt.Sprintf("%.2f%%", p.Improvement())
				}
			}
			cells = append(cells, cell)
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// RunAll runs the three distributions of Figure 8 and returns the
// per-mean points (the input to both the figure renderings and
// Table 4).  All three sweeps share one worker pool, so the runs of
// different distributions interleave instead of executing graph by
// graph.
func RunAll(scale Scale, stations []int, seed uint64) (map[float64][]Point, error) {
	return runSweep(scale, workload.PaperMeans, stations, seed)
}
