// Package experiment reproduces the paper's evaluation (§4): the
// Figure 8 throughput curves, the Table 4 improvement matrix, and the
// ablations DESIGN.md calls out (stride extremes, fragment size,
// mixed media, tertiary tape layout).
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/mmsim/staggered/internal/cache"
	"github.com/mmsim/staggered/internal/fault"
	"github.com/mmsim/staggered/internal/metrics"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/tertiary"
	"github.com/mmsim/staggered/internal/workload"
)

// Options extends a sweep beyond the paper's clean-room runs: a fault
// plan injected into every configuration, the eviction-pressure
// fallback for exact-fit farms, and the sharded intra-run execution
// knobs (DESIGN.md §11).  The zero value is the paper's setup.
type Options struct {
	Faults           *fault.Plan
	EvictionPressure bool
	// Workers and Shards turn on sharded intra-run execution for every
	// run of the sweep.  Results are byte-identical at any worker
	// count, so these only change wall-clock, never the science.
	Workers int
	Shards  int
	// Cache turns the memory tier on for every run; ZipfSkew and
	// ArrivalsPerHour reshape the workload (see sched.Config).
	Cache           *cache.Spec
	ZipfSkew        float64
	ArrivalsPerHour float64
}

// apply copies the options onto one run's configuration.
func (o *Options) apply(cfg *sched.Config) {
	if o == nil {
		return
	}
	cfg.Faults = o.Faults
	cfg.EvictionPressure = o.EvictionPressure
	cfg.Cache = o.Cache
	cfg.ZipfSkew = o.ZipfSkew
	cfg.ArrivalsPerHour = o.ArrivalsPerHour
	cfg.Workers = o.Workers
	cfg.Shards = o.Shards
	if o.Shards == 0 && o.Workers > 1 {
		// Same default ScaleOptions uses: enough shards that the
		// parallel phases have work to balance across the pool.
		cfg.Shards = 4 * o.Workers
	}
}

// Scale selects the experiment fidelity.
type Scale int

const (
	// Full is the paper's Table 3 configuration: 1000 disks, 2000
	// objects, 13.4 simulated hours per run.
	Full Scale = iota
	// Quick is a proportionally reduced configuration for tests and
	// -short benchmarks: 50 disks, 40 objects, same structure.
	Quick
)

// BaseConfig returns the simulation configuration for one run at the
// given scale.  Experiment runs opt into the bounded Place-retry cap:
// a configuration that cannot stage its catalog starves loudly (see
// sched.StarvationError) instead of silently livelocking the way the
// legacy zero-value configs do.
func BaseConfig(scale Scale, stations int, mean float64, seed uint64) sched.Config {
	if scale == Full {
		cfg := sched.Table3Config(stations, mean, seed)
		cfg.PlaceRetryLimit = sched.DefaultPlaceRetryLimit
		return cfg
	}
	return sched.Config{
		D:                 50,
		K:                 5,
		CapacityFragments: 60,
		Objects:           40,
		Subobjects:        30,
		M:                 5,
		BDisk:             20e6,
		FragmentBytes:     1512000,
		Tertiary:          tertiary.Table3,
		TapeLayout:        tertiary.DiskMatched,
		Stations:          stations,
		DistMean:          mean,
		Seed:              seed,
		WarmupIntervals:   600,
		MeasureIntervals:  3000,
		PlaceRetryLimit:   sched.DefaultPlaceRetryLimit,
	}
}

// Technique CLI keys, re-exported from the sched registry for sweep
// callers.
const (
	TechStriped   = "striped"
	TechStaggered = "staggered"
	TechVDR       = "vdr"
)

// TechSpec selects one registered technique for a sweep, optionally
// with a stride argument (0 means the technique default).
type TechSpec struct {
	Key    string
	Stride int
}

// Label is the stable identifier a sweep uses for this technique's
// column: the CLI key, stride-qualified when one is set.
func (s TechSpec) Label() string {
	if s.Stride > 0 {
		return fmt.Sprintf("%s(k=%d)", s.Key, s.Stride)
	}
	return s.Key
}

// DefaultTechniques is the paper's Figure 8 pair: simple striping vs
// the virtual-data-replication baseline.
func DefaultTechniques() []TechSpec {
	return []TechSpec{{Key: TechStriped}, {Key: TechVDR}}
}

// Point is one x-position of a Figure 8 graph: every swept technique
// at the same station count.  Techniques holds the sweep labels
// (TechSpec.Label) and Runs the corresponding results, index-aligned.
type Point struct {
	Stations   int
	Techniques []string
	Runs       []sched.Result
}

// Result returns the run labelled label and whether it is present.
func (p Point) Result(label string) (metrics.Run, bool) {
	for i, l := range p.Techniques {
		if l == label {
			return p.Runs[i], true
		}
	}
	return metrics.Run{}, false
}

// Striped returns the simple-striping run of this point (zero when
// the sweep did not include it).
func (p Point) Striped() metrics.Run {
	r, _ := p.Result(TechStriped)
	return r
}

// VDR returns the virtual-data-replication run of this point (zero
// when the sweep did not include it).
func (p Point) VDR() metrics.Run {
	r, _ := p.Result(TechVDR)
	return r
}

// Improvement returns the Table 4 quantity for this point: the
// throughput improvement of simple striping over the baseline.
func (p Point) Improvement() float64 { return metrics.Improvement(p.Striped(), p.VDR()) }

// job is one engine run of one sweep point: the unit of work the
// pool schedules.  Splitting the techniques of a point into separate
// jobs shortens the critical path of a sweep — the runs of the same
// station count no longer serialize.
type job struct {
	mean float64
	idx  int // index into the stations slice
	tech int // index into the technique specs
}

// runSweep executes every (mean, station, technique) combination on a
// worker pool sized to GOMAXPROCS and assembles the per-mean point
// slices.  Each job writes its own element of its own point's Runs
// slice, so workers never contend and the result is independent of
// scheduling order: the output is deterministic per seed regardless
// of parallelism.
func runSweep(scale Scale, means []float64, stations []int, seed uint64, specs []TechSpec, opts *Options) (map[float64][]Point, error) {
	if len(stations) == 0 {
		stations = workload.PaperStations
	}
	if len(specs) == 0 {
		specs = DefaultTechniques()
	}
	labels := make([]string, len(specs))
	for i, s := range specs {
		labels[i] = s.Label()
	}
	byMean := make(map[float64][]Point, len(means))
	jobs := make(chan job, len(specs)*len(means)*len(stations))
	for _, mean := range means {
		pts := make([]Point, len(stations))
		for i, st := range stations {
			pts[i].Stations = st
			pts[i].Techniques = labels
			pts[i].Runs = make([]sched.Result, len(specs))
		}
		byMean[mean] = pts
		for i := range stations {
			for t := range specs {
				jobs <- job{mean: mean, idx: i, tech: t}
			}
		}
	}
	close(jobs)

	workers := runtime.GOMAXPROCS(0)
	if n := cap(jobs); workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := &byMean[j.mean][j.idx]
				cfg := BaseConfig(scale, p.Stations, j.mean, seed)
				opts.apply(&cfg)
				spec := specs[j.tech]
				e, _, err := sched.NewEngineFor(spec.Key, cfg, spec.Stride)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				// Each technique of the same point is a distinct
				// slice element, so the writes never overlap.
				p.Runs[j.tech] = e.Run()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return byMean, nil
}

// Figure8 runs one graph of Figure 8: simple striping vs virtual data
// replication across the station sweep for one access distribution.
// Engine runs execute in parallel on a GOMAXPROCS-sized pool; results
// are deterministic per seed.
func Figure8(scale Scale, mean float64, stations []int, seed uint64) ([]Point, error) {
	return Figure8Techniques(scale, mean, stations, seed, nil)
}

// Figure8Techniques runs one Figure 8 graph for an arbitrary set of
// registered techniques (nil means the paper's default pair).
func Figure8Techniques(scale Scale, mean float64, stations []int, seed uint64, specs []TechSpec) ([]Point, error) {
	return Figure8TechniquesOpts(scale, mean, stations, seed, specs, nil)
}

// Figure8TechniquesOpts is Figure8Techniques with sweep options — the
// entry point cmd/sweep's -faults and -pressure flags use.
func Figure8TechniquesOpts(scale Scale, mean float64, stations []int, seed uint64, specs []TechSpec, opts *Options) ([]Point, error) {
	byMean, err := runSweep(scale, []float64{mean}, stations, seed, specs, opts)
	if err != nil {
		return nil, err
	}
	return byMean[mean], nil
}

// seriesName maps a sweep label to its figure-legend name: the
// paper's short names for the default pair, the engine-reported
// technique name (which carries the stride) for everything else.
func seriesName(label string, run metrics.Run) string {
	switch label {
	case TechStriped:
		return "simple striping"
	case TechVDR:
		return "virtual replication"
	}
	if run.Technique != "" {
		return run.Technique
	}
	return label
}

// Figure8Render formats one graph as text: throughput in displays per
// hour against the number of display stations, one series per swept
// technique.
func Figure8Render(mean float64, points []Point) string {
	var series []metrics.Series
	for _, p := range points {
		for i, label := range p.Techniques {
			name := seriesName(label, p.Runs[i])
			var s *metrics.Series
			for j := range series {
				if series[j].Name == name {
					s = &series[j]
					break
				}
			}
			if s == nil {
				series = append(series, metrics.Series{Name: name, Points: map[int]float64{}})
				s = &series[len(series)-1]
			}
			s.Points[p.Stations] = p.Runs[i].Throughput()
		}
	}
	title := fmt.Sprintf("Figure 8 (%s, geometric mean %v): throughput (displays/hour)",
		workload.MeanLabel(mean), mean)
	return metrics.RenderFigure(title, "stations", series)
}

// Table4 builds the paper's Table 4 from the three Figure 8 graphs:
// percentage improvement in throughput of simple striping over
// virtual data replication at the reported station counts.
func Table4(byMean map[float64][]Point) *metrics.Table {
	rows := []int{16, 64, 128, 256}
	tbl := &metrics.Table{Header: []string{
		"# Display Stations", "10 (highly skewed)", "20 (skewed)", "43.5 (uniform)",
	}}
	for _, st := range rows {
		cells := []string{fmt.Sprintf("%d", st)}
		for _, mean := range workload.PaperMeans {
			cell := "-"
			for _, p := range byMean[mean] {
				if p.Stations == st {
					cell = fmt.Sprintf("%.2f%%", p.Improvement())
				}
			}
			cells = append(cells, cell)
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// RunAll runs the three distributions of Figure 8 and returns the
// per-mean points (the input to both the figure renderings and
// Table 4).  All three sweeps share one worker pool, so the runs of
// different distributions interleave instead of executing graph by
// graph.
func RunAll(scale Scale, stations []int, seed uint64) (map[float64][]Point, error) {
	return runSweep(scale, workload.PaperMeans, stations, seed, nil, nil)
}

// RunAllTechniques is RunAll for an arbitrary set of registered
// techniques (nil means the paper's default pair).
func RunAllTechniques(scale Scale, stations []int, seed uint64, specs []TechSpec) (map[float64][]Point, error) {
	return runSweep(scale, workload.PaperMeans, stations, seed, specs, nil)
}

// Aggregate merges every run of a sweep's points into one Run
// (metrics.Run.Merge semantics: counters add, utilizations
// window-average) — the sweep-wide totals cmd/sweep reports from.
func Aggregate(points []Point) metrics.Run {
	var agg metrics.Run
	for _, p := range points {
		for _, r := range p.Runs {
			agg.Merge(r)
		}
	}
	return agg
}

// Starved returns the sweep-wide starved-materialization total — what
// cmd/sweep uses to warn loudly (on stderr) when a configuration
// livelocked at the Place retry cap instead of silently delivering
// zero throughput.
func Starved(points []Point) int {
	return Aggregate(points).StarvedMaterializations
}
