package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mmsim/staggered/internal/rng"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil, 10); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([][]int{{1}}, 0); err == nil {
		t.Error("zero catalog accepted")
	}
	if _, err := NewTrace([][]int{{}}, 10); err == nil {
		t.Error("empty station sequence accepted")
	}
	if _, err := NewTrace([][]int{{10}}, 10); err == nil {
		t.Error("out-of-range reference accepted")
	}
	if _, err := NewTrace([][]int{{-1}}, 10); err == nil {
		t.Error("negative reference accepted")
	}
}

func TestTraceDrawAndWrap(t *testing.T) {
	tr, err := NewTrace([][]int{{3, 1, 4}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 4, 3, 1} // wraps after exhaustion
	for i, w := range want {
		if got := tr.Draw(0); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	if tr.Remaining(0) != 0 {
		t.Fatalf("remaining = %d after wrap", tr.Remaining(0))
	}
}

func TestTraceRemaining(t *testing.T) {
	tr, err := NewTrace([][]int{{1, 2, 3, 4}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Remaining(0) != 4 {
		t.Fatalf("remaining = %d, want 4", tr.Remaining(0))
	}
	tr.Draw(0)
	if tr.Remaining(0) != 3 {
		t.Fatalf("remaining = %d, want 3", tr.Remaining(0))
	}
}

func TestParseTrace(t *testing.T) {
	src := "# comment\n3,1,4\n\n2, 7 ,2\n"
	tr, err := ParseTrace(strings.NewReader(src), 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stations() != 2 {
		t.Fatalf("stations = %d", tr.Stations())
	}
	if tr.Draw(0) != 3 || tr.Draw(1) != 2 {
		t.Fatal("parsed values wrong")
	}
	if _, err := ParseTrace(strings.NewReader("1,x,3"), 10); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseTrace(strings.NewReader("99"), 10); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestRecordAndReplay(t *testing.T) {
	g, err := NewGenerator(rng.NewSource(5), 100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(g, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the trace reproduces the generator's stream.
	g2, err := NewGenerator(rng.NewSource(5), 100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for s := 0; s < 3; s++ {
			if tr.Draw(s) != g2.Draw(s) {
				t.Fatalf("trace diverged from generator at draw %d station %d", i, s)
			}
		}
	}
	if _, err := Record(g, 0); err == nil {
		t.Error("zero-length record accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig, err := NewTrace([][]int{{3, 1, 4}, {2, 7}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Format(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Stations() != 2 {
		t.Fatalf("stations = %d", parsed.Stations())
	}
	for _, want := range []int{3, 1, 4} {
		if got := parsed.Draw(0); got != want {
			t.Fatalf("round trip draw = %d, want %d", got, want)
		}
	}
}
