package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace is a recorded reference string: per station, the sequence of
// object ids it will request.  Traces make experiments reproducible
// across implementations and let recorded production workloads drive
// the simulator in place of the synthetic geometric distribution.
type Trace struct {
	perStation [][]int
	cursors    []int
	objects    int
}

// NewTrace builds a trace for the given number of stations over a
// catalog of n objects; refs[s] is station s's reference sequence.
func NewTrace(refs [][]int, objects int) (*Trace, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("workload: trace needs at least one station")
	}
	if objects <= 0 {
		return nil, fmt.Errorf("workload: trace needs a positive catalog size")
	}
	for s, seq := range refs {
		if len(seq) == 0 {
			return nil, fmt.Errorf("workload: station %d has an empty reference sequence", s)
		}
		for i, id := range seq {
			if id < 0 || id >= objects {
				return nil, fmt.Errorf("workload: station %d ref %d: object %d out of range [0, %d)",
					s, i, id, objects)
			}
		}
	}
	t := &Trace{perStation: refs, cursors: make([]int, len(refs)), objects: objects}
	return t, nil
}

// ParseTrace reads a text trace: one line per station, comma-separated
// object ids.  Blank lines and lines starting with '#' are skipped.
func ParseTrace(r io.Reader, objects int) (*Trace, error) {
	var refs [][]int
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var seq []int
		for _, f := range strings.Split(text, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: %v", line, err)
			}
			seq = append(seq, id)
		}
		refs = append(refs, seq)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(refs, objects)
}

// Stations returns the number of stations in the trace.
func (t *Trace) Stations() int { return len(t.perStation) }

// Draw returns station s's next reference; exhausted stations wrap
// around to the start of their sequence (a closed system never stops
// issuing).
func (t *Trace) Draw(s int) int {
	seq := t.perStation[s]
	id := seq[t.cursors[s]%len(seq)]
	t.cursors[s]++
	return id
}

// Remaining returns how many unconsumed references station s has
// before wrapping.
func (t *Trace) Remaining(s int) int {
	if r := len(t.perStation[s]) - t.cursors[s]; r > 0 {
		return r
	}
	return 0
}

// Record captures the first n draws of each station of a Generator as
// a Trace, so a synthetic workload can be frozen and replayed.
func Record(g *Generator, n int) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need at least one reference per station")
	}
	refs := make([][]int, g.Stations())
	for s := range refs {
		seq := make([]int, n)
		for i := range seq {
			seq[i] = g.Draw(s)
		}
		refs[s] = seq
	}
	return NewTrace(refs, g.dist.Len())
}

// Format renders the trace in the ParseTrace text format.
func (t *Trace) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d stations over %d objects\n", len(t.perStation), t.objects)
	for _, seq := range t.perStation {
		for i, id := range seq {
			if i > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(id)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
