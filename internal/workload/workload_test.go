package workload

import (
	"testing"

	"github.com/mmsim/staggered/internal/rng"
)

func TestGeneratorValidation(t *testing.T) {
	src := rng.NewSource(1)
	if _, err := NewGenerator(src, 2000, 20, 0); err == nil {
		t.Error("zero stations accepted")
	}
	if _, err := NewGenerator(src, 0, 20, 1); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := NewGenerator(src, 2000, 1, 1); err == nil {
		t.Error("mean 1 accepted")
	}
}

func TestGeneratorDist(t *testing.T) {
	dist, err := rng.Zipf(40, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneratorDist(rng.NewSource(1), dist, 0); err == nil {
		t.Error("zero stations accepted")
	}
	g, err := NewGeneratorDist(rng.NewSource(1), dist, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Same streams as NewGenerator: only the distribution differs, so
	// draws are deterministic and skewed toward the head.
	counts := make([]int, 40)
	for i := 0; i < 4000; i++ {
		counts[g.Draw(i%4)]++
	}
	if counts[0] <= counts[39] {
		t.Errorf("Zipf head not hot: counts[0]=%d counts[39]=%d", counts[0], counts[39])
	}
	if g.Popularity(0) <= g.Popularity(39) {
		t.Error("Popularity not monotone")
	}
	if top := g.TopObjects(3); len(top) != 3 || top[0] != 0 {
		t.Errorf("TopObjects = %v", top)
	}
}

func TestGeneratorDeterministicPerStation(t *testing.T) {
	mk := func() *Generator {
		g, err := NewGenerator(rng.NewSource(42), 2000, 20, 4)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		for st := 0; st < 4; st++ {
			if a.Draw(st) != b.Draw(st) {
				t.Fatal("same-seed generators diverged")
			}
		}
	}
}

func TestStationsIndependent(t *testing.T) {
	// Adding stations must not change existing stations' streams.
	g4, err := NewGenerator(rng.NewSource(7), 2000, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	g8, err := NewGenerator(rng.NewSource(7), 2000, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for st := 0; st < 4; st++ {
			if g4.Draw(st) != g8.Draw(st) {
				t.Fatal("station stream perturbed by fleet size")
			}
		}
	}
}

func TestDrawSkew(t *testing.T) {
	g, err := NewGenerator(rng.NewSource(3), 2000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		counts[g.Draw(0)]++
	}
	// With mean 10 the most popular object draws ~10% of references.
	if f := float64(counts[0]) / 50000; f < 0.08 || f > 0.12 {
		t.Errorf("object 0 frequency = %v, want ~0.10", f)
	}
	if counts[0] <= counts[50] {
		t.Error("popularity not monotone in rank")
	}
}

func TestTopObjects(t *testing.T) {
	g, err := NewGenerator(rng.NewSource(1), 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := g.TopObjects(5)
	for i, id := range top {
		if id != i {
			t.Fatalf("TopObjects = %v, want ranks in order", top)
		}
	}
	if got := len(g.TopObjects(500)); got != 100 {
		t.Fatalf("TopObjects clamped to %d, want 100", got)
	}
	if g.Popularity(0) <= g.Popularity(1) {
		t.Fatal("popularity not decreasing")
	}
}

func TestClosedLoopStations(t *testing.T) {
	g, err := NewGenerator(rng.NewSource(1), 100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStations(g)
	r := st.Issue(0, 1.5)
	if r.Station != 0 || r.IssuedAt != 1.5 || r.Object < 0 || r.Object >= 100 {
		t.Fatalf("bad request %+v", r)
	}
	if st.Outstanding() != 1 || st.TotalIssued() != 1 {
		t.Fatal("outstanding tracking wrong")
	}
	st.Issue(1, 2.0)
	st.Complete(0)
	if st.Outstanding() != 1 {
		t.Fatal("completion not tracked")
	}
	// Station 0 can issue again.
	st.Issue(0, 3.0)
	if st.TotalIssued() != 3 {
		t.Fatal("issue count wrong")
	}
}

func TestDoubleIssuePanics(t *testing.T) {
	g, err := NewGenerator(rng.NewSource(1), 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStations(g)
	st.Issue(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double issue did not panic")
		}
	}()
	st.Issue(0, 1)
}

func TestCompleteIdlePanics(t *testing.T) {
	g, err := NewGenerator(rng.NewSource(1), 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStations(g)
	defer func() {
		if recover() == nil {
			t.Fatal("completing idle station did not panic")
		}
	}()
	st.Complete(0)
}

func TestMeanLabel(t *testing.T) {
	if MeanLabel(10) != "highly skewed" || MeanLabel(20) != "skewed" || MeanLabel(43.5) != "uniform" {
		t.Fatal("paper labels drifted")
	}
	if MeanLabel(99) == "" {
		t.Fatal("fallback label empty")
	}
}

func TestPaperConstants(t *testing.T) {
	if len(PaperMeans) != 3 || PaperMeans[2] != 43.5 {
		t.Fatal("paper means drifted")
	}
	if PaperStations[len(PaperStations)-1] != 256 || PaperStations[0] != 1 {
		t.Fatal("paper station sweep drifted")
	}
}

func BenchmarkDraw(b *testing.B) {
	g, err := NewGenerator(rng.NewSource(1), 2000, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Draw(0)
	}
}
