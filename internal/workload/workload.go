// Package workload implements the §4.1 workload model: a closed
// system of display stations, each displaying one object at a time,
// issuing its next request the moment the previous display completes
// (zero think time), with object popularity drawn from a truncated
// geometric distribution.
package workload

import (
	"fmt"

	"github.com/mmsim/staggered/internal/rng"
)

// PaperMeans are the three geometric means evaluated in §4: highly
// skewed, skewed, and (approximately) uniform.
var PaperMeans = []float64{10, 20, 43.5}

// PaperStations are the station counts the paper sweeps (1 to 256);
// Table 4 reports 16, 64, 128, and 256.
var PaperStations = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// MeanLabel returns the paper's label for a distribution mean.
func MeanLabel(mean float64) string {
	switch mean {
	case 10:
		return "highly skewed"
	case 20:
		return "skewed"
	case 43.5:
		return "uniform"
	default:
		return fmt.Sprintf("geometric mean %v", mean)
	}
}

// Generator draws object references for each display station from a
// shared popularity distribution, with an independent random stream
// per station so that adding stations never perturbs the reference
// string of existing ones.
// The streams live in one dense slice (not per-station pointers) so a
// 20k-station run walks contiguous memory instead of chasing 20k heap
// objects.
type Generator struct {
	dist    *rng.Discrete
	streams []rng.Stream
	// remap translates a drawn popularity rank to an object id; nil
	// (the usual case, and every golden configuration) is the identity.
	// FlipHalf installs a rotation to model popularity churn.
	remap []int
}

// NewGenerator builds a generator for the given number of stations
// over a catalog of n objects with geometric popularity of the given
// mean (object 0 most popular).
func NewGenerator(src *rng.Source, n int, mean float64, stations int) (*Generator, error) {
	if stations <= 0 {
		return nil, fmt.Errorf("workload: need at least one station, got %d", stations)
	}
	dist, err := rng.TruncatedGeometric(n, mean)
	if err != nil {
		return nil, err
	}
	g := &Generator{dist: dist, streams: make([]rng.Stream, stations)}
	for i := range g.streams {
		g.streams[i] = *src.StreamN("station", i)
	}
	return g, nil
}

// NewGeneratorDist builds a generator over an explicit popularity
// distribution (e.g. rng.Zipf for the cache experiments' hot-head
// workloads).  The distribution must be monotone non-increasing in
// object id for TopObjects to stay meaningful; rng's constructors all
// are.
func NewGeneratorDist(src *rng.Source, dist *rng.Discrete, stations int) (*Generator, error) {
	if stations <= 0 {
		return nil, fmt.Errorf("workload: need at least one station, got %d", stations)
	}
	g := &Generator{dist: dist, streams: make([]rng.Stream, stations)}
	for i := range g.streams {
		g.streams[i] = *src.StreamN("station", i)
	}
	return g, nil
}

// Stations returns the number of stations.
func (g *Generator) Stations() int { return len(g.streams) }

// Draw returns the next object reference of the given station.
func (g *Generator) Draw(station int) int {
	id := g.dist.Sample(&g.streams[station])
	if g.remap != nil {
		id = g.remap[id]
	}
	return id
}

// FlipHalf rotates the popularity mapping by half the catalog: after
// the flip, the distribution's hottest rank draws what used to be the
// median object and the old hot head goes cold — the popularity-churn
// event the cache tier and the cluster's popularity dispatch must
// re-converge under.  Calls compose (two flips of an even catalog
// restore the identity).  Draw pays one nil check until the first
// flip, so un-flipped runs are untouched.
func (g *Generator) FlipHalf() {
	n := g.dist.Len()
	if g.remap == nil {
		g.remap = make([]int, n)
		for i := range g.remap {
			g.remap[i] = i
		}
	}
	for i := range g.remap {
		g.remap[i] = (g.remap[i] + (n+1)/2) % n
	}
}

// Popularity returns the reference probability of object id.
func (g *Generator) Popularity(id int) float64 { return g.dist.P(id) }

// TopObjects returns the ids of the n most popular objects (which,
// with a monotone geometric distribution, are simply 0..n-1).
func (g *Generator) TopObjects(n int) []int {
	if n > g.dist.Len() {
		n = g.dist.Len()
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Request is one station's outstanding object reference.
type Request struct {
	Station  int
	Object   int
	IssuedAt float64 // simulated seconds
}

// Stations tracks the closed-loop state: each station is either
// waiting for a display (has an outstanding Request) or ready to issue
// its next one.
type Stations struct {
	gen   *Generator
	busy  []bool
	total int
}

// NewStations returns closed-loop state over the generator.
func NewStations(gen *Generator) *Stations {
	return &Stations{gen: gen, busy: make([]bool, gen.Stations())}
}

// Issue draws the next reference for station s at the given time.  A
// station must not have two outstanding requests.
func (s *Stations) Issue(station int, now float64) Request {
	if s.busy[station] {
		panic(fmt.Sprintf("workload: station %d already has an outstanding request", station))
	}
	s.busy[station] = true
	s.total++
	return Request{Station: station, Object: s.gen.Draw(station), IssuedAt: now}
}

// IssueObject marks station s busy with an externally chosen object —
// the cluster layer's dispatch path, where the object was drawn from a
// shared cluster-wide stream rather than the station's own.  The
// station's generator stream is not advanced.
func (s *Stations) IssueObject(station, object int, now float64) Request {
	if s.busy[station] {
		panic(fmt.Sprintf("workload: station %d already has an outstanding request", station))
	}
	s.busy[station] = true
	s.total++
	return Request{Station: station, Object: object, IssuedAt: now}
}

// IssueSharded is Issue without the shared total counter, for
// shard-parallel drains: each station belongs to exactly one shard, so
// busy and the per-station generator stream are touched by one
// goroutine only, while total would be contended.  Callers account the
// issued count afterwards with AddIssued.
func (s *Stations) IssueSharded(station int, now float64) Request {
	if s.busy[station] {
		panic(fmt.Sprintf("workload: station %d already has an outstanding request", station))
	}
	s.busy[station] = true
	return Request{Station: station, Object: s.gen.Draw(station), IssuedAt: now}
}

// AddIssued adds n requests to the issued total; the sequential merge
// phase calls it once per interval after shard-parallel IssueSharded
// calls.
func (s *Stations) AddIssued(n int) { s.total += n }

// Complete marks station s idle again (its display finished).
func (s *Stations) Complete(station int) {
	if !s.busy[station] {
		panic(fmt.Sprintf("workload: station %d has no outstanding request", station))
	}
	s.busy[station] = false
}

// Outstanding returns the number of stations with requests in flight.
func (s *Stations) Outstanding() int {
	n := 0
	for _, b := range s.busy {
		if b {
			n++
		}
	}
	return n
}

// TotalIssued returns the number of requests issued so far.
func (s *Stations) TotalIssued() int { return s.total }
