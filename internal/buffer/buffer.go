// Package buffer models per-node memory for the pipelined delivery
// scheme: Equation (1)'s minimum per-disk memory, and a fragment
// buffer pool with high-water accounting used by the scheduler for
// time-fragmented delivery (§3.2.1) and low-bandwidth object sharing
// (§3.2.3).
package buffer

import "fmt"

// MinimumBytes returns Equation (1) of the paper: the minimum memory
// per disk drive needed to mask the head-repositioning delay,
//
//	B_disk × (T_switch + T_sector)
//
// with B_disk in bits/second and times in seconds.  The result is in
// bytes.
func MinimumBytes(bDisk, tSwitch, tSector float64) float64 {
	if bDisk < 0 || tSwitch < 0 || tSector < 0 {
		panic("buffer: negative argument to MinimumBytes")
	}
	return bDisk * (tSwitch + tSector) / 8
}

// Pool is a counting buffer pool measured in fragments.  A Pool with
// Cap = 0 is unbounded (pure accounting).
type Pool struct {
	Cap       int // maximum fragments held at once; 0 = unbounded
	held      int
	peak      int
	allocs    int
	frees     int
	rejected  int
	bytesEach float64
}

// NewPool returns a pool capped at capFragments fragments of
// fragmentBytes each (capFragments = 0 means unbounded).
func NewPool(capFragments int, fragmentBytes float64) (*Pool, error) {
	if capFragments < 0 {
		return nil, fmt.Errorf("buffer: negative capacity %d", capFragments)
	}
	if fragmentBytes <= 0 {
		return nil, fmt.Errorf("buffer: fragment size must be positive, got %v", fragmentBytes)
	}
	return &Pool{Cap: capFragments, bytesEach: fragmentBytes}, nil
}

// Acquire takes n fragment buffers, reporting false (and taking
// nothing) when the pool would exceed its cap.
func (p *Pool) Acquire(n int) bool {
	if n < 0 {
		panic("buffer: negative acquire")
	}
	if p.Cap > 0 && p.held+n > p.Cap {
		p.rejected += n
		return false
	}
	p.held += n
	p.allocs += n
	if p.held > p.peak {
		p.peak = p.held
	}
	return true
}

// Release returns n fragment buffers to the pool.
func (p *Pool) Release(n int) {
	if n < 0 {
		panic("buffer: negative release")
	}
	if n > p.held {
		panic(fmt.Sprintf("buffer: releasing %d of %d held", n, p.held))
	}
	p.held -= n
	p.frees += n
}

// Held returns the fragments currently held.
func (p *Pool) Held() int { return p.held }

// Peak returns the high-water mark in fragments.
func (p *Pool) Peak() int { return p.peak }

// PeakBytes returns the high-water mark in bytes.
func (p *Pool) PeakBytes() float64 { return float64(p.peak) * p.bytesEach }

// Rejected returns the number of fragment acquisitions refused.
func (p *Pool) Rejected() int { return p.rejected }

// Balanced reports whether every acquired fragment has been released.
func (p *Pool) Balanced() bool { return p.held == 0 && p.allocs == p.frees }
