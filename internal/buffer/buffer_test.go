package buffer

import (
	"math"
	"testing"
	"testing/quick"
)

// TestEquation1 checks the minimum-memory formula against the Sabre
// parameters: B_disk = 20 mbps, T_switch = 51.83 ms and a 10 ms
// sector time give 20e6 × 0.06183 / 8 bytes.
func TestEquation1(t *testing.T) {
	got := MinimumBytes(20e6, 0.05183, 0.010)
	want := 20e6 * (0.05183 + 0.010) / 8
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("MinimumBytes = %v, want %v", got, want)
	}
	if got < 150000 || got > 160000 {
		t.Fatalf("MinimumBytes = %v bytes, expected ~154 KB for Sabre-class disk", got)
	}
}

func TestEquation1ZeroTimes(t *testing.T) {
	if got := MinimumBytes(20e6, 0, 0); got != 0 {
		t.Fatalf("zero times should need zero memory, got %v", got)
	}
}

func TestEquation1PanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative argument did not panic")
		}
	}()
	MinimumBytes(-1, 0, 0)
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(-1, 100); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := NewPool(0, 0); err == nil {
		t.Error("zero fragment size accepted")
	}
}

func TestPoolAcquireRelease(t *testing.T) {
	p, err := NewPool(5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Acquire(3) {
		t.Fatal("acquire within cap failed")
	}
	if p.Acquire(3) {
		t.Fatal("acquire past cap succeeded")
	}
	if p.Rejected() != 3 {
		t.Fatalf("rejected = %d, want 3", p.Rejected())
	}
	if !p.Acquire(2) {
		t.Fatal("exact-cap acquire failed")
	}
	if p.Peak() != 5 || p.PeakBytes() != 5000 {
		t.Fatalf("peak = %d (%v bytes), want 5 (5000)", p.Peak(), p.PeakBytes())
	}
	p.Release(5)
	if !p.Balanced() {
		t.Fatal("pool not balanced after full release")
	}
}

func TestPoolUnbounded(t *testing.T) {
	p, err := NewPool(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Acquire(1 << 20) {
		t.Fatal("unbounded pool rejected an acquire")
	}
	p.Release(1 << 20)
}

func TestPoolOverReleasePanics(t *testing.T) {
	p, err := NewPool(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	p.Release(1)
}

// Property: held never exceeds cap and never goes negative under
// arbitrary acquire/release sequences.
func TestPoolInvariant(t *testing.T) {
	err := quick.Check(func(ops []int8) bool {
		p, err := NewPool(10, 1)
		if err != nil {
			return false
		}
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				p.Acquire(n % 8)
			} else {
				m := (-n) % 8
				if m > p.Held() {
					m = p.Held()
				}
				p.Release(m)
			}
			if p.Held() < 0 || p.Held() > 10 || p.Peak() > 10 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
