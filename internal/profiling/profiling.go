// Package profiling wires the standard runtime/pprof collectors into
// the command-line tools.  Both binaries expose -cpuprofile and
// -memprofile; the profiles drove the hot-path work on the interval
// engines (see DESIGN.md, "Performance model") and keep that loop
// repeatable:
//
//	sweep -scale quick -cpuprofile cpu.prof
//	go tool pprof cpu.prof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// phaseLabelsOn records that a CPU profile is being collected, so the
// engines attach pprof phase labels to their interval phases.  Engines
// latch it at construction; Start must run before they are built (the
// CLI tools parse -cpuprofile before building engines).
var phaseLabelsOn atomic.Bool

// PhaseLabelsEnabled reports whether interval engines should label
// their phases for an active CPU profile.
func PhaseLabelsEnabled() bool { return phaseLabelsOn.Load() }

// Start begins the profiles selected by the (possibly empty) file
// paths and returns a stop function that must run before the process
// exits; it finishes the CPU profile and writes the heap profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		phaseLabelsOn.Store(true)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
