package cache

import "math"

// Replacement policy names accepted by Spec.Policy.
const (
	PolicyLRU        = "lru"
	PolicyPopularity = "popularity"
)

// Policy decides which resident prefix to displace and whether a
// candidate reference is hot enough to displace it.  Implementations
// are deterministic: ties break on the lowest object id.
type Policy interface {
	Name() string
	// Touched records a reference to obj at interval now (resident or
	// not — admission needs scores for non-residents too).
	Touched(obj, now int)
	// Inserted / Evicted track residency transitions.
	Inserted(obj, now int)
	Evicted(obj int)
	// Victim picks the eviction candidate among resident objects.
	Victim(resident []int) (int, bool)
	// ShouldAdmit reports whether candidate is worth displacing victim.
	ShouldAdmit(candidate, victim int) bool
	// Reset forgets all accumulated popularity/recency state, as a
	// power-cycled server's RAM would.
	Reset()
}

// lru is the baseline: evict the least-recently-touched prefix, and
// always admit the newcomer (a plain recency cache).
type lru struct {
	last []int32 // object -> last touch interval, -1 = never
}

func newLRU(objects int) *lru {
	p := &lru{last: make([]int32, objects)}
	for i := range p.last {
		p.last[i] = -1
	}
	return p
}

func (p *lru) Name() string          { return PolicyLRU }
func (p *lru) Touched(obj, now int)  { p.last[obj] = int32(now) }
func (p *lru) Inserted(obj, now int) {}
func (p *lru) Evicted(obj int)       {}

func (p *lru) Victim(resident []int) (int, bool) {
	victim, best := -1, int32(math.MaxInt32)
	for _, id := range resident {
		t := p.last[id]
		if t < best || (t == best && (victim < 0 || id < victim)) {
			victim, best = id, t
		}
	}
	return victim, victim >= 0
}

func (p *lru) ShouldAdmit(candidate, victim int) bool { return true }

func (p *lru) Reset() {
	for i := range p.last {
		p.last[i] = -1
	}
}

// popularity is the popularity-weighted variant: each touch adds one
// unit to an exponentially-decayed per-object score (half-life of one
// display length), so the victim is the coldest prefix by decayed
// request rate and a newcomer must out-score it to displace it.  This
// is the interval-caching admission of Jayarekha & Nair: bursty
// one-time traffic decays away instead of flushing the Zipf head.
type popularity struct {
	score    []float64
	last     []int32 // interval of the last touch, -1 = never
	halfLife float64
}

func newPopularity(objects int, halfLife float64) *popularity {
	if halfLife <= 0 {
		halfLife = 1
	}
	p := &popularity{
		score:    make([]float64, objects),
		last:     make([]int32, objects),
		halfLife: halfLife,
	}
	for i := range p.last {
		p.last[i] = -1
	}
	return p
}

func (p *popularity) Name() string { return PolicyPopularity }

func (p *popularity) Touched(obj, now int) {
	if p.last[obj] < 0 {
		p.score[obj] = 1
	} else {
		gap := float64(now - int(p.last[obj]))
		p.score[obj] = 1 + p.score[obj]*math.Exp2(-gap/p.halfLife)
	}
	p.last[obj] = int32(now)
}

func (p *popularity) Inserted(obj, now int) {}
func (p *popularity) Evicted(obj int)       {}

func (p *popularity) Victim(resident []int) (int, bool) {
	victim, best := -1, math.Inf(1)
	for _, id := range resident {
		s := p.score[id]
		if s < best || (s == best && (victim < 0 || id < victim)) {
			victim, best = id, s
		}
	}
	return victim, victim >= 0
}

func (p *popularity) ShouldAdmit(candidate, victim int) bool {
	return p.score[candidate] > p.score[victim]
}

func (p *popularity) Reset() {
	for i := range p.last {
		p.score[i] = 0
		p.last[i] = -1
	}
}
