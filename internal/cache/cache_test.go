package cache

import "testing"

func testSpec() *Spec {
	return &Spec{BudgetBytes: 100, BatchWindow: 8}
}

func flatBytes(int) int64 { return 40 }

func TestSpecEnabled(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Fatal("nil spec must be disabled")
	}
	if (&Spec{}).Enabled() {
		t.Fatal("zero spec must be disabled")
	}
	if !(&Spec{BudgetBytes: 1}).Enabled() {
		t.Fatal("budget alone must enable")
	}
	if !(&Spec{BatchWindow: 1}).Enabled() {
		t.Fatal("batch window alone must enable")
	}
}

func TestSpecValidate(t *testing.T) {
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec: %v", err)
	}
	good := []Spec{{}, {BudgetBytes: 1 << 20, PrefixSubobjects: 4, BatchWindow: 8}, {Policy: PolicyLRU}, {Policy: PolicyPopularity}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", s, err)
		}
	}
	bad := []Spec{{BudgetBytes: -1}, {PrefixSubobjects: -1}, {BatchWindow: -1}, {Policy: "fifo"}}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: expected error", s)
		}
	}
}

func TestAdmissionRespectsBudget(t *testing.T) {
	tr := NewTier(testSpec(), 8, 4, flatBytes, 30)
	tr.Reference(0, 0)
	tr.Reference(1, 1)
	if !tr.Resident(0) || !tr.Resident(1) {
		t.Fatal("first two objects should pin (80 <= 100)")
	}
	// A third 40-byte prefix does not fit, and a single cold reference
	// must not displace warmer residents under the popularity policy.
	tr.Reference(2, 2)
	if tr.Resident(2) {
		t.Fatal("one-time reference must not displace residents")
	}
	if tr.Used() != 80 || tr.ResidentCount() != 2 {
		t.Fatalf("used=%d residents=%d, want 80/2", tr.Used(), tr.ResidentCount())
	}
}

func TestPopularityDisplacesColdest(t *testing.T) {
	tr := NewTier(testSpec(), 8, 4, flatBytes, 30)
	tr.Reference(0, 0)
	tr.Reference(1, 1)
	// Heat object 2 past object 0's score; it should evict the coldest
	// resident (object 0 and 1 tie on one touch; lowest score wins, and
	// object 0's touch decayed longer).
	tr.Reference(2, 2)
	tr.Reference(2, 3)
	tr.Reference(2, 4)
	if !tr.Resident(2) {
		t.Fatal("hot object should displace a cold resident")
	}
	if tr.Resident(0) {
		t.Fatal("coldest resident (object 0) should have been evicted")
	}
	if !tr.Resident(1) {
		t.Fatal("object 1 should survive")
	}
}

func TestLRUAlwaysAdmits(t *testing.T) {
	spec := testSpec()
	spec.Policy = PolicyLRU
	tr := NewTier(spec, 8, 4, flatBytes, 30)
	if tr.Policy() != PolicyLRU {
		t.Fatalf("policy = %s", tr.Policy())
	}
	tr.Reference(0, 0)
	tr.Reference(1, 1)
	tr.Reference(2, 2)
	if !tr.Resident(2) {
		t.Fatal("LRU admits every reference")
	}
	if tr.Resident(0) {
		t.Fatal("LRU evicts the least recently used (object 0)")
	}
}

func TestOversizedObjectNeverPins(t *testing.T) {
	tr := NewTier(testSpec(), 4, 4, func(int) int64 { return 1000 }, 30)
	for i := 0; i < 10; i++ {
		tr.Reference(0, i)
	}
	if tr.Resident(0) || tr.Used() != 0 {
		t.Fatal("object larger than the whole budget must never pin")
	}
}

func TestAttachGapConditions(t *testing.T) {
	tr := NewTier(testSpec(), 4, 4, flatBytes, 30)
	tr.Reference(0, 0) // resident
	tr.SetLeader(0, 7, 10, 50, 2)
	if _, ok := tr.AttachGap(0, 10, 8); ok {
		t.Fatal("gap 0 must not attach (same interval joins as pending)")
	}
	if _, ok := tr.AttachGap(0, 11, 8); ok {
		t.Fatal("gap below leader Tmax must not attach")
	}
	gap, ok := tr.AttachGap(0, 13, 8)
	if !ok || gap != 3 {
		t.Fatalf("gap 3 should attach, got %d,%v", gap, ok)
	}
	if _, ok := tr.AttachGap(0, 15, 8); ok {
		t.Fatal("gap beyond prefix length must not attach")
	}
	if _, ok := tr.AttachGap(0, 13, 2); ok {
		t.Fatal("gap beyond batch window must not attach")
	}
	if _, ok := tr.AttachGap(0, 60, 64); ok {
		t.Fatal("dead leader must not attach")
	}
	// Non-resident prefix: followers have nothing to catch up from.
	tr.SetLeader(1, 3, 10, 50, 0)
	if _, ok := tr.AttachGap(1, 12, 8); ok {
		t.Fatal("non-resident prefix must not attach")
	}
}

func TestDetachIfLeader(t *testing.T) {
	tr := NewTier(testSpec(), 4, 4, flatBytes, 30)
	tr.SetLeader(0, 7, 10, 50, 0)
	tr.AddFollower(0, 3)
	tr.AddFollower(0, 5)
	tr.RemoveFollower(0, 3)
	if buf, ok := tr.DetachIfLeader(0, 9, 20, nil); ok || len(buf) != 0 {
		t.Fatal("non-leader station must not detach")
	}
	buf, ok := tr.DetachIfLeader(0, 7, 20, nil)
	if !ok || len(buf) != 1 || buf[0] != 5 {
		t.Fatalf("detach got %v,%v; want [5],true", buf, ok)
	}
	if _, ok := tr.AttachGap(0, 11, 8); ok {
		t.Fatal("leader must be dead after detach")
	}
	if buf, ok := tr.DetachIfLeader(0, 7, 20, nil); ok || len(buf) != 0 {
		t.Fatal("second detach must be a no-op")
	}
}

func TestPendingRoundTrip(t *testing.T) {
	tr := NewTier(testSpec(), 4, 4, flatBytes, 30)
	tr.AddPending(2, 9, 100)
	tr.AddPending(2, 11, 101)
	if tr.PendingCount(2) != 2 {
		t.Fatalf("pending = %d", tr.PendingCount(2))
	}
	got := tr.TakePending(2, nil)
	if len(got) != 2 || got[0] != (Pending{9, 100}) || got[1] != (Pending{11, 101}) {
		t.Fatalf("TakePending = %v", got)
	}
	if tr.PendingCount(2) != 0 {
		t.Fatal("TakePending must drain")
	}
	if got := tr.TakePending(2, got[:0]); len(got) != 0 {
		t.Fatal("second take must be empty")
	}
}

func TestSetLeaderSupersedesFollowers(t *testing.T) {
	tr := NewTier(testSpec(), 4, 4, flatBytes, 30)
	tr.SetLeader(0, 7, 10, 50, 0)
	tr.AddFollower(0, 3)
	tr.SetLeader(0, 8, 20, 60, 0)
	buf, ok := tr.DetachIfLeader(0, 8, 25, nil)
	if !ok || len(buf) != 0 {
		t.Fatalf("superseding leader must start with no followers, got %v,%v", buf, ok)
	}
}
