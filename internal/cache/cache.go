// Package cache implements the memory tier in front of the disk
// techniques: a popularity-aware prefix cache that pins the first P
// subobjects of hot objects in a fixed RAM budget so admission can
// start playback instantly while the disks stage the tail, plus the
// multicast/batching registries that let concurrent requests for the
// same object share one in-flight disk stream.
//
// The admission policy follows the interval-caching line of the
// multicast-prefix VoD literature (Jayarekha & Nair): a reference may
// displace colder prefixes only when the replacement policy agrees the
// newcomer is worth more than the victim, so one-time references never
// churn the hot set.  Replacement is pluggable (Policy): an LRU
// baseline and the popularity-weighted variant with exponential decay.
//
// The tier itself is pure bookkeeping — it never touches engine state.
// The engine consults it on the interval goroutine only, so no method
// here needs synchronization even under sharded execution.
package cache

import "fmt"

// DefaultPrefixSubobjects is the prefix length pinned per cached
// object when Spec.PrefixSubobjects is zero.
const DefaultPrefixSubobjects = 4

// Spec configures the memory tier.  The zero value (and nil) disable
// it entirely: the engine then compiles the cache hooks down to one
// nil check, keeping the disk-only path byte-identical to the golden
// dumps.
type Spec struct {
	// BudgetBytes is the fixed RAM budget for pinned prefixes; 0
	// disables the prefix cache (batching may still be on).
	BudgetBytes int64
	// PrefixSubobjects is how many leading subobjects of an object the
	// cache pins; 0 selects DefaultPrefixSubobjects, and the engine
	// clamps it to the object length.
	PrefixSubobjects int
	// BatchWindow is the multicast window in intervals: requests for
	// the same object within this window of an in-flight or queued
	// stream attach to it as followers.  0 disables batching.
	BatchWindow int
	// Policy selects the replacement policy: PolicyLRU or
	// PolicyPopularity ("" = PolicyPopularity).
	Policy string
}

// Enabled reports whether the spec turns the tier on at all.
func (s *Spec) Enabled() bool {
	return s != nil && (s.BudgetBytes > 0 || s.BatchWindow > 0)
}

// Validate reports whether the spec is runnable.  A nil spec is valid
// (tier disabled).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	switch {
	case s.BudgetBytes < 0:
		return fmt.Errorf("cache: budget must be non-negative")
	case s.PrefixSubobjects < 0:
		return fmt.Errorf("cache: prefix length must be non-negative")
	case s.BatchWindow < 0:
		return fmt.Errorf("cache: batch window must be non-negative")
	}
	switch s.Policy {
	case "", PolicyLRU, PolicyPopularity:
		return nil
	default:
		return fmt.Errorf("cache: unknown policy %q (have %s, %s)", s.Policy, PolicyLRU, PolicyPopularity)
	}
}

// Pending is one request batched behind a queued leader request,
// waiting to board the leader's stream at admission.
type Pending struct {
	Station int32
	Arrived int32 // interval the request arrived, for latency accounting
}

// Tier is the memory tier's state: the resident prefix set under the
// RAM budget, and per-object leader/follower/pending registries for
// multicast stream sharing.  All methods run on the engine's interval
// goroutine.
type Tier struct {
	spec      Spec
	prefixLen int
	bytes     []int64 // object -> pinned prefix size in bytes
	resident  []bool
	residents []int // resident object ids, order-free (victim ties on id)
	used      int64
	pol       Policy

	// Leader registry: the newest in-flight disk stream per object.
	// leaderEnd is exclusive; leaderEnd <= now means no live leader.
	leaderStation []int32
	leaderStart   []int32
	leaderEnd     []int32
	leaderTmax    []int32
	followers     [][]int32   // object -> stations sharing the leader stream
	pending       [][]Pending // object -> requests batched behind a queued leader
}

// NewTier builds the tier for a catalog of objects.  prefixLen is the
// effective pinned prefix in subobjects (already clamped by the
// caller), bytesOf gives each object's prefix footprint in bytes, and
// halfLife tunes the popularity policy's decay (typically one display
// length in intervals).
func NewTier(spec *Spec, objects, prefixLen int, bytesOf func(int) int64, halfLife float64) *Tier {
	t := &Tier{
		spec:          *spec,
		prefixLen:     prefixLen,
		bytes:         make([]int64, objects),
		resident:      make([]bool, objects),
		leaderStation: make([]int32, objects),
		leaderStart:   make([]int32, objects),
		leaderEnd:     make([]int32, objects),
		leaderTmax:    make([]int32, objects),
		followers:     make([][]int32, objects),
		pending:       make([][]Pending, objects),
	}
	for id := range t.bytes {
		t.bytes[id] = bytesOf(id)
	}
	switch spec.Policy {
	case PolicyLRU:
		t.pol = newLRU(objects)
	default:
		t.pol = newPopularity(objects, halfLife)
	}
	return t
}

// PrefixLen returns the pinned prefix length in subobjects.
func (t *Tier) PrefixLen() int { return t.prefixLen }

// Policy returns the replacement policy's name.
func (t *Tier) Policy() string { return t.pol.Name() }

// Resident reports whether obj's prefix is pinned right now.
func (t *Tier) Resident(obj int) bool { return t.resident[obj] }

// Bytes returns obj's prefix footprint.
func (t *Tier) Bytes(obj int) int64 { return t.bytes[obj] }

// Used returns the bytes currently pinned.
func (t *Tier) Used() int64 { return t.used }

// ResidentCount returns the number of pinned prefixes.
func (t *Tier) ResidentCount() int { return len(t.residents) }

// Reference records one request for obj at the given interval and
// runs the interval-caching admission: the reference warms the
// replacement policy, and the prefix is pinned if it fits the budget —
// evicting colder prefixes only while the policy agrees obj is worth
// more than each victim, so one-timers never displace the hot set.
func (t *Tier) Reference(obj, now int) {
	t.pol.Touched(obj, now)
	if t.spec.BudgetBytes <= 0 || t.resident[obj] {
		return
	}
	need := t.bytes[obj]
	if need > t.spec.BudgetBytes {
		return
	}
	for t.used+need > t.spec.BudgetBytes {
		victim, ok := t.pol.Victim(t.residents)
		if !ok || !t.pol.ShouldAdmit(obj, victim) {
			return
		}
		t.evict(victim)
	}
	t.insert(obj, now)
}

func (t *Tier) insert(obj, now int) {
	t.resident[obj] = true
	t.residents = append(t.residents, obj)
	t.used += t.bytes[obj]
	t.pol.Inserted(obj, now)
}

func (t *Tier) evict(obj int) {
	t.resident[obj] = false
	for i, id := range t.residents {
		if id == obj {
			last := len(t.residents) - 1
			t.residents[i] = t.residents[last]
			t.residents = t.residents[:last]
			break
		}
	}
	t.used -= t.bytes[obj]
	t.pol.Evicted(obj)
}

// AttachGap reports whether a request for obj arriving now can attach
// to the in-flight leader stream as a follower, and the gap (in
// intervals) it trails the leader by.  Attaching requires a live
// leader whose streams have fully started (gap at least the leader's
// startup Tmax), a gap inside both the batch window and the pinned
// prefix (the RAM prefix is what the follower catches up from), and
// the prefix to actually be resident.
func (t *Tier) AttachGap(obj, now, window int) (int, bool) {
	if int(t.leaderEnd[obj]) <= now {
		return 0, false
	}
	gap := now - int(t.leaderStart[obj])
	if gap < 1 || gap < int(t.leaderTmax[obj]) || gap > window || gap > t.prefixLen || !t.resident[obj] {
		return 0, false
	}
	return gap, true
}

// SetLeader registers the disk stream admitted for obj at start as the
// object's leader, ending (exclusive) at end.  Any followers of an
// older leader are dropped from the registry — their displays still
// complete on their own clocks, they just lose detach-on-abort
// coverage for the superseded stream.
func (t *Tier) SetLeader(obj int, station int32, start, end, tmax int) {
	t.leaderStation[obj] = station
	t.leaderStart[obj] = int32(start)
	t.leaderEnd[obj] = int32(end)
	t.leaderTmax[obj] = int32(tmax)
	t.followers[obj] = t.followers[obj][:0]
}

// AddFollower records station as sharing obj's leader stream.
func (t *Tier) AddFollower(obj int, station int32) {
	t.followers[obj] = append(t.followers[obj], station)
}

// RemoveFollower drops a completed follower from obj's share list.
func (t *Tier) RemoveFollower(obj int, station int32) {
	fs := t.followers[obj]
	for i, s := range fs {
		if s == station {
			last := len(fs) - 1
			fs[i] = fs[last]
			t.followers[obj] = fs[:last]
			return
		}
	}
}

// DetachIfLeader clears obj's leader registration if station is the
// live leader, appending the followers that were sharing its stream to
// buf.  It reports whether a detach happened.  The caller owns buf —
// the tier's own backing is reusable immediately.
func (t *Tier) DetachIfLeader(obj int, station int32, now int, buf []int32) ([]int32, bool) {
	if int(t.leaderEnd[obj]) <= now || t.leaderStation[obj] != station {
		return buf, false
	}
	buf = append(buf, t.followers[obj]...)
	t.followers[obj] = t.followers[obj][:0]
	t.leaderEnd[obj] = 0
	return buf, true
}

// PendingObjects appends to buf every object id with a non-empty
// pending batch, ascending — the deterministic drain order the
// failover path uses to orphan batched requests when a whole server
// dies.  The caller owns buf.
func (t *Tier) PendingObjects(buf []int) []int {
	for obj, ps := range t.pending {
		if len(ps) > 0 {
			buf = append(buf, obj)
		}
	}
	return buf
}

// Flush resets the tier to its built state: no residents, no leaders,
// no followers, no pending batches, and a cold replacement policy —
// the RAM contents of a server that just power-cycled.
func (t *Tier) Flush() {
	for _, obj := range t.residents {
		t.resident[obj] = false
		t.pol.Evicted(obj)
	}
	t.residents = t.residents[:0]
	t.used = 0
	for obj := range t.leaderEnd {
		t.leaderEnd[obj] = 0
		t.followers[obj] = t.followers[obj][:0]
		t.pending[obj] = t.pending[obj][:0]
	}
	t.pol.Reset()
}

// AddPending batches a request behind obj's queued leader request; it
// boards the leader's stream when the leader admits.
func (t *Tier) AddPending(obj int, station, arrived int32) {
	t.pending[obj] = append(t.pending[obj], Pending{Station: station, Arrived: arrived})
}

// PendingCount returns how many requests are batched behind obj.
func (t *Tier) PendingCount(obj int) int { return len(t.pending[obj]) }

// TakePending drains obj's batched requests into buf and returns it.
// The caller owns buf — the tier's backing is reusable immediately.
func (t *Tier) TakePending(obj int, buf []Pending) []Pending {
	buf = append(buf, t.pending[obj]...)
	t.pending[obj] = t.pending[obj][:0]
	return buf
}
