package mmis

// One benchmark per table and figure of the paper.  Each bench
// regenerates its artifact end to end; the figure-8/table-4 benches
// run the Quick experiment scale so that `go test -bench=.` finishes
// in minutes — `cmd/sweep -scale full` regenerates the full Table 3
// configuration (the numbers recorded in EXPERIMENTS.md).

import (
	"testing"

	"github.com/mmsim/staggered/internal/analytic"
	"github.com/mmsim/staggered/internal/core"
	"github.com/mmsim/staggered/internal/diskmodel"
	"github.com/mmsim/staggered/internal/experiment"
	"github.com/mmsim/staggered/internal/sched"
	"github.com/mmsim/staggered/internal/vdisk"
)

// BenchmarkFigure1Layout regenerates Figure 1: simple striping of
// object X (M=3) over 9 disks in 3 clusters.
func BenchmarkFigure1Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure1(6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Protocol exercises the §3.1 four-step disk protocol
// behind Figure 2 at the event level: seek, rotate, read, transmit —
// hiccup-free inside the worst-case interval.
func BenchmarkFigure2Protocol(b *testing.B) {
	res, err := sched.RunMicro(sched.MicroConfig{
		Disk:          diskmodel.Sabre,
		FragmentBytes: diskmodel.Sabre.CylinderBytes,
		M:             3,
		N:             b.N + 1,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Hiccups != 0 {
		b.Fatalf("hiccups: %d", res.Hiccups)
	}
}

// BenchmarkFigure3Schedule regenerates Figure 3: the rotating cluster
// schedule of three displays with X finishing mid-window.
func BenchmarkFigure3Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sched.Figure3(6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Layout regenerates Figure 4: staggered striping
// with 8 disks, stride 1.
func BenchmarkFigure4Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure4(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Layout regenerates Figure 5: the mixed-media
// staggered layout (Z, X, Y at 40/60/80 mbps) on 12 disks.
func BenchmarkFigure5Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure5(13); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Coalescing regenerates Figure 6: time-fragmented
// delivery on disks 1 and 6 with dynamic coalescing at interval 5.
func BenchmarkFigure6Coalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := vdisk.Figure6(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7LowBandwidth regenerates Figure 7: two half-
// bandwidth objects sharing single disks with buffered halves.
func BenchmarkFigure7LowBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sched.Figure7(3, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection31Analytics regenerates the §3.1 worked numbers:
// S(C_i), wasted bandwidth, and worst-case startup latency for one-
// and two-cylinder fragments on the Sabre drive.
func BenchmarkSection31Analytics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analytic.FragmentSweep(diskmodel.Sabre, 30, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrideSweep regenerates the §3.2.2 stride analysis: unique
// disks used as k ranges over the farm.
func BenchmarkStrideSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []int{1, 2, 4, 25, 100} {
			_ = analytic.UniqueDisksUsed(100, k, 4, 25)
		}
	}
}

func benchFigure8(b *testing.B, mean float64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Figure8(experiment.Quick, mean, []int{1, 8, 32, 64}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		if last.Striped().Throughput() <= last.VDR().Throughput() {
			b.Fatalf("striping did not win at high load (mean %v)", mean)
		}
	}
}

// BenchmarkFigure8a regenerates Figure 8.a (highly skewed, mean 10).
func BenchmarkFigure8a(b *testing.B) { benchFigure8(b, 10) }

// BenchmarkFigure8b regenerates Figure 8.b (skewed, mean 20).
func BenchmarkFigure8b(b *testing.B) { benchFigure8(b, 20) }

// BenchmarkFigure8c regenerates Figure 8.c (near-uniform, mean 43.5).
func BenchmarkFigure8c(b *testing.B) { benchFigure8(b, 43.5) }

// BenchmarkTable4 regenerates the Table 4 improvement matrix at quick
// scale.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		byMean, err := experiment.RunAll(experiment.Quick, []int{16, 64}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if got := experiment.Table4(byMean).String(); len(got) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTertiaryLayout regenerates the §3.2.4 tape-layout
// comparison (E13).
func BenchmarkTertiaryLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.TertiaryLayoutAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].MaterializeSeconds <= rows[0].MaterializeSeconds {
			b.Fatal("sequential tape not slower")
		}
	}
}

// BenchmarkStrideAblation regenerates the k ∈ {1, M, D} contrast of
// §3.2.2 (E14).
func BenchmarkStrideAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.StrideAblation(experiment.Quick, 16, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentSizeAblation regenerates the §3.1 fragment-size
// tradeoff on the Table 3 drive (E15).
func BenchmarkFragmentSizeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.FragmentAblation(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedMediaAblation regenerates the mixed-media contrast of
// §3.1/§3.2: staggered striping vs maximal physical clusters (E16).
func BenchmarkMixedMediaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.MixedMediaAblation(24, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleSweep runs one 10x scale point per op: 500 disks, 400
// stations, the north-star trajectory's first decade.  Tracked in
// BENCH_2.json next to the kernel microbenchmarks.
func BenchmarkScaleSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := experiment.RunScalePoint(10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if p.Displays == 0 {
			b.Fatal("scale point completed no displays")
		}
	}
}
