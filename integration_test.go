package mmis

// End-to-end integration tests: each one drives several subsystems
// through the public facade the way the examples and CLIs do.

import (
	"math"
	"strings"
	"testing"
)

// TestIntegrationPaperPipeline runs the whole evaluation pipeline at
// quick scale — three distributions, the figure renderings, and
// Table 4 — and checks the paper's qualitative claims end to end.
func TestIntegrationPaperPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale sweep still runs dozens of simulations")
	}
	byMean, err := RunPaperEvaluation(QuickScale, []int{1, 16, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(byMean) != 3 {
		t.Fatalf("distributions = %d", len(byMean))
	}
	for mean, pts := range byMean {
		fig := RenderFigure8(mean, pts)
		if !strings.Contains(fig, "simple striping") {
			t.Errorf("figure for mean %v malformed", mean)
		}
		for _, p := range pts {
			if p.Striped().Hiccups != 0 || p.VDR().Hiccups != 0 {
				t.Errorf("mean %v stations %d: hiccups", mean, p.Stations)
			}
		}
		// High-load point: striping wins in every distribution.
		last := pts[len(pts)-1]
		if last.Striped().Throughput() <= last.VDR().Throughput() {
			t.Errorf("mean %v: striping lost at %d stations", mean, last.Stations)
		}
	}
	tbl := RenderTable4(byMean)
	if !strings.Contains(tbl, "# Display Stations") {
		t.Fatalf("table 4 malformed:\n%s", tbl)
	}
}

// TestIntegrationLayoutToSimulation checks that the static layout
// arithmetic and the simulator agree: the simulator's structural
// throughput limit is exactly what the layout's cluster count
// predicts.
func TestIntegrationLayoutToSimulation(t *testing.T) {
	cfg := Table3Config(64, 5, 1)
	cfg.D, cfg.K, cfg.M = 50, 5, 5
	cfg.CapacityFragments, cfg.Objects, cfg.Subobjects = 60, 40, 30
	cfg.WarmupIntervals, cfg.MeasureIntervals = 600, 3000

	layout, err := SimpleStriping(cfg.D, cfg.M)
	if err != nil {
		t.Fatal(err)
	}
	clusters := layout.Clusters(cfg.M)

	eng, err := NewStripedSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	structural := float64(clusters) * float64(cfg.MeasureIntervals) / float64(cfg.Subobjects)
	if float64(res.Displays) > structural+0.5 {
		t.Fatalf("simulator exceeded the layout's structural limit: %d > %v", res.Displays, structural)
	}
	// Under heavy skewed load the farm should be nearly saturated.
	if float64(res.Displays) < 0.85*structural {
		t.Fatalf("simulator far below structural limit: %d of %v", res.Displays, structural)
	}
}

// TestIntegrationStoreAndPlayback builds a store, places a movie and
// its FF replica through the same allocator, and plays it back.
func TestIntegrationStoreAndPlayback(t *testing.T) {
	layout, err := NewLayout(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(layout, 500)
	if err != nil {
		t.Fatal(err)
	}
	movie, err := store.Place(0, 4, 320)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := store.Place(1, 4, FFReplicaSubobjects(320, DefaultScanRatio))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewPlaybackSession(movie, replica, DefaultScanRatio)
	if err != nil {
		t.Fatal(err)
	}
	free := func(int) bool { return true }
	// Watch a bit, scan, resume, finish.
	for i := 0; i < 40; i++ {
		if _, err := sess.Tick(free); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.StartScan(free); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sess.Tick(free); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.StopScan(free); err != nil {
		t.Fatal(err)
	}
	for sess.Mode() != PlaybackDone {
		if _, err := sess.Tick(free); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Played() == 0 || sess.Scanned() == 0 {
		t.Fatalf("playback mix wrong: played %d scanned %d", sess.Played(), sess.Scanned())
	}
}

// TestIntegrationAnalyticMatchesSimulation cross-checks the §3.1
// closed form against the simulator's derived interval: the effective
// bandwidth at one-cylinder fragments must equal the configured
// B_Disk within rounding (that is how Table 3 was calibrated).
func TestIntegrationAnalyticMatchesSimulation(t *testing.T) {
	cfg := Table3Config(1, 20, 1)
	eff := EffectiveDiskBandwidth(SimulationDisk, cfg.FragmentBytes)
	if math.Abs(eff-cfg.BDisk)/cfg.BDisk > 0.01 {
		t.Fatalf("analytic effective bandwidth %v != configured B_Disk %v", eff, cfg.BDisk)
	}
	// The display time derived from the config matches the §4.1 text.
	display := float64(cfg.Subobjects) * cfg.IntervalSeconds()
	if math.Abs(display-1814.4) > 0.1 {
		t.Fatalf("display time %v, want 1814.4 s", display)
	}
}
