// Newsarchive: a tape-backed news-footage archive.  The database is
// ten times larger than the disk farm, access is close to uniform, so
// the tertiary device and the replacement policy dominate — the
// regime of the right-hand graph of the paper's Figure 8.  The
// example also shows why §3.2.4 wants the tape recorded in
// disk-delivery order.
package main

import (
	"fmt"
	"log"

	mmis "github.com/mmsim/staggered"
)

func main() {
	// §3.2.4: the cost of a layout mismatch between tape and disks.
	cfg := mmis.Table3Config(8, 40, 1)
	cfg.D, cfg.K, cfg.M = 50, 5, 5
	cfg.CapacityFragments, cfg.Objects, cfg.Subobjects = 60, 40, 30
	cfg.WarmupIntervals, cfg.MeasureIntervals = 600, 6000

	objectBits := cfg.ObjectBits()
	for _, layout := range []mmis.TapeLayout{mmis.TapeDiskMatched, mmis.TapeSequential} {
		secs := cfg.Tertiary.MaterializeSeconds(objectBits, layout, cfg.IntervalSeconds())
		fmt.Printf("tape layout %-12s: materialize one object in %7.1f s (%5.1f mbps effective)\n",
			layout, secs, objectBits/secs/1e6)
	}
	fmt.Println()

	// Run the archive with each layout and compare end-to-end
	// throughput: on a miss-heavy workload the tape layout is
	// directly visible in displays per hour.
	for _, layout := range []mmis.TapeLayout{mmis.TapeDiskMatched, mmis.TapeSequential} {
		c := cfg
		c.TapeLayout = layout
		eng, err := mmis.NewStripedSimulation(c)
		if err != nil {
			log.Fatal(err)
		}
		res := eng.Run()
		fmt.Printf("archive with %-12s tape: %6.1f displays/hour, %2d materializations, tertiary %5.1f%% busy\n",
			layout, res.Throughput(), res.Materializa, res.TertiaryBusy*100)
	}
	fmt.Println()

	// The replacement policy at work: the farm holds 20 of 40 clips;
	// uniform access keeps the least-frequently-used clips churning.
	eng, err := mmis.NewStripedSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Run()
	fmt.Printf("steady state: %d unique clips disk-resident (farm capacity %d of %d in the library)\n",
		res.UniqueResidents, cfg.DefaultPreload(), cfg.Objects)
	fmt.Printf("admission latency: mean %.1f s, max %.1f s — cold clips wait for the tape robot\n",
		res.Latency.Mean(), res.Latency.Max())
}
