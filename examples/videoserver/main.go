// Videoserver: a mixed-media movie server on one staggered-striped
// farm — the scenario of the paper's Figure 5.  Three media types
// (40, 60, and 80 mbps) share 48 disks with stride 1; displays are
// admitted with Algorithm 1 (time-fragmented virtual disks) and
// coalesced with Algorithm 2 as intervening disks free up.
package main

import (
	"fmt"
	"log"

	mmis "github.com/mmsim/staggered"
)

func main() {
	// The catalog: one third of the library at each bandwidth.
	catalog := mmis.NewCatalog()
	types := []mmis.MediaType{
		{Name: "sd-40", Display: 40e6}, // M = 2 at 20 mbps disks
		{Name: "ed-60", Display: 60e6}, // M = 3
		{Name: "hd-80", Display: 80e6}, // M = 4
	}
	const nObjects = 48
	degrees := make([]int, nObjects)
	for i := 0; i < nObjects; i++ {
		t := types[i%3]
		o, err := catalog.Add(mmis.Object{
			Name:       fmt.Sprintf("%s-title-%02d", t.Name, i/3),
			Type:       t,
			Subobjects: 120,
		})
		if err != nil {
			log.Fatal(err)
		}
		degrees[o.ID] = mmis.DegreeOfDeclustering(t, 20e6)
	}

	// Show the Figure 5 placement discipline on the first three titles.
	layout, err := mmis.NewLayout(12, 1)
	if err != nil {
		log.Fatal(err)
	}
	y, _ := mmis.NewPlacement(layout, 0, 4, 5)
	x, _ := mmis.NewPlacement(layout, 4, 3, 5)
	z, _ := mmis.NewPlacement(layout, 7, 2, 5)
	grid, err := mmis.Grid(12, 5, []mmis.NamedPlacement{
		{Name: "Y", P: y}, {Name: "X", P: x}, {Name: "Z", P: z},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mixed-media placement (stride 1, as in the paper's Figure 5):")
	fmt.Println(mmis.RenderGrid(grid))

	// Simulate the server under load: staggered striping uses each
	// display's exact degree, while the naive alternative would size
	// every cluster for the 80 mbps type and waste the difference.
	cfg := mmis.Table3Config(40, 8, 1)
	cfg.D, cfg.K, cfg.M = 48, 1, 4
	cfg.CapacityFragments, cfg.Objects, cfg.Subobjects = 480, nObjects, 120
	cfg.WarmupIntervals, cfg.MeasureIntervals = 600, 3000
	cfg.Degrees = degrees
	cfg.Fragmented = true // Algorithm 1: admit on non-adjacent disks
	cfg.Coalescing = true // Algorithm 2: coalesce when disks free up

	eng, err := mmis.NewStripedSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Run()
	fmt.Printf("staggered striping, 40 viewers on %d disks:\n", cfg.D)
	fmt.Printf("  throughput:        %.1f displays/hour\n", res.Throughput())
	fmt.Printf("  disk utilization:  %.1f%%\n", res.DiskBusy*100)
	fmt.Printf("  admission latency: mean %.1f s\n", res.Latency.Mean())
	fmt.Printf("  coalescings:       %d (Algorithm 2 invocations)\n", res.Coalescings)
	fmt.Printf("  hiccups:           %d\n", res.Hiccups)

	naive := cfg
	naive.Degrees = nil // every display occupies M_max = 4 disks
	naive.K = 4
	naive.Fragmented, naive.Coalescing = false, false
	neng, err := mmis.NewStripedSimulation(naive)
	if err != nil {
		log.Fatal(err)
	}
	nres := neng.Run()
	fmt.Printf("naive M_max clusters:  %.1f displays/hour (%.1f%% fewer)\n",
		nres.Throughput(), (res.Throughput()-nres.Throughput())/res.Throughput()*100)
}
