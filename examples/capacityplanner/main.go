// Capacityplanner: size a multimedia server without running a
// simulation, using the paper's closed-form models (§3.1, §3.2.2,
// §3.2.3, Equation 1).
package main

import (
	"fmt"
	"log"

	mmis "github.com/mmsim/staggered"
	"github.com/mmsim/staggered/internal/analytic"
)

func main() {
	disk := mmis.SimulationDisk
	fmt.Printf("drive: %s — %d cylinders × %.3f MB, peak %.2f mbps\n\n",
		disk.Name, disk.Cylinders, disk.CylinderBytes/1e6, disk.TransferRate/1e6)

	// §3.1: the fragment-size tradeoff.  Bigger fragments waste less
	// bandwidth on head switches but stretch the worst-case startup
	// latency (R−1)·S(C_i).
	const clusters = 200
	rows, err := analytic.FragmentSweep(disk, clusters, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fragment  S(C_i)   effective-bw  wasted  worst-startup")
	for _, r := range rows {
		fmt.Printf("%d cyl     %6.1f ms %8.2f mbps %5.1f%%  %6.1f s\n",
			r.Cylinders, r.ServiceTimeSeconds*1000, r.EffectiveBandwidth/1e6,
			r.WastedFraction*100, r.WorstLatencySecs)
	}
	fmt.Println()

	// How many disks per display, and what does integral allocation
	// waste?  §3.2.3's half-bandwidth logical disks cut the rounding
	// loss.
	bDisk := mmis.EffectiveDiskBandwidth(disk, disk.CylinderBytes)
	fmt.Printf("effective B_disk at 1-cylinder fragments: %.2f mbps\n\n", bDisk/1e6)
	fmt.Println("media            M(whole)  waste   M(logical)  waste")
	for _, t := range []mmis.MediaType{
		mmis.CDAudio, {Name: "30 mbps", Display: 30e6}, mmis.NTSC,
		{Name: "3/2 B_disk", Display: 1.5 * bDisk}, mmis.SimVideo, mmis.CCIR601,
	} {
		w, ww, l, lw := analytic.DisksForBandwidth(t.Display, bDisk)
		fmt.Printf("%-16s %5d %8.1f%% %8d %8.1f%%\n", t.Name, w, ww*100, l, lw*100)
	}
	fmt.Println()

	// Equation (1): memory per disk to mask the head-switch delay
	// (one sector at the effective rate as T_sector).
	tSector := 512 * 8 / bDisk
	mem := mmis.MinimumBufferBytes(bDisk, disk.TSwitch(), tSector)
	fmt.Printf("Equation (1) minimum memory per disk: %.0f KB\n\n", mem/1e3)

	// §3.2.2: stride vs unique disks for a 100-cylinder object on a
	// 100-disk farm (M = 4).
	fmt.Println("stride k  unique disks used  skew-free")
	for _, k := range []int{1, 2, 4, 10, 100} {
		fmt.Printf("%8d %18d %10v\n",
			k, mmis.UniqueDisksUsed(100, k, 4, 25), mmis.DataSkewFree(100, k))
	}
	fmt.Println()

	// Farm sizing for the Table 3 database.
	objs := analytic.FarmObjectCapacity(1000, 3000, 5, 3000)
	fmt.Printf("a 1000-disk farm holds %d Table-3 objects (%.1f hours of 100 mbps video)\n",
		objs, float64(objs)*1814.4/3600)
	fmt.Printf("aggregate farm bandwidth: %.1f gbps\n",
		analytic.AggregateBandwidth(1000, bDisk)/1e9)
}
