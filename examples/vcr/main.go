// VCR: interactive playback on a staggered-striped farm (§3.2.5 of
// the paper) — play, rewind, fast-forward, and fast-forward with
// scan through a movie, with the fast-forward replica paying for the
// scan's 16× consumption rate.
package main

import (
	"fmt"
	"log"

	mmis "github.com/mmsim/staggered"
)

func main() {
	const (
		disks      = 100
		stride     = 1
		m          = 5    // 100 mbps movie on 20 mbps disks
		subobjects = 3000 // a 30-minute Table 3 movie
	)
	layout, err := mmis.NewLayout(disks, stride)
	if err != nil {
		log.Fatal(err)
	}
	store, err := mmis.NewStore(layout, 3000)
	if err != nil {
		log.Fatal(err)
	}

	// The movie and its fast-forward replica (every 16th frame).
	movie, err := store.Place(0, m, subobjects)
	if err != nil {
		log.Fatal(err)
	}
	repLen := mmis.FFReplicaSubobjects(subobjects, mmis.DefaultScanRatio)
	replica, err := store.Place(1, m, repLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movie: %d subobjects over %d disks; FF replica: %d subobjects (%.1f%% storage overhead)\n\n",
		subobjects, movie.UniqueDisks(), repLen, mmis.FFReplicaOverhead(mmis.DefaultScanRatio)*100)

	session, err := mmis.NewPlaybackSession(movie, replica, mmis.DefaultScanRatio)
	if err != nil {
		log.Fatal(err)
	}

	// A light background load: disks 10..29 are busy with other
	// displays; everything else is idle.
	free := func(disk int) bool { return disk < 10 || disk >= 30 }

	tick := func(n int) {
		for i := 0; i < n && session.Mode() != mmis.PlaybackDone; i++ {
			if _, err := session.Tick(free); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("watch the opening (200 subobjects ≈ 2 minutes)...")
	tick(200)
	fmt.Printf("  position %d, mode %v\n", session.Position(), session.Mode())

	fmt.Println("fast-forward with scan through the slow part...")
	if err := session.StartScan(free); err != nil {
		log.Fatal(err)
	}
	tick(60) // 60 replica frames cover 960 normal subobjects
	if err := session.StopScan(free); err != nil {
		log.Fatal(err)
	}
	tick(1)
	fmt.Printf("  position %d, mode %v (scanned %d frames, switch lag %d intervals)\n",
		session.Position(), session.Mode(), session.Scanned(), session.SwitchLag())

	fmt.Println("rewind to the chase scene at subobject 400...")
	if err := session.Seek(400, free); err != nil {
		log.Fatal(err)
	}
	tick(1)
	fmt.Printf("  position %d, mode %v\n", session.Position(), session.Mode())

	fmt.Println("watch to the end...")
	tick(subobjects)
	fmt.Printf("  mode %v: played %d normal + %d scan subobjects, total repositioning lag %d intervals\n",
		session.Mode(), session.Played(), session.Scanned(), session.SwitchLag())
}
