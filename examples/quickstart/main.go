// Quickstart: plan a staggered-striped layout, place a video object,
// inspect where its fragments live, and run a small end-to-end
// simulation comparing striping with the virtual-data-replication
// baseline.
package main

import (
	"fmt"
	"log"

	mmis "github.com/mmsim/staggered"
)

func main() {
	// 1. Plan a layout: 12 disks, stride 1 (always skew-free).
	layout, err := mmis.NewLayout(12, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("farm: %d disks, stride %d, skew-free: %v\n\n",
		layout.D, layout.K, mmis.DataSkewFree(layout.D, layout.K))

	// 2. How many disks does each media type need at 20 mbps/disk?
	const bDisk = 20e6
	for _, t := range []mmis.MediaType{mmis.NTSC, mmis.CCIR601, mmis.CDAudio} {
		fmt.Printf("%-10s %6.0f mbps -> M = %d disks\n",
			t.Name, t.Display/1e6, mmis.DegreeOfDeclustering(t, bDisk))
	}
	fmt.Println()

	// 3. Place an object and look up fragment locations.
	store, err := mmis.NewStore(layout, 3000)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := store.Place(0 /* id */, 3 /* M */, 100 /* subobjects */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object 0: first disk %d, %d fragments, %d unique disks used\n",
		pl.First, pl.TotalFragments(), pl.UniqueDisks())
	fmt.Printf("fragment (subobject 7, piece 2) lives on disk %d\n\n", pl.Disk(7, 2))

	// 4. Run a reduced simulation: 32 stations, skewed access.
	cfg := mmis.Table3Config(32, 20, 1)
	cfg.D, cfg.K, cfg.M = 50, 5, 5
	cfg.CapacityFragments, cfg.Objects, cfg.Subobjects = 60, 40, 30
	cfg.WarmupIntervals, cfg.MeasureIntervals = 600, 3000

	striped, err := mmis.NewStripedSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rs := striped.Run()
	vdr, err := mmis.NewVDRSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rv := vdr.Run()

	fmt.Printf("simple striping:          %6.1f displays/hour (hiccups: %d)\n",
		rs.Throughput(), rs.Hiccups)
	fmt.Printf("virtual data replication: %6.1f displays/hour (hiccups: %d)\n",
		rv.Throughput(), rv.Hiccups)
	fmt.Printf("improvement:              %6.1f%%\n",
		(rs.Throughput()-rv.Throughput())/rv.Throughput()*100)
}
