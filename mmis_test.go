package mmis

import (
	"math"
	"strings"
	"testing"
)

// TestPublicLayoutAPI drives the layout-planning facade end to end on
// the paper's Figure 5 configuration.
func TestPublicLayoutAPI(t *testing.T) {
	l, err := NewLayout(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !DataSkewFree(12, 1) {
		t.Error("stride 1 must be skew-free")
	}
	y, err := NewPlacement(l, 0, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewPlacement(l, 4, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Grid(12, 13, []NamedPlacement{{Name: "Y", P: y}, {Name: "X", P: x}})
	if err != nil {
		t.Fatal(err)
	}
	if g[0][0] != "Y0.0" || g[0][4] != "X0.0" {
		t.Fatalf("grid row 0 wrong: %v", g[0])
	}
	if !strings.Contains(RenderGrid(g), "Y12.0") {
		t.Error("rendering missing wrapped cell")
	}
}

func TestPublicStoreAPI(t *testing.T) {
	l, err := SimpleStriping(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(l, 3000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := st.Place(42, 5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if p.UniqueDisks() != 1000 {
		t.Errorf("Table 3 object must touch all disks, got %d", p.UniqueDisks())
	}
	if err := st.Evict(42); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMediaAPI(t *testing.T) {
	if DegreeOfDeclustering(SimVideo, 20e6) != 5 {
		t.Error("Table 3 degree wrong")
	}
	if DegreeOfDeclustering(HDTV, 20e6) != 40 {
		t.Error("HDTV degree wrong")
	}
	c := NewCatalog()
	o, err := c.Add(Object{Name: "trailer", Type: NTSC, Subobjects: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MustGet(o.ID).Name; got != "trailer" {
		t.Errorf("catalog lookup = %q", got)
	}
}

func TestPublicAnalyticAPI(t *testing.T) {
	eff := EffectiveDiskBandwidth(SimulationDisk, SimulationDisk.CylinderBytes)
	if math.Abs(eff-20e6) > 0.05e6 {
		t.Errorf("effective bandwidth = %v, want ~20 mbps", eff)
	}
	if UniqueDisksUsed(100, 1, 4, 25) != 28 {
		t.Error("§3.2.2 example wrong through facade")
	}
	if MinimumBufferBytes(20e6, 0.05183, 0.01) <= 0 {
		t.Error("Equation (1) result not positive")
	}
}

func TestPublicDeliveryAPI(t *testing.T) {
	a, ok := ChooseVirtualDisks(8, 1, 0, 2, []int{1, 6})
	if !ok {
		t.Fatal("assignment infeasible")
	}
	d, err := NewDelivery(a, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("delivery incomplete")
	}
}

// TestPublicSimulationAPI runs a reduced end-to-end simulation through
// the facade and checks the paper's headline result.
func TestPublicSimulationAPI(t *testing.T) {
	cfg := Table3Config(32, 20, 1)
	// Reduce to test scale while keeping the structure.
	cfg.D, cfg.K, cfg.M = 50, 5, 5
	cfg.CapacityFragments, cfg.Objects, cfg.Subobjects = 60, 40, 30
	cfg.WarmupIntervals, cfg.MeasureIntervals = 600, 3000

	se, err := NewStripedSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := se.Run()
	ve, err := NewVDRSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rv := ve.Run()
	if rs.Hiccups != 0 || rv.Hiccups != 0 {
		t.Fatalf("hiccups: %d / %d", rs.Hiccups, rv.Hiccups)
	}
	if rs.Throughput() <= rv.Throughput() {
		t.Fatalf("striping (%v/hr) did not beat replication (%v/hr)",
			rs.Throughput(), rv.Throughput())
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	pts, err := RunFigure8(QuickScale, 10, []int{4, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig := RenderFigure8(10, pts)
	if !strings.Contains(fig, "simple striping") {
		t.Errorf("figure rendering wrong:\n%s", fig)
	}
	byMean := map[float64][]FigurePoint{10: pts, 20: nil, 43.5: nil}
	tbl := RenderTable4(byMean)
	if !strings.Contains(tbl, "# Display Stations") {
		t.Errorf("table rendering wrong:\n%s", tbl)
	}
}

func TestPaperConstantsExported(t *testing.T) {
	if len(PaperMeans) != 3 || PaperStations[len(PaperStations)-1] != 256 {
		t.Fatal("paper workload constants drifted")
	}
	if SabreDisk.Cylinders != 1635 || SimulationDisk.Cylinders != 3000 {
		t.Fatal("paper drives drifted")
	}
	if SimulationTertiary.Bandwidth != 40e6 {
		t.Fatal("tertiary bandwidth drifted")
	}
}

func TestPublicAdvisorAPI(t *testing.T) {
	a, err := RecommendStride(1000, []int{5})
	if err != nil || a.Stride != 5 {
		t.Fatalf("advice = %+v, %v", a, err)
	}
	mixed, err := RecommendStride(12, []int{2, 3, 4})
	if err != nil || mixed.Stride != 1 {
		t.Fatalf("mixed advice = %+v, %v", mixed, err)
	}
	c, ok := RecommendFragmentCylinders(SabreDisk, 30, 10)
	if !ok || c != 1 {
		t.Fatalf("fragment advice = %d, %v", c, ok)
	}
}

func TestPublicAvailabilityAPI(t *testing.T) {
	// The tradeoff the extension quantifies: striping widens the
	// failure blast radius in exchange for Table 4's throughput.
	if BlastRadius(1000, 5, 5, 3000, 200) != 200 {
		t.Error("k=M blast radius should cover the whole database")
	}
	if got := SurvivingBandwidthFraction(1000, 1000, 5, 3000, 1); got < 0.99 {
		t.Errorf("k=D survival = %v, want ~0.995", got)
	}
	if s := PinnedLayoutSavings(SabreDisk, 2*SabreDisk.CylinderBytes); s <= 0 || s >= 0.10 {
		t.Errorf("pinned layout savings = %v, want (0, 0.10)", s)
	}
}

func TestPublicWorkloadTraceAPI(t *testing.T) {
	tr, err := ParseWorkloadTrace(strings.NewReader("1,2,3\n4,5\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stations() != 2 || tr.Draw(0) != 1 || tr.Draw(1) != 4 {
		t.Fatal("trace parsing wrong through facade")
	}
}
